//! TLE interoperability: constellations exported as TLE text must survive
//! the round trip and drive both propagators to consistent coverage — the
//! property that lets MP-LEO parties exchange ephemerides in the standard
//! format, as the paper's CosmicBeats workflow does.

use leosim::visibility::{PropagatorKind, SimConfig, VisibilityTable};
use leosim::TimeGrid;
use orbital::constellation::{single_plane, walker_delta, ShellSpec};
use orbital::propagator::{KeplerJ2, Propagator, Sgp4};
use orbital::time::Epoch;
use orbital::tle::Tle;

fn epoch() -> Epoch {
    Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
}

#[test]
fn whole_constellation_tle_roundtrip() {
    let spec = ShellSpec { planes: 6, sats_per_plane: 6, ..ShellSpec::starlink_like() };
    let sats = walker_delta(&spec, epoch());
    // Export to a single TLE file blob and reparse.
    let blob: String = sats.iter().map(|s| format!("{}\n", s.to_tle())).collect();
    let mut reparsed = Vec::new();
    let lines: Vec<&str> = blob.lines().collect();
    let mut i = 0;
    while i + 2 < lines.len() + 1 {
        let chunk = lines[i..(i + 3).min(lines.len())].join("\n");
        if chunk.trim().is_empty() {
            break;
        }
        reparsed.push(Tle::parse(&chunk).expect("exported TLE parses"));
        i += 3;
    }
    assert_eq!(reparsed.len(), sats.len());
    for (sat, tle) in sats.iter().zip(&reparsed) {
        assert_eq!(tle.name, sat.name);
        let el = tle.to_elements();
        assert!((el.inclination_rad - sat.elements.inclination_rad).abs() < 1e-4);
        assert!(
            orbital::math::wrap_pi(el.raan_rad - sat.elements.raan_rad).abs() < 1e-4,
            "{}",
            sat.name
        );
        assert!((el.semi_major_axis_km - sat.elements.semi_major_axis_km).abs() < 1.0);
    }
}

#[test]
fn tle_driven_sgp4_matches_element_driven_keplerj2() {
    // Positions from the TLE-driven SGP4 path stay within tens of km of the
    // direct KeplerJ2 path over a day (short-period + formatting quanta).
    let sats = single_plane(4, 550.0, 53.0, epoch());
    for sat in &sats {
        let kj2 = KeplerJ2::from_elements(&sat.elements, sat.epoch);
        let tle = sat.to_tle();
        let text = tle.to_string();
        let back = Tle::parse(&text).unwrap();
        let sgp4 = Sgp4::from_tle(&back).unwrap();
        for minutes in [0.0, 60.0, 360.0, 1440.0] {
            let t = epoch().plus_minutes(minutes);
            let d = (kj2.propagate(t).position - sgp4.propagate(t).position).norm();
            assert!(d < 60.0, "{} at {minutes} min: {d} km", sat.name);
        }
    }
}

#[test]
fn coverage_consistent_across_propagators() {
    // The coverage *statistics* (what the experiments consume) must be
    // nearly identical whichever propagator runs underneath.
    let sats = single_plane(10, 550.0, 53.0, epoch());
    let sites = [geodata::taipei()];
    let grid = TimeGrid::new(epoch(), 86_400.0, 60.0);
    let idx: Vec<usize> = (0..sats.len()).collect();
    let frac = |kind: PropagatorKind| {
        let cfg = SimConfig { propagator: kind, ..Default::default() };
        let vt = VisibilityTable::compute(&sats, &sites, &grid, &cfg);
        vt.coverage_union(&idx, 0).fraction_ones()
    };
    let a = frac(PropagatorKind::KeplerJ2);
    let b = frac(PropagatorKind::Sgp4);
    assert!((a - b).abs() < 0.01, "KeplerJ2 {a} vs SGP4 {b}");
}

#[test]
fn foreign_tle_rejected_cleanly() {
    // Corrupt inputs must produce typed errors, not panics — parties will
    // exchange TLEs over the network.
    assert!(Tle::parse("").is_err());
    assert!(Tle::parse("garbage\nmore garbage").is_err());
    let sats = single_plane(1, 550.0, 53.0, epoch());
    let good = sats[0].to_tle().to_string();
    let mut corrupted = good.replace('5', "6");
    corrupted.truncate(corrupted.len() - 1);
    assert!(Tle::parse(&corrupted).is_err());
}
