//! End-to-end traffic pipeline: diurnal demand → routing over a shared
//! constellation → max-min-fair allocation → per-party epoch summaries →
//! signed market orders → a zero-sum order-book settlement. This is the
//! workspace-level proof that the `traffic` crate actually feeds the
//! `dcp` capacity market with demand-driven order flow.

use leosim::ephemeris::EphemerisStore;
use leosim::visibility::SimConfig;
use leosim::TimeGrid;
use mpleo::party::PartyId;
use orbital::constellation::{walker_delta, ShellSpec};
use orbital::time::Epoch;
use traffic::{
    clear_market, epoch_orders, gateways_every_nth, party_keys, run_traffic, summarize_epochs,
    TrafficConfig,
};

fn scenario() -> (EphemerisStore, Vec<geodata::City>) {
    let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
    let spec = ShellSpec { planes: 10, sats_per_plane: 12, ..ShellSpec::starlink_like() };
    let sats = walker_delta(&spec, epoch);
    let grid = TimeGrid::new(epoch, 12.0 * 3600.0, 600.0);
    let store = EphemerisStore::build(&sats, &grid, &SimConfig::default());
    (store, geodata::paper_cities())
}

#[test]
fn demand_to_settled_market_end_to_end() {
    let (store, cities) = scenario();
    let gateways = gateways_every_nth(&cities, 3);
    let parties: Vec<PartyId> = ["alpha", "beta", "gamma"].map(PartyId::new).into();
    let sat_party: Vec<usize> = (0..store.sat_count()).map(|s| s % 3).collect();
    let city_party: Vec<usize> = (0..cities.len()).map(|c| c % 3).collect();

    // A deliberately tight satellite cap so some demand goes unserved and
    // both sides of the market (deficits and spare) materialize.
    let cfg = TrafficConfig { sat_capacity_mbps: 4_000.0, ..TrafficConfig::default() };
    let report = run_traffic(
        &store,
        &cities,
        &gateways,
        &SimConfig::default(),
        &cfg,
        &sat_party,
        &city_party,
        &parties,
    );

    // The engine served something, but not everything (the cap binds).
    let ratio = report.served_ratio();
    assert!(ratio > 0.0, "a 120-sat shell must serve some demand");
    assert!(ratio < 1.0, "the tight cap must leave a deficit, got {ratio}");
    // Latency under load is LEO-grade wherever traffic flowed.
    if let Some(p99) = report.pooled_latency_ms(0.99) {
        assert!(p99 > 2.0 && p99 < 100.0, "p99 {p99} ms out of LEO range");
    }

    // Epoch summaries: 3 h epochs must tile the whole grid (the inclusive
    // endpoint leaves a short trailing epoch), with every step accounted for.
    let epoch_steps = (3.0 * 3600.0 / report.step_s).round() as usize;
    let summaries = summarize_epochs(&report, epoch_steps);
    assert_eq!(summaries.len(), report.steps.div_ceil(epoch_steps));
    assert_eq!(summaries.iter().map(|s| s.steps).sum::<usize>(), report.steps);

    // Orders derive from the summaries and carry valid signatures.
    let keys = party_keys(&parties, b"traffic-pipeline-test");
    let orders = epoch_orders(&summaries, &keys, 1.0);
    assert!(!orders.is_empty(), "an underprovisioned system must trade");
    for o in &orders {
        assert!(dcp::market::verify_order(&keys, o), "order signature must verify");
    }

    // The book clears and settlement is zero-sum across parties.
    let book = clear_market(&orders);
    let settlement = book.settlement();
    let net: f64 = settlement.values().sum();
    assert!(net.abs() < 1e-9, "settlement must be zero-sum, net {net}");
    if !book.trades().is_empty() {
        assert!(settlement.values().any(|&v| v < 0.0), "some buyer pays");
        assert!(settlement.values().any(|&v| v > 0.0), "some seller earns");
    }
}

#[test]
fn pipeline_is_deterministic_across_thread_counts() {
    let (store, cities) = scenario();
    let gateways = gateways_every_nth(&cities, 3);
    let parties: Vec<PartyId> = ["a", "b"].map(PartyId::new).into();
    let sat_party: Vec<usize> = (0..store.sat_count()).map(|s| s % 2).collect();
    let city_party: Vec<usize> = (0..cities.len()).map(|c| c % 2).collect();
    let cfg = TrafficConfig::default();

    let orders_at = |threads: usize| {
        simrt::with_thread_cap(threads, || {
            let report = run_traffic(
                &store,
                &cities,
                &gateways,
                &SimConfig::default(),
                &cfg,
                &sat_party,
                &city_party,
                &parties,
            );
            let summaries = summarize_epochs(&report, 6);
            let keys = party_keys(&parties, b"determinism");
            epoch_orders(&summaries, &keys, 1.0)
        })
    };
    let a = orders_at(1);
    let b = orders_at(4);
    assert_eq!(a, b, "order flow must be identical at any thread count");
}
