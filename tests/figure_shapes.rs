//! Shape assertions for the placement and robustness figures (4b, 4c, 5, 6)
//! at reduced fidelity: who wins and which direction trends point, never
//! absolute numbers.

use geodata::{paper_cities, population_weights, to_sites};
use leosim::visibility::SimConfig;
use leosim::visibility::VisibilityTable;
use leosim::TimeGrid;
use mpleo::placement::{category_study, phase_sweep, Category};
use mpleo::robustness::{half_withdrawal_experiment, skewed_withdrawal_experiment};
use orbital::constellation::starlink_gen1_pool;
use orbital::time::Epoch;

fn epoch() -> Epoch {
    Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
}

fn city_context() -> (Vec<orbital::ground::GroundSite>, Vec<f64>, TimeGrid, SimConfig) {
    let cities = paper_cities();
    let sites = to_sites(&cities);
    let weights = population_weights(&cities);
    let grid = TimeGrid::new(epoch(), 2.0 * 86_400.0, 120.0);
    (sites, weights, grid, SimConfig::default())
}

#[test]
fn fig4b_midpoint_wins_and_edges_lose() {
    let (sites, weights, grid, config) = city_context();
    let points = phase_sweep(&sites, &weights, &grid, &config, epoch());
    assert_eq!(points.len(), 29);
    let best = points.iter().max_by(|a, b| a.gain_s.partial_cmp(&b.gain_s).unwrap()).unwrap();
    // Paper: maximum at 15 deg. Reduced fidelity may shift the peak by a
    // couple of degrees.
    assert!((best.offset_deg - 15.0).abs() <= 4.0, "peak at {} deg", best.offset_deg);
    // Edge placements (1 and 29 deg, nearly co-located with existing sats)
    // must be among the worst.
    let min_gain = points.iter().map(|p| p.gain_s).fold(f64::INFINITY, f64::min);
    let edge_worst = points[0].gain_s.min(points[28].gain_s);
    assert!(edge_worst <= min_gain * 1.5 + 60.0, "edges {edge_worst} vs min {min_gain}");
    // All offsets still help (they add a satellite).
    assert!(points.iter().all(|p| p.gain_s > 0.0));
}

#[test]
fn fig4c_every_category_helps_and_diversity_beats_phase_at_week_scale() {
    let cities = paper_cities();
    let sites = to_sites(&cities);
    let weights = population_weights(&cities);
    // Use the paper's full horizon for this cheap experiment (16 sats):
    // the inclination/altitude advantages only materialize once differential
    // J2 drift and period offsets have time to act.
    let grid = TimeGrid::new(epoch(), 7.0 * 86_400.0, 120.0);
    let results = category_study(&sites, &weights, &grid, &SimConfig::default(), epoch());
    let gain = |c: Category| results.iter().find(|r| r.category == c).unwrap().gain_s;
    for r in &results {
        assert!(r.gain_s > 0.0, "{:?} gained nothing", r.category);
    }
    // Paper: inclination diversity wins at the one-week horizon.
    assert!(
        gain(Category::DifferentInclination) >= gain(Category::DifferentPhase),
        "inclination {} vs phase {}",
        gain(Category::DifferentInclination),
        gain(Category::DifferentPhase)
    );
    // Paper: every category gains over 30 minutes per week.
    for r in &results {
        assert!(r.gain_s > 30.0 * 60.0, "{:?} gained only {} s", r.category, r.gain_s);
    }
}

#[test]
fn fig5_loss_decreases_with_constellation_size() {
    let (sites, weights, grid, config) = city_context();
    let pool = starlink_gen1_pool(epoch());
    let vt = VisibilityTable::compute(&pool, &sites, &grid, &config);
    let runs = 5;
    let losses: Vec<f64> = [200usize, 500, 1000, 2000]
        .iter()
        .map(|&l| half_withdrawal_experiment(&vt, l, &weights, runs, 55).mean)
        .collect();
    for w in losses.windows(2) {
        assert!(w[0] > w[1], "loss must fall with size: {losses:?}");
    }
    // Paper magnitudes: ~24% at 200, <1% at 2000.
    assert!(losses[0] > 10.0, "loss at 200: {}", losses[0]);
    assert!(losses[3] < 2.0, "loss at 2000: {}", losses[3]);
}

#[test]
fn fig6_loss_grows_with_skew_but_stays_serviceable() {
    let (sites, weights, grid, config) = city_context();
    let pool = starlink_gen1_pool(epoch());
    let vt = VisibilityTable::compute(&pool, &sites, &grid, &config);
    let runs = 5;
    let loss = |r: f64| skewed_withdrawal_experiment(&vt, 1000, r, 10, &weights, runs, 66).mean;
    let equal = loss(1.0);
    let mid = loss(5.0);
    let skewed = loss(10.0);
    assert!(equal < mid && mid < skewed, "{equal} < {mid} < {skewed} violated");
    // Paper: even at 10:1 the network is serviceable (~5.5% gap).
    assert!(skewed < 15.0, "10:1 loss {skewed}%");
    assert!(equal < 1.0, "equal-stake loss {equal}%");
}
