//! End-to-end pipeline test: constellation synthesis -> propagation ->
//! visibility -> coverage statistics, asserting the paper's §2 claims at
//! reduced fidelity.

use leosim::coverage::CoverageStats;
use leosim::idle::mean_idle_fraction;
use leosim::montecarlo::{run_rng, sample_indices};
use leosim::visibility::{SimConfig, VisibilityTable};
use leosim::TimeGrid;
use orbital::constellation::starlink_gen1_pool;
use orbital::time::Epoch;

fn epoch() -> Epoch {
    Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
}

/// Shared context: one day at 120 s over the full pool, Taipei receiver.
fn taipei_table() -> VisibilityTable {
    let pool = starlink_gen1_pool(epoch());
    let taipei = [geodata::taipei()];
    let grid = TimeGrid::new(epoch(), 86_400.0, 120.0);
    VisibilityTable::compute(&pool, &taipei, &grid, &SimConfig::default())
}

#[test]
fn fig2_claims_at_reduced_fidelity() {
    let vt = taipei_table();
    let n = vt.sat_count();
    let uncovered = |size: usize| -> f64 {
        let mut acc = 0.0;
        let runs = 5;
        for run in 0..runs {
            let mut rng = run_rng(1, run);
            let subset = sample_indices(&mut rng, n, size);
            let stats = CoverageStats::from_bitset(&vt.coverage_union(&subset, 0), &vt.grid);
            acc += stats.uncovered_fraction;
        }
        acc / runs as f64
    };
    // Paper: >50% uncovered at 100 satellites.
    let u100 = uncovered(100);
    assert!(u100 > 0.5, "100 sats leave {:.1}% uncovered", u100 * 100.0);
    // Paper: ~99.5% coverage at 1000 satellites.
    let u1000 = uncovered(1000);
    assert!(u1000 < 0.02, "1000 sats leave {:.1}% uncovered", u1000 * 100.0);
    // Monotone decrease across the sweep.
    let series: Vec<f64> = [10, 100, 500, 1000].iter().map(|&s| uncovered(s)).collect();
    for w in series.windows(2) {
        assert!(w[0] > w[1], "uncovered fraction must fall with size: {series:?}");
    }
}

#[test]
fn fig2_gap_structure() {
    let vt = taipei_table();
    let mut rng = run_rng(2, 0);
    let subset = sample_indices(&mut rng, vt.sat_count(), 100);
    let stats = CoverageStats::from_bitset(&vt.coverage_union(&subset, 0), &vt.grid);
    // Paper: continuous gaps of up to over an hour at 100 satellites.
    assert!(stats.max_gap_s > 1800.0, "expected long gaps at 100 sats, max {}", stats.max_gap_s);
    assert!(stats.gap_count > 10, "coverage is fragmented, {} gaps", stats.gap_count);
}

#[test]
fn fig3_idle_claims_at_reduced_fidelity() {
    let pool = starlink_gen1_pool(epoch());
    let mut rng = run_rng(3, 0);
    let sample = sample_indices(&mut rng, pool.len(), 200);
    let sats: Vec<_> = sample.iter().map(|&i| pool[i].clone()).collect();
    let cities = geodata::paper_cities();
    let sites = geodata::to_sites(&cities);
    let grid = TimeGrid::new(epoch(), 86_400.0, 120.0);
    let vt = VisibilityTable::compute(&sats, &sites, &grid, &SimConfig::default());

    // Paper: ~99% idle serving one city.
    let idle1 = mean_idle_fraction(&vt, &[0]);
    assert!(idle1 > 0.97, "idle at 1 city {idle1}");
    // Idle monotonically non-increasing as the served set grows.
    let mut last = idle1;
    for n in [3usize, 7, 14, 21] {
        let served: Vec<usize> = (0..n).collect();
        let idle = mean_idle_fraction(&vt, &served);
        assert!(idle <= last + 1e-12, "{n} cities: idle {idle} > previous {last}");
        last = idle;
    }
    assert!(last < idle1, "global sharing must beat single-city serving");
}

#[test]
fn single_satellite_minutes_per_day() {
    // Paper §1: "a single satellite can only offer few (less than ten)
    // minutes of coverage per day to a given region" — our elevation mask
    // and orbit model must land in that ballpark (allow up to ~25 min for
    // geometry-lucky satellites).
    let vt = taipei_table();
    let mut best = 0.0f64;
    let mut total = 0.0;
    let mut counted = 0;
    for s in 0..vt.sat_count() {
        let frac = vt.bitset(s, 0).fraction_ones();
        let per_day_min = frac * 86_400.0 / 60.0;
        best = best.max(per_day_min);
        total += per_day_min;
        counted += 1;
    }
    let mean = total / counted as f64;
    assert!(mean < 10.0, "mean visibility {mean:.1} min/day");
    assert!(best < 40.0, "best-case visibility {best:.1} min/day");
}

#[test]
fn population_weighting_pipeline() {
    let pool = starlink_gen1_pool(epoch());
    let cities = geodata::paper_cities();
    let sites = geodata::to_sites(&cities);
    let weights = geodata::population_weights(&cities);
    let grid = TimeGrid::new(epoch(), 12.0 * 3600.0, 120.0);
    let mut rng = run_rng(4, 0);
    let sample = sample_indices(&mut rng, pool.len(), 300);
    let sats: Vec<_> = sample.iter().map(|&i| pool[i].clone()).collect();
    let vt = VisibilityTable::compute(&sats, &sites, &grid, &SimConfig::default());
    let all: Vec<usize> = (0..sats.len()).collect();
    let cov = mpleo::placement::weighted_coverage_s(&vt, &all, &weights);
    assert!(cov > 0.0 && cov <= grid.duration_s() + grid.step_s);
    // Weighted coverage is a convex combination: bounded by best/worst site.
    let fracs: Vec<f64> =
        (0..sites.len()).map(|site| vt.coverage_union(&all, site).fraction_ones()).collect();
    let frac = cov / grid.duration_s();
    let lo = fracs.iter().cloned().fold(1.0f64, f64::min);
    let hi = fracs.iter().cloned().fold(0.0f64, f64::max);
    assert!(frac >= lo - 0.01 && frac <= hi + 0.01, "{lo} <= {frac} <= {hi}");
}
