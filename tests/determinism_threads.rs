//! The workspace's determinism contract, end to end: running the suite at
//! threads=1 and threads=4 must produce byte-identical results JSON once
//! the (measured, non-deterministic) `timing` object is excluded. CI
//! re-checks the same property across two processes via `MPLEO_THREADS`;
//! this test checks it in-process via the fidelity's thread cap.

use mpleo_bench::experiment::{ExperimentResult, Timing};
use mpleo_bench::runner::{run_suite, SuiteOptions};
use mpleo_bench::Fidelity;
use std::fs;
use std::path::PathBuf;

const EXPERIMENTS: [&str; 5] =
    ["fig2", "ablation_elevation", "traffic_diurnal", "churn_withdrawal", "ablation_churn_rate"];

/// Run the quick-fidelity subset at a thread count and return, per
/// experiment id, the pretty JSON with `timing` zeroed out.
fn suite_json(threads: usize, name: &str) -> Vec<(String, String)> {
    let out = std::env::temp_dir().join(format!("mpleo-determinism-{name}-t{threads}"));
    let _ = fs::remove_dir_all(&out);
    let fidelity =
        Fidelity { horizon_s: 6.0 * 3600.0, step_s: 600.0, runs: 3, full: false, threads };
    let opts = SuiteOptions {
        only: EXPERIMENTS.iter().map(|s| s.to_string()).collect(),
        out_dir: Some(out.clone()),
        warn_only: true,
        quiet: true,
        fidelity: Some(fidelity),
        ..Default::default()
    };
    run_suite(&opts).expect("suite runs");
    let mut blobs = Vec::new();
    for id in EXPERIMENTS {
        let path: PathBuf = out.join(format!("{id}.json"));
        let text = fs::read_to_string(&path).expect("result written");
        let mut r: ExperimentResult = serde_json::from_str(&text).expect("valid result JSON");
        // Timing is measured, not computed — the one field allowed to
        // differ between runs and thread counts.
        r.timing = Timing::default();
        blobs.push((id.to_string(), serde_json::to_string_pretty(&r).expect("serialize")));
    }
    let _ = fs::remove_dir_all(&out);
    blobs
}

#[test]
fn suite_results_are_byte_identical_at_threads_1_and_4() {
    let t1 = suite_json(1, "cmp");
    let t4 = suite_json(4, "cmp");
    assert_eq!(t1.len(), t4.len());
    for ((id1, json1), (id4, json4)) in t1.iter().zip(&t4) {
        assert_eq!(id1, id4);
        assert_eq!(
            json1, json4,
            "{id1}: results differ between threads=1 and threads=4 (timing excluded)"
        );
    }
}
