//! Replicated-market integration test: orders gossiped across real TCP
//! nodes produce identical books and conserving settlements everywhere.

use dcp::crypto::KeyDirectory;
use dcp::market::make_order;
use dcp::messages::GossipItem;
use dcp::node::{Node, NodeConfig, NodeHandle};
use std::time::Duration;

fn keys() -> KeyDirectory {
    let mut k = KeyDirectory::new();
    for p in ["p1", "p2", "p3", "p4"] {
        k.register_derived(p, b"market-test");
    }
    k
}

async fn wait_items(nodes: &[NodeHandle], count: usize, ms: u64) -> bool {
    for _ in 0..(ms / 10) {
        if nodes.iter().all(|n| n.item_count() >= count) {
            return true;
        }
        tokio::time::sleep(Duration::from_millis(10)).await;
    }
    false
}

#[tokio::test]
async fn orders_flood_and_books_converge() {
    let k = keys();
    let mut nodes = Vec::new();
    for p in ["p1", "p2", "p3", "p4"] {
        nodes.push(Node::start(NodeConfig::local(p, k.clone())).await.unwrap());
    }
    // Ring topology.
    for i in 0..nodes.len() {
        let next = (i + 1) % nodes.len();
        let addr = nodes[next].local_addr;
        nodes[i].connect(addr).await.unwrap();
    }
    tokio::time::sleep(Duration::from_millis(100)).await;

    // Sequential publication so every replica applies the same order
    // sequence (each order is published only after the previous converged —
    // this mirrors an epoch-per-order discipline).
    let orders = vec![
        make_order(&k, "p1", false, 1.00, 100, 0).unwrap(),
        make_order(&k, "p2", false, 1.10, 50, 0).unwrap(),
        make_order(&k, "p3", true, 1.05, 80, 0).unwrap(),
        make_order(&k, "p4", true, 1.20, 60, 0).unwrap(),
    ];
    for (i, o) in orders.into_iter().enumerate() {
        nodes[i % nodes.len()].publish(GossipItem::Order(o));
        assert!(wait_items(&nodes, i + 1, 5000).await, "order {i} did not flood");
    }
    tokio::time::sleep(Duration::from_millis(300)).await;

    let reference = nodes[0].trades();
    assert!(!reference.is_empty(), "crossing orders must trade");
    for n in &nodes[1..] {
        assert_eq!(n.trades(), reference, "replica {} diverged", n.node_id());
    }
    // Settlement conserves credits on every replica.
    for n in &nodes {
        let s = n.market_settlement();
        let net: f64 = s.values().sum();
        assert!(net.abs() < 1e-9, "{}: non-conserving settlement {net}", n.node_id());
    }
    for n in &nodes {
        n.shutdown();
    }
}

#[tokio::test]
async fn forged_orders_excluded_everywhere() {
    let k = keys();
    let a = Node::start(NodeConfig::local("p1", k.clone())).await.unwrap();
    let b = Node::start(NodeConfig::local("p2", k.clone())).await.unwrap();
    b.connect(a.local_addr).await.unwrap();

    // p2 forges an order in p1's name with a bogus signature.
    let mut forged = make_order(&k, "p2", false, 0.5, 100, 0).unwrap();
    forged.party = "p1".into();
    b.publish(GossipItem::Order(forged));
    // A genuine crossing bid follows.
    let bid = make_order(&k, "p1", true, 1.0, 10, 1).unwrap();
    a.publish(GossipItem::Order(bid));

    let nodes = [a, b];
    assert!(wait_items(&nodes, 2, 5000).await);
    tokio::time::sleep(Duration::from_millis(200)).await;
    for n in &nodes {
        assert!(n.trades().is_empty(), "forged ask must not trade on {}", n.node_id());
        assert!(n.rejected_count() >= 1, "forgery not counted on {}", n.node_id());
    }
    for n in &nodes {
        n.shutdown();
    }
}
