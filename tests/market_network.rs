//! Replicated-market integration test on the deterministic harness: orders
//! gossiped across sim-transport nodes produce identical books and
//! conserving settlements everywhere, in virtual time with a fixed seed.

use dcp::market::make_order;
use dcp::messages::GossipItem;
use dcp::testkit::TestNet;
use std::time::Duration;

const PARTIES: [&str; 4] = ["p1", "p2", "p3", "p4"];

#[tokio::test(start_paused = true)]
async fn orders_flood_and_books_converge() {
    let net = TestNet::new(21, &PARTIES).await.unwrap();
    net.connect_ring().await.unwrap();
    net.settle(Duration::from_millis(100)).await;

    // Sequential publication so every replica applies the same order
    // sequence (each order is published only after the previous converged —
    // this mirrors an epoch-per-order discipline).
    let orders = vec![
        make_order(&net.keys, "p1", false, 1.00, 100, 0).unwrap(),
        make_order(&net.keys, "p2", false, 1.10, 50, 0).unwrap(),
        make_order(&net.keys, "p3", true, 1.05, 80, 0).unwrap(),
        make_order(&net.keys, "p4", true, 1.20, 60, 0).unwrap(),
    ];
    let n = net.nodes.len();
    for (i, o) in orders.into_iter().enumerate() {
        net.nodes[i % n].publish(GossipItem::Order(o));
        assert!(net.all_converged(Duration::from_secs(5), i + 1).await, "order {i} did not flood");
    }
    net.settle(Duration::from_millis(300)).await;

    let reference = net.nodes[0].trades();
    assert!(!reference.is_empty(), "crossing orders must trade");
    for h in &net.nodes[1..] {
        assert_eq!(h.trades(), reference, "replica {} diverged", h.node_id());
    }
    // Settlement conserves credits on every replica.
    for h in &net.nodes {
        let s = h.market_settlement();
        let sum: f64 = s.values().sum();
        assert!(sum.abs() < 1e-9, "{}: non-conserving settlement {sum}", h.node_id());
    }
    net.shutdown_all();
}

#[tokio::test(start_paused = true)]
async fn forged_orders_excluded_everywhere() {
    let net = TestNet::new(22, &PARTIES[..2]).await.unwrap();
    net.connect(1, 0).await.unwrap();

    // p2 forges an order in p1's name with a bogus signature.
    let mut forged = make_order(&net.keys, "p2", false, 0.5, 100, 0).unwrap();
    forged.party = "p1".into();
    net.nodes[1].publish(GossipItem::Order(forged));
    // A genuine crossing bid follows.
    let bid = make_order(&net.keys, "p1", true, 1.0, 10, 1).unwrap();
    net.nodes[0].publish(GossipItem::Order(bid));

    assert!(net.all_converged(Duration::from_secs(5), 2).await);
    net.settle(Duration::from_millis(200)).await;
    for h in &net.nodes {
        assert!(h.trades().is_empty(), "forged ask must not trade on {}", h.node_id());
        assert!(h.rejected_count() >= 1, "forgery not counted on {}", h.node_id());
    }
    net.shutdown_all();
}
