//! The paper's motivating regions (§1: Taiwan, Ukraine, South Korea),
//! evaluated with the regional-coverage machinery.

use geodata::Region;
use leosim::montecarlo::{run_rng, sample_indices};
use leosim::region::region_coverage;
use leosim::visibility::SimConfig;
use leosim::TimeGrid;
use orbital::constellation::{starlink_gen1_pool, Satellite};
use orbital::time::Epoch;

fn sample(n: usize, seed: u64) -> (Vec<Satellite>, TimeGrid) {
    let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
    let pool = starlink_gen1_pool(epoch);
    let mut rng = run_rng(seed, 0);
    let idx = sample_indices(&mut rng, pool.len(), n);
    (idx.iter().map(|&i| pool[i].clone()).collect(), TimeGrid::new(epoch, 86_400.0, 300.0))
}

#[test]
fn national_coverage_needs_constellation_scale() {
    // The paper's Taiwan claim at the regional level: 50 satellites leave
    // large worst-site gaps; 1000 deliver near-continuous national
    // availability.
    let cfg = SimConfig::default();
    let (small, grid) = sample(50, 1);
    let (large, _) = sample(1000, 1);
    let small_cov = region_coverage(&small, &Region::taiwan(), 3, &grid, &cfg);
    let large_cov = region_coverage(&large, &Region::taiwan(), 3, &grid, &cfg);
    assert!(
        small_cov.worst_fraction < 0.5,
        "50 satellites cannot serve a nation: worst {}",
        small_cov.worst_fraction
    );
    assert!(
        large_cov.worst_fraction > 0.98,
        "1000 satellites deliver national availability: worst {}",
        large_cov.worst_fraction
    );
    assert!(large_cov.worst_max_gap_s <= 15.0 * 60.0, "gap {}", large_cov.worst_max_gap_s);
}

#[test]
fn all_three_motivating_regions_served_by_shared_pool() {
    // One shared MP-LEO constellation covers every motivating region at
    // once — no per-country constellations required.
    let cfg = SimConfig::default();
    let (sats, grid) = sample(1200, 2);
    for region in [Region::taiwan(), Region::ukraine(), Region::south_korea()] {
        let cov = region_coverage(&sats, &region, 2, &grid, &cfg);
        assert!(
            cov.worst_fraction > 0.95,
            "{}: worst-site availability {}",
            cov.region,
            cov.worst_fraction
        );
    }
}

#[test]
fn regional_stats_internally_consistent() {
    let cfg = SimConfig::default();
    let (sats, grid) = sample(400, 3);
    for region in [Region::taiwan(), Region::ukraine(), Region::south_korea()] {
        let cov = region_coverage(&sats, &region, 3, &grid, &cfg);
        assert!(cov.simultaneous_fraction <= cov.worst_fraction + 1e-12, "{}", cov.region);
        assert!(cov.worst_fraction <= cov.mean_fraction + 1e-12, "{}", cov.region);
        assert!(cov.receivers == 9);
    }
}
