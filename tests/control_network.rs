//! Multi-party control over the simulated network: quorum commands execute
//! only with enough approvals, replicas converge, and unilateral region
//! shutdowns — the abuse MP-LEO exists to prevent — are impossible. Runs
//! on the deterministic harness under paused tokio time.

use dcp::control::ControlEvent;
use dcp::messages::GossipItem;
use dcp::testkit::TestNet;
use mpleo::control::{Command, ControlGroup, ProposalState};
use std::time::Duration;

fn group() -> ControlGroup {
    let mut g = ControlGroup::new(["a", "b", "c", "d"].map(String::from), 3);
    g.register_satellite(7, "a");
    g
}

async fn mesh(seed: u64, parties: &[&str]) -> TestNet {
    let net = TestNet::with_config(seed, parties, |_, mut cfg| {
        cfg.control = Some(group());
        cfg
    })
    .await
    .unwrap();
    net.connect_chain().await.unwrap();
    net
}

async fn wait_state(net: &TestNet, id: u64, state: ProposalState, within: Duration) -> bool {
    net.converged_when(within, |h| h.control_state(id) == Some(state)).await
}

#[tokio::test(start_paused = true)]
async fn quorum_deorbit_executes_across_mesh() {
    let net = mesh(31, &["a", "b", "c", "d"]).await;
    net.nodes[0].publish(GossipItem::Control(
        ControlEvent::propose(&net.keys, 1, 7, "a", Command::Deorbit).unwrap(),
    ));
    // Proposer's implicit approval + one vote = two approvals, below quorum.
    net.nodes[1].publish(GossipItem::Control(ControlEvent::vote(&net.keys, 1, "b", true).unwrap()));
    assert!(
        !wait_state(&net, 1, ProposalState::Executed, Duration::from_millis(300)).await,
        "two approvals must not execute a 3-quorum command"
    );
    net.nodes[2].publish(GossipItem::Control(ControlEvent::vote(&net.keys, 1, "c", true).unwrap()));
    assert!(
        wait_state(&net, 1, ProposalState::Executed, Duration::from_secs(5)).await,
        "third approval executes: {:?}",
        net.nodes.iter().map(|n| n.control_state(1)).collect::<Vec<_>>()
    );
    // Every replica has the same executed log.
    let digests: std::collections::HashSet<Option<u64>> =
        net.nodes.iter().map(|n| n.control_log_digest()).collect();
    assert_eq!(digests.len(), 1);
    net.shutdown_all();
}

#[tokio::test(start_paused = true)]
async fn region_shutdown_blocked_by_rejections() {
    let net = mesh(32, &["a", "b", "c", "d"]).await;
    // Party a (the satellite owner!) tries to cut service over a region.
    net.nodes[0].publish(GossipItem::Control(
        ControlEvent::propose(
            &net.keys,
            2,
            7,
            "a",
            Command::RegionShutdown { region: "Taiwan".into() },
        )
        .unwrap(),
    ));
    net.nodes[1]
        .publish(GossipItem::Control(ControlEvent::vote(&net.keys, 2, "b", false).unwrap()));
    net.nodes[2]
        .publish(GossipItem::Control(ControlEvent::vote(&net.keys, 2, "c", false).unwrap()));
    assert!(
        wait_state(&net, 2, ProposalState::Rejected, Duration::from_secs(5)).await,
        "two rejections make a 3-of-4 quorum impossible"
    );
    for n in &net.nodes {
        assert_eq!(n.control_log_digest(), net.nodes[0].control_log_digest());
    }
    net.shutdown_all();
}

#[tokio::test(start_paused = true)]
async fn forged_control_events_ignored() {
    let net = mesh(33, &["a", "b"]).await;
    let genuine = ControlEvent::propose(&net.keys, 3, 7, "a", Command::SafeMode).unwrap();
    let ControlEvent::Propose { proposal_id, sat_id, command, signature, .. } = genuine else {
        unreachable!()
    };
    // Replay a's signature on a proposal claiming to be from b.
    let forged =
        ControlEvent::Propose { proposal_id, sat_id, party: "b".into(), command, signature };
    net.nodes[0].publish(GossipItem::Control(forged));
    assert!(net.all_converged(Duration::from_secs(2), 1).await);
    net.settle(Duration::from_millis(100)).await;
    for n in &net.nodes {
        assert_eq!(n.control_state(3), None, "forged proposal must not register");
        assert!(n.rejected_count() >= 1);
    }
    net.shutdown_all();
}
