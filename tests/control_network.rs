//! Multi-party control over the real network: quorum commands execute only
//! with enough approvals, replicas converge, and unilateral region
//! shutdowns — the abuse MP-LEO exists to prevent — are impossible.

use dcp::control::ControlEvent;
use dcp::crypto::KeyDirectory;
use dcp::messages::GossipItem;
use dcp::node::{Node, NodeConfig, NodeHandle};
use mpleo::control::{Command, ControlGroup, ProposalState};
use std::time::Duration;

fn keys() -> KeyDirectory {
    let mut k = KeyDirectory::new();
    for p in ["a", "b", "c", "d"] {
        k.register_derived(p, b"control-net-test");
    }
    k
}

fn group() -> ControlGroup {
    let mut g = ControlGroup::new(["a", "b", "c", "d"].map(String::from), 3);
    g.register_satellite(7, "a");
    g
}

async fn mesh(parties: &[&str]) -> Vec<NodeHandle> {
    let mut nodes = Vec::new();
    for p in parties {
        let mut cfg = NodeConfig::local(*p, keys());
        cfg.control = Some(group());
        nodes.push(Node::start(cfg).await.unwrap());
    }
    for i in 1..nodes.len() {
        nodes[i].connect(nodes[i - 1].local_addr).await.unwrap();
    }
    nodes
}

async fn wait_state(
    nodes: &[NodeHandle],
    id: u64,
    state: ProposalState,
    ms: u64,
) -> bool {
    for _ in 0..(ms / 10) {
        if nodes.iter().all(|n| n.control_state(id) == Some(state)) {
            return true;
        }
        tokio::time::sleep(Duration::from_millis(10)).await;
    }
    false
}

#[tokio::test]
async fn quorum_deorbit_executes_across_mesh() {
    let nodes = mesh(&["a", "b", "c", "d"]).await;
    let k = keys();
    nodes[0].publish(GossipItem::Control(
        ControlEvent::propose(&k, 1, 7, "a", Command::Deorbit).unwrap(),
    ));
    // Proposer's implicit approval + two votes = quorum of 3.
    nodes[1].publish(GossipItem::Control(ControlEvent::vote(&k, 1, "b", true).unwrap()));
    assert!(
        !wait_state(&nodes, 1, ProposalState::Executed, 300).await,
        "two approvals must not execute a 3-quorum command"
    );
    nodes[2].publish(GossipItem::Control(ControlEvent::vote(&k, 1, "c", true).unwrap()));
    assert!(
        wait_state(&nodes, 1, ProposalState::Executed, 5000).await,
        "third approval executes: {:?}",
        nodes.iter().map(|n| n.control_state(1)).collect::<Vec<_>>()
    );
    // Every replica has the same executed log.
    let digests: std::collections::HashSet<Option<u64>> =
        nodes.iter().map(|n| n.control_log_digest()).collect();
    assert_eq!(digests.len(), 1);
    for n in &nodes {
        n.shutdown();
    }
}

#[tokio::test]
async fn region_shutdown_blocked_by_rejections() {
    let nodes = mesh(&["a", "b", "c", "d"]).await;
    let k = keys();
    // Party a (the satellite owner!) tries to cut service over a region.
    nodes[0].publish(GossipItem::Control(
        ControlEvent::propose(&k, 2, 7, "a", Command::RegionShutdown { region: "Taiwan".into() })
            .unwrap(),
    ));
    nodes[1].publish(GossipItem::Control(ControlEvent::vote(&k, 2, "b", false).unwrap()));
    nodes[2].publish(GossipItem::Control(ControlEvent::vote(&k, 2, "c", false).unwrap()));
    assert!(
        wait_state(&nodes, 2, ProposalState::Rejected, 5000).await,
        "two rejections make a 3-of-4 quorum impossible"
    );
    for n in &nodes {
        assert_eq!(n.control_log_digest(), nodes[0].control_log_digest());
    }
    for n in &nodes {
        n.shutdown();
    }
}

#[tokio::test]
async fn forged_control_events_ignored() {
    let nodes = mesh(&["a", "b"]).await;
    let k = keys();
    let genuine = ControlEvent::propose(&k, 3, 7, "a", Command::SafeMode).unwrap();
    let ControlEvent::Propose { proposal_id, sat_id, command, signature, .. } = genuine else {
        unreachable!()
    };
    // Replay a's signature on a proposal claiming to be from b.
    let forged = ControlEvent::Propose {
        proposal_id,
        sat_id,
        party: "b".into(),
        command,
        signature,
    };
    nodes[0].publish(GossipItem::Control(forged));
    for _ in 0..100 {
        if nodes.iter().all(|n| n.item_count() >= 1) {
            break;
        }
        tokio::time::sleep(Duration::from_millis(10)).await;
    }
    tokio::time::sleep(Duration::from_millis(100)).await;
    for n in &nodes {
        assert_eq!(n.control_state(3), None, "forged proposal must not register");
        assert!(n.rejected_count() >= 1);
    }
    for n in &nodes {
        n.shutdown();
    }
}
