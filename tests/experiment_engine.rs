//! End-to-end tests of the experiment engine: registry completeness, one
//! shared ephemeris build across a multi-experiment suite, JSON schema
//! round-tripping, and expectation evaluation in the written results.

use mpleo_bench::experiment::{ExperimentResult, SCHEMA_VERSION};
use mpleo_bench::runner::{run_suite, SuiteOptions};
use mpleo_bench::{ephemeris_build_count, registry, Fidelity};
use std::fs;
use std::path::PathBuf;

/// A tiny fidelity so suite runs stay fast: one hour at 10-minute steps,
/// two Monte-Carlo runs.
fn tiny_fidelity() -> Fidelity {
    Fidelity { horizon_s: 3600.0, step_s: 600.0, runs: 2, full: false, threads: 0 }
}

fn tmp_out(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mpleo-engine-test-{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn registry_covers_every_historical_binary() {
    let ids = registry::ids();
    assert_eq!(ids.len(), 25);
    for id in [
        "fig2",
        "fig5",
        "ablation_economics",
        "traffic_diurnal",
        "ablation_traffic_mix",
        "churn_withdrawal",
        "ablation_churn_rate",
    ] {
        assert!(registry::get(id).is_some(), "missing {id}");
    }
    // Ids are the JSON file stems; they must be filesystem-safe.
    for id in &ids {
        assert!(
            id.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
            "id {id} is not filesystem-safe"
        );
    }
}

#[test]
fn suite_shares_one_ephemeris_build_and_writes_schema_valid_json() {
    let out = tmp_out("shared");
    // fig2 and fig3 both need pool ephemerides; fig4b builds its own small
    // constellations and must not trigger a pool build either way.
    let opts = SuiteOptions {
        only: vec!["fig2".into(), "fig3".into()],
        out_dir: Some(out.clone()),
        quiet: true,
        fidelity: Some(tiny_fidelity()),
        ..Default::default()
    };
    let before = ephemeris_build_count();
    let summary = run_suite(&opts).expect("suite runs");
    let after = ephemeris_build_count();
    assert_eq!(
        after - before,
        1,
        "a multi-experiment suite must build the pool ephemeris exactly once"
    );
    assert_eq!(summary.results.len(), 2);

    for r in &summary.results {
        // Metadata filled by the runner.
        assert_eq!(r.schema_version, SCHEMA_VERSION);
        assert!(!r.title.is_empty());
        assert_eq!(r.fidelity.runs, 2);
        assert!(!r.params.is_empty());
        assert!(r.timing.wall_s > 0.0);
        // Every declared expectation is evaluated and recorded.
        let exp = registry::get(&r.id).unwrap();
        assert_eq!(r.expectations.len(), exp.expectations().len());
        assert!(!r.expectations.is_empty(), "{} declares no expectations", r.id);

        // The JSON on disk parses back to the same record.
        let path = out.join(format!("{}.json", r.id));
        let text = fs::read_to_string(&path).expect("result written");
        let parsed: ExperimentResult = serde_json::from_str(&text).expect("schema-valid JSON");
        assert_eq!(&parsed, r);
    }
    let _ = fs::remove_dir_all(&out);
}

#[test]
fn suite_rejects_unknown_ids() {
    let opts = SuiteOptions {
        only: vec!["fig99".into()],
        fidelity: Some(tiny_fidelity()),
        ..Default::default()
    };
    let err = run_suite(&opts).unwrap_err();
    assert!(err.contains("fig99"), "error should name the bad id: {err}");
    assert!(err.contains("fig2"), "error should list known ids: {err}");
}

#[test]
fn expectation_failures_are_downgraded_at_quick_fidelity_only_when_lenient() {
    // At the tiny fidelity, fig2's absolute-coverage bands may miss; the
    // quick_strict=false ones must downgrade to warnings rather than fail.
    let out = tmp_out("downgrade");
    let opts = SuiteOptions {
        only: vec!["fig2".into()],
        out_dir: Some(out.clone()),
        quiet: true,
        warn_only: true,
        fidelity: Some(tiny_fidelity()),
        ..Default::default()
    };
    let summary = run_suite(&opts).expect("suite runs");
    assert_eq!(summary.fail, 0, "warn-only mode must not report hard failures");
    let r = &summary.results[0];
    for e in &r.expectations {
        assert!(e.measured.is_some(), "metric {} missing from scalars", e.metric);
    }
    let _ = fs::remove_dir_all(&out);
}
