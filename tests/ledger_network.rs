//! Settlement over the network: signed zero-sum settlement notes gossip to
//! every replica, apply exactly once (replays with the same epoch|proposer
//! id are no-ops), and forged or non-conserving notes are refused
//! everywhere. Runs on the deterministic sim-transport harness.

use dcp::messages::{GossipItem, SettlementNote};
use dcp::testkit::TestNet;
use std::collections::BTreeMap;
use std::time::Duration;

fn transfers(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
    pairs.iter().map(|(p, v)| (p.to_string(), *v)).collect()
}

#[tokio::test(start_paused = true)]
async fn settlement_note_replicates_and_applies_once() {
    let net = TestNet::new(41, &["a", "b", "c"]).await.unwrap();
    net.connect_chain().await.unwrap();

    let note =
        SettlementNote::create(&net.keys, 1, "a", transfers(&[("a", 5.0), ("b", -5.0)])).unwrap();
    net.nodes[0].publish(GossipItem::Settlement(note));

    assert!(
        net.converged_when(Duration::from_secs(5), |h| h.settlements_applied() == 1).await,
        "settlement did not replicate: {:?}",
        net.nodes.iter().map(|h| h.settlements_applied()).collect::<Vec<_>>()
    );
    let reference = net.nodes[0].account_balances();
    assert!((reference["a"] - 5.0).abs() < 1e-9, "{reference:?}");
    assert!((reference["b"] + 5.0).abs() < 1e-9, "{reference:?}");
    let total: f64 = reference.values().sum();
    assert!(total.abs() < 1e-9, "settlement must conserve balances: {total}");
    for h in &net.nodes[1..] {
        assert_eq!(h.account_balances(), reference, "replica {} diverged", h.node_id());
    }
    net.shutdown_all();
}

#[tokio::test(start_paused = true)]
async fn replayed_settlement_id_is_a_network_noop() {
    let net = TestNet::new(42, &["a", "b", "c"]).await.unwrap();
    net.connect_chain().await.unwrap();

    let first =
        SettlementNote::create(&net.keys, 7, "a", transfers(&[("b", 2.5), ("c", -2.5)])).unwrap();
    net.nodes[0].publish(GossipItem::Settlement(first));
    assert!(net.converged_when(Duration::from_secs(5), |h| h.settlements_applied() == 1).await);
    let before = net.nodes[2].account_balances();

    // A second note reusing epoch 7 / proposer "a" — same settlement id,
    // different payload — spreads as gossip but must not apply anywhere.
    let replay =
        SettlementNote::create(&net.keys, 7, "a", transfers(&[("b", 99.0), ("c", -99.0)])).unwrap();
    net.nodes[2].publish(GossipItem::Settlement(replay));
    assert!(net.all_converged(Duration::from_secs(5), 2).await, "replay item still gossips");
    net.settle(Duration::from_millis(200)).await;

    for h in &net.nodes {
        assert_eq!(h.settlements_applied(), 1, "replay applied on {}", h.node_id());
        assert_eq!(h.account_balances(), before, "balances moved on {}", h.node_id());
    }
    net.shutdown_all();
}

#[tokio::test(start_paused = true)]
async fn non_conserving_and_forged_notes_refused_everywhere() {
    let net = TestNet::new(43, &["a", "b"]).await.unwrap();
    net.connect_chain().await.unwrap();

    // Money printer: transfers that do not sum to zero.
    let printer =
        SettlementNote::create(&net.keys, 1, "a", transfers(&[("a", 10.0), ("b", -3.0)])).unwrap();
    net.nodes[0].publish(GossipItem::Settlement(printer));

    // Forgery: b reuses a's signed note but claims it for itself.
    let mut forged =
        SettlementNote::create(&net.keys, 2, "a", transfers(&[("a", 1.0), ("b", -1.0)])).unwrap();
    forged.proposer = "b".into();
    net.nodes[1].publish(GossipItem::Settlement(forged));

    assert!(net.all_converged(Duration::from_secs(5), 2).await);
    net.settle(Duration::from_millis(200)).await;
    for h in &net.nodes {
        assert_eq!(h.settlements_applied(), 0, "bad note applied on {}", h.node_id());
        assert!(h.account_balances().is_empty(), "balances moved on {}", h.node_id());
        assert!(h.rejected_count() >= 2, "rejections not counted on {}", h.node_id());
    }
    net.shutdown_all();
}
