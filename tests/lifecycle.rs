//! The capstone: one MP-LEO constellation lived end to end.
//!
//! A single narrative test drives the whole stack through the paper's
//! story: parties bootstrap a constellation with gap-filling placement and
//! early-adopter tokens, terminals get scheduled onto spare capacity and
//! settle payments, coverage earns quorum-attested proof-of-coverage
//! rewards over a real TCP mesh, one party rage-quits, and the network
//! degrades exactly as gracefully as Fig. 5/6 promise.

use dcp::crypto::KeyDirectory;
use dcp::ledger::LedgerConfig;
use dcp::messages::{GossipItem, WithdrawalNotice};
use dcp::node::{Node, NodeConfig};
use dcp::poc::{CoverageReceipt, Scenario};
use leosim::visibility::{SimConfig, VisibilityTable};
use leosim::TimeGrid;
use mpleo::bootstrap::{simulate_bootstrap, EmissionSchedule};
use mpleo::capacity::{assign_least_loaded, CapacityConfig};
use mpleo::placement::weighted_coverage_s;
use mpleo::robustness::withdrawal_loss;
use orbital::constellation::starlink_gen1_pool;
use orbital::time::Epoch;
use std::sync::Arc;
use std::time::Duration;

#[tokio::test]
async fn full_constellation_lifecycle() {
    let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
    let parties = ["alpha", "beta", "gamma", "delta"];

    // ---- Phase 1: bootstrap the constellation ------------------------
    let pool = starlink_gen1_pool(epoch);
    // A manageable candidate pool for the unit-test budget.
    let candidates: Vec<_> = pool.iter().step_by(11).cloned().collect();
    let cities = geodata::paper_cities();
    let sites = geodata::to_sites(&cities);
    let weights = geodata::population_weights(&cities);
    let grid = TimeGrid::new(epoch, 86_400.0, 300.0);
    let vt = VisibilityTable::compute(&candidates, &sites, &grid, &SimConfig::default());

    let outcome = simulate_bootstrap(&vt, &weights, &parties, 8, &EmissionSchedule::default());
    assert_eq!(outcome.constellation.len(), 32);
    // Coverage grew every round and tokens conserved.
    for pair in outcome.rounds.windows(2) {
        assert!(pair[1].coverage_s >= pair[0].coverage_s);
    }
    let total_tokens: f64 = outcome.balances.values().sum();
    assert!((total_tokens - 4.0 * 1000.0).abs() < 1e-6);
    // The founder ends richest (early-adopter bonus).
    assert!(outcome.balances["alpha"] > outcome.balances["delta"]);

    // ---- Phase 2: serve terminals and check capacity economics -------
    let constellation = outcome.constellation.clone();
    let assignment =
        assign_least_loaded(&vt, &constellation, CapacityConfig { terminals_per_sat: 4 });
    assert!(assignment.service_ratio() > 0.99, "capacity 4 serves 21 spread-out cities");
    let spare = assignment.spare_capacity_steps(grid.steps);
    assert!(spare > 0, "spare capacity exists to sell");

    // ---- Phase 3: proof-of-coverage over a real TCP mesh --------------
    let mut keys = KeyDirectory::new();
    for p in parties {
        keys.register_derived(p, b"lifecycle");
    }
    let mut scenario = Scenario::new(epoch);
    for (pos, &ci) in constellation.iter().enumerate() {
        scenario.add_satellite(pos as u32, candidates[ci].elements);
    }
    // Alpha's ground station under satellite 0's start point.
    {
        use orbital::frames::{subpoint, Geodetic};
        use orbital::propagator::{KeplerJ2, Propagator};
        let prop = KeplerJ2::from_elements(&candidates[constellation[0]].elements, epoch);
        let sub = subpoint(prop.position_at(epoch), epoch.gmst());
        scenario.add_ground_station(
            "alpha",
            orbital::ground::GroundSite::new(
                "gs-alpha",
                Geodetic::from_degrees(sub.latitude_deg(), sub.longitude_deg(), 0.0),
            ),
        );
    }
    let scenario = Arc::new(scenario);
    let mut nodes = Vec::new();
    for p in parties {
        let mut cfg = NodeConfig::local(p, keys.clone());
        cfg.scenario = Some(scenario.clone());
        cfg.auto_attest = true;
        cfg.ledger = LedgerConfig { quorum: 3, reward_per_receipt: 2.0, verifier_share: 0.25 };
        nodes.push(Node::start(cfg).await.unwrap());
    }
    for i in 1..nodes.len() {
        nodes[i].connect(nodes[i - 1].local_addr).await.unwrap();
    }
    let elevation = scenario.computed_elevation_deg(0, "alpha", 0.0).unwrap();
    let receipt = CoverageReceipt::create(&keys, 0, "alpha", "beta", 0.0, elevation).unwrap();
    nodes[0].publish(GossipItem::Receipt(receipt));
    let mut confirmed = false;
    for _ in 0..500 {
        if nodes.iter().all(|n| n.confirmed_count() == 1) {
            confirmed = true;
            break;
        }
        tokio::time::sleep(Duration::from_millis(10)).await;
    }
    assert!(confirmed, "coverage receipt confirmed on every node");
    let balances = nodes[2].reward_balances();
    assert!((balances["beta"] - 1.5).abs() < 1e-9, "{balances:?}");
    assert!((balances["alpha"] - 0.5).abs() < 1e-9, "{balances:?}");

    // ---- Phase 4: delta rage-quits ------------------------------------
    let delta_sats: Vec<u32> = outcome.rounds[3].satellites.iter().map(|&s| s as u32).collect();
    let notice_sats: Vec<u32> = delta_sats.clone();
    let bytes = WithdrawalNotice::signing_bytes("delta", &notice_sats, 0.0);
    let notice = WithdrawalNotice {
        party: "delta".into(),
        sat_ids: notice_sats,
        effective_s: 0.0,
        signature: keys.sign("delta", &bytes).unwrap(),
    };
    nodes[3].publish(GossipItem::Withdrawal(notice));
    let mut seen = false;
    for _ in 0..500 {
        if nodes.iter().all(|n| !n.withdrawals().is_empty()) {
            seen = true;
            break;
        }
        tokio::time::sleep(Duration::from_millis(10)).await;
    }
    assert!(seen, "withdrawal notice replicated");
    for n in &nodes {
        n.shutdown();
    }

    // ---- Phase 5: the physics of the withdrawal -----------------------
    let withdrawn: Vec<usize> = outcome.rounds[3].satellites.clone();
    let loss = withdrawal_loss(&vt, &constellation, &withdrawn, &weights);
    // Delta held a quarter of the satellites; the loss is bounded and
    // proportional, not catastrophic (the paper's §3.4 promise).
    assert!(loss.loss_s >= 0.0);
    let before_frac = loss.before_s / grid.duration_s();
    let after_frac = loss.after_s / grid.duration_s();
    assert!(
        after_frac > 0.5 * before_frac,
        "degradation proportional: {before_frac} -> {after_frac}"
    );
    // And the remaining coverage still exceeds what delta could build
    // alone with the same stake.
    let delta_alone = weighted_coverage_s(&vt, &withdrawn, &weights);
    assert!(
        loss.after_s > delta_alone,
        "staying shared beats going alone even after the exit: {} vs {}",
        loss.after_s,
        delta_alone
    );
}
