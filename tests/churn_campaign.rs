//! End-to-end churn campaign: a shared constellation carrying metro
//! demand loses a tenth of its satellites and a whole party mid-run, then
//! heals. The workspace-level proof of graceful degradation: the served
//! fraction recovers monotonically across the heal stages and returns to
//! the undisturbed baseline exactly, the withdrawal is announced by a
//! verifiable signed notice, and the capacity market — run over the
//! shrinking membership — still settles zero-sum. Thread-count invariance
//! of the whole campaign rides along.

use leosim::ephemeris::EphemerisStore;
use leosim::visibility::SimConfig;
use leosim::TimeGrid;
use mpleo::party::PartyId;
use orbital::constellation::{walker_delta, ShellSpec};
use orbital::time::Epoch;
use traffic::{
    party_keys, run_campaign, sample_failures, CampaignConfig, ChurnEvent, ChurnSchedule,
    TrafficConfig,
};

/// Campaign timeline over the 73-step (12 h / 600 s, endpoints inclusive)
/// grid.
const FAIL_STEP: usize = 12;
const WITHDRAW_STEP: usize = 20;
const RECOVER_STEP: usize = 36;
const REJOIN_STEP: usize = 48;
const WITHDRAWING: usize = 2; // "gamma"

fn scenario() -> (EphemerisStore, Vec<geodata::City>) {
    let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
    let spec = ShellSpec { planes: 10, sats_per_plane: 12, ..ShellSpec::starlink_like() };
    let sats = walker_delta(&spec, epoch);
    let grid = TimeGrid::new(epoch, 12.0 * 3600.0, 600.0);
    let store = EphemerisStore::build(&sats, &grid, &SimConfig::default());
    (store, geodata::paper_cities())
}

fn campaign_config(n_sats: usize) -> CampaignConfig {
    let schedule = ChurnSchedule::new()
        .fail_random_sats(0xE2E, n_sats, 0.1, FAIL_STEP, Some(RECOVER_STEP))
        .at(WITHDRAW_STEP, ChurnEvent::PartyWithdraw { party: WITHDRAWING })
        .at(REJOIN_STEP, ChurnEvent::PartyRejoin { party: WITHDRAWING });
    CampaignConfig {
        // The same deliberately tight satellite cap as the traffic
        // pipeline test, so losing satellites actually costs service.
        traffic: TrafficConfig { sat_capacity_mbps: 4_000.0, ..TrafficConfig::default() },
        schedule,
        epoch_steps: 18, // 3 h epochs over the 600 s grid
        key_seed: b"churn-campaign-e2e".to_vec(),
        ..CampaignConfig::default()
    }
}

#[test]
fn campaign_degrades_gracefully_and_settles_zero_sum() {
    let (store, cities) = scenario();
    let gateways = traffic::gateways_every_nth(&cities, 3);
    let parties: Vec<PartyId> = ["alpha", "beta", "gamma"].map(PartyId::new).into();
    let sat_party: Vec<usize> = (0..store.sat_count()).map(|s| s % 3).collect();
    let city_party: Vec<usize> = (0..cities.len()).map(|c| c % 3).collect();
    let cfg = campaign_config(store.sat_count());
    let steps = store.steps();
    assert_eq!(steps, 73, "the timeline above assumes a 73-step grid");

    let report = run_campaign(
        &store,
        &cities,
        &gateways,
        &SimConfig::default(),
        &cfg,
        &sat_party,
        &city_party,
        &parties,
    );

    // The campaign bites: down satellites peak at the failed tenth plus
    // the withdrawn party's third of the fleet.
    let failed = sample_failures(0xE2E, store.sat_count(), 0.1);
    let gamma_sats = sat_party.iter().filter(|&&p| p == WITHDRAWING).count();
    let expected_peak =
        failed.len() + gamma_sats - failed.iter().filter(|&&s| sat_party[s] == WITHDRAWING).count();
    let peak = report.down_sats.iter().copied().max().unwrap();
    assert_eq!(peak, expected_peak, "peak outage must combine failures and the withdrawal");
    assert!(report.worst_deficit() > 0.0, "losing a third of the fleet must cost service");

    // Graceful recovery: the mean deficit never worsens from one heal
    // stage to the next, and after the rejoin it is exactly zero (healed
    // steps reuse the baseline routes bit for bit). The stages sit in
    // different diurnal windows, so the monotonicity check tolerates a
    // small demand-pattern wobble — recovery, not noise, must dominate.
    const STAGE_SLACK: f64 = 0.02;
    let mean = |range: std::ops::Range<usize>| {
        let len = range.len().max(1);
        report.deficit_fraction[range].iter().sum::<f64>() / len as f64
    };
    let both_down = mean(WITHDRAW_STEP..RECOVER_STEP);
    let after_recover = mean(RECOVER_STEP..REJOIN_STEP);
    let after_rejoin = mean(REJOIN_STEP..steps);
    assert!(
        after_recover <= both_down + STAGE_SLACK,
        "healing the failures must not deepen the deficit ({after_recover} > {both_down})"
    );
    assert!(
        after_rejoin <= after_recover + STAGE_SLACK,
        "the rejoin must not deepen the deficit ({after_rejoin} > {after_recover})"
    );
    for k in REJOIN_STEP..steps {
        assert_eq!(report.deficit_fraction[k], 0.0, "step {k} still off baseline after rejoin");
        assert_eq!(report.reroutes[k], 0, "step {k} still rerouted after rejoin");
    }
    assert_eq!(report.time_to_recover_steps, Some(0), "the rejoin was the last event");
    assert!(report.recovered());

    // While withdrawn, the party's sponsored demand is gone and its served
    // delta is strictly negative overall.
    for k in WITHDRAW_STEP..REJOIN_STEP {
        assert_eq!(report.churn.party_offered[WITHDRAWING * steps + k], 0.0);
    }
    assert!(
        report.party_delta_mean(WITHDRAWING) < 0.0,
        "the withdrawing party must lose served traffic on net"
    );

    // The withdrawal is announced with a verifiable signature over the
    // party's satellite manifest.
    assert_eq!(report.notices.len(), 1);
    let notice = &report.notices[0];
    assert_eq!(notice.party, "gamma");
    assert_eq!(notice.sat_ids.len(), gamma_sats);
    assert_eq!(notice.effective_s, WITHDRAW_STEP as f64 * 600.0);
    let keys = party_keys(&parties, &cfg.key_seed);
    let bytes = dcp::messages::WithdrawalNotice::signing_bytes(
        &notice.party,
        &notice.sat_ids,
        notice.effective_s,
    );
    assert!(keys.verify(&notice.party, &bytes, &notice.signature), "notice must verify");

    // The market still clears zero-sum over the shrinking membership, and
    // the tight cap guarantees there was order flow to clear.
    assert!(!report.orders.is_empty(), "an underprovisioned system must trade");
    let net = report.settlement_net();
    assert!(net.abs() < 1e-9, "settlement must be zero-sum, net {net}");
    if report.trades > 0 {
        assert!(report.settlement.values().any(|&v| v < 0.0), "some buyer pays");
        assert!(report.settlement.values().any(|&v| v > 0.0), "some seller earns");
    }
}

#[test]
fn campaign_is_byte_identical_across_thread_counts() {
    let (store, cities) = scenario();
    let gateways = traffic::gateways_every_nth(&cities, 3);
    let parties: Vec<PartyId> = ["alpha", "beta", "gamma"].map(PartyId::new).into();
    let sat_party: Vec<usize> = (0..store.sat_count()).map(|s| s % 3).collect();
    let city_party: Vec<usize> = (0..cities.len()).map(|c| c % 3).collect();
    let cfg = campaign_config(store.sat_count());

    let run_at = |threads: usize| {
        simrt::with_thread_cap(threads, || {
            run_campaign(
                &store,
                &cities,
                &gateways,
                &SimConfig::default(),
                &cfg,
                &sat_party,
                &city_party,
                &parties,
            )
        })
    };
    let a = run_at(1);
    let b = run_at(4);
    for (x, y) in a.served_fraction.iter().zip(&b.served_fraction) {
        assert_eq!(x.to_bits(), y.to_bits(), "served fraction must be byte-identical");
    }
    for (x, y) in a.deficit_fraction.iter().zip(&b.deficit_fraction) {
        assert_eq!(x.to_bits(), y.to_bits(), "deficit fraction must be byte-identical");
    }
    assert_eq!(a.reroutes, b.reroutes);
    assert_eq!(a.orders, b.orders);
    assert_eq!(a.notices, b.notices);
    assert_eq!(a.settlement, b.settlement);
}
