//! Full-stack proof-of-coverage test: real TCP nodes, real orbit
//! propagation, quorum attestation, and ledger convergence — including a
//! fraud attempt rejected by physics.

use dcp::crypto::KeyDirectory;
use dcp::ledger::LedgerConfig;
use dcp::messages::GossipItem;
use dcp::node::{Node, NodeConfig, NodeHandle};
use dcp::poc::{CoverageReceipt, Scenario};
use orbital::constellation::single_plane;
use orbital::frames::{subpoint, Geodetic};
use orbital::ground::GroundSite;
use orbital::propagator::{KeplerJ2, Propagator};
use orbital::time::Epoch;
use std::sync::Arc;
use std::time::Duration;

fn epoch() -> Epoch {
    Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
}

fn network_keys(parties: &[&str]) -> KeyDirectory {
    let mut keys = KeyDirectory::new();
    for p in parties {
        keys.register_derived(*p, b"poc-test-network");
    }
    keys
}

fn scenario_with_gs(verifier: &str) -> Arc<Scenario> {
    let mut sc = Scenario::new(epoch());
    let sats = single_plane(3, 550.0, 53.0, epoch());
    for s in &sats {
        sc.add_satellite(s.id, s.elements);
    }
    let prop = KeplerJ2::from_elements(&sats[0].elements, epoch());
    let sub = subpoint(prop.position_at(epoch()), epoch().gmst());
    sc.add_ground_station(
        verifier,
        GroundSite::new("gs", Geodetic::from_degrees(sub.latitude_deg(), sub.longitude_deg(), 0.0)),
    );
    Arc::new(sc)
}

async fn start_mesh(parties: &[&str], keys: &KeyDirectory, scenario: Arc<Scenario>, quorum: usize) -> Vec<NodeHandle> {
    let mut handles = Vec::new();
    for p in parties {
        let mut cfg = NodeConfig::local(*p, keys.clone());
        cfg.scenario = Some(scenario.clone());
        cfg.auto_attest = true;
        cfg.ledger = LedgerConfig { quorum, reward_per_receipt: 5.0, verifier_share: 0.4 };
        handles.push(Node::start(cfg).await.expect("node starts"));
    }
    for i in 1..handles.len() {
        handles[i].connect(handles[i - 1].local_addr).await.unwrap();
    }
    handles
}

async fn wait_until(handles: &[NodeHandle], pred: impl Fn(&NodeHandle) -> bool, ms: u64) -> bool {
    for _ in 0..(ms / 10) {
        if handles.iter().all(&pred) {
            return true;
        }
        tokio::time::sleep(Duration::from_millis(10)).await;
    }
    false
}

#[tokio::test]
async fn honest_receipt_confirmed_across_mesh() {
    let parties = ["alpha", "beta", "gamma"];
    let keys = network_keys(&parties);
    let scenario = scenario_with_gs("alpha");
    let handles = start_mesh(&parties, &keys, scenario.clone(), 2).await;

    let el = scenario.computed_elevation_deg(0, "alpha", 0.0).unwrap();
    let receipt = CoverageReceipt::create(&keys, 0, "alpha", "beta", 0.0, el).unwrap();
    handles[2].publish(GossipItem::Receipt(receipt));

    assert!(
        wait_until(&handles, |h| h.confirmed_count() == 1, 5000).await,
        "receipt not confirmed everywhere: {:?}",
        handles.iter().map(|h| h.confirmed_count()).collect::<Vec<_>>()
    );
    // Converged ledgers.
    let digests: std::collections::HashSet<String> =
        handles.iter().map(|h| h.ledger_digest()).collect();
    assert_eq!(digests.len(), 1);
    // Rewards: owner beta 60% of 5, verifier alpha 40% of 5.
    let balances = handles[0].reward_balances();
    assert!((balances["beta"] - 3.0).abs() < 1e-9, "{balances:?}");
    assert!((balances["alpha"] - 2.0).abs() < 1e-9, "{balances:?}");
    for h in &handles {
        h.shutdown();
    }
}

#[tokio::test]
async fn fraudulent_receipt_never_confirms() {
    let parties = ["alpha", "beta", "gamma", "delta"];
    let keys = network_keys(&parties);
    let scenario = scenario_with_gs("alpha");
    let handles = start_mesh(&parties, &keys, scenario.clone(), 2).await;

    // Claim coverage half an orbit after the satellite has left.
    let fraud = CoverageReceipt::create(&keys, 0, "alpha", "beta", 48.0 * 60.0, 70.0).unwrap();
    handles[0].publish(GossipItem::Receipt(fraud));

    // The receipt itself spreads (it is data), plus attestations.
    assert!(
        wait_until(&handles, |h| h.item_count() > parties.len(), 5000).await,
        "gossip did not spread"
    );
    tokio::time::sleep(Duration::from_millis(200)).await;
    for h in &handles {
        assert_eq!(h.confirmed_count(), 0, "{} confirmed a fraudulent receipt", h.node_id());
        assert!(h.reward_balances().is_empty());
    }
    for h in &handles {
        h.shutdown();
    }
}

#[tokio::test]
async fn mixed_honest_and_fraud_settles_correctly() {
    let parties = ["alpha", "beta", "gamma"];
    let keys = network_keys(&parties);
    let scenario = scenario_with_gs("alpha");
    let handles = start_mesh(&parties, &keys, scenario.clone(), 2).await;

    let el = scenario.computed_elevation_deg(0, "alpha", 0.0).unwrap();
    let honest = CoverageReceipt::create(&keys, 0, "alpha", "beta", 0.0, el).unwrap();
    let fraud = CoverageReceipt::create(&keys, 1, "alpha", "gamma", 0.0, 60.0).unwrap();
    // Satellite 1 is 120 degrees away in phase: not overhead at t=0.
    handles[0].publish(GossipItem::Receipt(honest));
    handles[1].publish(GossipItem::Receipt(fraud));

    assert!(
        wait_until(&handles, |h| h.confirmed_count() == 1, 5000).await,
        "exactly the honest receipt should confirm"
    );
    let balances = handles[2].reward_balances();
    assert!(balances.contains_key("beta"), "honest owner credited: {balances:?}");
    assert!(!balances.contains_key("gamma"), "fraud owner not credited: {balances:?}");
    for h in &handles {
        h.shutdown();
    }
}

#[tokio::test]
async fn late_joining_party_replicates_ledger() {
    let parties = ["alpha", "beta", "gamma"];
    let keys = network_keys(&parties);
    let scenario = scenario_with_gs("alpha");
    let handles = start_mesh(&parties[..2], &keys, scenario.clone(), 2).await;

    let el = scenario.computed_elevation_deg(0, "alpha", 0.0).unwrap();
    let receipt = CoverageReceipt::create(&keys, 0, "alpha", "beta", 0.0, el).unwrap();
    handles[0].publish(GossipItem::Receipt(receipt));
    assert!(wait_until(&handles, |h| h.confirmed_count() == 1, 5000).await);

    // Gamma joins after the fact and must catch up via anti-entropy.
    let mut cfg = NodeConfig::local("gamma", keys.clone());
    cfg.scenario = Some(scenario.clone());
    cfg.auto_attest = true;
    cfg.ledger = LedgerConfig { quorum: 2, reward_per_receipt: 5.0, verifier_share: 0.4 };
    let gamma = Node::start(cfg).await.unwrap();
    gamma.connect(handles[1].local_addr).await.unwrap();

    let mut all = handles;
    all.push(gamma);
    assert!(
        wait_until(&all, |h| h.confirmed_count() == 1, 5000).await,
        "late joiner did not replicate the confirmed ledger"
    );
    let d: std::collections::HashSet<String> = all.iter().map(|h| h.ledger_digest()).collect();
    assert_eq!(d.len(), 1);
    for h in &all {
        h.shutdown();
    }
}
