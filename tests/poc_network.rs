//! Full-stack proof-of-coverage test on the deterministic harness: sim
//! transport nodes, real orbit propagation, quorum attestation, and ledger
//! convergence — including a fraud attempt rejected by physics. Runs under
//! paused tokio time: every wait is virtual, so the whole file completes in
//! milliseconds of wall clock with a fixed network seed.

use dcp::ledger::LedgerConfig;
use dcp::messages::GossipItem;
use dcp::poc::{CoverageReceipt, Scenario};
use dcp::testkit::TestNet;
use orbital::constellation::single_plane;
use orbital::frames::{subpoint, Geodetic};
use orbital::ground::GroundSite;
use orbital::propagator::{KeplerJ2, Propagator};
use orbital::time::Epoch;
use std::sync::Arc;
use std::time::Duration;

fn epoch() -> Epoch {
    Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
}

fn scenario_with_gs(verifier: &str) -> Arc<Scenario> {
    let mut sc = Scenario::new(epoch());
    let sats = single_plane(3, 550.0, 53.0, epoch());
    for s in &sats {
        sc.add_satellite(s.id, s.elements);
    }
    let prop = KeplerJ2::from_elements(&sats[0].elements, epoch());
    let sub = subpoint(prop.position_at(epoch()), epoch().gmst());
    sc.add_ground_station(
        verifier,
        GroundSite::new("gs", Geodetic::from_degrees(sub.latitude_deg(), sub.longitude_deg(), 0.0)),
    );
    Arc::new(sc)
}

async fn poc_mesh(seed: u64, parties: &[&str], quorum: usize) -> (TestNet, Arc<Scenario>) {
    let scenario = scenario_with_gs("alpha");
    let sc = scenario.clone();
    let net = TestNet::with_config(seed, parties, move |_, mut cfg| {
        cfg.scenario = Some(sc.clone());
        cfg.auto_attest = true;
        cfg.ledger = LedgerConfig { quorum, reward_per_receipt: 5.0, verifier_share: 0.4 };
        cfg
    })
    .await
    .expect("nodes start");
    (net, scenario)
}

#[tokio::test(start_paused = true)]
async fn honest_receipt_confirmed_across_mesh() {
    let (net, scenario) = poc_mesh(11, &["alpha", "beta", "gamma"], 2).await;
    net.connect_chain().await.unwrap();

    let el = scenario.computed_elevation_deg(0, "alpha", 0.0).unwrap();
    let receipt = CoverageReceipt::create(&net.keys, 0, "alpha", "beta", 0.0, el).unwrap();
    net.nodes[2].publish(GossipItem::Receipt(receipt));

    assert!(
        net.converged_when(Duration::from_secs(5), |h| h.confirmed_count() == 1).await,
        "receipt not confirmed everywhere: {:?}",
        net.nodes.iter().map(|h| h.confirmed_count()).collect::<Vec<_>>()
    );
    assert!(net.ledgers_agree(), "ledger digests diverged");
    // Rewards: owner beta 60% of 5, verifier alpha 40% of 5.
    let balances = net.nodes[0].reward_balances();
    assert!((balances["beta"] - 3.0).abs() < 1e-9, "{balances:?}");
    assert!((balances["alpha"] - 2.0).abs() < 1e-9, "{balances:?}");
    net.shutdown_all();
}

#[tokio::test(start_paused = true)]
async fn fraudulent_receipt_never_confirms() {
    let parties = ["alpha", "beta", "gamma", "delta"];
    let (net, _) = poc_mesh(12, &parties, 2).await;
    net.connect_chain().await.unwrap();

    // Claim coverage half an orbit after the satellite has left.
    let fraud = CoverageReceipt::create(&net.keys, 0, "alpha", "beta", 48.0 * 60.0, 70.0).unwrap();
    net.nodes[0].publish(GossipItem::Receipt(fraud));

    // The receipt itself spreads (it is data), plus attestations.
    assert!(
        net.converged_when(Duration::from_secs(5), |h| h.item_count() > parties.len()).await,
        "gossip did not spread"
    );
    net.settle(Duration::from_millis(200)).await;
    for h in &net.nodes {
        assert_eq!(h.confirmed_count(), 0, "{} confirmed a fraudulent receipt", h.node_id());
        assert!(h.reward_balances().is_empty());
    }
    net.shutdown_all();
}

#[tokio::test(start_paused = true)]
async fn mixed_honest_and_fraud_settles_correctly() {
    let (net, scenario) = poc_mesh(13, &["alpha", "beta", "gamma"], 2).await;
    net.connect_chain().await.unwrap();

    let el = scenario.computed_elevation_deg(0, "alpha", 0.0).unwrap();
    let honest = CoverageReceipt::create(&net.keys, 0, "alpha", "beta", 0.0, el).unwrap();
    // Satellite 1 is 120 degrees away in phase: not overhead at t=0.
    let fraud = CoverageReceipt::create(&net.keys, 1, "alpha", "gamma", 0.0, 60.0).unwrap();
    net.nodes[0].publish(GossipItem::Receipt(honest));
    net.nodes[1].publish(GossipItem::Receipt(fraud));

    assert!(
        net.converged_when(Duration::from_secs(5), |h| h.confirmed_count() == 1).await,
        "exactly the honest receipt should confirm"
    );
    let balances = net.nodes[2].reward_balances();
    assert!(balances.contains_key("beta"), "honest owner credited: {balances:?}");
    assert!(!balances.contains_key("gamma"), "fraud owner not credited: {balances:?}");
    net.shutdown_all();
}

#[tokio::test(start_paused = true)]
async fn late_joining_party_replicates_ledger() {
    // Start all three nodes but only wire alpha-beta; gamma joins late.
    let (net, scenario) = poc_mesh(14, &["alpha", "beta", "gamma"], 2).await;
    net.connect(1, 0).await.unwrap();

    let el = scenario.computed_elevation_deg(0, "alpha", 0.0).unwrap();
    let receipt = CoverageReceipt::create(&net.keys, 0, "alpha", "beta", 0.0, el).unwrap();
    net.nodes[0].publish(GossipItem::Receipt(receipt));
    assert!(
        dcp::testkit::converge_until(Duration::from_secs(5), || {
            net.nodes[..2].iter().all(|h| h.confirmed_count() == 1)
        })
        .await
    );

    // Gamma connects after the fact and must catch up via anti-entropy.
    net.connect(2, 1).await.unwrap();
    assert!(
        net.converged_when(Duration::from_secs(5), |h| h.confirmed_count() == 1).await,
        "late joiner did not replicate the confirmed ledger"
    );
    assert!(net.ledgers_agree());
    net.shutdown_all();
}
