//! Integration tests for the extension systems: latency, DTN, SLA,
//! handover, failures, maneuvers, and conjunction screening working
//! together over one shared scenario.

use leosim::coverage::CoverageStats;
use leosim::dtn::{dtn_stats, simulate_dtn};
use leosim::latency::{bentpipe_latency, geo_latency_ms};
use leosim::visibility::{SimConfig, VisibilityTable};
use leosim::TimeGrid;
use mpleo::failures::{simulate_failures, FailureModel};
use mpleo::handover::{simulate_handover, HandoverPolicy};
use mpleo::sla::quote;
use orbital::constellation::{starlink_gen1_pool, walker_delta, ShellSpec};
use orbital::ground::GroundSite;
use orbital::maneuver;
use orbital::time::Epoch;

fn epoch() -> Epoch {
    Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
}

/// One shared scenario: a 160-satellite Walker constellation, a Taipei
/// terminal, and a nearby gateway, over one day.
struct Scenario {
    vt_term: VisibilityTable,
    vt_gs: VisibilityTable,
    sats: Vec<orbital::constellation::Satellite>,
    grid: TimeGrid,
}

fn scenario() -> Scenario {
    let spec = ShellSpec { planes: 16, sats_per_plane: 10, ..ShellSpec::starlink_like() };
    let sats = walker_delta(&spec, epoch());
    let term = [GroundSite::from_degrees("Taipei", 25.03, 121.56)];
    let gs = [GroundSite::from_degrees("Kaohsiung-GS", 22.63, 120.30)];
    let grid = TimeGrid::new(epoch(), 86_400.0, 60.0);
    let cfg = SimConfig::default();
    Scenario {
        vt_term: VisibilityTable::compute(&sats, &term, &grid, &cfg),
        vt_gs: VisibilityTable::compute(&sats, &gs, &grid, &cfg),
        sats,
        grid,
    }
}

#[test]
fn latency_beats_geo_whenever_connected() {
    let sc = scenario();
    let term = GroundSite::from_degrees("Taipei", 25.03, 121.56);
    let gs = GroundSite::from_degrees("Kaohsiung-GS", 22.63, 120.30);
    let series = bentpipe_latency(&sc.sats, &term, &gs, &sc.grid, &SimConfig::default());
    assert!(series.availability() > 0.3, "availability {}", series.availability());
    let geo = geo_latency_ms(500.0, 500.0);
    for d in series.delay_ms.iter().flatten() {
        assert!(*d < geo / 10.0, "LEO delay {d} ms should be >10x below GEO {geo} ms");
    }
}

#[test]
fn sla_and_handover_consistent_with_coverage() {
    let sc = scenario();
    let all: Vec<usize> = (0..sc.sats.len()).collect();
    let covered = sc.vt_term.coverage_union(&all, 0);
    let stats = CoverageStats::from_bitset(&covered, &sc.grid);
    let q = quote(&stats);
    // The quote's availability must equal the measured coverage.
    assert!((q.availability - stats.covered_fraction).abs() < 1e-12);
    // Handover trace connects exactly the covered steps.
    let trace = simulate_handover(&sc.vt_term, 0, &all, HandoverPolicy::StickyMaxDwell);
    assert_eq!(trace.connected_steps, covered.count_ones());
}

#[test]
fn dtn_latency_upper_bounds_realtime_gaps() {
    // DTN delivery can never be *faster* than the real-time path when a
    // simultaneous path exists: if terminal and GS are jointly covered at
    // the creation step, delivery is immediate (same step).
    let sc = scenario();
    let all: Vec<usize> = (0..sc.sats.len()).collect();
    let deliveries = simulate_dtn(&sc.vt_term, &sc.vt_gs, 0, &all, &[0], 30);
    let stats = dtn_stats(&deliveries, &sc.grid);
    assert!(stats.delivery_ratio > 0.9, "dense constellation delivers: {}", stats.delivery_ratio);
    for d in &deliveries {
        if let Some(lat) = d.latency_steps() {
            // With 160 sats the terminal sees a satellite within minutes;
            // bundles should deliver within a couple of hours worst case.
            assert!(lat as f64 * sc.grid.step_s < 6.0 * 3600.0, "latency {lat} steps");
        }
    }
}

#[test]
fn failure_process_interoperates_with_sla() {
    let sc = scenario();
    let all: Vec<usize> = (0..sc.sats.len()).collect();
    let model = FailureModel { mtbf_s: 5.0 * 86_400.0, launch_interval_s: 0.0, batch_size: 0 };
    let run = simulate_failures(&sc.vt_term, &all, 0, &model, 60, 7);
    assert_eq!(run.alive_count.len(), sc.grid.steps);
    // Coverage trajectory stays within [0, 1] and correlates with deaths.
    assert!(run.coverage.iter().all(|c| (0.0..=1.0).contains(c)));
    assert!(run.min_alive() <= all.len());
}

#[test]
fn maneuver_costs_consistent_with_placement_story() {
    // The integration-level sanity check of the economics ablation: for a
    // 550 km shell, inclination changes cost orders of magnitude more than
    // phasing, and the nodal-drift trick undercuts direct plane rotation.
    let incl = maneuver::plane_change(550.0, 10f64.to_radians());
    let phase = maneuver::phasing(550.0, 45f64.to_radians(), 30);
    let alt = maneuver::hohmann(550.0, 604.0);
    assert!(incl.delta_v_km_s / phase.delta_v_km_s > 30.0);
    assert!(incl.delta_v_km_s / alt.delta_v_km_s > 30.0);
    let drift = maneuver::nodal_drift(550.0, 450.0, 53f64.to_radians(), 60f64.to_radians());
    assert!(drift.delta_v_km_s < 0.2);
    assert!(drift.duration_s > 30.0 * 86_400.0);
}

#[test]
fn walker_pool_is_conjunction_free_but_rogue_is_caught() {
    use orbital::conjunction::{screen_all_pairs, ScreeningConfig};
    let spec = ShellSpec { planes: 6, sats_per_plane: 6, phasing: 1, ..ShellSpec::starlink_like() };
    let mut els: Vec<_> = walker_delta(&spec, epoch()).iter().map(|s| s.elements).collect();
    let cfg = ScreeningConfig::default();
    assert!(screen_all_pairs(&els, epoch(), 6.0 * 3600.0, &cfg).is_empty());
    // Duplicate slot = guaranteed 0 km conjunction.
    els.push(els[0]);
    let found = screen_all_pairs(&els, epoch(), 3600.0, &cfg);
    assert!(!found.is_empty());
    assert!(found[0].miss_distance_km < 0.5);
}

#[test]
fn full_pool_smoke() {
    // The 4.2k-satellite pool flows through the stack end to end.
    let pool = starlink_gen1_pool(epoch());
    assert!(pool.len() > 4000);
    let term = [GroundSite::from_degrees("Taipei", 25.03, 121.56)];
    let grid = TimeGrid::new(epoch(), 6.0 * 3600.0, 300.0);
    let vt = VisibilityTable::compute(&pool, &term, &grid, &SimConfig::default());
    let all: Vec<usize> = (0..pool.len()).collect();
    let stats = CoverageStats::from_bitset(&vt.coverage_union(&all, 0), &grid);
    assert!(stats.covered_fraction > 0.999, "full pool covers Taipei continuously");
    assert_eq!(quote(&stats).tier.name, "real-time");
}
