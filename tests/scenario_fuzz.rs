//! CI smoke tier of the seeded scenario fuzzer.
//!
//! Re-checks the pinned corpus under `tests/corpus/` (the scenarios every
//! run must keep passing) plus a fresh window of seeds starting at the
//! date-independent `scenario::seeds::FUZZ_SMOKE_START`, then pins the
//! strongest stress scenarios as individual regression tests.
//!
//! Regression provenance: a 220 000-seed hunt (seeds 0..220000, all
//! oracles) found **zero** violations at the time this tier was added, so
//! the pinned entries below are the *strongest survivors* — the scenarios
//! that exercise the most machinery — rather than shrunk former failures.
//! If the fuzzer ever finds a real failure, shrink it (`mpleo fuzz` does
//! this automatically) and add the one-line repro JSON under
//! `tests/corpus/` with `"scenario"` inline so it replays exactly.

use scenario::seeds::FUZZ_SMOKE_START;
use scenario::{check_scenario, load_corpus, run_fuzz, Scenario};
use std::path::Path;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

#[test]
fn pinned_corpus_passes_every_oracle() {
    let entries = load_corpus(&corpus_dir()).expect("corpus must load");
    assert!(entries.len() >= 5, "corpus lost entries: {}", entries.len());
    for (path, entry) in entries {
        if let Err(violation) = entry.check() {
            panic!("{} ({}): {violation}", path.display(), entry.note);
        }
    }
}

#[test]
fn fresh_seed_window_passes_every_oracle() {
    // A fixed, date-independent window; CI adds more on top of this.
    let report = run_fuzz(FUZZ_SMOKE_START, 8, None, &mut |_, _| {});
    assert_eq!(report.checked, 8);
    let repro_lines: Vec<String> = report.failures.iter().map(|r| r.to_json()).collect();
    assert!(report.clean(), "fresh seeds failed:\n{}", repro_lines.join("\n"));
}

/// Regression: seed 2032 — the heaviest market scenario found in the
/// initial 220k-seed hunt (221 trades over many epochs). Guards epoch
/// clearing, zero-sum settlement, and signature verification under load.
#[test]
fn regression_market_stress_seed_2032() {
    let sc = Scenario::generate(2032);
    let outcome = check_scenario(&sc).unwrap_or_else(|v| panic!("seed 2032: {v}"));
    assert!(outcome.trades >= 100, "scenario lost its market stress: {} trades", outcome.trades);
}

/// Regression: seed 513 — the largest work product found (60 sats x 95
/// steps). Guards kernel-vs-reference equivalence and thread bit-identity
/// on the biggest sampled surface.
#[test]
fn regression_scale_stress_seed_513() {
    let sc = Scenario::generate(513);
    assert!(sc.n_sats() * sc.steps() >= 4000, "scenario lost its scale");
    let outcome = check_scenario(&sc).unwrap_or_else(|v| panic!("seed 513: {v}"));
    assert!(outcome.reference_steps > 0, "reference cross-check must sample steps");
}

/// Regression: seed 247 — SGP4 propagation with 16 churn events across 4
/// parties and a schedule that fully heals. Guards baseline-reuse identity
/// on nominal steps and the monotone-recovery oracle.
#[test]
fn regression_churn_sgp4_stress_seed_247() {
    let sc = Scenario::generate(247);
    assert!(sc.sgp4, "scenario lost SGP4");
    assert!(sc.schedule.events.len() >= 10, "scenario lost its churn density");
    assert!(sc.fully_heals(), "scenario no longer heals");
    check_scenario(&sc).unwrap_or_else(|v| panic!("seed 247: {v}"));
}
