//! Multi-party satellite control in action (the paper's §4 vision).
//!
//! Four parties share a constellation. The satellite's *owner* tries to
//! shut down service over a region — the exact abuse that motivated
//! Taiwan's independent-constellation plans — and the control group blocks
//! it. A legitimate safe-mode command then passes with a quorum. All over
//! real TCP gossip.
//!
//! Run with: `cargo run --release -p mpleo-bench --example multi_party_control`

use dcp::control::ControlEvent;
use dcp::crypto::KeyDirectory;
use dcp::messages::GossipItem;
use dcp::node::{Node, NodeConfig};
use mpleo::control::{Command, ControlGroup, ProposalState};
use std::time::Duration;

#[tokio::main]
async fn main() {
    let parties = ["usa-isp", "taiwan", "korea", "eu-coop"];
    let mut keys = KeyDirectory::new();
    for p in parties {
        keys.register_derived(p, b"control-demo");
    }
    // Quorum 3 of 4: no pair of parties can force a sensitive command.
    let mut group = ControlGroup::new(parties.map(String::from), 3);
    group.register_satellite(42, "usa-isp");

    let mut nodes = Vec::new();
    for p in parties {
        let mut cfg = NodeConfig::local(p, keys.clone());
        cfg.control = Some(group.clone());
        nodes.push(Node::start(cfg).await.unwrap());
    }
    for i in 1..nodes.len() {
        nodes[i].connect(nodes[i - 1].local_addr).await.unwrap();
    }
    println!("4-party control group online (quorum 3 of 4), satellite 42 owned by usa-isp\n");

    // Scene 1: the owner tries to cut service over Taiwan.
    println!("usa-isp proposes: RegionShutdown(Taiwan)");
    nodes[0].publish(GossipItem::Control(
        ControlEvent::propose(
            &keys,
            1,
            42,
            "usa-isp",
            Command::RegionShutdown { region: "Taiwan".into() },
        )
        .unwrap(),
    ));
    println!("taiwan votes NO, korea votes NO");
    nodes[1].publish(GossipItem::Control(ControlEvent::vote(&keys, 1, "taiwan", false).unwrap()));
    nodes[2].publish(GossipItem::Control(ControlEvent::vote(&keys, 1, "korea", false).unwrap()));
    wait(&nodes, 1, ProposalState::Rejected).await;
    println!("=> proposal 1 REJECTED on every node — no party, not even the");
    println!("   owner, can unilaterally deny service to a region.\n");

    // Scene 2: a legitimate safety command gathers a quorum.
    println!("usa-isp proposes: SafeMode (debris conjunction warning)");
    nodes[0].publish(GossipItem::Control(
        ControlEvent::propose(&keys, 2, 42, "usa-isp", Command::SafeMode).unwrap(),
    ));
    nodes[3].publish(GossipItem::Control(ControlEvent::vote(&keys, 2, "eu-coop", true).unwrap()));
    nodes[2].publish(GossipItem::Control(ControlEvent::vote(&keys, 2, "korea", true).unwrap()));
    wait(&nodes, 2, ProposalState::Executed).await;
    println!("=> proposal 2 EXECUTED with approvals from usa-isp, eu-coop, korea.\n");

    println!("replica agreement (executed-log digests):");
    for n in &nodes {
        println!("  {}: {:016x}", n.node_id(), n.control_log_digest().unwrap());
    }
    for n in &nodes {
        n.shutdown();
    }
}

async fn wait(nodes: &[dcp::node::NodeHandle], id: u64, state: ProposalState) {
    for _ in 0..500 {
        if nodes.iter().all(|n| n.control_state(id) == Some(state)) {
            return;
        }
        tokio::time::sleep(Duration::from_millis(10)).await;
    }
    panic!("proposal {id} did not reach {state:?} everywhere");
}
