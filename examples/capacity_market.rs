//! A decentralized capacity market session.
//!
//! Two provider parties with spare satellite capacity and one consumer run
//! protocol nodes; orders ride the gossip layer and every replica's order
//! book executes the same trades — a functioning open data market with no
//! exchange operator (paper §3.2).
//!
//! Run with: `cargo run --release -p mpleo-bench --example capacity_market`

use dcp::crypto::KeyDirectory;
use dcp::market::make_order;
use dcp::messages::GossipItem;
use dcp::node::{Node, NodeConfig};
use std::time::Duration;

#[tokio::main]
async fn main() {
    let parties = ["sat-coop-a", "sat-coop-b", "island-isp"];
    let mut keys = KeyDirectory::new();
    for p in parties {
        keys.register_derived(p, b"market-demo");
    }

    let a = Node::start(NodeConfig::local("sat-coop-a", keys.clone())).await.unwrap();
    let b = Node::start(NodeConfig::local("sat-coop-b", keys.clone())).await.unwrap();
    let c = Node::start(NodeConfig::local("island-isp", keys.clone())).await.unwrap();
    b.connect(a.local_addr).await.unwrap();
    c.connect(b.local_addr).await.unwrap();
    println!("three-node market mesh up (a - b - c line topology)");
    tokio::time::sleep(Duration::from_millis(100)).await;

    // Providers advertise spare capacity (asks), sequenced.
    println!("\nsat-coop-a asks: 500 terminal-steps @ 1.20");
    a.publish(GossipItem::Order(make_order(&keys, "sat-coop-a", false, 1.20, 500, 0).unwrap()));
    println!("sat-coop-b asks: 400 terminal-steps @ 1.05");
    b.publish(GossipItem::Order(make_order(&keys, "sat-coop-b", false, 1.05, 400, 0).unwrap()));
    wait_items(&[&a, &b, &c], 2).await;

    // The consumer lifts the market for 700 steps, paying up to 1.30.
    println!("island-isp bids: 700 terminal-steps @ 1.30");
    c.publish(GossipItem::Order(make_order(&keys, "island-isp", true, 1.30, 700, 0).unwrap()));
    wait_items(&[&a, &b, &c], 3).await;
    tokio::time::sleep(Duration::from_millis(200)).await;

    println!("\ntrades (as seen by each replica):");
    for n in [&a, &b, &c] {
        let t = n.trades();
        println!("  {}:", n.node_id());
        for trade in &t {
            println!(
                "    {} buys {} steps from {} @ {:.2}",
                trade.buyer, trade.quantity, trade.seller, trade.price
            );
        }
    }
    assert_eq!(a.trades(), b.trades());
    assert_eq!(b.trades(), c.trades());

    println!("\nnet settlement:");
    for (party, credits) in a.market_settlement() {
        println!("  {party}: {credits:+.2}");
    }
    println!("\ncheapest ask filled first (price-time priority); identical books");
    println!("on every node without any central exchange.");
    for n in [&a, &b, &c] {
        n.shutdown();
    }
}

async fn wait_items(nodes: &[&dcp::node::NodeHandle], count: usize) {
    for _ in 0..300 {
        if nodes.iter().all(|n| n.item_count() >= count) {
            return;
        }
        tokio::time::sleep(Duration::from_millis(10)).await;
    }
    panic!("gossip did not converge to {count} items");
}
