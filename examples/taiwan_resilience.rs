//! The paper's motivating scenario: Taiwan wants satellite connectivity it
//! cannot be locked out of. Compare:
//!
//! * **go-it-alone** — Taiwan launches its own constellation and keeps all
//!   of it (huge cost, terrible utilization);
//! * **MP-LEO** — Taiwan contributes 50 satellites to a shared 1000-sat
//!   constellation and gets coverage worth the whole pool.
//!
//! Run with: `cargo run --release -p mpleo-bench --example taiwan_resilience`

use geodata::Region;
use leosim::coverage::CoverageStats;
use leosim::idle::mean_idle_fraction;
use leosim::montecarlo::{run_rng, sample_indices};
use leosim::visibility::{SimConfig, VisibilityTable};
use leosim::TimeGrid;
use orbital::constellation::starlink_gen1_pool;
use orbital::time::Epoch;

fn main() {
    let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
    let pool = starlink_gen1_pool(epoch);
    let grid = TimeGrid::new(epoch, 2.0 * 86_400.0, 120.0);
    let config = SimConfig::default();

    // Receivers across Taiwan, not just Taipei.
    let receivers = Region::taiwan().receiver_grid(3);
    println!("receivers: {} sites across Taiwan", receivers.len());
    let vt = VisibilityTable::compute(&pool, &receivers, &grid, &config);

    let coverage_of = |indices: &[usize]| -> (f64, f64) {
        // Worst site governs national availability; also report mean.
        let stats: Vec<CoverageStats> = (0..receivers.len())
            .map(|site| CoverageStats::from_bitset(&vt.coverage_union(indices, site), &grid))
            .collect();
        let mean = stats.iter().map(|s| s.covered_fraction).sum::<f64>() / stats.len() as f64;
        let worst = stats.iter().map(|s| s.covered_fraction).fold(1.0f64, f64::min);
        (mean * 100.0, worst * 100.0)
    };

    let mut rng = run_rng(0x7A1, 0);
    println!("\n--- option 1: go-it-alone, 50 national satellites ---");
    let own50 = sample_indices(&mut rng, pool.len(), 50);
    let (mean50, worst50) = coverage_of(&own50);
    println!("coverage: mean {mean50:.1}%, worst site {worst50:.1}%");
    let idle =
        mean_idle_fraction(&vt_subset(&vt, &own50), &(0..receivers.len()).collect::<Vec<_>>());
    println!("satellite idle time over Taiwan: {:.1}% — capacity mostly wasted", idle * 100.0);

    println!("\n--- option 2: MP-LEO, contribute 50 of a shared 1000 ---");
    let shared = sample_indices(&mut rng, pool.len(), 1000);
    let (mean_sh, worst_sh) = coverage_of(&shared);
    println!("coverage: mean {mean_sh:.1}%, worst site {worst_sh:.1}%");
    println!(
        "\nsame launch budget (50 satellites), {:.0}x better worst-site coverage.",
        worst_sh / worst50.max(0.1)
    );
    println!("the contributed satellites earn credits abroad while idle over Taiwan.");
}

/// Narrow a table to a subset of satellites (cheap clone for the demo).
fn vt_subset(vt: &VisibilityTable, indices: &[usize]) -> VisibilityTable {
    VisibilityTable {
        grid: vt.grid.clone(),
        sat_ids: indices.iter().map(|&i| vt.sat_ids[i]).collect(),
        site_names: vt.site_names.clone(),
        table: indices.iter().map(|&i| vt.table[i].clone()).collect(),
    }
}
