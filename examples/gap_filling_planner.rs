//! Gap-filling placement planner (the paper's §3.3 incentive in action).
//!
//! A new party wants to contribute 5 satellites to an existing 40-satellite
//! MP-LEO constellation. Compare two strategies:
//!
//! * **clustered** — launch all 5 into the same plane/phase neighborhood
//!   (cheapest single launch, what a naive participant does);
//! * **gap-filling** — greedily pick the 5 candidates that maximize the
//!   marginal population-weighted coverage (what the market rewards).
//!
//! Run with: `cargo run --release -p mpleo-bench --example gap_filling_planner`

use geodata::{paper_cities, population_weights, to_sites};
use leosim::visibility::{SimConfig, VisibilityTable};
use leosim::TimeGrid;
use mpleo::placement::{greedy_select, weighted_coverage_s};
use orbital::constellation::{satellite_at, walker_delta, ShellSpec};
use orbital::time::Epoch;

fn main() {
    let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
    let cities = paper_cities();
    let sites = to_sites(&cities);
    let weights = population_weights(&cities);
    let grid = TimeGrid::new(epoch, 86_400.0, 120.0);
    let config = SimConfig::default();

    // Existing constellation: 40 satellites in 8 planes.
    let spec = ShellSpec { planes: 8, sats_per_plane: 5, ..ShellSpec::starlink_like() };
    let mut all = walker_delta(&spec, epoch);
    let base_count = all.len();

    // Candidate catalogue: a grid of (inclination, raan, phase) options.
    let mut id = 10_000;
    for incl in [43.0, 53.0, 70.0] {
        for raan in [0.0, 60.0, 120.0, 180.0, 240.0, 300.0] {
            for phase in [0.0, 90.0, 180.0, 270.0] {
                all.push(satellite_at(&format!("CAND-{id}"), id, 550.0, incl, raan, phase, epoch));
                id += 1;
            }
        }
    }
    let candidate_count = all.len() - base_count;
    println!("base constellation: {base_count} satellites; candidate catalogue: {candidate_count}");

    let vt = VisibilityTable::compute(&all, &sites, &grid, &config);
    let base: Vec<usize> = (0..base_count).collect();
    let candidates: Vec<usize> = (base_count..all.len()).collect();

    let week = 7.0 * 86_400.0 / grid.duration_s();
    let base_cov = weighted_coverage_s(&vt, &base, &weights);
    println!(
        "base population-weighted coverage: {} per week",
        orbital::time::format_duration(base_cov * week)
    );

    // Strategy 1: clustered — the first five candidates in one plane.
    let clustered: Vec<usize> = candidates[..5].to_vec();
    let mut with_clustered = base.clone();
    with_clustered.extend(&clustered);
    let clustered_cov = weighted_coverage_s(&vt, &with_clustered, &weights);

    // Strategy 2: greedy gap-filling.
    let chosen = greedy_select(&vt, &base, &candidates, 5, &weights);
    let mut with_greedy = base.clone();
    with_greedy.extend(&chosen);
    let greedy_cov = weighted_coverage_s(&vt, &with_greedy, &weights);

    println!("\nstrategy results (coverage gain per week):");
    println!(
        "  clustered launch: +{}",
        orbital::time::format_duration((clustered_cov - base_cov) * week)
    );
    println!(
        "  gap-filling:      +{}",
        orbital::time::format_duration((greedy_cov - base_cov) * week)
    );
    println!("\ngap-filling picks (orbital parameters of the chosen candidates):");
    for &c in &chosen {
        let el = &all[c].elements;
        println!(
            "  {}: incl {:.0} deg, raan {:.0} deg, phase {:.0} deg",
            all[c].name,
            el.inclination_rad.to_degrees(),
            el.raan_rad.to_degrees(),
            el.mean_anomaly_rad.to_degrees()
        );
    }
    println!("\nnote how the optimizer spreads picks across inclinations and");
    println!("planes — the paper's 'deploy far from existing satellites' rule.");
}
