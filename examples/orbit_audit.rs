//! Auditing published orbits with your own measurements.
//!
//! Proof-of-coverage verification (see `decentralized_poc`) trusts the
//! *published* orbital elements. This example closes that gap: a party
//! ranges a satellite from its own ground station, fits the orbit by
//! differential correction, and compares it with what the owner published —
//! catching an owner that publishes a forged plane to fake coverage.
//!
//! Run with: `cargo run --release -p mpleo-bench --example orbit_audit`

use dcp::poc::{audit_published_elements, ElementAudit, Scenario};
use orbital::ground::GroundSite;
use orbital::kepler::ClassicalElements;
use orbital::od::synthesize_observations;
use orbital::time::Epoch;

fn main() {
    let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
    // Where satellite 1 *actually* flies.
    let truth = ClassicalElements::circular(
        550.0,
        53f64.to_radians(),
        120f64.to_radians(),
        30f64.to_radians(),
    );
    let station = GroundSite::from_degrees("audit-station", 25.03, 121.56);

    let mut scenario = Scenario::new(epoch);
    scenario.add_ground_station("auditor", station.clone());

    // The auditor's ranging log: half a day of passes, 100 m noise.
    let obs = synthesize_observations(&truth, epoch, &station, 43_200.0, 30.0, 10.0, 0.1, 42);
    println!("ranging log: {} measurements across {} passes", obs.len(), count_passes(&obs));

    // Case 1: the owner published honestly.
    scenario.add_satellite(1, truth);
    match audit_published_elements(&scenario, 1, "auditor", &obs, 1.0).unwrap() {
        ElementAudit::Consistent { rms_km } => {
            println!("\n[honest publication]  residual {rms_km:.3} km -> CONSISTENT");
        }
        other => panic!("unexpected verdict {other:?}"),
    }

    // Case 2: the owner publishes a plane 5 degrees away (e.g. to fake
    // coverage receipts over a region it does not actually serve).
    let forged = ClassicalElements { raan_rad: truth.raan_rad + 5f64.to_radians(), ..truth };
    scenario.add_satellite(1, forged);
    match audit_published_elements(&scenario, 1, "auditor", &obs, 1.0).unwrap() {
        ElementAudit::Forged { published_rms_km, fitted, fitted_rms_km } => {
            println!(
                "\n[forged publication]  published elements misfit by {published_rms_km:.0} km"
            );
            println!(
                "refit from our own ranges: RAAN {:.2} deg (published {:.2}, truth {:.2}), residual {:.3} km",
                fitted.raan_rad.to_degrees(),
                forged.raan_rad.to_degrees(),
                truth.raan_rad.to_degrees(),
                fitted_rms_km
            );
            println!("-> FORGERY EXPOSED; the fitted elements become the evidence.");
        }
        other => panic!("unexpected verdict {other:?}"),
    }

    println!("\nno authority was consulted: ranging hardware plus orbital mechanics");
    println!("is enough for any MP-LEO party to hold the others' ephemerides honest.");
}

fn count_passes(obs: &[orbital::od::RangeObservation]) -> usize {
    let mut passes = 0;
    let mut last: Option<f64> = None;
    for o in obs {
        if last.is_none_or(|t| o.t_offset_s - t > 600.0) {
            passes += 1;
        }
        last = Some(o.t_offset_s);
    }
    passes
}
