//! Quickstart: build a small multi-party constellation, simulate a day of
//! coverage for a city, and print the headline statistics.
//!
//! Run with: `cargo run --release -p mpleo-bench --example quickstart`

use leosim::coverage::CoverageStats;
use leosim::visibility::{SimConfig, VisibilityTable};
use leosim::TimeGrid;
use mpleo::party::PartyKind;
use mpleo::registry::ConstellationRegistry;
use orbital::constellation::{walker_delta, ShellSpec};
use orbital::time::Epoch;

fn main() {
    // 1. Synthesize a 288-satellite Walker constellation (Starlink-like
    //    shell parameters, scaled down).
    let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
    let spec = ShellSpec { planes: 24, sats_per_plane: 12, ..ShellSpec::starlink_like() };
    let sats = walker_delta(&spec, epoch);
    println!(
        "constellation: {} satellites ({} planes x {})",
        sats.len(),
        spec.planes,
        spec.sats_per_plane
    );

    // 2. Three parties contribute in a 2:1:1 stake split, interleaved.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
    let registry = ConstellationRegistry::from_ratios(
        sats.len(),
        &[2.0, 1.0, 1.0],
        PartyKind::Company,
        Some(&mut rng),
    );
    registry.validate().expect("consistent ownership");
    for p in &registry.parties {
        println!("  {} contributes {} satellites", p.id, p.stake());
    }

    // 3. Simulate one day of visibility for a Taipei receiver.
    let taipei = [geodata::taipei()];
    let grid = TimeGrid::new(epoch, 86_400.0, 60.0);
    let vt = VisibilityTable::compute(&sats, &taipei, &grid, &SimConfig::default());

    // 4. Coverage with everyone participating.
    let all = registry.all_indices();
    let full = CoverageStats::from_bitset(&vt.coverage_union(&all, 0), &grid);
    println!(
        "\nwith all parties:   coverage {:.1}%  max gap {}",
        full.covered_fraction * 100.0,
        orbital::time::format_duration(full.max_gap_s)
    );

    // 5. Coverage if the largest party withdraws.
    let largest = registry.largest_party().id.clone();
    let remaining = registry.remaining_after_withdrawal(&largest);
    let reduced = CoverageStats::from_bitset(&vt.coverage_union(&remaining, 0), &grid);
    println!(
        "without {}: coverage {:.1}%  max gap {}",
        largest,
        reduced.covered_fraction * 100.0,
        orbital::time::format_duration(reduced.max_gap_s)
    );
    println!(
        "\nwithdrawal cost {:.1} coverage points — graceful, proportional degradation.",
        (full.covered_fraction - reduced.covered_fraction) * 100.0
    );
}
