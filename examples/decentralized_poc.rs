//! A running decentralized proof-of-coverage network.
//!
//! Four parties run protocol nodes on localhost TCP. A ground station
//! publishes coverage receipts — one honest, one fraudulent (the satellite
//! was on the other side of the planet). Every node independently verifies
//! each claim by re-propagating the satellite's published orbit, attests,
//! and the quorum ledger converges on exactly the honest receipt.
//!
//! Run with: `cargo run --release -p mpleo-bench --example decentralized_poc`

use dcp::crypto::KeyDirectory;
use dcp::ledger::LedgerConfig;
use dcp::messages::GossipItem;
use dcp::node::{Node, NodeConfig};
use dcp::poc::{CoverageReceipt, Scenario};
use orbital::constellation::single_plane;
use orbital::frames::subpoint;
use orbital::ground::GroundSite;
use orbital::propagator::{KeplerJ2, Propagator};
use orbital::time::Epoch;
use std::sync::Arc;
use std::time::Duration;

#[tokio::main]
async fn main() {
    let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
    let parties = ["alpha", "beta", "gamma", "delta"];

    // Shared knowledge: keys, constellation elements, ground stations.
    let mut keys = KeyDirectory::new();
    for p in parties {
        keys.register_derived(p, b"mpleo-demo-network");
    }
    let mut scenario = Scenario::new(epoch);
    let sats = single_plane(4, 550.0, 53.0, epoch);
    for s in &sats {
        scenario.add_satellite(s.id, s.elements);
    }
    // Alpha's ground station sits at satellite 0's sub-point at t=0.
    let prop = KeplerJ2::from_elements(&sats[0].elements, epoch);
    let sub = subpoint(prop.position_at(epoch), epoch.gmst());
    scenario.add_ground_station(
        "alpha",
        GroundSite::new(
            "gs-alpha",
            orbital::frames::Geodetic {
                latitude_rad: sub.latitude_rad,
                longitude_rad: sub.longitude_rad,
                altitude_km: 0.0,
            },
        ),
    );
    let scenario = Arc::new(scenario);

    // Start one node per party; all auto-attest.
    let mut handles = Vec::new();
    for p in parties {
        let mut cfg = NodeConfig::local(p, keys.clone());
        cfg.scenario = Some(scenario.clone());
        cfg.auto_attest = true;
        cfg.ledger = LedgerConfig { quorum: 3, reward_per_receipt: 10.0, verifier_share: 0.2 };
        handles.push(Node::start(cfg).await.expect("node starts"));
    }
    // Mesh: everyone dials node 0 plus their predecessor.
    for i in 1..handles.len() {
        handles[i].connect(handles[0].local_addr).await.unwrap();
        handles[i].connect(handles[i - 1].local_addr).await.unwrap();
    }
    println!("started {} nodes on localhost", handles.len());

    // Honest receipt: satellite 0 overhead of gs-alpha at t=0.
    let elevation = scenario.computed_elevation_deg(0, "alpha", 0.0).unwrap();
    let honest = CoverageReceipt::create(&keys, 0, "alpha", "beta", 0.0, elevation).unwrap();
    println!("publishing honest receipt   (sat 0, elevation {elevation:.1} deg)");
    handles[0].publish(GossipItem::Receipt(honest));

    // Fraudulent receipt: claims the same satellite half an orbit later.
    let fraud = CoverageReceipt::create(&keys, 0, "alpha", "beta", 48.0 * 60.0, 80.0).unwrap();
    println!("publishing fraudulent claim (sat 0, half an orbit away)");
    handles[0].publish(GossipItem::Receipt(fraud));

    // Wait for convergence: every node holds both receipts + attestations.
    for _ in 0..300 {
        if handles.iter().all(|h| h.confirmed_count() == 1) {
            break;
        }
        tokio::time::sleep(Duration::from_millis(20)).await;
    }

    println!("\nledger state per node:");
    for h in &handles {
        println!(
            "  {}: items {}, confirmed receipts {}, digest {}",
            h.node_id(),
            h.item_count(),
            h.confirmed_count(),
            &h.ledger_digest()[..16]
        );
    }
    let digests: std::collections::HashSet<String> =
        handles.iter().map(|h| h.ledger_digest()).collect();
    assert_eq!(digests.len(), 1, "ledgers converged");
    assert_eq!(handles[0].confirmed_count(), 1, "only the honest receipt confirmed");

    println!("\nreward balances (owner beta 80%, verifier alpha 20% of 10 credits):");
    for (party, credits) in handles[0].reward_balances() {
        println!("  {party}: {credits:.1}");
    }
    println!("\nthe fraudulent claim was rejected by every node's independent");
    println!("orbit propagation — no central authority involved.");
    for h in &handles {
        h.shutdown();
    }
}
