//! Fault-matrix tests: the protocol stack driven through the fault-injecting
//! sim transport — lossy links, partitions, node kill/restart — all in
//! virtual time with seeded randomness, so every scenario is reproducible.

use dcp::ledger::LedgerConfig;
use dcp::market::make_order;
use dcp::messages::GossipItem;
use dcp::node::{Node, NodeConfig};
use dcp::poc::{CoverageReceipt, Scenario};
use dcp::testkit::{converge_until, TestNet};
use dcp::transport::{FaultPlan, SimNet};
use orbital::constellation::single_plane;
use orbital::frames::{subpoint, Geodetic};
use orbital::ground::GroundSite;
use orbital::propagator::{KeplerJ2, Propagator};
use orbital::time::Epoch;
use std::sync::Arc;
use std::time::Duration;

/// Gossip still converges when every link drops 30% of messages and adds
/// jittered delay: anti-entropy re-announces until the payload lands.
#[tokio::test(start_paused = true)]
async fn gossip_converges_under_thirty_percent_drop() {
    let net = TestNet::new(101, &["a", "b", "c", "d"]).await.unwrap();
    net.connect_ring().await.unwrap();
    net.net.set_default_fault(FaultPlan {
        drop_probability: 0.3,
        delay: Duration::from_millis(10),
        jitter: Duration::from_millis(5),
    });

    for (i, p) in ["a", "b", "c"].iter().enumerate() {
        let order = make_order(&net.keys, p, i % 2 == 0, 1.0 + i as f64, 10, 0).unwrap();
        net.nodes[i].publish(GossipItem::Order(order));
    }
    assert!(
        net.all_converged(Duration::from_secs(60), 3).await,
        "lossy links must only slow convergence, not prevent it: {:?}",
        net.nodes.iter().map(|n| n.item_count()).collect::<Vec<_>>()
    );
    let (delivered, dropped) = net.net.stats();
    assert!(dropped > 0, "a 30% drop plan must actually drop frames");
    assert!(delivered > 0);
    net.shutdown_all();
}

fn poc_scenario() -> Arc<Scenario> {
    let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
    let mut sc = Scenario::new(epoch);
    let sats = single_plane(3, 550.0, 53.0, epoch);
    for s in &sats {
        sc.add_satellite(s.id, s.elements);
    }
    let prop = KeplerJ2::from_elements(&sats[0].elements, epoch);
    let sub = subpoint(prop.position_at(epoch), epoch.gmst());
    sc.add_ground_station(
        "alpha",
        GroundSite::new("gs", Geodetic::from_degrees(sub.latitude_deg(), sub.longitude_deg(), 0.0)),
    );
    Arc::new(sc)
}

/// A receipt published inside one partition side reaches quorum there, and
/// the isolated party catches up and confirms after the partition heals.
#[tokio::test(start_paused = true)]
async fn poc_quorum_confirms_across_healed_partition() {
    let scenario = poc_scenario();
    let sc = scenario.clone();
    let net = TestNet::with_config(102, &["alpha", "beta", "gamma"], move |_, mut cfg| {
        cfg.scenario = Some(sc.clone());
        cfg.auto_attest = true;
        cfg.ledger = LedgerConfig { quorum: 2, reward_per_receipt: 5.0, verifier_share: 0.4 };
        cfg
    })
    .await
    .unwrap();
    net.connect_chain().await.unwrap();

    // Cut gamma off, then publish a verifiable receipt on the majority side.
    net.partition(&[0, 1], &[2]);
    let el = scenario.computed_elevation_deg(0, "alpha", 0.0).unwrap();
    let receipt = CoverageReceipt::create(&net.keys, 0, "alpha", "beta", 0.0, el).unwrap();
    net.nodes[0].publish(GossipItem::Receipt(receipt));

    assert!(
        converge_until(Duration::from_secs(5), || {
            net.nodes[..2].iter().all(|h| h.confirmed_count() == 1)
        })
        .await,
        "alpha+beta alone are a quorum of 2"
    );
    assert_eq!(net.nodes[2].item_count(), 0, "gamma is partitioned off");

    net.heal();
    assert!(
        net.converged_when(Duration::from_secs(10), |h| h.confirmed_count() == 1).await,
        "healed gamma must replicate the confirmed receipt"
    );
    assert!(net.ledgers_agree(), "ledger digests diverged after heal");
    net.shutdown_all();
}

/// Kill a node mid-run; the survivor's reconnect backoff keeps redialing,
/// and once the node restarts at the same address the ledgers reconverge —
/// including items published while it was down.
#[tokio::test(start_paused = true)]
async fn ledger_reconverges_after_node_kill_and_restart() {
    let sim = SimNet::new(103);
    let keys = dcp::testkit::test_keys(&["a", "b"]);
    let mut cfg_a = NodeConfig::sim("a", keys.clone(), &sim);
    cfg_a.backoff.max_attempts = 0; // redial forever
    let a = Node::start(cfg_a).await.unwrap();
    let b = Node::start(NodeConfig::sim("b", keys.clone(), &sim)).await.unwrap();
    let b_addr = b.local_addr;
    a.connect(b_addr).await.unwrap();

    a.publish(GossipItem::Order(make_order(&keys, "a", true, 1.0, 5, 0).unwrap()));
    assert!(
        converge_until(Duration::from_secs(5), || b.item_count() == 1).await,
        "baseline gossip before the kill"
    );

    // Kill b. The survivor keeps publishing into the void and redialing.
    b.shutdown();
    tokio::time::sleep(Duration::from_millis(100)).await;
    a.publish(GossipItem::Order(make_order(&keys, "a", false, 2.0, 7, 1).unwrap()));
    tokio::time::sleep(Duration::from_millis(500)).await;

    // Restart b at the same sim address, empty-handed.
    let mut cfg_b2 = NodeConfig::sim("b", keys.clone(), &sim);
    cfg_b2.listen = b_addr;
    let b2 = Node::start(cfg_b2).await.unwrap();
    assert_eq!(b2.local_addr, b_addr, "restart reclaims the dead address");

    // a's backoff loop finds the new listener; anti-entropy replays history.
    assert!(
        converge_until(Duration::from_secs(30), || b2.item_count() == 2).await,
        "restarted node must catch up on items published during the outage"
    );
    assert!(
        converge_until(Duration::from_secs(5), || a.ledger_digest() == b2.ledger_digest()).await,
        "ledgers must reconverge after restart"
    );
    a.shutdown();
    b2.shutdown();
}

/// The same seeded scenario, run twice on fresh paused runtimes, produces
/// identical delivery logs and identical final state — the property every
/// other test in this file leans on when a failure needs reproducing.
#[test]
fn seeded_scenario_replays_identically() {
    fn run_once() -> (Vec<String>, Vec<String>, (u64, u64)) {
        let rt = tokio::runtime::Builder::new_current_thread()
            .enable_time()
            .start_paused(true)
            .build()
            .unwrap();
        rt.block_on(async {
            let net = TestNet::new(104, &["a", "b"]).await.unwrap();
            net.connect_chain().await.unwrap();
            net.net.set_default_fault(FaultPlan {
                drop_probability: 0.25,
                delay: Duration::from_millis(4),
                jitter: Duration::from_millis(3),
            });
            for seq in 0..3u64 {
                let order = make_order(&net.keys, "a", seq % 2 == 0, 1.0, 1, seq).unwrap();
                net.nodes[0].publish(GossipItem::Order(order));
                assert!(net.all_converged(Duration::from_secs(30), seq as usize + 1).await);
            }
            let digests = net.nodes.iter().map(|n| n.ledger_digest()).collect();
            let out = (net.net.log_snapshot(), digests, net.net.stats());
            net.shutdown_all();
            out
        })
    }

    let first = run_once();
    let second = run_once();
    assert_eq!(first.2, second.2, "delivered/dropped counts must match");
    assert_eq!(first.1, second.1, "final digests must match");
    assert_eq!(first.0, second.0, "full delivery logs must be identical");
}
