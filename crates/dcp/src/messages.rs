//! The protocol message set.
//!
//! Messages fall into three groups: connection management (hello / ping),
//! epidemic gossip (announce / request / payload), and the application
//! items riding the gossip layer ([`GossipItem`]). Item IDs are content
//! hashes, so duplicate suppression and integrity come for free.

use crate::crypto::{hex, sha256, KeyDirectory, Signature};
use crate::poc::{Attestation, CoverageReceipt};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a protocol node (one per party in the prototype).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub String);

impl NodeId {
    /// Construct from anything string-like.
    pub fn new(id: impl Into<String>) -> Self {
        NodeId(id.into())
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for NodeId {
    fn from(s: &str) -> Self {
        NodeId(s.to_string())
    }
}

/// Content identifier of a gossip item (hex SHA-256 of its JSON encoding).
pub type ItemId = String;

/// A capacity-market order gossiped through the network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketOrder {
    /// Issuing party.
    pub party: String,
    /// True for a bid (buy capacity), false for an ask (sell capacity).
    pub is_bid: bool,
    /// Price per terminal-step, credits.
    pub price: f64,
    /// Quantity, terminal-steps.
    pub quantity: u64,
    /// Issuer-local sequence number (disambiguates otherwise-equal orders).
    pub sequence: u64,
    /// HMAC tag over the canonical order bytes.
    pub signature: Signature,
}

impl MarketOrder {
    /// The bytes covered by the order signature.
    pub fn signing_bytes(party: &str, is_bid: bool, price: f64, quantity: u64, sequence: u64) -> Vec<u8> {
        format!("order|{party}|{is_bid}|{price:.6}|{quantity}|{sequence}").into_bytes()
    }
}

/// Announcement that a party is withdrawing its satellites from the
/// constellation (the robustness scenarios of §3.4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WithdrawalNotice {
    /// Withdrawing party.
    pub party: String,
    /// Satellite IDs being withdrawn.
    pub sat_ids: Vec<u32>,
    /// Effective time (seconds since the scenario epoch).
    pub effective_s: f64,
    /// HMAC tag.
    pub signature: Signature,
}

impl WithdrawalNotice {
    /// The bytes covered by the withdrawal signature.
    pub fn signing_bytes(party: &str, sat_ids: &[u32], effective_s: f64) -> Vec<u8> {
        format!("withdraw|{party}|{sat_ids:?}|{effective_s:.3}").into_bytes()
    }
}

/// An epoch settlement: a zero-sum batch of balance transfers proposed by
/// one party, applied at most once per `(epoch, proposer)` by every
/// replica's account book (see [`crate::ledger::Accounts`]). Replaying a
/// duplicate note is a no-op, so settlement survives at-least-once gossip
/// delivery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SettlementNote {
    /// Settlement epoch this note closes.
    pub epoch: u64,
    /// Proposing (and signing) party.
    pub proposer: String,
    /// Party -> signed balance delta; deltas must sum to zero.
    pub transfers: BTreeMap<String, f64>,
    /// HMAC tag over the canonical note bytes.
    pub signature: Signature,
}

impl SettlementNote {
    /// The bytes covered by the settlement signature.
    pub fn signing_bytes(epoch: u64, proposer: &str, transfers: &BTreeMap<String, f64>) -> Vec<u8> {
        let body: Vec<String> = transfers.iter().map(|(p, d)| format!("{p}:{d:.6}")).collect();
        format!("settle|{epoch}|{proposer}|{}", body.join(",")).into_bytes()
    }

    /// Create and sign a note (None if the proposer's key is unknown).
    pub fn create(
        keys: &KeyDirectory,
        epoch: u64,
        proposer: &str,
        transfers: BTreeMap<String, f64>,
    ) -> Option<SettlementNote> {
        let bytes = Self::signing_bytes(epoch, proposer, &transfers);
        let signature = keys.sign(proposer, &bytes)?;
        Some(SettlementNote { epoch, proposer: proposer.to_string(), transfers, signature })
    }

    /// Replay-protection key: one application per `(epoch, proposer)`.
    pub fn settlement_id(&self) -> String {
        format!("{}|{}", self.epoch, self.proposer)
    }
}

/// An application item carried by the gossip layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GossipItem {
    /// A proof-of-coverage receipt.
    Receipt(CoverageReceipt),
    /// An attestation of a receipt by a verifier.
    Attestation(Attestation),
    /// A capacity-market order.
    Order(MarketOrder),
    /// A party withdrawal notice.
    Withdrawal(WithdrawalNotice),
    /// A multi-party control-plane event (proposal or vote).
    Control(crate::control::ControlEvent),
    /// An epoch settlement note (zero-sum balance transfers).
    Settlement(SettlementNote),
}

impl GossipItem {
    /// Content id: SHA-256 over the canonical JSON encoding.
    pub fn id(&self) -> ItemId {
        let bytes = serde_json::to_vec(self).expect("gossip items are serializable");
        hex(&sha256(&bytes))
    }
}

/// A wire message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// First message on a connection, both directions.
    Hello {
        /// The sender's node id.
        node_id: NodeId,
        /// The sender's listening address, if it accepts inbound dials
        /// (used for mesh discovery).
        listen_addr: Option<String>,
    },
    /// Liveness probe.
    Ping {
        /// Echo nonce.
        nonce: u64,
    },
    /// Liveness reply.
    Pong {
        /// Echoed nonce.
        nonce: u64,
    },
    /// Peer-exchange: listening addresses the sender knows.
    PeerExchange {
        /// `host:port` strings (invalid entries are ignored by receivers).
        addrs: Vec<String>,
    },
    /// "I have these items" — sent on new-item arrival and periodically for
    /// anti-entropy.
    GossipAnnounce {
        /// Item ids the sender holds.
        ids: Vec<ItemId>,
    },
    /// "Send me these items."
    GossipRequest {
        /// Item ids the receiver is missing.
        ids: Vec<ItemId>,
    },
    /// Item bodies.
    GossipPayload {
        /// The items.
        items: Vec<GossipItem>,
    },
}

impl Message {
    /// Short tag for logging/metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "hello",
            Message::Ping { .. } => "ping",
            Message::Pong { .. } => "pong",
            Message::PeerExchange { .. } => "pex",
            Message::GossipAnnounce { .. } => "announce",
            Message::GossipRequest { .. } => "request",
            Message::GossipPayload { .. } => "payload",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poc::CoverageReceipt;

    fn receipt() -> CoverageReceipt {
        CoverageReceipt {
            sat_id: 7,
            verifier: "gs-taipei".into(),
            owner: "party-a".into(),
            t_offset_s: 1234.0,
            elevation_deg: 44.0,
            signature: "aa".into(),
        }
    }

    #[test]
    fn item_ids_are_content_hashes() {
        let a = GossipItem::Receipt(receipt());
        let b = GossipItem::Receipt(receipt());
        assert_eq!(a.id(), b.id());
        let mut r2 = receipt();
        r2.sat_id = 8;
        assert_ne!(a.id(), GossipItem::Receipt(r2).id());
        assert_eq!(a.id().len(), 64);
    }

    #[test]
    fn message_roundtrip_json() {
        let msgs = vec![
            Message::Hello { node_id: "n1".into(), listen_addr: Some("127.0.0.1:0".into()) },
            Message::Ping { nonce: 42 },
            Message::Pong { nonce: 42 },
            Message::GossipAnnounce { ids: vec!["ab".into()] },
            Message::GossipRequest { ids: vec![] },
            Message::GossipPayload { items: vec![GossipItem::Receipt(receipt())] },
        ];
        for m in msgs {
            let bytes = serde_json::to_vec(&m).unwrap();
            let back: Message = serde_json::from_slice(&bytes).unwrap();
            assert_eq!(back, m);
            assert!(!m.kind().is_empty());
        }
    }

    #[test]
    fn order_signing_bytes_canonical() {
        let a = MarketOrder::signing_bytes("p", true, 1.5, 100, 1);
        let b = MarketOrder::signing_bytes("p", true, 1.5, 100, 1);
        let c = MarketOrder::signing_bytes("p", true, 1.5, 100, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn withdrawal_signing_bytes_cover_sats() {
        let a = WithdrawalNotice::signing_bytes("p", &[1, 2], 10.0);
        let b = WithdrawalNotice::signing_bytes("p", &[1, 3], 10.0);
        assert_ne!(a, b);
    }
}
