//! SHA-256, HMAC-SHA256, and the party key directory.
//!
//! Implemented from FIPS 180-4 and RFC 2104 so the workspace carries no
//! external cryptography dependency. HMAC tags serve as the prototype's
//! signature scheme: every party registers a secret with the directory and
//! verifiers look the key up by party id. This models the *authenticated
//! message* requirement of the protocol; a production deployment would
//! substitute asymmetric signatures without touching any message flow.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Compute the SHA-256 digest of a byte slice.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    // Pad: message || 0x80 || zeros || 64-bit big-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut h = H0;
    let mut w = [0u32; 64];
    for block in msg.chunks_exact(64) {
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([block[4 * i], block[4 * i + 1], block[4 * i + 2], block[4 * i + 3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }
    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Compute HMAC-SHA256(key, message) per RFC 2104.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    const BLOCK: usize = 64;
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Vec::with_capacity(BLOCK + message.len());
    let mut outer = Vec::with_capacity(BLOCK + 32);
    for &b in &k {
        inner.push(b ^ 0x36);
    }
    inner.extend_from_slice(message);
    let inner_hash = sha256(&inner);
    for &b in &k {
        outer.push(b ^ 0x5c);
    }
    outer.extend_from_slice(&inner_hash);
    sha256(&outer)
}

/// Hex-encode bytes (lowercase).
pub fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// A signature tag carried in messages (hex-encoded HMAC-SHA256).
pub type Signature = String;

/// Constant-time-ish comparison of two hex signatures (length leak only).
pub fn verify_tag(expected: &str, actual: &str) -> bool {
    if expected.len() != actual.len() {
        return false;
    }
    expected
        .bytes()
        .zip(actual.bytes())
        .fold(0u8, |acc, (a, b)| acc | (a ^ b))
        == 0
}

/// The shared key directory: party id -> signing secret.
///
/// In the prototype every node holds the full directory (symmetric trust);
/// the protocol only calls [`KeyDirectory::sign`] and
/// [`KeyDirectory::verify`], the swap-points for real signatures.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KeyDirectory {
    keys: HashMap<String, Vec<u8>>,
}

impl KeyDirectory {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a party's secret.
    pub fn register(&mut self, party: impl Into<String>, secret: impl Into<Vec<u8>>) {
        self.keys.insert(party.into(), secret.into());
    }

    /// Derive a deterministic per-party secret from a network seed (used by
    /// tests and simulations to avoid shipping random key material around).
    pub fn register_derived(&mut self, party: impl Into<String>, network_seed: &[u8]) {
        let party = party.into();
        let mut material = network_seed.to_vec();
        material.extend_from_slice(party.as_bytes());
        let secret = sha256(&material).to_vec();
        self.keys.insert(party, secret);
    }

    /// Whether a party is known.
    pub fn knows(&self, party: &str) -> bool {
        self.keys.contains_key(party)
    }

    /// Sign a message on behalf of a party. Returns `None` for unknown
    /// parties.
    pub fn sign(&self, party: &str, message: &[u8]) -> Option<Signature> {
        self.keys.get(party).map(|k| hex(&hmac_sha256(k, message)))
    }

    /// Verify a party's tag over a message.
    pub fn verify(&self, party: &str, message: &[u8], tag: &str) -> bool {
        match self.sign(party, message) {
            Some(expected) => verify_tag(&expected, tag),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_empty_vector() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc_vector() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_block_vector() {
        // FIPS 180-4 test: 448-bit message crossing padding boundary.
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&msg)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha256_length_boundaries() {
        // 55, 56, 63, 64, 65 bytes exercise every padding branch. Just
        // check determinism and distinctness.
        let digests: Vec<String> = [55usize, 56, 63, 64, 65]
            .iter()
            .map(|&n| hex(&sha256(&vec![0x41u8; n])))
            .collect();
        for (i, a) in digests.iter().enumerate() {
            for b in digests.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn hmac_rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn hmac_rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn hmac_long_key_hashed() {
        // RFC 4231 case 6: 131-byte key (> block size).
        let key = [0xaau8; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn directory_sign_verify() {
        let mut dir = KeyDirectory::new();
        dir.register("taiwan", b"secret-1".to_vec());
        dir.register_derived("korea", b"network-seed");
        assert!(dir.knows("taiwan") && dir.knows("korea"));
        assert!(!dir.knows("mallory"));
        let tag = dir.sign("taiwan", b"receipt-1").unwrap();
        assert!(dir.verify("taiwan", b"receipt-1", &tag));
        assert!(!dir.verify("taiwan", b"receipt-2", &tag));
        assert!(!dir.verify("korea", b"receipt-1", &tag));
        assert!(dir.sign("mallory", b"x").is_none());
        assert!(!dir.verify("mallory", b"x", "00"));
    }

    #[test]
    fn derived_keys_deterministic_and_distinct() {
        let mut a = KeyDirectory::new();
        a.register_derived("p1", b"seed");
        a.register_derived("p2", b"seed");
        let mut b = KeyDirectory::new();
        b.register_derived("p1", b"seed");
        assert_eq!(a.sign("p1", b"m"), b.sign("p1", b"m"));
        assert_ne!(a.sign("p1", b"m"), a.sign("p2", b"m"));
    }

    #[test]
    fn tag_tamper_detected() {
        let mut dir = KeyDirectory::new();
        dir.register("p", b"k".to_vec());
        let tag = dir.sign("p", b"msg").unwrap();
        let mut bad = tag.clone().into_bytes();
        bad[0] = if bad[0] == b'0' { b'1' } else { b'0' };
        assert!(!dir.verify("p", b"msg", &String::from_utf8(bad).unwrap()));
        assert!(!verify_tag(&tag, &tag[1..]));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn digest_deterministic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            prop_assert_eq!(sha256(&data), sha256(&data));
        }

        #[test]
        fn distinct_inputs_distinct_digests(
            a in proptest::collection::vec(any::<u8>(), 0..128),
            b in proptest::collection::vec(any::<u8>(), 0..128),
        ) {
            prop_assume!(a != b);
            prop_assert_ne!(sha256(&a), sha256(&b));
        }

        #[test]
        fn hmac_key_separation(
            k1 in proptest::collection::vec(any::<u8>(), 1..64),
            k2 in proptest::collection::vec(any::<u8>(), 1..64),
            msg in proptest::collection::vec(any::<u8>(), 0..128),
        ) {
            prop_assume!(k1 != k2);
            prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
        }
    }
}
