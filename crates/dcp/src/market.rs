//! The capacity market: a price-time-priority order book.
//!
//! Parties sell spare terminal-steps (asks) and buy coverage they lack
//! (bids). Orders ride the gossip layer; every node runs the same
//! deterministic matching engine over the same order set, so books converge
//! without a central exchange. Matching is continuous double auction:
//! an incoming order crosses the best opposite price first, trading at the
//! *resting* order's price (standard price-time priority).

use crate::messages::MarketOrder;
use serde::{Deserialize, Serialize};

/// A fill produced by the matching engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trade {
    /// Buying party.
    pub buyer: String,
    /// Selling party.
    pub seller: String,
    /// Trade price per terminal-step (the resting order's price).
    pub price: f64,
    /// Quantity, terminal-steps.
    pub quantity: u64,
}

/// A resting order (remaining quantity tracked separately from the
/// original).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Resting {
    order: MarketOrder,
    remaining: u64,
    arrival: u64,
}

/// The deterministic order book.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OrderBook {
    bids: Vec<Resting>,
    asks: Vec<Resting>,
    trades: Vec<Trade>,
    arrivals: u64,
}

impl OrderBook {
    /// Empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Best (highest) bid price.
    pub fn best_bid(&self) -> Option<f64> {
        self.bids.iter().map(|r| r.order.price).fold(None, |acc, p| {
            Some(acc.map_or(p, |a: f64| a.max(p)))
        })
    }

    /// Best (lowest) ask price.
    pub fn best_ask(&self) -> Option<f64> {
        self.asks.iter().map(|r| r.order.price).fold(None, |acc, p| {
            Some(acc.map_or(p, |a: f64| a.min(p)))
        })
    }

    /// All fills so far, in execution order.
    pub fn trades(&self) -> &[Trade] {
        &self.trades
    }

    /// Open quantity on each side `(bid_qty, ask_qty)`.
    pub fn open_interest(&self) -> (u64, u64) {
        (
            self.bids.iter().map(|r| r.remaining).sum(),
            self.asks.iter().map(|r| r.remaining).sum(),
        )
    }

    /// Submit an order, matching it against the opposite side.
    /// Returns the fills it produced.
    pub fn submit(&mut self, order: MarketOrder) -> Vec<Trade> {
        let arrival = self.arrivals;
        self.arrivals += 1;
        let mut incoming = Resting { remaining: order.quantity, order, arrival };
        let mut fills = Vec::new();
        loop {
            if incoming.remaining == 0 {
                break;
            }
            // Find the best crossing resting order on the opposite side
            // (price priority, then arrival order).
            let book = if incoming.order.is_bid { &mut self.asks } else { &mut self.bids };
            let best = book
                .iter_mut()
                .filter(|r| {
                    if incoming.order.is_bid {
                        r.order.price <= incoming.order.price
                    } else {
                        r.order.price >= incoming.order.price
                    }
                })
                .min_by(|a, b| {
                    let key_a = if incoming.order.is_bid { a.order.price } else { -a.order.price };
                    let key_b = if incoming.order.is_bid { b.order.price } else { -b.order.price };
                    key_a
                        .partial_cmp(&key_b)
                        .unwrap()
                        .then(a.arrival.cmp(&b.arrival))
                });
            let Some(resting) = best else { break };
            let qty = incoming.remaining.min(resting.remaining);
            let (buyer, seller) = if incoming.order.is_bid {
                (incoming.order.party.clone(), resting.order.party.clone())
            } else {
                (resting.order.party.clone(), incoming.order.party.clone())
            };
            let trade = Trade { buyer, seller, price: resting.order.price, quantity: qty };
            incoming.remaining -= qty;
            resting.remaining -= qty;
            fills.push(trade.clone());
            self.trades.push(trade);
            book.retain(|r| r.remaining > 0);
        }
        if incoming.remaining > 0 {
            if incoming.order.is_bid {
                self.bids.push(incoming);
            } else {
                self.asks.push(incoming);
            }
        }
        fills
    }

    /// Net credit flow per party over all trades (buyers negative).
    pub fn settlement(&self) -> std::collections::BTreeMap<String, f64> {
        let mut out = std::collections::BTreeMap::new();
        for t in &self.trades {
            let value = t.price * t.quantity as f64;
            *out.entry(t.seller.clone()).or_insert(0.0) += value;
            *out.entry(t.buyer.clone()).or_insert(0.0) -= value;
        }
        out
    }
}

/// Build a signed order helper (for tests, simulations, and examples).
pub fn make_order(
    keys: &crate::crypto::KeyDirectory,
    party: &str,
    is_bid: bool,
    price: f64,
    quantity: u64,
    sequence: u64,
) -> Option<MarketOrder> {
    let sig = keys.sign(party, &MarketOrder::signing_bytes(party, is_bid, price, quantity, sequence))?;
    Some(MarketOrder {
        party: party.to_string(),
        is_bid,
        price,
        quantity,
        sequence,
        signature: sig,
    })
}

/// Verify an order's signature against the directory.
pub fn verify_order(keys: &crate::crypto::KeyDirectory, order: &MarketOrder) -> bool {
    keys.verify(
        &order.party,
        &MarketOrder::signing_bytes(&order.party, order.is_bid, order.price, order.quantity, order.sequence),
        &order.signature,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::KeyDirectory;

    fn keys() -> KeyDirectory {
        let mut k = KeyDirectory::new();
        for p in ["a", "b", "c"] {
            k.register_derived(p, b"seed");
        }
        k
    }

    fn order(party: &str, is_bid: bool, price: f64, qty: u64, seq: u64) -> MarketOrder {
        make_order(&keys(), party, is_bid, price, qty, seq).unwrap()
    }

    #[test]
    fn no_cross_rests() {
        let mut book = OrderBook::new();
        assert!(book.submit(order("a", true, 1.0, 10, 0)).is_empty());
        assert!(book.submit(order("b", false, 2.0, 10, 0)).is_empty());
        assert_eq!(book.best_bid(), Some(1.0));
        assert_eq!(book.best_ask(), Some(2.0));
        assert_eq!(book.open_interest(), (10, 10));
    }

    #[test]
    fn crossing_bid_fills_at_resting_price() {
        let mut book = OrderBook::new();
        book.submit(order("a", false, 1.5, 10, 0)); // ask 1.5
        let fills = book.submit(order("b", true, 2.0, 4, 0)); // bid 2.0 crosses
        assert_eq!(fills.len(), 1);
        assert_eq!(fills[0].price, 1.5, "trades at resting ask");
        assert_eq!(fills[0].quantity, 4);
        assert_eq!(fills[0].buyer, "b");
        assert_eq!(fills[0].seller, "a");
        assert_eq!(book.open_interest(), (0, 6));
    }

    #[test]
    fn partial_fill_walks_the_book() {
        let mut book = OrderBook::new();
        book.submit(order("a", false, 1.0, 5, 0));
        book.submit(order("b", false, 1.2, 5, 0));
        book.submit(order("c", false, 2.0, 5, 0)); // should not fill
        let fills = book.submit(order("a", true, 1.5, 8, 1));
        assert_eq!(fills.len(), 2);
        // Cheapest ask first.
        assert_eq!(fills[0].price, 1.0);
        assert_eq!(fills[0].quantity, 5);
        assert_eq!(fills[1].price, 1.2);
        assert_eq!(fills[1].quantity, 3);
        let (bid_open, ask_open) = book.open_interest();
        assert_eq!(bid_open, 0);
        assert_eq!(ask_open, 2 + 5);
    }

    #[test]
    fn time_priority_at_equal_price() {
        let mut book = OrderBook::new();
        book.submit(order("a", false, 1.0, 5, 0));
        book.submit(order("b", false, 1.0, 5, 0));
        let fills = book.submit(order("c", true, 1.0, 5, 0));
        assert_eq!(fills.len(), 1);
        assert_eq!(fills[0].seller, "a", "first at price level fills first");
    }

    #[test]
    fn settlement_conserves() {
        let mut book = OrderBook::new();
        book.submit(order("a", false, 1.0, 10, 0));
        book.submit(order("b", true, 1.5, 6, 0));
        book.submit(order("c", true, 1.0, 4, 0));
        let s = book.settlement();
        let net: f64 = s.values().sum();
        assert!(net.abs() < 1e-9, "market must conserve credits: {net}");
        assert!(s["a"] > 0.0, "seller earns");
    }

    #[test]
    fn deterministic_across_replicas() {
        // Two replicas fed the same order sequence converge exactly.
        let seq = vec![
            order("a", false, 1.0, 10, 0),
            order("b", true, 1.2, 5, 0),
            order("c", false, 0.9, 3, 0),
            order("b", true, 0.95, 4, 1),
        ];
        let mut x = OrderBook::new();
        let mut y = OrderBook::new();
        for o in &seq {
            x.submit(o.clone());
        }
        for o in &seq {
            y.submit(o.clone());
        }
        assert_eq!(x.trades(), y.trades());
        assert_eq!(x.open_interest(), y.open_interest());
    }

    #[test]
    fn signatures_verify_and_tamper_detected() {
        let k = keys();
        let o = order("a", true, 1.0, 5, 0);
        assert!(verify_order(&k, &o));
        let mut bad = o.clone();
        bad.price = 9.9;
        assert!(!verify_order(&k, &bad));
        assert!(make_order(&k, "ghost", true, 1.0, 1, 0).is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::crypto::KeyDirectory;
    use proptest::prelude::*;

    fn dir() -> KeyDirectory {
        let mut k = KeyDirectory::new();
        for p in ["p0", "p1", "p2"] {
            k.register_derived(p, b"prop");
        }
        k
    }

    proptest! {
        /// Under any order stream: credits conserve, open interest never
        /// goes negative (u64 by construction), and the book never holds a
        /// crossed market (best bid < best ask when both sides rest).
        #[test]
        fn book_invariants_under_random_streams(
            orders in proptest::collection::vec(
                (0u8..3, any::<bool>(), 1u64..20, 90u64..110),
                1..60,
            ),
        ) {
            let keys = dir();
            let mut book = OrderBook::new();
            for (i, (p, is_bid, qty, price_c)) in orders.iter().enumerate() {
                let party = format!("p{p}");
                let price = *price_c as f64 / 100.0;
                let o = make_order(&keys, &party, *is_bid, price, *qty, i as u64).unwrap();
                book.submit(o);
                if let (Some(bid), Some(ask)) = (book.best_bid(), book.best_ask()) {
                    prop_assert!(bid < ask, "crossed book: bid {bid} >= ask {ask}");
                }
            }
            let net: f64 = book.settlement().values().sum();
            prop_assert!(net.abs() < 1e-6, "non-conserving settlement {net}");
            // Trades never exceed submitted quantity.
            let submitted: u64 = orders.iter().map(|(_, _, q, _)| q).sum();
            let traded: u64 = book.trades().iter().map(|t| t.quantity).sum();
            prop_assert!(traded <= submitted);
        }
    }
}
