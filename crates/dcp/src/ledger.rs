//! The replicated receipt ledger: quorum attestation and reward accounting.
//!
//! Every node holds a full copy of the ledger, fed by gossip. A coverage
//! receipt becomes *confirmed* once a quorum of distinct parties has
//! attested it valid; confirmed receipts mint rewards to the satellite
//! owner and the verifying ground station. Because items arrive via gossip
//! in arbitrary order, the ledger accepts attestations before their receipt
//! and re-evaluates confirmation as pieces arrive. All operations are
//! idempotent, which makes ledger state a CRDT (grow-only maps) — two nodes
//! that have seen the same item set hold identical ledgers regardless of
//! arrival order.

use crate::messages::{ItemId, SettlementNote};
use crate::poc::{Attestation, CoverageReceipt};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Implicit counterparty for credit/debit: minting credits `credit`s from
/// the treasury, burning `debit`s back into it, so the signed sum over all
/// accounts (treasury included) is an invariant zero.
pub const TREASURY: &str = "__treasury";

/// Numerical slack for zero-sum checks on f64 credit amounts.
const CONSERVATION_EPS: f64 = 1e-6;

/// Outcome of applying a settlement batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SettlementOutcome {
    /// The batch was applied for the first time.
    Applied,
    /// The batch id was seen before; nothing changed (idempotent replay).
    Duplicate,
    /// The batch violates conservation (non-zero-sum) and was refused.
    Rejected,
}

/// The party account book: double-entry balances fed by credits, debits,
/// and idempotent settlement batches.
///
/// Invariant: the signed sum of every balance (treasury included) is zero,
/// no matter how credit/debit/settle calls interleave — each operation is
/// itself zero-sum, and non-conserving settlements are refused.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Accounts {
    balances: BTreeMap<String, f64>,
    applied: BTreeSet<String>,
}

impl Accounts {
    /// An empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Move `amount` credits from `from` to `to` (negative amounts flip the
    /// direction; the move is always zero-sum).
    pub fn transfer(&mut self, from: &str, to: &str, amount: f64) {
        *self.balances.entry(from.to_string()).or_default() -= amount;
        *self.balances.entry(to.to_string()).or_default() += amount;
    }

    /// Mint `amount` credits to `party` from the treasury.
    pub fn credit(&mut self, party: &str, amount: f64) {
        self.transfer(TREASURY, party, amount);
    }

    /// Burn `amount` credits from `party` back into the treasury.
    pub fn debit(&mut self, party: &str, amount: f64) {
        self.transfer(party, TREASURY, amount);
    }

    /// Apply a zero-sum settlement batch exactly once per `id`. Duplicates
    /// are no-ops; batches whose deltas do not sum to ~0 are refused.
    pub fn apply_settlement(
        &mut self,
        id: &str,
        transfers: &BTreeMap<String, f64>,
    ) -> SettlementOutcome {
        let net: f64 = transfers.values().sum();
        if net.abs() > CONSERVATION_EPS {
            return SettlementOutcome::Rejected;
        }
        if !self.applied.insert(id.to_string()) {
            return SettlementOutcome::Duplicate;
        }
        for (party, delta) in transfers {
            *self.balances.entry(party.clone()).or_default() += delta;
        }
        SettlementOutcome::Applied
    }

    /// Balance of one party (0 if never touched).
    pub fn balance(&self, party: &str) -> f64 {
        self.balances.get(party).copied().unwrap_or(0.0)
    }

    /// All balances (treasury included), sorted for determinism.
    pub fn balances(&self) -> &BTreeMap<String, f64> {
        &self.balances
    }

    /// Signed sum over every account — always ~0 (the conservation
    /// invariant).
    pub fn total_imbalance(&self) -> f64 {
        self.balances.values().sum()
    }

    /// Number of settlement batches applied so far.
    pub fn settlements_applied(&self) -> usize {
        self.applied.len()
    }
}

/// Ledger policy parameters (network-wide constants in the prototype).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LedgerConfig {
    /// Number of distinct valid attestations required to confirm a receipt.
    pub quorum: usize,
    /// Credits minted per confirmed receipt.
    pub reward_per_receipt: f64,
    /// Fraction of the reward paid to the verifier (rest to the owner).
    pub verifier_share: f64,
}

impl Default for LedgerConfig {
    fn default() -> Self {
        LedgerConfig { quorum: 2, reward_per_receipt: 1.0, verifier_share: 0.2 }
    }
}

/// A receipt plus the attestations seen for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReceiptEntry {
    /// The receipt body (may lag its attestations during gossip).
    pub receipt: Option<CoverageReceipt>,
    /// Attestor -> verdict.
    pub attestations: BTreeMap<String, bool>,
}

impl ReceiptEntry {
    fn new() -> Self {
        ReceiptEntry { receipt: None, attestations: BTreeMap::new() }
    }

    /// Count of attestations that deemed the receipt valid.
    pub fn valid_votes(&self) -> usize {
        self.attestations.values().filter(|&&v| v).count()
    }
}

/// The replicated ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ledger {
    /// Policy parameters.
    pub config: LedgerConfig,
    entries: HashMap<ItemId, ReceiptEntry>,
    #[serde(default)]
    accounts: Accounts,
}

impl Ledger {
    /// Empty ledger with the given policy.
    pub fn new(config: LedgerConfig) -> Self {
        Ledger { config, entries: HashMap::new(), accounts: Accounts::new() }
    }

    /// Apply a gossiped settlement note to the account book. The note's
    /// `(epoch, proposer)` id makes replays idempotent; non-zero-sum notes
    /// are refused. Signature verification is the caller's job (the node
    /// checks it before applying).
    pub fn apply_settlement_note(&mut self, note: &SettlementNote) -> SettlementOutcome {
        self.accounts.apply_settlement(&note.settlement_id(), &note.transfers)
    }

    /// The party account book (settled balances).
    pub fn accounts(&self) -> &Accounts {
        &self.accounts
    }

    /// Mutable access to the account book (for local credit/debit flows).
    pub fn accounts_mut(&mut self) -> &mut Accounts {
        &mut self.accounts
    }

    /// Record a receipt under its content id. Idempotent.
    pub fn insert_receipt(&mut self, id: ItemId, receipt: CoverageReceipt) {
        let entry = self.entries.entry(id).or_insert_with(ReceiptEntry::new);
        if entry.receipt.is_none() {
            entry.receipt = Some(receipt);
        }
    }

    /// Record an attestation (receipt body may not have arrived yet).
    /// Idempotent per (receipt, attestor); a attestor's first verdict wins.
    pub fn insert_attestation(&mut self, att: &Attestation) {
        let entry = self.entries.entry(att.receipt_id.clone()).or_insert_with(ReceiptEntry::new);
        entry.attestations.entry(att.attestor.clone()).or_insert(att.valid);
    }

    /// Whether a receipt is confirmed (body present + quorum of valid
    /// votes).
    pub fn is_confirmed(&self, id: &str) -> bool {
        self.entries
            .get(id)
            .map(|e| e.receipt.is_some() && e.valid_votes() >= self.config.quorum)
            .unwrap_or(false)
    }

    /// Number of receipts tracked (confirmed or not).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ids of all confirmed receipts, sorted (deterministic across nodes).
    pub fn confirmed_ids(&self) -> Vec<ItemId> {
        let mut ids: Vec<ItemId> = self
            .entries
            .iter()
            .filter(|(id, _)| self.is_confirmed(id))
            .map(|(id, _)| id.clone())
            .collect();
        ids.sort();
        ids
    }

    /// Look up an entry.
    pub fn entry(&self, id: &str) -> Option<&ReceiptEntry> {
        self.entries.get(id)
    }

    /// Mint rewards for all confirmed receipts: per receipt, the owner
    /// earns `reward * (1 - verifier_share)` and the verifier earns
    /// `reward * verifier_share`. Returns party -> credits, sorted map for
    /// determinism.
    pub fn reward_balances(&self) -> BTreeMap<String, f64> {
        let mut out: BTreeMap<String, f64> = BTreeMap::new();
        for id in self.confirmed_ids() {
            let entry = &self.entries[&id];
            let receipt = entry.receipt.as_ref().expect("confirmed implies body");
            let reward = self.config.reward_per_receipt;
            *out.entry(receipt.owner.clone()).or_default() +=
                reward * (1.0 - self.config.verifier_share);
            *out.entry(receipt.verifier.clone()).or_default() +=
                reward * self.config.verifier_share;
        }
        out
    }

    /// Digest of the confirmed set (equal across converged nodes).
    pub fn confirmed_digest(&self) -> String {
        let joined = self.confirmed_ids().join(",");
        crate::crypto::hex(&crate::crypto::sha256(joined.as_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::KeyDirectory;

    fn keys() -> KeyDirectory {
        let mut k = KeyDirectory::new();
        for p in ["a", "b", "c", "owner", "gs"] {
            k.register_derived(p, b"seed");
        }
        k
    }

    fn receipt() -> CoverageReceipt {
        CoverageReceipt::create(&keys(), 1, "gs", "owner", 100.0, 45.0).unwrap()
    }

    fn attest(id: &str, who: &str, valid: bool) -> Attestation {
        Attestation::create(&keys(), id, who, valid).unwrap()
    }

    #[test]
    fn confirmation_requires_quorum_and_body() {
        let mut l = Ledger::new(LedgerConfig { quorum: 2, ..Default::default() });
        let id = "r1".to_string();
        l.insert_attestation(&attest(&id, "a", true));
        assert!(!l.is_confirmed(&id), "no body yet");
        l.insert_receipt(id.clone(), receipt());
        assert!(!l.is_confirmed(&id), "one vote < quorum");
        l.insert_attestation(&attest(&id, "b", true));
        assert!(l.is_confirmed(&id));
    }

    #[test]
    fn invalid_votes_dont_count() {
        let mut l = Ledger::new(LedgerConfig { quorum: 2, ..Default::default() });
        let id = "r1".to_string();
        l.insert_receipt(id.clone(), receipt());
        l.insert_attestation(&attest(&id, "a", false));
        l.insert_attestation(&attest(&id, "b", false));
        l.insert_attestation(&attest(&id, "c", true));
        assert!(!l.is_confirmed(&id));
        assert_eq!(l.entry(&id).unwrap().valid_votes(), 1);
    }

    #[test]
    fn duplicate_attestor_counted_once() {
        let mut l = Ledger::new(LedgerConfig { quorum: 2, ..Default::default() });
        let id = "r1".to_string();
        l.insert_receipt(id.clone(), receipt());
        l.insert_attestation(&attest(&id, "a", true));
        l.insert_attestation(&attest(&id, "a", true));
        assert!(!l.is_confirmed(&id), "same attestor twice is one vote");
        // First verdict wins: a later contradictory vote is ignored.
        l.insert_attestation(&attest(&id, "a", false));
        assert_eq!(l.entry(&id).unwrap().valid_votes(), 1);
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn order_independence_crdt() {
        let id = "r1".to_string();
        let ops: Vec<Box<dyn Fn(&mut Ledger)>> = vec![
            Box::new({
                let id = id.clone();
                move |l: &mut Ledger| l.insert_receipt(id.clone(), receipt())
            }),
            Box::new({
                let id = id.clone();
                move |l: &mut Ledger| l.insert_attestation(&attest(&id, "a", true))
            }),
            Box::new({
                let id = id.clone();
                move |l: &mut Ledger| l.insert_attestation(&attest(&id, "b", true))
            }),
        ];
        // All 6 permutations converge to the same digest.
        let mut digests = std::collections::HashSet::new();
        for perm in [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            let mut l = Ledger::new(LedgerConfig::default());
            for &i in &perm {
                ops[i](&mut l);
            }
            digests.insert(l.confirmed_digest());
            assert!(l.is_confirmed(&id));
        }
        assert_eq!(digests.len(), 1);
    }

    #[test]
    fn rewards_split_owner_verifier() {
        let cfg = LedgerConfig { quorum: 1, reward_per_receipt: 10.0, verifier_share: 0.3 };
        let mut l = Ledger::new(cfg);
        l.insert_receipt("r1".into(), receipt());
        l.insert_attestation(&attest("r1", "a", true));
        let b = l.reward_balances();
        assert!((b["owner"] - 7.0).abs() < 1e-12);
        assert!((b["gs"] - 3.0).abs() < 1e-12);
        let total: f64 = b.values().sum();
        assert!((total - 10.0).abs() < 1e-12);
    }

    #[test]
    fn settlement_note_applies_once() {
        let k = keys();
        let mut l = Ledger::new(LedgerConfig::default());
        let mut transfers = BTreeMap::new();
        transfers.insert("a".to_string(), 3.0);
        transfers.insert("b".to_string(), -3.0);
        let note = crate::messages::SettlementNote::create(&k, 1, "a", transfers).unwrap();
        assert_eq!(l.apply_settlement_note(&note), SettlementOutcome::Applied);
        assert_eq!(l.apply_settlement_note(&note), SettlementOutcome::Duplicate);
        assert!((l.accounts().balance("a") - 3.0).abs() < 1e-9);
        assert!((l.accounts().balance("b") + 3.0).abs() < 1e-9);
        assert!(l.accounts().total_imbalance().abs() < 1e-9);
    }

    #[test]
    fn non_zero_sum_settlement_refused() {
        let mut acc = Accounts::new();
        let mut transfers = BTreeMap::new();
        transfers.insert("a".to_string(), 1.0);
        transfers.insert("b".to_string(), -0.5);
        assert_eq!(acc.apply_settlement("s1", &transfers), SettlementOutcome::Rejected);
        assert_eq!(acc.settlements_applied(), 0);
        assert_eq!(acc.balance("a"), 0.0);
    }

    #[test]
    fn credit_debit_round_trip_conserves() {
        let mut acc = Accounts::new();
        acc.credit("a", 10.0);
        acc.debit("a", 4.0);
        acc.transfer("a", "b", 2.5);
        assert!((acc.balance("a") - 3.5).abs() < 1e-9);
        assert!((acc.balance("b") - 2.5).abs() < 1e-9);
        assert!((acc.balance(TREASURY) + 6.0).abs() < 1e-9);
        assert!(acc.total_imbalance().abs() < 1e-9);
    }

    #[test]
    fn unconfirmed_receipts_mint_nothing() {
        let mut l = Ledger::new(LedgerConfig { quorum: 3, ..Default::default() });
        l.insert_receipt("r1".into(), receipt());
        l.insert_attestation(&attest("r1", "a", true));
        assert!(l.reward_balances().is_empty());
        assert_eq!(l.len(), 1);
        assert!(!l.is_empty());
    }
}

#[cfg(test)]
mod settlement_proptests {
    use super::*;
    use proptest::prelude::*;

    /// One step of an arbitrary account-book workload.
    #[derive(Debug, Clone)]
    enum Op {
        Credit(u8, f64),
        Debit(u8, f64),
        Settle { id: u8, a: u8, b: u8, amount: f64 },
    }

    fn party(i: u8) -> String {
        format!("p{}", i % 5)
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<u8>(), 0.0..100.0f64).prop_map(|(p, x)| Op::Credit(p, x)),
            (any::<u8>(), 0.0..100.0f64).prop_map(|(p, x)| Op::Debit(p, x)),
            (any::<u8>(), any::<u8>(), any::<u8>(), 0.0..100.0f64)
                .prop_map(|(id, a, b, x)| Op::Settle { id, a, b, amount: x }),
        ]
    }

    fn apply(acc: &mut Accounts, op: &Op) {
        match op {
            Op::Credit(p, x) => acc.credit(&party(*p), *x),
            Op::Debit(p, x) => acc.debit(&party(*p), *x),
            Op::Settle { id, a, b, amount } => {
                let mut transfers = BTreeMap::new();
                // A two-party zero-sum batch (a == b degenerates to a
                // self-transfer of 0, still zero-sum).
                *transfers.entry(party(*a)).or_insert(0.0) += *amount;
                *transfers.entry(party(*b)).or_insert(0.0) -= *amount;
                acc.apply_settlement(&format!("s{id}"), &transfers);
            }
        }
    }

    proptest! {
        /// Conservation: any interleaving of credit/debit/settle keeps the
        /// signed total at zero.
        #[test]
        fn arbitrary_interleavings_conserve(ops in proptest::collection::vec(op_strategy(), 0..64)) {
            let mut acc = Accounts::new();
            for op in &ops {
                apply(&mut acc, op);
                prop_assert!(acc.total_imbalance().abs() < 1e-6, "imbalance after {op:?}");
            }
        }

        /// Replaying every settlement a second time (in any position) must
        /// not change any balance: settlement application is idempotent.
        #[test]
        fn duplicate_settlement_replay_is_noop(ops in proptest::collection::vec(op_strategy(), 1..48)) {
            let mut reference = Accounts::new();
            for op in &ops {
                apply(&mut reference, op);
            }
            let mut replayed = Accounts::new();
            for op in &ops {
                apply(&mut replayed, op);
                if matches!(op, Op::Settle { .. }) {
                    apply(&mut replayed, op); // immediate replay
                }
            }
            // And a full tail replay of all settlements.
            for op in &ops {
                if matches!(op, Op::Settle { .. }) {
                    apply(&mut replayed, op);
                }
            }
            for (party, bal) in reference.balances() {
                prop_assert!((replayed.balance(party) - bal).abs() < 1e-6, "{party} diverged");
            }
            prop_assert_eq!(reference.settlements_applied(), replayed.settlements_applied());
        }
    }
}
