//! The replicated receipt ledger: quorum attestation and reward accounting.
//!
//! Every node holds a full copy of the ledger, fed by gossip. A coverage
//! receipt becomes *confirmed* once a quorum of distinct parties has
//! attested it valid; confirmed receipts mint rewards to the satellite
//! owner and the verifying ground station. Because items arrive via gossip
//! in arbitrary order, the ledger accepts attestations before their receipt
//! and re-evaluates confirmation as pieces arrive. All operations are
//! idempotent, which makes ledger state a CRDT (grow-only maps) — two nodes
//! that have seen the same item set hold identical ledgers regardless of
//! arrival order.

use crate::messages::ItemId;
use crate::poc::{Attestation, CoverageReceipt};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Ledger policy parameters (network-wide constants in the prototype).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LedgerConfig {
    /// Number of distinct valid attestations required to confirm a receipt.
    pub quorum: usize,
    /// Credits minted per confirmed receipt.
    pub reward_per_receipt: f64,
    /// Fraction of the reward paid to the verifier (rest to the owner).
    pub verifier_share: f64,
}

impl Default for LedgerConfig {
    fn default() -> Self {
        LedgerConfig { quorum: 2, reward_per_receipt: 1.0, verifier_share: 0.2 }
    }
}

/// A receipt plus the attestations seen for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReceiptEntry {
    /// The receipt body (may lag its attestations during gossip).
    pub receipt: Option<CoverageReceipt>,
    /// Attestor -> verdict.
    pub attestations: BTreeMap<String, bool>,
}

impl ReceiptEntry {
    fn new() -> Self {
        ReceiptEntry { receipt: None, attestations: BTreeMap::new() }
    }

    /// Count of attestations that deemed the receipt valid.
    pub fn valid_votes(&self) -> usize {
        self.attestations.values().filter(|&&v| v).count()
    }
}

/// The replicated ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ledger {
    /// Policy parameters.
    pub config: LedgerConfig,
    entries: HashMap<ItemId, ReceiptEntry>,
}

impl Ledger {
    /// Empty ledger with the given policy.
    pub fn new(config: LedgerConfig) -> Self {
        Ledger { config, entries: HashMap::new() }
    }

    /// Record a receipt under its content id. Idempotent.
    pub fn insert_receipt(&mut self, id: ItemId, receipt: CoverageReceipt) {
        let entry = self.entries.entry(id).or_insert_with(ReceiptEntry::new);
        if entry.receipt.is_none() {
            entry.receipt = Some(receipt);
        }
    }

    /// Record an attestation (receipt body may not have arrived yet).
    /// Idempotent per (receipt, attestor); a attestor's first verdict wins.
    pub fn insert_attestation(&mut self, att: &Attestation) {
        let entry = self.entries.entry(att.receipt_id.clone()).or_insert_with(ReceiptEntry::new);
        entry.attestations.entry(att.attestor.clone()).or_insert(att.valid);
    }

    /// Whether a receipt is confirmed (body present + quorum of valid
    /// votes).
    pub fn is_confirmed(&self, id: &str) -> bool {
        self.entries
            .get(id)
            .map(|e| e.receipt.is_some() && e.valid_votes() >= self.config.quorum)
            .unwrap_or(false)
    }

    /// Number of receipts tracked (confirmed or not).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ids of all confirmed receipts, sorted (deterministic across nodes).
    pub fn confirmed_ids(&self) -> Vec<ItemId> {
        let mut ids: Vec<ItemId> = self
            .entries
            .iter()
            .filter(|(id, _)| self.is_confirmed(id))
            .map(|(id, _)| id.clone())
            .collect();
        ids.sort();
        ids
    }

    /// Look up an entry.
    pub fn entry(&self, id: &str) -> Option<&ReceiptEntry> {
        self.entries.get(id)
    }

    /// Mint rewards for all confirmed receipts: per receipt, the owner
    /// earns `reward * (1 - verifier_share)` and the verifier earns
    /// `reward * verifier_share`. Returns party -> credits, sorted map for
    /// determinism.
    pub fn reward_balances(&self) -> BTreeMap<String, f64> {
        let mut out: BTreeMap<String, f64> = BTreeMap::new();
        for id in self.confirmed_ids() {
            let entry = &self.entries[&id];
            let receipt = entry.receipt.as_ref().expect("confirmed implies body");
            let reward = self.config.reward_per_receipt;
            *out.entry(receipt.owner.clone()).or_default() +=
                reward * (1.0 - self.config.verifier_share);
            *out.entry(receipt.verifier.clone()).or_default() +=
                reward * self.config.verifier_share;
        }
        out
    }

    /// Digest of the confirmed set (equal across converged nodes).
    pub fn confirmed_digest(&self) -> String {
        let joined = self.confirmed_ids().join(",");
        crate::crypto::hex(&crate::crypto::sha256(joined.as_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::KeyDirectory;

    fn keys() -> KeyDirectory {
        let mut k = KeyDirectory::new();
        for p in ["a", "b", "c", "owner", "gs"] {
            k.register_derived(p, b"seed");
        }
        k
    }

    fn receipt() -> CoverageReceipt {
        CoverageReceipt::create(&keys(), 1, "gs", "owner", 100.0, 45.0).unwrap()
    }

    fn attest(id: &str, who: &str, valid: bool) -> Attestation {
        Attestation::create(&keys(), id, who, valid).unwrap()
    }

    #[test]
    fn confirmation_requires_quorum_and_body() {
        let mut l = Ledger::new(LedgerConfig { quorum: 2, ..Default::default() });
        let id = "r1".to_string();
        l.insert_attestation(&attest(&id, "a", true));
        assert!(!l.is_confirmed(&id), "no body yet");
        l.insert_receipt(id.clone(), receipt());
        assert!(!l.is_confirmed(&id), "one vote < quorum");
        l.insert_attestation(&attest(&id, "b", true));
        assert!(l.is_confirmed(&id));
    }

    #[test]
    fn invalid_votes_dont_count() {
        let mut l = Ledger::new(LedgerConfig { quorum: 2, ..Default::default() });
        let id = "r1".to_string();
        l.insert_receipt(id.clone(), receipt());
        l.insert_attestation(&attest(&id, "a", false));
        l.insert_attestation(&attest(&id, "b", false));
        l.insert_attestation(&attest(&id, "c", true));
        assert!(!l.is_confirmed(&id));
        assert_eq!(l.entry(&id).unwrap().valid_votes(), 1);
    }

    #[test]
    fn duplicate_attestor_counted_once() {
        let mut l = Ledger::new(LedgerConfig { quorum: 2, ..Default::default() });
        let id = "r1".to_string();
        l.insert_receipt(id.clone(), receipt());
        l.insert_attestation(&attest(&id, "a", true));
        l.insert_attestation(&attest(&id, "a", true));
        assert!(!l.is_confirmed(&id), "same attestor twice is one vote");
        // First verdict wins: a later contradictory vote is ignored.
        l.insert_attestation(&attest(&id, "a", false));
        assert_eq!(l.entry(&id).unwrap().valid_votes(), 1);
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn order_independence_crdt() {
        let id = "r1".to_string();
        let ops: Vec<Box<dyn Fn(&mut Ledger)>> = vec![
            Box::new({
                let id = id.clone();
                move |l: &mut Ledger| l.insert_receipt(id.clone(), receipt())
            }),
            Box::new({
                let id = id.clone();
                move |l: &mut Ledger| l.insert_attestation(&attest(&id, "a", true))
            }),
            Box::new({
                let id = id.clone();
                move |l: &mut Ledger| l.insert_attestation(&attest(&id, "b", true))
            }),
        ];
        // All 6 permutations converge to the same digest.
        let mut digests = std::collections::HashSet::new();
        for perm in [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            let mut l = Ledger::new(LedgerConfig::default());
            for &i in &perm {
                ops[i](&mut l);
            }
            digests.insert(l.confirmed_digest());
            assert!(l.is_confirmed(&id));
        }
        assert_eq!(digests.len(), 1);
    }

    #[test]
    fn rewards_split_owner_verifier() {
        let cfg = LedgerConfig { quorum: 1, reward_per_receipt: 10.0, verifier_share: 0.3 };
        let mut l = Ledger::new(cfg);
        l.insert_receipt("r1".into(), receipt());
        l.insert_attestation(&attest("r1", "a", true));
        let b = l.reward_balances();
        assert!((b["owner"] - 7.0).abs() < 1e-12);
        assert!((b["gs"] - 3.0).abs() < 1e-12);
        let total: f64 = b.values().sum();
        assert!((total - 10.0).abs() < 1e-12);
    }

    #[test]
    fn unconfirmed_receipts_mint_nothing() {
        let mut l = Ledger::new(LedgerConfig { quorum: 3, ..Default::default() });
        l.insert_receipt("r1".into(), receipt());
        l.insert_attestation(&attest("r1", "a", true));
        assert!(l.reward_balances().is_empty());
        assert_eq!(l.len(), 1);
        assert!(!l.is_empty());
    }
}
