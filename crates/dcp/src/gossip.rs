//! The gossip state machine (pure logic; the socket plumbing lives in
//! [`crate::node`]).
//!
//! Epidemic broadcast with three message types:
//!
//! * on learning a new item, a node **announces** its id to all peers;
//! * a peer missing the id sends a **request**;
//! * the holder replies with the **payload**.
//!
//! A periodic anti-entropy tick re-announces the full id set so items
//! eventually reach nodes that joined late or missed frames. The store is
//! the node's source of truth; dedup falls out of content-addressed ids.

use crate::messages::{GossipItem, ItemId, Message};
use std::collections::HashMap;

/// The gossip item store plus protocol reaction logic.
#[derive(Debug, Default)]
pub struct GossipState {
    items: HashMap<ItemId, GossipItem>,
}

impl GossipState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of items held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether an item id is held.
    pub fn contains(&self, id: &str) -> bool {
        self.items.contains_key(id)
    }

    /// All held ids, sorted. The order matters: anti-entropy announces ids
    /// in this order, so requests — and therefore payload application — are
    /// reproducible run-to-run (the testkit's determinism depends on never
    /// leaking `HashMap` iteration order onto the wire).
    pub fn ids(&self) -> Vec<ItemId> {
        let mut ids: Vec<ItemId> = self.items.keys().cloned().collect();
        ids.sort_unstable();
        ids
    }

    /// Get an item by id.
    pub fn get(&self, id: &str) -> Option<&GossipItem> {
        self.items.get(id)
    }

    /// Iterate over held items.
    pub fn iter(&self) -> impl Iterator<Item = (&ItemId, &GossipItem)> {
        self.items.iter()
    }

    /// Insert a locally originated or received item. Returns `Some(id)` if
    /// the item was new (and should be announced), `None` if duplicate.
    pub fn insert(&mut self, item: GossipItem) -> Option<ItemId> {
        let id = item.id();
        if self.items.contains_key(&id) {
            return None;
        }
        self.items.insert(id.clone(), item);
        Some(id)
    }

    /// React to an **announce**: which of the announced ids do we need?
    /// Returns a request message if any are missing.
    pub fn on_announce(&self, ids: &[ItemId]) -> Option<Message> {
        let missing: Vec<ItemId> = ids.iter().filter(|id| !self.contains(id)).cloned().collect();
        if missing.is_empty() {
            None
        } else {
            Some(Message::GossipRequest { ids: missing })
        }
    }

    /// React to a **request**: return the payload of the ids we hold.
    pub fn on_request(&self, ids: &[ItemId]) -> Option<Message> {
        let items: Vec<GossipItem> = ids.iter().filter_map(|id| self.get(id).cloned()).collect();
        if items.is_empty() {
            None
        } else {
            Some(Message::GossipPayload { items })
        }
    }

    /// React to a **payload**: insert each item, returning the ids that
    /// were new (these should be re-announced to other peers, and handed to
    /// the application layer).
    pub fn on_payload(&mut self, items: Vec<GossipItem>) -> Vec<(ItemId, GossipItem)> {
        let mut fresh = Vec::new();
        for item in items {
            if let Some(id) = self.insert(item.clone()) {
                fresh.push((id, item));
            }
        }
        fresh
    }

    /// The periodic anti-entropy announcement (full id set).
    pub fn anti_entropy_announce(&self) -> Option<Message> {
        if self.items.is_empty() {
            None
        } else {
            Some(Message::GossipAnnounce { ids: self.ids() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::MarketOrder;

    fn order(seq: u64) -> GossipItem {
        GossipItem::Order(MarketOrder {
            party: "p".into(),
            is_bid: true,
            price: 1.0,
            quantity: 10,
            sequence: seq,
            signature: "sig".into(),
        })
    }

    #[test]
    fn insert_dedups() {
        let mut g = GossipState::new();
        let id = g.insert(order(1)).expect("new item");
        assert!(g.insert(order(1)).is_none(), "duplicate suppressed");
        assert!(g.contains(&id));
        assert_eq!(g.len(), 1);
        assert!(g.insert(order(2)).is_some());
        assert_eq!(g.len(), 2);
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn announce_request_payload_flow() {
        let mut holder = GossipState::new();
        let mut seeker = GossipState::new();
        let id = holder.insert(order(1)).unwrap();

        // Holder announces; seeker requests what it misses.
        let req = seeker.on_announce(std::slice::from_ref(&id)).expect("missing item");
        let Message::GossipRequest { ids } = req else { panic!() };
        assert_eq!(ids, vec![id.clone()]);

        // Holder serves the payload; seeker ingests it.
        let payload = holder.on_request(&ids).expect("has item");
        let Message::GossipPayload { items } = payload else { panic!() };
        let fresh = seeker.on_payload(items);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].0, id);
        assert!(seeker.contains(&id));

        // Second announce round: nothing missing.
        assert!(seeker.on_announce(&[id]).is_none());
    }

    #[test]
    fn request_for_unknown_ids_yields_nothing() {
        let g = GossipState::new();
        assert!(g.on_request(&["nope".into()]).is_none());
    }

    #[test]
    fn partial_requests_served_partially() {
        let mut g = GossipState::new();
        let id = g.insert(order(1)).unwrap();
        let msg = g.on_request(&[id, "unknown".into()]).unwrap();
        let Message::GossipPayload { items } = msg else { panic!() };
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn payload_reinsert_not_fresh() {
        let mut g = GossipState::new();
        g.insert(order(1)).unwrap();
        let fresh = g.on_payload(vec![order(1), order(2)]);
        assert_eq!(fresh.len(), 1, "only the unseen item is fresh");
    }

    #[test]
    fn anti_entropy_announces_everything() {
        let mut g = GossipState::new();
        assert!(g.anti_entropy_announce().is_none());
        g.insert(order(1)).unwrap();
        g.insert(order(2)).unwrap();
        let Some(Message::GossipAnnounce { ids }) = g.anti_entropy_announce() else {
            panic!()
        };
        assert_eq!(ids.len(), 2);
    }
}
