//! Deterministic protocol test harness.
//!
//! Spin up N nodes on a seeded [`SimNet`], wire a topology, and drive the
//! whole protocol in **virtual time**: run the enclosing test (or runtime)
//! with paused tokio time (`#[tokio::test(start_paused = true)]`, or
//! `tokio::runtime::Builder::new_current_thread().enable_time()
//! .start_paused(true)`), and every sleep in [`converge_until`] /
//! [`TestNet::settle`] advances the clock instead of burning wall time.
//! A multi-second gossip scenario — drops, partitions, reconnect backoff
//! and all — completes in milliseconds of real time, deterministically:
//! the same seed replays the same message drops, jitter, and final state.
//!
//! ```no_run
//! # async fn demo() -> std::io::Result<()> {
//! use dcp::testkit::TestNet;
//! use std::time::Duration;
//!
//! let net = TestNet::new(42, &["alpha", "beta", "gamma"]).await?;
//! net.connect_chain().await?;                    // alpha - beta - gamma
//! // ... publish items on net.nodes[0] ...
//! assert!(net.all_converged(Duration::from_secs(10), 1).await);
//! net.shutdown_all();
//! # Ok(()) }
//! ```

use crate::crypto::KeyDirectory;
use crate::node::{Node, NodeConfig, NodeHandle};
use crate::transport::SimNet;
use std::io;
use std::sync::Arc;
use std::time::Duration;

/// Virtual-time polling step for [`converge_until`].
const POLL_STEP: Duration = Duration::from_millis(5);

/// Poll `pred` every few virtual milliseconds until it holds or `within`
/// virtual time elapses. Under paused tokio time this costs no wall-clock
/// time; on a normal runtime it degrades to a plain poll loop.
pub async fn converge_until<F: FnMut() -> bool>(within: Duration, mut pred: F) -> bool {
    let deadline = tokio::time::Instant::now() + within;
    loop {
        if pred() {
            return true;
        }
        if tokio::time::Instant::now() >= deadline {
            return false;
        }
        tokio::time::sleep(POLL_STEP).await;
    }
}

/// A network-seeded key directory shared by every party in a test.
pub fn test_keys(parties: &[&str]) -> KeyDirectory {
    let mut keys = KeyDirectory::new();
    for p in parties {
        keys.register_derived(*p, b"dcp-testkit");
    }
    keys
}

/// N nodes on one seeded [`SimNet`] plus topology and convergence helpers.
pub struct TestNet {
    /// The simulated network (fault plans, partitions, kill switches).
    pub net: Arc<SimNet>,
    /// Node handles, in spawn order.
    pub nodes: Vec<NodeHandle>,
    /// The shared key directory.
    pub keys: KeyDirectory,
}

impl TestNet {
    /// Start one node per party with default sim configs.
    pub async fn new(seed: u64, parties: &[&str]) -> io::Result<TestNet> {
        Self::with_config(seed, parties, |_, cfg| cfg).await
    }

    /// Start one node per party, letting `tune` adjust each [`NodeConfig`]
    /// (quorum, scenario, backoff, anti-entropy interval, ...).
    pub async fn with_config(
        seed: u64,
        parties: &[&str],
        mut tune: impl FnMut(usize, NodeConfig) -> NodeConfig,
    ) -> io::Result<TestNet> {
        let net = SimNet::new(seed);
        let keys = test_keys(parties);
        let mut nodes = Vec::with_capacity(parties.len());
        for (i, p) in parties.iter().enumerate() {
            let cfg = tune(i, NodeConfig::sim(*p, keys.clone(), &net));
            nodes.push(Node::start(cfg).await?);
        }
        Ok(TestNet { net, nodes, keys })
    }

    /// Dial node `j` from node `i` (with the node's backoff policy).
    pub async fn connect(&self, i: usize, j: usize) -> io::Result<()> {
        self.nodes[i].connect(self.nodes[j].local_addr).await
    }

    /// Wire a chain: 0 - 1 - 2 - ... - (n-1).
    pub async fn connect_chain(&self) -> io::Result<()> {
        for i in 1..self.nodes.len() {
            self.connect(i, i - 1).await?;
        }
        Ok(())
    }

    /// Wire a ring: the chain plus a link from the last node back to 0.
    pub async fn connect_ring(&self) -> io::Result<()> {
        self.connect_chain().await?;
        if self.nodes.len() > 2 {
            self.connect(self.nodes.len() - 1, 0).await?;
        }
        Ok(())
    }

    /// Let the network run for `d` of virtual time.
    pub async fn settle(&self, d: Duration) {
        tokio::time::sleep(d).await;
    }

    /// Wait until every node holds at least `items` gossip items.
    pub async fn all_converged(&self, within: Duration, items: usize) -> bool {
        converge_until(within, || self.nodes.iter().all(|n| n.item_count() >= items)).await
    }

    /// Wait until `pred` holds for every node.
    pub async fn converged_when(
        &self,
        within: Duration,
        mut pred: impl FnMut(&NodeHandle) -> bool,
    ) -> bool {
        converge_until(within, || self.nodes.iter().all(&mut pred)).await
    }

    /// Every node's ledger digest is identical (fully converged ledgers).
    pub fn ledgers_agree(&self) -> bool {
        let mut digests = self.nodes.iter().map(|n| n.ledger_digest());
        match digests.next() {
            None => true,
            Some(first) => digests.all(|d| d == first),
        }
    }

    /// Listen addresses of a subset of nodes (for partition scripting).
    pub fn addrs(&self, idx: &[usize]) -> Vec<std::net::SocketAddr> {
        idx.iter().map(|&i| self.nodes[i].local_addr).collect()
    }

    /// Partition the named node groups (see [`SimNet::partition`]).
    pub fn partition(&self, left: &[usize], right: &[usize]) {
        self.net.partition(&self.addrs(left), &self.addrs(right));
    }

    /// Heal all partitions.
    pub fn heal(&self) {
        self.net.heal();
    }

    /// Shut down every node. Idempotent.
    pub fn shutdown_all(&self) {
        for n in &self.nodes {
            n.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::make_order;
    use crate::messages::GossipItem;

    #[tokio::test(start_paused = true)]
    async fn chain_converges_in_virtual_time() {
        let net = TestNet::new(7, &["a", "b", "c"]).await.unwrap();
        net.connect_chain().await.unwrap();
        let t0 = std::time::Instant::now();
        let order = make_order(&net.keys, "a", true, 1.0, 1, 0).unwrap();
        net.nodes[0].publish(GossipItem::Order(order));
        assert!(net.all_converged(Duration::from_secs(5), 1).await);
        // The whole scenario must run in (real) milliseconds: virtual time
        // does the waiting, not the wall clock.
        assert!(t0.elapsed() < Duration::from_secs(2), "harness burned wall-clock time");
        net.shutdown_all();
    }

    #[tokio::test(start_paused = true)]
    async fn partition_scripting_blocks_and_heals() {
        let net = TestNet::new(8, &["a", "b"]).await.unwrap();
        net.connect_chain().await.unwrap();
        net.partition(&[0], &[1]);
        let order = make_order(&net.keys, "a", true, 1.0, 1, 0).unwrap();
        net.nodes[0].publish(GossipItem::Order(order));
        net.settle(Duration::from_secs(2)).await;
        assert_eq!(net.nodes[1].item_count(), 0, "partition must block gossip");
        net.heal();
        assert!(net.all_converged(Duration::from_secs(5), 1).await, "heal must restore gossip");
        net.shutdown_all();
    }
}
