//! Pluggable transports: real TCP and an in-process fault-injecting
//! simulator.
//!
//! The node runtime ([`crate::node`]) speaks to peers through the
//! [`Transport`] / [`Listener`] / [`Connection`] abstraction instead of
//! `TcpStream` directly. Two implementations exist:
//!
//! * [`Transport::Tcp`] — the production path: length-prefixed frames over
//!   real sockets (identical behavior to the pre-abstraction code);
//! * [`Transport::Sim`] — an in-process network ([`SimNet`]) whose links
//!   inject faults from a per-link [`FaultPlan`]: seeded-RNG message drop,
//!   fixed + jittered delay, bandwidth-free partition/heal, and connection
//!   kill. Everything is driven by tokio timers, so under
//!   `tokio::time::pause()` whole protocol scenarios run deterministically
//!   in milliseconds of real time (see [`crate::testkit`]).
//!
//! Messages on a sim link still pass through the [`crate::wire`] codec
//! (encode on send, decode on delivery), so frame-size limits and
//! serialization behave exactly as on TCP.

use crate::messages::Message;
use crate::wire;
use bytes::BytesMut;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;
use tokio::net::tcp::{OwnedReadHalf, OwnedWriteHalf};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::{mpsc, watch};

/// Per-link fault injection parameters. The default plan is a perfect link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_probability: f64,
    /// Fixed one-way delivery delay.
    pub delay: Duration,
    /// Uniform random extra delay in `[0, jitter]` (seeded RNG).
    pub jitter: Duration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan { drop_probability: 0.0, delay: Duration::ZERO, jitter: Duration::ZERO }
    }
}

impl FaultPlan {
    /// A lossy link: drop with `p`, no delay.
    pub fn lossy(p: f64) -> Self {
        FaultPlan { drop_probability: p, ..Default::default() }
    }

    /// A slow link: fixed `delay` plus up to `jitter` extra.
    pub fn slow(delay: Duration, jitter: Duration) -> Self {
        FaultPlan { delay, jitter, ..Default::default() }
    }
}

/// Kill switch for one directional link.
struct LinkCtl {
    src: SocketAddr,
    dst: SocketAddr,
    kill: watch::Sender<bool>,
}

struct SimInner {
    next_host: u32,
    listeners: HashMap<SocketAddr, mpsc::UnboundedSender<Connection>>,
    default_plan: FaultPlan,
    link_plans: HashMap<(SocketAddr, SocketAddr), FaultPlan>,
    blocked: HashSet<(SocketAddr, SocketAddr)>,
    links: Vec<LinkCtl>,
    delivered: u64,
    dropped: u64,
    log: Vec<String>,
    t0: Option<tokio::time::Instant>,
}

/// The in-process simulated network: address allocation, listener registry,
/// per-link fault plans, partitions, and a delivery event log.
///
/// All nodes sharing one `Arc<SimNet>` can reach each other; links are
/// keyed by the *listen* addresses of their endpoints, which is also the
/// key used for [`SimNet::set_link_fault`] and [`SimNet::partition`].
pub struct SimNet {
    seed: u64,
    inner: Mutex<SimInner>,
}

impl SimNet {
    /// A fresh simulated network. `seed` drives every per-link RNG, so the
    /// same seed + the same scenario reproduces the same drops and jitter.
    pub fn new(seed: u64) -> Arc<SimNet> {
        Arc::new(SimNet {
            seed,
            inner: Mutex::new(SimInner {
                next_host: 1,
                listeners: HashMap::new(),
                default_plan: FaultPlan::default(),
                link_plans: HashMap::new(),
                blocked: HashSet::new(),
                links: Vec::new(),
                delivered: 0,
                dropped: 0,
                log: Vec::new(),
                t0: None,
            }),
        })
    }

    /// The [`Transport`] handle for this network.
    pub fn transport(self: &Arc<Self>) -> Transport {
        Transport::Sim(self.clone())
    }

    /// Set the fault plan applied to every link without a specific plan.
    pub fn set_default_fault(&self, plan: FaultPlan) {
        self.inner.lock().default_plan = plan;
    }

    /// Set the fault plan for the directional link `src -> dst`.
    pub fn set_link_fault(&self, src: SocketAddr, dst: SocketAddr, plan: FaultPlan) {
        self.inner.lock().link_plans.insert((src, dst), plan);
    }

    /// Set the fault plan for both directions between `a` and `b`.
    pub fn set_link_fault_bidir(&self, a: SocketAddr, b: SocketAddr, plan: FaultPlan) {
        let mut inner = self.inner.lock();
        inner.link_plans.insert((a, b), plan);
        inner.link_plans.insert((b, a), plan);
    }

    /// Partition the network between `left` and `right`: every message
    /// crossing the cut is dropped at delivery time, and new dials across
    /// the cut are refused. Existing connections stay up (the silence is
    /// indistinguishable from loss, as on a real network).
    pub fn partition(&self, left: &[SocketAddr], right: &[SocketAddr]) {
        let mut inner = self.inner.lock();
        for &l in left {
            for &r in right {
                inner.blocked.insert((l, r));
                inner.blocked.insert((r, l));
            }
        }
    }

    /// Heal all partitions.
    pub fn heal(&self) {
        self.inner.lock().blocked.clear();
    }

    /// Kill every established link between `a` and `b` (both directions).
    /// Each end observes a clean connection close, as if the TCP session
    /// was reset; reconnect logic may then dial again.
    pub fn kill_links(&self, a: SocketAddr, b: SocketAddr) {
        let mut inner = self.inner.lock();
        for l in &inner.links {
            if (l.src == a && l.dst == b) || (l.src == b && l.dst == a) {
                let _ = l.kill.send(true);
            }
        }
        inner.links.retain(|l| !l.kill.is_closed());
    }

    /// `(delivered, dropped)` message counters across all links.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.delivered, inner.dropped)
    }

    /// Snapshot of the delivery event log (one line per delivered/dropped
    /// message, with virtual timestamps). Two runs of the same seeded
    /// scenario under paused time produce identical logs.
    pub fn log_snapshot(&self) -> Vec<String> {
        self.inner.lock().log.clone()
    }

    /// Allocate a fresh listen address (used when binding port 0).
    fn alloc_addr(&self) -> SocketAddr {
        let mut inner = self.inner.lock();
        let h = inner.next_host;
        inner.next_host += 1;
        format!("10.66.{}.{}:9000", (h >> 8) & 255, h & 255)
            .parse()
            .expect("synthesized sim address")
    }

    fn bind(self: &Arc<Self>, addr: SocketAddr) -> io::Result<(Listener, SocketAddr)> {
        let resolved = if addr.port() == 0 { self.alloc_addr() } else { addr };
        let (tx, rx) = mpsc::unbounded_channel();
        {
            let mut inner = self.inner.lock();
            if let Some(existing) = inner.listeners.get(&resolved) {
                if !existing.is_closed() {
                    return Err(io::Error::new(
                        io::ErrorKind::AddrInUse,
                        format!("sim address {resolved} already bound"),
                    ));
                }
            }
            inner.listeners.insert(resolved, tx);
        }
        Ok((Listener::Sim { addr: resolved, rx }, resolved))
    }

    fn connect(self: &Arc<Self>, local: SocketAddr, addr: SocketAddr) -> io::Result<Connection> {
        {
            let inner = self.inner.lock();
            if inner.blocked.contains(&(local, addr)) || inner.blocked.contains(&(addr, local)) {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("sim partition blocks {local} -> {addr}"),
                ));
            }
        }
        let accept_tx = {
            let mut inner = self.inner.lock();
            match inner.listeners.get(&addr) {
                Some(tx) if !tx.is_closed() => tx.clone(),
                _ => {
                    inner.listeners.remove(&addr);
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionRefused,
                        format!("no sim listener at {addr}"),
                    ));
                }
            }
        };
        let (fwd_tx, fwd_rx) = sim_link(self, local, addr);
        let (rev_tx, rev_rx) = sim_link(self, addr, local);
        let accepted = Connection {
            reader: ConnReader::Sim(fwd_rx),
            writer: ConnWriter::Sim(rev_tx),
        };
        accept_tx.send(accepted).map_err(|_| {
            io::Error::new(io::ErrorKind::ConnectionRefused, format!("sim listener at {addr} gone"))
        })?;
        Ok(Connection { reader: ConnReader::Sim(rev_rx), writer: ConnWriter::Sim(fwd_tx) })
    }

    fn plan_for(&self, src: SocketAddr, dst: SocketAddr) -> FaultPlan {
        let inner = self.inner.lock();
        inner.link_plans.get(&(src, dst)).copied().unwrap_or(inner.default_plan)
    }

    fn is_blocked(&self, src: SocketAddr, dst: SocketAddr) -> bool {
        self.inner.lock().blocked.contains(&(src, dst))
    }

    fn record(&self, src: SocketAddr, dst: SocketAddr, kind: &str, outcome: &str) {
        let mut inner = self.inner.lock();
        let t0 = *inner.t0.get_or_insert_with(tokio::time::Instant::now);
        let t_ms = t0.elapsed().as_millis();
        match outcome {
            "drop" => inner.dropped += 1,
            _ => inner.delivered += 1,
        }
        inner.log.push(format!("{t_ms:>8}ms {src} -> {dst} {kind} {outcome}"));
    }
}

/// Deterministic per-link RNG seed: network seed mixed with a content hash
/// of the endpoint pair (no `RandomState` involved).
fn link_seed(seed: u64, src: SocketAddr, dst: SocketAddr) -> u64 {
    let digest = crate::crypto::sha256(format!("link|{src}|{dst}").as_bytes());
    let mut x = [0u8; 8];
    x.copy_from_slice(&digest[..8]);
    seed ^ u64::from_be_bytes(x)
}

/// Sending half of one directional sim link.
pub struct SimSender {
    tx: mpsc::UnboundedSender<Vec<u8>>,
}

impl SimSender {
    fn send(&self, msg: &Message) -> io::Result<()> {
        let bytes = wire::encode(msg)?;
        self.tx
            .send(bytes)
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "sim link closed"))
    }
}

/// Build one directional link `src -> dst`: an ingress queue, a delivery
/// task applying the link's [`FaultPlan`] serially (FIFO preserved), and an
/// egress queue feeding the receiving node.
fn sim_link(
    net: &Arc<SimNet>,
    src: SocketAddr,
    dst: SocketAddr,
) -> (SimSender, mpsc::UnboundedReceiver<Message>) {
    let (in_tx, mut in_rx) = mpsc::unbounded_channel::<Vec<u8>>();
    let (out_tx, out_rx) = mpsc::unbounded_channel::<Message>();
    let (kill_tx, mut kill_rx) = watch::channel(false);
    net.inner.lock().links.push(LinkCtl { src, dst, kill: kill_tx });
    let mut rng = StdRng::seed_from_u64(link_seed(net.seed, src, dst));
    let net = net.clone();
    tokio::spawn(async move {
        loop {
            let bytes = tokio::select! {
                _ = kill_rx.changed() => break,
                b = in_rx.recv() => match b {
                    Some(b) => b,
                    None => break,
                },
            };
            let mut buf = BytesMut::from(&bytes[..]);
            let msg = match wire::decode(&mut buf) {
                Ok(Some(m)) => m,
                _ => break, // a malformed frame closes the link, as on TCP
            };
            let plan = net.plan_for(src, dst);
            // Draw in a fixed order per message so the RNG stream is
            // scenario-deterministic.
            let dropped =
                plan.drop_probability > 0.0 && rng.gen::<f64>() < plan.drop_probability;
            let jitter_us = if plan.jitter.is_zero() {
                0
            } else {
                rng.gen_range(0..=plan.jitter.as_micros() as u64)
            };
            let delay = plan.delay + Duration::from_micros(jitter_us);
            if !delay.is_zero() {
                tokio::select! {
                    _ = kill_rx.changed() => break,
                    _ = tokio::time::sleep(delay) => {}
                }
            }
            if dropped || net.is_blocked(src, dst) {
                net.record(src, dst, msg.kind(), "drop");
                continue;
            }
            net.record(src, dst, msg.kind(), "deliver");
            if out_tx.send(msg).is_err() {
                break; // receiver gone
            }
        }
        // Dropping `out_tx` closes the peer's reader (clean EOF).
    });
    (SimSender { tx: in_tx }, out_rx)
}

/// How a node reaches its peers.
#[derive(Clone)]
pub enum Transport {
    /// Real sockets (the production path).
    Tcp,
    /// The in-process fault-injecting simulator.
    Sim(Arc<SimNet>),
}

impl Transport {
    /// Bind a listener. Port 0 allocates an ephemeral port (TCP) or a fresh
    /// simulated address (sim). Returns the listener and the resolved
    /// address.
    pub async fn bind(&self, addr: SocketAddr) -> io::Result<(Listener, SocketAddr)> {
        match self {
            Transport::Tcp => {
                let listener = TcpListener::bind(addr).await?;
                let local = listener.local_addr()?;
                Ok((Listener::Tcp(listener), local))
            }
            Transport::Sim(net) => net.bind(addr),
        }
    }

    /// Dial a peer once. `local` is the dialer's listen address — it names
    /// the near end of the simulated link (ignored on TCP).
    pub async fn connect(&self, local: SocketAddr, addr: SocketAddr) -> io::Result<Connection> {
        match self {
            Transport::Tcp => {
                let stream = TcpStream::connect(addr).await?;
                let (r, w) = stream.into_split();
                Ok(Connection {
                    reader: ConnReader::Tcp(r, BytesMut::new()),
                    writer: ConnWriter::Tcp(w),
                })
            }
            Transport::Sim(net) => net.connect(local, addr),
        }
    }
}

/// A bound listener on either transport.
pub enum Listener {
    /// Real TCP listener.
    Tcp(TcpListener),
    /// Simulated listener: a queue of accepted connections.
    Sim {
        /// The bound simulated address.
        addr: SocketAddr,
        /// Incoming connections from dialers.
        rx: mpsc::UnboundedReceiver<Connection>,
    },
}

impl Listener {
    /// Accept the next inbound connection.
    pub async fn accept(&mut self) -> io::Result<Connection> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept().await?;
                let (r, w) = stream.into_split();
                Ok(Connection {
                    reader: ConnReader::Tcp(r, BytesMut::new()),
                    writer: ConnWriter::Tcp(w),
                })
            }
            Listener::Sim { rx, addr } => rx.recv().await.ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotConnected, format!("sim net dropped {addr}"))
            }),
        }
    }
}

/// An established peer connection (both directions).
pub struct Connection {
    pub(crate) reader: ConnReader,
    pub(crate) writer: ConnWriter,
}

impl Connection {
    /// Split into independently owned halves for the reader/writer tasks.
    pub fn into_split(self) -> (ConnReader, ConnWriter) {
        (self.reader, self.writer)
    }
}

/// Receiving half of a connection.
pub enum ConnReader {
    /// TCP read half plus its reassembly buffer.
    Tcp(OwnedReadHalf, BytesMut),
    /// Simulated link egress.
    Sim(mpsc::UnboundedReceiver<Message>),
}

impl ConnReader {
    /// Receive the next message. `Ok(None)` means the peer closed cleanly.
    pub async fn recv(&mut self) -> io::Result<Option<Message>> {
        match self {
            ConnReader::Tcp(r, buf) => wire::read_frame(r, buf).await,
            ConnReader::Sim(rx) => Ok(rx.recv().await),
        }
    }
}

/// Sending half of a connection.
pub enum ConnWriter {
    /// TCP write half.
    Tcp(OwnedWriteHalf),
    /// Simulated link ingress.
    Sim(SimSender),
}

impl ConnWriter {
    /// Send one message.
    pub async fn send(&mut self, msg: &Message) -> io::Result<()> {
        match self {
            ConnWriter::Tcp(w) => wire::write_frame(w, msg).await,
            ConnWriter::Sim(tx) => tx.send(msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::NodeId;

    fn ping(nonce: u64) -> Message {
        Message::Ping { nonce }
    }

    async fn sim_pair(net: &Arc<SimNet>) -> (Connection, Connection, SocketAddr, SocketAddr) {
        let (mut listener, srv) = net.transport().bind("0.0.0.0:0".parse().unwrap()).await.unwrap();
        let (_, cli) = net.bind("0.0.0.0:0".parse().unwrap()).unwrap();
        let dialed = net.transport().connect(cli, srv).await.unwrap();
        let accepted = listener.accept().await.unwrap();
        (dialed, accepted, cli, srv)
    }

    #[tokio::test(start_paused = true)]
    async fn sim_roundtrip_both_directions() {
        let net = SimNet::new(1);
        let (mut dialed, mut accepted, _, _) = sim_pair(&net).await;
        dialed.writer.send(&ping(7)).await.unwrap();
        assert_eq!(accepted.reader.recv().await.unwrap(), Some(ping(7)));
        accepted
            .writer
            .send(&Message::Hello { node_id: NodeId::new("s"), listen_addr: None })
            .await
            .unwrap();
        assert!(matches!(dialed.reader.recv().await.unwrap(), Some(Message::Hello { .. })));
    }

    #[tokio::test(start_paused = true)]
    async fn connect_to_unbound_address_refused() {
        let net = SimNet::new(1);
        let err = net
            .transport()
            .connect("10.66.0.1:9000".parse().unwrap(), "10.66.9.9:9000".parse().unwrap())
            .await
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    }

    #[tokio::test(start_paused = true)]
    async fn drop_probability_one_drops_everything() {
        let net = SimNet::new(2);
        net.set_default_fault(FaultPlan::lossy(1.0));
        let (mut dialed, mut accepted, _, _) = sim_pair(&net).await;
        for i in 0..10 {
            dialed.writer.send(&ping(i)).await.unwrap();
        }
        drop(dialed); // close so the reader terminates after the queue drains
        assert_eq!(accepted.reader.recv().await.unwrap(), None);
        let (delivered, dropped) = net.stats();
        assert_eq!((delivered, dropped), (0, 10));
    }

    #[tokio::test(start_paused = true)]
    async fn delay_holds_messages_in_virtual_time() {
        let net = SimNet::new(3);
        net.set_default_fault(FaultPlan::slow(Duration::from_millis(250), Duration::ZERO));
        let (mut dialed, mut accepted, _, _) = sim_pair(&net).await;
        let t0 = tokio::time::Instant::now();
        dialed.writer.send(&ping(1)).await.unwrap();
        assert_eq!(accepted.reader.recv().await.unwrap(), Some(ping(1)));
        assert!(t0.elapsed() >= Duration::from_millis(250), "delivered early");
    }

    #[tokio::test(start_paused = true)]
    async fn partition_blocks_and_heal_restores() {
        let net = SimNet::new(4);
        let (mut dialed, mut accepted, cli, srv) = sim_pair(&net).await;
        net.partition(&[cli], &[srv]);
        dialed.writer.send(&ping(1)).await.unwrap();
        // Delivery is silently dropped; a fresh dial across the cut fails.
        tokio::time::sleep(Duration::from_millis(50)).await;
        assert_eq!(net.stats().1, 1, "message crossing the cut must drop");
        assert!(net.transport().connect(cli, srv).await.is_err());
        net.heal();
        dialed.writer.send(&ping(2)).await.unwrap();
        assert_eq!(accepted.reader.recv().await.unwrap(), Some(ping(2)));
    }

    #[tokio::test(start_paused = true)]
    async fn kill_links_closes_both_ends() {
        let net = SimNet::new(5);
        let (mut dialed, mut accepted, cli, srv) = sim_pair(&net).await;
        net.kill_links(cli, srv);
        assert_eq!(accepted.reader.recv().await.unwrap(), None);
        assert_eq!(dialed.reader.recv().await.unwrap(), None);
        assert!(dialed.writer.send(&ping(1)).await.is_err());
    }

    #[tokio::test(start_paused = true)]
    async fn rebinding_a_dead_address_succeeds() {
        let net = SimNet::new(6);
        let (listener, addr) = net.transport().bind("0.0.0.0:0".parse().unwrap()).await.unwrap();
        assert!(net.bind(addr).is_err(), "live address must not rebind");
        drop(listener);
        assert!(net.bind(addr).is_ok(), "dead address must rebind");
    }

    #[tokio::test(start_paused = true)]
    async fn seeded_drops_are_reproducible() {
        async fn run() -> Vec<String> {
            let net = SimNet::new(42);
            net.set_default_fault(FaultPlan { drop_probability: 0.5, ..Default::default() });
            let (mut dialed, mut accepted, _, _) = sim_pair(&net).await;
            for i in 0..32 {
                dialed.writer.send(&ping(i)).await.unwrap();
            }
            drop(dialed);
            while accepted.reader.recv().await.unwrap().is_some() {}
            net.log_snapshot()
        }
        let a = run().await;
        let b = run().await;
        assert_eq!(a, b, "same seed must reproduce the same delivery log");
        assert!(a.iter().any(|l| l.ends_with("drop")), "p=0.5 over 32 sends should drop some");
        assert!(a.iter().any(|l| l.ends_with("deliver")));
    }
}
