//! # dcp — decentralized coordination protocol for MP-LEO
//!
//! The paper argues (§1, §3.2, §4) that a multi-party constellation needs
//! decentralized machinery: no single party may control admission, billing,
//! or service records. This crate prototypes that machinery as a real
//! network protocol over TCP (tokio):
//!
//! * [`crypto`] — SHA-256 and HMAC-SHA256 implemented from the FIPS 180-4 /
//!   RFC 2104 specifications (no external crypto dependency), plus a shared
//!   key directory. HMAC tags stand in for asymmetric signatures; the
//!   protocol treats them as opaque and a real deployment would swap in
//!   Ed25519 without protocol changes.
//! * [`wire`] — a length-prefixed JSON frame codec with size limits.
//! * [`transport`] — pluggable transports behind one abstraction: real TCP
//!   for production, and an in-process fault-injecting simulator
//!   ([`transport::SimNet`]) with per-link drop/delay/jitter plans,
//!   partition/heal, and connection kill for deterministic protocol tests.
//! * [`testkit`] — the deterministic multi-node harness: N nodes on a
//!   seeded `SimNet` under paused tokio time, with topology wiring,
//!   `converge_until`, and partition scripting.
//! * [`messages`] — the protocol message set: handshake, ping, epidemic
//!   gossip (announce / request / payload), and the gossiped items
//!   (coverage receipts, attestations, market orders, withdrawals).
//! * [`poc`] — proof-of-coverage: ground stations sign receipts for
//!   satellites they observe overhead; any party *independently verifies* a
//!   claim by re-propagating the satellite's published orbit with the
//!   `orbital` crate — coverage fraud is detectable from physics alone.
//! * [`ledger`] — the replicated receipt ledger: quorum attestation,
//!   reward accounting, epoch settlement (idempotent zero-sum batches
//!   against the party account book), party balances.
//! * [`gossip`] — the seen-cache and anti-entropy state machine (pure logic,
//!   unit-testable without sockets).
//! * [`node`] — the async node runtime: listener, per-peer reader/writer
//!   tasks, periodic anti-entropy, graceful shutdown.
//! * [`market`] — a capacity order book with price-time priority matching.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod control;
pub mod crypto;
pub mod discovery;
pub mod gossip;
pub mod ledger;
pub mod market;
pub mod messages;
pub mod node;
pub mod poc;
pub mod testkit;
pub mod transport;
pub mod wire;

pub use crypto::{hmac_sha256, sha256, KeyDirectory};
pub use ledger::{Accounts, Ledger, SettlementOutcome};
pub use messages::{GossipItem, Message, NodeId, SettlementNote};
pub use node::{BackoffConfig, Node, NodeConfig, NodeHandle};
pub use transport::{FaultPlan, SimNet, Transport};
