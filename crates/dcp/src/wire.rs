//! The frame codec: 4-byte big-endian length prefix + JSON body.
//!
//! JSON keeps the research prototype wire-debuggable (`tcpdump -A` shows
//! readable frames); the codec is the single swap-point for a binary format.
//! Frames are size-capped to bound memory under malicious peers.

use crate::messages::Message;
use bytes::{Buf, BufMut, BytesMut};
use std::io;
use tokio::io::{AsyncRead, AsyncReadExt, AsyncWrite, AsyncWriteExt};

/// Maximum frame body size (1 MiB). A gossip payload of ~1000 receipts fits
/// comfortably; anything larger is a protocol violation.
pub const MAX_FRAME_BYTES: usize = 1024 * 1024;

/// Encode a message into a length-prefixed frame.
pub fn encode(msg: &Message) -> io::Result<Vec<u8>> {
    let body = serde_json::to_vec(msg).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if body.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body {} exceeds cap {MAX_FRAME_BYTES}", body.len()),
        ));
    }
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Try to decode one frame from the front of `buf`. Returns `Ok(None)` when
/// more bytes are needed; on success the consumed bytes are removed.
pub fn decode(buf: &mut BytesMut) -> io::Result<Option<Message>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced frame of {len} bytes"),
        ));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    buf.advance(4);
    let body = buf.split_to(len);
    let msg = serde_json::from_slice(&body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok(Some(msg))
}

/// Write one frame to an async sink.
pub async fn write_frame<W: AsyncWrite + Unpin>(w: &mut W, msg: &Message) -> io::Result<()> {
    let frame = encode(msg)?;
    w.write_all(&frame).await?;
    w.flush().await
}

/// Read one frame from an async source. Returns `Ok(None)` on clean EOF at
/// a frame boundary.
pub async fn read_frame<R: AsyncRead + Unpin>(r: &mut R, buf: &mut BytesMut) -> io::Result<Option<Message>> {
    loop {
        if let Some(msg) = decode(buf)? {
            return Ok(Some(msg));
        }
        let mut chunk = [0u8; 4096];
        let n = r.read(&mut chunk).await?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "EOF mid-frame"));
        }
        buf.put_slice(&chunk[..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::NodeId;

    fn hello() -> Message {
        Message::Hello { node_id: NodeId::new("n1"), listen_addr: None }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let frame = encode(&hello()).unwrap();
        let mut buf = BytesMut::from(&frame[..]);
        let back = decode(&mut buf).unwrap().unwrap();
        assert_eq!(back, hello());
        assert!(buf.is_empty());
    }

    #[test]
    fn decode_partial_returns_none() {
        let frame = encode(&hello()).unwrap();
        for cut in [0usize, 1, 3, 4, frame.len() - 1] {
            let mut buf = BytesMut::from(&frame[..cut]);
            assert!(decode(&mut buf).unwrap().is_none(), "cut {cut}");
        }
    }

    #[test]
    fn decode_two_frames_in_sequence() {
        let mut bytes = encode(&hello()).unwrap();
        bytes.extend(encode(&Message::Ping { nonce: 5 }).unwrap());
        let mut buf = BytesMut::from(&bytes[..]);
        assert_eq!(decode(&mut buf).unwrap().unwrap(), hello());
        assert_eq!(decode(&mut buf).unwrap().unwrap(), Message::Ping { nonce: 5 });
        assert!(decode(&mut buf).unwrap().is_none());
    }

    #[test]
    fn oversized_announcement_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(&((MAX_FRAME_BYTES as u32) + 1).to_be_bytes());
        buf.put_slice(&[0u8; 8]);
        assert!(decode(&mut buf).is_err());
    }

    #[test]
    fn garbage_body_rejected() {
        let body = b"not json at all";
        let mut buf = BytesMut::new();
        buf.put_slice(&(body.len() as u32).to_be_bytes());
        buf.put_slice(body);
        assert!(decode(&mut buf).is_err());
    }

    #[tokio::test]
    async fn async_roundtrip_over_duplex() {
        let (mut a, mut b) = tokio::io::duplex(1024);
        let msg = Message::GossipAnnounce { ids: vec!["deadbeef".into(); 10] };
        write_frame(&mut a, &msg).await.unwrap();
        write_frame(&mut a, &Message::Ping { nonce: 1 }).await.unwrap();
        drop(a);
        let mut buf = BytesMut::new();
        assert_eq!(read_frame(&mut b, &mut buf).await.unwrap().unwrap(), msg);
        assert_eq!(
            read_frame(&mut b, &mut buf).await.unwrap().unwrap(),
            Message::Ping { nonce: 1 }
        );
        assert!(read_frame(&mut b, &mut buf).await.unwrap().is_none());
    }

    #[tokio::test]
    async fn eof_mid_frame_is_error() {
        let (mut a, mut b) = tokio::io::duplex(1024);
        let frame = encode(&hello()).unwrap();
        use tokio::io::AsyncWriteExt;
        a.write_all(&frame[..frame.len() - 2]).await.unwrap();
        drop(a);
        let mut buf = BytesMut::new();
        assert!(read_frame(&mut b, &mut buf).await.is_err());
    }
}

/// Fuzz-style adversarial input tests for [`read_frame`]: the reader faces
/// an untrusted peer, so every malformed byte stream must surface as a clean
/// `Err` (or `Ok(None)` at a frame boundary) — never a panic, hang, or
/// unbounded allocation.
#[cfg(test)]
mod read_frame_fuzz {
    use super::*;
    use crate::messages::NodeId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tokio::io::AsyncWriteExt;

    fn hello() -> Message {
        Message::Hello { node_id: NodeId::new("fuzz"), listen_addr: None }
    }

    /// Feed `bytes` then close the write side; return the read result.
    async fn read_from(bytes: &[u8]) -> io::Result<Option<Message>> {
        let (mut a, mut b) = tokio::io::duplex(64 * 1024);
        a.write_all(bytes).await.unwrap();
        drop(a);
        let mut buf = BytesMut::new();
        read_frame(&mut b, &mut buf).await
    }

    #[tokio::test]
    async fn truncated_length_prefix_is_error() {
        // EOF after 1..=3 header bytes: mid-frame, so an error, not None.
        for cut in 1..4 {
            let frame = encode(&hello()).unwrap();
            let res = read_from(&frame[..cut]).await;
            assert!(res.is_err(), "cut at {cut} header bytes must error");
            assert_eq!(res.unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
        }
    }

    #[tokio::test]
    async fn truncated_body_every_cut_is_error() {
        let frame = encode(&hello()).unwrap();
        for cut in 4..frame.len() {
            let res = read_from(&frame[..cut]).await;
            assert!(res.is_err(), "cut at byte {cut} must error");
        }
    }

    #[tokio::test]
    async fn oversized_announced_length_rejected_before_read() {
        // Header promises > MAX_FRAME_BYTES; the reader must refuse without
        // waiting for (or allocating) the announced body.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&((MAX_FRAME_BYTES as u32) + 1).to_be_bytes());
        bytes.extend_from_slice(&[0xAB; 16]);
        let res = read_from(&bytes).await;
        assert_eq!(res.unwrap_err().kind(), io::ErrorKind::InvalidData);

        // u32::MAX, the worst announcement a 4-byte header can make.
        let mut bytes = u32::MAX.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 8]);
        assert!(read_from(&bytes).await.is_err());
    }

    #[tokio::test]
    async fn garbage_body_with_valid_length_rejected() {
        let body = [0xFFu8; 32];
        let mut bytes = (body.len() as u32).to_be_bytes().to_vec();
        bytes.extend_from_slice(&body);
        let res = read_from(&bytes).await;
        assert_eq!(res.unwrap_err().kind(), io::ErrorKind::InvalidData);
    }

    #[tokio::test]
    async fn split_reads_reassemble_across_chunks() {
        // Deliver one frame byte-by-byte, then in odd-sized chunks: the
        // reader must buffer partial frames and decode exactly one message.
        let frame = encode(&hello()).unwrap();
        for chunk_size in [1usize, 3, 7, frame.len() / 2] {
            let (mut a, mut b) = tokio::io::duplex(64 * 1024);
            let chunks: Vec<Vec<u8>> = frame.chunks(chunk_size).map(|c| c.to_vec()).collect();
            let writer = tokio::spawn(async move {
                for c in chunks {
                    a.write_all(&c).await.unwrap();
                    a.flush().await.unwrap();
                    tokio::task::yield_now().await;
                }
                drop(a);
            });
            let mut buf = BytesMut::new();
            let msg = read_frame(&mut b, &mut buf).await.unwrap().unwrap();
            assert_eq!(msg, hello(), "chunk size {chunk_size}");
            assert!(read_frame(&mut b, &mut buf).await.unwrap().is_none());
            writer.await.unwrap();
        }
    }

    #[tokio::test]
    async fn seeded_random_streams_never_panic() {
        // 64 seeded random byte streams: read_frame must always terminate
        // with Ok or Err, never panic. Seeded so a failure reproduces.
        let mut rng = StdRng::seed_from_u64(0x77_1235);
        for _ in 0..64 {
            let len = rng.gen_range(0..512);
            let mut bytes = vec![0u8; len];
            rng.fill(&mut bytes[..]);
            let _ = read_from(&bytes).await;
        }
    }

    #[tokio::test]
    async fn second_frame_split_mid_header_reassembles() {
        // Two well-formed frames back-to-back split mid-header of the
        // second: the residue must carry over between read_frame calls.
        let f1 = encode(&hello()).unwrap();
        let f2 = encode(&Message::Ping { nonce: 99 }).unwrap();
        let (mut a, mut b) = tokio::io::duplex(64 * 1024);
        let (head, tail) = {
            let mut all = f1.clone();
            all.extend_from_slice(&f2);
            let cut = f1.len() + 2; // 2 bytes into the second header
            (all[..cut].to_vec(), all[cut..].to_vec())
        };
        let writer = tokio::spawn(async move {
            a.write_all(&head).await.unwrap();
            a.flush().await.unwrap();
            tokio::task::yield_now().await;
            a.write_all(&tail).await.unwrap();
            drop(a);
        });
        let mut buf = BytesMut::new();
        assert_eq!(read_frame(&mut b, &mut buf).await.unwrap().unwrap(), hello());
        assert_eq!(
            read_frame(&mut b, &mut buf).await.unwrap().unwrap(),
            Message::Ping { nonce: 99 }
        );
        assert!(read_frame(&mut b, &mut buf).await.unwrap().is_none());
        writer.await.unwrap();
    }
}

/// Frame-level adversarial tests for the settlement-side payloads — the
/// messages the scenario fuzzer's churn campaigns emit ([`WithdrawalNotice`]
/// per party withdrawal, [`SettlementNote`] batches per market epoch). The
/// gossip layer delivers at-least-once, so the codec must round-trip these
/// exactly, reject every truncation, and decode duplicated frames into
/// bit-identical copies (replay protection then happens above the codec,
/// keyed on [`SettlementNote::settlement_id`]).
#[cfg(test)]
mod settlement_frame_fuzz {
    use super::*;
    use crate::crypto::KeyDirectory;
    use crate::messages::{GossipItem, SettlementNote, WithdrawalNotice};
    use std::collections::BTreeMap;

    fn keys() -> KeyDirectory {
        let mut keys = KeyDirectory::new();
        for party in ["party-0", "party-1", "party-2"] {
            keys.register_derived(party, b"wire-frame-fuzz");
        }
        keys
    }

    fn withdrawal() -> WithdrawalNotice {
        let keys = keys();
        let (party, sat_ids, effective_s) = ("party-1", vec![3u32, 17, 41], 5400.0);
        let bytes = WithdrawalNotice::signing_bytes(party, &sat_ids, effective_s);
        WithdrawalNotice {
            party: party.to_string(),
            sat_ids,
            effective_s,
            signature: keys.sign(party, &bytes).unwrap(),
        }
    }

    fn settlement_batch() -> Vec<SettlementNote> {
        let keys = keys();
        (0..3u64)
            .map(|epoch| {
                let mut transfers = BTreeMap::new();
                transfers.insert("party-0".to_string(), 12.5 + epoch as f64);
                transfers.insert("party-1".to_string(), -4.25);
                transfers.insert("party-2".to_string(), -(12.5 + epoch as f64) + 4.25);
                SettlementNote::create(&keys, epoch, "party-0", transfers).unwrap()
            })
            .collect()
    }

    #[test]
    fn withdrawal_notice_frame_round_trips() {
        let notice = withdrawal();
        let msg = Message::GossipPayload { items: vec![GossipItem::Withdrawal(notice.clone())] };
        let frame = encode(&msg).unwrap();
        let mut buf = BytesMut::from(&frame[..]);
        let back = decode(&mut buf).unwrap().unwrap();
        assert_eq!(back, msg);
        // The signature must survive the trip verbatim — re-verify it.
        let Message::GossipPayload { items } = back else { panic!("wrong variant") };
        let GossipItem::Withdrawal(w) = &items[0] else { panic!("wrong item") };
        let bytes = WithdrawalNotice::signing_bytes(&w.party, &w.sat_ids, w.effective_s);
        assert!(keys().verify(&w.party, &bytes, &w.signature));
    }

    #[test]
    fn withdrawal_frame_rejects_every_truncation() {
        let msg = Message::GossipPayload { items: vec![GossipItem::Withdrawal(withdrawal())] };
        let frame = encode(&msg).unwrap();
        for cut in 0..frame.len() {
            let mut buf = BytesMut::from(&frame[..cut]);
            // A truncated frame is never a message: either more-bytes-needed
            // (None, residue intact for a later retry) — truncating the JSON
            // body can't produce a shorter valid frame because the length
            // prefix still promises the full body.
            assert!(decode(&mut buf).unwrap().is_none(), "cut {cut} produced a message");
            assert_eq!(buf.len(), cut, "cut {cut} consumed residue bytes");
        }
    }

    #[test]
    fn settlement_batch_frame_round_trips() {
        let batch = settlement_batch();
        let msg = Message::GossipPayload {
            items: batch.iter().cloned().map(GossipItem::Settlement).collect(),
        };
        let frame = encode(&msg).unwrap();
        let mut buf = BytesMut::from(&frame[..]);
        let back = decode(&mut buf).unwrap().unwrap();
        assert_eq!(back, msg);
        let Message::GossipPayload { items } = back else { panic!("wrong variant") };
        for (item, original) in items.iter().zip(&batch) {
            let GossipItem::Settlement(note) = item else { panic!("wrong item") };
            assert_eq!(note, original);
            assert_eq!(note.settlement_id(), original.settlement_id());
            // Zero-sum transfers survive the JSON trip with f64 exactness.
            assert!(note.transfers.values().sum::<f64>().abs() < 1e-9);
        }
    }

    #[test]
    fn duplicated_settlement_frames_decode_bit_identically() {
        // At-least-once gossip can deliver the same settlement frame twice
        // back-to-back; both copies must decode, equal to each other, so the
        // replay guard above the codec sees identical settlement_ids.
        let msg = Message::GossipPayload {
            items: settlement_batch().into_iter().map(GossipItem::Settlement).collect(),
        };
        let frame = encode(&msg).unwrap();
        let mut doubled = frame.clone();
        doubled.extend_from_slice(&frame);
        let mut buf = BytesMut::from(&doubled[..]);
        let first = decode(&mut buf).unwrap().unwrap();
        let second = decode(&mut buf).unwrap().unwrap();
        assert_eq!(first, second);
        assert_eq!(first, msg);
        assert!(buf.is_empty());
        assert!(decode(&mut buf).unwrap().is_none());
    }

    #[test]
    fn duplicated_frame_with_truncated_tail_keeps_the_first_copy() {
        // A full frame followed by a truncated duplicate: the first copy
        // decodes, the tail waits as residue (None), and nothing errors —
        // the stream is merely incomplete, not corrupt.
        let msg = Message::GossipPayload { items: vec![GossipItem::Withdrawal(withdrawal())] };
        let frame = encode(&msg).unwrap();
        for cut in [1usize, 3, 4, frame.len() / 2, frame.len() - 1] {
            let mut bytes = frame.clone();
            bytes.extend_from_slice(&frame[..cut]);
            let mut buf = BytesMut::from(&bytes[..]);
            assert_eq!(decode(&mut buf).unwrap().unwrap(), msg, "cut {cut}");
            assert!(decode(&mut buf).unwrap().is_none(), "cut {cut}");
            assert_eq!(buf.len(), cut, "cut {cut} lost residue");
        }
    }

    #[tokio::test]
    async fn duplicated_withdrawal_frames_arrive_twice_over_async_reads() {
        use tokio::io::AsyncWriteExt;
        let msg = Message::GossipPayload { items: vec![GossipItem::Withdrawal(withdrawal())] };
        let frame = encode(&msg).unwrap();
        let (mut a, mut b) = tokio::io::duplex(64 * 1024);
        a.write_all(&frame).await.unwrap();
        a.write_all(&frame).await.unwrap();
        drop(a);
        let mut buf = BytesMut::new();
        assert_eq!(read_frame(&mut b, &mut buf).await.unwrap().unwrap(), msg);
        assert_eq!(read_frame(&mut b, &mut buf).await.unwrap().unwrap(), msg);
        assert!(read_frame(&mut b, &mut buf).await.unwrap().is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Arbitrary bytes must never panic the decoder — peers are
        /// untrusted.
        #[test]
        fn decode_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let mut buf = BytesMut::from(&data[..]);
            // Drain until error or need-more-bytes; the loop must terminate.
            for _ in 0..64 {
                match decode(&mut buf) {
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => break,
                }
            }
        }

        /// Any message that encodes must decode to itself, even when the
        /// frame is delivered in arbitrary chunk sizes.
        #[test]
        fn chunked_delivery_reassembles(nonce in any::<u64>(), cut in 1usize..64) {
            let msg = Message::Ping { nonce };
            let frame = encode(&msg).unwrap();
            let mut buf = BytesMut::new();
            let mut decoded = None;
            for chunk in frame.chunks(cut) {
                buf.extend_from_slice(chunk);
                if let Some(m) = decode(&mut buf).unwrap() {
                    decoded = Some(m);
                }
            }
            prop_assert_eq!(decoded, Some(msg));
        }
    }
}
