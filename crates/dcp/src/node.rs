//! The async node runtime: transport listener, per-peer reader/writer
//! tasks, periodic anti-entropy, backoff dialing, and graceful shutdown.
//!
//! Concurrency layout (one node):
//!
//! * an **accept loop** task owning the [`Listener`];
//! * a **dialer task** draining a queue of addresses to (re)connect, each
//!   dial retrying with capped exponential backoff ([`BackoffConfig`]);
//! * per connection, a **reader task** (dispatches inbound frames) and a
//!   **writer task** (drains an unbounded mpsc of outbound messages) over
//!   the split connection;
//! * an **anti-entropy task** re-announcing the full item set on a timer;
//! * shared state ([`GossipState`], [`Ledger`], [`OrderBook`], withdrawal
//!   log) behind a `parking_lot::Mutex` — never held across an await.
//!
//! The node is transport-agnostic: production runs on [`Transport::Tcp`],
//! tests on [`Transport::Sim`] under paused tokio time (see
//! [`crate::testkit`]). When a dialed connection drops, the reader task
//! re-queues the address on the dialer, so nodes ride out peer restarts
//! and link kills without operator action.
//!
//! Shutdown is a `tokio::sync::watch` broadcast: every task selects on it.

use crate::control::ReplicatedControl;
use crate::crypto::KeyDirectory;
use crate::discovery::AddressBook;
use crate::gossip::GossipState;
use crate::ledger::{Ledger, LedgerConfig, SettlementOutcome};
use crate::market::{verify_order, OrderBook, Trade};
use crate::messages::{GossipItem, Message, NodeId, SettlementNote, WithdrawalNotice};
use crate::poc::{verify_attestation, verify_receipt, Attestation, Scenario};
use crate::transport::{Connection, Transport};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;
use tokio::sync::{mpsc, watch};

/// Dial retry policy: capped exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffConfig {
    /// Delay before the second attempt (doubles each failure).
    pub initial: Duration,
    /// Ceiling on the per-attempt delay.
    pub max: Duration,
    /// Give up after this many failed attempts (0 = retry until shutdown).
    pub max_attempts: u32,
    /// Re-queue a dialed peer for redial when its connection drops.
    pub reconnect: bool,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            initial: Duration::from_millis(50),
            max: Duration::from_secs(2),
            max_attempts: 8,
            reconnect: true,
        }
    }
}

/// Node configuration.
#[derive(Clone)]
pub struct NodeConfig {
    /// This node's identity (also its signing party id).
    pub node_id: NodeId,
    /// Address to listen on (use port 0 for an ephemeral port / fresh sim
    /// address).
    pub listen: SocketAddr,
    /// How this node reaches peers (real TCP or the fault simulator).
    pub transport: Transport,
    /// The shared key directory.
    pub keys: KeyDirectory,
    /// Ledger policy.
    pub ledger: LedgerConfig,
    /// Shared scenario knowledge for receipt verification. When present and
    /// `auto_attest` is set, the node attests every incoming receipt.
    pub scenario: Option<Arc<Scenario>>,
    /// Attest receipts automatically on arrival.
    pub auto_attest: bool,
    /// Multi-party control group this node participates in (None = the
    /// node ignores control-plane events).
    pub control: Option<mpleo::control::ControlGroup>,
    /// Anti-entropy announce interval.
    pub anti_entropy: Duration,
    /// Advertise the listen address and run peer exchange.
    pub advertise: bool,
    /// When advertising, keep dialing discovered peers until this many
    /// sessions are up.
    pub target_degree: usize,
    /// Ticks of silence (anti-entropy intervals) before a peer is evicted.
    pub silence_limit: u32,
    /// Dial retry policy.
    pub backoff: BackoffConfig,
}

impl NodeConfig {
    /// A localhost TCP config with sane test defaults.
    pub fn local(node_id: impl Into<NodeId>, keys: KeyDirectory) -> Self {
        NodeConfig {
            node_id: node_id.into(),
            listen: "127.0.0.1:0".parse().expect("static addr"),
            transport: Transport::Tcp,
            keys,
            ledger: LedgerConfig::default(),
            scenario: None,
            auto_attest: false,
            control: None,
            anti_entropy: Duration::from_millis(200),
            advertise: false,
            target_degree: 3,
            silence_limit: 50,
            backoff: BackoffConfig::default(),
        }
    }

    /// A config on the given simulated network (fresh sim address).
    pub fn sim(node_id: impl Into<NodeId>, keys: KeyDirectory, net: &Arc<crate::transport::SimNet>) -> Self {
        let mut cfg = Self::local(node_id, keys);
        cfg.transport = net.transport();
        cfg
    }
}

struct PeerSlot {
    id: Option<NodeId>,
    tx: mpsc::UnboundedSender<Message>,
    /// Ticks since we last heard a frame from this peer.
    silent_ticks: u32,
}

struct State {
    gossip: GossipState,
    ledger: Ledger,
    book: OrderBook,
    withdrawals: Vec<WithdrawalNotice>,
    control: Option<ReplicatedControl>,
    book_addr: AddressBook,
    peers: Vec<PeerSlot>,
    rejected: u64,
}

/// The node entry point.
pub struct Node;

impl Node {
    /// Bind the listener and spawn the node's tasks. Returns a handle for
    /// interaction and shutdown.
    pub async fn start(mut config: NodeConfig) -> io::Result<NodeHandle> {
        let (mut listener, local_addr) = config.transport.bind(config.listen).await?;
        config.listen = local_addr; // publish the resolved address
        let (shutdown_tx, shutdown_rx) = watch::channel(false);
        let (dial_tx, mut dial_rx) = mpsc::unbounded_channel::<SocketAddr>();
        let state = Arc::new(Mutex::new(State {
            gossip: GossipState::new(),
            ledger: Ledger::new(config.ledger),
            book: OrderBook::new(),
            withdrawals: Vec::new(),
            control: config.control.clone().map(ReplicatedControl::new),
            book_addr: AddressBook::new(Some(local_addr)),
            peers: Vec::new(),
            rejected: 0,
        }));
        let config = Arc::new(config);

        // Accept loop.
        {
            let state = state.clone();
            let config = config.clone();
            let dial_tx = dial_tx.clone();
            let mut shutdown = shutdown_rx.clone();
            tokio::spawn(async move {
                loop {
                    tokio::select! {
                        _ = shutdown.changed() => break,
                        accepted = listener.accept() => {
                            match accepted {
                                Ok(conn) => {
                                    spawn_peer(conn, state.clone(), config.clone(), shutdown.clone(), None, dial_tx.clone());
                                }
                                Err(_) => break,
                            }
                        }
                    }
                }
            });
        }

        // Dialer: drains the (re)connect queue; each dial retries with
        // backoff in its own task so a dead peer never blocks the rest.
        {
            let state = state.clone();
            let config = config.clone();
            let dial_tx = dial_tx.clone();
            let mut shutdown = shutdown_rx.clone();
            tokio::spawn(async move {
                loop {
                    let addr = tokio::select! {
                        _ = shutdown.changed() => break,
                        a = dial_rx.recv() => match a {
                            Some(a) => a,
                            None => break,
                        },
                    };
                    let state = state.clone();
                    let config = config.clone();
                    let shutdown = shutdown.clone();
                    let dial_tx = dial_tx.clone();
                    tokio::spawn(async move {
                        match dial_with_backoff(&config, addr, shutdown.clone()).await {
                            Ok(conn) => {
                                state.lock().book_addr.mark_connected(addr);
                                spawn_peer(conn, state, config, shutdown, Some(addr), dial_tx);
                            }
                            Err(_) => state.lock().book_addr.mark_disconnected(addr),
                        }
                    });
                }
            });
        }

        // Anti-entropy + peer-exchange loop.
        {
            let state = state.clone();
            let mut shutdown = shutdown_rx.clone();
            let interval = config.anti_entropy;
            let config2 = config.clone();
            let dial_tx = dial_tx.clone();
            tokio::spawn(async move {
                let mut ticker = tokio::time::interval(interval);
                ticker.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
                loop {
                    tokio::select! {
                        _ = shutdown.changed() => break,
                        _ = ticker.tick() => {
                            let dials = {
                                let mut st = state.lock();
                                // Liveness: ping everyone, age the silence
                                // counters, and drop peers that have said
                                // nothing for many ticks (a pong resets).
                                for p in st.peers.iter_mut() {
                                    let _ = p.tx.send(Message::Ping { nonce: 0 });
                                    p.silent_ticks = p.silent_ticks.saturating_add(1);
                                }
                                let limit = config2.silence_limit;
                                st.peers.retain(|p| p.silent_ticks <= limit && !p.tx.is_closed());
                                if let Some(msg) = st.gossip.anti_entropy_announce() {
                                    for p in &st.peers {
                                        let _ = p.tx.send(msg.clone());
                                    }
                                }
                                if config2.advertise {
                                    let addrs: Vec<String> = st
                                        .book_addr
                                        .shareable()
                                        .iter()
                                        .map(|a| a.to_string())
                                        .collect();
                                    if !addrs.is_empty() {
                                        let pex = Message::PeerExchange { addrs };
                                        for p in &st.peers {
                                            let _ = p.tx.send(pex.clone());
                                        }
                                    }
                                    let cands = st.book_addr.dial_candidates(config2.target_degree);
                                    for c in &cands {
                                        st.book_addr.mark_connected(*c); // optimistic
                                    }
                                    cands
                                } else {
                                    Vec::new()
                                }
                            };
                            for addr in dials {
                                let _ = dial_tx.send(addr);
                            }
                        }
                    }
                }
            });
        }

        Ok(NodeHandle { config, local_addr, state, shutdown: shutdown_tx, shutdown_rx, dial_tx })
    }
}

/// Dial `addr` with capped exponential backoff. Returns the connection, the
/// final error after `max_attempts` failures, or `Interrupted` on shutdown.
async fn dial_with_backoff(
    config: &NodeConfig,
    addr: SocketAddr,
    mut shutdown: watch::Receiver<bool>,
) -> io::Result<Connection> {
    let policy = config.backoff;
    let mut delay = policy.initial;
    let mut attempts = 0u32;
    loop {
        if *shutdown.borrow() {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "node shutting down"));
        }
        match config.transport.connect(config.listen, addr).await {
            Ok(conn) => return Ok(conn),
            Err(e) => {
                attempts += 1;
                if policy.max_attempts != 0 && attempts >= policy.max_attempts {
                    return Err(e);
                }
                tokio::select! {
                    _ = shutdown.changed() => {
                        return Err(io::Error::new(io::ErrorKind::Interrupted, "node shutting down"));
                    }
                    _ = tokio::time::sleep(delay) => {}
                }
                delay = (delay * 2).min(policy.max);
            }
        }
    }
}

/// Handle to a running node.
pub struct NodeHandle {
    config: Arc<NodeConfig>,
    /// Bound listen address (with the resolved ephemeral port).
    pub local_addr: SocketAddr,
    state: Arc<Mutex<State>>,
    shutdown: watch::Sender<bool>,
    shutdown_rx: watch::Receiver<bool>,
    dial_tx: mpsc::UnboundedSender<SocketAddr>,
}

impl NodeHandle {
    /// This node's id.
    pub fn node_id(&self) -> &NodeId {
        &self.config.node_id
    }

    /// Dial a peer (retrying per the node's [`BackoffConfig`]) and start
    /// gossiping with it. Returns once a session is up, or with the last
    /// dial error after the attempt budget is spent.
    pub async fn connect(&self, addr: SocketAddr) -> io::Result<()> {
        let conn = dial_with_backoff(&self.config, addr, self.shutdown_rx.clone()).await?;
        self.state.lock().book_addr.mark_connected(addr);
        spawn_peer(
            conn,
            self.state.clone(),
            self.config.clone(),
            self.shutdown_rx.clone(),
            Some(addr),
            self.dial_tx.clone(),
        );
        Ok(())
    }

    /// Publish an application item: store, apply, and announce to peers.
    pub fn publish(&self, item: GossipItem) {
        let mut st = self.state.lock();
        publish_locked(&mut st, &self.config, item);
    }

    /// Number of gossip items held.
    pub fn item_count(&self) -> usize {
        self.state.lock().gossip.len()
    }

    /// Number of live peer connections.
    pub fn peer_count(&self) -> usize {
        self.state.lock().peers.iter().filter(|p| !p.tx.is_closed()).count()
    }

    /// Digest of the confirmed-receipt set (equal across converged nodes).
    pub fn ledger_digest(&self) -> String {
        self.state.lock().ledger.confirmed_digest()
    }

    /// Number of confirmed receipts.
    pub fn confirmed_count(&self) -> usize {
        self.state.lock().ledger.confirmed_ids().len()
    }

    /// Reward balances minted by confirmed receipts.
    pub fn reward_balances(&self) -> BTreeMap<String, f64> {
        self.state.lock().ledger.reward_balances()
    }

    /// Settled account balances (fed by gossiped settlement notes).
    pub fn account_balances(&self) -> BTreeMap<String, f64> {
        self.state.lock().ledger.accounts().balances().clone()
    }

    /// Number of settlement batches applied to the account book.
    pub fn settlements_applied(&self) -> usize {
        self.state.lock().ledger.accounts().settlements_applied()
    }

    /// Trades executed by the local replica of the market.
    pub fn trades(&self) -> Vec<Trade> {
        self.state.lock().book.trades().to_vec()
    }

    /// Net market settlement per party.
    pub fn market_settlement(&self) -> BTreeMap<String, f64> {
        self.state.lock().book.settlement()
    }

    /// Withdrawal notices seen (signature-verified).
    pub fn withdrawals(&self) -> Vec<WithdrawalNotice> {
        self.state.lock().withdrawals.clone()
    }

    /// Items rejected by verification (bad signature / failed physics).
    pub fn rejected_count(&self) -> u64 {
        self.state.lock().rejected
    }

    /// Number of peer addresses learned via handshake / peer exchange.
    pub fn known_peer_addrs(&self) -> usize {
        self.state.lock().book_addr.known_count()
    }

    /// State of a control proposal, if this node runs a control group and
    /// has seen the proposal.
    pub fn control_state(&self, proposal_id: u64) -> Option<mpleo::control::ProposalState> {
        self.state.lock().control.as_ref().and_then(|c| c.state(proposal_id))
    }

    /// Digest of the executed control-command log (compare across nodes).
    pub fn control_log_digest(&self) -> Option<u64> {
        self.state.lock().control.as_ref().map(|c| c.group.log_digest())
    }

    /// Signal all tasks to stop. Idempotent.
    pub fn shutdown(&self) {
        let _ = self.shutdown.send(true);
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        let _ = self.shutdown.send(true);
    }
}

fn spawn_peer(
    conn: Connection,
    state: Arc<Mutex<State>>,
    config: Arc<NodeConfig>,
    mut shutdown: watch::Receiver<bool>,
    dialed_addr: Option<SocketAddr>,
    dial_tx: mpsc::UnboundedSender<SocketAddr>,
) {
    let (mut reader, mut writer) = conn.into_split();
    let (tx, mut rx) = mpsc::unbounded_channel::<Message>();

    // Register the peer slot and queue the handshake + initial announce.
    {
        let mut st = state.lock();
        let _ = tx.send(Message::Hello {
            node_id: config.node_id.clone(),
            listen_addr: config.advertise.then(|| config.listen.to_string()),
        });
        if let Some(announce) = st.gossip.anti_entropy_announce() {
            let _ = tx.send(announce);
        }
        st.peers.push(PeerSlot { id: None, tx: tx.clone(), silent_ticks: 0 });
    }

    // Writer task.
    {
        let mut shutdown = shutdown.clone();
        tokio::spawn(async move {
            loop {
                tokio::select! {
                    _ = shutdown.changed() => break,
                    msg = rx.recv() => {
                        let Some(msg) = msg else { break };
                        if writer.send(&msg).await.is_err() {
                            break;
                        }
                    }
                }
            }
        });
    }

    // Reader task.
    tokio::spawn(async move {
        loop {
            tokio::select! {
                _ = shutdown.changed() => break,
                frame = reader.recv() => {
                    match frame {
                        Ok(Some(msg)) => {
                            let mut st = state.lock();
                            dispatch(&mut st, &config, &tx, msg);
                        }
                        Ok(None) | Err(_) => break,
                    }
                }
            }
        }
        // Connection gone: drop our sender so the slot reads as closed.
        {
            let mut st = state.lock();
            st.peers.retain(|p| !p.tx.same_channel(&tx));
            if let Some(addr) = dialed_addr {
                st.book_addr.mark_disconnected(addr);
            }
        }
        // We dialed this peer: hand the address back to the dialer so the
        // session is re-established with backoff once the peer returns.
        if let Some(addr) = dialed_addr {
            if config.backoff.reconnect && !*shutdown.borrow() {
                let _ = dial_tx.send(addr);
            }
        }
    });
}

/// Handle one inbound message. Runs under the state lock; must not await.
fn dispatch(st: &mut State, config: &NodeConfig, from: &mpsc::UnboundedSender<Message>, msg: Message) {
    if let Some(slot) = st.peers.iter_mut().find(|p| p.tx.same_channel(from)) {
        slot.silent_ticks = 0;
    }
    match msg {
        Message::Hello { node_id, listen_addr } => {
            if let Some(slot) = st.peers.iter_mut().find(|p| p.tx.same_channel(from)) {
                slot.id = Some(node_id);
            }
            if let Some(addr) = listen_addr.and_then(|a| a.parse().ok()) {
                st.book_addr.learn([addr]);
            }
        }
        Message::Ping { nonce } => {
            let _ = from.send(Message::Pong { nonce });
        }
        Message::Pong { .. } => {}
        Message::PeerExchange { addrs } => {
            st.book_addr.learn(addrs.iter().filter_map(|a| a.parse().ok()));
        }
        Message::GossipAnnounce { ids } => {
            if let Some(req) = st.gossip.on_announce(&ids) {
                let _ = from.send(req);
            }
        }
        Message::GossipRequest { ids } => {
            if let Some(payload) = st.gossip.on_request(&ids) {
                let _ = from.send(payload);
            }
        }
        Message::GossipPayload { items } => {
            let fresh = st.gossip.on_payload(items);
            if fresh.is_empty() {
                return;
            }
            let ids: Vec<String> = fresh.iter().map(|(id, _)| id.clone()).collect();
            for (id, item) in fresh {
                apply_item(st, config, &id, &item);
            }
            // Re-announce the new items to every other peer.
            let announce = Message::GossipAnnounce { ids };
            for p in &st.peers {
                if !p.tx.same_channel(from) {
                    let _ = p.tx.send(announce.clone());
                }
            }
        }
    }
}

/// Publish a locally originated item under the lock.
fn publish_locked(st: &mut State, config: &NodeConfig, item: GossipItem) {
    let Some(id) = st.gossip.insert(item.clone()) else {
        return; // duplicate
    };
    apply_item(st, config, &id, &item);
    let announce = Message::GossipAnnounce { ids: vec![id] };
    for p in &st.peers {
        let _ = p.tx.send(announce.clone());
    }
}

/// Apply a freshly learned item to the application state (ledger / book /
/// withdrawal log), with verification.
fn apply_item(st: &mut State, config: &NodeConfig, id: &str, item: &GossipItem) {
    match item {
        GossipItem::Receipt(receipt) => {
            st.ledger.insert_receipt(id.to_string(), receipt.clone());
            if config.auto_attest {
                if let Some(scenario) = &config.scenario {
                    let valid = verify_receipt(receipt, scenario, &config.keys).is_ok();
                    if let Some(att) =
                        Attestation::create(&config.keys, id, &config.node_id.0, valid)
                    {
                        publish_locked(st, config, GossipItem::Attestation(att));
                    }
                }
            }
        }
        GossipItem::Attestation(att) => {
            if verify_attestation(att, &config.keys) {
                st.ledger.insert_attestation(att);
            } else {
                st.rejected += 1;
            }
        }
        GossipItem::Order(order) => {
            if verify_order(&config.keys, order) {
                st.book.submit(order.clone());
            } else {
                st.rejected += 1;
            }
        }
        GossipItem::Withdrawal(notice) => {
            let bytes = WithdrawalNotice::signing_bytes(&notice.party, &notice.sat_ids, notice.effective_s);
            if config.keys.verify(&notice.party, &bytes, &notice.signature) {
                st.withdrawals.push(notice.clone());
            } else {
                st.rejected += 1;
            }
        }
        GossipItem::Control(event) => {
            if !event.verify(&config.keys) {
                st.rejected += 1;
            } else if let Some(control) = st.control.as_mut() {
                control.apply(event);
            }
        }
        GossipItem::Settlement(note) => {
            let bytes = SettlementNote::signing_bytes(note.epoch, &note.proposer, &note.transfers);
            if !config.keys.verify(&note.proposer, &bytes, &note.signature) {
                st.rejected += 1;
            } else if st.ledger.apply_settlement_note(note) == SettlementOutcome::Rejected {
                st.rejected += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::make_order;
    use crate::poc::CoverageReceipt;
    use crate::testkit::converge_until;
    use crate::transport::SimNet;

    fn keys() -> KeyDirectory {
        let mut k = KeyDirectory::new();
        for p in ["n1", "n2", "n3", "owner", "gs"] {
            k.register_derived(p, b"net-seed");
        }
        k
    }

    /// Virtual-time convergence on an item-count floor (replaces the old
    /// wall-clock sleep-and-poll helper).
    async fn converged(nodes: &[&NodeHandle], items: usize, timeout_ms: u64) -> bool {
        converge_until(Duration::from_millis(timeout_ms), || {
            nodes.iter().all(|n| n.item_count() >= items)
        })
        .await
    }

    #[tokio::test(start_paused = true)]
    async fn two_nodes_gossip_an_item() {
        let net = SimNet::new(1);
        let a = Node::start(NodeConfig::sim("n1", keys(), &net)).await.unwrap();
        let b = Node::start(NodeConfig::sim("n2", keys(), &net)).await.unwrap();
        b.connect(a.local_addr).await.unwrap();

        let receipt = CoverageReceipt::create(&keys(), 1, "gs", "owner", 10.0, 50.0).unwrap();
        a.publish(GossipItem::Receipt(receipt));
        assert!(converged(&[&a, &b], 1, 2000).await, "item did not propagate");
        a.shutdown();
        b.shutdown();
    }

    #[tokio::test(start_paused = true)]
    async fn line_topology_floods() {
        // n1 - n2 - n3: items published at n1 must reach n3 through n2.
        let net = SimNet::new(2);
        let n1 = Node::start(NodeConfig::sim("n1", keys(), &net)).await.unwrap();
        let n2 = Node::start(NodeConfig::sim("n2", keys(), &net)).await.unwrap();
        let n3 = Node::start(NodeConfig::sim("n3", keys(), &net)).await.unwrap();
        n2.connect(n1.local_addr).await.unwrap();
        n3.connect(n2.local_addr).await.unwrap();

        for seq in 0..5 {
            let order = make_order(&keys(), "n1", seq % 2 == 0, 1.0 + seq as f64, 10, seq).unwrap();
            n1.publish(GossipItem::Order(order));
        }
        assert!(converged(&[&n1, &n2, &n3], 5, 3000).await, "flood incomplete");
        for n in [&n1, &n2, &n3] {
            n.shutdown();
        }
    }

    #[tokio::test(start_paused = true)]
    async fn late_joiner_syncs_via_anti_entropy() {
        let net = SimNet::new(3);
        let a = Node::start(NodeConfig::sim("n1", keys(), &net)).await.unwrap();
        let order = make_order(&keys(), "n1", true, 2.0, 5, 0).unwrap();
        a.publish(GossipItem::Order(order));

        // b joins after the item exists.
        let b = Node::start(NodeConfig::sim("n2", keys(), &net)).await.unwrap();
        b.connect(a.local_addr).await.unwrap();
        assert!(converged(&[&b], 1, 2000).await, "late joiner did not sync");
        a.shutdown();
        b.shutdown();
    }

    #[tokio::test(start_paused = true)]
    async fn bad_signature_rejected_but_gossiped() {
        let net = SimNet::new(4);
        let a = Node::start(NodeConfig::sim("n1", keys(), &net)).await.unwrap();
        let b = Node::start(NodeConfig::sim("n2", keys(), &net)).await.unwrap();
        b.connect(a.local_addr).await.unwrap();

        let mut order = make_order(&keys(), "n1", true, 2.0, 5, 0).unwrap();
        order.signature = "00".repeat(32);
        a.publish(GossipItem::Order(order));
        assert!(converged(&[&a, &b], 1, 2000).await);
        assert_eq!(a.trades().len(), 0);
        assert_eq!(a.rejected_count(), 1);
        assert_eq!(b.rejected_count(), 1);
        a.shutdown();
        b.shutdown();
    }

    #[tokio::test(start_paused = true)]
    async fn replicated_market_converges() {
        let net = SimNet::new(5);
        let a = Node::start(NodeConfig::sim("n1", keys(), &net)).await.unwrap();
        let b = Node::start(NodeConfig::sim("n2", keys(), &net)).await.unwrap();
        b.connect(a.local_addr).await.unwrap();
        // Let the mesh settle so both replicas see orders in gossip order.
        tokio::time::sleep(Duration::from_millis(50)).await;

        let ask = make_order(&keys(), "n1", false, 1.0, 10, 0).unwrap();
        a.publish(GossipItem::Order(ask));
        assert!(converged(&[&a, &b], 1, 2000).await);
        let bid = make_order(&keys(), "n2", true, 1.5, 4, 0).unwrap();
        b.publish(GossipItem::Order(bid));
        assert!(converged(&[&a, &b], 2, 2000).await);

        // Both replicas executed the same trade.
        assert!(
            converge_until(Duration::from_secs(2), || {
                !a.trades().is_empty() && !b.trades().is_empty()
            })
            .await,
            "trade did not replicate"
        );
        assert_eq!(a.trades(), b.trades());
        assert_eq!(a.trades().len(), 1);
        assert_eq!(a.trades()[0].quantity, 4);
        let s = a.market_settlement();
        assert!((s.values().sum::<f64>()).abs() < 1e-9);
        a.shutdown();
        b.shutdown();
    }

    #[tokio::test(start_paused = true)]
    async fn peer_exchange_self_assembles_mesh() {
        // a <- b, a <- c: with PEX enabled, b and c discover each other
        // through a and dial directly, densifying the mesh.
        let net = SimNet::new(6);
        let mk = |id: &str| {
            let mut cfg = NodeConfig::sim(id, keys(), &net);
            cfg.advertise = true;
            cfg.target_degree = 3;
            cfg.anti_entropy = Duration::from_millis(50);
            cfg
        };
        let a = Node::start(mk("n1")).await.unwrap();
        let b = Node::start(mk("n2")).await.unwrap();
        let c = Node::start(mk("n3")).await.unwrap();
        b.connect(a.local_addr).await.unwrap();
        c.connect(a.local_addr).await.unwrap();

        // Everyone learns both other addresses via handshake + PEX.
        assert!(
            converge_until(Duration::from_secs(2), || {
                [&a, &b, &c].iter().all(|n| n.known_peer_addrs() >= 2)
            })
            .await,
            "peer exchange did not spread addresses: {} {} {}",
            a.known_peer_addrs(),
            b.known_peer_addrs(),
            c.known_peer_addrs()
        );

        // The dial loop raises everyone's degree beyond the initial link.
        assert!(
            converge_until(Duration::from_secs(2), || b.peer_count() >= 2 && c.peer_count() >= 2)
                .await,
            "PEX dialing did not densify the mesh: b={} c={}",
            b.peer_count(),
            c.peer_count()
        );

        let order = make_order(&keys(), "n2", true, 1.0, 1, 0).unwrap();
        b.publish(GossipItem::Order(order));
        assert!(converged(&[&a, &b, &c], 1, 3000).await);
        for n in [&a, &b, &c] {
            n.shutdown();
        }
    }

    #[tokio::test(start_paused = true)]
    async fn connect_retries_until_listener_appears() {
        // The dial target comes up 300 virtual ms after the first attempt:
        // backoff must ride out the refusals and then converge.
        let net = SimNet::new(7);
        let a = Node::start(NodeConfig::sim("n1", keys(), &net)).await.unwrap();
        let target: SocketAddr = "10.66.200.1:9000".parse().unwrap();

        let late_start = async {
            tokio::time::sleep(Duration::from_millis(300)).await;
            let mut cfg = NodeConfig::sim("n2", keys(), &net);
            cfg.listen = target;
            Node::start(cfg).await.unwrap()
        };
        let (dial, b) = tokio::join!(a.connect(target), late_start);
        dial.expect("backoff should outlast the 300ms outage");

        let order = make_order(&keys(), "n1", true, 1.0, 1, 0).unwrap();
        a.publish(GossipItem::Order(order));
        assert!(converged(&[&a, &b], 1, 2000).await);
        a.shutdown();
        b.shutdown();
    }

    #[tokio::test(start_paused = true)]
    async fn silent_peer_evicted_after_configured_ticks() {
        let net = SimNet::new(8);
        let mut cfg = NodeConfig::sim("n1", keys(), &net);
        cfg.anti_entropy = Duration::from_millis(10);
        cfg.silence_limit = 3;
        let a = Node::start(cfg).await.unwrap();

        // A raw connection that never says anything.
        let probe_local: SocketAddr = "10.99.0.1:1".parse().unwrap();
        let _mute = net.transport().connect(probe_local, a.local_addr).await.unwrap();
        assert!(
            converge_until(Duration::from_secs(1), || a.peer_count() == 1).await,
            "mute peer should register"
        );
        assert!(
            converge_until(Duration::from_secs(1), || a.peer_count() == 0).await,
            "mute peer should be evicted after silence_limit ticks"
        );
        a.shutdown();
    }

    #[tokio::test(start_paused = true)]
    async fn shutdown_stops_node() {
        let net = SimNet::new(9);
        let a = Node::start(NodeConfig::sim("n1", keys(), &net)).await.unwrap();
        let addr = a.local_addr;
        a.shutdown();
        tokio::time::sleep(Duration::from_millis(100)).await;
        // The listener is gone: new dials are refused, and calling shutdown
        // twice must not panic.
        let probe: SocketAddr = "10.99.0.2:1".parse().unwrap();
        assert!(net.transport().connect(probe, addr).await.is_err());
        a.shutdown();
    }
}
