//! The async node runtime: TCP listener, per-peer reader/writer tasks,
//! periodic anti-entropy, and graceful shutdown.
//!
//! Concurrency layout (one node):
//!
//! * an **accept loop** task owning the listener;
//! * per connection, a **reader task** (dispatches inbound frames) and a
//!   **writer task** (drains an unbounded mpsc of outbound messages) over
//!   the split TCP stream;
//! * an **anti-entropy task** re-announcing the full item set on a timer;
//! * shared state ([`GossipState`], [`Ledger`], [`OrderBook`], withdrawal
//!   log) behind a `parking_lot::Mutex` — never held across an await.
//!
//! Shutdown is a `tokio::sync::watch` broadcast: every task selects on it.

use crate::control::ReplicatedControl;
use crate::crypto::KeyDirectory;
use crate::discovery::AddressBook;
use crate::gossip::GossipState;
use crate::ledger::{Ledger, LedgerConfig};
use crate::market::{verify_order, OrderBook, Trade};
use crate::messages::{GossipItem, Message, NodeId, WithdrawalNotice};
use crate::poc::{verify_attestation, verify_receipt, Attestation, Scenario};
use crate::wire::{read_frame, write_frame};
use bytes::BytesMut;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::{mpsc, watch};

/// Ticks of silence (anti-entropy intervals) before a peer is evicted.
const PEER_SILENCE_LIMIT: u32 = 50;

/// Node configuration.
#[derive(Clone)]
pub struct NodeConfig {
    /// This node's identity (also its signing party id).
    pub node_id: NodeId,
    /// Address to listen on (use port 0 for an ephemeral port).
    pub listen: SocketAddr,
    /// The shared key directory.
    pub keys: KeyDirectory,
    /// Ledger policy.
    pub ledger: LedgerConfig,
    /// Shared scenario knowledge for receipt verification. When present and
    /// `auto_attest` is set, the node attests every incoming receipt.
    pub scenario: Option<Arc<Scenario>>,
    /// Attest receipts automatically on arrival.
    pub auto_attest: bool,
    /// Multi-party control group this node participates in (None = the
    /// node ignores control-plane events).
    pub control: Option<mpleo::control::ControlGroup>,
    /// Anti-entropy announce interval.
    pub anti_entropy: Duration,
    /// Advertise the listen address and run peer exchange.
    pub advertise: bool,
    /// When advertising, keep dialing discovered peers until this many
    /// sessions are up.
    pub target_degree: usize,
}

impl NodeConfig {
    /// A localhost config with sane test defaults.
    pub fn local(node_id: impl Into<NodeId>, keys: KeyDirectory) -> Self {
        NodeConfig {
            node_id: node_id.into(),
            listen: "127.0.0.1:0".parse().expect("static addr"),
            keys,
            ledger: LedgerConfig::default(),
            scenario: None,
            auto_attest: false,
            control: None,
            anti_entropy: Duration::from_millis(200),
            advertise: false,
            target_degree: 3,
        }
    }
}

struct PeerSlot {
    id: Option<NodeId>,
    tx: mpsc::UnboundedSender<Message>,
    /// Ticks since we last heard a frame from this peer.
    silent_ticks: u32,
}

struct State {
    gossip: GossipState,
    ledger: Ledger,
    book: OrderBook,
    withdrawals: Vec<WithdrawalNotice>,
    control: Option<ReplicatedControl>,
    book_addr: AddressBook,
    peers: Vec<PeerSlot>,
    rejected: u64,
}

/// The node entry point.
pub struct Node;

impl Node {
    /// Bind the listener and spawn the node's tasks. Returns a handle for
    /// interaction and shutdown.
    pub async fn start(mut config: NodeConfig) -> io::Result<NodeHandle> {
        let listener = TcpListener::bind(config.listen).await?;
        let local_addr = listener.local_addr()?;
        config.listen = local_addr; // publish the resolved port
        let (shutdown_tx, shutdown_rx) = watch::channel(false);
        let state = Arc::new(Mutex::new(State {
            gossip: GossipState::new(),
            ledger: Ledger::new(config.ledger),
            book: OrderBook::new(),
            withdrawals: Vec::new(),
            control: config.control.clone().map(ReplicatedControl::new),
            book_addr: AddressBook::new(Some(local_addr)),
            peers: Vec::new(),
            rejected: 0,
        }));
        let config = Arc::new(config);

        // Accept loop.
        {
            let state = state.clone();
            let config = config.clone();
            let mut shutdown = shutdown_rx.clone();
            tokio::spawn(async move {
                loop {
                    tokio::select! {
                        _ = shutdown.changed() => break,
                        accepted = listener.accept() => {
                            match accepted {
                                Ok((stream, _)) => {
                                    spawn_peer(stream, state.clone(), config.clone(), shutdown.clone(), None);
                                }
                                Err(_) => break,
                            }
                        }
                    }
                }
            });
        }

        // Anti-entropy + peer-exchange loop.
        {
            let state = state.clone();
            let mut shutdown = shutdown_rx.clone();
            let interval = config.anti_entropy;
            let config2 = config.clone();
            tokio::spawn(async move {
                let mut ticker = tokio::time::interval(interval);
                ticker.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
                loop {
                    tokio::select! {
                        _ = shutdown.changed() => break,
                        _ = ticker.tick() => {
                            let dials = {
                                let mut st = state.lock();
                                // Liveness: ping everyone, age the silence
                                // counters, and drop peers that have said
                                // nothing for many ticks (a pong resets).
                                for p in st.peers.iter_mut() {
                                    let _ = p.tx.send(Message::Ping { nonce: 0 });
                                    p.silent_ticks = p.silent_ticks.saturating_add(1);
                                }
                                st.peers.retain(|p| p.silent_ticks <= PEER_SILENCE_LIMIT && !p.tx.is_closed());
                                if let Some(msg) = st.gossip.anti_entropy_announce() {
                                    for p in &st.peers {
                                        let _ = p.tx.send(msg.clone());
                                    }
                                }
                                if config2.advertise {
                                    let addrs: Vec<String> = st
                                        .book_addr
                                        .shareable()
                                        .iter()
                                        .map(|a| a.to_string())
                                        .collect();
                                    if !addrs.is_empty() {
                                        let pex = Message::PeerExchange { addrs };
                                        for p in &st.peers {
                                            let _ = p.tx.send(pex.clone());
                                        }
                                    }
                                    let cands = st.book_addr.dial_candidates(config2.target_degree);
                                    for c in &cands {
                                        st.book_addr.mark_connected(*c); // optimistic
                                    }
                                    cands
                                } else {
                                    Vec::new()
                                }
                            };
                            for addr in dials {
                                match TcpStream::connect(addr).await {
                                    Ok(stream) => spawn_peer(
                                        stream,
                                        state.clone(),
                                        config2.clone(),
                                        shutdown.clone(),
                                        Some(addr),
                                    ),
                                    Err(_) => state.lock().book_addr.mark_disconnected(addr),
                                }
                            }
                        }
                    }
                }
            });
        }

        Ok(NodeHandle { config, local_addr, state, shutdown: shutdown_tx, shutdown_rx })
    }
}

/// Handle to a running node.
pub struct NodeHandle {
    config: Arc<NodeConfig>,
    /// Bound listen address (with the resolved ephemeral port).
    pub local_addr: SocketAddr,
    state: Arc<Mutex<State>>,
    shutdown: watch::Sender<bool>,
    shutdown_rx: watch::Receiver<bool>,
}

impl NodeHandle {
    /// This node's id.
    pub fn node_id(&self) -> &NodeId {
        &self.config.node_id
    }

    /// Dial a peer and start gossiping with it.
    pub async fn connect(&self, addr: SocketAddr) -> io::Result<()> {
        let stream = TcpStream::connect(addr).await?;
        self.state.lock().book_addr.mark_connected(addr);
        spawn_peer(stream, self.state.clone(), self.config.clone(), self.shutdown_rx.clone(), Some(addr));
        Ok(())
    }

    /// Publish an application item: store, apply, and announce to peers.
    pub fn publish(&self, item: GossipItem) {
        let mut st = self.state.lock();
        publish_locked(&mut st, &self.config, item);
    }

    /// Number of gossip items held.
    pub fn item_count(&self) -> usize {
        self.state.lock().gossip.len()
    }

    /// Number of live peer connections.
    pub fn peer_count(&self) -> usize {
        self.state.lock().peers.iter().filter(|p| !p.tx.is_closed()).count()
    }

    /// Digest of the confirmed-receipt set (equal across converged nodes).
    pub fn ledger_digest(&self) -> String {
        self.state.lock().ledger.confirmed_digest()
    }

    /// Number of confirmed receipts.
    pub fn confirmed_count(&self) -> usize {
        self.state.lock().ledger.confirmed_ids().len()
    }

    /// Reward balances minted by confirmed receipts.
    pub fn reward_balances(&self) -> BTreeMap<String, f64> {
        self.state.lock().ledger.reward_balances()
    }

    /// Trades executed by the local replica of the market.
    pub fn trades(&self) -> Vec<Trade> {
        self.state.lock().book.trades().to_vec()
    }

    /// Net market settlement per party.
    pub fn market_settlement(&self) -> BTreeMap<String, f64> {
        self.state.lock().book.settlement()
    }

    /// Withdrawal notices seen (signature-verified).
    pub fn withdrawals(&self) -> Vec<WithdrawalNotice> {
        self.state.lock().withdrawals.clone()
    }

    /// Items rejected by verification (bad signature / failed physics).
    pub fn rejected_count(&self) -> u64 {
        self.state.lock().rejected
    }

    /// Number of peer addresses learned via handshake / peer exchange.
    pub fn known_peer_addrs(&self) -> usize {
        self.state.lock().book_addr.known_count()
    }

    /// State of a control proposal, if this node runs a control group and
    /// has seen the proposal.
    pub fn control_state(&self, proposal_id: u64) -> Option<mpleo::control::ProposalState> {
        self.state.lock().control.as_ref().and_then(|c| c.state(proposal_id))
    }

    /// Digest of the executed control-command log (compare across nodes).
    pub fn control_log_digest(&self) -> Option<u64> {
        self.state.lock().control.as_ref().map(|c| c.group.log_digest())
    }

    /// Signal all tasks to stop. Idempotent.
    pub fn shutdown(&self) {
        let _ = self.shutdown.send(true);
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        let _ = self.shutdown.send(true);
    }
}

fn spawn_peer(
    stream: TcpStream,
    state: Arc<Mutex<State>>,
    config: Arc<NodeConfig>,
    mut shutdown: watch::Receiver<bool>,
    dialed_addr: Option<SocketAddr>,
) {
    let (mut reader, mut writer) = stream.into_split();
    let (tx, mut rx) = mpsc::unbounded_channel::<Message>();

    // Register the peer slot and queue the handshake + initial announce.
    {
        let mut st = state.lock();
        let _ = tx.send(Message::Hello {
            node_id: config.node_id.clone(),
            listen_addr: config.advertise.then(|| config.listen.to_string()),
        });
        if let Some(announce) = st.gossip.anti_entropy_announce() {
            let _ = tx.send(announce);
        }
        st.peers.push(PeerSlot { id: None, tx: tx.clone(), silent_ticks: 0 });
    }

    // Writer task.
    {
        let mut shutdown = shutdown.clone();
        tokio::spawn(async move {
            loop {
                tokio::select! {
                    _ = shutdown.changed() => break,
                    msg = rx.recv() => {
                        let Some(msg) = msg else { break };
                        if write_frame(&mut writer, &msg).await.is_err() {
                            break;
                        }
                    }
                }
            }
        });
    }

    // Reader task.
    tokio::spawn(async move {
        let mut buf = BytesMut::new();
        loop {
            tokio::select! {
                _ = shutdown.changed() => break,
                frame = read_frame(&mut reader, &mut buf) => {
                    match frame {
                        Ok(Some(msg)) => {
                            let mut st = state.lock();
                            dispatch(&mut st, &config, &tx, msg);
                        }
                        Ok(None) | Err(_) => break,
                    }
                }
            }
        }
        // Connection gone: drop our sender so the slot reads as closed.
        let mut st = state.lock();
        st.peers.retain(|p| !p.tx.same_channel(&tx));
        if let Some(addr) = dialed_addr {
            st.book_addr.mark_disconnected(addr);
        }
    });
}

/// Handle one inbound message. Runs under the state lock; must not await.
fn dispatch(st: &mut State, config: &NodeConfig, from: &mpsc::UnboundedSender<Message>, msg: Message) {
    if let Some(slot) = st.peers.iter_mut().find(|p| p.tx.same_channel(from)) {
        slot.silent_ticks = 0;
    }
    match msg {
        Message::Hello { node_id, listen_addr } => {
            if let Some(slot) = st.peers.iter_mut().find(|p| p.tx.same_channel(from)) {
                slot.id = Some(node_id);
            }
            if let Some(addr) = listen_addr.and_then(|a| a.parse().ok()) {
                st.book_addr.learn([addr]);
            }
        }
        Message::Ping { nonce } => {
            let _ = from.send(Message::Pong { nonce });
        }
        Message::Pong { .. } => {}
        Message::PeerExchange { addrs } => {
            st.book_addr.learn(addrs.iter().filter_map(|a| a.parse().ok()));
        }
        Message::GossipAnnounce { ids } => {
            if let Some(req) = st.gossip.on_announce(&ids) {
                let _ = from.send(req);
            }
        }
        Message::GossipRequest { ids } => {
            if let Some(payload) = st.gossip.on_request(&ids) {
                let _ = from.send(payload);
            }
        }
        Message::GossipPayload { items } => {
            let fresh = st.gossip.on_payload(items);
            if fresh.is_empty() {
                return;
            }
            let ids: Vec<String> = fresh.iter().map(|(id, _)| id.clone()).collect();
            for (id, item) in fresh {
                apply_item(st, config, &id, &item);
            }
            // Re-announce the new items to every other peer.
            let announce = Message::GossipAnnounce { ids };
            for p in &st.peers {
                if !p.tx.same_channel(from) {
                    let _ = p.tx.send(announce.clone());
                }
            }
        }
    }
}

/// Publish a locally originated item under the lock.
fn publish_locked(st: &mut State, config: &NodeConfig, item: GossipItem) {
    let Some(id) = st.gossip.insert(item.clone()) else {
        return; // duplicate
    };
    apply_item(st, config, &id, &item);
    let announce = Message::GossipAnnounce { ids: vec![id] };
    for p in &st.peers {
        let _ = p.tx.send(announce.clone());
    }
}

/// Apply a freshly learned item to the application state (ledger / book /
/// withdrawal log), with verification.
fn apply_item(st: &mut State, config: &NodeConfig, id: &str, item: &GossipItem) {
    match item {
        GossipItem::Receipt(receipt) => {
            st.ledger.insert_receipt(id.to_string(), receipt.clone());
            if config.auto_attest {
                if let Some(scenario) = &config.scenario {
                    let valid = verify_receipt(receipt, scenario, &config.keys).is_ok();
                    if let Some(att) =
                        Attestation::create(&config.keys, id, &config.node_id.0, valid)
                    {
                        publish_locked(st, config, GossipItem::Attestation(att));
                    }
                }
            }
        }
        GossipItem::Attestation(att) => {
            if verify_attestation(att, &config.keys) {
                st.ledger.insert_attestation(att);
            } else {
                st.rejected += 1;
            }
        }
        GossipItem::Order(order) => {
            if verify_order(&config.keys, order) {
                st.book.submit(order.clone());
            } else {
                st.rejected += 1;
            }
        }
        GossipItem::Withdrawal(notice) => {
            let bytes = WithdrawalNotice::signing_bytes(&notice.party, &notice.sat_ids, notice.effective_s);
            if config.keys.verify(&notice.party, &bytes, &notice.signature) {
                st.withdrawals.push(notice.clone());
            } else {
                st.rejected += 1;
            }
        }
        GossipItem::Control(event) => {
            if !event.verify(&config.keys) {
                st.rejected += 1;
            } else if let Some(control) = st.control.as_mut() {
                control.apply(event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::make_order;
    use crate::poc::CoverageReceipt;

    fn keys() -> KeyDirectory {
        let mut k = KeyDirectory::new();
        for p in ["n1", "n2", "n3", "owner", "gs"] {
            k.register_derived(p, b"net-seed");
        }
        k
    }

    async fn converged(nodes: &[&NodeHandle], items: usize, timeout_ms: u64) -> bool {
        for _ in 0..(timeout_ms / 10) {
            if nodes.iter().all(|n| n.item_count() >= items) {
                return true;
            }
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
        false
    }

    #[tokio::test]
    async fn two_nodes_gossip_an_item() {
        let a = Node::start(NodeConfig::local("n1", keys())).await.unwrap();
        let b = Node::start(NodeConfig::local("n2", keys())).await.unwrap();
        b.connect(a.local_addr).await.unwrap();

        let receipt = CoverageReceipt::create(&keys(), 1, "gs", "owner", 10.0, 50.0).unwrap();
        a.publish(GossipItem::Receipt(receipt));
        assert!(converged(&[&a, &b], 1, 2000).await, "item did not propagate");
        a.shutdown();
        b.shutdown();
    }

    #[tokio::test]
    async fn line_topology_floods() {
        // n1 - n2 - n3: items published at n1 must reach n3 through n2.
        let n1 = Node::start(NodeConfig::local("n1", keys())).await.unwrap();
        let n2 = Node::start(NodeConfig::local("n2", keys())).await.unwrap();
        let n3 = Node::start(NodeConfig::local("n3", keys())).await.unwrap();
        n2.connect(n1.local_addr).await.unwrap();
        n3.connect(n2.local_addr).await.unwrap();

        for seq in 0..5 {
            let order = make_order(&keys(), "n1", seq % 2 == 0, 1.0 + seq as f64, 10, seq).unwrap();
            n1.publish(GossipItem::Order(order));
        }
        assert!(converged(&[&n1, &n2, &n3], 5, 3000).await, "flood incomplete");
        for n in [&n1, &n2, &n3] {
            n.shutdown();
        }
    }

    #[tokio::test]
    async fn late_joiner_syncs_via_anti_entropy() {
        let a = Node::start(NodeConfig::local("n1", keys())).await.unwrap();
        let order = make_order(&keys(), "n1", true, 2.0, 5, 0).unwrap();
        a.publish(GossipItem::Order(order));

        // b joins after the item exists.
        let b = Node::start(NodeConfig::local("n2", keys())).await.unwrap();
        b.connect(a.local_addr).await.unwrap();
        assert!(converged(&[&b], 1, 2000).await, "late joiner did not sync");
        a.shutdown();
        b.shutdown();
    }

    #[tokio::test]
    async fn bad_signature_rejected_but_gossiped() {
        let a = Node::start(NodeConfig::local("n1", keys())).await.unwrap();
        let b = Node::start(NodeConfig::local("n2", keys())).await.unwrap();
        b.connect(a.local_addr).await.unwrap();

        let mut order = make_order(&keys(), "n1", true, 2.0, 5, 0).unwrap();
        order.signature = "00".repeat(32);
        a.publish(GossipItem::Order(order));
        assert!(converged(&[&a, &b], 1, 2000).await);
        assert_eq!(a.trades().len(), 0);
        assert_eq!(a.rejected_count(), 1);
        assert_eq!(b.rejected_count(), 1);
        a.shutdown();
        b.shutdown();
    }

    #[tokio::test]
    async fn replicated_market_converges() {
        let a = Node::start(NodeConfig::local("n1", keys())).await.unwrap();
        let b = Node::start(NodeConfig::local("n2", keys())).await.unwrap();
        b.connect(a.local_addr).await.unwrap();
        // Let the mesh settle so both replicas see orders in gossip order.
        tokio::time::sleep(Duration::from_millis(50)).await;

        let ask = make_order(&keys(), "n1", false, 1.0, 10, 0).unwrap();
        a.publish(GossipItem::Order(ask));
        assert!(converged(&[&a, &b], 1, 2000).await);
        let bid = make_order(&keys(), "n2", true, 1.5, 4, 0).unwrap();
        b.publish(GossipItem::Order(bid));
        assert!(converged(&[&a, &b], 2, 2000).await);

        // Both replicas executed the same trade.
        for _ in 0..100 {
            if !a.trades().is_empty() && !b.trades().is_empty() {
                break;
            }
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
        assert_eq!(a.trades(), b.trades());
        assert_eq!(a.trades().len(), 1);
        assert_eq!(a.trades()[0].quantity, 4);
        let s = a.market_settlement();
        assert!((s.values().sum::<f64>()).abs() < 1e-9);
        a.shutdown();
        b.shutdown();
    }

    #[tokio::test]
    async fn peer_exchange_self_assembles_mesh() {
        // a <- b, a <- c: with PEX enabled, b and c discover each other
        // through a and dial directly, densifying the mesh.
        let mk = |id: &str| {
            let mut cfg = NodeConfig::local(id, keys());
            cfg.advertise = true;
            cfg.target_degree = 3;
            cfg.anti_entropy = Duration::from_millis(50);
            cfg
        };
        let a = Node::start(mk("n1")).await.unwrap();
        let b = Node::start(mk("n2")).await.unwrap();
        let c = Node::start(mk("n3")).await.unwrap();
        b.connect(a.local_addr).await.unwrap();
        c.connect(a.local_addr).await.unwrap();

        // Everyone learns both other addresses via handshake + PEX.
        let mut ok = false;
        for _ in 0..200 {
            if [&a, &b, &c].iter().all(|n| n.known_peer_addrs() >= 2) {
                ok = true;
                break;
            }
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
        assert!(
            ok,
            "peer exchange did not spread addresses: {} {} {}",
            a.known_peer_addrs(),
            b.known_peer_addrs(),
            c.known_peer_addrs()
        );

        // The dial loop raises everyone's degree beyond the initial link.
        let mut meshed = false;
        for _ in 0..200 {
            if b.peer_count() >= 2 && c.peer_count() >= 2 {
                meshed = true;
                break;
            }
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
        assert!(
            meshed,
            "PEX dialing did not densify the mesh: b={} c={}",
            b.peer_count(),
            c.peer_count()
        );

        let order = make_order(&keys(), "n2", true, 1.0, 1, 0).unwrap();
        b.publish(GossipItem::Order(order));
        assert!(converged(&[&a, &b, &c], 1, 3000).await);
        for n in [&a, &b, &c] {
            n.shutdown();
        }
    }

    #[tokio::test]
    async fn shutdown_stops_node() {
        let a = Node::start(NodeConfig::local("n1", keys())).await.unwrap();
        let addr = a.local_addr;
        a.shutdown();
        tokio::time::sleep(Duration::from_millis(100)).await;
        // New connections are no longer serviced with a handshake; dialing
        // may succeed at the TCP level but the node is gone. Just assert we
        // can call shutdown twice without panicking.
        a.shutdown();
        let _ = addr;
    }
}
