//! Peer discovery: address book + peer-exchange (PEX) policy.
//!
//! Nodes advertise their listening addresses in the handshake and exchange
//! known addresses periodically, so a new party only needs one bootstrap
//! address to reach the whole MP-LEO mesh. This module is the pure policy
//! side (what to remember, whom to dial); the socket side lives in
//! [`crate::node`].

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::net::SocketAddr;

/// The address book of known peers.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AddressBook {
    known: BTreeSet<SocketAddr>,
    connected: BTreeSet<SocketAddr>,
    self_addr: Option<SocketAddr>,
}

impl AddressBook {
    /// Empty book; `self_addr` is excluded from dialing suggestions.
    pub fn new(self_addr: Option<SocketAddr>) -> Self {
        AddressBook { known: BTreeSet::new(), connected: BTreeSet::new(), self_addr }
    }

    /// Learn addresses (from a handshake or a PEX message). Returns how
    /// many were new.
    pub fn learn(&mut self, addrs: impl IntoIterator<Item = SocketAddr>) -> usize {
        let mut fresh = 0;
        for a in addrs {
            if Some(a) == self.self_addr {
                continue;
            }
            if self.known.insert(a) {
                fresh += 1;
            }
        }
        fresh
    }

    /// Record an established outbound/inbound session address.
    pub fn mark_connected(&mut self, addr: SocketAddr) {
        self.known.insert(addr);
        self.connected.insert(addr);
    }

    /// Record a closed session.
    pub fn mark_disconnected(&mut self, addr: SocketAddr) {
        self.connected.remove(&addr);
    }

    /// Addresses worth dialing to reach `target_degree` connections,
    /// deterministic order (sorted), excluding self and already-connected.
    pub fn dial_candidates(&self, target_degree: usize) -> Vec<SocketAddr> {
        if self.connected.len() >= target_degree {
            return Vec::new();
        }
        let need = target_degree - self.connected.len();
        self.known
            .iter()
            .filter(|a| !self.connected.contains(a) && Some(**a) != self.self_addr)
            .take(need)
            .cloned()
            .collect()
    }

    /// Addresses to share in a PEX message (everything known; small
    /// networks — cap at 64 for frame hygiene).
    pub fn shareable(&self) -> Vec<SocketAddr> {
        self.known.iter().take(64).cloned().collect()
    }

    /// Number of known addresses.
    pub fn known_count(&self) -> usize {
        self.known.len()
    }

    /// Number of connected sessions tracked.
    pub fn connected_count(&self) -> usize {
        self.connected.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn learn_dedups_and_skips_self() {
        let mut book = AddressBook::new(Some(addr(1000)));
        assert_eq!(book.learn([addr(1001), addr(1002), addr(1000)]), 2);
        assert_eq!(book.learn([addr(1001)]), 0);
        assert_eq!(book.known_count(), 2);
    }

    #[test]
    fn dial_candidates_respect_degree() {
        let mut book = AddressBook::new(None);
        book.learn([addr(1), addr(2), addr(3), addr(4)]);
        assert_eq!(book.dial_candidates(2).len(), 2);
        book.mark_connected(addr(1));
        book.mark_connected(addr(2));
        assert!(book.dial_candidates(2).is_empty(), "degree satisfied");
        let more = book.dial_candidates(3);
        assert_eq!(more.len(), 1);
        assert!(!more.contains(&addr(1)) && !more.contains(&addr(2)));
    }

    #[test]
    fn disconnect_reopens_slots() {
        let mut book = AddressBook::new(None);
        book.learn([addr(1), addr(2)]);
        book.mark_connected(addr(1));
        book.mark_disconnected(addr(1));
        assert_eq!(book.connected_count(), 0);
        // The address stays known and becomes dialable again.
        assert_eq!(book.dial_candidates(1), vec![addr(1)]);
    }

    #[test]
    fn shareable_is_bounded() {
        let mut book = AddressBook::new(None);
        book.learn((0..200u16).map(|p| addr(10_000 + p)));
        assert_eq!(book.shareable().len(), 64);
    }

    #[test]
    fn deterministic_ordering() {
        let mut a = AddressBook::new(None);
        let mut b = AddressBook::new(None);
        a.learn([addr(5), addr(3), addr(9)]);
        b.learn([addr(9), addr(5), addr(3)]);
        assert_eq!(a.dial_candidates(3), b.dial_candidates(3));
    }
}
