//! Replicated multi-party satellite control over gossip.
//!
//! Wraps [`mpleo::control::ControlGroup`] (the m-of-n command state
//! machine) for epidemic delivery: control events arrive signed and in
//! arbitrary order, so this layer verifies signatures, buffers votes that
//! precede their proposal, and replays them once the proposal lands. Two
//! replicas that have seen the same event set always converge to the same
//! executed-command log.

use crate::crypto::{KeyDirectory, Signature};
use mpleo::control::{Command, ControlError, ControlGroup, ProposalState};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A signed control-plane event, gossiped between parties.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlEvent {
    /// Propose a command on a satellite.
    Propose {
        /// Proposal id (proposer-unique; content-hash dedup handles races).
        proposal_id: u64,
        /// Target satellite.
        sat_id: u32,
        /// Proposing party.
        party: String,
        /// The command.
        command: Command,
        /// Proposer's HMAC tag.
        signature: Signature,
    },
    /// Vote on a pending proposal.
    Vote {
        /// Proposal being voted on.
        proposal_id: u64,
        /// Voting party.
        party: String,
        /// Approve or reject.
        approve: bool,
        /// Voter's HMAC tag.
        signature: Signature,
    },
}

impl ControlEvent {
    /// The party asserting this event.
    pub fn party(&self) -> &str {
        match self {
            ControlEvent::Propose { party, .. } | ControlEvent::Vote { party, .. } => party,
        }
    }

    /// Canonical signing bytes of a proposal.
    pub fn propose_bytes(proposal_id: u64, sat_id: u32, party: &str, command: &Command) -> Vec<u8> {
        let cmd = serde_json::to_string(command).expect("commands serialize");
        format!("ctrl-prop|{proposal_id}|{sat_id}|{party}|{cmd}").into_bytes()
    }

    /// Canonical signing bytes of a vote.
    pub fn vote_bytes(proposal_id: u64, party: &str, approve: bool) -> Vec<u8> {
        format!("ctrl-vote|{proposal_id}|{party}|{approve}").into_bytes()
    }

    /// Build a signed proposal.
    pub fn propose(
        keys: &KeyDirectory,
        proposal_id: u64,
        sat_id: u32,
        party: &str,
        command: Command,
    ) -> Option<ControlEvent> {
        let signature = keys.sign(party, &Self::propose_bytes(proposal_id, sat_id, party, &command))?;
        Some(ControlEvent::Propose {
            proposal_id,
            sat_id,
            party: party.to_string(),
            command,
            signature,
        })
    }

    /// Build a signed vote.
    pub fn vote(
        keys: &KeyDirectory,
        proposal_id: u64,
        party: &str,
        approve: bool,
    ) -> Option<ControlEvent> {
        let signature = keys.sign(party, &Self::vote_bytes(proposal_id, party, approve))?;
        Some(ControlEvent::Vote { proposal_id, party: party.to_string(), approve, signature })
    }

    /// Verify the event's signature against the directory.
    pub fn verify(&self, keys: &KeyDirectory) -> bool {
        match self {
            ControlEvent::Propose { proposal_id, sat_id, party, command, signature } => keys
                .verify(party, &Self::propose_bytes(*proposal_id, *sat_id, party, command), signature),
            ControlEvent::Vote { proposal_id, party, approve, signature } => {
                keys.verify(party, &Self::vote_bytes(*proposal_id, party, *approve), signature)
            }
        }
    }
}

/// The replicated control state: the group machine plus an out-of-order
/// vote buffer.
#[derive(Debug, Clone)]
pub struct ReplicatedControl {
    /// The underlying command state machine.
    pub group: ControlGroup,
    pending_votes: HashMap<u64, Vec<(String, bool)>>,
    /// Events dropped by verification or state-machine rules.
    pub rejected: u64,
}

impl ReplicatedControl {
    /// Wrap a control group.
    pub fn new(group: ControlGroup) -> Self {
        ReplicatedControl { group, pending_votes: HashMap::new(), rejected: 0 }
    }

    /// Apply a *verified* event (signature checking is the caller's job —
    /// the node does it once per gossip arrival).
    pub fn apply(&mut self, event: &ControlEvent) {
        match event {
            ControlEvent::Propose { proposal_id, sat_id, party, command, .. } => {
                match self.group.propose(*proposal_id, *sat_id, party, command.clone()) {
                    Ok(_) => {
                        // Replay any votes that arrived early.
                        if let Some(votes) = self.pending_votes.remove(proposal_id) {
                            for (voter, approve) in votes {
                                let _ = self.group.vote(*proposal_id, &voter, approve);
                            }
                        }
                    }
                    Err(ControlError::DuplicateProposal(_)) => {} // idempotent
                    Err(_) => self.rejected += 1,
                }
            }
            ControlEvent::Vote { proposal_id, party, approve, .. } => {
                match self.group.vote(*proposal_id, party, *approve) {
                    Ok(_) => {}
                    Err(ControlError::UnknownProposal(_)) => {
                        // Buffer until the proposal arrives.
                        self.pending_votes
                            .entry(*proposal_id)
                            .or_default()
                            .push((party.clone(), *approve));
                    }
                    Err(ControlError::Closed(_)) => {} // late votes are fine
                    Err(_) => self.rejected += 1,
                }
            }
        }
    }

    /// State of a proposal, if known.
    pub fn state(&self, proposal_id: u64) -> Option<ProposalState> {
        self.group.proposal(proposal_id).map(|p| p.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> KeyDirectory {
        let mut k = KeyDirectory::new();
        for p in ["a", "b", "c"] {
            k.register_derived(p, b"ctrl-test");
        }
        k
    }

    fn group() -> ControlGroup {
        let mut g = ControlGroup::new(["a", "b", "c"].map(String::from), 2);
        g.register_satellite(1, "a");
        g
    }

    fn events() -> Vec<ControlEvent> {
        let k = keys();
        vec![
            ControlEvent::propose(&k, 1, 1, "a", Command::SafeMode).unwrap(),
            ControlEvent::vote(&k, 1, "b", true).unwrap(),
            ControlEvent::vote(&k, 1, "c", false).unwrap(),
        ]
    }

    #[test]
    fn signatures_verify_and_tampering_detected() {
        let k = keys();
        let e = ControlEvent::propose(&k, 1, 1, "a", Command::Deorbit).unwrap();
        assert!(e.verify(&k));
        let ControlEvent::Propose { proposal_id, sat_id, party, signature, .. } = e else {
            unreachable!()
        };
        let tampered = ControlEvent::Propose {
            proposal_id,
            sat_id,
            party,
            command: Command::SafeMode, // command swapped after signing
            signature,
        };
        assert!(!tampered.verify(&k));
        assert!(ControlEvent::vote(&k, 1, "ghost", true).is_none());
    }

    #[test]
    fn in_order_application_executes() {
        let mut rc = ReplicatedControl::new(group());
        for e in events() {
            rc.apply(&e);
        }
        assert_eq!(rc.state(1), Some(ProposalState::Executed));
        assert_eq!(rc.rejected, 0);
    }

    #[test]
    fn out_of_order_votes_buffered_and_replayed() {
        let evs = events();
        // Votes first, proposal last.
        let mut rc = ReplicatedControl::new(group());
        rc.apply(&evs[1]);
        rc.apply(&evs[2]);
        assert_eq!(rc.state(1), None, "proposal not yet known");
        rc.apply(&evs[0]);
        assert_eq!(rc.state(1), Some(ProposalState::Executed));
    }

    #[test]
    fn all_permutations_converge() {
        let evs = events();
        let mut digests = std::collections::HashSet::new();
        for perm in [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            let mut rc = ReplicatedControl::new(group());
            for &i in &perm {
                rc.apply(&evs[i]);
            }
            assert_eq!(rc.state(1), Some(ProposalState::Executed), "perm {perm:?}");
            digests.insert(rc.group.log_digest());
        }
        assert_eq!(digests.len(), 1, "replicas diverged");
    }

    #[test]
    fn duplicate_delivery_is_idempotent() {
        let evs = events();
        let mut rc = ReplicatedControl::new(group());
        for _ in 0..3 {
            for e in &evs {
                rc.apply(e);
            }
        }
        assert_eq!(rc.state(1), Some(ProposalState::Executed));
        assert_eq!(rc.group.executed, vec![1], "executed exactly once");
    }

    #[test]
    fn outsider_events_counted_rejected() {
        let mut k = keys();
        k.register_derived("mallory", b"ctrl-test");
        let mut rc = ReplicatedControl::new(group());
        // mallory has a key but is not a control-group member.
        let e = ControlEvent::propose(&k, 9, 1, "mallory", Command::Deorbit).unwrap();
        rc.apply(&e);
        assert_eq!(rc.rejected, 1);
        assert_eq!(rc.state(9), None);
    }
}
