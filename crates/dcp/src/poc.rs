//! Proof-of-coverage: receipts, attestations, and physics-based
//! verification.
//!
//! The paper (§3.2): "Ground stations at random locations can verify
//! coverage by pinging satellites when they are overhead, and provide
//! proof-of-coverage to earn rewards." The crucial property making this
//! *decentralized* is that coverage claims are independently checkable:
//! every party knows every satellite's published orbital elements, so any
//! node can re-propagate the orbit and confirm the satellite really was
//! above the claimed ground station at the claimed time. A fraudulent
//! receipt is rejected by physics, not by authority.

use crate::crypto::{KeyDirectory, Signature};
use orbital::frames::{eci_to_ecef, sin_elevation};
use orbital::ground::GroundSite;
use orbital::kepler::ClassicalElements;
use orbital::propagator::{KeplerJ2, Propagator};
use orbital::time::Epoch;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A signed claim that `verifier` observed satellite `sat_id` overhead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageReceipt {
    /// Observed satellite.
    pub sat_id: u32,
    /// The verifying ground station's party id.
    pub verifier: String,
    /// The satellite-owning party (named so settlement can credit it).
    pub owner: String,
    /// Observation time, seconds after the scenario epoch.
    pub t_offset_s: f64,
    /// Claimed elevation of the satellite at observation, degrees.
    pub elevation_deg: f64,
    /// Verifier's HMAC tag over the canonical receipt bytes.
    pub signature: Signature,
}

impl CoverageReceipt {
    /// Canonical bytes covered by the receipt signature.
    pub fn signing_bytes(sat_id: u32, verifier: &str, owner: &str, t_offset_s: f64, elevation_deg: f64) -> Vec<u8> {
        format!("poc|{sat_id}|{verifier}|{owner}|{t_offset_s:.3}|{elevation_deg:.3}").into_bytes()
    }

    /// Create and sign a receipt on behalf of `verifier`.
    pub fn create(
        keys: &KeyDirectory,
        sat_id: u32,
        verifier: &str,
        owner: &str,
        t_offset_s: f64,
        elevation_deg: f64,
    ) -> Option<CoverageReceipt> {
        let sig = keys.sign(
            verifier,
            &Self::signing_bytes(sat_id, verifier, owner, t_offset_s, elevation_deg),
        )?;
        Some(CoverageReceipt {
            sat_id,
            verifier: verifier.to_string(),
            owner: owner.to_string(),
            t_offset_s,
            elevation_deg,
            signature: sig,
        })
    }
}

/// A signed verdict on a receipt by another party.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attestation {
    /// Content id of the receipt being attested (hex SHA-256).
    pub receipt_id: String,
    /// Attesting party.
    pub attestor: String,
    /// Whether the attestor's independent check passed.
    pub valid: bool,
    /// Attestor's HMAC tag.
    pub signature: Signature,
}

impl Attestation {
    /// Canonical bytes covered by the attestation signature.
    pub fn signing_bytes(receipt_id: &str, attestor: &str, valid: bool) -> Vec<u8> {
        format!("attest|{receipt_id}|{attestor}|{valid}").into_bytes()
    }

    /// Create and sign an attestation.
    pub fn create(keys: &KeyDirectory, receipt_id: &str, attestor: &str, valid: bool) -> Option<Attestation> {
        let sig = keys.sign(attestor, &Self::signing_bytes(receipt_id, attestor, valid))?;
        Some(Attestation {
            receipt_id: receipt_id.to_string(),
            attestor: attestor.to_string(),
            valid,
            signature: sig,
        })
    }
}

/// Shared scenario knowledge every node holds: the constellation's published
/// elements, the registered ground stations, and the link mask.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario epoch (all receipt offsets are relative to it).
    pub epoch: Epoch,
    /// Published orbital elements per satellite id.
    pub satellites: HashMap<u32, ClassicalElements>,
    /// Registered verifier ground stations per party id.
    pub ground_stations: HashMap<String, GroundSite>,
    /// Minimum elevation for a valid coverage claim, degrees.
    pub min_elevation_deg: f64,
    /// Tolerance on the claimed elevation, degrees (accounts for propagator
    /// disagreement between parties).
    pub elevation_tolerance_deg: f64,
}

impl Scenario {
    /// New scenario with default mask/tolerance.
    pub fn new(epoch: Epoch) -> Scenario {
        Scenario {
            epoch,
            satellites: HashMap::new(),
            ground_stations: HashMap::new(),
            min_elevation_deg: 25.0,
            elevation_tolerance_deg: 3.0,
        }
    }

    /// Register a satellite's published elements.
    pub fn add_satellite(&mut self, sat_id: u32, elements: ClassicalElements) {
        self.satellites.insert(sat_id, elements);
    }

    /// Register a verifier ground station.
    pub fn add_ground_station(&mut self, party: impl Into<String>, site: GroundSite) {
        self.ground_stations.insert(party.into(), site);
    }

    /// Independently compute the elevation (degrees) of a satellite above a
    /// verifier's station at a receipt's claimed time.
    pub fn computed_elevation_deg(&self, sat_id: u32, verifier: &str, t_offset_s: f64) -> Option<f64> {
        let el = self.satellites.get(&sat_id)?;
        let site = self.ground_stations.get(verifier)?;
        let prop = KeplerJ2::from_elements(el, self.epoch);
        let t = self.epoch.plus_seconds(t_offset_s);
        let ecef = eci_to_ecef(prop.position_at(t), t.gmst());
        let s = sin_elevation(site.ecef, site.zenith, ecef);
        Some(s.clamp(-1.0, 1.0).asin().to_degrees())
    }
}

/// Why a receipt was rejected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PocError {
    /// The signature did not verify against the verifier's registered key.
    BadSignature,
    /// The claimed satellite is not in the published constellation.
    UnknownSatellite,
    /// The verifier is not a registered ground station.
    UnknownVerifier,
    /// Independent propagation puts the satellite below the mask at the
    /// claimed time; carries the computed elevation (centi-degrees,
    /// truncated) for diagnostics.
    NotOverhead(i32),
    /// The claimed elevation deviates from the computed one beyond
    /// tolerance.
    ElevationMismatch(i32),
}

/// Verify a receipt: signature + physics.
pub fn verify_receipt(
    receipt: &CoverageReceipt,
    scenario: &Scenario,
    keys: &KeyDirectory,
) -> Result<(), PocError> {
    let bytes = CoverageReceipt::signing_bytes(
        receipt.sat_id,
        &receipt.verifier,
        &receipt.owner,
        receipt.t_offset_s,
        receipt.elevation_deg,
    );
    if !keys.verify(&receipt.verifier, &bytes, &receipt.signature) {
        return Err(PocError::BadSignature);
    }
    if !scenario.satellites.contains_key(&receipt.sat_id) {
        return Err(PocError::UnknownSatellite);
    }
    if !scenario.ground_stations.contains_key(&receipt.verifier) {
        return Err(PocError::UnknownVerifier);
    }
    let computed = scenario
        .computed_elevation_deg(receipt.sat_id, &receipt.verifier, receipt.t_offset_s)
        .expect("ids checked above");
    if computed < scenario.min_elevation_deg - scenario.elevation_tolerance_deg {
        return Err(PocError::NotOverhead((computed * 100.0) as i32));
    }
    if (computed - receipt.elevation_deg).abs() > scenario.elevation_tolerance_deg {
        return Err(PocError::ElevationMismatch(
            ((computed - receipt.elevation_deg) * 100.0) as i32,
        ));
    }
    Ok(())
}

/// Verify an attestation's signature.
pub fn verify_attestation(att: &Attestation, keys: &KeyDirectory) -> bool {
    keys.verify(
        &att.attestor,
        &Attestation::signing_bytes(&att.receipt_id, &att.attestor, att.valid),
        &att.signature,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbital::frames::Geodetic;

    fn setup() -> (Scenario, KeyDirectory) {
        let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
        let mut sc = Scenario::new(epoch);
        // A satellite that starts directly over the equator/prime meridian
        // region; ground station placed under its track.
        let el = ClassicalElements::circular(550.0, 53f64.to_radians(), 0.0, 0.0);
        sc.add_satellite(1, el);
        // Put the verifier exactly at the sub-satellite point at t=0.
        let prop = KeplerJ2::from_elements(&el, epoch);
        let sub = orbital::frames::subpoint(prop.position_at(epoch), epoch.gmst());
        let site = GroundSite::new(
            "gs-a",
            Geodetic::from_degrees(sub.latitude_deg(), sub.longitude_deg(), 0.0),
        );
        sc.add_ground_station("party-a", site);
        let mut keys = KeyDirectory::new();
        keys.register_derived("party-a", b"seed");
        keys.register_derived("party-b", b"seed");
        (sc, keys)
    }

    #[test]
    fn honest_receipt_verifies() {
        let (sc, keys) = setup();
        let el = sc.computed_elevation_deg(1, "party-a", 0.0).unwrap();
        assert!(el > 85.0, "satellite overhead at t=0, elevation {el}");
        let r = CoverageReceipt::create(&keys, 1, "party-a", "owner-x", 0.0, el).unwrap();
        assert_eq!(verify_receipt(&r, &sc, &keys), Ok(()));
    }

    #[test]
    fn fraudulent_time_rejected_by_physics() {
        let (sc, keys) = setup();
        // Half an orbit later the satellite is on the other side of Earth.
        let r = CoverageReceipt::create(&keys, 1, "party-a", "owner-x", 48.0 * 60.0, 80.0).unwrap();
        match verify_receipt(&r, &sc, &keys) {
            Err(PocError::NotOverhead(_)) => {}
            other => panic!("expected NotOverhead, got {other:?}"),
        }
    }

    #[test]
    fn inflated_elevation_rejected() {
        let (sc, keys) = setup();
        let el = sc.computed_elevation_deg(1, "party-a", 0.0).unwrap();
        let r = CoverageReceipt::create(&keys, 1, "party-a", "owner-x", 0.0, el - 20.0).unwrap();
        match verify_receipt(&r, &sc, &keys) {
            Err(PocError::ElevationMismatch(_)) => {}
            other => panic!("expected ElevationMismatch, got {other:?}"),
        }
    }

    #[test]
    fn tampered_signature_rejected() {
        let (sc, keys) = setup();
        let el = sc.computed_elevation_deg(1, "party-a", 0.0).unwrap();
        let mut r = CoverageReceipt::create(&keys, 1, "party-a", "owner-x", 0.0, el).unwrap();
        r.t_offset_s = 60.0; // resign nothing: signature now stale
        assert_eq!(verify_receipt(&r, &sc, &keys), Err(PocError::BadSignature));
    }

    #[test]
    fn unknown_ids_rejected() {
        let (sc, keys) = setup();
        let el = sc.computed_elevation_deg(1, "party-a", 0.0).unwrap();
        let r = CoverageReceipt::create(&keys, 99, "party-a", "owner-x", 0.0, el).unwrap();
        assert_eq!(verify_receipt(&r, &sc, &keys), Err(PocError::UnknownSatellite));
        // Verifier signs with a registered key but is not a ground station.
        let r2 = CoverageReceipt::create(&keys, 1, "party-b", "owner-x", 0.0, el).unwrap();
        assert_eq!(verify_receipt(&r2, &sc, &keys), Err(PocError::UnknownVerifier));
    }

    #[test]
    fn attestation_roundtrip() {
        let (_sc, keys) = setup();
        let a = Attestation::create(&keys, "deadbeef", "party-b", true).unwrap();
        assert!(verify_attestation(&a, &keys));
        let mut tampered = a.clone();
        tampered.valid = false;
        assert!(!verify_attestation(&tampered, &keys));
        let unknown = Attestation {
            receipt_id: "x".into(),
            attestor: "ghost".into(),
            valid: true,
            signature: "00".into(),
        };
        assert!(!verify_attestation(&unknown, &keys));
    }

    #[test]
    fn elevation_computation_sane_over_pass() {
        let (sc, _keys) = setup();
        // Elevation peaks near t=0 and decays within minutes.
        let e0 = sc.computed_elevation_deg(1, "party-a", 0.0).unwrap();
        let e5 = sc.computed_elevation_deg(1, "party-a", 300.0).unwrap();
        let e20 = sc.computed_elevation_deg(1, "party-a", 1200.0).unwrap();
        assert!(e0 > e5, "{e0} vs {e5}");
        assert!(e5 > e20, "{e5} vs {e20}");
        assert!(e20 < 0.0, "20 minutes later the satellite is below horizon: {e20}");
    }
}

/// Result of auditing a satellite's *published* elements against a party's
/// own ranging observations (see [`orbital::od`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ElementAudit {
    /// Published elements explain the observations (residual below the
    /// ranging-noise threshold).
    Consistent {
        /// RMS range residual of the published elements, km.
        rms_km: f64,
    },
    /// Published elements misfit the observations; the refit exposes where
    /// the satellite actually is.
    Forged {
        /// RMS residual of the published elements, km.
        published_rms_km: f64,
        /// The independently fitted elements.
        fitted: orbital::kepler::ClassicalElements,
        /// RMS residual of the fit, km.
        fitted_rms_km: f64,
    },
    /// The fit did not converge (too few / degenerate observations); no
    /// verdict.
    Inconclusive,
}

/// Audit published elements for `sat_id` against range observations taken
/// by `verifier`'s ground station. `threshold_km` is the residual above
/// which the published elements are declared inconsistent (set it a few x
/// above the station's ranging noise).
pub fn audit_published_elements(
    scenario: &Scenario,
    sat_id: u32,
    verifier: &str,
    observations: &[orbital::od::RangeObservation],
    threshold_km: f64,
) -> Option<ElementAudit> {
    let published = scenario.satellites.get(&sat_id)?;
    let site = scenario.ground_stations.get(verifier)?;
    // Residual of the published elements directly.
    let prop = KeplerJ2::from_elements(published, scenario.epoch);
    let ss: f64 = observations
        .iter()
        .map(|o| {
            let t = scenario.epoch.plus_seconds(o.t_offset_s);
            let ecef = eci_to_ecef(prop.position_at(t), t.gmst());
            let r = site.ecef.distance(ecef) - o.range_km;
            r * r
        })
        .sum();
    let published_rms = (ss / observations.len().max(1) as f64).sqrt();
    if published_rms <= threshold_km {
        return Some(ElementAudit::Consistent { rms_km: published_rms });
    }
    match orbital::od::fit_elements(published, scenario.epoch, site, observations) {
        Ok(fit) if fit.rms_km <= threshold_km => Some(ElementAudit::Forged {
            published_rms_km: published_rms,
            fitted: fit.elements,
            fitted_rms_km: fit.rms_km,
        }),
        _ => Some(ElementAudit::Inconclusive),
    }
}

#[cfg(test)]
mod audit_tests {
    use super::*;
    use orbital::kepler::ClassicalElements;
    use orbital::od::synthesize_observations;

    fn setup_audit() -> (Scenario, ClassicalElements, GroundSite) {
        let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
        let truth = ClassicalElements::circular(
            550.0,
            53f64.to_radians(),
            120f64.to_radians(),
            30f64.to_radians(),
        );
        let site = GroundSite::from_degrees("gs", 25.03, 121.56);
        let mut sc = Scenario::new(epoch);
        sc.add_ground_station("auditor", site.clone());
        (sc, truth, site)
    }

    #[test]
    fn honest_publication_passes_audit() {
        let (mut sc, truth, site) = setup_audit();
        sc.add_satellite(1, truth);
        let obs = synthesize_observations(&truth, sc.epoch, &site, 43_200.0, 30.0, 10.0, 0.1, 3);
        let audit = audit_published_elements(&sc, 1, "auditor", &obs, 1.0).unwrap();
        match audit {
            ElementAudit::Consistent { rms_km } => assert!(rms_km < 1.0),
            other => panic!("expected Consistent, got {other:?}"),
        }
    }

    #[test]
    fn forged_publication_exposed_and_refit() {
        let (mut sc, truth, site) = setup_audit();
        // Publish elements 5 degrees of RAAN away from where the satellite
        // actually flies.
        let forged = ClassicalElements {
            raan_rad: truth.raan_rad + 5f64.to_radians(),
            ..truth
        };
        sc.add_satellite(1, forged);
        let obs = synthesize_observations(&truth, sc.epoch, &site, 43_200.0, 30.0, 10.0, 0.1, 4);
        let audit = audit_published_elements(&sc, 1, "auditor", &obs, 1.0).unwrap();
        match audit {
            ElementAudit::Forged { published_rms_km, fitted, fitted_rms_km } => {
                assert!(published_rms_km > 10.0, "misfit {published_rms_km}");
                assert!(fitted_rms_km < 1.0);
                let d = orbital::math::wrap_pi(fitted.raan_rad - truth.raan_rad).abs();
                assert!(d < 0.01, "refit found the real plane (off by {d} rad)");
            }
            other => panic!("expected Forged, got {other:?}"),
        }
    }

    #[test]
    fn unknown_ids_yield_none() {
        let (sc, truth, site) = setup_audit();
        let obs = synthesize_observations(&truth, sc.epoch, &site, 3600.0, 60.0, 10.0, 0.0, 5);
        assert!(audit_published_elements(&sc, 99, "auditor", &obs, 1.0).is_none());
        assert!(audit_published_elements(&sc, 1, "ghost", &obs, 1.0).is_none());
    }
}

/// Build the shared [`Scenario`] from a validated constellation manifest —
/// the boot path of a real node: read the manifest, verify it, and derive
/// all physics state from it.
pub fn scenario_from_manifest(
    manifest: &mpleo::manifest::ConstellationManifest,
) -> Result<Scenario, mpleo::manifest::ManifestErrors> {
    manifest.validate()?;
    let mut sc = Scenario::new(manifest.epoch());
    sc.min_elevation_deg = manifest.policies.min_elevation_deg;
    for s in &manifest.satellites {
        sc.add_satellite(s.sat_id, s.elements);
    }
    for g in &manifest.ground_stations {
        sc.add_ground_station(
            g.party.clone(),
            GroundSite::from_degrees(g.name.clone(), g.lat_deg, g.lon_deg),
        );
    }
    Ok(sc)
}

#[cfg(test)]
mod manifest_tests {
    use super::*;
    use mpleo::manifest::*;
    use mpleo::party::PartyKind;

    fn manifest() -> ConstellationManifest {
        ConstellationManifest {
            name: "x".into(),
            epoch_utc: (2024, 6, 1, 0, 0, 0.0),
            parties: vec![
                ManifestParty { id: "a".into(), kind: PartyKind::Country },
                ManifestParty { id: "b".into(), kind: PartyKind::Company },
            ],
            satellites: vec![ManifestSatellite {
                sat_id: 7,
                name: "SAT-7".into(),
                owner: "a".into(),
                elements: ClassicalElements::circular(550.0, 53f64.to_radians(), 0.0, 0.0),
            }],
            ground_stations: vec![ManifestGroundStation {
                party: "b".into(),
                name: "gs-b".into(),
                lat_deg: 25.0,
                lon_deg: 121.5,
            }],
            policies: ManifestPolicies { poc_quorum: 2, control_quorum: 2, min_elevation_deg: 30.0 },
        }
    }

    #[test]
    fn scenario_derived_from_manifest() {
        let sc = scenario_from_manifest(&manifest()).expect("valid manifest");
        assert_eq!(sc.min_elevation_deg, 30.0);
        assert!(sc.satellites.contains_key(&7));
        assert!(sc.ground_stations.contains_key("b"));
        assert_eq!(sc.epoch.ymd(), (2024, 6, 1));
        // The derived scenario actually computes physics.
        assert!(sc.computed_elevation_deg(7, "b", 0.0).is_some());
    }

    #[test]
    fn invalid_manifest_refused() {
        let mut m = manifest();
        m.satellites[0].owner = "ghost".into();
        assert!(scenario_from_manifest(&m).is_err());
    }

    #[test]
    fn manifest_json_to_scenario_end_to_end() {
        let text = manifest().to_json();
        let parsed = ConstellationManifest::from_json(&text).unwrap();
        let sc = scenario_from_manifest(&parsed).unwrap();
        assert_eq!(sc.satellites.len(), 1);
    }
}
