//! The embedded city dataset.
//!
//! Selection rule (verbatim from the paper, §2): "the top 20 most populated
//! cities, limited to one per country. We add Melbourne, Australia, to
//! ensure representation from all major continents." Populations are UN
//! 2024 urban-agglomeration estimates in millions; coordinates are the
//! conventional city-center values.

use orbital::frames::Geodetic;
use orbital::ground::GroundSite;
use serde::{Deserialize, Serialize};

/// A city with its population weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct City {
    /// City name.
    pub name: &'static str,
    /// ISO-3166 alpha-2 country code (one city per country by construction).
    pub country: &'static str,
    /// Latitude, degrees north.
    pub lat_deg: f64,
    /// Longitude, degrees east.
    pub lon_deg: f64,
    /// Urban agglomeration population, millions.
    pub population_m: f64,
}

impl City {
    /// The city center as a ground site at sea level.
    pub fn site(&self) -> GroundSite {
        GroundSite::new(self.name, Geodetic::from_degrees(self.lat_deg, self.lon_deg, 0.0))
    }
}

/// Number of cities in the paper's terminal set (20 + Melbourne).
pub const PAPER_CITY_COUNT: usize = 21;

/// The dataset, ordered by population (descending), Melbourne appended
/// last per the paper's construction.
const CITIES: &[City] = &[
    City { name: "Tokyo", country: "JP", lat_deg: 35.6895, lon_deg: 139.6917, population_m: 37.1 },
    City { name: "Delhi", country: "IN", lat_deg: 28.6139, lon_deg: 77.2090, population_m: 33.8 },
    City { name: "Shanghai", country: "CN", lat_deg: 31.2304, lon_deg: 121.4737, population_m: 29.9 },
    City { name: "Dhaka", country: "BD", lat_deg: 23.8103, lon_deg: 90.4125, population_m: 23.9 },
    City { name: "Sao Paulo", country: "BR", lat_deg: -23.5505, lon_deg: -46.6333, population_m: 22.8 },
    City { name: "Cairo", country: "EG", lat_deg: 30.0444, lon_deg: 31.2357, population_m: 22.6 },
    City { name: "Mexico City", country: "MX", lat_deg: 19.4326, lon_deg: -99.1332, population_m: 22.5 },
    City { name: "New York", country: "US", lat_deg: 40.7128, lon_deg: -74.0060, population_m: 18.9 },
    City { name: "Karachi", country: "PK", lat_deg: 24.8607, lon_deg: 67.0011, population_m: 17.8 },
    City { name: "Kinshasa", country: "CD", lat_deg: -4.4419, lon_deg: 15.2663, population_m: 17.0 },
    City { name: "Lagos", country: "NG", lat_deg: 6.5244, lon_deg: 3.3792, population_m: 16.5 },
    City { name: "Istanbul", country: "TR", lat_deg: 41.0082, lon_deg: 28.9784, population_m: 16.0 },
    City { name: "Buenos Aires", country: "AR", lat_deg: -34.6037, lon_deg: -58.3816, population_m: 15.6 },
    City { name: "Manila", country: "PH", lat_deg: 14.5995, lon_deg: 120.9842, population_m: 15.2 },
    City { name: "Moscow", country: "RU", lat_deg: 55.7558, lon_deg: 37.6173, population_m: 12.7 },
    City { name: "Bogota", country: "CO", lat_deg: 4.7110, lon_deg: -74.0721, population_m: 11.6 },
    City { name: "Paris", country: "FR", lat_deg: 48.8566, lon_deg: 2.3522, population_m: 11.3 },
    City { name: "Bangkok", country: "TH", lat_deg: 13.7563, lon_deg: 100.5018, population_m: 11.2 },
    City { name: "Lima", country: "PE", lat_deg: -12.0464, lon_deg: -77.0428, population_m: 11.2 },
    City { name: "Seoul", country: "KR", lat_deg: 37.5665, lon_deg: 126.9780, population_m: 10.0 },
    City { name: "Melbourne", country: "AU", lat_deg: -37.8136, lon_deg: 144.9631, population_m: 5.2 },
];

/// The paper's full 21-city terminal set.
pub fn paper_cities() -> Vec<City> {
    CITIES.to_vec()
}

/// The first `n` cities of the paper's ordering (population-descending;
/// Melbourne is index 20). Used by the Fig. 3 idle-time sweep, which grows
/// the served set from 1 to 21 cities.
pub fn top_cities(n: usize) -> Vec<City> {
    assert!(n >= 1 && n <= CITIES.len(), "n must be in 1..={}", CITIES.len());
    CITIES[..n].to_vec()
}

/// Look up a city by (case-insensitive) name.
pub fn city_by_name(name: &str) -> Option<City> {
    CITIES.iter().find(|c| c.name.eq_ignore_ascii_case(name)).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn count_matches_paper() {
        assert_eq!(paper_cities().len(), PAPER_CITY_COUNT);
    }

    #[test]
    fn one_city_per_country() {
        let countries: HashSet<&str> = CITIES.iter().map(|c| c.country).collect();
        assert_eq!(countries.len(), CITIES.len());
    }

    #[test]
    fn ordered_by_population_with_melbourne_last() {
        for w in CITIES[..CITIES.len() - 1].windows(2) {
            assert!(w[0].population_m >= w[1].population_m, "{} < {}", w[0].name, w[1].name);
        }
        assert_eq!(CITIES.last().unwrap().name, "Melbourne");
    }

    #[test]
    fn all_continents_represented() {
        // Crude continent assignment by country code.
        let continent = |cc: &str| match cc {
            "JP" | "IN" | "CN" | "BD" | "PK" | "PH" | "TH" | "KR" => "Asia",
            "EG" | "CD" | "NG" => "Africa",
            "US" | "MX" => "NorthAmerica",
            "BR" | "AR" | "CO" | "PE" => "SouthAmerica",
            "TR" | "RU" | "FR" => "Europe",
            "AU" => "Oceania",
            other => panic!("unmapped country {other}"),
        };
        let continents: HashSet<&str> = CITIES.iter().map(|c| continent(c.country)).collect();
        assert_eq!(continents.len(), 6);
    }

    #[test]
    fn coordinates_in_range() {
        for c in CITIES {
            assert!(c.lat_deg.abs() <= 60.0, "{} latitude extreme", c.name);
            assert!(c.lon_deg.abs() <= 180.0);
            assert!(c.population_m > 1.0);
        }
    }

    #[test]
    fn top_cities_prefix() {
        assert_eq!(top_cities(1)[0].name, "Tokyo");
        assert_eq!(top_cities(5).len(), 5);
        assert_eq!(top_cities(21).last().unwrap().name, "Melbourne");
    }

    #[test]
    #[should_panic]
    fn top_cities_zero_panics() {
        top_cities(0);
    }

    #[test]
    fn lookup_case_insensitive() {
        assert_eq!(city_by_name("tokyo").unwrap().name, "Tokyo");
        assert_eq!(city_by_name("SEOUL").unwrap().country, "KR");
        assert!(city_by_name("Atlantis").is_none());
    }

    #[test]
    fn sites_have_unit_zenith() {
        for c in CITIES {
            let s = c.site();
            assert!((s.zenith.norm() - 1.0).abs() < 1e-12, "{}", c.name);
        }
    }
}
