//! # geodata — embedded geographic dataset for MP-LEO experiments
//!
//! The paper's experiments (§2, §3.2) place user terminals at "the top 20
//! most populated cities, limited to one per country", plus Melbourne for
//! Australian-continent representation, and a receiver in Taipei for the
//! Taiwan case study. This crate embeds that dataset (UN 2024 urban
//! agglomeration estimates) and provides population weighting, named
//! regions, and conversion into [`orbital::ground::GroundSite`]s.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cities;
pub mod region;

pub use cities::{city_by_name, paper_cities, top_cities, City, PAPER_CITY_COUNT};
pub use region::Region;

use orbital::frames::Geodetic;
use orbital::ground::GroundSite;

/// The Taipei receiver location used in the paper's Fig. 2 experiment
/// ("a receiver at a central location in Taipei, Taiwan").
pub fn taipei() -> GroundSite {
    GroundSite::new("Taipei", Geodetic::from_degrees(25.033, 121.565, 0.01))
}

/// Population-share weights for a set of cities (sums to 1.0).
///
/// These are the weights of the paper's "population weighted coverage over
/// 21 most populous cities" metric (§3.2).
pub fn population_weights(cities: &[City]) -> Vec<f64> {
    let total: f64 = cities.iter().map(|c| c.population_m).sum();
    assert!(total > 0.0, "city set must have positive total population");
    cities.iter().map(|c| c.population_m / total).collect()
}

/// Convert cities to ground sites (terminals at the city centers).
pub fn to_sites(cities: &[City]) -> Vec<GroundSite> {
    cities.iter().map(City::site).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taipei_location() {
        let t = taipei();
        assert!((t.geodetic.latitude_deg() - 25.033).abs() < 1e-9);
        assert!((t.geodetic.longitude_deg() - 121.565).abs() < 1e-9);
    }

    #[test]
    fn weights_sum_to_one() {
        let cities = paper_cities();
        let w = population_weights(&cities);
        assert_eq!(w.len(), cities.len());
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn tokyo_heaviest() {
        let cities = paper_cities();
        let w = population_weights(&cities);
        let (imax, _) = w
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert_eq!(cities[imax].name, "Tokyo");
    }

    #[test]
    fn sites_match_cities() {
        let cities = paper_cities();
        let sites = to_sites(&cities);
        assert_eq!(sites.len(), cities.len());
        assert_eq!(sites[0].name, cities[0].name);
    }
}
