//! Named geographic regions and receiver-grid sampling.
//!
//! Regional coverage (e.g. "Taiwan", the paper's running example) is
//! evaluated by placing a small grid of receivers across the region rather
//! than a single point, so coverage statistics reflect the whole service
//! area.

use orbital::frames::Geodetic;
use orbital::ground::GroundSite;
use serde::{Deserialize, Serialize};

/// A latitude/longitude bounding box describing a service region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Region name.
    pub name: String,
    /// Southern boundary, degrees.
    pub lat_min_deg: f64,
    /// Northern boundary, degrees.
    pub lat_max_deg: f64,
    /// Western boundary, degrees.
    pub lon_min_deg: f64,
    /// Eastern boundary, degrees.
    pub lon_max_deg: f64,
}

impl Region {
    /// Construct a region, validating the bounds.
    pub fn new(name: impl Into<String>, lat_min: f64, lat_max: f64, lon_min: f64, lon_max: f64) -> Self {
        assert!(lat_min < lat_max, "lat bounds inverted");
        assert!(lon_min < lon_max, "lon bounds inverted (wraparound unsupported)");
        assert!((-90.0..=90.0).contains(&lat_min) && (-90.0..=90.0).contains(&lat_max));
        Region {
            name: name.into(),
            lat_min_deg: lat_min,
            lat_max_deg: lat_max,
            lon_min_deg: lon_min,
            lon_max_deg: lon_max,
        }
    }

    /// Taiwan (the paper's motivating region).
    pub fn taiwan() -> Region {
        Region::new("Taiwan", 21.9, 25.3, 120.0, 122.0)
    }

    /// Ukraine (the paper's second motivating scenario).
    pub fn ukraine() -> Region {
        Region::new("Ukraine", 44.4, 52.4, 22.1, 40.2)
    }

    /// South Korea.
    pub fn south_korea() -> Region {
        Region::new("South Korea", 33.1, 38.6, 125.9, 129.6)
    }

    /// The region's center point.
    pub fn center(&self) -> Geodetic {
        Geodetic::from_degrees(
            (self.lat_min_deg + self.lat_max_deg) / 2.0,
            (self.lon_min_deg + self.lon_max_deg) / 2.0,
            0.0,
        )
    }

    /// Whether a geodetic point falls inside the region (boundary points
    /// count as inside, with a degree-roundtrip epsilon).
    pub fn contains(&self, g: &Geodetic) -> bool {
        const EPS: f64 = 1e-9;
        let lat = g.latitude_deg();
        let lon = g.longitude_deg();
        lat >= self.lat_min_deg - EPS
            && lat <= self.lat_max_deg + EPS
            && lon >= self.lon_min_deg - EPS
            && lon <= self.lon_max_deg + EPS
    }

    /// An `n x n` grid of receiver sites spanning the region (inclusive of
    /// the boundary rows/columns for `n >= 2`; `n == 1` yields the center).
    pub fn receiver_grid(&self, n: usize) -> Vec<GroundSite> {
        assert!(n >= 1);
        if n == 1 {
            return vec![GroundSite::new(format!("{}-c", self.name), self.center())];
        }
        let mut sites = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                let fi = i as f64 / (n - 1) as f64;
                let fj = j as f64 / (n - 1) as f64;
                let lat = self.lat_min_deg + fi * (self.lat_max_deg - self.lat_min_deg);
                let lon = self.lon_min_deg + fj * (self.lon_max_deg - self.lon_min_deg);
                sites.push(GroundSite::new(
                    format!("{}-{i}-{j}", self.name),
                    Geodetic::from_degrees(lat, lon, 0.0),
                ));
            }
        }
        sites
    }

    /// Approximate area of the bounding box, km^2 (spherical).
    pub fn area_km2(&self) -> f64 {
        let r = orbital::EARTH_RADIUS_KM;
        let dlat = (self.lat_max_deg - self.lat_min_deg).to_radians();
        let dlon = (self.lon_max_deg - self.lon_min_deg).to_radians();
        let mean_lat = ((self.lat_max_deg + self.lat_min_deg) / 2.0).to_radians();
        r * r * dlat * dlon * mean_lat.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taiwan_contains_taipei() {
        let r = Region::taiwan();
        let taipei = Geodetic::from_degrees(25.033, 121.565, 0.0);
        assert!(r.contains(&taipei));
        let tokyo = Geodetic::from_degrees(35.69, 139.69, 0.0);
        assert!(!r.contains(&tokyo));
    }

    #[test]
    fn center_in_region() {
        for r in [Region::taiwan(), Region::ukraine(), Region::south_korea()] {
            assert!(r.contains(&r.center()), "{}", r.name);
        }
    }

    #[test]
    fn grid_sizes() {
        let r = Region::taiwan();
        assert_eq!(r.receiver_grid(1).len(), 1);
        assert_eq!(r.receiver_grid(3).len(), 9);
        for s in r.receiver_grid(4) {
            assert!(r.contains(&s.geodetic), "{}", s.name);
        }
    }

    #[test]
    fn grid_spans_boundaries() {
        let r = Region::taiwan();
        let g = r.receiver_grid(2);
        let lats: Vec<f64> = g.iter().map(|s| s.geodetic.latitude_deg()).collect();
        assert!(lats.iter().any(|&l| (l - r.lat_min_deg).abs() < 1e-9));
        assert!(lats.iter().any(|&l| (l - r.lat_max_deg).abs() < 1e-9));
    }

    #[test]
    fn taiwan_area_plausible() {
        // Bounding box is bigger than the island (~36k km^2) but far
        // smaller than a continent.
        let a = Region::taiwan().area_km2();
        assert!(a > 50_000.0 && a < 150_000.0, "area {a}");
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_panic() {
        Region::new("bad", 10.0, 5.0, 0.0, 1.0);
    }
}
