//! Built-in scope instrumentation.
//!
//! Every parallel scope records what it did — task count, wall time, summed
//! claimant busy time, and how long its helper jobs sat in the pool queue —
//! into two accumulators: a per-thread one (scopes *started by* that
//! thread; the experiment runner snapshots it around each experiment) and a
//! process-global one. Reading is free of locks on the hot path; recording
//! happens once per scope, not per task.

use std::cell::Cell;
use std::sync::Mutex;

/// Accumulated metrics over one or more parallel scopes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScopeMetrics {
    /// Number of scopes recorded.
    pub scopes: u64,
    /// Total tasks (indices) executed across those scopes.
    pub tasks: u64,
    /// Total claimants (the caller plus every helper that actually ran),
    /// summed over scopes.
    pub workers: u64,
    /// Wall-clock seconds, summed over scopes (caller's view).
    pub wall_s: f64,
    /// Busy seconds summed over every claimant of every scope. `busy_s /
    /// wall_s` is the scope's effective parallelism.
    pub busy_s: f64,
    /// Seconds helper jobs spent queued before a worker picked them up.
    pub queue_wait_s: f64,
}

impl ScopeMetrics {
    pub(crate) const ZERO: ScopeMetrics = ScopeMetrics {
        scopes: 0,
        tasks: 0,
        workers: 0,
        wall_s: 0.0,
        busy_s: 0.0,
        queue_wait_s: 0.0,
    };

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &ScopeMetrics) {
        self.scopes += other.scopes;
        self.tasks += other.tasks;
        self.workers += other.workers;
        self.wall_s += other.wall_s;
        self.busy_s += other.busy_s;
        self.queue_wait_s += other.queue_wait_s;
    }
}

thread_local! {
    static THREAD: Cell<ScopeMetrics> = const { Cell::new(ScopeMetrics::ZERO) };
}

static GLOBAL: Mutex<ScopeMetrics> = Mutex::new(ScopeMetrics::ZERO);

/// Record one finished scope (called by the pool at scope exit, on the
/// thread that started the scope).
pub(crate) fn record(m: ScopeMetrics) {
    THREAD.with(|c| {
        let mut cur = c.get();
        cur.merge(&m);
        c.set(cur);
    });
    GLOBAL.lock().unwrap().merge(&m);
}

/// Metrics of every scope started by the current thread since the last
/// [`take_thread_metrics`].
pub fn thread_metrics() -> ScopeMetrics {
    THREAD.with(|c| c.get())
}

/// Return and reset the current thread's accumulator — the per-experiment
/// delta the runner records into `timing.busy_s` / `timing.queue_wait_s`.
pub fn take_thread_metrics() -> ScopeMetrics {
    THREAD.with(|c| c.replace(ScopeMetrics::ZERO))
}

/// Process-wide accumulated metrics (never reset).
pub fn global_metrics() -> ScopeMetrics {
    *GLOBAL.lock().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = ScopeMetrics { scopes: 1, tasks: 10, workers: 2, wall_s: 1.0, busy_s: 1.5, queue_wait_s: 0.25 };
        a.merge(&a.clone());
        assert_eq!(a.scopes, 2);
        assert_eq!(a.tasks, 20);
        assert_eq!(a.workers, 4);
        assert!((a.busy_s - 3.0).abs() < 1e-12);
    }

    #[test]
    fn take_resets_thread_accumulator() {
        record(ScopeMetrics { scopes: 1, tasks: 3, ..ScopeMetrics::ZERO });
        let taken = take_thread_metrics();
        assert!(taken.scopes >= 1);
        assert_eq!(thread_metrics(), ScopeMetrics::ZERO);
    }
}
