//! # simrt — the shared deterministic execution runtime
//!
//! One persistent worker pool under every parallel code path in the
//! workspace: the ephemeris build, the visibility kernel, the Monte-Carlo
//! harness, and the experiment runner's per-figure fan-out. Before this
//! crate each of those carried its own copy of scoped-thread chunking code
//! and spawned fresh OS threads on every call; now they all share one pool
//! built once per process.
//!
//! ## Execution model
//!
//! A parallel *scope* ([`par_map_indexed`], [`par_map_indexed_with`],
//! [`par_for_each_mut`], [`par_chunks`]) is a caller-participation
//! construct: the calling thread enqueues up to `cap - 1` *helper* jobs on
//! the pool and then joins the same index-claiming loop itself. Indices are
//! claimed in blocks from a shared atomic counter, so a scope always makes
//! progress even when every worker is busy elsewhere — the caller alone can
//! finish the whole scope. Each claimant builds its task closure once from
//! a shared factory, which is how [`par_map_indexed_with`] hands every
//! participant a persistent thread-local scratch (built once, reused for
//! every index that participant claims, never sent across threads). At
//! scope exit, helpers that never started are cancelled (a queued job is a
//! single compare-and-swap away from being a no-op) and running helpers are
//! waited for; no work outlives the scope, so task closures may borrow
//! from the caller's stack.
//!
//! ## Determinism contract
//!
//! The primitives assign *work by index, results by index*: slot `i` of the
//! output is always `f(i)`, no matter which thread ran it or in what order
//! indices were claimed. Any caller whose `f(i)` is itself deterministic
//! (e.g. a Monte-Carlo body seeded from `run_rng(seed, i)`) therefore gets
//! bit-identical results at every thread count — determinism by
//! construction, not by locking.
//!
//! ## Nesting budget
//!
//! Helper slots are metered by a global token budget equal to the worker
//! count. A scope takes as many tokens as it can (non-blocking) and returns
//! them at exit; a nested scope that finds the budget empty simply runs
//! inline on its calling thread. Outer parallelism (the experiment runner's
//! per-figure fan-out) and inner parallelism (a figure's Monte-Carlo loop)
//! therefore share one core budget instead of multiplying into
//! oversubscription, and nesting can never deadlock: blocking waits happen
//! only on helpers that are actively running on dedicated pool threads.
//!
//! ## Panics
//!
//! A panic in any task closure stops further index claiming, is carried to
//! the scope's caller, and is re-raised there with the original payload.
//! The pool itself survives; on the panic path [`par_map_indexed`] leaks
//! the already-produced elements rather than risk dropping uninitialized
//! slots.
//!
//! ## Configuration
//!
//! The pool size resolves exactly once, from one place (the fix for the
//! old scattered `available_parallelism().unwrap_or(4)` fallbacks):
//! [`configure`] (CLI `--threads`) wins over a validated `MPLEO_THREADS`
//! environment override, which wins over [`available_parallelism`].
//! `0` always means "auto". [`with_thread_cap`] additionally caps scopes
//! started by the current thread, which is how the determinism tests run
//! threads=1 and threads=4 inside one process (the global pool cannot be
//! resized once built).

mod metrics;
mod pool;

pub use metrics::{global_metrics, take_thread_metrics, thread_metrics, ScopeMetrics};
pub use pool::{par_chunks, par_for_each_mut, par_map_indexed, par_map_indexed_with};

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Explicit thread-count override set by [`configure`]; `0` = unset.
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// The environment/auto part of the resolution, computed once.
static ENV_BASE: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Per-thread scope cap installed by [`with_thread_cap`]; `0` = none.
    static THREAD_CAP: Cell<usize> = const { Cell::new(0) };
}

/// The environment variable consulted by [`threads`].
pub const THREADS_ENV: &str = "MPLEO_THREADS";

/// An invalid `MPLEO_THREADS` value (see [`env_threads`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidThreads {
    /// The rejected value.
    pub value: String,
}

impl std::fmt::Display for InvalidThreads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{THREADS_ENV}={:?} is invalid: expected a non-negative integer (0 = auto)",
            self.value
        )
    }
}

impl std::error::Error for InvalidThreads {}

/// Parse an `MPLEO_THREADS`-style value. `None`, the empty string, and `"0"`
/// all mean "auto" (`Ok(None)`); a positive integer is an explicit count;
/// anything else is rejected loudly — never silently defaulted.
pub fn env_threads(value: Option<&str>) -> Result<Option<usize>, InvalidThreads> {
    let v = match value {
        None => return Ok(None),
        Some("") => return Ok(None),
        Some(v) => v,
    };
    match v.parse::<usize>() {
        Ok(0) => Ok(None),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(InvalidThreads { value: v.to_string() }),
    }
}

/// The machine's available parallelism, defaulting to 1 (not a made-up
/// count) when the platform cannot report it.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Set the process-wide thread count (`0` = back to auto). Call before the
/// first parallel scope for full effect: the pool is sized on first use, so
/// a later `configure` to a *smaller* count still caps concurrency, but a
/// larger one cannot grow an already-built pool.
pub fn configure(threads: usize) {
    CONFIGURED.store(threads, Ordering::Relaxed);
}

/// The resolved process-wide thread count: [`configure`] override, else a
/// validated `MPLEO_THREADS`, else [`available_parallelism`]. Panics (with
/// the [`InvalidThreads`] message) on a malformed `MPLEO_THREADS` — callers
/// wanting a `Result` should pre-validate via [`env_threads`], as the bench
/// harness does in `Fidelity::from_env`.
pub fn threads() -> usize {
    let explicit = CONFIGURED.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    *ENV_BASE.get_or_init(|| {
        match env_threads(std::env::var(THREADS_ENV).ok().as_deref()) {
            Ok(Some(n)) => n,
            Ok(None) => available_parallelism(),
            Err(e) => panic!("simrt: {e}"),
        }
    })
}

/// Run `f` with every parallel scope *started by this thread* capped at
/// `cap` claimants (`0` = uncapped). `cap = 1` forces those scopes inline,
/// which also carries the cap into any scopes they start transitively (they
/// run on this thread too). The previous cap is restored on exit, panic
/// included.
pub fn with_thread_cap<R>(cap: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_CAP.with(|c| c.set(self.0));
        }
    }
    let prev = THREAD_CAP.with(|c| c.replace(cap));
    let _restore = Restore(prev);
    f()
}

/// The concrete claimant bound for a scope: the smallest of the requested
/// cap, the caller's [`with_thread_cap`], and the global [`threads`] count
/// (`0` anywhere = unbounded), floored at 1.
pub(crate) fn effective_cap(cap: usize) -> usize {
    let mut eff = threads();
    if cap > 0 {
        eff = eff.min(cap);
    }
    let tl = THREAD_CAP.with(|c| c.get());
    if tl > 0 {
        eff = eff.min(tl);
    }
    eff.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_threads_accepts_auto_and_counts() {
        assert_eq!(env_threads(None), Ok(None));
        assert_eq!(env_threads(Some("")), Ok(None));
        assert_eq!(env_threads(Some("0")), Ok(None));
        assert_eq!(env_threads(Some("1")), Ok(Some(1)));
        assert_eq!(env_threads(Some("16")), Ok(Some(16)));
    }

    #[test]
    fn env_threads_rejects_garbage_loudly() {
        for bad in ["four", "-1", "2.5", " 2", "0x4"] {
            let err = env_threads(Some(bad)).unwrap_err();
            assert_eq!(err.value, bad);
            assert!(err.to_string().contains(THREADS_ENV), "{err}");
        }
    }

    #[test]
    fn thread_cap_nests_and_restores() {
        with_thread_cap(4, || {
            assert_eq!(effective_cap(0), 4.min(threads()).max(1));
            with_thread_cap(2, || {
                assert!(effective_cap(0) <= 2);
                assert_eq!(effective_cap(1), 1);
            });
            assert!(effective_cap(0) <= 4);
        });
        // Restored to uncapped.
        assert_eq!(effective_cap(0), threads());
    }

    #[test]
    fn effective_cap_is_at_least_one() {
        assert!(effective_cap(0) >= 1);
        assert_eq!(effective_cap(1), 1);
    }
}
