//! The persistent worker pool and the order-preserving parallel primitives.
//!
//! See the crate docs for the execution model. The short version: a scope
//! is a shared [`JobCore`] on the caller's stack; the caller and up to
//! `cap - 1` pool workers claim index blocks from its atomic counter. The
//! caller always participates, helpers are best-effort, and the scope does
//! not return until every helper that *started* has finished — which is
//! what makes the stack borrow sound.

use crate::metrics::{self, ScopeMetrics};
use std::any::Any;
use std::collections::VecDeque;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Helper-slot lifecycle: a worker moves `QUEUED -> RUNNING`, the owning
/// scope's exit path moves `QUEUED -> CANCELLED`; exactly one CAS wins.
const QUEUED: u8 = 0;
const RUNNING: u8 = 1;
const CANCELLED: u8 = 2;

/// One participant's task closure: built once per claimant by the scope's
/// factory, then driven over every index that claimant wins. Being `FnMut`
/// is the point — the closure owns per-participant scratch that persists
/// across calls without ever crossing a thread boundary.
type Task<'a> = Box<dyn FnMut(usize) + 'a>;

/// The shared state of one parallel scope. Lives on the caller's stack for
/// the duration of the scope; helpers reach it through a raw pointer that
/// the slot-state protocol keeps from dangling.
struct JobCore<'a> {
    /// Participant factory: every claimant (caller and each helper) calls
    /// this exactly once to build its own [`Task`], so scratch state lives
    /// thread-local for the whole claim loop and needs no `Send` bound.
    make: &'a (dyn Fn() -> Task<'a> + Sync),
    n: usize,
    /// Indices are claimed in blocks of this size (smaller blocks balance
    /// uneven tasks, larger ones amortize the atomic).
    block: usize,
    next: AtomicUsize,
    /// Set on the first panic; stops further claiming everywhere.
    panicked: AtomicBool,
    /// The first panic payload, re-raised on the caller.
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
    busy_ns: AtomicU64,
    queue_wait_ns: AtomicU64,
    /// Helpers that won their CAS and actually worked on this scope.
    helpers: AtomicUsize,
}

impl JobCore<'_> {
    /// Record the first panic payload and stop further claiming everywhere.
    fn note_panic(&self, payload: Box<dyn Any + Send>) {
        self.panicked.store(true, Ordering::Relaxed);
        let mut slot = self.panic_payload.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// The claim loop every participant (caller and helpers) runs: build
    /// this participant's task once, then drive it over claimed blocks.
    fn work(&self) {
        let t0 = Instant::now();
        // The factory itself may panic (a scratch constructor); it must be
        // caught here, not unwound through a pool worker's stack.
        let mut task = match catch_unwind(AssertUnwindSafe(self.make)) {
            Ok(task) => task,
            Err(payload) => {
                self.note_panic(payload);
                self.busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                return;
            }
        };
        loop {
            if self.panicked.load(Ordering::Relaxed) {
                break;
            }
            let start = self.next.fetch_add(self.block, Ordering::Relaxed);
            if start >= self.n {
                break;
            }
            let end = (start + self.block).min(self.n);
            for i in start..end {
                if self.panicked.load(Ordering::Relaxed) {
                    break;
                }
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
                    self.note_panic(payload);
                }
            }
        }
        self.busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// One enqueued helper job. `Arc`-shared between the owning scope and the
/// pool queue, so a cancelled slot lingering in the queue is harmless: the
/// worker that eventually pops it loses the state CAS and never touches
/// `job`.
struct HelperSlot {
    state: AtomicU8,
    /// Points at the owning scope's [`JobCore`]. Only dereferenced after
    /// winning `QUEUED -> RUNNING`, which the scope's exit path observes
    /// and waits out — so the pointee is always alive when read.
    job: *const JobCore<'static>,
    submitted: Instant,
    done: Mutex<bool>,
    cv: Condvar,
}

// SAFETY: the raw pointer is only dereferenced under the state protocol
// described on `job`; everything else in the slot is Sync.
unsafe impl Send for HelperSlot {}
unsafe impl Sync for HelperSlot {}

struct PoolShared {
    queue: Mutex<VecDeque<Arc<HelperSlot>>>,
    ready: Condvar,
    /// The nesting budget: helper tokens available, total == worker count.
    /// Scopes acquire non-blocking and release at exit; an empty budget
    /// degrades a scope to inline execution instead of oversubscribing.
    tokens: AtomicUsize,
}

struct Pool {
    shared: Arc<PoolShared>,
    workers: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// The process pool, built on first use with `threads() - 1` workers
/// (the calling thread is always the `1`). Workers are detached and live
/// for the rest of the process.
fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let workers = crate::threads().saturating_sub(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            tokens: AtomicUsize::new(workers),
        });
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("simrt-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("simrt: cannot spawn worker thread");
        }
        Pool { shared, workers }
    })
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let slot = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(slot) = queue.pop_front() {
                    break slot;
                }
                queue = shared.ready.wait(queue).unwrap();
            }
        };
        if slot
            .state
            .compare_exchange(QUEUED, RUNNING, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            // The owning scope finished and cancelled this slot first.
            continue;
        }
        let wait_ns = slot.submitted.elapsed().as_nanos() as u64;
        // SAFETY: winning QUEUED -> RUNNING pins the owning scope inside
        // run_scope (its exit path waits on `done`), so the JobCore is
        // alive for the whole call below.
        let core = unsafe { &*slot.job };
        core.queue_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
        core.helpers.fetch_add(1, Ordering::Relaxed);
        core.work();
        // Publish completion last; the Mutex handshake also makes every
        // result written above visible to the scope's caller.
        let mut done = slot.done.lock().unwrap();
        *done = true;
        slot.cv.notify_all();
    }
}

/// Take up to `want` helper tokens without blocking; returns how many were
/// actually acquired (possibly 0 — the inline-degradation path).
fn acquire_tokens(shared: &PoolShared, want: usize) -> usize {
    let mut have = shared.tokens.load(Ordering::Relaxed);
    loop {
        let take = have.min(want);
        if take == 0 {
            return 0;
        }
        match shared.tokens.compare_exchange_weak(
            have,
            have - take,
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => return take,
            Err(actual) => have = actual,
        }
    }
}

/// The scope core every public primitive compiles down to: each claimant
/// builds a task via `make` once, then the tasks jointly cover `0..n` with
/// at most `effective_cap(cap)` claimants, caller included.
fn run_scope<'a>(n: usize, cap: usize, make: &'a (dyn Fn() -> Task<'a> + Sync)) {
    if n == 0 {
        return;
    }
    let wall0 = Instant::now();
    let cap = crate::effective_cap(cap);
    let core = JobCore {
        make,
        n,
        block: (n / (cap * 4)).max(1),
        next: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        panic_payload: Mutex::new(None),
        busy_ns: AtomicU64::new(0),
        queue_wait_ns: AtomicU64::new(0),
        helpers: AtomicUsize::new(0),
    };

    let want_helpers = cap.min(n).saturating_sub(1);
    let p = if want_helpers > 0 { Some(pool()) } else { None };
    let got = match p {
        Some(p) => acquire_tokens(&p.shared, want_helpers.min(p.workers)),
        None => 0,
    };
    let slots: Vec<Arc<HelperSlot>> = (0..got)
        .map(|_| {
            Arc::new(HelperSlot {
                state: AtomicU8::new(QUEUED),
                job: (&core as *const JobCore<'_>).cast::<JobCore<'static>>(),
                submitted: Instant::now(),
                done: Mutex::new(false),
                cv: Condvar::new(),
            })
        })
        .collect();
    if got > 0 {
        let p = p.expect("tokens imply a pool");
        let mut queue = p.shared.queue.lock().unwrap();
        for slot in &slots {
            queue.push_back(Arc::clone(slot));
        }
        drop(queue);
        p.shared.ready.notify_all();
    }

    core.work();

    // Retire every helper: cancel the ones still queued, wait out the ones
    // that started. Waits are only ever on jobs actively running on
    // dedicated pool threads, so nested scopes cannot deadlock.
    for slot in &slots {
        if slot
            .state
            .compare_exchange(QUEUED, CANCELLED, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            let mut done = slot.done.lock().unwrap();
            while !*done {
                done = slot.cv.wait(done).unwrap();
            }
        }
    }
    if got > 0 {
        p.expect("tokens imply a pool").shared.tokens.fetch_add(got, Ordering::AcqRel);
    }

    metrics::record(ScopeMetrics {
        scopes: 1,
        tasks: n as u64,
        workers: 1 + core.helpers.load(Ordering::Relaxed) as u64,
        wall_s: wall0.elapsed().as_secs_f64(),
        busy_s: core.busy_ns.load(Ordering::Relaxed) as f64 * 1e-9,
        queue_wait_s: core.queue_wait_ns.load(Ordering::Relaxed) as f64 * 1e-9,
    });

    let payload = core.panic_payload.lock().unwrap().take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// A raw pointer that may cross threads. Soundness is the caller's
/// obligation: every use in this module writes disjoint, index-owned slots.
struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Map `f` over `0..n` on the shared pool and collect the results in index
/// order: `out[i] == f(i)` regardless of thread count or scheduling, which
/// is the workspace's determinism contract.
///
/// `cap` bounds the claimants for this scope (`0` = the process default);
/// the caller participates, so `cap = 1` runs inline. A panic in `f` is
/// re-raised here with its original payload after the scope quiesces; the
/// partially-built output is leaked, not dropped.
pub fn par_map_indexed<T, F>(n: usize, cap: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_indexed_with(n, cap, || (), move |(), i| f(i))
}

/// [`par_map_indexed`] with persistent per-participant scratch: every
/// claimant (the caller and each recruited helper) calls `init()` exactly
/// once and then reuses that scratch for every index it claims, so `f` can
/// run allocation-free in steady state. The scratch never crosses a thread
/// boundary — it needs no `Send` bound and its mutations are invisible to
/// other participants, so the determinism contract is unchanged:
/// `out[i] == f(scratch, i)` must depend only on `i`, never on which
/// indices the same participant saw before.
///
/// `cap` and panic semantics as in [`par_map_indexed`]; a panicking
/// `init()` is carried to the caller the same way a panicking `f` is.
pub fn par_map_indexed_with<T, S, I, F>(n: usize, cap: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    out.resize_with(n, MaybeUninit::uninit);
    let base = SendPtr(out.as_mut_ptr());
    let init = &init;
    let f = &f;
    run_scope(n, cap, &move || -> Task<'_> {
        let mut scratch = init();
        Box::new(move |i| {
            let base = base;
            // SAFETY: index i is claimed by exactly one participant, and
            // slot i is written only by the claimant of i.
            unsafe {
                (*base.0.add(i)).write(f(&mut scratch, i));
            }
        })
    });
    // run_scope returned normally, so every slot was claimed and written.
    let mut out = ManuallyDrop::new(out);
    let (ptr, len, capacity) = (out.as_mut_ptr(), out.len(), out.capacity());
    // SAFETY: Vec<MaybeUninit<T>> and Vec<T> share layout; all n slots are
    // initialized (see above).
    unsafe { Vec::from_raw_parts(ptr as *mut T, len, capacity) }
}

/// Run `f(i, &mut items[i])` for every element on the shared pool. Element
/// disjointness makes the `&mut` handouts sound; `cap` as in
/// [`par_map_indexed`].
pub fn par_for_each_mut<T, F>(items: &mut [T], cap: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let base = SendPtr(items.as_mut_ptr());
    let f = &f;
    run_scope(n, cap, &move || -> Task<'_> {
        Box::new(move |i| {
            let base = base;
            // SAFETY: index i is claimed exactly once, so this is the only
            // live &mut to items[i].
            f(i, unsafe { &mut *base.0.add(i) });
        })
    });
}

/// Split `items` into contiguous chunks of (at most) `chunk` elements and
/// run `f(chunk_index, chunk)` for each on the shared pool — the shape the
/// columnar ephemeris build wants.
pub fn par_chunks<T, F>(items: &mut [T], chunk: usize, cap: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let mut chunks: Vec<&mut [T]> = items.chunks_mut(chunk).collect();
    par_for_each_mut(&mut chunks, cap, |i, slice| f(i, slice));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_index_order() {
        let out = par_map_indexed(10_000, 0, |i| i * 3);
        assert_eq!(out.len(), 10_000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn map_handles_tiny_and_empty() {
        assert_eq!(par_map_indexed(0, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, 0, |i| i + 7), vec![7]);
        assert_eq!(par_map_indexed(3, 1, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn map_propagates_panics_and_pool_survives() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map_indexed(256, 0, |i| {
                if i == 97 {
                    panic!("boom at 97");
                }
                i
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("boom at 97"), "unexpected payload {msg:?}");
        // The pool must keep working after a panicked scope.
        let out = par_map_indexed(1000, 0, |i| i + 1);
        assert_eq!(out[999], 1000);
    }

    #[test]
    fn map_with_builds_scratch_once_per_participant() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        crate::with_thread_cap(1, || {
            let out = par_map_indexed_with(
                5000,
                0,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::<u64>::with_capacity(64)
                },
                |scratch, i| {
                    // Deterministic use of reused scratch: refill from i
                    // every call, so the result depends only on i.
                    scratch.clear();
                    scratch.extend((0..16).map(|j| (i + j) as u64));
                    scratch.iter().sum::<u64>()
                },
            );
            assert_eq!(inits.load(Ordering::Relaxed), 1, "one participant, one scratch");
            for (i, v) in out.iter().enumerate() {
                let expect: u64 = (0..16).map(|j| (i + j) as u64).sum();
                assert_eq!(*v, expect);
            }
        });
    }

    #[test]
    fn map_with_results_are_thread_count_invariant() {
        let run = |cap: usize| {
            crate::with_thread_cap(cap, || {
                par_map_indexed_with(
                    2048,
                    0,
                    || vec![0u64; 32],
                    |scratch, i| {
                        for (j, s) in scratch.iter_mut().enumerate() {
                            *s = (i * 31 + j) as u64;
                        }
                        scratch.iter().fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(*b))
                    },
                )
            })
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn map_with_propagates_init_panics_and_pool_survives() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map_indexed_with(64, 0, || panic!("bad init"), |_: &mut (), i| i)
        }));
        let payload = caught.expect_err("init panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("bad init"), "unexpected payload {msg:?}");
        let out = par_map_indexed(100, 0, |i| i + 1);
        assert_eq!(out[99], 100);
    }

    #[test]
    fn for_each_mut_writes_disjoint_slots() {
        let mut v = vec![0u64; 5000];
        par_for_each_mut(&mut v, 0, |i, slot| *slot = i as u64 * 2);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as u64 * 2);
        }
    }

    #[test]
    fn chunks_cover_everything_in_order() {
        let mut v = vec![0usize; 1003];
        par_chunks(&mut v, 64, 0, |ci, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = ci * 64 + k;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    fn nested_scopes_complete_without_deadlock() {
        let outer = par_map_indexed(8, 0, |o| {
            let inner = par_map_indexed(500, 0, |i| (o * 500 + i) as u64);
            inner.iter().sum::<u64>()
        });
        for (o, sum) in outer.iter().enumerate() {
            let lo = (o * 500) as u64;
            let expect: u64 = (lo..lo + 500).sum();
            assert_eq!(*sum, expect, "outer {o}");
        }
    }

    #[test]
    fn concurrent_foreign_scopes_do_not_interfere() {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for round in 0..20 {
                        let out = par_map_indexed(200, 0, |i| t * 1_000_000 + round * 1000 + i);
                        for (i, v) in out.iter().enumerate() {
                            assert_eq!(*v, t * 1_000_000 + round * 1000 + i);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn thread_cap_one_is_fully_inline() {
        crate::with_thread_cap(1, || {
            let before = crate::take_thread_metrics();
            let _ = before;
            let out = par_map_indexed(100, 0, |i| i);
            assert_eq!(out[99], 99);
            let m = crate::take_thread_metrics();
            assert_eq!(m.scopes, 1);
            assert_eq!(m.tasks, 100);
            assert_eq!(m.workers, 1, "cap 1 must not recruit helpers");
        });
    }

    #[test]
    fn metrics_record_tasks_and_time() {
        let _ = crate::take_thread_metrics();
        let _ = par_map_indexed(64, 0, |i| {
            // Enough work to register nonzero busy time.
            (0..500).fold(i as u64, |a, b| a.wrapping_add(b))
        });
        let m = crate::take_thread_metrics();
        assert_eq!(m.scopes, 1);
        assert_eq!(m.tasks, 64);
        assert!(m.workers >= 1);
        assert!(m.wall_s >= 0.0);
        assert!(m.busy_s > 0.0);
    }
}
