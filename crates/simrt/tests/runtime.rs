//! Integration tests for the public simrt surface: the determinism
//! contract (index-ordered results at any thread count), panic
//! propagation, and nesting under the token budget.

use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn par_map_indexed_is_order_preserving_at_every_cap() {
    for cap in [0, 1, 2, 3, 8] {
        let out = simrt::par_map_indexed(4096, cap, |i| i as u64 * 7 + 3);
        assert_eq!(out.len(), 4096);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 7 + 3, "cap {cap}, index {i}");
        }
    }
}

#[test]
fn results_are_bit_identical_across_thread_caps() {
    // A float-producing body whose per-index value depends only on the
    // index: threads=1 and threads=many must agree to the bit.
    let body = |i: usize| {
        let x = (i as f64 + 1.0).sqrt();
        x.sin() * x.cos() + x.ln()
    };
    let serial = simrt::with_thread_cap(1, || simrt::par_map_indexed(10_000, 0, body));
    let parallel = simrt::par_map_indexed(10_000, 0, body);
    for i in 0..serial.len() {
        assert_eq!(
            serial[i].to_bits(),
            parallel[i].to_bits(),
            "index {i} differs between serial and parallel"
        );
    }
}

#[test]
fn panic_payload_reaches_the_caller() {
    let err = catch_unwind(AssertUnwindSafe(|| {
        simrt::par_map_indexed(512, 0, |i| {
            if i == 300 {
                panic!("index {i} exploded");
            }
            i
        })
    }))
    .expect_err("the task panic must surface in the caller");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("exploded"), "unexpected payload: {msg:?}");

    // And the runtime still works afterwards.
    let ok = simrt::par_map_indexed(64, 0, |i| i);
    assert_eq!(ok.len(), 64);
}

#[test]
fn nested_fan_out_matches_sequential_reference() {
    let nested: Vec<u64> = simrt::par_map_indexed(6, 0, |outer| {
        simrt::par_map_indexed(1000, 0, |inner| (outer * 1000 + inner) as u64)
            .into_iter()
            .sum()
    });
    let reference: Vec<u64> = (0..6u64)
        .map(|outer| (0..1000u64).map(|inner| outer * 1000 + inner).sum())
        .collect();
    assert_eq!(nested, reference);
}

#[test]
fn scope_metrics_accumulate_per_thread() {
    let _ = simrt::take_thread_metrics();
    let _ = simrt::par_map_indexed(128, 0, |i| i * 2);
    let _ = simrt::par_map_indexed(64, 0, |i| i + 1);
    let m = simrt::take_thread_metrics();
    assert_eq!(m.scopes, 2);
    assert_eq!(m.tasks, 192);
    assert!(m.workers >= 2, "at least the caller per scope");
    assert!(m.wall_s >= 0.0 && m.busy_s >= 0.0 && m.queue_wait_s >= 0.0);
    // Taking drained the accumulator.
    assert_eq!(simrt::thread_metrics(), simrt::ScopeMetrics::default());
}
