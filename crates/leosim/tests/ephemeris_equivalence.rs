//! Equivalence property: the store-backed visibility kernel is bit-identical
//! to the pre-refactor per-step propagation path.
//!
//! `reference_visibility` below is a faithful copy of the per-step
//! implementation `VisibilityTable::compute` used before the ephemeris layer
//! existed: per satellite, instantiate the configured propagator, and per
//! grid step propagate, rotate to ECEF with the grid's precomputed GMST, and
//! screen against every site. Any divergence — a reordered float operation,
//! a lossy cache round trip, a racy chunk boundary — fails these tests
//! exactly, not within a tolerance.

use leosim::bitset::TimeBitset;
use leosim::ephemeris::EphemerisStore;
use leosim::visibility::{PropagatorKind, SimConfig, VisibilityTable};
use leosim::TimeGrid;
use orbital::constellation::{walker_delta, Satellite, ShellSpec};
use orbital::frames::eci_to_ecef;
use orbital::ground::GroundSite;
use orbital::propagator::{KeplerJ2, Propagator, Sgp4};
use orbital::time::Epoch;

fn epoch() -> Epoch {
    Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
}

fn pool() -> Vec<Satellite> {
    let spec = ShellSpec { planes: 8, sats_per_plane: 6, ..ShellSpec::starlink_like() };
    walker_delta(&spec, epoch())
}

fn sites() -> Vec<GroundSite> {
    vec![
        GroundSite::from_degrees("Taipei", 25.03, 121.56),
        GroundSite::from_degrees("Tokyo", 35.69, 139.69),
        GroundSite::from_degrees("Lagos", 6.52, 3.38),
    ]
}

/// The pre-refactor per-step visibility path, kept verbatim as the oracle.
fn reference_visibility(
    sats: &[Satellite],
    sites: &[GroundSite],
    grid: &TimeGrid,
    config: &SimConfig,
) -> Vec<Vec<TimeBitset>> {
    let sin_mask = config.min_elevation_deg.to_radians().sin();
    sats.iter()
        .map(|sat| {
            let mut row: Vec<TimeBitset> =
                (0..sites.len()).map(|_| TimeBitset::zeros(grid.steps)).collect();
            let kj2;
            let sgp4;
            let prop: &dyn Propagator = match config.propagator {
                PropagatorKind::KeplerJ2 => {
                    kj2 = KeplerJ2::from_elements(&sat.elements, sat.epoch);
                    &kj2
                }
                PropagatorKind::Sgp4 => {
                    let tle = sat.to_tle();
                    sgp4 = Sgp4::from_tle(&tle).expect("constellation TLEs are near-Earth");
                    &sgp4
                }
            };
            for k in 0..grid.steps {
                let eci = prop.position_at(grid.epoch_at(k));
                let ecef = eci_to_ecef(eci, grid.gmst_at(k));
                for (si, site) in sites.iter().enumerate() {
                    if site.sees_ecef_sin(ecef, sin_mask) {
                        row[si].set(k);
                    }
                }
            }
            row
        })
        .collect()
}

fn assert_tables_identical(vt: &VisibilityTable, reference: &[Vec<TimeBitset>], label: &str) {
    assert_eq!(vt.sat_count(), reference.len(), "{label}: satellite count");
    for (s, row) in reference.iter().enumerate() {
        for (site, bits) in row.iter().enumerate() {
            assert_eq!(vt.bitset(s, site), bits, "{label}: sat {s} site {site}");
        }
    }
}

#[test]
fn store_path_bit_identical_across_masks_and_threads() {
    let sats = pool();
    let sites = sites();
    let grid = TimeGrid::new(epoch(), 12.0 * 3600.0, 120.0);
    for mask in [10.0, 25.0, 40.0] {
        for threads in [1usize, 4] {
            let cfg = SimConfig { threads, ..SimConfig::default().with_mask_deg(mask) };
            let reference = reference_visibility(&sats, &sites, &grid, &cfg);
            let store = EphemerisStore::build(&sats, &grid, &cfg);
            let vt = VisibilityTable::from_store(&store, &sites, &cfg);
            assert_tables_identical(&vt, &reference, &format!("mask {mask} threads {threads}"));
            // The one-shot convenience must agree too.
            let direct = VisibilityTable::compute(&sats, &sites, &grid, &cfg);
            assert_tables_identical(&direct, &reference, &format!("compute mask {mask}"));
        }
    }
}

#[test]
fn store_path_bit_identical_for_sgp4() {
    let sats = pool();
    let sites = sites();
    let grid = TimeGrid::new(epoch(), 6.0 * 3600.0, 120.0);
    let cfg = SimConfig { propagator: PropagatorKind::Sgp4, ..Default::default() };
    let reference = reference_visibility(&sats, &sites, &grid, &cfg);
    let store = EphemerisStore::build(&sats, &grid, &cfg);
    let vt = VisibilityTable::from_store(&store, &sites, &cfg);
    assert_tables_identical(&vt, &reference, "sgp4");
}

#[test]
fn cached_store_bit_identical_to_fresh_build() {
    let sats = pool();
    let sites = sites();
    let grid = TimeGrid::new(epoch(), 6.0 * 3600.0, 120.0);
    let cfg = SimConfig::default();
    let path = std::env::temp_dir()
        .join(format!("mpleo-equivalence-cache-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let fresh = EphemerisStore::load_or_build(&sats, &grid, &cfg, Some(&path));
    let cached = EphemerisStore::load_or_build(&sats, &grid, &cfg, Some(&path));
    let reference = reference_visibility(&sats, &sites, &grid, &cfg);
    assert_tables_identical(
        &VisibilityTable::from_store(&fresh, &sites, &cfg),
        &reference,
        "fresh store",
    );
    assert_tables_identical(
        &VisibilityTable::from_store(&cached, &sites, &cfg),
        &reference,
        "cache round-tripped store",
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn subset_rows_bit_identical_to_reference_subset() {
    let sats = pool();
    let sites = sites();
    let grid = TimeGrid::new(epoch(), 6.0 * 3600.0, 120.0);
    let cfg = SimConfig::default();
    let store = EphemerisStore::build(&sats, &grid, &cfg);
    let picks = [17usize, 3, 41, 8];
    let subset_sats: Vec<Satellite> = picks.iter().map(|&i| sats[i].clone()).collect();
    let reference = reference_visibility(&subset_sats, &sites, &grid, &cfg);
    let vt = VisibilityTable::from_store_subset(&store, &picks, &sites, &cfg);
    assert_tables_identical(&vt, &reference, "subset");
    // select() then from_store must agree as well.
    let selected = store.select(&picks);
    let vt2 = VisibilityTable::from_store(&selected, &sites, &cfg);
    assert_tables_identical(&vt2, &reference, "select + from_store");
}
