//! Regression tests for the config-plumbing bug fixed by the ephemeris
//! refactor: `CoverageMap::compute`, `bentpipe_latency`, `isl_connectivity`
//! and the contact-volume path used to hardcode `KeplerJ2` (and single-
//! threaded loops), silently ignoring `SimConfig::propagator` and
//! `SimConfig::threads`. They now all route through `EphemerisStore::build`,
//! which honors both. These tests pin that behaviour:
//!
//! * SGP4-configured runs must differ from KeplerJ2 runs (the models are
//!   kilometres apart over a day, far beyond any float noise), and must
//!   agree exactly with an explicitly SGP4-built store — proving the config
//!   actually reaches the propagation layer.
//! * Thread count must not change any output bit.

use leosim::bentpipe::{isl_connectivity, isl_connectivity_from_store};
use leosim::contacts::{contact_volume_bits_from_store, ContactPlan};
use leosim::coveragemap::CoverageMap;
use leosim::ephemeris::EphemerisStore;
use leosim::latency::{bentpipe_latency, bentpipe_latency_from_store};
use leosim::visibility::{PropagatorKind, SimConfig, VisibilityTable};
use leosim::TimeGrid;
use orbital::constellation::{single_plane, walker_delta, ShellSpec};
use orbital::ground::GroundSite;
use orbital::time::Epoch;

fn epoch() -> Epoch {
    Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
}

fn kj2() -> SimConfig {
    SimConfig { propagator: PropagatorKind::KeplerJ2, ..Default::default() }
}

fn sgp4() -> SimConfig {
    SimConfig { propagator: PropagatorKind::Sgp4, ..Default::default() }
}

#[test]
fn sgp4_positions_differ_from_keplerj2_beyond_tolerance() {
    let sats = single_plane(4, 550.0, 53.0, epoch());
    let grid = TimeGrid::new(epoch(), 86_400.0, 300.0);
    let a = EphemerisStore::build(&sats, &grid, &kj2());
    let b = EphemerisStore::build(&sats, &grid, &sgp4());
    let max_sep = (0..a.sat_count())
        .flat_map(|s| (0..a.steps()).map(move |k| (s, k)))
        .map(|(s, k)| a.position(s, k).distance(b.position(s, k)))
        .fold(0.0f64, f64::max);
    // Well beyond float tolerance; well below a broken model.
    assert!(max_sep > 0.1, "SGP4 and KeplerJ2 suspiciously close: {max_sep} km");
    assert!(max_sep < 100.0, "models diverged implausibly: {max_sep} km");
}

#[test]
fn coverage_map_respects_configured_propagator() {
    let spec = ShellSpec { planes: 10, sats_per_plane: 8, ..ShellSpec::starlink_like() };
    let sats = walker_delta(&spec, epoch());
    let grid = TimeGrid::new(epoch(), 86_400.0, 600.0);
    let map_kj2 = CoverageMap::compute(&sats, &grid, &kj2().with_mask_deg(10.0), 18, 36);
    let map_sgp4 = CoverageMap::compute(&sats, &grid, &sgp4().with_mask_deg(10.0), 18, 36);
    // The regression: compute() used to hardcode KeplerJ2, making these equal.
    assert_ne!(map_kj2.cells, map_sgp4.cells, "propagator config ignored by CoverageMap");
    // And the one-shot path must match the explicit store path exactly.
    let store = EphemerisStore::build(&sats, &grid, &sgp4());
    let via_store = CoverageMap::compute_from_store(&store, &sgp4().with_mask_deg(10.0), 18, 36);
    assert_eq!(map_sgp4.cells, via_store.cells);
}

#[test]
fn bentpipe_latency_respects_configured_propagator() {
    let sats = single_plane(12, 550.0, 53.0, epoch());
    let term = GroundSite::from_degrees("T", 25.0, 121.5);
    let gs = GroundSite::from_degrees("G", 25.5, 121.0);
    let grid = TimeGrid::new(epoch(), 86_400.0, 60.0);
    let series_kj2 = bentpipe_latency(&sats, &term, &gs, &grid, &kj2());
    let series_sgp4 = bentpipe_latency(&sats, &term, &gs, &grid, &sgp4());
    assert!(series_kj2.availability() > 0.0, "test needs some connectivity");
    // Kilometre-level position differences shift every delay sample.
    assert_ne!(series_kj2.delay_ms, series_sgp4.delay_ms, "propagator config ignored by latency");
    let store = EphemerisStore::build(&sats, &grid, &sgp4());
    let via_store = bentpipe_latency_from_store(&store, &term, &gs, &sgp4());
    assert_eq!(series_sgp4.delay_ms, via_store.delay_ms);
}

#[test]
fn isl_connectivity_respects_configured_propagator() {
    let spec = ShellSpec { planes: 6, sats_per_plane: 8, ..ShellSpec::starlink_like() };
    let sats = walker_delta(&spec, epoch());
    let term = [GroundSite::from_degrees("T", 25.0, 121.5)];
    let gs = [GroundSite::from_degrees("G", 40.7, -74.0)];
    let grid = TimeGrid::new(epoch(), 86_400.0, 60.0);
    let conn_kj2 = isl_connectivity(&sats, &term, &gs, &grid, &kj2(), 3000.0, 4);
    let conn_sgp4 = isl_connectivity(&sats, &term, &gs, &grid, &sgp4(), 3000.0, 4);
    assert_ne!(
        conn_kj2[0].connected, conn_sgp4[0].connected,
        "propagator config ignored by isl_connectivity"
    );
    let store = EphemerisStore::build(&sats, &grid, &sgp4());
    let via_store = isl_connectivity_from_store(&store, &term, &gs, &sgp4(), 3000.0, 4);
    assert_eq!(conn_sgp4[0].connected, via_store[0].connected);
}

#[test]
fn contact_volume_respects_configured_propagator() {
    let sats = single_plane(4, 550.0, 53.0, epoch());
    let site = GroundSite::from_degrees("GS", 25.0, 121.5);
    let grid = TimeGrid::new(epoch(), 86_400.0, 30.0);
    let volume_for = |cfg: &SimConfig| -> f64 {
        let store = EphemerisStore::build(&sats, &grid, cfg);
        let vt = VisibilityTable::from_store(&store, std::slice::from_ref(&site), cfg);
        let plan = ContactPlan::from_table(&vt);
        let leg = leosim::linkbudget::RfLeg::ku_gateway_downlink();
        plan.contacts
            .iter()
            .map(|c| contact_volume_bits_from_store(c, &site, &store, &leg))
            .sum()
    };
    let v_kj2 = volume_for(&kj2());
    let v_sgp4 = volume_for(&sgp4());
    assert!(v_kj2 > 0.0);
    assert_ne!(
        v_kj2.to_bits(),
        v_sgp4.to_bits(),
        "propagator config ignored by contact volume path"
    );
}

#[test]
fn thread_count_does_not_change_any_consumer_output() {
    let sats = single_plane(9, 550.0, 53.0, epoch());
    let term = GroundSite::from_degrees("T", 25.0, 121.5);
    let gs = GroundSite::from_degrees("G", 25.5, 121.0);
    let grid = TimeGrid::new(epoch(), 12.0 * 3600.0, 120.0);
    let c1 = SimConfig { threads: 1, ..Default::default() };
    let c4 = SimConfig { threads: 4, ..Default::default() };
    let map1 = CoverageMap::compute(&sats, &grid, &c1.clone().with_mask_deg(10.0), 9, 18);
    let map4 = CoverageMap::compute(&sats, &grid, &c4.clone().with_mask_deg(10.0), 9, 18);
    assert_eq!(map1.cells, map4.cells);
    let l1 = bentpipe_latency(&sats, &term, &gs, &grid, &c1);
    let l4 = bentpipe_latency(&sats, &term, &gs, &grid, &c4);
    assert_eq!(l1.delay_ms, l4.delay_ms);
    let gs_arr = [gs.clone()];
    let term_arr = [term.clone()];
    let i1 = isl_connectivity(&sats, &term_arr, &gs_arr, &grid, &c1, 3000.0, 2);
    let i4 = isl_connectivity(&sats, &term_arr, &gs_arr, &grid, &c4, 3000.0, 2);
    assert_eq!(i1[0].connected, i4[0].connected);
}
