//! World coverage maps: coverage fraction on a latitude/longitude grid.
//!
//! The figures quantify coverage at *points*; the map shows its *shape* —
//! an inclined Walker constellation concentrates coverage in the latitude
//! bands around ±inclination and leaves the poles dark, which is the
//! geometric root of every experiment in the paper. Rendered as ASCII for
//! terminals and dumped as numbers for plotting.
//!
//! ```
//! use leosim::coveragemap::CoverageMap;
//! use leosim::visibility::SimConfig;
//! use leosim::TimeGrid;
//! use orbital::constellation::{walker_delta, ShellSpec};
//! use orbital::time::Epoch;
//!
//! let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
//! let shell = ShellSpec { planes: 3, sats_per_plane: 4, ..ShellSpec::starlink_like() };
//! let sats = walker_delta(&shell, epoch);
//! let grid = TimeGrid::new(epoch, 2.0 * 3600.0, 600.0);
//!
//! let map = CoverageMap::compute(&sats, &grid, &SimConfig::default(), 8, 16);
//! assert_eq!((map.rows, map.cols), (8, 16));
//! assert!((0.0..=1.0).contains(&map.global_mean()));
//! // An inclined shell cannot see the poles: the northernmost band is
//! // never better covered than the map as a whole.
//! assert!(map.row_mean(0) <= map.global_mean() + 1e-12);
//! // The ASCII rendering has one line per latitude row (plus its legend).
//! assert!(map.ascii().lines().count() >= map.rows);
//! ```

use crate::ephemeris::EphemerisStore;
use crate::timegrid::TimeGrid;
use crate::visibility::SimConfig;
use orbital::constellation::Satellite;
use orbital::ground::GroundSite;
use serde::{Deserialize, Serialize};

/// A coverage-fraction grid over the world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoverageMap {
    /// Rows from north (+lat) to south, each a band of `cols` cells.
    pub cells: Vec<Vec<f64>>,
    /// Latitude rows.
    pub rows: usize,
    /// Longitude columns.
    pub cols: usize,
}

impl CoverageMap {
    /// Compute the map: for each cell center, the fraction of grid steps
    /// with at least one satellite above the mask.
    ///
    /// Convenience for one-shot callers: builds a throwaway
    /// [`EphemerisStore`] (honoring `config.propagator` and
    /// `config.threads`) and delegates to
    /// [`CoverageMap::compute_from_store`].
    pub fn compute(
        sats: &[Satellite],
        grid: &TimeGrid,
        config: &SimConfig,
        rows: usize,
        cols: usize,
    ) -> CoverageMap {
        let store = EphemerisStore::build(sats, grid, config);
        Self::compute_from_store(&store, config, rows, cols)
    }

    /// Propagation-free map kernel over a prebuilt [`EphemerisStore`].
    pub fn compute_from_store(
        store: &EphemerisStore,
        config: &SimConfig,
        rows: usize,
        cols: usize,
    ) -> CoverageMap {
        assert!(rows >= 2 && cols >= 2, "grid too small");
        let sin_mask = config.sin_mask();
        // Cell-center sites.
        let sites: Vec<GroundSite> = (0..rows)
            .flat_map(|r| {
                let lat = 90.0 - 180.0 * (r as f64 + 0.5) / rows as f64;
                (0..cols).map(move |c| {
                    let lon = -180.0 + 360.0 * (c as f64 + 0.5) / cols as f64;
                    GroundSite::from_degrees(format!("cell-{r}-{c}"), lat, lon)
                })
            })
            .collect();
        let steps = store.steps();
        let mut covered_steps = vec![0usize; sites.len()];
        let mut positions = vec![orbital::Vec3::ZERO; store.sat_count()];
        for k in 0..steps {
            for (i, slot) in positions.iter_mut().enumerate() {
                *slot = store.position(i, k);
            }
            for (ci, site) in sites.iter().enumerate() {
                if positions.iter().any(|&pos| site.sees_ecef_sin(pos, sin_mask)) {
                    covered_steps[ci] += 1;
                }
            }
        }
        let cells = (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| covered_steps[r * cols + c] as f64 / steps as f64)
                    .collect()
            })
            .collect();
        CoverageMap { cells, rows, cols }
    }

    /// Mean coverage of a latitude row, `[0, 1]`.
    pub fn row_mean(&self, row: usize) -> f64 {
        self.cells[row].iter().sum::<f64>() / self.cols as f64
    }

    /// The latitude (degrees) of a row's center.
    pub fn row_latitude_deg(&self, row: usize) -> f64 {
        90.0 - 180.0 * (row as f64 + 0.5) / self.rows as f64
    }

    /// Global area-weighted mean coverage (weights rows by cos(latitude)).
    pub fn global_mean(&self) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for r in 0..self.rows {
            let w = self.row_latitude_deg(r).to_radians().cos().max(0.0);
            num += w * self.row_mean(r);
            den += w;
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }

    /// Render as ASCII art: one character per cell, darker = better covered.
    pub fn ascii(&self) -> String {
        const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let mut out = String::new();
        for r in 0..self.rows {
            for c in 0..self.cols {
                let v = self.cells[r][c].clamp(0.0, 1.0);
                let idx = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
                out.push(RAMP[idx]);
            }
            out.push_str(&format!("  {:+05.1}\n", self.row_latitude_deg(r)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbital::constellation::{walker_delta, ShellSpec};
    use orbital::time::Epoch;

    fn map(inclination_deg: f64) -> CoverageMap {
        let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
        let spec = ShellSpec {
            planes: 10,
            sats_per_plane: 8,
            inclination_deg,
            ..ShellSpec::starlink_like()
        };
        let sats = walker_delta(&spec, epoch);
        let grid = TimeGrid::new(epoch, 6.0 * 3600.0, 600.0);
        CoverageMap::compute(&sats, &grid, &SimConfig::default().with_mask_deg(10.0), 18, 36)
    }

    #[test]
    fn inclined_shell_leaves_poles_dark() {
        let m = map(53.0);
        // Poles (first/last rows) get essentially nothing; mid-latitudes do.
        assert!(m.row_mean(0) < 0.05, "north pole {}", m.row_mean(0));
        assert!(m.row_mean(17) < 0.05, "south pole {}", m.row_mean(17));
        // The band near 50 degrees is the best covered.
        let band: f64 = (0..m.rows)
            .filter(|&r| (m.row_latitude_deg(r).abs() - 50.0).abs() < 10.0)
            .map(|r| m.row_mean(r))
            .fold(0.0, f64::max);
        let equator = m.row_mean(m.rows / 2);
        assert!(band > equator, "band {band} vs equator {equator}");
        assert!(band > 0.2, "band coverage {band}");
    }

    #[test]
    fn polar_shell_reaches_poles() {
        let m = map(90.0);
        assert!(m.row_mean(0) > 0.3, "polar shell must cover the pole: {}", m.row_mean(0));
    }

    #[test]
    fn global_mean_bounded_and_sane() {
        let m = map(53.0);
        let g = m.global_mean();
        assert!((0.0..=1.0).contains(&g));
        assert!(g > 0.05, "80 satellites at 10 deg mask cover something: {g}");
    }

    #[test]
    fn ascii_renders_all_rows() {
        let m = map(53.0);
        let art = m.ascii();
        assert_eq!(art.lines().count(), 18);
        for line in art.lines() {
            assert!(line.len() >= 36, "row too short: {line:?}");
        }
    }

    #[test]
    fn symmetry_north_south() {
        // A Walker shell covers hemispheres symmetrically (up to sampling).
        let m = map(53.0);
        for r in 0..m.rows / 2 {
            let north = m.row_mean(r);
            let south = m.row_mean(m.rows - 1 - r);
            assert!(
                (north - south).abs() < 0.15,
                "row {r}: north {north} vs south {south}"
            );
        }
    }
}
