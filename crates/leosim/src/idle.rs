//! Satellite idle-time analysis (the paper's Fig. 3).
//!
//! A satellite is *idle* at a step when it is not serving any user terminal
//! — for a region-specific constellation, that is whenever the satellite is
//! not above the elevation mask of any served city. The paper shows that a
//! constellation serving one city leaves each satellite idle ~99% of the
//! time, and that idle time falls as the served set grows toward global
//! coverage — the core utilization argument for MP-LEO.

use crate::coverage::Aggregate;
use crate::visibility::VisibilityTable;
use serde::{Deserialize, Serialize};

/// Idle-time summary for one satellite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SatelliteIdle {
    /// Satellite ID.
    pub sat_id: u32,
    /// Fraction of time idle, `[0, 1]`.
    pub idle_fraction: f64,
    /// Fraction of time busy (visible to at least one served site).
    pub busy_fraction: f64,
}

/// Compute idle fractions for every satellite in the table against the
/// served subset of sites.
pub fn idle_per_satellite(vt: &VisibilityTable, served_sites: &[usize]) -> Vec<SatelliteIdle> {
    (0..vt.sat_count())
        .map(|s| {
            let busy = vt.visible_to_any(s, served_sites).fraction_ones();
            SatelliteIdle {
                sat_id: vt.sat_ids[s],
                idle_fraction: 1.0 - busy,
                busy_fraction: busy,
            }
        })
        .collect()
}

/// Mean idle fraction across the constellation for a served-site subset —
/// one point of the Fig. 3 curve.
pub fn mean_idle_fraction(vt: &VisibilityTable, served_sites: &[usize]) -> f64 {
    let per_sat = idle_per_satellite(vt, served_sites);
    per_sat.iter().map(|s| s.idle_fraction).sum::<f64>() / per_sat.len().max(1) as f64
}

/// Aggregate idle fractions across the constellation.
pub fn idle_aggregate(vt: &VisibilityTable, served_sites: &[usize]) -> Aggregate {
    let per_sat = idle_per_satellite(vt, served_sites);
    let samples: Vec<f64> = per_sat.iter().map(|s| s.idle_fraction).collect();
    Aggregate::from_samples(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timegrid::TimeGrid;
    use crate::visibility::SimConfig;
    use orbital::constellation::single_plane;
    use orbital::ground::GroundSite;
    use orbital::time::Epoch;

    fn table(n_sites: usize) -> VisibilityTable {
        let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
        let sats = single_plane(6, 550.0, 53.0, epoch);
        let all_sites = [GroundSite::from_degrees("Tokyo", 35.69, 139.69),
            GroundSite::from_degrees("Delhi", 28.61, 77.21),
            GroundSite::from_degrees("SaoPaulo", -23.55, -46.63),
            GroundSite::from_degrees("NewYork", 40.71, -74.01),
            GroundSite::from_degrees("Lagos", 6.52, 3.38)];
        let grid = TimeGrid::new(epoch, 2.0 * 86_400.0, 60.0);
        VisibilityTable::compute(&sats, &all_sites[..n_sites], &grid, &SimConfig::default())
    }

    #[test]
    fn one_city_mostly_idle() {
        let vt = table(1);
        let idle = mean_idle_fraction(&vt, &[0]);
        // Paper: ~99% idle when serving a single city.
        assert!(idle > 0.95, "idle {idle}");
    }

    #[test]
    fn idle_decreases_with_more_cities() {
        let vt = table(5);
        let idle1 = mean_idle_fraction(&vt, &[0]);
        let idle3 = mean_idle_fraction(&vt, &[0, 1, 2]);
        let idle5 = mean_idle_fraction(&vt, &[0, 1, 2, 3, 4]);
        assert!(idle1 >= idle3, "{idle1} vs {idle3}");
        assert!(idle3 >= idle5, "{idle3} vs {idle5}");
        assert!(idle5 < idle1, "serving 5 cities must beat 1");
    }

    #[test]
    fn per_satellite_fields_consistent() {
        let vt = table(2);
        for s in idle_per_satellite(&vt, &[0, 1]) {
            assert!((s.idle_fraction + s.busy_fraction - 1.0).abs() < 1e-12);
            assert!((0.0..=1.0).contains(&s.idle_fraction));
        }
    }

    #[test]
    fn aggregate_bounds() {
        let vt = table(3);
        let agg = idle_aggregate(&vt, &[0, 1, 2]);
        assert_eq!(agg.n, 6);
        assert!(agg.min <= agg.mean && agg.mean <= agg.max);
    }

    #[test]
    fn no_served_sites_fully_idle() {
        let vt = table(1);
        let idle = mean_idle_fraction(&vt, &[]);
        assert!((idle - 1.0).abs() < 1e-12);
    }
}
