//! # leosim — a CosmicBeats-equivalent LEO coverage simulator
//!
//! The paper's evaluation runs on Microsoft's CosmicBeats simulator: orbits
//! are propagated from TLE descriptors, satellite–ground visibility is
//! evaluated against an elevation mask on a fixed time grid, and coverage /
//! idle-time statistics are extracted. This crate rebuilds that pipeline
//! with a layout optimized for the paper's *sampling* experiments: per
//! (satellite, site) visibility is materialized once as a compact time
//! bitset, after which every Monte-Carlo run (random subsets, withdrawals,
//! placements) is pure bitset algebra — thousands of runs per second instead
//! of re-propagating orbits.
//!
//! Pipeline:
//!
//! 1. [`timegrid::TimeGrid`] — the discrete simulation clock (start, step,
//!    horizon) with precomputed Earth-rotation angles.
//! 2. [`ephemeris::EphemerisStore`] — propagate every satellite over the
//!    grid exactly once into a columnar table of ECEF positions, shared by
//!    every downstream consumer (and cacheable to disk across processes).
//! 3. [`visibility::VisibilityTable`] — a pure geometry kernel over the
//!    store: for every site, the steps where each satellite is above the
//!    elevation mask.
//! 4. [`bitset::TimeBitset`] — the compact set-of-steps representation with
//!    union/intersection/gap extraction.
//! 5. [`coverage`] — coverage fraction, gap statistics, and the paper's
//!    population-weighted coverage-time metric.
//! 6. [`idle`] — satellite idle-time analysis (Fig. 3).
//! 7. [`bentpipe`] — transparent bent-pipe connectivity (terminal → satellite
//!    → ground station joint visibility) and an ISL-relay variant for the
//!    §4 ablation.
//! 8. [`montecarlo`] — seeded sampling harness for the 100-run averages.
//!
//! ## Quick example
//!
//! ```
//! use leosim::{TimeGrid, visibility::{SimConfig, VisibilityTable}};
//! use leosim::coverage::CoverageStats;
//! use orbital::constellation::single_plane;
//! use orbital::ground::GroundSite;
//! use orbital::time::Epoch;
//!
//! let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
//! let sats = single_plane(8, 550.0, 53.0, epoch);
//! let sites = [GroundSite::from_degrees("Taipei", 25.03, 121.56)];
//! let grid = TimeGrid::new(epoch, 6.0 * 3600.0, 120.0);
//! let vt = VisibilityTable::compute(&sats, &sites, &grid, &SimConfig::default());
//! let all: Vec<usize> = (0..sats.len()).collect();
//! let stats = CoverageStats::from_bitset(&vt.coverage_union(&all, 0), &grid);
//! assert!(stats.covered_fraction < 1.0); // 8 satellites cannot blanket a site
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bentpipe;
pub mod bitset;
pub mod contacts;
pub mod coverage;
pub mod coveragemap;
pub mod dtn;
pub mod ephemeris;
pub mod idle;
pub mod latency;
pub mod linkbudget;
pub mod montecarlo;
pub mod region;
pub mod timegrid;
pub mod visibility;

pub use bitset::TimeBitset;
pub use coverage::{population_weighted_coverage, CoverageStats};
pub use ephemeris::EphemerisStore;
pub use timegrid::TimeGrid;
pub use visibility::{SimConfig, VisibilityTable};
