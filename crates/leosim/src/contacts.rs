//! Contact plans: the interval view of visibility.
//!
//! Bitsets answer "is anyone visible at step k"; schedulers, DTN routers,
//! and ground-station operators instead want the *contact list* — who can
//! talk to whom, from when to when. This module extracts sorted contact
//! windows from a [`VisibilityTable`] and provides the queries the
//! scheduling layers need.

use crate::visibility::VisibilityTable;
use orbital::time::Epoch;
use serde::{Deserialize, Serialize};

/// One visibility window between a satellite and a site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Contact {
    /// Satellite index (table order).
    pub sat: usize,
    /// Site index (table order).
    pub site: usize,
    /// First step of the window.
    pub start_step: usize,
    /// One past the last step.
    pub end_step: usize,
}

impl Contact {
    /// Window length in steps.
    pub fn len_steps(&self) -> usize {
        self.end_step - self.start_step
    }
}

/// A sorted list of contacts over one grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContactPlan {
    /// Contacts sorted by `(start_step, sat, site)`.
    pub contacts: Vec<Contact>,
    /// Grid step seconds (for duration conversions).
    pub step_s: f64,
    /// Grid start epoch.
    pub start: Epoch,
}

impl ContactPlan {
    /// Extract every (satellite, site) window from a visibility table.
    pub fn from_table(vt: &VisibilityTable) -> ContactPlan {
        let mut contacts = Vec::new();
        for sat in 0..vt.sat_count() {
            for site in 0..vt.site_count() {
                for run in vt.bitset(sat, site).runs_of_ones() {
                    contacts.push(Contact { sat, site, start_step: run.start, end_step: run.end });
                }
            }
        }
        contacts.sort_by_key(|c| (c.start_step, c.sat, c.site));
        ContactPlan { contacts, step_s: vt.grid.step_s, start: vt.grid.start }
    }

    /// Number of contacts.
    pub fn len(&self) -> usize {
        self.contacts.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.contacts.is_empty()
    }

    /// Contacts of one site, in time order.
    pub fn for_site(&self, site: usize) -> Vec<&Contact> {
        self.contacts.iter().filter(|c| c.site == site).collect()
    }

    /// Contacts of one satellite, in time order.
    pub fn for_sat(&self, sat: usize) -> Vec<&Contact> {
        self.contacts.iter().filter(|c| c.sat == sat).collect()
    }

    /// The next contact for `site` starting at or after `step`.
    pub fn next_contact(&self, site: usize, step: usize) -> Option<&Contact> {
        self.contacts
            .iter()
            .filter(|c| c.site == site && c.end_step > step)
            .min_by_key(|c| c.start_step.max(step))
    }

    /// Mean contact duration, seconds.
    pub fn mean_duration_s(&self) -> f64 {
        if self.contacts.is_empty() {
            return 0.0;
        }
        self.contacts.iter().map(|c| c.len_steps()).sum::<usize>() as f64 * self.step_s
            / self.contacts.len() as f64
    }

    /// Waiting time (seconds) from `step` until `site` has a contact
    /// (0 when inside one); `None` when no further contact exists.
    pub fn wait_s(&self, site: usize, step: usize) -> Option<f64> {
        let c = self.next_contact(site, step)?;
        Some(if c.start_step <= step { 0.0 } else { (c.start_step - step) as f64 * self.step_s })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timegrid::TimeGrid;
    use crate::visibility::SimConfig;
    use orbital::constellation::single_plane;
    use orbital::ground::GroundSite;

    fn plan() -> (ContactPlan, VisibilityTable) {
        let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
        let sats = single_plane(6, 550.0, 53.0, epoch);
        let sites = [
            GroundSite::from_degrees("Taipei", 25.03, 121.56),
            GroundSite::from_degrees("Seoul", 37.57, 126.98),
        ];
        let grid = TimeGrid::new(epoch, 86_400.0, 60.0);
        let vt = VisibilityTable::compute(&sats, &sites, &grid, &SimConfig::default());
        (ContactPlan::from_table(&vt), vt)
    }

    #[test]
    fn contacts_match_bitsets() {
        let (plan, vt) = plan();
        assert!(!plan.is_empty());
        // Total contact steps equal total set bits.
        let total_steps: usize = plan.contacts.iter().map(|c| c.len_steps()).sum();
        let total_bits: usize = (0..vt.sat_count())
            .flat_map(|s| (0..vt.site_count()).map(move |g| (s, g)))
            .map(|(s, g)| vt.bitset(s, g).count_ones())
            .sum();
        assert_eq!(total_steps, total_bits);
        // Every contact's interior really is visible.
        for c in &plan.contacts {
            for k in c.start_step..c.end_step {
                assert!(vt.bitset(c.sat, c.site).get(k));
            }
        }
    }

    #[test]
    fn sorted_by_start() {
        let (plan, _) = plan();
        for w in plan.contacts.windows(2) {
            assert!(w[0].start_step <= w[1].start_step);
        }
    }

    #[test]
    fn durations_are_leo_passes() {
        let (plan, _) = plan();
        let mean = plan.mean_duration_s();
        assert!(mean > 60.0 && mean < 12.0 * 60.0, "mean pass {mean} s");
    }

    #[test]
    fn next_contact_and_wait() {
        let (plan, _) = plan();
        let first = plan.for_site(0)[0].clone();
        // Before the first contact: wait until it.
        if first.start_step > 0 {
            let w = plan.wait_s(0, 0).unwrap();
            assert!((w - first.start_step as f64 * 60.0).abs() < 1e-9);
        }
        // Inside a contact: wait 0.
        let w = plan.wait_s(0, first.start_step).unwrap();
        assert_eq!(w, 0.0);
        // After everything: None.
        assert!(plan.next_contact(0, usize::MAX - 1).is_none());
    }

    #[test]
    fn per_entity_filters_consistent() {
        let (plan, vt) = plan();
        let by_site: usize = (0..vt.site_count()).map(|s| plan.for_site(s).len()).sum();
        let by_sat: usize = (0..vt.sat_count()).map(|s| plan.for_sat(s).len()).sum();
        assert_eq!(by_site, plan.len());
        assert_eq!(by_sat, plan.len());
    }
}

/// Estimate the data volume (bits) deliverable over a contact, integrating
/// the Shannon-bound rate of `leg` across the window using the actual
/// satellite-site geometry at each step.
///
/// `vt` must be the table the plan was extracted from (same grid);
/// `sat_positions` supplies the satellite's ECEF position per step (e.g.
/// re-propagated by the caller once per satellite of interest).
pub fn contact_volume_bits(
    contact: &Contact,
    site: &orbital::ground::GroundSite,
    sat_ecef_at: impl Fn(usize) -> orbital::Vec3,
    leg: &crate::linkbudget::RfLeg,
    step_s: f64,
) -> f64 {
    let mut bits = 0.0;
    for k in contact.start_step..contact.end_step {
        let range = site.ecef.distance(sat_ecef_at(k));
        bits += leg.capacity_bps(range) * step_s;
    }
    bits
}

/// [`contact_volume_bits`] reading satellite positions from a prebuilt
/// [`crate::ephemeris::EphemerisStore`]. `contact.sat` must index the same
/// satellite order the store was built from (which holds whenever the
/// visibility table the plan came from was computed from the same store).
pub fn contact_volume_bits_from_store(
    contact: &Contact,
    site: &orbital::ground::GroundSite,
    store: &crate::ephemeris::EphemerisStore,
    leg: &crate::linkbudget::RfLeg,
) -> f64 {
    contact_volume_bits(
        contact,
        site,
        |k| store.position(contact.sat, k),
        leg,
        store.grid.step_s,
    )
}

#[cfg(test)]
mod volume_tests {
    use super::*;
    use crate::ephemeris::EphemerisStore;
    use crate::linkbudget::RfLeg;
    use crate::timegrid::TimeGrid;
    use crate::visibility::{SimConfig, VisibilityTable};
    use orbital::constellation::single_plane;
    use orbital::ground::GroundSite;

    #[test]
    fn pass_volume_is_gigabit_scale() {
        let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
        let sats = single_plane(4, 550.0, 53.0, epoch);
        let site = GroundSite::from_degrees("GS", 25.0, 121.5);
        let grid = TimeGrid::new(epoch, 86_400.0, 30.0);
        let cfg = SimConfig::default();
        let store = EphemerisStore::build(&sats, &grid, &cfg);
        let vt = VisibilityTable::from_store(&store, std::slice::from_ref(&site), &cfg);
        let plan = ContactPlan::from_table(&vt);
        assert!(!plan.is_empty());
        let leg = RfLeg::ku_gateway_downlink();
        let c = &plan.contacts[0];
        let volume = contact_volume_bits_from_store(c, &site, &store, &leg);
        // A multi-minute Ku pass at hundreds of Mbps delivers gigabits to
        // hundreds of gigabits.
        let gbits = volume / 1e9;
        assert!(gbits > 1.0 && gbits < 1000.0, "pass volume {gbits} Gbit");
    }

    #[test]
    fn longer_contacts_carry_more() {
        let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
        let sats = single_plane(2, 550.0, 53.0, epoch);
        let site = GroundSite::from_degrees("GS", 25.0, 121.5);
        let grid = TimeGrid::new(epoch, 86_400.0, 30.0);
        let cfg = SimConfig::default();
        let store = EphemerisStore::build(&sats, &grid, &cfg);
        let vt = VisibilityTable::from_store(&store, std::slice::from_ref(&site), &cfg);
        let plan = ContactPlan::from_table(&vt);
        let leg = RfLeg::ku_gateway_downlink();
        let mut vols: Vec<(usize, f64)> = plan
            .contacts
            .iter()
            .map(|c| (c.len_steps(), contact_volume_bits_from_store(c, &site, &store, &leg)))
            .collect();
        vols.sort_by_key(|(len, _)| *len);
        if vols.len() >= 2 {
            let (short_len, short_v) = vols[0];
            let (long_len, long_v) = *vols.last().unwrap();
            if long_len > short_len {
                assert!(long_v > short_v, "longer pass must carry more");
            }
        }
    }
}
