//! The visibility engine: per-(satellite, site) visibility bitsets over a
//! time grid.
//!
//! Propagation itself lives in the [`crate::ephemeris`] layer;
//! [`VisibilityTable::from_store`] is a pure, propagation-free geometry
//! kernel over an [`EphemerisStore`]'s columnar ECEF rows.
//! [`VisibilityTable::compute`] remains as the one-shot convenience that
//! builds a throwaway store first. Work is partitioned across threads by
//! satellite on the shared `simrt` worker pool, whose scoped primitives let
//! the store and site slices be borrowed without cloning.

use crate::bitset::TimeBitset;
use crate::ephemeris::EphemerisStore;
use crate::timegrid::TimeGrid;
use orbital::constellation::Satellite;
use orbital::ground::GroundSite;
use orbital::math::Vec3;
use serde::{Deserialize, Serialize};

/// Which propagator model to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PropagatorKind {
    /// Two-body + secular J2 (fast; default).
    #[default]
    KeplerJ2,
    /// Full near-Earth SGP4 (slower; for TLE-sourced elements with drag).
    Sgp4,
}

/// Simulation configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Minimum elevation angle for a usable link, degrees. Starlink-class
    /// user terminals use ~25 degrees.
    pub min_elevation_deg: f64,
    /// Propagator model.
    pub propagator: PropagatorKind,
    /// Number of worker threads (0 = use available parallelism).
    pub threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { min_elevation_deg: 25.0, propagator: PropagatorKind::KeplerJ2, threads: 0 }
    }
}

impl SimConfig {
    /// Config with a different elevation mask.
    pub fn with_mask_deg(mut self, deg: f64) -> Self {
        self.min_elevation_deg = deg;
        self
    }

    /// Sine of the elevation mask — the constant every visibility hot loop
    /// compares [`orbital::ground::GroundSite::sees_ecef_sin`] against.
    /// One canonical definition so every consumer computes the same bits.
    #[inline]
    pub fn sin_mask(&self) -> f64 {
        self.min_elevation_deg.to_radians().sin()
    }

    /// The resolved worker count for this config: an explicit `threads`
    /// wins; `0` defers to the process-wide [`simrt::threads`] resolution
    /// (CLI `--threads`, then a validated `MPLEO_THREADS`, then available
    /// parallelism). No silent made-up default — the old
    /// `available_parallelism().unwrap_or(4)` fallback is gone.
    pub fn thread_count(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            simrt::threads()
        }
    }
}

/// Per-(satellite, site) visibility over a time grid.
///
/// Layout: `table[sat_index][site_index]` is the bitset of steps where that
/// satellite is above the elevation mask at that site. Satellite order
/// matches the input slice; `sat_ids` records their stable IDs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VisibilityTable {
    /// The time grid the bitsets are indexed by.
    pub grid: TimeGrid,
    /// Stable satellite IDs in table order.
    pub sat_ids: Vec<u32>,
    /// Site names in table order.
    pub site_names: Vec<String>,
    /// `table[sat][site]` visibility bitsets.
    pub table: Vec<Vec<TimeBitset>>,
}

impl VisibilityTable {
    /// Propagate `sats` over `grid` and test visibility against every site.
    ///
    /// Convenience for one-shot callers: builds a throwaway
    /// [`EphemerisStore`] and runs [`VisibilityTable::from_store`] over it.
    /// Callers that evaluate several masks or consumers on the same pool
    /// should build the store once and share it.
    pub fn compute(
        sats: &[Satellite],
        sites: &[GroundSite],
        grid: &TimeGrid,
        config: &SimConfig,
    ) -> VisibilityTable {
        let store = EphemerisStore::build(sats, grid, config);
        Self::from_store(&store, sites, config)
    }

    /// The propagation-free geometry kernel: test every satellite row of a
    /// prebuilt [`EphemerisStore`] against every site. Output is bit-identical
    /// to [`VisibilityTable::compute`] on the pool the store was built from.
    pub fn from_store(
        store: &EphemerisStore,
        sites: &[GroundSite],
        config: &SimConfig,
    ) -> VisibilityTable {
        let all: Vec<usize> = (0..store.sat_count()).collect();
        Self::from_store_subset(store, &all, sites, config)
    }

    /// [`VisibilityTable::from_store`] restricted to the given store rows.
    /// Table order follows `indices`, so sampling experiments can reuse one
    /// pool-wide store without copying positions.
    pub fn from_store_subset(
        store: &EphemerisStore,
        indices: &[usize],
        sites: &[GroundSite],
        config: &SimConfig,
    ) -> VisibilityTable {
        let sin_mask = config.sin_mask();
        let n = indices.len();
        // One task per satellite row on the shared pool; results land in
        // index order, so the table is identical at every thread count.
        let table: Vec<Vec<TimeBitset>> = simrt::par_map_indexed(n, config.thread_count(), |i| {
            visibility_row(store, indices[i], sites, sin_mask)
        });

        VisibilityTable {
            grid: store.grid.clone(),
            sat_ids: indices.iter().map(|&s| store.sat_ids[s]).collect(),
            site_names: sites.iter().map(|s| s.name.clone()).collect(),
            table,
        }
    }

    /// Number of satellites in the table.
    pub fn sat_count(&self) -> usize {
        self.table.len()
    }

    /// Number of sites in the table.
    pub fn site_count(&self) -> usize {
        self.site_names.len()
    }

    /// The visibility bitset of `sat` at `site` (indices in table order).
    pub fn bitset(&self, sat: usize, site: usize) -> &TimeBitset {
        &self.table[sat][site]
    }

    /// Union coverage of a subset of satellites at one site: the steps where
    /// *any* satellite in `sat_indices` is visible.
    pub fn coverage_union(&self, sat_indices: &[usize], site: usize) -> TimeBitset {
        let mut acc = TimeBitset::zeros(self.grid.steps);
        for &s in sat_indices {
            acc.union_assign(&self.table[s][site]);
        }
        acc
    }

    /// For every site, the union coverage of a subset of satellites.
    pub fn coverage_unions(&self, sat_indices: &[usize]) -> Vec<TimeBitset> {
        (0..self.site_count()).map(|site| self.coverage_union(sat_indices, site)).collect()
    }

    /// The steps where satellite `sat` is visible from *at least one* of the
    /// given sites (used for idle-time analysis).
    pub fn visible_to_any(&self, sat: usize, site_indices: &[usize]) -> TimeBitset {
        let mut acc = TimeBitset::zeros(self.grid.steps);
        for &site in site_indices {
            acc.union_assign(&self.table[sat][site]);
        }
        acc
    }
}

/// Screen one columnar ephemeris row against every site. Positions are read
/// straight from the store, so this is pure geometry — no propagator here.
fn visibility_row(
    store: &EphemerisStore,
    sat: usize,
    sites: &[GroundSite],
    sin_mask: f64,
) -> Vec<TimeBitset> {
    let steps = store.steps();
    let mut row: Vec<TimeBitset> = (0..sites.len()).map(|_| TimeBitset::zeros(steps)).collect();
    let (xs, ys, zs) = store.row(sat);
    for k in 0..steps {
        let ecef = Vec3::new(xs[k], ys[k], zs[k]);
        for (si, site) in sites.iter().enumerate() {
            if site.sees_ecef_sin(ecef, sin_mask) {
                row[si].set(k);
            }
        }
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbital::constellation::{single_plane, walker_delta, ShellSpec};
    use orbital::time::Epoch;

    fn epoch() -> Epoch {
        Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
    }

    fn taipei() -> GroundSite {
        GroundSite::from_degrees("Taipei", 25.03, 121.56)
    }

    #[test]
    fn single_satellite_small_coverage() {
        // Paper Sec. 2: a single satellite covers a site < 1% of the time.
        let sats = single_plane(1, 550.0, 53.0, epoch());
        let sites = [taipei()];
        let grid = TimeGrid::new(epoch(), 86_400.0, 60.0);
        let vt = VisibilityTable::compute(&sats, &sites, &grid, &SimConfig::default());
        let frac = vt.bitset(0, 0).fraction_ones();
        assert!(frac < 0.02, "single-sat coverage fraction {frac}");
    }

    #[test]
    fn more_satellites_more_coverage() {
        let grid = TimeGrid::new(epoch(), 86_400.0, 60.0);
        let sites = [taipei()];
        let small = single_plane(4, 550.0, 53.0, epoch());
        let spec = ShellSpec {
            planes: 12,
            sats_per_plane: 12,
            ..ShellSpec::starlink_like()
        };
        let big = walker_delta(&spec, epoch());
        let cfg = SimConfig::default();
        let vt_small = VisibilityTable::compute(&small, &sites, &grid, &cfg);
        let vt_big = VisibilityTable::compute(&big, &sites, &grid, &cfg);
        let idx_small: Vec<usize> = (0..small.len()).collect();
        let idx_big: Vec<usize> = (0..big.len()).collect();
        let c_small = vt_small.coverage_union(&idx_small, 0).fraction_ones();
        let c_big = vt_big.coverage_union(&idx_big, 0).fraction_ones();
        assert!(c_big > c_small, "144 sats {c_big} vs 4 sats {c_small}");
    }

    #[test]
    fn mask_monotonicity() {
        let sats = single_plane(8, 550.0, 53.0, epoch());
        let sites = [taipei()];
        let grid = TimeGrid::new(epoch(), 86_400.0, 60.0);
        let lo = VisibilityTable::compute(&sats, &sites, &grid, &SimConfig::default().with_mask_deg(10.0));
        let hi = VisibilityTable::compute(&sats, &sites, &grid, &SimConfig::default().with_mask_deg(40.0));
        for s in 0..sats.len() {
            let a = lo.bitset(s, 0);
            let b = hi.bitset(s, 0);
            // Everything visible at 40 deg is visible at 10 deg.
            assert_eq!(a.intersection_count(b), b.count_ones(), "sat {s}");
        }
    }

    #[test]
    fn thread_counts_agree() {
        let sats = single_plane(6, 550.0, 53.0, epoch());
        let sites = [taipei(), GroundSite::from_degrees("Tokyo", 35.69, 139.69)];
        let grid = TimeGrid::new(epoch(), 6.0 * 3600.0, 60.0);
        let t1 = VisibilityTable::compute(&sats, &sites, &grid, &SimConfig { threads: 1, ..Default::default() });
        let t4 = VisibilityTable::compute(&sats, &sites, &grid, &SimConfig { threads: 4, ..Default::default() });
        for s in 0..sats.len() {
            for site in 0..2 {
                assert_eq!(t1.bitset(s, site), t4.bitset(s, site), "sat {s} site {site}");
            }
        }
    }

    #[test]
    fn sgp4_and_keplerj2_similar_coverage() {
        let sats = single_plane(8, 550.0, 53.0, epoch());
        let sites = [taipei()];
        let grid = TimeGrid::new(epoch(), 86_400.0, 60.0);
        let a = VisibilityTable::compute(
            &sats,
            &sites,
            &grid,
            &SimConfig { propagator: PropagatorKind::KeplerJ2, ..Default::default() },
        );
        let b = VisibilityTable::compute(
            &sats,
            &sites,
            &grid,
            &SimConfig { propagator: PropagatorKind::Sgp4, ..Default::default() },
        );
        let idx: Vec<usize> = (0..sats.len()).collect();
        let ca = a.coverage_union(&idx, 0).fraction_ones();
        let cb = b.coverage_union(&idx, 0).fraction_ones();
        assert!((ca - cb).abs() < 0.01, "KeplerJ2 {ca} vs SGP4 {cb}");
    }

    #[test]
    fn from_store_subset_matches_direct_compute() {
        use crate::ephemeris::EphemerisStore;
        let sats = single_plane(6, 550.0, 53.0, epoch());
        let sites = [taipei(), GroundSite::from_degrees("Tokyo", 35.69, 139.69)];
        let grid = TimeGrid::new(epoch(), 6.0 * 3600.0, 120.0);
        let cfg = SimConfig::default();
        let store = EphemerisStore::build(&sats, &grid, &cfg);
        let picks = [5usize, 2, 0];
        let sub = VisibilityTable::from_store_subset(&store, &picks, &sites, &cfg);
        let direct = VisibilityTable::compute(
            &[sats[5].clone(), sats[2].clone(), sats[0].clone()],
            &sites,
            &grid,
            &cfg,
        );
        assert_eq!(sub.sat_ids, direct.sat_ids);
        for s in 0..picks.len() {
            for site in 0..sites.len() {
                assert_eq!(sub.bitset(s, site), direct.bitset(s, site), "sat {s} site {site}");
            }
        }
    }

    #[test]
    fn visible_to_any_unions_sites() {
        let sats = single_plane(2, 550.0, 53.0, epoch());
        let sites = [taipei(), GroundSite::from_degrees("Seoul", 37.57, 126.98)];
        let grid = TimeGrid::new(epoch(), 12.0 * 3600.0, 60.0);
        let vt = VisibilityTable::compute(&sats, &sites, &grid, &SimConfig::default());
        let any = vt.visible_to_any(0, &[0, 1]);
        let mut manual = vt.bitset(0, 0).clone();
        manual.union_assign(vt.bitset(0, 1));
        assert_eq!(any, manual);
    }

    #[test]
    fn passes_have_leo_durations() {
        // Runs of visibility should be minutes, not hours (LEO passes).
        let sats = single_plane(1, 550.0, 53.0, epoch());
        let sites = [taipei()];
        let grid = TimeGrid::new(epoch(), 3.0 * 86_400.0, 30.0);
        let vt = VisibilityTable::compute(&sats, &sites, &grid, &SimConfig::default());
        for run in vt.bitset(0, 0).runs_of_ones() {
            let dur = grid.steps_to_seconds(run.len());
            assert!(dur <= 12.0 * 60.0, "pass of {dur} s");
        }
    }
}
