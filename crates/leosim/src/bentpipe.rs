//! Transparent bent-pipe connectivity (the paper's §3.1 architecture) and
//! the ISL-relay variant for the §4 ablation.
//!
//! In a transparent bent pipe the satellite is a dumb RF repeater: a user
//! terminal is *connected* at a step only if some satellite simultaneously
//! sees both the terminal and one of the operator's ground stations. No
//! inter-satellite links, no on-board processing.
//!
//! The ISL variant relaxes the joint-visibility requirement: a terminal is
//! connected if some satellite sees it and that satellite can reach, via up
//! to `max_hops` satellite-to-satellite hops, a satellite that sees a ground
//! station. ISL reachability uses a range-limited proximity graph evaluated
//! per step.

use crate::bitset::TimeBitset;
use crate::ephemeris::EphemerisStore;
use crate::timegrid::TimeGrid;
use crate::visibility::{SimConfig, VisibilityTable};
use orbital::constellation::Satellite;
use orbital::ground::GroundSite;
use serde::{Deserialize, Serialize};

/// Result of a bent-pipe connectivity computation for one terminal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TerminalConnectivity {
    /// Terminal (site) name.
    pub terminal: String,
    /// Steps where the terminal has an end-to-end bent-pipe path.
    pub connected: TimeBitset,
}

/// Compute bent-pipe connectivity for each terminal: at a step, terminal `t`
/// is connected iff there exists a satellite `s` with
/// `visible(s, t) && visible(s, g)` for some ground station `g`.
///
/// `vt_terminals` and `vt_ground` must share the same satellite order and
/// time grid (compute them from the same satellite slice).
pub fn bentpipe_connectivity(
    vt_terminals: &VisibilityTable,
    vt_ground: &VisibilityTable,
) -> Vec<TerminalConnectivity> {
    assert_eq!(vt_terminals.sat_count(), vt_ground.sat_count(), "satellite sets differ");
    assert_eq!(vt_terminals.grid.steps, vt_ground.grid.steps, "grids differ");
    let steps = vt_terminals.grid.steps;
    let gs_indices: Vec<usize> = (0..vt_ground.site_count()).collect();
    // Per satellite: steps where it can reach any ground station.
    let sat_to_ground: Vec<TimeBitset> = (0..vt_ground.sat_count())
        .map(|s| vt_ground.visible_to_any(s, &gs_indices))
        .collect();
    (0..vt_terminals.site_count())
        .map(|t| {
            let mut connected = TimeBitset::zeros(steps);
            for (s, stg) in sat_to_ground.iter().enumerate() {
                let mut link = vt_terminals.bitset(s, t).clone();
                link.intersect_assign(stg);
                connected.union_assign(&link);
            }
            TerminalConnectivity {
                terminal: vt_terminals.site_names[t].clone(),
                connected,
            }
        })
        .collect()
}

/// ISL-relay connectivity: a terminal is connected at a step iff some
/// satellite sees it whose ISL-connected component (edges between satellites
/// closer than `isl_range_km`, up to `max_hops` hops) contains a satellite
/// that sees a ground station.
/// Convenience for one-shot callers: builds a throwaway [`EphemerisStore`]
/// (honoring `config.propagator` and `config.threads`) and delegates to
/// [`isl_connectivity_from_store`].
pub fn isl_connectivity(
    sats: &[Satellite],
    terminals: &[GroundSite],
    ground_stations: &[GroundSite],
    grid: &TimeGrid,
    config: &SimConfig,
    isl_range_km: f64,
    max_hops: usize,
) -> Vec<TerminalConnectivity> {
    let store = EphemerisStore::build(sats, grid, config);
    isl_connectivity_from_store(&store, terminals, ground_stations, config, isl_range_km, max_hops)
}

/// Propagation-free ISL-relay kernel over a prebuilt [`EphemerisStore`]:
/// both visibility tables and the per-step proximity graph read positions
/// straight from the store.
pub fn isl_connectivity_from_store(
    store: &EphemerisStore,
    terminals: &[GroundSite],
    ground_stations: &[GroundSite],
    config: &SimConfig,
    isl_range_km: f64,
    max_hops: usize,
) -> Vec<TerminalConnectivity> {
    let n = store.sat_count();
    let steps = store.steps();
    let vt_term = VisibilityTable::from_store(store, terminals, config);
    let vt_gs = VisibilityTable::from_store(store, ground_stations, config);
    let gs_indices: Vec<usize> = (0..ground_stations.len()).collect();
    let sat_to_ground: Vec<TimeBitset> =
        (0..n).map(|s| vt_gs.visible_to_any(s, &gs_indices)).collect();

    let mut result: Vec<TerminalConnectivity> = terminals
        .iter()
        .map(|t| TerminalConnectivity {
            terminal: t.name.clone(),
            connected: TimeBitset::zeros(steps),
        })
        .collect();

    let mut positions = vec![orbital::Vec3::ZERO; n];
    for k in 0..steps {
        for (i, slot) in positions.iter_mut().enumerate() {
            *slot = store.position(i, k);
        }
        // BFS from the set of ground-connected satellites, up to max_hops.
        let mut reach: Vec<bool> = (0..n).map(|s| sat_to_ground[s].get(k)).collect();
        let mut frontier: Vec<usize> = reach
            .iter()
            .enumerate()
            .filter_map(|(i, &r)| r.then_some(i))
            .collect();
        for _hop in 0..max_hops {
            if frontier.is_empty() {
                break;
            }
            let mut next = Vec::new();
            for &f in &frontier {
                for s in 0..n {
                    if !reach[s] && positions[f].distance(positions[s]) <= isl_range_km {
                        reach[s] = true;
                        next.push(s);
                    }
                }
            }
            frontier = next;
        }
        for (ti, out) in result.iter_mut().enumerate() {
            let connected = (0..n).any(|s| reach[s] && vt_term.bitset(s, ti).get(k));
            if connected {
                out.connected.set(k);
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbital::constellation::{single_plane, walker_delta, ShellSpec};
    use orbital::time::Epoch;

    fn epoch() -> Epoch {
        Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
    }

    #[test]
    fn colocated_gs_equals_plain_visibility() {
        // If the ground station sits next to the terminal, bent-pipe
        // connectivity equals plain satellite visibility.
        let sats = single_plane(6, 550.0, 53.0, epoch());
        let term = [GroundSite::from_degrees("T", 25.0, 121.5)];
        let gs = [GroundSite::from_degrees("G", 25.0, 121.5)];
        let grid = TimeGrid::new(epoch(), 86_400.0, 60.0);
        let cfg = SimConfig::default();
        let vt_t = VisibilityTable::compute(&sats, &term, &grid, &cfg);
        let vt_g = VisibilityTable::compute(&sats, &gs, &grid, &cfg);
        let conn = bentpipe_connectivity(&vt_t, &vt_g);
        let idx: Vec<usize> = (0..sats.len()).collect();
        let plain = vt_t.coverage_unions(&idx).remove(0);
        assert_eq!(conn[0].connected, plain);
    }

    #[test]
    fn distant_gs_reduces_connectivity() {
        // Ground station on the other side of the world: joint visibility is
        // impossible, so bent-pipe connectivity is empty.
        let sats = single_plane(6, 550.0, 53.0, epoch());
        let term = [GroundSite::from_degrees("T", 25.0, 121.5)];
        let gs = [GroundSite::from_degrees("G", -25.0, -58.5)];
        let grid = TimeGrid::new(epoch(), 86_400.0, 60.0);
        let cfg = SimConfig::default();
        let vt_t = VisibilityTable::compute(&sats, &term, &grid, &cfg);
        let vt_g = VisibilityTable::compute(&sats, &gs, &grid, &cfg);
        let conn = bentpipe_connectivity(&vt_t, &vt_g);
        assert_eq!(conn[0].connected.count_ones(), 0);
    }

    #[test]
    fn nearby_gs_subset_of_visibility() {
        let sats = single_plane(8, 550.0, 53.0, epoch());
        let term = [GroundSite::from_degrees("T", 25.0, 121.5)];
        let gs = [GroundSite::from_degrees("G", 31.2, 121.5)]; // ~700 km away
        let grid = TimeGrid::new(epoch(), 86_400.0, 60.0);
        let cfg = SimConfig::default();
        let vt_t = VisibilityTable::compute(&sats, &term, &grid, &cfg);
        let vt_g = VisibilityTable::compute(&sats, &gs, &grid, &cfg);
        let conn = bentpipe_connectivity(&vt_t, &vt_g);
        let idx: Vec<usize> = (0..sats.len()).collect();
        let plain = vt_t.coverage_unions(&idx).remove(0);
        // Connectivity <= visibility, pointwise.
        assert_eq!(conn[0].connected.intersection_count(&plain), conn[0].connected.count_ones());
    }

    #[test]
    fn isl_superset_of_bentpipe() {
        // With ISLs (generous range), connectivity can only grow relative to
        // the bent pipe.
        let spec = ShellSpec {
            planes: 6,
            sats_per_plane: 8,
            ..ShellSpec::starlink_like()
        };
        let sats = walker_delta(&spec, epoch());
        let term = [GroundSite::from_degrees("T", 25.0, 121.5)];
        let gs = [GroundSite::from_degrees("G", 40.7, -74.0)];
        let grid = TimeGrid::new(epoch(), 6.0 * 3600.0, 120.0);
        let cfg = SimConfig::default();
        let vt_t = VisibilityTable::compute(&sats, &term, &grid, &cfg);
        let vt_g = VisibilityTable::compute(&sats, &gs, &grid, &cfg);
        let bp = bentpipe_connectivity(&vt_t, &vt_g);
        let isl = isl_connectivity(&sats, &term, &gs, &grid, &cfg, 5000.0, 8);
        // Pointwise superset.
        assert_eq!(
            isl[0].connected.intersection_count(&bp[0].connected),
            bp[0].connected.count_ones()
        );
        assert!(isl[0].connected.count_ones() >= bp[0].connected.count_ones());
    }

    #[test]
    fn isl_zero_hops_equals_bentpipe() {
        let sats = single_plane(6, 550.0, 53.0, epoch());
        let term = [GroundSite::from_degrees("T", 25.0, 121.5)];
        let gs = [GroundSite::from_degrees("G", 30.0, 115.0)];
        let grid = TimeGrid::new(epoch(), 6.0 * 3600.0, 120.0);
        let cfg = SimConfig::default();
        let vt_t = VisibilityTable::compute(&sats, &term, &grid, &cfg);
        let vt_g = VisibilityTable::compute(&sats, &gs, &grid, &cfg);
        let bp = bentpipe_connectivity(&vt_t, &vt_g);
        let isl0 = isl_connectivity(&sats, &term, &gs, &grid, &cfg, 5000.0, 0);
        assert_eq!(bp[0].connected, isl0[0].connected);
    }
}
