//! Regional coverage: aggregate statistics over a service area.
//!
//! The paper's motivating question is regional ("how many satellites would
//! a country need to deploy to serve their own users?"). A single receiver
//! understates the problem — national availability is governed by the
//! *worst-served* point. This module evaluates coverage over a
//! [`geodata::Region`] receiver grid and reports the mean/worst-site
//! statistics the Taiwan and Ukraine scenarios use.

use crate::coverage::CoverageStats;
use crate::timegrid::TimeGrid;
use crate::visibility::{SimConfig, VisibilityTable};
use geodata::Region;
use orbital::constellation::Satellite;
use serde::{Deserialize, Serialize};

/// Aggregate coverage over a region's receiver grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionCoverage {
    /// Region name.
    pub region: String,
    /// Number of receiver grid points.
    pub receivers: usize,
    /// Mean covered fraction across receivers.
    pub mean_fraction: f64,
    /// Worst receiver's covered fraction (national availability).
    pub worst_fraction: f64,
    /// Worst receiver's longest gap, seconds.
    pub worst_max_gap_s: f64,
    /// Steps where *every* receiver is covered simultaneously, as a
    /// fraction (the all-clear availability).
    pub simultaneous_fraction: f64,
}

/// Evaluate a satellite subset over a region with an `n x n` receiver grid.
pub fn region_coverage(
    sats: &[Satellite],
    region: &Region,
    grid_n: usize,
    time: &TimeGrid,
    config: &SimConfig,
) -> RegionCoverage {
    let receivers = region.receiver_grid(grid_n);
    let vt = VisibilityTable::compute(sats, &receivers, time, config);
    let all: Vec<usize> = (0..sats.len()).collect();
    let unions: Vec<crate::TimeBitset> =
        (0..receivers.len()).map(|site| vt.coverage_union(&all, site)).collect();
    let stats: Vec<CoverageStats> =
        unions.iter().map(|u| CoverageStats::from_bitset(u, time)).collect();
    let mean_fraction =
        stats.iter().map(|s| s.covered_fraction).sum::<f64>() / stats.len() as f64;
    let worst = stats
        .iter()
        .min_by(|a, b| a.covered_fraction.total_cmp(&b.covered_fraction))
        .expect("grid is non-empty");
    // Simultaneous coverage: AND of all receiver unions.
    let mut simultaneous = crate::TimeBitset::ones(time.steps);
    for u in &unions {
        simultaneous.intersect_assign(u);
    }
    RegionCoverage {
        region: region.name.clone(),
        receivers: receivers.len(),
        mean_fraction,
        worst_fraction: worst.covered_fraction,
        worst_max_gap_s: worst.max_gap_s,
        simultaneous_fraction: simultaneous.fraction_ones(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::{run_rng, sample_indices};
    use orbital::constellation::starlink_gen1_pool;
    use orbital::time::Epoch;

    fn setup(n_sats: usize) -> (Vec<Satellite>, TimeGrid) {
        let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
        let pool = starlink_gen1_pool(epoch);
        let mut rng = run_rng(0x4E6, 0);
        let idx = sample_indices(&mut rng, pool.len(), n_sats);
        let sats = idx.iter().map(|&i| pool[i].clone()).collect();
        (sats, TimeGrid::new(epoch, 86_400.0, 300.0))
    }

    #[test]
    fn invariants_hold() {
        let (sats, time) = setup(300);
        let rc = region_coverage(&sats, &Region::taiwan(), 3, &time, &SimConfig::default());
        assert_eq!(rc.receivers, 9);
        assert!(rc.worst_fraction <= rc.mean_fraction + 1e-12);
        assert!(rc.simultaneous_fraction <= rc.worst_fraction + 1e-12);
        assert!((0.0..=1.0).contains(&rc.mean_fraction));
    }

    #[test]
    fn small_region_sites_correlated() {
        // Taiwan spans ~400 km: one satellite often covers all receivers at
        // once, so simultaneous coverage is close to worst-site coverage.
        let (sats, time) = setup(400);
        let rc = region_coverage(&sats, &Region::taiwan(), 2, &time, &SimConfig::default());
        assert!(
            rc.simultaneous_fraction > 0.5 * rc.worst_fraction,
            "simultaneous {} vs worst {}",
            rc.simultaneous_fraction,
            rc.worst_fraction
        );
    }

    #[test]
    fn latitude_band_dominates_region_size() {
        // Ukraine (44-52 N) sits right under the 53-degree shells'
        // density band, where satellites linger near their inclination
        // limit; Taiwan (22-25 N) does not. Despite spanning 9x the
        // longitude, Ukraine's per-site coverage is *better* — the
        // latitude effect the paper's inclination discussions rest on.
        let (sats, time) = setup(300);
        let taiwan = region_coverage(&sats, &Region::taiwan(), 3, &time, &SimConfig::default());
        let ukraine = region_coverage(&sats, &Region::ukraine(), 3, &time, &SimConfig::default());
        assert!(
            ukraine.mean_fraction > taiwan.mean_fraction,
            "ukraine {} vs taiwan {}",
            ukraine.mean_fraction,
            taiwan.mean_fraction
        );
        // But the simultaneity *penalty* (worst-site minus simultaneous) is
        // larger for the geographically larger region.
        let pen_t = taiwan.worst_fraction - taiwan.simultaneous_fraction;
        let pen_u = ukraine.worst_fraction - ukraine.simultaneous_fraction;
        assert!(pen_u >= pen_t - 0.02, "penalty ukraine {pen_u} vs taiwan {pen_t}");
    }

    #[test]
    fn more_satellites_raise_worst_site() {
        let (small, time) = setup(150);
        let (large, _) = setup(600);
        let cfg = SimConfig::default();
        let a = region_coverage(&small, &Region::taiwan(), 2, &time, &cfg);
        let b = region_coverage(&large, &Region::taiwan(), 2, &time, &cfg);
        assert!(b.worst_fraction > a.worst_fraction, "{} vs {}", b.worst_fraction, a.worst_fraction);
    }
}
