//! The shared ephemeris layer: propagate once, consume everywhere.
//!
//! Every experiment in the paper's evaluation starts from the same expensive
//! step — propagate a Starlink-scale pool over a time grid. Before this layer
//! existed, that step was re-implemented (and re-run) independently by the
//! visibility engine, the coverage map, the latency model, the ISL relay and
//! the contact-volume estimator; sweeps such as the elevation-mask ablation
//! paid it once *per mask* even though positions do not depend on the mask.
//!
//! [`EphemerisStore`] materializes the positions exactly once, in a columnar
//! (structure-of-arrays) table of ECEF coordinates: `x`, `y`, `z` are flat
//! `Vec<f64>` indexed `[sat * steps + k]`, so one satellite's trajectory is a
//! contiguous cache-friendly row. The build is partitioned across threads by
//! satellite (on the shared `simrt` worker pool, honoring
//! `SimConfig::threads`) and respects `SimConfig::propagator`. Downstream consumers — the visibility
//! kernel, the coverage map, bent-pipe latency, ISL relays — are pure
//! geometry over the store.
//!
//! The store is serde-serializable and additionally ships a compact binary
//! disk format so the bench harness can cache it across processes, keyed by
//! (pool hash, grid, propagator). Positions are stored as raw `f64` bits, so
//! a cache hit is bit-identical to a fresh build.
//!
//! Memory: `sats * steps * 3 * 8` bytes — ~150 MB for the full 4.4k-satellite
//! pool at the quick fidelity (2 days / 120 s), ~1 GB at the paper's full
//! fidelity (1 week / 60 s). That is the price of running propagation once
//! instead of once per experiment; sharding the grid is future work.

use crate::timegrid::TimeGrid;
use crate::visibility::{PropagatorKind, SimConfig};
use orbital::constellation::Satellite;
use orbital::frames::eci_to_ecef;
use orbital::propagator::{KeplerJ2, Propagator, Sgp4};
use orbital::time::Epoch;
use orbital::Vec3;
use serde::{Deserialize, Serialize};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic + version prefix of the binary cache format.
const CACHE_MAGIC: &[u8; 8] = b"MPLEPH01";

/// A columnar table of ECEF positions for a satellite pool over a time grid.
///
/// Layout: coordinate `c` of satellite `sat` at step `k` lives at index
/// `sat * grid.steps + k` of the `c` column. Satellite order matches the
/// slice the store was built from; `sat_ids` records their stable IDs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EphemerisStore {
    /// The time grid the positions are sampled on.
    pub grid: TimeGrid,
    /// Stable satellite IDs in row order.
    pub sat_ids: Vec<u32>,
    /// The propagator model that produced the positions.
    pub propagator: PropagatorKind,
    /// Hash of the source pool (elements + epochs); part of the cache key.
    pub pool_hash: u64,
    x: Vec<f64>,
    y: Vec<f64>,
    z: Vec<f64>,
}

/// One per-chunk propagation job: a satellite slice plus its x/y/z columns.
type ChunkJob<'a> = (&'a [Satellite], &'a mut [f64], &'a mut [f64], &'a mut [f64]);

impl EphemerisStore {
    /// Propagate `sats` over `grid` and materialize the columnar table.
    ///
    /// Work is partitioned across `config.threads` workers by satellite;
    /// the model is `config.propagator`. Positions are identical, bit for
    /// bit, to calling `Propagator::position_at` per step and rotating with
    /// the grid's precomputed GMST.
    pub fn build(sats: &[Satellite], grid: &TimeGrid, config: &SimConfig) -> EphemerisStore {
        let steps = grid.steps;
        let n = sats.len();
        let mut x = vec![0.0f64; n * steps];
        let mut y = vec![0.0f64; n * steps];
        let mut z = vec![0.0f64; n * steps];
        let threads = config.thread_count().max(1).min(n.max(1));
        let chunk = n.div_ceil(threads).max(1);
        // Pre-split the columns into per-chunk jobs, then run the jobs on
        // the shared simrt pool. The partitioning (and hence every floating
        // point result) is identical to the old scoped-thread version.
        let mut jobs: Vec<ChunkJob<'_>> = Vec::new();
        {
            let mut xs_rest: &mut [f64] = &mut x;
            let mut ys_rest: &mut [f64] = &mut y;
            let mut zs_rest: &mut [f64] = &mut z;
            for sat_chunk in sats.chunks(chunk) {
                let take = sat_chunk.len() * steps;
                let (xs, xr) = xs_rest.split_at_mut(take);
                let (ys, yr) = ys_rest.split_at_mut(take);
                let (zs, zr) = zs_rest.split_at_mut(take);
                xs_rest = xr;
                ys_rest = yr;
                zs_rest = zr;
                jobs.push((sat_chunk, xs, ys, zs));
            }
        }
        let prop_kind = config.propagator;
        simrt::par_for_each_mut(&mut jobs, threads, |_, (sat_chunk, xs, ys, zs)| {
            // One scratch ECI buffer per chunk, reused across its satellites.
            let mut eci = vec![Vec3::ZERO; steps];
            for (i, sat) in sat_chunk.iter().enumerate() {
                propagator_for(sat, prop_kind, |prop| {
                    prop.positions_into(grid.start, grid.step_s, &mut eci);
                });
                let row = i * steps;
                for (k, &p) in eci.iter().enumerate() {
                    let ecef = eci_to_ecef(p, grid.gmst_at(k));
                    xs[row + k] = ecef.x;
                    ys[row + k] = ecef.y;
                    zs[row + k] = ecef.z;
                }
            }
        });
        EphemerisStore {
            grid: grid.clone(),
            sat_ids: sats.iter().map(|s| s.id).collect(),
            propagator: config.propagator,
            pool_hash: hash_pool(sats),
            x,
            y,
            z,
        }
    }

    /// Number of satellites in the store.
    pub fn sat_count(&self) -> usize {
        self.sat_ids.len()
    }

    /// Number of grid steps per satellite row.
    pub fn steps(&self) -> usize {
        self.grid.steps
    }

    /// ECEF position of satellite `sat` (row order) at step `k`, km.
    #[inline]
    pub fn position(&self, sat: usize, k: usize) -> Vec3 {
        let i = sat * self.grid.steps + k;
        Vec3::new(self.x[i], self.y[i], self.z[i])
    }

    /// The contiguous `(x, y, z)` coordinate rows of satellite `sat` — the
    /// layout the hot screening kernels iterate.
    #[inline]
    pub fn row(&self, sat: usize) -> (&[f64], &[f64], &[f64]) {
        let lo = sat * self.grid.steps;
        let hi = lo + self.grid.steps;
        (&self.x[lo..hi], &self.y[lo..hi], &self.z[lo..hi])
    }

    /// Gather the ECEF positions of every satellite at step `k` into `out`
    /// (row order), reusing its capacity — the step-kernel shape: one
    /// strided gather per step into a scratch buffer instead of a fresh
    /// `Vec` per step. Values are bit-identical to [`Self::position`].
    pub fn positions_at_step_into(&self, k: usize, out: &mut Vec<Vec3>) {
        assert!(k < self.grid.steps, "step {k} out of range");
        out.clear();
        out.reserve(self.sat_count());
        for sat in 0..self.sat_count() {
            let i = sat * self.grid.steps + k;
            out.push(Vec3::new(self.x[i], self.y[i], self.z[i]));
        }
    }

    /// A new store holding only the given satellites (row order follows
    /// `indices`). Pure memcpy — no re-propagation.
    pub fn select(&self, indices: &[usize]) -> EphemerisStore {
        let steps = self.grid.steps;
        let mut x = Vec::with_capacity(indices.len() * steps);
        let mut y = Vec::with_capacity(indices.len() * steps);
        let mut z = Vec::with_capacity(indices.len() * steps);
        for &s in indices {
            let lo = s * steps;
            x.extend_from_slice(&self.x[lo..lo + steps]);
            y.extend_from_slice(&self.y[lo..lo + steps]);
            z.extend_from_slice(&self.z[lo..lo + steps]);
        }
        let mut h = self.pool_hash;
        fnv_u64(&mut h, indices.len() as u64);
        for &s in indices {
            fnv_u64(&mut h, s as u64);
        }
        EphemerisStore {
            grid: self.grid.clone(),
            sat_ids: indices.iter().map(|&s| self.sat_ids[s]).collect(),
            propagator: self.propagator,
            pool_hash: h,
            x,
            y,
            z,
        }
    }

    /// Whether this store was built from exactly this pool, grid, and
    /// propagator (the cache-validity predicate).
    pub fn matches(&self, sats: &[Satellite], grid: &TimeGrid, config: &SimConfig) -> bool {
        let (a_jdm, a_sod) = self.grid.start.jd_parts();
        let (b_jdm, b_sod) = grid.start.jd_parts();
        self.pool_hash == hash_pool(sats)
            && self.propagator == config.propagator
            && self.grid.steps == grid.steps
            && self.grid.step_s.to_bits() == grid.step_s.to_bits()
            && a_jdm.to_bits() == b_jdm.to_bits()
            && a_sod.to_bits() == b_sod.to_bits()
    }

    /// Load the store from `cache` when present and valid for (pool, grid,
    /// propagator); otherwise build it and (best-effort) write the cache.
    pub fn load_or_build(
        sats: &[Satellite],
        grid: &TimeGrid,
        config: &SimConfig,
        cache: Option<&Path>,
    ) -> EphemerisStore {
        if let Some(path) = cache {
            match Self::load(path) {
                Ok(store) if store.matches(sats, grid, config) => return store,
                Ok(_) => eprintln!(
                    "ephemeris cache {} is for a different (pool, grid, propagator); rebuilding",
                    path.display()
                ),
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => eprintln!("ephemeris cache {} unreadable ({e}); rebuilding", path.display()),
            }
        }
        let store = Self::build(sats, grid, config);
        if let Some(path) = cache {
            if let Err(e) = store.save(path) {
                eprintln!("warning: could not write ephemeris cache {}: {e}", path.display());
            }
        }
        store
    }

    /// Write the store to `path` in the compact binary cache format
    /// (positions as raw little-endian `f64` bits; bit-exact round trip).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        w.write_all(CACHE_MAGIC)?;
        w.write_all(&self.pool_hash.to_le_bytes())?;
        w.write_all(&[match self.propagator {
            PropagatorKind::KeplerJ2 => 0u8,
            PropagatorKind::Sgp4 => 1u8,
        }])?;
        w.write_all(&(self.sat_ids.len() as u64).to_le_bytes())?;
        w.write_all(&(self.grid.steps as u64).to_le_bytes())?;
        w.write_all(&self.grid.step_s.to_le_bytes())?;
        let (jdm, sod) = self.grid.start.jd_parts();
        w.write_all(&jdm.to_le_bytes())?;
        w.write_all(&sod.to_le_bytes())?;
        for id in &self.sat_ids {
            w.write_all(&id.to_le_bytes())?;
        }
        for column in [&self.x, &self.y, &self.z] {
            write_f64s(&mut w, column)?;
        }
        w.flush()
    }

    /// Read a store previously written by [`EphemerisStore::save`].
    pub fn load(path: &Path) -> io::Result<EphemerisStore> {
        let mut r = BufReader::new(std::fs::File::open(path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != CACHE_MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not an ephemeris cache"));
        }
        let pool_hash = read_u64(&mut r)?;
        let mut kind = [0u8; 1];
        r.read_exact(&mut kind)?;
        let propagator = match kind[0] {
            0 => PropagatorKind::KeplerJ2,
            1 => PropagatorKind::Sgp4,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown propagator tag {other}"),
                ))
            }
        };
        let sats = read_u64(&mut r)? as usize;
        let steps = read_u64(&mut r)? as usize;
        let step_s = f64::from_bits(read_u64(&mut r)?);
        let jdm = f64::from_bits(read_u64(&mut r)?);
        let sod = f64::from_bits(read_u64(&mut r)?);
        let step_positive = step_s.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
        if steps == 0 || !step_positive || !jdm.is_finite() || !sod.is_finite() {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "corrupt ephemeris header"));
        }
        let grid = TimeGrid::with_steps(Epoch::from_jd_parts(jdm, sod), steps, step_s);
        let mut sat_ids = Vec::with_capacity(sats);
        let mut id = [0u8; 4];
        for _ in 0..sats {
            r.read_exact(&mut id)?;
            sat_ids.push(u32::from_le_bytes(id));
        }
        let len = sats
            .checked_mul(steps)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "ephemeris size overflow"))?;
        let x = read_f64s(&mut r, len)?;
        let y = read_f64s(&mut r, len)?;
        let z = read_f64s(&mut r, len)?;
        Ok(EphemerisStore { grid, sat_ids, propagator, pool_hash, x, y, z })
    }
}

/// Instantiate the configured propagator for one satellite and hand it to
/// `f`. (A closure instead of a return value because the two concrete
/// propagator types have no common owned supertype without boxing.)
fn propagator_for(sat: &Satellite, kind: PropagatorKind, f: impl FnOnce(&dyn Propagator)) {
    match kind {
        PropagatorKind::KeplerJ2 => f(&KeplerJ2::from_elements(&sat.elements, sat.epoch)),
        PropagatorKind::Sgp4 => {
            let tle = sat.to_tle();
            f(&Sgp4::from_tle(&tle).expect("constellation TLEs are near-Earth"))
        }
    }
}

/// FNV-1a hash of a satellite pool: element sets, epochs, and IDs. Two pools
/// hash equal iff every propagator input is bit-identical, which is the
/// correctness condition for reusing a cached ephemeris.
pub fn hash_pool(sats: &[Satellite]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv_u64(&mut h, sats.len() as u64);
    for s in sats {
        fnv_u64(&mut h, s.id as u64);
        let el = &s.elements;
        for f in [
            el.semi_major_axis_km,
            el.eccentricity,
            el.inclination_rad,
            el.raan_rad,
            el.arg_perigee_rad,
            el.mean_anomaly_rad,
        ] {
            fnv_u64(&mut h, f.to_bits());
        }
        let (jdm, sod) = s.epoch.jd_parts();
        fnv_u64(&mut h, jdm.to_bits());
        fnv_u64(&mut h, sod.to_bits());
    }
    h
}

fn fnv_u64(hash: &mut u64, value: u64) {
    for b in value.to_le_bytes() {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

fn write_f64s<W: Write>(w: &mut W, values: &[f64]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(8 * 8192);
    for chunk in values.chunks(8192) {
        buf.clear();
        for v in chunk {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

fn read_f64s<R: Read>(r: &mut R, len: usize) -> io::Result<Vec<f64>> {
    let mut out = Vec::with_capacity(len);
    let mut buf = vec![0u8; 8 * 8192];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(8192);
        let bytes = &mut buf[..8 * take];
        r.read_exact(bytes)?;
        for b in bytes.chunks_exact(8) {
            out.push(f64::from_le_bytes(b.try_into().expect("chunk is 8 bytes")));
        }
        remaining -= take;
    }
    Ok(out)
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbital::constellation::single_plane;
    use orbital::frames::eci_to_ecef;
    use orbital::propagator::{KeplerJ2, Propagator};

    fn epoch() -> Epoch {
        Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
    }

    #[test]
    fn store_matches_per_step_propagation() {
        let sats = single_plane(5, 550.0, 53.0, epoch());
        let grid = TimeGrid::new(epoch(), 3.0 * 3600.0, 60.0);
        let store = EphemerisStore::build(&sats, &grid, &SimConfig::default());
        assert_eq!(store.sat_count(), 5);
        assert_eq!(store.steps(), grid.steps);
        for (i, sat) in sats.iter().enumerate() {
            let prop = KeplerJ2::from_elements(&sat.elements, sat.epoch);
            for k in 0..grid.steps {
                let want = eci_to_ecef(prop.position_at(grid.epoch_at(k)), grid.gmst_at(k));
                // Bit-identical to the pre-refactor per-step path.
                assert_eq!(store.position(i, k), want, "sat {i} step {k}");
            }
        }
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        let sats = single_plane(7, 550.0, 53.0, epoch());
        let grid = TimeGrid::new(epoch(), 2.0 * 3600.0, 120.0);
        let t1 = EphemerisStore::build(&sats, &grid, &SimConfig { threads: 1, ..Default::default() });
        let t4 = EphemerisStore::build(&sats, &grid, &SimConfig { threads: 4, ..Default::default() });
        for s in 0..sats.len() {
            for k in 0..grid.steps {
                assert_eq!(t1.position(s, k), t4.position(s, k), "sat {s} step {k}");
            }
        }
    }

    #[test]
    fn sgp4_store_differs_from_keplerj2() {
        let sats = single_plane(2, 550.0, 53.0, epoch());
        let grid = TimeGrid::new(epoch(), 86_400.0, 600.0);
        let kj2 = EphemerisStore::build(&sats, &grid, &SimConfig::default());
        let cfg = SimConfig { propagator: PropagatorKind::Sgp4, ..Default::default() };
        let sgp4 = EphemerisStore::build(&sats, &grid, &cfg);
        let max_sep = (0..sats.len())
            .flat_map(|s| (0..grid.steps).map(move |k| (s, k)))
            .map(|(s, k)| kj2.position(s, k).distance(sgp4.position(s, k)))
            .fold(0.0f64, f64::max);
        // The models agree to a few km but are far from bit-identical.
        assert!(max_sep > 0.1, "SGP4 indistinguishable from KeplerJ2: {max_sep} km");
        assert!(max_sep < 50.0, "models diverged implausibly: {max_sep} km");
    }

    #[test]
    fn select_copies_rows() {
        let sats = single_plane(6, 550.0, 53.0, epoch());
        let grid = TimeGrid::new(epoch(), 3600.0, 300.0);
        let store = EphemerisStore::build(&sats, &grid, &SimConfig::default());
        let sub = store.select(&[4, 1]);
        assert_eq!(sub.sat_count(), 2);
        assert_eq!(sub.sat_ids, vec![store.sat_ids[4], store.sat_ids[1]]);
        for k in 0..grid.steps {
            assert_eq!(sub.position(0, k), store.position(4, k));
            assert_eq!(sub.position(1, k), store.position(1, k));
        }
        assert_ne!(sub.pool_hash, store.pool_hash);
    }

    #[test]
    fn cache_round_trip_is_bit_exact() {
        let sats = single_plane(3, 550.0, 53.0, epoch());
        let grid = TimeGrid::new(epoch(), 7200.0, 180.0);
        let cfg = SimConfig::default();
        let store = EphemerisStore::build(&sats, &grid, &cfg);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mpleo-ephemeris-test-{}.bin", std::process::id()));
        store.save(&path).expect("save");
        let loaded = EphemerisStore::load(&path).expect("load");
        assert!(loaded.matches(&sats, &grid, &cfg));
        assert_eq!(loaded.sat_ids, store.sat_ids);
        assert_eq!(loaded.propagator, store.propagator);
        for s in 0..store.sat_count() {
            for k in 0..store.steps() {
                assert_eq!(loaded.position(s, k), store.position(s, k), "sat {s} step {k}");
            }
        }
        // A different pool or grid invalidates the cache.
        let other = single_plane(4, 550.0, 53.0, epoch());
        assert!(!loaded.matches(&other, &grid, &cfg));
        let other_grid = TimeGrid::new(epoch(), 7200.0, 90.0);
        assert!(!loaded.matches(&sats, &other_grid, &cfg));
        let sgp4 = SimConfig { propagator: PropagatorKind::Sgp4, ..Default::default() };
        assert!(!loaded.matches(&sats, &grid, &sgp4));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_or_build_uses_cache() {
        let sats = single_plane(2, 550.0, 53.0, epoch());
        let grid = TimeGrid::new(epoch(), 3600.0, 300.0);
        let cfg = SimConfig::default();
        let path = std::env::temp_dir()
            .join(format!("mpleo-ephemeris-lob-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let built = EphemerisStore::load_or_build(&sats, &grid, &cfg, Some(&path));
        assert!(path.exists(), "first call must write the cache");
        let loaded = EphemerisStore::load_or_build(&sats, &grid, &cfg, Some(&path));
        assert_eq!(loaded.pool_hash, built.pool_hash);
        for s in 0..built.sat_count() {
            for k in 0..built.steps() {
                assert_eq!(loaded.position(s, k), built.position(s, k));
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pool_hash_sensitive_to_elements() {
        let a = single_plane(3, 550.0, 53.0, epoch());
        let b = single_plane(3, 551.0, 53.0, epoch());
        assert_ne!(hash_pool(&a), hash_pool(&b));
        assert_eq!(hash_pool(&a), hash_pool(&a.clone()));
    }
}
