//! Link latency: propagation delay through the bent pipe.
//!
//! The paper dismisses geostationary satellites because their altitude
//! "leads to orders of magnitude degradation in network latency
//! (second-level)" (§2). This module computes the actual bent-pipe
//! propagation delay — terminal → satellite → ground station — over a
//! simulation grid, picking the best (lowest-delay) visible satellite at
//! each step, plus the closed-form GEO comparison.

use crate::ephemeris::EphemerisStore;
use crate::timegrid::TimeGrid;
use crate::visibility::SimConfig;
use orbital::constellation::Satellite;
use orbital::ground::GroundSite;
use serde::{Deserialize, Serialize};

/// Speed of light, km/s.
pub const C_KM_S: f64 = 299_792.458;

/// One-way bent-pipe latency series for a terminal/ground-station pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencySeries {
    /// Per-step one-way delay, milliseconds; `None` when no satellite
    /// simultaneously sees both endpoints.
    pub delay_ms: Vec<Option<f64>>,
    /// Step size of the underlying grid, seconds.
    pub step_s: f64,
}

impl LatencySeries {
    /// Fraction of steps with a usable path.
    pub fn availability(&self) -> f64 {
        if self.delay_ms.is_empty() {
            return 0.0;
        }
        self.delay_ms.iter().filter(|d| d.is_some()).count() as f64 / self.delay_ms.len() as f64
    }

    /// Mean delay over connected steps, ms. `None` if never connected.
    pub fn mean_ms(&self) -> Option<f64> {
        let connected: Vec<f64> = self.delay_ms.iter().flatten().cloned().collect();
        if connected.is_empty() {
            None
        } else {
            Some(connected.iter().sum::<f64>() / connected.len() as f64)
        }
    }

    /// Delay percentile over connected steps, nearest-rank convention:
    /// the connected delays are sorted and the sample at (0-based) index
    /// `round((n - 1) * q)` is returned — always an observed value, never
    /// an interpolation. Returns `None` when `q` is outside `[0, 1]` or
    /// no step is connected.
    pub fn percentile_ms(&self, q: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&q) {
            return None;
        }
        let mut connected: Vec<f64> = self.delay_ms.iter().flatten().cloned().collect();
        if connected.is_empty() {
            return None;
        }
        connected.sort_by(f64::total_cmp);
        let idx = ((connected.len() - 1) as f64 * q).round() as usize;
        Some(connected[idx])
    }
}

/// Compute the bent-pipe one-way latency series: at each step, the best
/// (minimum path length) satellite visible to *both* the terminal and the
/// ground station carries the traffic.
///
/// Convenience for one-shot callers: builds a throwaway [`EphemerisStore`]
/// (honoring `config.propagator` and `config.threads`) and delegates to
/// [`bentpipe_latency_from_store`].
pub fn bentpipe_latency(
    sats: &[Satellite],
    terminal: &GroundSite,
    ground_station: &GroundSite,
    grid: &TimeGrid,
    config: &SimConfig,
) -> LatencySeries {
    let store = EphemerisStore::build(sats, grid, config);
    bentpipe_latency_from_store(&store, terminal, ground_station, config)
}

/// Propagation-free latency kernel over a prebuilt [`EphemerisStore`].
pub fn bentpipe_latency_from_store(
    store: &EphemerisStore,
    terminal: &GroundSite,
    ground_station: &GroundSite,
    config: &SimConfig,
) -> LatencySeries {
    let sin_mask = config.sin_mask();
    let steps = store.steps();
    let mut delay_ms = Vec::with_capacity(steps);
    for k in 0..steps {
        let mut best: Option<f64> = None;
        for s in 0..store.sat_count() {
            let ecef = store.position(s, k);
            if terminal.sees_ecef_sin(ecef, sin_mask) && ground_station.sees_ecef_sin(ecef, sin_mask)
            {
                let path_km = terminal.ecef.distance(ecef) + ecef.distance(ground_station.ecef);
                let d = path_km / C_KM_S * 1000.0;
                if best.is_none_or(|b| d < b) {
                    best = Some(d);
                }
            }
        }
        delay_ms.push(best);
    }
    LatencySeries { delay_ms, step_s: store.grid.step_s }
}

/// One-way bent-pipe delay through a geostationary satellite for endpoints
/// at the given great-circle distances from the sub-satellite point
/// (closed form; the paper's §2 comparison baseline).
pub fn geo_latency_ms(terminal_offset_km: f64, gs_offset_km: f64) -> f64 {
    const GEO_ALT_KM: f64 = 35_786.0;
    let r = orbital::EARTH_RADIUS_KM;
    let leg = |surface_offset_km: f64| -> f64 {
        // Slant range from a surface point to the GEO satellite, via the
        // central angle subtended by the surface offset.
        let theta = surface_offset_km / r;
        let geo_r = r + GEO_ALT_KM;
        (r * r + geo_r * geo_r - 2.0 * r * geo_r * theta.cos()).sqrt()
    };
    (leg(terminal_offset_km) + leg(gs_offset_km)) / C_KM_S * 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbital::constellation::single_plane;
    use orbital::time::Epoch;

    fn epoch() -> Epoch {
        Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
    }

    #[test]
    fn leo_latency_milliseconds() {
        let sats = single_plane(12, 550.0, 53.0, epoch());
        let term = GroundSite::from_degrees("T", 25.0, 121.5);
        let gs = GroundSite::from_degrees("G", 25.5, 121.0);
        let grid = TimeGrid::new(epoch(), 86_400.0, 60.0);
        let series = bentpipe_latency(&sats, &term, &gs, &grid, &SimConfig::default());
        assert!(series.availability() > 0.0, "some connectivity expected");
        let mean = series.mean_ms().unwrap();
        // LEO bent pipe: single-digit milliseconds one way.
        assert!(mean > 3.0 && mean < 15.0, "mean delay {mean} ms");
        let p99 = series.percentile_ms(0.99).unwrap();
        assert!(p99 >= mean, "p99 {p99} >= mean {mean}");
        assert!(p99 < 20.0, "p99 {p99} ms");
    }

    #[test]
    fn delay_bounded_below_by_altitude() {
        // No path can beat twice the altitude at lightspeed.
        let sats = single_plane(12, 550.0, 53.0, epoch());
        let term = GroundSite::from_degrees("T", 25.0, 121.5);
        let gs = GroundSite::from_degrees("G", 25.0, 121.5);
        let grid = TimeGrid::new(epoch(), 86_400.0, 60.0);
        let series = bentpipe_latency(&sats, &term, &gs, &grid, &SimConfig::default());
        let floor = 2.0 * 550.0 / C_KM_S * 1000.0;
        for d in series.delay_ms.iter().flatten() {
            assert!(*d >= floor - 1e-9, "delay {d} below physical floor {floor}");
        }
    }

    #[test]
    fn geo_latency_is_orders_of_magnitude_worse() {
        // Paper Sec. 2: GEO is second-level vs LEO millisecond-level.
        let geo_oneway = geo_latency_ms(1000.0, 1000.0);
        // One-way bent pipe through GEO: ~240 ms.
        assert!(geo_oneway > 230.0 && geo_oneway < 260.0, "geo {geo_oneway} ms");
        // Round trip with a request/response (4 legs): ~0.5 s — "second
        // level" in the paper's words.
        assert!(2.0 * geo_oneway > 450.0);
        // Versus LEO's ~8 ms: more than an order of magnitude.
        assert!(geo_oneway / 8.0 > 25.0);
    }

    #[test]
    fn geo_latency_grows_with_offset() {
        assert!(geo_latency_ms(0.0, 0.0) < geo_latency_ms(3000.0, 3000.0));
    }

    #[test]
    fn empty_series_behaviour() {
        let s = LatencySeries { delay_ms: vec![], step_s: 60.0 };
        assert_eq!(s.availability(), 0.0);
        assert!(s.mean_ms().is_none());
        assert!(s.percentile_ms(0.5).is_none());
    }

    #[test]
    fn percentile_rejects_out_of_range_q() {
        let s = LatencySeries { delay_ms: vec![Some(5.0), Some(7.0), None], step_s: 60.0 };
        assert!(s.percentile_ms(-0.01).is_none());
        assert!(s.percentile_ms(1.01).is_none());
        assert!(s.percentile_ms(f64::NAN).is_none());
        // In-range q still answers on the same series.
        assert_eq!(s.percentile_ms(0.0), Some(5.0));
        assert_eq!(s.percentile_ms(1.0), Some(7.0));
    }

    #[test]
    fn percentile_nearest_rank_picks_observed_values() {
        // Nearest rank: with n = 3 samples, q = 0.5 maps to index
        // round(2 * 0.5) = 1 — the middle observation, never an average.
        let s =
            LatencySeries { delay_ms: vec![Some(4.0), Some(6.0), Some(10.0)], step_s: 60.0 };
        assert_eq!(s.percentile_ms(0.5), Some(6.0));
        // q = 0.75 maps to round(1.5) = 2.
        assert_eq!(s.percentile_ms(0.75), Some(10.0));
    }

    #[test]
    fn disconnected_when_gs_far() {
        let sats = single_plane(4, 550.0, 53.0, epoch());
        let term = GroundSite::from_degrees("T", 25.0, 121.5);
        let gs = GroundSite::from_degrees("G", -35.0, -58.0);
        let grid = TimeGrid::new(epoch(), 6.0 * 3600.0, 120.0);
        let series = bentpipe_latency(&sats, &term, &gs, &grid, &SimConfig::default());
        assert_eq!(series.availability(), 0.0);
    }
}
