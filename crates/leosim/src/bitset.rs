//! Compact time bitsets.
//!
//! A [`TimeBitset`] records, for every step of a [`crate::TimeGrid`],
//! whether some predicate held (satellite visible, terminal connected, …).
//! All the paper's Monte-Carlo experiments reduce to unions and
//! intersections of these bitsets followed by gap extraction, so these
//! operations are implemented over `u64` blocks.

use serde::{Deserialize, Serialize};

/// A fixed-length bitset indexed by time-grid step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeBitset {
    len: usize,
    blocks: Vec<u64>,
}

/// A half-open run of consecutive steps `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Run {
    /// First step of the run.
    pub start: usize,
    /// One past the last step of the run.
    pub end: usize,
}

impl Run {
    /// Number of steps in the run.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the run is empty.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

impl TimeBitset {
    /// An all-zeros bitset of `len` steps.
    pub fn zeros(len: usize) -> Self {
        TimeBitset { len, blocks: vec![0; len.div_ceil(64)] }
    }

    /// An all-ones bitset of `len` steps.
    pub fn ones(len: usize) -> Self {
        let mut b = TimeBitset { len, blocks: vec![u64::MAX; len.div_ceil(64)] };
        b.clear_tail();
        b
    }

    /// Number of steps the bitset covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitset has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set step `k` to 1.
    #[inline]
    pub fn set(&mut self, k: usize) {
        debug_assert!(k < self.len);
        self.blocks[k / 64] |= 1u64 << (k % 64);
    }

    /// Clear step `k` to 0.
    #[inline]
    pub fn clear(&mut self, k: usize) {
        debug_assert!(k < self.len);
        self.blocks[k / 64] &= !(1u64 << (k % 64));
    }

    /// Read step `k`.
    #[inline]
    pub fn get(&self, k: usize) -> bool {
        debug_assert!(k < self.len);
        (self.blocks[k / 64] >> (k % 64)) & 1 == 1
    }

    /// Number of set steps.
    pub fn count_ones(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Number of clear steps.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Fraction of steps set, in `[0, 1]`. Zero-length bitsets yield 0.
    pub fn fraction_ones(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// `self |= other` (element-wise OR).
    pub fn union_assign(&mut self, other: &TimeBitset) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// `self &= other` (element-wise AND).
    pub fn intersect_assign(&mut self, other: &TimeBitset) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// `self &= !other` (remove the steps set in `other`).
    pub fn difference_assign(&mut self, other: &TimeBitset) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
    }

    /// Element-wise complement.
    pub fn complement(&self) -> TimeBitset {
        let mut out = TimeBitset {
            len: self.len,
            blocks: self.blocks.iter().map(|b| !b).collect(),
        };
        out.clear_tail();
        out
    }

    /// Union of an iterator of bitsets; `len` is used when empty.
    pub fn union_of<'a>(sets: impl IntoIterator<Item = &'a TimeBitset>, len: usize) -> TimeBitset {
        let mut acc = TimeBitset::zeros(len);
        for s in sets {
            acc.union_assign(s);
        }
        acc
    }

    /// Number of steps set in both `self` and `other`, without allocating.
    pub fn intersection_count(&self, other: &TimeBitset) -> usize {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Number of steps that would be newly covered by adding `other`
    /// (i.e. `|other \ self|`), without allocating.
    pub fn marginal_gain(&self, other: &TimeBitset) -> usize {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (!a & b).count_ones() as usize)
            .sum()
    }

    /// Runs of consecutive set steps.
    pub fn runs_of_ones(&self) -> Vec<Run> {
        self.runs(true)
    }

    /// Runs of consecutive clear steps (coverage *gaps*).
    pub fn runs_of_zeros(&self) -> Vec<Run> {
        self.runs(false)
    }

    /// Length (in steps) of the longest run of clear steps.
    pub fn longest_zero_run(&self) -> usize {
        self.runs_of_zeros().iter().map(Run::len).max().unwrap_or(0)
    }

    /// Length (in steps) of the longest run of set steps.
    pub fn longest_one_run(&self) -> usize {
        self.runs_of_ones().iter().map(Run::len).max().unwrap_or(0)
    }

    fn runs(&self, ones: bool) -> Vec<Run> {
        let mut out = Vec::new();
        let mut start: Option<usize> = None;
        for k in 0..self.len {
            let bit = self.get(k) == ones;
            match (bit, start) {
                (true, None) => start = Some(k),
                (false, Some(s)) => {
                    out.push(Run { start: s, end: k });
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            out.push(Run { start: s, end: self.len });
        }
        out
    }

    /// Indices of set steps.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&k| self.get(k))
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = TimeBitset::zeros(130);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(z.count_zeros(), 130);
        let o = TimeBitset::ones(130);
        assert_eq!(o.count_ones(), 130);
        assert!((o.fraction_ones() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn tail_bits_not_counted() {
        // len not a multiple of 64: complement must not set ghost bits.
        let z = TimeBitset::zeros(70);
        let c = z.complement();
        assert_eq!(c.count_ones(), 70);
        let c2 = c.complement();
        assert_eq!(c2.count_ones(), 0);
    }

    #[test]
    fn set_get_clear() {
        let mut b = TimeBitset::zeros(100);
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(99);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(99));
        assert!(!b.get(1) && !b.get(65));
        assert_eq!(b.count_ones(), 4);
        b.clear(63);
        assert!(!b.get(63));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn union_intersect_difference() {
        let mut a = TimeBitset::zeros(128);
        let mut b = TimeBitset::zeros(128);
        for k in 0..64 {
            a.set(k);
        }
        for k in 32..96 {
            b.set(k);
        }
        let mut u = a.clone();
        u.union_assign(&b);
        assert_eq!(u.count_ones(), 96);
        let mut i = a.clone();
        i.intersect_assign(&b);
        assert_eq!(i.count_ones(), 32);
        let mut d = a.clone();
        d.difference_assign(&b);
        assert_eq!(d.count_ones(), 32);
        assert_eq!(a.intersection_count(&b), 32);
        assert_eq!(a.marginal_gain(&b), 32);
        assert_eq!(u.marginal_gain(&a), 0);
    }

    #[test]
    fn union_of_many() {
        let sets: Vec<TimeBitset> = (0..5)
            .map(|i| {
                let mut s = TimeBitset::zeros(50);
                s.set(i * 10);
                s
            })
            .collect();
        let u = TimeBitset::union_of(sets.iter(), 50);
        assert_eq!(u.count_ones(), 5);
        let empty = TimeBitset::union_of(std::iter::empty(), 50);
        assert_eq!(empty.count_ones(), 0);
        assert_eq!(empty.len(), 50);
    }

    #[test]
    fn runs_extraction() {
        let mut b = TimeBitset::zeros(20);
        for k in [0, 1, 2, 7, 8, 15] {
            b.set(k);
        }
        let ones = b.runs_of_ones();
        assert_eq!(ones, vec![
            Run { start: 0, end: 3 },
            Run { start: 7, end: 9 },
            Run { start: 15, end: 16 }
        ]);
        let zeros = b.runs_of_zeros();
        assert_eq!(zeros, vec![
            Run { start: 3, end: 7 },
            Run { start: 9, end: 15 },
            Run { start: 16, end: 20 }
        ]);
        assert_eq!(b.longest_zero_run(), 6);
        assert_eq!(b.longest_one_run(), 3);
    }

    #[test]
    fn runs_edge_cases() {
        assert!(TimeBitset::zeros(10).runs_of_ones().is_empty());
        assert_eq!(TimeBitset::zeros(10).longest_zero_run(), 10);
        assert_eq!(TimeBitset::ones(10).runs_of_ones(), vec![Run { start: 0, end: 10 }]);
        assert_eq!(TimeBitset::zeros(0).longest_zero_run(), 0);
    }

    #[test]
    fn iter_ones_matches_get() {
        let mut b = TimeBitset::zeros(200);
        for k in (0..200).step_by(7) {
            b.set(k);
        }
        let idx: Vec<usize> = b.iter_ones().collect();
        assert_eq!(idx, (0..200).step_by(7).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut a = TimeBitset::zeros(10);
        let b = TimeBitset::zeros(11);
        a.union_assign(&b);
    }

    #[test]
    fn complement_roundtrip_fraction() {
        let mut b = TimeBitset::zeros(1000);
        for k in 0..250 {
            b.set(k * 4);
        }
        assert!((b.fraction_ones() - 0.25).abs() < 1e-12);
        assert!((b.complement().fraction_ones() - 0.75).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_bitset(len: usize) -> impl Strategy<Value = TimeBitset> {
        proptest::collection::vec(any::<bool>(), len).prop_map(move |bits| {
            let mut b = TimeBitset::zeros(len);
            for (k, set) in bits.iter().enumerate() {
                if *set {
                    b.set(k);
                }
            }
            b
        })
    }

    proptest! {
        #[test]
        fn union_count_bounds(a in arb_bitset(137), b in arb_bitset(137)) {
            let mut u = a.clone();
            u.union_assign(&b);
            prop_assert!(u.count_ones() >= a.count_ones().max(b.count_ones()));
            prop_assert!(u.count_ones() <= a.count_ones() + b.count_ones());
        }

        #[test]
        fn inclusion_exclusion(a in arb_bitset(137), b in arb_bitset(137)) {
            let mut u = a.clone();
            u.union_assign(&b);
            let i = a.intersection_count(&b);
            prop_assert_eq!(u.count_ones() + i, a.count_ones() + b.count_ones());
        }

        #[test]
        fn marginal_gain_is_union_minus_base(a in arb_bitset(200), b in arb_bitset(200)) {
            let mut u = a.clone();
            u.union_assign(&b);
            prop_assert_eq!(a.marginal_gain(&b), u.count_ones() - a.count_ones());
        }

        #[test]
        fn complement_involution(a in arb_bitset(99)) {
            prop_assert_eq!(a.complement().complement(), a);
        }

        #[test]
        fn runs_partition_the_domain(a in arb_bitset(150)) {
            let total: usize = a.runs_of_ones().iter().map(Run::len).sum::<usize>()
                + a.runs_of_zeros().iter().map(Run::len).sum::<usize>();
            prop_assert_eq!(total, 150);
            let ones: usize = a.runs_of_ones().iter().map(Run::len).sum();
            prop_assert_eq!(ones, a.count_ones());
        }

        #[test]
        fn demorgan(a in arb_bitset(80), b in arb_bitset(80)) {
            // !(a | b) == !a & !b
            let mut u = a.clone();
            u.union_assign(&b);
            let lhs = u.complement();
            let mut rhs = a.complement();
            rhs.intersect_assign(&b.complement());
            prop_assert_eq!(lhs, rhs);
        }
    }
}
