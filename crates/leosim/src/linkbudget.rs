//! RF link budgets for the bent pipe.
//!
//! The paper's §3.1 picks a *transparent* bent pipe (the satellite repeats
//! raw RF) and §4 notes the cost: a transparent repeater amplifies uplink
//! noise into the downlink, whereas a regenerative (decode-and-forward)
//! payload resets the noise budget at the satellite. This module implements
//! the standard link-budget chain — free-space path loss, EIRP, G/T,
//! carrier-to-noise — and composes the two legs both ways so the ablation
//! can quantify the §4 trade-off in achievable data rate.
//!
//! Conventions: decibel quantities are `_db`/`_dbw`/`_dbi`; frequencies in
//! GHz; distances in km; rates in bit/s.

use serde::{Deserialize, Serialize};

/// Boltzmann constant in dBW/K/Hz.
pub const BOLTZMANN_DBW: f64 = -228.599_16;

/// One directional RF leg (uplink or downlink).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RfLeg {
    /// Transmit EIRP, dBW.
    pub eirp_dbw: f64,
    /// Receive figure of merit G/T, dB/K.
    pub g_over_t_db_k: f64,
    /// Carrier frequency, GHz.
    pub frequency_ghz: f64,
    /// Occupied bandwidth, Hz.
    pub bandwidth_hz: f64,
    /// Implementation / atmospheric margin, dB (subtracted).
    pub losses_db: f64,
}

impl RfLeg {
    /// A Ku-band user uplink typical of LEO broadband terminals.
    pub fn ku_user_uplink() -> RfLeg {
        RfLeg {
            eirp_dbw: 33.0,      // ~45 cm dish, a few watts
            g_over_t_db_k: 8.0,  // satellite receive
            frequency_ghz: 14.0,
            bandwidth_hz: 62.5e6,
            losses_db: 2.0,
        }
    }

    /// A Ku-band space-to-ground downlink into a gateway.
    pub fn ku_gateway_downlink() -> RfLeg {
        RfLeg {
            eirp_dbw: 36.0,       // satellite TWTA + antenna
            g_over_t_db_k: 31.0,  // 2.4 m gateway dish
            frequency_ghz: 11.7,
            bandwidth_hz: 62.5e6,
            losses_db: 2.0,
        }
    }

    /// Carrier-to-noise ratio (linear) across this leg at `range_km`.
    pub fn cn_linear(&self, range_km: f64) -> f64 {
        let cn_db = self.eirp_dbw + self.g_over_t_db_k - free_space_path_loss_db(range_km, self.frequency_ghz)
            - BOLTZMANN_DBW
            - 10.0 * (self.bandwidth_hz).log10()
            - self.losses_db;
        10f64.powf(cn_db / 10.0)
    }

    /// Shannon-capacity bound for this leg alone at `range_km`, bit/s.
    pub fn capacity_bps(&self, range_km: f64) -> f64 {
        self.bandwidth_hz * (1.0 + self.cn_linear(range_km)).log2()
    }
}

/// Free-space path loss, dB.
pub fn free_space_path_loss_db(range_km: f64, frequency_ghz: f64) -> f64 {
    assert!(range_km > 0.0 && frequency_ghz > 0.0);
    // FSPL(dB) = 92.45 + 20 log10(d_km) + 20 log10(f_GHz)
    92.45 + 20.0 * range_km.log10() + 20.0 * frequency_ghz.log10()
}

/// How the satellite joins the two legs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PayloadArchitecture {
    /// Transparent repeater: uplink noise is re-amplified into the
    /// downlink; end-to-end C/N composes as `1/(1/up + 1/down)`.
    Transparent,
    /// Regenerative (decode-and-forward): each leg is decoded separately;
    /// the weaker leg bounds the end-to-end rate.
    Regenerative,
}

/// End-to-end carrier-to-noise (linear) through the bent pipe.
pub fn end_to_end_cn(
    arch: PayloadArchitecture,
    up: &RfLeg,
    up_range_km: f64,
    down: &RfLeg,
    down_range_km: f64,
) -> f64 {
    let cu = up.cn_linear(up_range_km);
    let cd = down.cn_linear(down_range_km);
    match arch {
        PayloadArchitecture::Transparent => 1.0 / (1.0 / cu + 1.0 / cd),
        PayloadArchitecture::Regenerative => cu.min(cd),
    }
}

/// End-to-end Shannon-bound throughput, bit/s (bandwidth = min of the
/// legs').
pub fn end_to_end_capacity_bps(
    arch: PayloadArchitecture,
    up: &RfLeg,
    up_range_km: f64,
    down: &RfLeg,
    down_range_km: f64,
) -> f64 {
    let bw = up.bandwidth_hz.min(down.bandwidth_hz);
    let cn = end_to_end_cn(arch, up, up_range_km, down, down_range_km);
    bw * (1.0 + cn).log2()
}

/// Slant range (km) from a ground site to a satellite at `altitude_km`
/// seen at elevation `elevation_rad` — the geometry feeding the budget.
pub fn slant_range_km(altitude_km: f64, elevation_rad: f64) -> f64 {
    let re = orbital::EARTH_RADIUS_KM;
    let r = re + altitude_km;
    let se = elevation_rad.sin();
    // Law of cosines solved for the range.
    (r * r - re * re * (1.0 - se * se)).sqrt() - re * se
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fspl_reference_values() {
        // 1000 km at 12 GHz: 92.45 + 60 + 21.58 = ~174 dB.
        let l = free_space_path_loss_db(1000.0, 12.0);
        assert!((l - 174.03).abs() < 0.1, "fspl {l}");
        // Doubling distance adds ~6 dB.
        let l2 = free_space_path_loss_db(2000.0, 12.0);
        assert!((l2 - l - 6.02).abs() < 0.01);
    }

    #[test]
    fn slant_range_limits() {
        // Straight up: range = altitude.
        let up = slant_range_km(550.0, std::f64::consts::FRAC_PI_2);
        assert!((up - 550.0).abs() < 1e-9, "zenith {up}");
        // At the horizon the range is much longer.
        let horizon = slant_range_km(550.0, 0.0);
        assert!(horizon > 2500.0 && horizon < 2900.0, "horizon {horizon}");
        // Monotone decreasing with elevation.
        let e25 = slant_range_km(550.0, 25f64.to_radians());
        assert!(e25 < horizon && e25 > up);
    }

    #[test]
    fn leo_link_closes_with_sane_rate() {
        let up = RfLeg::ku_user_uplink();
        let range = slant_range_km(550.0, 40f64.to_radians());
        let cn = up.cn_linear(range);
        let cn_db = 10.0 * cn.log10();
        // Typical user uplink C/N sits in the 5-20 dB window.
        assert!((2.0..25.0).contains(&cn_db), "C/N {cn_db} dB");
        let rate = up.capacity_bps(range);
        assert!(rate > 100e6 && rate < 1e9, "uplink bound {rate} bps");
    }

    #[test]
    fn capacity_falls_with_range() {
        let up = RfLeg::ku_user_uplink();
        let near = up.capacity_bps(slant_range_km(550.0, 80f64.to_radians()));
        let far = up.capacity_bps(slant_range_km(550.0, 25f64.to_radians()));
        assert!(near > far, "near {near} vs far {far}");
    }

    #[test]
    fn transparent_never_beats_regenerative() {
        let up = RfLeg::ku_user_uplink();
        let down = RfLeg::ku_gateway_downlink();
        for el in [10f64, 25.0, 45.0, 80.0] {
            let r = slant_range_km(550.0, el.to_radians());
            let t = end_to_end_cn(PayloadArchitecture::Transparent, &up, r, &down, r);
            let g = end_to_end_cn(PayloadArchitecture::Regenerative, &up, r, &down, r);
            assert!(t <= g + 1e-12, "el {el}: transparent {t} > regenerative {g}");
        }
    }

    #[test]
    fn noise_amplification_worst_when_legs_balanced() {
        // When one leg dominates, transparent ~ regenerative; when equal,
        // transparent loses ~3 dB.
        let up = RfLeg::ku_user_uplink();
        let _down = RfLeg::ku_gateway_downlink();
        let r = slant_range_km(550.0, 40f64.to_radians());
        let cu = up.cn_linear(r);
        // Equalize legs artificially for the balanced case.
        let balanced = 1.0 / (1.0 / cu + 1.0 / cu);
        assert!((balanced / cu - 0.5).abs() < 1e-12, "balanced transparent = half the C/N");
    }

    #[test]
    fn end_to_end_rate_gap_is_meaningful() {
        let up = RfLeg::ku_user_uplink();
        let down = RfLeg::ku_gateway_downlink();
        let r = slant_range_km(550.0, 25f64.to_radians());
        let t = end_to_end_capacity_bps(PayloadArchitecture::Transparent, &up, r, &down, r);
        let g = end_to_end_capacity_bps(PayloadArchitecture::Regenerative, &up, r, &down, r);
        assert!(g > t, "regenerative must win: {g} vs {t}");
        // But the satellite-simplicity cost the paper accepts is bounded:
        // well under 2x at these budgets.
        assert!(g / t < 2.0, "gap {g}/{t}");
    }
}
