//! Delay-tolerant (store-and-forward) service for sparse constellations.
//!
//! The paper's §4 bootstrapping answer: "early sparse MP-LEO deployments
//! can provide global coverage for delay tolerant applications (e.g., IoT
//! and opportunistic high volume transfers) at lower unit costs." In DTN
//! mode the satellite does not need to see the terminal and a ground
//! station simultaneously — it picks data up on one pass, *stores* it, and
//! forwards on the next ground-station pass. This module simulates that
//! pipeline and reports delivery-latency distributions, the quantity that
//! tells you which applications a sparse constellation can bootstrap with.

use crate::timegrid::TimeGrid;
use crate::visibility::VisibilityTable;
use serde::{Deserialize, Serialize};

/// Outcome of delivering one bundle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Delivery {
    /// Step at which the bundle was created at the terminal.
    pub created_step: usize,
    /// Step at which a satellite picked it up (`None` = never picked up
    /// within the horizon).
    pub pickup_step: Option<usize>,
    /// Step at which it reached a ground station.
    pub delivered_step: Option<usize>,
}

impl Delivery {
    /// End-to-end latency in steps, when delivered.
    pub fn latency_steps(&self) -> Option<usize> {
        self.delivered_step.map(|d| d - self.created_step)
    }
}

/// Simulate store-and-forward delivery of bundles created at `terminal_site`
/// every `create_every_steps`, carried by any satellite of `sat_indices`
/// and dropped at any of `gs_sites`.
///
/// Model: a bundle is picked up at the terminal's first satellite contact
/// at/after creation (unbounded satellite storage, negligible transfer
/// time — IoT-scale bundles against minutes-long passes), then delivered at
/// that satellite's next ground-station contact.
pub fn simulate_dtn(
    vt_terminal: &VisibilityTable,
    vt_ground: &VisibilityTable,
    terminal_site: usize,
    sat_indices: &[usize],
    gs_sites: &[usize],
    create_every_steps: usize,
) -> Vec<Delivery> {
    assert_eq!(vt_terminal.sat_count(), vt_ground.sat_count(), "satellite sets differ");
    assert_eq!(vt_terminal.grid.steps, vt_ground.grid.steps, "grids differ");
    assert!(create_every_steps >= 1);
    let steps = vt_terminal.grid.steps;
    // Per satellite: steps where it can reach any ground station.
    let sat_gs: Vec<crate::TimeBitset> = sat_indices
        .iter()
        .map(|&s| vt_ground.visible_to_any(s, gs_sites))
        .collect();
    let mut deliveries = Vec::new();
    for created in (0..steps).step_by(create_every_steps) {
        // Best delivery over all candidate carriers: the terminal uploads
        // to every visible satellite (broadcast is free in this model), so
        // the earliest ground contact among carriers wins.
        let mut best: Option<(usize, usize)> = None; // (pickup, delivered)
        for (pos, &s) in sat_indices.iter().enumerate() {
            // First terminal contact at/after creation.
            let pickup = (created..steps).find(|&k| vt_terminal.bitset(s, terminal_site).get(k));
            let Some(pickup) = pickup else { continue };
            // First GS contact at/after pickup.
            let delivered = (pickup..steps).find(|&k| sat_gs[pos].get(k));
            let Some(delivered) = delivered else { continue };
            if best.is_none_or(|(_, d)| delivered < d) {
                best = Some((pickup, delivered));
            }
        }
        deliveries.push(Delivery {
            created_step: created,
            pickup_step: best.map(|(p, _)| p),
            delivered_step: best.map(|(_, d)| d),
        });
    }
    deliveries
}

/// Summary statistics of a DTN run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DtnStats {
    /// Bundles created.
    pub created: usize,
    /// Bundles delivered within the horizon.
    pub delivered: usize,
    /// Delivery ratio, `[0, 1]`.
    pub delivery_ratio: f64,
    /// Mean end-to-end latency, seconds (over delivered bundles).
    pub mean_latency_s: f64,
    /// Median end-to-end latency, seconds.
    pub median_latency_s: f64,
    /// Worst delivered latency, seconds.
    pub max_latency_s: f64,
}

/// Compute summary statistics (bundles still undelivered at the end of the
/// horizon count against the ratio but not the latency percentiles).
pub fn dtn_stats(deliveries: &[Delivery], grid: &TimeGrid) -> DtnStats {
    let created = deliveries.len();
    let mut latencies: Vec<f64> = deliveries
        .iter()
        .filter_map(|d| d.latency_steps())
        .map(|s| s as f64 * grid.step_s)
        .collect();
    latencies.sort_by(f64::total_cmp);
    let delivered = latencies.len();
    DtnStats {
        created,
        delivered,
        delivery_ratio: if created == 0 { 0.0 } else { delivered as f64 / created as f64 },
        mean_latency_s: if delivered == 0 {
            0.0
        } else {
            latencies.iter().sum::<f64>() / delivered as f64
        },
        median_latency_s: if delivered == 0 { 0.0 } else { latencies[delivered / 2] },
        max_latency_s: latencies.last().copied().unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visibility::SimConfig;
    use orbital::constellation::single_plane;
    use orbital::ground::GroundSite;
    use orbital::time::Epoch;

    fn epoch() -> Epoch {
        Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
    }

    fn tables(n_sats: u32) -> (VisibilityTable, VisibilityTable) {
        let sats = single_plane(n_sats, 550.0, 53.0, epoch());
        // Terminal in Taipei; ground station in New York — no joint
        // visibility, so real-time bent-pipe would be dead, but DTN works.
        let term = [GroundSite::from_degrees("Taipei", 25.03, 121.56)];
        let gs = [GroundSite::from_degrees("NY-GS", 40.71, -74.01)];
        let grid = TimeGrid::new(epoch(), 2.0 * 86_400.0, 60.0);
        let cfg = SimConfig::default();
        (
            VisibilityTable::compute(&sats, &term, &grid, &cfg),
            VisibilityTable::compute(&sats, &gs, &grid, &cfg),
        )
    }

    #[test]
    fn sparse_constellation_delivers_eventually() {
        let (vt_t, vt_g) = tables(4);
        let idx: Vec<usize> = (0..4).collect();
        let deliveries = simulate_dtn(&vt_t, &vt_g, 0, &idx, &[0], 60);
        let stats = dtn_stats(&deliveries, &vt_t.grid);
        assert!(stats.created > 0);
        // A 4-satellite constellation delivers most bundles within 2 days.
        assert!(stats.delivery_ratio > 0.5, "ratio {}", stats.delivery_ratio);
        // Latency is hours, not milliseconds — delay-tolerant by name.
        assert!(stats.mean_latency_s > 600.0, "mean {}", stats.mean_latency_s);
        assert!(stats.median_latency_s <= stats.max_latency_s);
    }

    #[test]
    fn delivery_ordering_invariants() {
        let (vt_t, vt_g) = tables(4);
        let idx: Vec<usize> = (0..4).collect();
        for d in simulate_dtn(&vt_t, &vt_g, 0, &idx, &[0], 120) {
            if let (Some(p), Some(del)) = (d.pickup_step, d.delivered_step) {
                assert!(p >= d.created_step, "pickup before creation");
                assert!(del >= p, "delivery before pickup");
                // Pickup must be a real terminal contact of some satellite.
                assert!(idx.iter().any(|&s| vt_t.bitset(s, 0).get(p)));
            }
        }
    }

    #[test]
    fn more_satellites_lower_latency() {
        let (vt_t4, vt_g4) = tables(4);
        let (vt_t12, vt_g12) = tables(12);
        let s4 = dtn_stats(
            &simulate_dtn(&vt_t4, &vt_g4, 0, &(0..4).collect::<Vec<_>>(), &[0], 60),
            &vt_t4.grid,
        );
        let s12 = dtn_stats(
            &simulate_dtn(&vt_t12, &vt_g12, 0, &(0..12).collect::<Vec<_>>(), &[0], 60),
            &vt_t12.grid,
        );
        assert!(s12.delivery_ratio >= s4.delivery_ratio);
        assert!(
            s12.mean_latency_s < s4.mean_latency_s,
            "12 sats {} vs 4 sats {}",
            s12.mean_latency_s,
            s4.mean_latency_s
        );
    }

    #[test]
    fn empty_inputs() {
        let (vt_t, vt_g) = tables(2);
        let deliveries = simulate_dtn(&vt_t, &vt_g, 0, &[], &[0], 60);
        let stats = dtn_stats(&deliveries, &vt_t.grid);
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.delivery_ratio, 0.0);
        assert_eq!(dtn_stats(&[], &vt_t.grid).created, 0);
    }
}
