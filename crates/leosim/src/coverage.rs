//! Coverage statistics: gap analysis and the paper's population-weighted
//! coverage-time metric.

use crate::bitset::TimeBitset;
use crate::timegrid::TimeGrid;
use serde::{Deserialize, Serialize};

/// Summary statistics of a coverage bitset at one site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageStats {
    /// Fraction of time covered, `[0, 1]`.
    pub covered_fraction: f64,
    /// Fraction of time *without* coverage (the paper's Fig. 2 y-axis).
    pub uncovered_fraction: f64,
    /// Total covered time, seconds.
    pub covered_s: f64,
    /// Total uncovered time, seconds.
    pub uncovered_s: f64,
    /// Longest continuous gap, seconds.
    pub max_gap_s: f64,
    /// Mean gap length, seconds (0 when fully covered).
    pub mean_gap_s: f64,
    /// Number of distinct gaps.
    pub gap_count: usize,
}

impl CoverageStats {
    /// Compute statistics from a coverage bitset on its grid.
    pub fn from_bitset(covered: &TimeBitset, grid: &TimeGrid) -> CoverageStats {
        assert_eq!(covered.len(), grid.steps, "bitset/grid mismatch");
        let ones = covered.count_ones();
        let zeros = covered.count_zeros();
        let gaps = covered.runs_of_zeros();
        let max_gap = gaps.iter().map(|r| r.len()).max().unwrap_or(0);
        let mean_gap = if gaps.is_empty() {
            0.0
        } else {
            zeros as f64 / gaps.len() as f64
        };
        CoverageStats {
            covered_fraction: covered.fraction_ones(),
            uncovered_fraction: 1.0 - covered.fraction_ones(),
            covered_s: grid.steps_to_seconds(ones),
            uncovered_s: grid.steps_to_seconds(zeros),
            max_gap_s: grid.steps_to_seconds(max_gap),
            mean_gap_s: mean_gap * grid.step_s,
            gap_count: gaps.len(),
        }
    }
}

/// Population-weighted coverage time in seconds: `sum_i w_i * covered_s_i`.
///
/// This is the paper's §3.2 objective ("population weighted coverage over 21
/// most populous cities"); weights must sum to 1 (see
/// [`geodata::population_weights`]).
pub fn population_weighted_coverage(
    per_site_coverage: &[TimeBitset],
    weights: &[f64],
    grid: &TimeGrid,
) -> f64 {
    assert_eq!(per_site_coverage.len(), weights.len(), "site/weight count mismatch");
    per_site_coverage
        .iter()
        .zip(weights)
        .map(|(c, w)| w * grid.steps_to_seconds(c.count_ones()))
        .sum()
}

/// Population-weighted *fraction* of time covered, `[0, 1]`.
pub fn population_weighted_fraction(
    per_site_coverage: &[TimeBitset],
    weights: &[f64],
) -> f64 {
    assert_eq!(per_site_coverage.len(), weights.len(), "site/weight count mismatch");
    per_site_coverage.iter().zip(weights).map(|(c, w)| w * c.fraction_ones()).sum()
}

/// Aggregate of repeated scalar measurements (Monte-Carlo outputs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    /// Number of samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Aggregate {
    /// Compute over a slice of samples. Panics on an empty slice.
    pub fn from_samples(samples: &[f64]) -> Aggregate {
        assert!(!samples.is_empty(), "no samples");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Aggregate {
            n,
            mean,
            std_dev: var.sqrt(),
            min: samples.iter().cloned().fold(f64::INFINITY, f64::min),
            max: samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbital::time::Epoch;

    fn grid(steps: usize) -> TimeGrid {
        TimeGrid::new(
            Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0),
            (steps - 1) as f64 * 60.0,
            60.0,
        )
    }

    #[test]
    fn stats_full_coverage() {
        let g = grid(100);
        let s = CoverageStats::from_bitset(&TimeBitset::ones(100), &g);
        assert_eq!(s.gap_count, 0);
        assert!((s.covered_fraction - 1.0).abs() < 1e-12);
        assert_eq!(s.max_gap_s, 0.0);
        assert_eq!(s.mean_gap_s, 0.0);
        assert!((s.covered_s - 100.0 * 60.0).abs() < 1e-9);
    }

    #[test]
    fn stats_no_coverage() {
        let g = grid(50);
        let s = CoverageStats::from_bitset(&TimeBitset::zeros(50), &g);
        assert_eq!(s.gap_count, 1);
        assert!((s.uncovered_fraction - 1.0).abs() < 1e-12);
        assert!((s.max_gap_s - 50.0 * 60.0).abs() < 1e-9);
    }

    #[test]
    fn stats_gap_structure() {
        let g = grid(10);
        let mut b = TimeBitset::zeros(10);
        for k in [0, 1, 5, 9] {
            b.set(k);
        }
        // gaps: [2,5) len 3, [6,9) len 3.
        let s = CoverageStats::from_bitset(&b, &g);
        assert_eq!(s.gap_count, 2);
        assert!((s.max_gap_s - 180.0).abs() < 1e-9);
        assert!((s.mean_gap_s - 180.0).abs() < 1e-9);
        assert!((s.covered_fraction - 0.4).abs() < 1e-12);
    }

    #[test]
    fn weighted_coverage_linear_in_weights() {
        let g = grid(100);
        let mut a = TimeBitset::zeros(100);
        for k in 0..50 {
            a.set(k);
        }
        let b = TimeBitset::ones(100);
        let cov = population_weighted_coverage(&[a.clone(), b.clone()], &[0.5, 0.5], &g);
        // 0.5*3000s + 0.5*6000s = 4500s.
        assert!((cov - 4500.0).abs() < 1e-9);
        let frac = population_weighted_fraction(&[a, b], &[0.5, 0.5]);
        assert!((frac - 0.75).abs() < 1e-12);
    }

    #[test]
    fn weighted_coverage_degenerate_weight() {
        let g = grid(10);
        let empty = TimeBitset::zeros(10);
        let full = TimeBitset::ones(10);
        let cov = population_weighted_coverage(&[empty, full], &[1.0, 0.0], &g);
        assert_eq!(cov, 0.0);
    }

    #[test]
    fn aggregate_basics() {
        let a = Aggregate::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.n, 4);
        assert!((a.mean - 2.5).abs() < 1e-12);
        assert!((a.min - 1.0).abs() < 1e-12);
        assert!((a.max - 4.0).abs() < 1e-12);
        assert!((a.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn aggregate_single_sample() {
        let a = Aggregate::from_samples(&[7.0]);
        assert_eq!(a.std_dev, 0.0);
        assert_eq!(a.mean, 7.0);
    }

    #[test]
    #[should_panic]
    fn aggregate_empty_panics() {
        Aggregate::from_samples(&[]);
    }
}
