//! The discrete simulation clock.
//!
//! All leosim computations happen on a [`TimeGrid`]: `steps` instants spaced
//! `step_s` seconds apart starting at `start`. The grid precomputes the GMST
//! rotation angle of every step, since every satellite shares the same
//! Earth-rotation sequence.

use orbital::time::Epoch;
use serde::{Deserialize, Serialize};

/// A uniform grid of simulation instants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeGrid {
    /// First instant.
    pub start: Epoch,
    /// Step size, seconds.
    pub step_s: f64,
    /// Number of instants (including `start`).
    pub steps: usize,
    /// Precomputed GMST (radians) per instant.
    gmst: Vec<f64>,
}

impl TimeGrid {
    /// Build a grid covering `[start, start + duration_s]` with the given
    /// step. The end instant is included when it lands on the grid.
    pub fn new(start: Epoch, duration_s: f64, step_s: f64) -> Self {
        assert!(step_s > 0.0, "step must be positive");
        assert!(duration_s >= 0.0, "duration must be non-negative");
        let steps = (duration_s / step_s).floor() as usize + 1;
        let gmst = (0..steps)
            .map(|k| start.plus_seconds(k as f64 * step_s).gmst())
            .collect();
        TimeGrid { start, step_s, steps, gmst }
    }

    /// Convenience: a one-week grid (the paper's horizon) at the given step.
    pub fn one_week(start: Epoch, step_s: f64) -> Self {
        TimeGrid::new(start, 7.0 * 86_400.0, step_s)
    }

    /// Build a grid from an explicit step count (the exact inverse of
    /// serializing `(start, step_s, steps)`, used by the ephemeris cache).
    /// The precomputed GMST sequence is identical to [`TimeGrid::new`]'s
    /// because both derive every instant as `start + k * step_s`.
    pub fn with_steps(start: Epoch, steps: usize, step_s: f64) -> Self {
        assert!(step_s > 0.0, "step must be positive");
        assert!(steps >= 1, "grid needs at least one instant");
        let gmst = (0..steps)
            .map(|k| start.plus_seconds(k as f64 * step_s).gmst())
            .collect();
        TimeGrid { start, step_s, steps, gmst }
    }

    /// The epoch of step `k`.
    pub fn epoch_at(&self, k: usize) -> Epoch {
        debug_assert!(k < self.steps);
        self.start.plus_seconds(k as f64 * self.step_s)
    }

    /// Precomputed GMST of step `k`, radians.
    #[inline]
    pub fn gmst_at(&self, k: usize) -> f64 {
        self.gmst[k]
    }

    /// Total simulated span, seconds (from the first to the last instant).
    pub fn duration_s(&self) -> f64 {
        (self.steps.saturating_sub(1)) as f64 * self.step_s
    }

    /// Seconds represented by `n` grid steps.
    pub fn steps_to_seconds(&self, n: usize) -> f64 {
        n as f64 * self.step_s
    }

    /// Minutes offset of step `k` from the grid start.
    #[inline]
    pub fn minutes_at(&self, k: usize) -> f64 {
        k as f64 * self.step_s / 60.0
    }

    /// Iterate `(step_index, epoch)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Epoch)> + '_ {
        (0..self.steps).map(move |k| (k, self.epoch_at(k)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start() -> Epoch {
        Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
    }

    #[test]
    fn step_count_inclusive() {
        let g = TimeGrid::new(start(), 600.0, 60.0);
        assert_eq!(g.steps, 11);
        assert!((g.duration_s() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn one_week_grid() {
        let g = TimeGrid::one_week(start(), 60.0);
        assert_eq!(g.steps, 7 * 1440 + 1);
    }

    #[test]
    fn epochs_line_up() {
        let g = TimeGrid::new(start(), 3600.0, 30.0);
        let e10 = g.epoch_at(10);
        assert!((e10.seconds_since(&start()) - 300.0).abs() < 1e-9);
        assert!((g.minutes_at(10) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn gmst_precomputed_matches_epoch() {
        let g = TimeGrid::new(start(), 7200.0, 600.0);
        for (k, e) in g.iter() {
            assert!((g.gmst_at(k) - e.gmst()).abs() < 1e-12);
        }
    }

    #[test]
    fn gmst_monotone_within_day_wrap() {
        let g = TimeGrid::new(start(), 3600.0, 60.0);
        // Earth rotates ~15 deg/hour; successive steps differ by ~0.0044 rad.
        for k in 1..g.steps {
            let d = orbital::math::wrap_pi(g.gmst_at(k) - g.gmst_at(k - 1));
            assert!(d > 0.004 && d < 0.005, "step {k}: {d}");
        }
    }

    #[test]
    #[should_panic]
    fn zero_step_panics() {
        TimeGrid::new(start(), 100.0, 0.0);
    }

    #[test]
    fn with_steps_matches_new() {
        let a = TimeGrid::new(start(), 7200.0, 90.0);
        let b = TimeGrid::with_steps(start(), a.steps, a.step_s);
        assert_eq!(a.steps, b.steps);
        for k in 0..a.steps {
            assert_eq!(a.gmst_at(k).to_bits(), b.gmst_at(k).to_bits(), "step {k}");
        }
    }
}
