//! Seeded Monte-Carlo harness.
//!
//! Every sampling experiment in the paper averages 100 randomized runs
//! ("averaged across one hundred runs of the simulation. In each run, we
//! randomly sample satellites from the Starlink network"). This module
//! provides deterministic, seed-derived sampling so experiments are exactly
//! reproducible, and a small runner that aggregates per-run scalars.
//!
//! Runs execute in parallel on the shared `simrt` pool. Reproducibility
//! survives that by construction: run `r` always draws from
//! [`run_rng`]`(seed, r)` — an independent stream per run — and results are
//! collected in run order before aggregation, so the floating-point
//! reduction order (and hence every output bit) is the same at any thread
//! count.

use crate::coverage::Aggregate;
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for run `run` of an experiment with base `seed`.
///
/// Each run gets an independent stream (SplitMix-style mixing of the run
/// index into the seed) so adding runs never perturbs earlier ones.
pub fn run_rng(seed: u64, run: u64) -> StdRng {
    let mut z = seed ^ run.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

/// Sample `k` distinct indices from `0..n` (panics if `k > n`).
pub fn sample_indices(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} from {n}");
    let mut v = sample(rng, n, k).into_vec();
    v.sort_unstable();
    v
}

/// Split `0..n` into a sampled subset of size `k` and its complement.
pub fn sample_split(rng: &mut StdRng, n: usize, k: usize) -> (Vec<usize>, Vec<usize>) {
    let chosen = sample_indices(rng, n, k);
    let mut mask = vec![false; n];
    for &c in &chosen {
        mask[c] = true;
    }
    let rest = (0..n).filter(|&i| !mask[i]).collect();
    (chosen, rest)
}

/// Pick one uniform index in `0..n`.
pub fn pick_one(rng: &mut StdRng, n: usize) -> usize {
    assert!(n > 0);
    rng.gen_range(0..n)
}

/// Run `runs` seeded experiment bodies in parallel (shared `simrt` pool)
/// and collect their outputs in run order. Deterministic at any thread
/// count: run `r` draws only from `run_rng(seed, r)` and lands in slot `r`.
pub fn run_samples<T: Send>(
    seed: u64,
    runs: usize,
    body: impl Fn(&mut StdRng, usize) -> T + Sync,
) -> Vec<T> {
    simrt::par_map_indexed(runs, 0, |r| {
        let mut rng = run_rng(seed, r as u64);
        body(&mut rng, r)
    })
}

/// Run `runs` seeded experiment bodies and aggregate their scalar outputs.
///
/// Parallel via [`run_samples`]; the aggregation reduces the run-ordered
/// sample vector, so results are bit-identical to a sequential loop.
pub fn run_experiment(seed: u64, runs: usize, body: impl Fn(&mut StdRng, usize) -> f64 + Sync) -> Aggregate {
    assert!(runs > 0, "need at least one run");
    Aggregate::from_samples(&run_samples(seed, runs, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn rng_deterministic_per_run() {
        let a: u64 = run_rng(42, 3).gen();
        let b: u64 = run_rng(42, 3).gen();
        let c: u64 = run_rng(42, 4).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sample_indices_distinct_sorted() {
        let mut rng = run_rng(1, 0);
        let v = sample_indices(&mut rng, 100, 30);
        assert_eq!(v.len(), 30);
        let set: HashSet<usize> = v.iter().cloned().collect();
        assert_eq!(set.len(), 30);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert!(v.iter().all(|&x| x < 100));
    }

    #[test]
    fn sample_full_population() {
        let mut rng = run_rng(1, 0);
        let v = sample_indices(&mut rng, 10, 10);
        assert_eq!(v, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn oversample_panics() {
        let mut rng = run_rng(1, 0);
        sample_indices(&mut rng, 5, 6);
    }

    #[test]
    fn split_partitions() {
        let mut rng = run_rng(7, 0);
        let (a, b) = sample_split(&mut rng, 50, 20);
        assert_eq!(a.len(), 20);
        assert_eq!(b.len(), 30);
        let mut all: Vec<usize> = a.iter().chain(b.iter()).cloned().collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn experiment_aggregates() {
        // Body returns the run index; mean of 0..10 is 4.5.
        let agg = run_experiment(9, 10, |_rng, run| run as f64);
        assert_eq!(agg.n, 10);
        assert!((agg.mean - 4.5).abs() < 1e-12);
        assert_eq!(agg.min, 0.0);
        assert_eq!(agg.max, 9.0);
    }

    #[test]
    fn experiment_reproducible() {
        let f = |rng: &mut rand::rngs::StdRng, _run: usize| rng.gen::<f64>();
        let a = run_experiment(123, 20, f);
        let b = run_experiment(123, 20, f);
        assert_eq!(a.mean, b.mean);
        let c = run_experiment(124, 20, f);
        assert_ne!(a.mean, c.mean);
    }

    #[test]
    fn adding_runs_preserves_prefix() {
        // Run k's stream must not depend on the total run count.
        let five = run_samples(5, 5, |rng, _| rng.gen::<f64>());
        let ten = run_samples(5, 10, |rng, _| rng.gen::<f64>());
        assert_eq!(&five[..], &ten[..5]);
    }

    #[test]
    fn run_samples_is_thread_count_invariant() {
        let serial = simrt::with_thread_cap(1, || run_samples(77, 64, |rng, _| rng.gen::<f64>()));
        let parallel = run_samples(77, 64, |rng, _| rng.gen::<f64>());
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "run {i}");
        }
    }
}
