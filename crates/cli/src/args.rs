//! A small, dependency-free flag parser.
//!
//! Supports `--key value`, `--key=value`, and bare `--flag` booleans; the
//! first non-flag token is the subcommand. Unknown keys are an error so
//! typos fail loudly.

use std::collections::BTreeMap;

/// Parsed invocation: subcommand plus flags.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (first positional token), if any.
    pub command: Option<String>,
    flags: BTreeMap<String, String>,
}

/// Parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(dead_code)] // full error/accessor API; not every command uses every variant
pub enum ArgError {
    /// A flag appeared twice.
    Duplicate(String),
    /// More than one positional token.
    ExtraPositional(String),
    /// A requested flag was absent.
    Required(String),
    /// A value failed to parse; `(flag, value, expected-type)`.
    BadValue(String, String, &'static str),
    /// A flag not in the allowed set was provided.
    Unknown(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::Duplicate(k) => write!(f, "flag --{k} given twice"),
            ArgError::ExtraPositional(t) => write!(f, "unexpected argument '{t}'"),
            ArgError::Required(k) => write!(f, "missing required flag --{k}"),
            ArgError::BadValue(k, v, ty) => write!(f, "--{k}={v} is not a valid {ty}"),
            ArgError::Unknown(k) => write!(f, "unknown flag --{k}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse a token stream (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut iter = tokens.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(stripped) = tok.strip_prefix("--") {
                let (key, val) = match stripped.split_once('=') {
                    Some((k, v)) => (k.to_string(), Some(v.to_string())),
                    None => (stripped.to_string(), None),
                };
                let value = match val {
                    Some(v) => v,
                    None => match iter.peek() {
                        Some(next) if !next.starts_with("--") => iter.next().unwrap(),
                        // Bare flag == boolean true.
                        _ => "true".to_string(),
                    },
                };
                if out.flags.insert(key.clone(), value).is_some() {
                    return Err(ArgError::Duplicate(key));
                }
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else {
                return Err(ArgError::ExtraPositional(tok));
            }
        }
        Ok(out)
    }

    /// Reject any flag outside `allowed` (catches typos).
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for k in self.flags.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError::Unknown(k.clone()));
            }
        }
        Ok(())
    }

    /// A string flag, or default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.flags.get(key).cloned().unwrap_or_else(|| default.to_string())
    }

    /// A required string flag.
    #[allow(dead_code)]
    pub fn require_str(&self, key: &str) -> Result<String, ArgError> {
        self.flags.get(key).cloned().ok_or_else(|| ArgError::Required(key.to_string()))
    }

    /// A float flag, or default.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| ArgError::BadValue(key.to_string(), v.clone(), "number"))
            }
        }
    }

    /// A required float flag.
    #[allow(dead_code)]
    pub fn require_f64(&self, key: &str) -> Result<f64, ArgError> {
        let v = self.require_str(key)?;
        v.parse().map_err(|_| ArgError::BadValue(key.to_string(), v, "number"))
    }

    /// An integer flag, or default.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| ArgError::BadValue(key.to_string(), v.clone(), "integer"))
            }
        }
    }

    /// A u64 flag (e.g. a seed), or default.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| ArgError::BadValue(key.to_string(), v.clone(), "integer"))
            }
        }
    }

    /// A boolean flag (present/true/false), default false.
    #[allow(dead_code)]
    pub fn get_bool(&self, key: &str) -> bool {
        matches!(self.flags.get(key).map(String::as_str), Some("true") | Some("1") | Some("yes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn subcommand_and_flags() {
        let a = parse("coverage --lat 25.0 --lon=121.5 --sats 100").unwrap();
        assert_eq!(a.command.as_deref(), Some("coverage"));
        assert_eq!(a.require_f64("lat").unwrap(), 25.0);
        assert_eq!(a.require_f64("lon").unwrap(), 121.5);
        assert_eq!(a.get_usize("sats", 0).unwrap(), 100);
        assert_eq!(a.get_usize("days", 7).unwrap(), 7);
    }

    #[test]
    fn bare_flag_is_boolean() {
        let a = parse("screen --full --threshold 10").unwrap();
        assert!(a.get_bool("full"));
        assert!(!a.get_bool("quiet"));
        assert_eq!(a.get_f64("threshold", 0.0).unwrap(), 10.0);
    }

    #[test]
    fn flag_followed_by_flag_is_boolean() {
        let a = parse("x --verbose --lat 1.0").unwrap();
        assert!(a.get_bool("verbose"));
        assert_eq!(a.require_f64("lat").unwrap(), 1.0);
    }

    #[test]
    fn errors() {
        assert_eq!(parse("x --a 1 --a 2").unwrap_err(), ArgError::Duplicate("a".into()));
        assert_eq!(parse("x y").unwrap_err(), ArgError::ExtraPositional("y".into()));
        let a = parse("x --lat abc").unwrap();
        assert!(matches!(a.require_f64("lat"), Err(ArgError::BadValue(..))));
        assert!(matches!(a.require_f64("lon"), Err(ArgError::Required(..))));
    }

    #[test]
    fn unknown_flags_rejected() {
        let a = parse("x --lat 1 --typo 2").unwrap();
        assert!(a.expect_only(&["lat"]).is_err());
        assert!(a.expect_only(&["lat", "typo"]).is_ok());
    }

    #[test]
    fn empty_invocation() {
        let a = parse("").unwrap();
        assert!(a.command.is_none());
    }

    #[test]
    fn error_messages_name_the_flag() {
        assert!(ArgError::Required("lat".into()).to_string().contains("--lat"));
        assert!(ArgError::BadValue("n".into(), "x".into(), "integer")
            .to_string()
            .contains("--n=x"));
    }
}
