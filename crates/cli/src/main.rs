//! `mpleo` — the MP-LEO command-line tool.
//!
//! Subcommands:
//!
//! * `tle`      — synthesize a Walker constellation as standard TLE text
//! * `coverage` — coverage statistics for a ground point
//! * `plan`     — gap-filling placement suggestions for a new contribution
//! * `screen`   — conjunction screening of a constellation
//! * `sla`      — quote the sellable service tier for a point
//! * `cities`   — print the embedded 21-city dataset
//! * `traffic`  — route diurnal metro demand and summarize the market
//! * `churn`    — run a timed failure/withdrawal campaign over the traffic stack
//! * `node`     — run a live coordination-protocol node over TCP
//! * `fuzz`     — seeded whole-stack scenario fuzzing with invariant oracles
//! * `experiments` — run the paper's figure/ablation suite in one process
//!
//! Run `mpleo help` (or any subcommand with `--help`-style curiosity) for
//! usage; every command works offline and completes in seconds.

mod args;
mod commands;

use args::Args;
use std::process::ExitCode;

fn main() -> ExitCode {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(tokens) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run 'mpleo help' for usage");
            return ExitCode::FAILURE;
        }
    };
    let result = match parsed.command.as_deref() {
        None | Some("help") => {
            print_help();
            Ok(())
        }
        Some("tle") => commands::tle(&parsed),
        Some("coverage") => commands::coverage(&parsed),
        Some("plan") => commands::plan(&parsed),
        Some("screen") => commands::screen(&parsed),
        Some("sla") => commands::sla(&parsed),
        Some("cities") => commands::cities(&parsed),
        Some("traffic") => commands::traffic(&parsed),
        Some("churn") => commands::churn(&parsed),
        Some("map") => commands::map(&parsed),
        Some("audit") => commands::audit(&parsed),
        Some("manifest") => commands::manifest(&parsed),
        Some("node") => commands::node(&parsed),
        Some("fuzz") => commands::fuzz(&parsed),
        Some("experiments") => commands::experiments(&parsed),
        Some(other) => {
            eprintln!("error: unknown command '{other}'");
            print_help();
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "mpleo — multi-party LEO constellation toolkit

USAGE:
    mpleo <command> [--flag value ...]

COMMANDS:
    tle       synthesize a Walker constellation as TLE text
                --planes N --per-plane M (default 4x4)
                --inclination DEG (53) --altitude KM (550) --phasing F (1)
    coverage  coverage statistics for a ground point or named region
                --lat DEG --lon DEG (default Taipei)
                --region taiwan|ukraine|korea (overrides lat/lon)
                --sats N (500) --days D (1) --step S (60) --mask DEG (25)
                --ephemeris-cache PATH (reuse pool ephemerides on disk)
                --threads N (0 = auto)
    plan      suggest gap-filling orbital slots for a new contribution
                --contribute K (3) --base N (40) --days D (1)
                --threads N (0 = auto)
    screen    conjunction screening of a synthesized constellation
                --planes N (6) --per-plane M (6) --hours H (6)
                --threshold KM (10)
    sla       quote the sellable service tier for a point
                --lat DEG --lon DEG --sats N (500) --days D (1)
                --ephemeris-cache PATH (reuse pool ephemerides on disk)
                --threads N (0 = auto)
    cities    print the embedded 21-city dataset
    traffic   route diurnal metro demand over a shared constellation
                --sats N (300) --hours H (12) --step S (600)
                --parties P (3) --gateway-stride K (3)
                --isl-range KM (3000) --max-hops N (1) --scale F (1)
                --mask DEG (25)
                --ephemeris-cache PATH (reuse pool ephemerides on disk)
                --threads N (0 = auto)
    churn     run a timed failure/withdrawal campaign over the traffic stack
                --sats N (300) --hours H (12) --step S (600)
                --parties P (3) --gateway-stride K (3)
                --fail-fraction F (0.1) --withdraw IDX|none (1)
                --scale F (1) --mask DEG (25)
                --ephemeris-cache PATH (reuse pool ephemerides on disk)
                --threads N (0 = auto)
    map       ASCII world map of coverage fraction
                --sats N (200) --hours H (12) --mask DEG (25)
                --rows R (18) --cols C (72)
                --ephemeris-cache PATH (reuse pool ephemerides on disk)
                --threads N (0 = auto)
    audit     fit an orbit from synthetic ranging and audit a publication
                --forge-raan DEG (0 = honest publication)
    manifest  emit a validated constellation manifest as JSON
                --parties N (3) --per-party M (4) --name NAME
    node      run a live coordination-protocol node over TCP
                --id NAME (alpha) --listen ADDR (127.0.0.1:0)
                --peers ADDR,ADDR,... (dials retry with backoff)
                --parties a,b,c (alpha,beta,gamma) --secret S (mpleo-demo)
                --anti-entropy-ms MS (1000) --status-secs S (5)
                --retry-initial-ms MS (100) --retry-max-ms MS (5000)
                --retry-attempts N (0 = unlimited)
    fuzz      seeded whole-stack scenario fuzzing with invariant oracles
                --seeds N (25) --budget SECS (0 = unbounded)
                --start-seed S (the CI smoke base seed)
                --corpus DIR (re-check pinned tests/corpus entries first)
                --out DIR (write failing repros as one-line JSON files)
                --threads N (0 = auto)
    experiments  run the paper's figure/ablation suite in one process
                --list (print the registry) --only id,id --skip id,id
                --out DIR (results/, JSON per experiment) --strict
                --warn-only --sequential --quiet
                --report (regenerate EXPERIMENTS.md) --report-only
                --threads N (worker threads for the shared pool; 0 = auto)
                fidelity via MPLEO_FULL / MPLEO_RUNS / MPLEO_HORIZON_S /
                MPLEO_STEP_S; MPLEO_THREADS sets the worker count when
                --threads is not given (0 or unset = auto-detect)
    help      this message

All commands run fully offline on a synthetic Starlink-like pool."
    );
}
