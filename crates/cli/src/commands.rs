//! Subcommand implementations.

use crate::args::Args;
use leosim::coverage::CoverageStats;
use leosim::ephemeris::EphemerisStore;
use leosim::montecarlo::{run_rng, sample_indices};
use leosim::visibility::{SimConfig, VisibilityTable};
use leosim::TimeGrid;
use orbital::conjunction::{congestion_report, screen_all_pairs, ScreeningConfig};
use orbital::constellation::{satellite_at, starlink_gen1_pool, walker_delta, ShellSpec};
use orbital::ground::GroundSite;
use orbital::time::{format_duration, Epoch};
use std::path::PathBuf;
// The crate is `traffic`, the subcommand below is `traffic()`; alias the
// crate so paths inside the function stay unambiguous to readers.
use traffic as traffic_crate;

type CmdResult = Result<(), Box<dyn std::error::Error>>;

fn epoch() -> Epoch {
    Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
}

/// `mpleo tle` — emit a Walker constellation as TLE text.
pub fn tle(args: &Args) -> CmdResult {
    args.expect_only(&["planes", "per-plane", "inclination", "altitude", "phasing", "name"])?;
    let spec = ShellSpec {
        name: args.get_str("name", "MPLEO"),
        planes: args.get_usize("planes", 4)? as u32,
        sats_per_plane: args.get_usize("per-plane", 4)? as u32,
        inclination_deg: args.get_f64("inclination", 53.0)?,
        altitude_km: args.get_f64("altitude", 550.0)?,
        phasing: args.get_usize("phasing", 1)? as u32,
        raan_offset_deg: 0.0,
    };
    for sat in walker_delta(&spec, epoch()) {
        println!("{}", sat.to_tle());
    }
    Ok(())
}

/// The `--threads <n>` flag: pin the shared `simrt` worker pool to `n`
/// threads for this invocation. 0 (or absent) leaves the decision to
/// `MPLEO_THREADS`, falling back to auto-detection.
fn configure_threads(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let threads = args.get_usize("threads", 0)?;
    if threads > 0 {
        simrt::configure(threads);
    }
    Ok(())
}

/// The `--ephemeris-cache <path>` flag (also honored via the
/// `MPLEO_EPHEMERIS_CACHE` environment variable; empty = disabled).
fn ephemeris_cache(args: &Args) -> Option<PathBuf> {
    let flag = args.get_str("ephemeris-cache", "");
    if !flag.is_empty() {
        return Some(PathBuf::from(flag));
    }
    std::env::var_os("MPLEO_EPHEMERIS_CACHE").filter(|v| !v.is_empty()).map(PathBuf::from)
}

/// Shared: build a sampled pool visibility table for one site.
fn site_table(
    args: &Args,
    lat: f64,
    lon: f64,
) -> Result<(VisibilityTable, usize), Box<dyn std::error::Error>> {
    let sats_n = args.get_usize("sats", 500)?;
    let days = args.get_f64("days", 1.0)?;
    let step = args.get_f64("step", 60.0)?;
    let mask = args.get_f64("mask", 25.0)?;
    let pool = starlink_gen1_pool(epoch());
    if sats_n > pool.len() {
        return Err(format!("--sats {} exceeds the pool of {}", sats_n, pool.len()).into());
    }
    let mut rng = run_rng(0xC11, 0);
    let idx = sample_indices(&mut rng, pool.len(), sats_n);
    let site = [GroundSite::from_degrees("site", lat, lon)];
    let grid = TimeGrid::new(epoch(), days * 86_400.0, step);
    let cfg = SimConfig::default().with_mask_deg(mask);
    let vt = match ephemeris_cache(args) {
        // With a cache file: propagate (or load) the whole pool once and
        // slice the sampled rows out of it; repeated invocations with the
        // same grid then skip propagation entirely.
        Some(path) => {
            let store = EphemerisStore::load_or_build(&pool, &grid, &cfg, Some(&path));
            VisibilityTable::from_store_subset(&store, &idx, &site, &cfg)
        }
        // Without one, propagating just the sample is cheaper.
        None => {
            let sats: Vec<_> = idx.iter().map(|&i| pool[i].clone()).collect();
            VisibilityTable::compute(&sats, &site, &grid, &cfg)
        }
    };
    Ok((vt, sats_n))
}

/// `mpleo coverage` — coverage statistics for a point or named region.
pub fn coverage(args: &Args) -> CmdResult {
    args.expect_only(&[
        "lat",
        "lon",
        "sats",
        "days",
        "step",
        "mask",
        "region",
        "ephemeris-cache",
        "threads",
    ])?;
    configure_threads(args)?;
    let region_name = args.get_str("region", "");
    if !region_name.is_empty() {
        return coverage_region(args, &region_name);
    }
    let lat = args.get_f64("lat", 25.033)?;
    let lon = args.get_f64("lon", 121.565)?;
    let (vt, n) = site_table(args, lat, lon)?;
    let all: Vec<usize> = (0..vt.sat_count()).collect();
    let stats = CoverageStats::from_bitset(&vt.coverage_union(&all, 0), &vt.grid);
    println!("site: ({lat:.3}, {lon:.3}); constellation sample: {n} satellites");
    println!("horizon: {}", format_duration(vt.grid.duration_s()));
    println!("coverage:        {:.3}%", stats.covered_fraction * 100.0);
    println!("without coverage: {:.3}%", stats.uncovered_fraction * 100.0);
    println!("longest gap:     {}", format_duration(stats.max_gap_s));
    println!("gap count:       {}", stats.gap_count);
    println!("mean gap:        {}", format_duration(stats.mean_gap_s));
    Ok(())
}

/// Regional coverage for `mpleo coverage --region <name>`.
fn coverage_region(args: &Args, name: &str) -> CmdResult {
    let region = match name.to_ascii_lowercase().as_str() {
        "taiwan" => geodata::Region::taiwan(),
        "ukraine" => geodata::Region::ukraine(),
        "korea" | "south-korea" => geodata::Region::south_korea(),
        other => return Err(format!("unknown region '{other}' (taiwan | ukraine | korea)").into()),
    };
    let sats_n = args.get_usize("sats", 500)?;
    let days = args.get_f64("days", 1.0)?;
    let step = args.get_f64("step", 120.0)?;
    let mask = args.get_f64("mask", 25.0)?;
    let pool = starlink_gen1_pool(epoch());
    if sats_n > pool.len() {
        return Err(format!("--sats {} exceeds the pool of {}", sats_n, pool.len()).into());
    }
    if ephemeris_cache(args).is_some() {
        eprintln!("note: --ephemeris-cache is not used on the regional path (per-receiver grids)");
    }
    let mut rng = run_rng(0xC13, 0);
    let idx = sample_indices(&mut rng, pool.len(), sats_n);
    let sats: Vec<_> = idx.iter().map(|&i| pool[i].clone()).collect();
    let grid = TimeGrid::new(epoch(), days * 86_400.0, step);
    let cfg = SimConfig::default().with_mask_deg(mask);
    let rc = leosim::region::region_coverage(&sats, &region, 3, &grid, &cfg);
    println!(
        "region: {} ({} receiver grid points); sample: {sats_n} satellites",
        rc.region, rc.receivers
    );
    println!("horizon: {}", format_duration(grid.duration_s()));
    println!("mean availability:         {:.3}%", rc.mean_fraction * 100.0);
    println!("worst-site availability:   {:.3}%", rc.worst_fraction * 100.0);
    println!("worst-site longest gap:    {}", format_duration(rc.worst_max_gap_s));
    println!("simultaneous (all points): {:.3}%", rc.simultaneous_fraction * 100.0);
    Ok(())
}

/// `mpleo plan` — gap-filling slot suggestions.
pub fn plan(args: &Args) -> CmdResult {
    args.expect_only(&["contribute", "base", "days", "step", "threads"])?;
    configure_threads(args)?;
    let contribute = args.get_usize("contribute", 3)?;
    let base_n = args.get_usize("base", 40)?;
    let days = args.get_f64("days", 1.0)?;
    let step = args.get_f64("step", 120.0)?;

    let spec = ShellSpec {
        planes: (base_n / 5).max(1) as u32,
        sats_per_plane: 5,
        ..ShellSpec::starlink_like()
    };
    let mut all = walker_delta(&spec, epoch());
    let base_count = all.len();
    let mut id = 50_000;
    for incl in [43.0, 53.0, 70.0] {
        for raan in (0..360).step_by(60) {
            for phase in (0..360).step_by(90) {
                all.push(satellite_at(
                    &format!("CAND-{id}"),
                    id,
                    550.0,
                    incl,
                    raan as f64,
                    phase as f64,
                    epoch(),
                ));
                id += 1;
            }
        }
    }
    let cities = geodata::paper_cities();
    let sites = geodata::to_sites(&cities);
    let weights = geodata::population_weights(&cities);
    let grid = TimeGrid::new(epoch(), days * 86_400.0, step);
    let vt = VisibilityTable::compute(&all, &sites, &grid, &SimConfig::default());
    let base: Vec<usize> = (0..base_count).collect();
    let candidates: Vec<usize> = (base_count..all.len()).collect();
    let chosen = mpleo::placement::greedy_select(&vt, &base, &candidates, contribute, &weights);

    println!("existing constellation: {base_count} satellites");
    println!("recommended slots for a {contribute}-satellite contribution:");
    let mut running = base.clone();
    for (rank, c) in chosen.iter().enumerate() {
        let el = &all[*c].elements;
        let gain = mpleo::placement::marginal_gain_s(&vt, &running, *c, &weights);
        println!(
            "  #{}: inclination {:>5.1} deg, RAAN {:>5.1} deg, phase {:>5.1} deg  (+{} pop-weighted coverage)",
            rank + 1,
            el.inclination_rad.to_degrees(),
            el.raan_rad.to_degrees(),
            el.mean_anomaly_rad.to_degrees(),
            format_duration(gain * 7.0 * 86_400.0 / vt.grid.duration_s()),
        );
        running.push(*c);
    }
    Ok(())
}

/// `mpleo screen` — conjunction screening.
pub fn screen(args: &Args) -> CmdResult {
    args.expect_only(&["planes", "per-plane", "hours", "threshold", "inclination", "altitude"])?;
    let spec = ShellSpec {
        planes: args.get_usize("planes", 6)? as u32,
        sats_per_plane: args.get_usize("per-plane", 6)? as u32,
        inclination_deg: args.get_f64("inclination", 53.0)?,
        altitude_km: args.get_f64("altitude", 550.0)?,
        ..ShellSpec::starlink_like()
    };
    let window_s = args.get_f64("hours", 6.0)? * 3600.0;
    let cfg =
        ScreeningConfig { threshold_km: args.get_f64("threshold", 10.0)?, ..Default::default() };
    let els: Vec<_> = walker_delta(&spec, epoch()).iter().map(|s| s.elements).collect();
    let found = screen_all_pairs(&els, epoch(), window_s, &cfg);
    let report = congestion_report(&found, els.len(), window_s);
    println!(
        "screened {} satellites over {} (threshold {} km)",
        report.satellites,
        format_duration(window_s),
        cfg.threshold_km
    );
    println!("conjunctions: {}", report.conjunctions);
    if report.conjunctions > 0 {
        println!("closest approach: {:.2} km", report.min_miss_km);
        for c in found.iter().take(10) {
            println!(
                "  sats {:>3} x {:>3}: {:.2} km at t+{}",
                c.sat_a,
                c.sat_b,
                c.miss_distance_km,
                format_duration(c.tca_offset_s)
            );
        }
    } else {
        println!("constellation is clean at this threshold.");
    }
    Ok(())
}

/// `mpleo sla` — quote the sellable tier.
pub fn sla(args: &Args) -> CmdResult {
    args.expect_only(&[
        "lat",
        "lon",
        "sats",
        "days",
        "step",
        "mask",
        "ephemeris-cache",
        "threads",
    ])?;
    configure_threads(args)?;
    let lat = args.get_f64("lat", 25.033)?;
    let lon = args.get_f64("lon", 121.565)?;
    let (vt, n) = site_table(args, lat, lon)?;
    let all: Vec<usize> = (0..vt.sat_count()).collect();
    let stats = CoverageStats::from_bitset(&vt.coverage_union(&all, 0), &vt.grid);
    let quote = mpleo::sla::quote(&stats);
    println!("site ({lat:.3}, {lon:.3}), {n}-satellite sample:");
    println!("availability: {:.3}%", quote.availability * 100.0);
    println!("worst outage: {}", format_duration(quote.worst_outage_s));
    println!(
        "sellable tier: {} ({}x best-effort price)",
        quote.tier.name, quote.tier.price_multiplier
    );
    if let Some(gap) = quote.next_tier_gap {
        if gap > 0.0 {
            println!("availability shortfall to next tier: {:.3} points", gap * 100.0);
        } else {
            println!("availability meets the next tier; outage duration is the binding constraint");
        }
    }
    Ok(())
}

/// `mpleo cities` — the embedded dataset.
pub fn cities(args: &Args) -> CmdResult {
    args.expect_only(&[])?;
    println!("{:<14} {:<3} {:>8} {:>9} {:>7}", "city", "cc", "lat", "lon", "pop(M)");
    for c in geodata::paper_cities() {
        println!(
            "{:<14} {:<3} {:>8.4} {:>9.4} {:>7.1}",
            c.name, c.country, c.lat_deg, c.lon_deg, c.population_m
        );
    }
    Ok(())
}

/// `mpleo manifest` — emit a constellation manifest as JSON.
pub fn manifest(args: &Args) -> CmdResult {
    use mpleo::manifest::*;
    use mpleo::party::PartyKind;
    args.expect_only(&["parties", "per-party", "name"])?;
    let parties_n = args.get_usize("parties", 3)?.max(2);
    let per_party = args.get_usize("per-party", 4)?.max(1);
    let name = args.get_str("name", "mpleo-demo");
    let spec = ShellSpec {
        planes: parties_n as u32,
        sats_per_plane: per_party as u32,
        ..ShellSpec::starlink_like()
    };
    let sats = walker_delta(&spec, epoch());
    let parties: Vec<ManifestParty> = (0..parties_n)
        .map(|k| ManifestParty {
            id: format!("party-{k:02}"),
            kind: if k % 2 == 0 { PartyKind::Country } else { PartyKind::Company },
        })
        .collect();
    // Interleave ownership across planes (the coverage-optimal layout).
    let satellites: Vec<ManifestSatellite> = sats
        .iter()
        .enumerate()
        .map(|(i, s)| ManifestSatellite {
            sat_id: s.id,
            name: s.name.clone(),
            owner: format!("party-{:02}", i % parties_n),
            elements: s.elements,
        })
        .collect();
    let m = ConstellationManifest {
        name,
        epoch_utc: (2024, 6, 1, 0, 0, 0.0),
        parties,
        satellites,
        ground_stations: vec![ManifestGroundStation {
            party: "party-00".into(),
            name: "gs-00".into(),
            lat_deg: 25.03,
            lon_deg: 121.56,
        }],
        policies: ManifestPolicies {
            poc_quorum: 2,
            control_quorum: 2.max(parties_n / 2 + 1),
            min_elevation_deg: 25.0,
        },
    };
    m.validate().map_err(Box::new)?;
    println!("{}", m.to_json());
    Ok(())
}
/// `mpleo map` — ASCII world coverage map.
pub fn map(args: &Args) -> CmdResult {
    args.expect_only(&["sats", "hours", "mask", "rows", "cols", "ephemeris-cache", "threads"])?;
    configure_threads(args)?;
    let sats_n = args.get_usize("sats", 200)?;
    let hours = args.get_f64("hours", 12.0)?;
    let mask = args.get_f64("mask", 25.0)?;
    let rows = args.get_usize("rows", 18)?;
    let cols = args.get_usize("cols", 72)?;
    let pool = starlink_gen1_pool(epoch());
    if sats_n > pool.len() {
        return Err(format!("--sats {} exceeds the pool of {}", sats_n, pool.len()).into());
    }
    let mut rng = run_rng(0xC12, 0);
    let idx = sample_indices(&mut rng, pool.len(), sats_n);
    let grid = TimeGrid::new(epoch(), hours * 3600.0, 600.0);
    let cfg = SimConfig::default().with_mask_deg(mask);
    let map = match ephemeris_cache(args) {
        Some(path) => {
            let store = EphemerisStore::load_or_build(&pool, &grid, &cfg, Some(&path));
            let sub = store.select(&idx);
            leosim::coveragemap::CoverageMap::compute_from_store(&sub, &cfg, rows, cols)
        }
        None => {
            let sats: Vec<_> = idx.iter().map(|&i| pool[i].clone()).collect();
            leosim::coveragemap::CoverageMap::compute(&sats, &grid, &cfg, rows, cols)
        }
    };
    println!("coverage fraction, {sats_n} satellites, {hours:.0} h horizon, {mask:.0} deg mask");
    println!("(darker = better covered; right margin = row latitude)\n");
    print!("{}", map.ascii());
    println!("\narea-weighted global mean coverage: {:.1}%", map.global_mean() * 100.0);
    println!("note the bright bands near +-53 deg and the dark poles — the");
    println!("geometry behind every figure in the paper.");
    Ok(())
}

/// `mpleo audit` — orbit-determination audit demo.
pub fn audit(args: &Args) -> CmdResult {
    args.expect_only(&["forge-raan"])?;
    let forge = args.get_f64("forge-raan", 0.0)?;
    let truth = orbital::kepler::ClassicalElements::circular(
        550.0,
        53f64.to_radians(),
        120f64.to_radians(),
        30f64.to_radians(),
    );
    let site = GroundSite::from_degrees("audit-station", 25.03, 121.56);
    let obs =
        orbital::od::synthesize_observations(&truth, epoch(), &site, 43_200.0, 30.0, 10.0, 0.1, 11);
    println!("ranging log: {} measurements over half a day", obs.len());
    let published = orbital::kepler::ClassicalElements {
        raan_rad: truth.raan_rad + forge.to_radians(),
        ..truth
    };
    let mut sc = dcp::poc::Scenario::new(epoch());
    sc.add_satellite(1, published);
    sc.add_ground_station("auditor", site);
    match dcp::poc::audit_published_elements(&sc, 1, "auditor", &obs, 1.0).expect("ids registered")
    {
        dcp::poc::ElementAudit::Consistent { rms_km } => {
            println!("published elements CONSISTENT with observations (rms {rms_km:.3} km)");
        }
        dcp::poc::ElementAudit::Forged { published_rms_km, fitted, fitted_rms_km } => {
            println!("published elements MISFIT by {published_rms_km:.0} km rms");
            println!(
                "independent fit: RAAN {:.2} deg (published {:.2}), residual {fitted_rms_km:.3} km",
                fitted.raan_rad.to_degrees(),
                published.raan_rad.to_degrees()
            );
            println!("verdict: FORGED publication exposed by ranging + orbit determination");
        }
        dcp::poc::ElementAudit::Inconclusive => println!("audit inconclusive"),
    }
    Ok(())
}

/// `mpleo node` — run a live coordination-protocol node over TCP.
///
/// Several invocations on one machine (or across machines) form a real
/// gossip mesh: point later nodes at earlier ones with `--peers`. Dials
/// retry with capped exponential backoff and dropped peers are redialed,
/// so start order does not matter.
pub fn node(args: &Args) -> CmdResult {
    args.expect_only(&[
        "id",
        "listen",
        "peers",
        "parties",
        "secret",
        "anti-entropy-ms",
        "retry-initial-ms",
        "retry-max-ms",
        "retry-attempts",
        "status-secs",
    ])?;
    let id = args.get_str("id", "alpha");
    let listen: std::net::SocketAddr = {
        let s = args.get_str("listen", "127.0.0.1:0");
        s.parse().map_err(|_| format!("--listen={s} is not a socket address"))?
    };
    let mut peers = Vec::new();
    for p in args.get_str("peers", "").split(',').filter(|p| !p.trim().is_empty()) {
        let addr: std::net::SocketAddr =
            p.trim().parse().map_err(|_| format!("--peers entry '{p}' is not a socket address"))?;
        peers.push(addr);
    }
    // Every process derives the same per-party keys from the shared secret,
    // standing in for pre-distributed credentials.
    let secret = args.get_str("secret", "mpleo-demo");
    let mut keys = dcp::crypto::KeyDirectory::new();
    for p in args.get_str("parties", "alpha,beta,gamma").split(',') {
        keys.register_derived(p.trim(), secret.as_bytes());
    }
    let mut cfg = dcp::node::NodeConfig::local(id.as_str(), keys);
    cfg.listen = listen;
    cfg.advertise = true;
    cfg.anti_entropy =
        std::time::Duration::from_millis(args.get_usize("anti-entropy-ms", 1000)? as u64);
    cfg.backoff = dcp::node::BackoffConfig {
        initial: std::time::Duration::from_millis(args.get_usize("retry-initial-ms", 100)? as u64),
        max: std::time::Duration::from_millis(args.get_usize("retry-max-ms", 5000)? as u64),
        max_attempts: args.get_usize("retry-attempts", 0)? as u32,
        reconnect: true,
    };
    let status_every = std::time::Duration::from_secs(args.get_usize("status-secs", 5)? as u64);

    let rt = tokio::runtime::Builder::new_multi_thread().enable_all().build()?;
    rt.block_on(async move {
        let handle = dcp::node::Node::start(cfg).await?;
        println!("node '{}' listening on {}", handle.node_id(), handle.local_addr);
        for addr in peers {
            match handle.connect(addr).await {
                Ok(()) => println!("connected to {addr}"),
                Err(e) => eprintln!("warning: could not reach {addr}: {e}"),
            }
        }
        println!("press ctrl-c to stop");
        let mut ticker = tokio::time::interval(status_every);
        ticker.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
        ticker.tick().await; // the first tick fires immediately; skip it
        loop {
            tokio::select! {
                _ = tokio::signal::ctrl_c() => break,
                _ = ticker.tick() => {
                    println!(
                        "peers={} items={} confirmed={} settlements={} rejected={}",
                        handle.peer_count(),
                        handle.item_count(),
                        handle.confirmed_count(),
                        handle.settlements_applied(),
                        handle.rejected_count(),
                    );
                }
            }
        }
        handle.shutdown();
        println!("node stopped");
        Ok(())
    })
}

/// `mpleo traffic` — route diurnal metro demand over a shared
/// constellation sample and summarize service plus the resulting capacity
/// market (the `traffic` crate's engine, the CLI-sized cousin of the
/// `traffic_diurnal` experiment).
pub fn traffic(args: &Args) -> CmdResult {
    args.expect_only(&[
        "sats",
        "hours",
        "step",
        "parties",
        "gateway-stride",
        "isl-range",
        "max-hops",
        "scale",
        "mask",
        "ephemeris-cache",
        "threads",
    ])?;
    configure_threads(args)?;
    let sats_n = args.get_usize("sats", 300)?;
    let hours = args.get_f64("hours", 12.0)?;
    let step = args.get_f64("step", 600.0)?;
    let n_parties = args.get_usize("parties", 3)?;
    let stride = args.get_usize("gateway-stride", 3)?;
    let isl_range = args.get_f64("isl-range", 3000.0)?;
    let max_hops = args.get_usize("max-hops", 1)?;
    let scale = args.get_f64("scale", 1.0)?;
    let mask = args.get_f64("mask", 25.0)?;
    if n_parties == 0 {
        return Err("--parties must be at least 1".into());
    }
    if stride == 0 {
        return Err("--gateway-stride must be at least 1".into());
    }
    if scale < 0.0 {
        return Err("--scale must be non-negative".into());
    }

    let pool = starlink_gen1_pool(epoch());
    if sats_n > pool.len() {
        return Err(format!("--sats {} exceeds the pool of {}", sats_n, pool.len()).into());
    }
    let mut rng = run_rng(0xC14, 0);
    let idx = sample_indices(&mut rng, pool.len(), sats_n);
    let grid = TimeGrid::new(epoch(), hours * 3600.0, step);
    let cfg = SimConfig::default().with_mask_deg(mask);
    let store = match ephemeris_cache(args) {
        Some(path) => EphemerisStore::load_or_build(&pool, &grid, &cfg, Some(&path)).select(&idx),
        None => {
            let sats: Vec<_> = idx.iter().map(|&i| pool[i].clone()).collect();
            EphemerisStore::build(&sats, &grid, &cfg)
        }
    };

    let cities = geodata::paper_cities();
    let gateways = traffic_crate::gateways_every_nth(&cities, stride);
    let parties: Vec<mpleo::party::PartyId> =
        (0..n_parties).map(|p| mpleo::party::PartyId::new(format!("party-{p}"))).collect();
    let sat_party: Vec<usize> = (0..store.sat_count()).map(|s| s % n_parties).collect();
    let city_party: Vec<usize> = (0..cities.len()).map(|c| c % n_parties).collect();
    let tcfg = traffic_crate::TrafficConfig {
        graph: traffic_crate::GraphConfig {
            isl_range_km: isl_range,
            max_hops,
            ..traffic_crate::GraphConfig::default()
        },
        demand_scale: scale,
        ..traffic_crate::TrafficConfig::default()
    };
    let report = traffic_crate::run_traffic(
        &store,
        &cities,
        &gateways,
        &cfg,
        &tcfg,
        &sat_party,
        &city_party,
        &parties,
    );

    println!(
        "constellation sample: {sats_n} satellites, {n_parties} parties, {} gateways",
        gateways.len()
    );
    println!(
        "horizon: {} ({} steps of {step:.0} s)",
        format_duration(grid.duration_s()),
        grid.steps
    );
    println!(
        "served: {:.1}% of offered traffic (drop {:.1}%)",
        report.served_ratio() * 100.0,
        report.drop_pct()
    );
    match (report.pooled_latency_ms(0.5), report.pooled_latency_ms(0.99)) {
        (Some(p50), Some(p99)) => println!("latency under load: p50 {p50:.1} ms, p99 {p99:.1} ms"),
        _ => println!("latency under load: no traffic served"),
    }
    println!("offered peak/trough: {:.2}", report.offered_peak_trough());
    println!();
    let rows: Vec<Vec<String>> = report
        .party_summary()
        .iter()
        .map(|p| {
            vec![
                p.party.to_string(),
                format!("{:.0}", p.offered_mbps),
                format!("{:.0}", p.served_mbps),
                format!("{:.0}", p.carried_mbps),
                format!("{:.0}", p.spare_mbps),
            ]
        })
        .collect();
    mpleo_bench::print_table(
        &["party", "offered Mbps", "served Mbps", "carried Mbps", "spare Mbps"],
        &rows,
    );

    // Market coupling: 6-hour epochs (at least one step each).
    let epoch_steps = ((6.0 * 3600.0 / step).round() as usize).max(1);
    let summaries = traffic_crate::summarize_epochs(&report, epoch_steps);
    let keys = traffic_crate::party_keys(&parties, b"mpleo-traffic-cli");
    let orders = traffic_crate::epoch_orders(&summaries, &keys, 1.0);
    let book = traffic_crate::clear_market(&orders);
    let settlement = book.settlement();
    let net: f64 = settlement.values().sum();
    println!();
    println!(
        "capacity market: {} epochs, {} orders, {} trades (settlement net {net:+.2e})",
        summaries.len(),
        orders.len(),
        book.trades().len()
    );
    for (party, credits) in &settlement {
        println!("  {party}: {credits:+.2} credits");
    }
    Ok(())
}

/// `mpleo churn` — run a timed churn campaign over the traffic stack:
/// mid-run satellite failures plus an optional party withdrawal, with the
/// graceful-degradation summary and the censored capacity-market
/// settlement (the `traffic::churn` engine, the CLI-sized cousin of the
/// `churn_withdrawal` experiment).
pub fn churn(args: &Args) -> CmdResult {
    args.expect_only(&[
        "sats",
        "hours",
        "step",
        "parties",
        "gateway-stride",
        "fail-fraction",
        "withdraw",
        "scale",
        "mask",
        "ephemeris-cache",
        "threads",
    ])?;
    configure_threads(args)?;
    let sats_n = args.get_usize("sats", 300)?;
    let hours = args.get_f64("hours", 12.0)?;
    let step = args.get_f64("step", 600.0)?;
    let n_parties = args.get_usize("parties", 3)?;
    let stride = args.get_usize("gateway-stride", 3)?;
    let fail_fraction = args.get_f64("fail-fraction", 0.1)?;
    let withdraw = args.get_str("withdraw", "1");
    let scale = args.get_f64("scale", 1.0)?;
    let mask = args.get_f64("mask", 25.0)?;
    if n_parties == 0 {
        return Err("--parties must be at least 1".into());
    }
    if stride == 0 {
        return Err("--gateway-stride must be at least 1".into());
    }
    if !(0.0..=1.0).contains(&fail_fraction) {
        return Err("--fail-fraction must be in [0, 1]".into());
    }
    if scale < 0.0 {
        return Err("--scale must be non-negative".into());
    }
    let withdraw: Option<usize> = match withdraw.as_str() {
        "none" => None,
        v => {
            let p: usize = v
                .parse()
                .map_err(|_| format!("--withdraw must be a party index or 'none', got '{v}'"))?;
            if p >= n_parties {
                return Err(format!("--withdraw {p} out of range ({n_parties} parties)").into());
            }
            Some(p)
        }
    };

    let pool = starlink_gen1_pool(epoch());
    if sats_n > pool.len() {
        return Err(format!("--sats {} exceeds the pool of {}", sats_n, pool.len()).into());
    }
    let mut rng = run_rng(0xC15, 0);
    let idx = sample_indices(&mut rng, pool.len(), sats_n);
    let grid = TimeGrid::new(epoch(), hours * 3600.0, step);
    let cfg = SimConfig::default().with_mask_deg(mask);
    let store = match ephemeris_cache(args) {
        Some(path) => EphemerisStore::load_or_build(&pool, &grid, &cfg, Some(&path)).select(&idx),
        None => {
            let sats: Vec<_> = idx.iter().map(|&i| pool[i].clone()).collect();
            EphemerisStore::build(&sats, &grid, &cfg)
        }
    };
    let steps = store.steps();

    let cities = geodata::paper_cities();
    let gateways = traffic_crate::gateways_every_nth(&cities, stride);
    let parties: Vec<mpleo::party::PartyId> =
        (0..n_parties).map(|p| mpleo::party::PartyId::new(format!("party-{p}"))).collect();
    let sat_party: Vec<usize> = (0..store.sat_count()).map(|s| s % n_parties).collect();
    let city_party: Vec<usize> = (0..cities.len()).map(|c| c % n_parties).collect();

    // The campaign's timeline mirrors the `churn_withdrawal` experiment:
    // failures at 25% of the horizon healing at 60%, the withdrawal at 40%
    // rejoining at 75%.
    let mut schedule = traffic_crate::ChurnSchedule::new().fail_random_sats(
        0xC15,
        store.sat_count(),
        fail_fraction,
        steps / 4,
        Some(3 * steps / 5),
    );
    if let Some(p) = withdraw {
        schedule = schedule
            .at(2 * steps / 5, traffic_crate::ChurnEvent::PartyWithdraw { party: p })
            .at(3 * steps / 4, traffic_crate::ChurnEvent::PartyRejoin { party: p });
    }
    let ccfg = traffic_crate::CampaignConfig {
        traffic: traffic_crate::TrafficConfig {
            demand_scale: scale,
            ..traffic_crate::TrafficConfig::default()
        },
        schedule,
        epoch_steps: ((6.0 * 3600.0 / step).round() as usize).max(1),
        key_seed: b"mpleo-churn-cli".to_vec(),
        ..traffic_crate::CampaignConfig::default()
    };
    let report = traffic_crate::run_campaign(
        &store,
        &cities,
        &gateways,
        &cfg,
        &ccfg,
        &sat_party,
        &city_party,
        &parties,
    );

    println!(
        "constellation sample: {sats_n} satellites, {n_parties} parties, {} gateways",
        gateways.len()
    );
    println!(
        "horizon: {} ({} steps of {step:.0} s)",
        format_duration(grid.duration_s()),
        grid.steps
    );
    println!(
        "campaign: {:.0}% of satellites fail at step {}, heal at step {}{}",
        fail_fraction * 100.0,
        steps / 4,
        3 * steps / 5,
        match withdraw {
            Some(p) => format!(
                "; party-{p} withdraws at step {} and rejoins at step {}",
                2 * steps / 5,
                3 * steps / 4
            ),
            None => String::new(),
        }
    );
    println!();
    println!(
        "served under churn: {:.1}% of offered (baseline {:.1}%)",
        report.churn.served_ratio() * 100.0,
        report.baseline.served_ratio() * 100.0
    );
    println!(
        "deficit vs baseline: worst {:.2}%, mean {:.2}% of offered per step",
        report.worst_deficit() * 100.0,
        report.mean_deficit() * 100.0
    );
    println!(
        "reroutes: {} city-steps; satellites down at peak: {}",
        report.reroutes_total(),
        report.down_sats.iter().copied().max().unwrap_or(0)
    );
    match report.time_to_recover_steps {
        Some(ttr) => println!("recovery: back at baseline {ttr} step(s) after the last event"),
        None => println!("recovery: NOT reached within the horizon"),
    }
    for notice in &report.notices {
        println!(
            "withdrawal notice: {} releases {} satellites effective {}",
            notice.party,
            notice.sat_ids.len(),
            format_duration(notice.effective_s)
        );
    }
    println!();
    let net = report.settlement_net();
    println!(
        "capacity market under churn: {} orders, {} trades (settlement net {net:+.2e})",
        report.orders.len(),
        report.trades
    );
    for (party, credits) in &report.settlement {
        println!("  {party}: {credits:+.2} credits");
    }
    Ok(())
}

/// `mpleo experiments` — run the unified figure/ablation suite (the same
/// engine as `--bin suite`) in one process over a shared context.
pub fn experiments(args: &Args) -> CmdResult {
    args.expect_only(&[
        "list",
        "only",
        "skip",
        "out",
        "strict",
        "warn-only",
        "sequential",
        "quiet",
        "report",
        "report-only",
        "threads",
    ])?;
    // Re-encode as suite-style argv so both front ends share one parser.
    let mut argv: Vec<String> = Vec::new();
    for flag in ["list", "strict", "warn-only", "sequential", "quiet", "report", "report-only"] {
        if args.get_bool(flag) {
            argv.push(format!("--{flag}"));
        }
    }
    for flag in ["only", "skip", "out", "threads"] {
        let v = args.get_str(flag, "");
        if !v.is_empty() {
            argv.push(format!("--{flag}"));
            argv.push(v);
        }
    }
    let cmd = mpleo_bench::runner::parse_args(&argv)?;
    let code = mpleo_bench::runner::execute(cmd, "mpleo experiments");
    if code != 0 {
        return Err(format!("experiments suite exited with status {code}").into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn tle_command_emits_parseable_tles() {
        // Smoke test through the public API (stdout not captured; we
        // regenerate the same constellation and check parity).
        let spec = ShellSpec { planes: 2, sats_per_plane: 2, ..ShellSpec::starlink_like() };
        for sat in walker_delta(&spec, epoch()) {
            let text = sat.to_tle().to_string();
            orbital::tle::Tle::parse(&text).expect("CLI TLE output must parse");
        }
        assert!(tle(&argv("tle --planes 2 --per-plane 2")).is_ok());
    }

    #[test]
    fn coverage_runs_with_defaults() {
        assert!(coverage(&argv("coverage --sats 50 --days 0.25 --step 300")).is_ok());
    }

    #[test]
    fn coverage_region_runs() {
        assert!(
            coverage(&argv("coverage --region taiwan --sats 100 --days 0.25 --step 300")).is_ok()
        );
        assert!(coverage(&argv("coverage --region atlantis")).is_err());
    }

    #[test]
    fn threads_flag_parses_and_rejects_garbage() {
        assert!(coverage(&argv("coverage --sats 30 --days 0.25 --step 300 --threads 2")).is_ok());
        assert!(coverage(&argv("coverage --sats 30 --days 0.25 --step 300 --threads x")).is_err());
    }

    #[test]
    fn coverage_rejects_oversample() {
        let err = coverage(&argv("coverage --sats 99999")).unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(coverage(&argv("coverage --nope 1")).is_err());
        assert!(screen(&argv("screen --bogus 2")).is_err());
    }

    #[test]
    fn plan_runs_small() {
        assert!(plan(&argv("plan --contribute 2 --base 10 --days 0.25 --step 300")).is_ok());
    }

    #[test]
    fn screen_runs_small() {
        assert!(screen(&argv("screen --planes 3 --per-plane 3 --hours 2")).is_ok());
    }

    #[test]
    fn sla_runs_small() {
        assert!(sla(&argv("sla --sats 50 --days 0.25 --step 300")).is_ok());
    }

    #[test]
    fn cities_lists() {
        assert!(cities(&argv("cities")).is_ok());
    }

    #[test]
    fn ephemeris_cache_flag_writes_then_loads() {
        let path = std::env::temp_dir().join("mpleo-cli-ephemeris-test.eph");
        let _ = std::fs::remove_file(&path);
        let cmd = format!(
            "coverage --sats 40 --days 0.25 --step 300 --ephemeris-cache {}",
            path.display()
        );
        assert!(coverage(&argv(&cmd)).is_ok());
        assert!(path.exists(), "first run must write the cache file");
        assert!(coverage(&argv(&cmd)).is_ok(), "second run must load the cache");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn map_runs_small() {
        assert!(map(&argv("map --sats 30 --hours 2 --rows 8 --cols 16")).is_ok());
        assert!(map(&argv("map --bogus 1")).is_err());
    }

    #[test]
    fn manifest_emits_valid_json() {
        assert!(manifest(&argv("manifest --parties 4 --per-party 2")).is_ok());
        assert!(manifest(&argv("manifest --oops 1")).is_err());
    }

    #[test]
    fn audit_runs_both_verdicts() {
        assert!(audit(&argv("audit")).is_ok());
        assert!(audit(&argv("audit --forge-raan 5")).is_ok());
    }

    #[test]
    fn traffic_runs_small() {
        assert!(traffic(&argv("traffic --sats 60 --hours 3 --step 600")).is_ok());
        assert!(traffic(&argv("traffic --bogus 1")).is_err());
    }

    #[test]
    fn traffic_rejects_bad_flags() {
        assert!(traffic(&argv("traffic --parties 0")).is_err());
        assert!(traffic(&argv("traffic --gateway-stride 0")).is_err());
        assert!(traffic(&argv("traffic --scale -1")).is_err());
        assert!(traffic(&argv("traffic --sats 99999")).is_err());
    }

    #[test]
    fn churn_runs_small() {
        assert!(churn(&argv("churn --sats 60 --hours 3 --step 600")).is_ok());
        assert!(churn(&argv("churn --sats 60 --hours 3 --step 600 --withdraw none")).is_ok());
        assert!(churn(&argv("churn --bogus 1")).is_err());
    }

    #[test]
    fn churn_rejects_bad_flags() {
        assert!(churn(&argv("churn --parties 0")).is_err());
        assert!(churn(&argv("churn --gateway-stride 0")).is_err());
        assert!(churn(&argv("churn --fail-fraction 1.5")).is_err());
        assert!(churn(&argv("churn --fail-fraction -0.1")).is_err());
        assert!(churn(&argv("churn --withdraw 7")).is_err());
        assert!(churn(&argv("churn --withdraw x")).is_err());
        assert!(churn(&argv("churn --scale -1")).is_err());
        assert!(churn(&argv("churn --sats 99999")).is_err());
    }
}
