//! Constellation-shaping commands: `plan` (gap-filling placement) and
//! `screen` (conjunction screening).

use super::common::{configure_threads, epoch, CmdResult};
use crate::args::Args;
use leosim::visibility::{SimConfig, VisibilityTable};
use leosim::TimeGrid;
use orbital::conjunction::{congestion_report, screen_all_pairs, ScreeningConfig};
use orbital::constellation::{satellite_at, walker_delta, ShellSpec};
use orbital::time::format_duration;

/// `mpleo plan` — gap-filling slot suggestions.
pub fn plan(args: &Args) -> CmdResult {
    args.expect_only(&["contribute", "base", "days", "step", "threads"])?;
    configure_threads(args)?;
    let contribute = args.get_usize("contribute", 3)?;
    let base_n = args.get_usize("base", 40)?;
    let days = args.get_f64("days", 1.0)?;
    let step = args.get_f64("step", 120.0)?;

    let spec = ShellSpec {
        planes: (base_n / 5).max(1) as u32,
        sats_per_plane: 5,
        ..ShellSpec::starlink_like()
    };
    let mut all = walker_delta(&spec, epoch());
    let base_count = all.len();
    let mut id = 50_000;
    for incl in [43.0, 53.0, 70.0] {
        for raan in (0..360).step_by(60) {
            for phase in (0..360).step_by(90) {
                all.push(satellite_at(
                    &format!("CAND-{id}"),
                    id,
                    550.0,
                    incl,
                    raan as f64,
                    phase as f64,
                    epoch(),
                ));
                id += 1;
            }
        }
    }
    let cities = geodata::paper_cities();
    let sites = geodata::to_sites(&cities);
    let weights = geodata::population_weights(&cities);
    let grid = TimeGrid::new(epoch(), days * 86_400.0, step);
    let vt = VisibilityTable::compute(&all, &sites, &grid, &SimConfig::default());
    let base: Vec<usize> = (0..base_count).collect();
    let candidates: Vec<usize> = (base_count..all.len()).collect();
    let chosen = mpleo::placement::greedy_select(&vt, &base, &candidates, contribute, &weights);

    println!("existing constellation: {base_count} satellites");
    println!("recommended slots for a {contribute}-satellite contribution:");
    let mut running = base.clone();
    for (rank, c) in chosen.iter().enumerate() {
        let el = &all[*c].elements;
        let gain = mpleo::placement::marginal_gain_s(&vt, &running, *c, &weights);
        println!(
            "  #{}: inclination {:>5.1} deg, RAAN {:>5.1} deg, phase {:>5.1} deg  (+{} pop-weighted coverage)",
            rank + 1,
            el.inclination_rad.to_degrees(),
            el.raan_rad.to_degrees(),
            el.mean_anomaly_rad.to_degrees(),
            format_duration(gain * 7.0 * 86_400.0 / vt.grid.duration_s()),
        );
        running.push(*c);
    }
    Ok(())
}

/// `mpleo screen` — conjunction screening.
pub fn screen(args: &Args) -> CmdResult {
    args.expect_only(&["planes", "per-plane", "hours", "threshold", "inclination", "altitude"])?;
    let spec = ShellSpec {
        planes: args.get_usize("planes", 6)? as u32,
        sats_per_plane: args.get_usize("per-plane", 6)? as u32,
        inclination_deg: args.get_f64("inclination", 53.0)?,
        altitude_km: args.get_f64("altitude", 550.0)?,
        ..ShellSpec::starlink_like()
    };
    let window_s = args.get_f64("hours", 6.0)? * 3600.0;
    let cfg =
        ScreeningConfig { threshold_km: args.get_f64("threshold", 10.0)?, ..Default::default() };
    let els: Vec<_> = walker_delta(&spec, epoch()).iter().map(|s| s.elements).collect();
    let found = screen_all_pairs(&els, epoch(), window_s, &cfg);
    let report = congestion_report(&found, els.len(), window_s);
    println!(
        "screened {} satellites over {} (threshold {} km)",
        report.satellites,
        format_duration(window_s),
        cfg.threshold_km
    );
    println!("conjunctions: {}", report.conjunctions);
    if report.conjunctions > 0 {
        println!("closest approach: {:.2} km", report.min_miss_km);
        for c in found.iter().take(10) {
            println!(
                "  sats {:>3} x {:>3}: {:.2} km at t+{}",
                c.sat_a,
                c.sat_b,
                c.miss_distance_km,
                format_duration(c.tca_offset_s)
            );
        }
    } else {
        println!("constellation is clean at this threshold.");
    }
    Ok(())
}
