//! Protocol demos: the live TCP `node` and the orbit-determination
//! `audit`.

use super::common::{epoch, CmdResult};
use crate::args::Args;
use orbital::ground::GroundSite;

/// `mpleo node` — run a live coordination-protocol node over TCP.
///
/// Several invocations on one machine (or across machines) form a real
/// gossip mesh: point later nodes at earlier ones with `--peers`. Dials
/// retry with capped exponential backoff and dropped peers are redialed,
/// so start order does not matter.
pub fn node(args: &Args) -> CmdResult {
    args.expect_only(&[
        "id",
        "listen",
        "peers",
        "parties",
        "secret",
        "anti-entropy-ms",
        "retry-initial-ms",
        "retry-max-ms",
        "retry-attempts",
        "status-secs",
    ])?;
    let id = args.get_str("id", "alpha");
    let listen: std::net::SocketAddr = {
        let s = args.get_str("listen", "127.0.0.1:0");
        s.parse().map_err(|_| format!("--listen={s} is not a socket address"))?
    };
    let mut peers = Vec::new();
    for p in args.get_str("peers", "").split(',').filter(|p| !p.trim().is_empty()) {
        let addr: std::net::SocketAddr =
            p.trim().parse().map_err(|_| format!("--peers entry '{p}' is not a socket address"))?;
        peers.push(addr);
    }
    // Every process derives the same per-party keys from the shared secret,
    // standing in for pre-distributed credentials.
    let secret = args.get_str("secret", "mpleo-demo");
    let mut keys = dcp::crypto::KeyDirectory::new();
    for p in args.get_str("parties", "alpha,beta,gamma").split(',') {
        keys.register_derived(p.trim(), secret.as_bytes());
    }
    let mut cfg = dcp::node::NodeConfig::local(id.as_str(), keys);
    cfg.listen = listen;
    cfg.advertise = true;
    cfg.anti_entropy =
        std::time::Duration::from_millis(args.get_usize("anti-entropy-ms", 1000)? as u64);
    cfg.backoff = dcp::node::BackoffConfig {
        initial: std::time::Duration::from_millis(args.get_usize("retry-initial-ms", 100)? as u64),
        max: std::time::Duration::from_millis(args.get_usize("retry-max-ms", 5000)? as u64),
        max_attempts: args.get_usize("retry-attempts", 0)? as u32,
        reconnect: true,
    };
    let status_every = std::time::Duration::from_secs(args.get_usize("status-secs", 5)? as u64);

    let rt = tokio::runtime::Builder::new_multi_thread().enable_all().build()?;
    rt.block_on(async move {
        let handle = dcp::node::Node::start(cfg).await?;
        println!("node '{}' listening on {}", handle.node_id(), handle.local_addr);
        for addr in peers {
            match handle.connect(addr).await {
                Ok(()) => println!("connected to {addr}"),
                Err(e) => eprintln!("warning: could not reach {addr}: {e}"),
            }
        }
        println!("press ctrl-c to stop");
        let mut ticker = tokio::time::interval(status_every);
        ticker.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
        ticker.tick().await; // the first tick fires immediately; skip it
        loop {
            tokio::select! {
                _ = tokio::signal::ctrl_c() => break,
                _ = ticker.tick() => {
                    println!(
                        "peers={} items={} confirmed={} settlements={} rejected={}",
                        handle.peer_count(),
                        handle.item_count(),
                        handle.confirmed_count(),
                        handle.settlements_applied(),
                        handle.rejected_count(),
                    );
                }
            }
        }
        handle.shutdown();
        println!("node stopped");
        Ok(())
    })
}

/// `mpleo audit` — orbit-determination audit demo.
pub fn audit(args: &Args) -> CmdResult {
    args.expect_only(&["forge-raan"])?;
    let forge = args.get_f64("forge-raan", 0.0)?;
    let truth = orbital::kepler::ClassicalElements::circular(
        550.0,
        53f64.to_radians(),
        120f64.to_radians(),
        30f64.to_radians(),
    );
    let site = GroundSite::from_degrees("audit-station", 25.03, 121.56);
    let obs =
        orbital::od::synthesize_observations(&truth, epoch(), &site, 43_200.0, 30.0, 10.0, 0.1, 11);
    println!("ranging log: {} measurements over half a day", obs.len());
    let published = orbital::kepler::ClassicalElements {
        raan_rad: truth.raan_rad + forge.to_radians(),
        ..truth
    };
    let mut sc = dcp::poc::Scenario::new(epoch());
    sc.add_satellite(1, published);
    sc.add_ground_station("auditor", site);
    match dcp::poc::audit_published_elements(&sc, 1, "auditor", &obs, 1.0).expect("ids registered")
    {
        dcp::poc::ElementAudit::Consistent { rms_km } => {
            println!("published elements CONSISTENT with observations (rms {rms_km:.3} km)");
        }
        dcp::poc::ElementAudit::Forged { published_rms_km, fitted, fitted_rms_km } => {
            println!("published elements MISFIT by {published_rms_km:.0} km rms");
            println!(
                "independent fit: RAAN {:.2} deg (published {:.2}), residual {fitted_rms_km:.3} km",
                fitted.raan_rad.to_degrees(),
                published.raan_rad.to_degrees()
            );
            println!("verdict: FORGED publication exposed by ranging + orbit determination");
        }
        dcp::poc::ElementAudit::Inconclusive => println!("audit inconclusive"),
    }
    Ok(())
}
