//! Helpers shared by the subcommand modules: the common epoch, the
//! `--threads` and `--ephemeris-cache` flags, and the sampled-pool scene
//! builders used by every command that simulates the shared constellation.

use crate::args::Args;
use leosim::ephemeris::EphemerisStore;
use leosim::montecarlo::{run_rng, sample_indices};
use leosim::visibility::{SimConfig, VisibilityTable};
use leosim::TimeGrid;
use orbital::constellation::starlink_gen1_pool;
use orbital::ground::GroundSite;
use orbital::time::Epoch;
use std::path::PathBuf;

pub(crate) type CmdResult = Result<(), Box<dyn std::error::Error>>;

pub(crate) fn epoch() -> Epoch {
    Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
}

/// The `--threads <n>` flag: pin the shared `simrt` worker pool to `n`
/// threads for this invocation. 0 (or absent) leaves the decision to
/// `MPLEO_THREADS`, falling back to auto-detection.
pub(crate) fn configure_threads(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let threads = args.get_usize("threads", 0)?;
    if threads > 0 {
        simrt::configure(threads);
    }
    Ok(())
}

/// The `--ephemeris-cache <path>` flag (also honored via the
/// `MPLEO_EPHEMERIS_CACHE` environment variable; empty = disabled).
pub(crate) fn ephemeris_cache(args: &Args) -> Option<PathBuf> {
    let flag = args.get_str("ephemeris-cache", "");
    if !flag.is_empty() {
        return Some(PathBuf::from(flag));
    }
    std::env::var_os("MPLEO_EPHEMERIS_CACHE").filter(|v| !v.is_empty()).map(PathBuf::from)
}

/// Shared: build a sampled pool visibility table for one site.
pub(crate) fn site_table(
    args: &Args,
    lat: f64,
    lon: f64,
) -> Result<(VisibilityTable, usize), Box<dyn std::error::Error>> {
    let sats_n = args.get_usize("sats", 500)?;
    let days = args.get_f64("days", 1.0)?;
    let step = args.get_f64("step", 60.0)?;
    let mask = args.get_f64("mask", 25.0)?;
    let pool = starlink_gen1_pool(epoch());
    if sats_n > pool.len() {
        return Err(format!("--sats {} exceeds the pool of {}", sats_n, pool.len()).into());
    }
    let mut rng = run_rng(0xC11, 0);
    let idx = sample_indices(&mut rng, pool.len(), sats_n);
    let site = [GroundSite::from_degrees("site", lat, lon)];
    let grid = TimeGrid::new(epoch(), days * 86_400.0, step);
    let cfg = SimConfig::default().with_mask_deg(mask);
    let vt = match ephemeris_cache(args) {
        // With a cache file: propagate (or load) the whole pool once and
        // slice the sampled rows out of it; repeated invocations with the
        // same grid then skip propagation entirely.
        Some(path) => {
            let store = EphemerisStore::load_or_build(&pool, &grid, &cfg, Some(&path));
            VisibilityTable::from_store_subset(&store, &idx, &site, &cfg)
        }
        // Without one, propagating just the sample is cheaper.
        None => {
            let sats: Vec<_> = idx.iter().map(|&i| pool[i].clone()).collect();
            VisibilityTable::compute(&sats, &site, &grid, &cfg)
        }
    };
    Ok((vt, sats_n))
}

/// Shared: an ephemeris store over a seeded `sats_n`-satellite sample of
/// the Starlink-like pool, going through the on-disk cache when the flag
/// (or `MPLEO_EPHEMERIS_CACHE`) is set.
pub(crate) fn sampled_store(
    args: &Args,
    seed: u64,
    sats_n: usize,
    grid: &TimeGrid,
    cfg: &SimConfig,
) -> Result<EphemerisStore, Box<dyn std::error::Error>> {
    let pool = starlink_gen1_pool(epoch());
    if sats_n > pool.len() {
        return Err(format!("--sats {} exceeds the pool of {}", sats_n, pool.len()).into());
    }
    let mut rng = run_rng(seed, 0);
    let idx = sample_indices(&mut rng, pool.len(), sats_n);
    Ok(match ephemeris_cache(args) {
        Some(path) => EphemerisStore::load_or_build(&pool, grid, cfg, Some(&path)).select(&idx),
        None => {
            let sats: Vec<_> = idx.iter().map(|&i| pool[i].clone()).collect();
            EphemerisStore::build(&sats, grid, cfg)
        }
    })
}
