//! Subcommand implementations, one module per command family; shared
//! flag/scene helpers live in [`common`]. `main.rs` keeps addressing
//! everything as `commands::<command>` through the re-exports below.

mod common;

mod churn;
mod coverage;
mod data;
mod experiments;
mod fuzz;
mod node;
mod plan;
mod traffic;

pub use self::churn::churn;
pub use self::coverage::{coverage, map, sla};
pub use self::data::{cities, manifest, tle};
pub use self::experiments::experiments;
pub use self::fuzz::fuzz;
pub use self::node::{audit, node};
pub use self::plan::{plan, screen};
pub use self::traffic::traffic;

#[cfg(test)]
mod tests {
    use super::common::epoch;
    use super::*;
    use crate::args::Args;
    use orbital::constellation::{walker_delta, ShellSpec};

    fn argv(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn tle_command_emits_parseable_tles() {
        // Smoke test through the public API (stdout not captured; we
        // regenerate the same constellation and check parity).
        let spec = ShellSpec { planes: 2, sats_per_plane: 2, ..ShellSpec::starlink_like() };
        for sat in walker_delta(&spec, epoch()) {
            let text = sat.to_tle().to_string();
            orbital::tle::Tle::parse(&text).expect("CLI TLE output must parse");
        }
        assert!(tle(&argv("tle --planes 2 --per-plane 2")).is_ok());
    }

    #[test]
    fn coverage_runs_with_defaults() {
        assert!(coverage(&argv("coverage --sats 50 --days 0.25 --step 300")).is_ok());
    }

    #[test]
    fn coverage_region_runs() {
        assert!(
            coverage(&argv("coverage --region taiwan --sats 100 --days 0.25 --step 300")).is_ok()
        );
        assert!(coverage(&argv("coverage --region atlantis")).is_err());
    }

    #[test]
    fn threads_flag_parses_and_rejects_garbage() {
        assert!(coverage(&argv("coverage --sats 30 --days 0.25 --step 300 --threads 2")).is_ok());
        assert!(coverage(&argv("coverage --sats 30 --days 0.25 --step 300 --threads x")).is_err());
    }

    #[test]
    fn coverage_rejects_oversample() {
        let err = coverage(&argv("coverage --sats 99999")).unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(coverage(&argv("coverage --nope 1")).is_err());
        assert!(screen(&argv("screen --bogus 2")).is_err());
    }

    #[test]
    fn plan_runs_small() {
        assert!(plan(&argv("plan --contribute 2 --base 10 --days 0.25 --step 300")).is_ok());
    }

    #[test]
    fn screen_runs_small() {
        assert!(screen(&argv("screen --planes 3 --per-plane 3 --hours 2")).is_ok());
    }

    #[test]
    fn sla_runs_small() {
        assert!(sla(&argv("sla --sats 50 --days 0.25 --step 300")).is_ok());
    }

    #[test]
    fn cities_lists() {
        assert!(cities(&argv("cities")).is_ok());
    }

    #[test]
    fn ephemeris_cache_flag_writes_then_loads() {
        let path = std::env::temp_dir().join("mpleo-cli-ephemeris-test.eph");
        let _ = std::fs::remove_file(&path);
        let cmd = format!(
            "coverage --sats 40 --days 0.25 --step 300 --ephemeris-cache {}",
            path.display()
        );
        assert!(coverage(&argv(&cmd)).is_ok());
        assert!(path.exists(), "first run must write the cache file");
        assert!(coverage(&argv(&cmd)).is_ok(), "second run must load the cache");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn map_runs_small() {
        assert!(map(&argv("map --sats 30 --hours 2 --rows 8 --cols 16")).is_ok());
        assert!(map(&argv("map --bogus 1")).is_err());
    }

    #[test]
    fn manifest_emits_valid_json() {
        assert!(manifest(&argv("manifest --parties 4 --per-party 2")).is_ok());
        assert!(manifest(&argv("manifest --oops 1")).is_err());
    }

    #[test]
    fn audit_runs_both_verdicts() {
        assert!(audit(&argv("audit")).is_ok());
        assert!(audit(&argv("audit --forge-raan 5")).is_ok());
    }

    #[test]
    fn traffic_runs_small() {
        assert!(traffic(&argv("traffic --sats 60 --hours 3 --step 600")).is_ok());
        assert!(traffic(&argv("traffic --bogus 1")).is_err());
    }

    #[test]
    fn traffic_rejects_bad_flags() {
        assert!(traffic(&argv("traffic --parties 0")).is_err());
        assert!(traffic(&argv("traffic --gateway-stride 0")).is_err());
        assert!(traffic(&argv("traffic --scale -1")).is_err());
        assert!(traffic(&argv("traffic --sats 99999")).is_err());
    }

    #[test]
    fn churn_runs_small() {
        assert!(churn(&argv("churn --sats 60 --hours 3 --step 600")).is_ok());
        assert!(churn(&argv("churn --sats 60 --hours 3 --step 600 --withdraw none")).is_ok());
        assert!(churn(&argv("churn --bogus 1")).is_err());
    }

    #[test]
    fn fuzz_runs_a_tiny_seed_range() {
        assert!(fuzz(&argv("fuzz --seeds 2 --start-seed 100")).is_ok());
        assert!(fuzz(&argv("fuzz --bogus 1")).is_err());
    }

    #[test]
    fn fuzz_rejects_bad_flags() {
        assert!(fuzz(&argv("fuzz --seeds 0")).is_err());
        assert!(fuzz(&argv("fuzz --budget -1")).is_err());
        assert!(fuzz(&argv("fuzz --seeds x")).is_err());
        assert!(fuzz(&argv("fuzz --corpus /nonexistent/corpus --seeds 0")).is_err());
    }

    #[test]
    fn churn_rejects_bad_flags() {
        assert!(churn(&argv("churn --parties 0")).is_err());
        assert!(churn(&argv("churn --gateway-stride 0")).is_err());
        assert!(churn(&argv("churn --fail-fraction 1.5")).is_err());
        assert!(churn(&argv("churn --fail-fraction -0.1")).is_err());
        assert!(churn(&argv("churn --withdraw 7")).is_err());
        assert!(churn(&argv("churn --withdraw x")).is_err());
        assert!(churn(&argv("churn --scale -1")).is_err());
        assert!(churn(&argv("churn --sats 99999")).is_err());
    }
}
