//! The `traffic` command: route diurnal metro demand over a shared
//! constellation sample and summarize service plus the capacity market.

use super::common::{configure_threads, epoch, sampled_store, CmdResult};
use crate::args::Args;
use leosim::visibility::SimConfig;
use leosim::TimeGrid;
use orbital::time::format_duration;
// The crate is `traffic`, the command below is `traffic()`; alias the
// crate so paths inside the function stay unambiguous to readers.
use traffic as traffic_crate;

/// `mpleo traffic` — route diurnal metro demand over a shared
/// constellation sample and summarize service plus the resulting capacity
/// market (the `traffic` crate's engine, the CLI-sized cousin of the
/// `traffic_diurnal` experiment).
pub fn traffic(args: &Args) -> CmdResult {
    args.expect_only(&[
        "sats",
        "hours",
        "step",
        "parties",
        "gateway-stride",
        "isl-range",
        "max-hops",
        "scale",
        "mask",
        "ephemeris-cache",
        "threads",
    ])?;
    configure_threads(args)?;
    let sats_n = args.get_usize("sats", 300)?;
    let hours = args.get_f64("hours", 12.0)?;
    let step = args.get_f64("step", 600.0)?;
    let n_parties = args.get_usize("parties", 3)?;
    let stride = args.get_usize("gateway-stride", 3)?;
    let isl_range = args.get_f64("isl-range", 3000.0)?;
    let max_hops = args.get_usize("max-hops", 1)?;
    let scale = args.get_f64("scale", 1.0)?;
    let mask = args.get_f64("mask", 25.0)?;
    if n_parties == 0 {
        return Err("--parties must be at least 1".into());
    }
    if stride == 0 {
        return Err("--gateway-stride must be at least 1".into());
    }
    if scale < 0.0 {
        return Err("--scale must be non-negative".into());
    }

    let grid = TimeGrid::new(epoch(), hours * 3600.0, step);
    let cfg = SimConfig::default().with_mask_deg(mask);
    let store = sampled_store(args, 0xC14, sats_n, &grid, &cfg)?;

    let cities = geodata::paper_cities();
    let gateways = traffic_crate::gateways_every_nth(&cities, stride);
    let parties: Vec<mpleo::party::PartyId> =
        (0..n_parties).map(|p| mpleo::party::PartyId::new(format!("party-{p}"))).collect();
    let sat_party: Vec<usize> = (0..store.sat_count()).map(|s| s % n_parties).collect();
    let city_party: Vec<usize> = (0..cities.len()).map(|c| c % n_parties).collect();
    let tcfg = traffic_crate::TrafficConfig {
        graph: traffic_crate::GraphConfig {
            isl_range_km: isl_range,
            max_hops,
            ..traffic_crate::GraphConfig::default()
        },
        demand_scale: scale,
        ..traffic_crate::TrafficConfig::default()
    };
    let report = traffic_crate::run_traffic(
        &store,
        &cities,
        &gateways,
        &cfg,
        &tcfg,
        &sat_party,
        &city_party,
        &parties,
    );

    println!(
        "constellation sample: {sats_n} satellites, {n_parties} parties, {} gateways",
        gateways.len()
    );
    println!(
        "horizon: {} ({} steps of {step:.0} s)",
        format_duration(grid.duration_s()),
        grid.steps
    );
    println!(
        "served: {:.1}% of offered traffic (drop {:.1}%)",
        report.served_ratio() * 100.0,
        report.drop_pct()
    );
    match (report.pooled_latency_ms(0.5), report.pooled_latency_ms(0.99)) {
        (Some(p50), Some(p99)) => println!("latency under load: p50 {p50:.1} ms, p99 {p99:.1} ms"),
        _ => println!("latency under load: no traffic served"),
    }
    println!("offered peak/trough: {:.2}", report.offered_peak_trough());
    println!();
    let rows: Vec<Vec<String>> = report
        .party_summary()
        .iter()
        .map(|p| {
            vec![
                p.party.to_string(),
                format!("{:.0}", p.offered_mbps),
                format!("{:.0}", p.served_mbps),
                format!("{:.0}", p.carried_mbps),
                format!("{:.0}", p.spare_mbps),
            ]
        })
        .collect();
    mpleo_bench::print_table(
        &["party", "offered Mbps", "served Mbps", "carried Mbps", "spare Mbps"],
        &rows,
    );

    // Market coupling: 6-hour epochs (at least one step each).
    let epoch_steps = ((6.0 * 3600.0 / step).round() as usize).max(1);
    let summaries = traffic_crate::summarize_epochs(&report, epoch_steps);
    let keys = traffic_crate::party_keys(&parties, b"mpleo-traffic-cli");
    let orders = traffic_crate::epoch_orders(&summaries, &keys, 1.0);
    let book = traffic_crate::clear_market(&orders);
    let settlement = book.settlement();
    let net: f64 = settlement.values().sum();
    println!();
    println!(
        "capacity market: {} epochs, {} orders, {} trades (settlement net {net:+.2e})",
        summaries.len(),
        orders.len(),
        book.trades().len()
    );
    for (party, credits) in &settlement {
        println!("  {party}: {credits:+.2} credits");
    }
    Ok(())
}
