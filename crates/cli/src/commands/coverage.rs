//! Coverage-reporting commands: `coverage` (point and region), `sla`,
//! and the ASCII `map`.

use super::common::{configure_threads, ephemeris_cache, epoch, site_table, CmdResult};
use crate::args::Args;
use leosim::coverage::CoverageStats;
use leosim::ephemeris::EphemerisStore;
use leosim::montecarlo::{run_rng, sample_indices};
use leosim::visibility::SimConfig;
use leosim::TimeGrid;
use orbital::constellation::starlink_gen1_pool;
use orbital::time::format_duration;

/// `mpleo coverage` — coverage statistics for a point or named region.
pub fn coverage(args: &Args) -> CmdResult {
    args.expect_only(&[
        "lat",
        "lon",
        "sats",
        "days",
        "step",
        "mask",
        "region",
        "ephemeris-cache",
        "threads",
    ])?;
    configure_threads(args)?;
    let region_name = args.get_str("region", "");
    if !region_name.is_empty() {
        return coverage_region(args, &region_name);
    }
    let lat = args.get_f64("lat", 25.033)?;
    let lon = args.get_f64("lon", 121.565)?;
    let (vt, n) = site_table(args, lat, lon)?;
    let all: Vec<usize> = (0..vt.sat_count()).collect();
    let stats = CoverageStats::from_bitset(&vt.coverage_union(&all, 0), &vt.grid);
    println!("site: ({lat:.3}, {lon:.3}); constellation sample: {n} satellites");
    println!("horizon: {}", format_duration(vt.grid.duration_s()));
    println!("coverage:        {:.3}%", stats.covered_fraction * 100.0);
    println!("without coverage: {:.3}%", stats.uncovered_fraction * 100.0);
    println!("longest gap:     {}", format_duration(stats.max_gap_s));
    println!("gap count:       {}", stats.gap_count);
    println!("mean gap:        {}", format_duration(stats.mean_gap_s));
    Ok(())
}

/// Regional coverage for `mpleo coverage --region <name>`.
fn coverage_region(args: &Args, name: &str) -> CmdResult {
    let region = match name.to_ascii_lowercase().as_str() {
        "taiwan" => geodata::Region::taiwan(),
        "ukraine" => geodata::Region::ukraine(),
        "korea" | "south-korea" => geodata::Region::south_korea(),
        other => return Err(format!("unknown region '{other}' (taiwan | ukraine | korea)").into()),
    };
    let sats_n = args.get_usize("sats", 500)?;
    let days = args.get_f64("days", 1.0)?;
    let step = args.get_f64("step", 120.0)?;
    let mask = args.get_f64("mask", 25.0)?;
    let pool = starlink_gen1_pool(epoch());
    if sats_n > pool.len() {
        return Err(format!("--sats {} exceeds the pool of {}", sats_n, pool.len()).into());
    }
    if ephemeris_cache(args).is_some() {
        eprintln!("note: --ephemeris-cache is not used on the regional path (per-receiver grids)");
    }
    let mut rng = run_rng(0xC13, 0);
    let idx = sample_indices(&mut rng, pool.len(), sats_n);
    let sats: Vec<_> = idx.iter().map(|&i| pool[i].clone()).collect();
    let grid = TimeGrid::new(epoch(), days * 86_400.0, step);
    let cfg = SimConfig::default().with_mask_deg(mask);
    let rc = leosim::region::region_coverage(&sats, &region, 3, &grid, &cfg);
    println!(
        "region: {} ({} receiver grid points); sample: {sats_n} satellites",
        rc.region, rc.receivers
    );
    println!("horizon: {}", format_duration(grid.duration_s()));
    println!("mean availability:         {:.3}%", rc.mean_fraction * 100.0);
    println!("worst-site availability:   {:.3}%", rc.worst_fraction * 100.0);
    println!("worst-site longest gap:    {}", format_duration(rc.worst_max_gap_s));
    println!("simultaneous (all points): {:.3}%", rc.simultaneous_fraction * 100.0);
    Ok(())
}

/// `mpleo sla` — quote the sellable tier.
pub fn sla(args: &Args) -> CmdResult {
    args.expect_only(&[
        "lat",
        "lon",
        "sats",
        "days",
        "step",
        "mask",
        "ephemeris-cache",
        "threads",
    ])?;
    configure_threads(args)?;
    let lat = args.get_f64("lat", 25.033)?;
    let lon = args.get_f64("lon", 121.565)?;
    let (vt, n) = site_table(args, lat, lon)?;
    let all: Vec<usize> = (0..vt.sat_count()).collect();
    let stats = CoverageStats::from_bitset(&vt.coverage_union(&all, 0), &vt.grid);
    let quote = mpleo::sla::quote(&stats);
    println!("site ({lat:.3}, {lon:.3}), {n}-satellite sample:");
    println!("availability: {:.3}%", quote.availability * 100.0);
    println!("worst outage: {}", format_duration(quote.worst_outage_s));
    println!(
        "sellable tier: {} ({}x best-effort price)",
        quote.tier.name, quote.tier.price_multiplier
    );
    if let Some(gap) = quote.next_tier_gap {
        if gap > 0.0 {
            println!("availability shortfall to next tier: {:.3} points", gap * 100.0);
        } else {
            println!("availability meets the next tier; outage duration is the binding constraint");
        }
    }
    Ok(())
}

/// `mpleo map` — ASCII world coverage map.
pub fn map(args: &Args) -> CmdResult {
    args.expect_only(&["sats", "hours", "mask", "rows", "cols", "ephemeris-cache", "threads"])?;
    configure_threads(args)?;
    let sats_n = args.get_usize("sats", 200)?;
    let hours = args.get_f64("hours", 12.0)?;
    let mask = args.get_f64("mask", 25.0)?;
    let rows = args.get_usize("rows", 18)?;
    let cols = args.get_usize("cols", 72)?;
    let pool = starlink_gen1_pool(epoch());
    if sats_n > pool.len() {
        return Err(format!("--sats {} exceeds the pool of {}", sats_n, pool.len()).into());
    }
    let mut rng = run_rng(0xC12, 0);
    let idx = sample_indices(&mut rng, pool.len(), sats_n);
    let grid = TimeGrid::new(epoch(), hours * 3600.0, 600.0);
    let cfg = SimConfig::default().with_mask_deg(mask);
    let map = match ephemeris_cache(args) {
        Some(path) => {
            let store = EphemerisStore::load_or_build(&pool, &grid, &cfg, Some(&path));
            let sub = store.select(&idx);
            leosim::coveragemap::CoverageMap::compute_from_store(&sub, &cfg, rows, cols)
        }
        None => {
            let sats: Vec<_> = idx.iter().map(|&i| pool[i].clone()).collect();
            leosim::coveragemap::CoverageMap::compute(&sats, &grid, &cfg, rows, cols)
        }
    };
    println!("coverage fraction, {sats_n} satellites, {hours:.0} h horizon, {mask:.0} deg mask");
    println!("(darker = better covered; right margin = row latitude)\n");
    print!("{}", map.ascii());
    println!("\narea-weighted global mean coverage: {:.1}%", map.global_mean() * 100.0);
    println!("note the bright bands near +-53 deg and the dark poles — the");
    println!("geometry behind every figure in the paper.");
    Ok(())
}
