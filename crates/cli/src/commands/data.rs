//! Dataset and artifact emitters: `tle`, `cities`, and `manifest`.

use super::common::{epoch, CmdResult};
use crate::args::Args;
use orbital::constellation::{walker_delta, ShellSpec};

/// `mpleo tle` — emit a Walker constellation as TLE text.
pub fn tle(args: &Args) -> CmdResult {
    args.expect_only(&["planes", "per-plane", "inclination", "altitude", "phasing", "name"])?;
    let spec = ShellSpec {
        name: args.get_str("name", "MPLEO"),
        planes: args.get_usize("planes", 4)? as u32,
        sats_per_plane: args.get_usize("per-plane", 4)? as u32,
        inclination_deg: args.get_f64("inclination", 53.0)?,
        altitude_km: args.get_f64("altitude", 550.0)?,
        phasing: args.get_usize("phasing", 1)? as u32,
        raan_offset_deg: 0.0,
    };
    for sat in walker_delta(&spec, epoch()) {
        println!("{}", sat.to_tle());
    }
    Ok(())
}

/// `mpleo cities` — the embedded dataset.
pub fn cities(args: &Args) -> CmdResult {
    args.expect_only(&[])?;
    println!("{:<14} {:<3} {:>8} {:>9} {:>7}", "city", "cc", "lat", "lon", "pop(M)");
    for c in geodata::paper_cities() {
        println!(
            "{:<14} {:<3} {:>8.4} {:>9.4} {:>7.1}",
            c.name, c.country, c.lat_deg, c.lon_deg, c.population_m
        );
    }
    Ok(())
}

/// `mpleo manifest` — emit a constellation manifest as JSON.
pub fn manifest(args: &Args) -> CmdResult {
    use mpleo::manifest::*;
    use mpleo::party::PartyKind;
    args.expect_only(&["parties", "per-party", "name"])?;
    let parties_n = args.get_usize("parties", 3)?.max(2);
    let per_party = args.get_usize("per-party", 4)?.max(1);
    let name = args.get_str("name", "mpleo-demo");
    let spec = ShellSpec {
        planes: parties_n as u32,
        sats_per_plane: per_party as u32,
        ..ShellSpec::starlink_like()
    };
    let sats = walker_delta(&spec, epoch());
    let parties: Vec<ManifestParty> = (0..parties_n)
        .map(|k| ManifestParty {
            id: format!("party-{k:02}"),
            kind: if k % 2 == 0 { PartyKind::Country } else { PartyKind::Company },
        })
        .collect();
    // Interleave ownership across planes (the coverage-optimal layout).
    let satellites: Vec<ManifestSatellite> = sats
        .iter()
        .enumerate()
        .map(|(i, s)| ManifestSatellite {
            sat_id: s.id,
            name: s.name.clone(),
            owner: format!("party-{:02}", i % parties_n),
            elements: s.elements,
        })
        .collect();
    let m = ConstellationManifest {
        name,
        epoch_utc: (2024, 6, 1, 0, 0, 0.0),
        parties,
        satellites,
        ground_stations: vec![ManifestGroundStation {
            party: "party-00".into(),
            name: "gs-00".into(),
            lat_deg: 25.03,
            lon_deg: 121.56,
        }],
        policies: ManifestPolicies {
            poc_quorum: 2,
            control_quorum: 2.max(parties_n / 2 + 1),
            min_elevation_deg: 25.0,
        },
    };
    m.validate().map_err(Box::new)?;
    println!("{}", m.to_json());
    Ok(())
}
