//! The `churn` command: a timed failure/withdrawal campaign over the
//! traffic stack with graceful-degradation and market summaries.

use super::common::{configure_threads, epoch, sampled_store, CmdResult};
use crate::args::Args;
use leosim::visibility::SimConfig;
use leosim::TimeGrid;
use orbital::time::format_duration;
use traffic as traffic_crate;

/// `mpleo churn` — run a timed churn campaign over the traffic stack:
/// mid-run satellite failures plus an optional party withdrawal, with the
/// graceful-degradation summary and the censored capacity-market
/// settlement (the `traffic::churn` engine, the CLI-sized cousin of the
/// `churn_withdrawal` experiment).
pub fn churn(args: &Args) -> CmdResult {
    args.expect_only(&[
        "sats",
        "hours",
        "step",
        "parties",
        "gateway-stride",
        "fail-fraction",
        "withdraw",
        "scale",
        "mask",
        "ephemeris-cache",
        "threads",
    ])?;
    configure_threads(args)?;
    let sats_n = args.get_usize("sats", 300)?;
    let hours = args.get_f64("hours", 12.0)?;
    let step = args.get_f64("step", 600.0)?;
    let n_parties = args.get_usize("parties", 3)?;
    let stride = args.get_usize("gateway-stride", 3)?;
    let fail_fraction = args.get_f64("fail-fraction", 0.1)?;
    let withdraw = args.get_str("withdraw", "1");
    let scale = args.get_f64("scale", 1.0)?;
    let mask = args.get_f64("mask", 25.0)?;
    if n_parties == 0 {
        return Err("--parties must be at least 1".into());
    }
    if stride == 0 {
        return Err("--gateway-stride must be at least 1".into());
    }
    if !(0.0..=1.0).contains(&fail_fraction) {
        return Err("--fail-fraction must be in [0, 1]".into());
    }
    if scale < 0.0 {
        return Err("--scale must be non-negative".into());
    }
    let withdraw: Option<usize> = match withdraw.as_str() {
        "none" => None,
        v => {
            let p: usize = v
                .parse()
                .map_err(|_| format!("--withdraw must be a party index or 'none', got '{v}'"))?;
            if p >= n_parties {
                return Err(format!("--withdraw {p} out of range ({n_parties} parties)").into());
            }
            Some(p)
        }
    };

    let grid = TimeGrid::new(epoch(), hours * 3600.0, step);
    let cfg = SimConfig::default().with_mask_deg(mask);
    let store = sampled_store(args, 0xC15, sats_n, &grid, &cfg)?;
    let steps = store.steps();

    let cities = geodata::paper_cities();
    let gateways = traffic_crate::gateways_every_nth(&cities, stride);
    let parties: Vec<mpleo::party::PartyId> =
        (0..n_parties).map(|p| mpleo::party::PartyId::new(format!("party-{p}"))).collect();
    let sat_party: Vec<usize> = (0..store.sat_count()).map(|s| s % n_parties).collect();
    let city_party: Vec<usize> = (0..cities.len()).map(|c| c % n_parties).collect();

    // The campaign's timeline mirrors the `churn_withdrawal` experiment:
    // failures at 25% of the horizon healing at 60%, the withdrawal at 40%
    // rejoining at 75%.
    let mut schedule = traffic_crate::ChurnSchedule::new().fail_random_sats(
        0xC15,
        store.sat_count(),
        fail_fraction,
        steps / 4,
        Some(3 * steps / 5),
    );
    if let Some(p) = withdraw {
        schedule = schedule
            .at(2 * steps / 5, traffic_crate::ChurnEvent::PartyWithdraw { party: p })
            .at(3 * steps / 4, traffic_crate::ChurnEvent::PartyRejoin { party: p });
    }
    let ccfg = traffic_crate::CampaignConfig {
        traffic: traffic_crate::TrafficConfig {
            demand_scale: scale,
            ..traffic_crate::TrafficConfig::default()
        },
        schedule,
        epoch_steps: ((6.0 * 3600.0 / step).round() as usize).max(1),
        key_seed: b"mpleo-churn-cli".to_vec(),
        ..traffic_crate::CampaignConfig::default()
    };
    let report = traffic_crate::run_campaign(
        &store,
        &cities,
        &gateways,
        &cfg,
        &ccfg,
        &sat_party,
        &city_party,
        &parties,
    );

    println!(
        "constellation sample: {sats_n} satellites, {n_parties} parties, {} gateways",
        gateways.len()
    );
    println!(
        "horizon: {} ({} steps of {step:.0} s)",
        format_duration(grid.duration_s()),
        grid.steps
    );
    println!(
        "campaign: {:.0}% of satellites fail at step {}, heal at step {}{}",
        fail_fraction * 100.0,
        steps / 4,
        3 * steps / 5,
        match withdraw {
            Some(p) => format!(
                "; party-{p} withdraws at step {} and rejoins at step {}",
                2 * steps / 5,
                3 * steps / 4
            ),
            None => String::new(),
        }
    );
    println!();
    println!(
        "served under churn: {:.1}% of offered (baseline {:.1}%)",
        report.churn.served_ratio() * 100.0,
        report.baseline.served_ratio() * 100.0
    );
    println!(
        "deficit vs baseline: worst {:.2}%, mean {:.2}% of offered per step",
        report.worst_deficit() * 100.0,
        report.mean_deficit() * 100.0
    );
    println!(
        "reroutes: {} city-steps; satellites down at peak: {}",
        report.reroutes_total(),
        report.down_sats.iter().copied().max().unwrap_or(0)
    );
    match report.time_to_recover_steps {
        Some(ttr) => println!("recovery: back at baseline {ttr} step(s) after the last event"),
        None => println!("recovery: NOT reached within the horizon"),
    }
    for notice in &report.notices {
        println!(
            "withdrawal notice: {} releases {} satellites effective {}",
            notice.party,
            notice.sat_ids.len(),
            format_duration(notice.effective_s)
        );
    }
    println!();
    let net = report.settlement_net();
    println!(
        "capacity market under churn: {} orders, {} trades (settlement net {net:+.2e})",
        report.orders.len(),
        report.trades
    );
    for (party, credits) in &report.settlement {
        println!("  {party}: {credits:+.2} credits");
    }
    Ok(())
}
