//! The `fuzz` command: the seeded whole-stack scenario fuzzer.
//!
//! Drives `scenario::run_fuzz` over a contiguous seed range (and,
//! optionally, the checked-in corpus first), printing one line per seed
//! and a shrunk one-line JSON repro for every failure. Exits nonzero if
//! anything failed, so CI can gate on it directly.

use super::common::{configure_threads, CmdResult};
use crate::args::Args;
use scenario::seeds::FUZZ_SMOKE_START;
use std::path::Path;
use std::time::Duration;

/// `mpleo fuzz` — generate seeded whole-stack scenarios and check every
/// cross-layer invariant oracle over each one; shrink and print failures
/// as replayable one-line JSON repros.
pub fn fuzz(args: &Args) -> CmdResult {
    args.expect_only(&["seeds", "budget", "start-seed", "corpus", "out", "threads"])?;
    configure_threads(args)?;
    let seeds = args.get_u64("seeds", 25)?;
    let budget_s = args.get_f64("budget", 0.0)?;
    let start_seed = args.get_u64("start-seed", FUZZ_SMOKE_START)?;
    let corpus_dir = args.get_str("corpus", "");
    let out_dir = args.get_str("out", "");
    if seeds == 0 && corpus_dir.is_empty() {
        return Err("--seeds 0 with no --corpus checks nothing".into());
    }
    if budget_s < 0.0 {
        return Err("--budget must be non-negative seconds".into());
    }
    let budget = (budget_s > 0.0).then(|| Duration::from_secs_f64(budget_s));

    let mut failing_repros: Vec<scenario::Repro> = Vec::new();

    // The pinned corpus first: these are known-good (or fixed-and-pinned)
    // scenarios whose oracles must keep passing.
    if !corpus_dir.is_empty() {
        let entries = scenario::load_corpus(Path::new(&corpus_dir))?;
        println!("corpus: {} entr{} from {corpus_dir}", entries.len(), plural_y(entries.len()));
        for (path, entry) in &entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
            match entry.check() {
                Ok(outcome) => println!(
                    "  {name}: ok (seed {}, {} sats, {} steps, served {:.1}%)",
                    entry.seed,
                    outcome.n_sats,
                    outcome.steps,
                    outcome.served_ratio * 100.0
                ),
                Err(violation) => {
                    println!("  {name}: FAIL {violation}");
                    failing_repros.push(scenario::Repro::new(&entry.scenario(), &violation));
                }
            }
        }
    }

    // Then the fresh seed range.
    if seeds > 0 {
        println!(
            "fuzz: {seeds} seed(s) from {start_seed:#x}{}",
            match budget {
                Some(b) => format!(", budget {:.0} s", b.as_secs_f64()),
                None => String::new(),
            }
        );
        let report =
            scenario::run_fuzz(start_seed, seeds, budget, &mut |seed, result| match result {
                Ok(outcome) => println!(
                    "  seed {seed:#x}: ok ({} sats, {} steps, served {:.1}%, {} trades)",
                    outcome.n_sats,
                    outcome.steps,
                    outcome.served_ratio * 100.0,
                    outcome.trades
                ),
                Err(violation) => println!("  seed {seed:#x}: FAIL {violation} (shrinking...)"),
            });
        println!(
            "checked {} seed(s) in {:.1} s: {} failure(s)",
            report.checked,
            report.elapsed.as_secs_f64(),
            report.failures.len()
        );
        failing_repros.extend(report.failures);
    }

    if failing_repros.is_empty() {
        println!("all oracles passed");
        return Ok(());
    }

    // Every failure as a replayable one-line JSON repro, optionally
    // persisted (the CI smoke job uploads this directory as an artifact).
    for (i, repro) in failing_repros.iter().enumerate() {
        println!("repro[{i}] [{}] {}", repro.oracle, repro.to_json());
    }
    if !out_dir.is_empty() {
        std::fs::create_dir_all(&out_dir)?;
        for (i, repro) in failing_repros.iter().enumerate() {
            let path = Path::new(&out_dir).join(format!("repro-{:04}-seed-{}.json", i, repro.seed));
            std::fs::write(&path, repro.to_json())?;
            println!("wrote {}", path.display());
        }
    }
    Err(format!("{} scenario(s) violated an oracle", failing_repros.len()).into())
}

fn plural_y(n: usize) -> &'static str {
    if n == 1 {
        "y"
    } else {
        "ies"
    }
}
