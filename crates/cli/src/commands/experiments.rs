//! The `experiments` command: the figure/ablation suite front end.

use super::common::CmdResult;
use crate::args::Args;

/// `mpleo experiments` — run the unified figure/ablation suite (the same
/// engine as `--bin suite`) in one process over a shared context.
pub fn experiments(args: &Args) -> CmdResult {
    args.expect_only(&[
        "list",
        "only",
        "skip",
        "out",
        "strict",
        "warn-only",
        "sequential",
        "quiet",
        "report",
        "report-only",
        "threads",
    ])?;
    // Re-encode as suite-style argv so both front ends share one parser.
    let mut argv: Vec<String> = Vec::new();
    for flag in ["list", "strict", "warn-only", "sequential", "quiet", "report", "report-only"] {
        if args.get_bool(flag) {
            argv.push(format!("--{flag}"));
        }
    }
    for flag in ["only", "skip", "out", "threads"] {
        let v = args.get_str(flag, "");
        if !v.is_empty() {
            argv.push(format!("--{flag}"));
            argv.push(v);
        }
    }
    let cmd = mpleo_bench::runner::parse_args(&argv)?;
    let code = mpleo_bench::runner::execute(cmd, "mpleo experiments");
    if code != 0 {
        return Err(format!("experiments suite exited with status {code}").into());
    }
    Ok(())
}
