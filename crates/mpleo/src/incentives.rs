//! Participation incentives: proof-of-coverage rewards, pricing models, and
//! settlement between consumer and provider parties (the paper's §3.2).
//!
//! The model mirrors the Helium-style structure the paper cites:
//!
//! * providers earn for *carrying traffic* in proportion to utilization;
//! * ground stations at random locations earn small *proof-of-coverage*
//!   verification rewards for pinging satellites overhead;
//! * prices are either predetermined (fixed) or dynamically set by scarcity
//!   (an open data market).

use crate::party::PartyId;
use leosim::visibility::VisibilityTable;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How providers charge for carried traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PricingModel {
    /// A predetermined price per served step.
    Fixed {
        /// Price per served step, credits.
        rate: f64,
    },
    /// Scarcity pricing: when `k` satellites are visible to the consumer at
    /// a step, the price is `base * (1 + surge / k)` — fewer alternatives,
    /// higher price. `k = 0` steps are unserved and cost nothing.
    Dynamic {
        /// Baseline price per served step, credits.
        base: f64,
        /// Surge coefficient.
        surge: f64,
    },
}

impl PricingModel {
    /// Price of one served step when `visible_count` satellites could have
    /// served the consumer.
    pub fn price(&self, visible_count: usize) -> f64 {
        match *self {
            PricingModel::Fixed { rate } => rate,
            PricingModel::Dynamic { base, surge } => {
                if visible_count == 0 {
                    0.0
                } else {
                    base * (1.0 + surge / visible_count as f64)
                }
            }
        }
    }
}

/// A record that satellite `sat` served consumer site `site` at step `step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceRecord {
    /// Satellite index (into the visibility table).
    pub sat: usize,
    /// Consumer site index.
    pub site: usize,
    /// Time-grid step.
    pub step: usize,
}

/// Generate service records by assigning, at every step, each site to the
/// lowest-indexed visible satellite of the subset (a deterministic stand-in
/// for the capacity scheduler; see [`crate::capacity`] for the loaded
/// version).
pub fn service_records(vt: &VisibilityTable, sat_indices: &[usize]) -> Vec<ServiceRecord> {
    let mut out = Vec::new();
    for site in 0..vt.site_count() {
        for step in 0..vt.grid.steps {
            if let Some(&sat) = sat_indices.iter().find(|&&s| vt.bitset(s, site).get(step)) {
                out.push(ServiceRecord { sat, site, step });
            }
        }
    }
    out
}

/// Settlement outcome: net credit balance per party (positive = earned).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Settlement {
    /// Net balances, credits.
    pub balances: HashMap<PartyId, f64>,
    /// Gross amount transferred, credits.
    pub volume: f64,
}

impl Settlement {
    /// Net balance of a party (0 if unknown).
    pub fn balance(&self, id: &PartyId) -> f64 {
        self.balances.get(id).copied().unwrap_or(0.0)
    }
}

/// Settle an epoch of service records.
///
/// `sat_owner[sat]` is the providing party of a satellite; `site_consumer
/// [site]` is the paying party of a terminal site. For each record the
/// consumer pays the provider the model price (self-service — a party using
/// its own satellite — transfers nothing but still counts as utilization).
/// `visible_counts[site][step]` supplies the scarcity input for dynamic
/// pricing; pass the result of [`visible_count_matrix`].
pub fn settle(
    records: &[ServiceRecord],
    sat_owner: &HashMap<usize, PartyId>,
    site_consumer: &HashMap<usize, PartyId>,
    pricing: PricingModel,
    visible_counts: &[Vec<usize>],
) -> Settlement {
    let mut balances: HashMap<PartyId, f64> = HashMap::new();
    let mut volume = 0.0;
    for r in records {
        let provider = sat_owner.get(&r.sat).expect("satellite has an owner");
        let consumer = site_consumer.get(&r.site).expect("site has a consumer");
        if provider == consumer {
            continue;
        }
        let price = pricing.price(visible_counts[r.site][r.step]);
        *balances.entry(provider.clone()).or_default() += price;
        *balances.entry(consumer.clone()).or_default() -= price;
        volume += price;
    }
    Settlement { balances, volume }
}

/// Per-(site, step) count of visible satellites from the subset — the
/// scarcity signal for dynamic pricing.
pub fn visible_count_matrix(vt: &VisibilityTable, sat_indices: &[usize]) -> Vec<Vec<usize>> {
    (0..vt.site_count())
        .map(|site| {
            let mut counts = vec![0usize; vt.grid.steps];
            for &s in sat_indices {
                for step in vt.bitset(s, site).iter_ones() {
                    counts[step] += 1;
                }
            }
            counts
        })
        .collect()
}

/// Proof-of-coverage verification rewards: each verifier site earns
/// `reward_per_beacon` for every (satellite, step) it can attest (satellite
/// above its mask), paid from a network reward pool to the *satellite
/// owner* and a fixed fraction to the verifier's operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PocRewards {
    /// Credits earned by each satellite-owning party for proven coverage.
    pub provider_rewards: HashMap<PartyId, f64>,
    /// Credits earned by each verifier party.
    pub verifier_rewards: HashMap<PartyId, f64>,
    /// Number of beacons attested.
    pub beacons: usize,
}

/// Compute proof-of-coverage rewards over a visibility table.
///
/// `verifier_owner[site]` maps verifier ground stations to their operators.
pub fn poc_rewards(
    vt: &VisibilityTable,
    sat_indices: &[usize],
    sat_owner: &HashMap<usize, PartyId>,
    verifier_owner: &HashMap<usize, PartyId>,
    reward_per_beacon: f64,
    verifier_share: f64,
) -> PocRewards {
    assert!((0.0..=1.0).contains(&verifier_share), "share must be a fraction");
    let mut provider_rewards: HashMap<PartyId, f64> = HashMap::new();
    let mut verifier_rewards: HashMap<PartyId, f64> = HashMap::new();
    let mut beacons = 0usize;
    for &s in sat_indices {
        let owner = sat_owner.get(&s).expect("satellite has an owner");
        for (site, verifier) in verifier_owner {
            let proven = vt.bitset(s, *site).count_ones();
            if proven == 0 {
                continue;
            }
            beacons += proven;
            let total = reward_per_beacon * proven as f64;
            *provider_rewards.entry(owner.clone()).or_default() += total * (1.0 - verifier_share);
            *verifier_rewards.entry(verifier.clone()).or_default() += total * verifier_share;
        }
    }
    PocRewards { provider_rewards, verifier_rewards, beacons }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use leosim::visibility::SimConfig;
    use leosim::TimeGrid;
    use orbital::constellation::single_plane;
    use orbital::time::Epoch;

    fn epoch() -> Epoch {
        Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
    }

    fn table() -> VisibilityTable {
        let sats = single_plane(6, 550.0, 53.0, epoch());
        let sites = vec![fixtures::tokyo(), fixtures::taipei()];
        let grid = TimeGrid::new(epoch(), 86_400.0, 120.0);
        VisibilityTable::compute(&sats, &sites, &grid, &SimConfig::default())
    }

    fn owners() -> (HashMap<usize, PartyId>, HashMap<usize, PartyId>) {
        let mut sat_owner = HashMap::new();
        for s in 0..6 {
            sat_owner.insert(s, PartyId::new(if s < 3 { "alpha" } else { "beta" }));
        }
        let mut site_consumer = HashMap::new();
        site_consumer.insert(0usize, PartyId::new("gamma"));
        site_consumer.insert(1usize, PartyId::new("alpha"));
        (sat_owner, site_consumer)
    }

    #[test]
    fn pricing_models() {
        let fixed = PricingModel::Fixed { rate: 2.0 };
        assert_eq!(fixed.price(1), 2.0);
        assert_eq!(fixed.price(10), 2.0);
        let dynamic = PricingModel::Dynamic { base: 1.0, surge: 2.0 };
        assert_eq!(dynamic.price(0), 0.0);
        assert_eq!(dynamic.price(1), 3.0);
        assert_eq!(dynamic.price(2), 2.0);
        assert!(dynamic.price(100) < dynamic.price(2));
    }

    #[test]
    fn service_records_match_visibility() {
        let vt = table();
        let idx: Vec<usize> = (0..6).collect();
        let records = service_records(&vt, &idx);
        // Every record corresponds to actual visibility.
        for r in &records {
            assert!(vt.bitset(r.sat, r.site).get(r.step));
        }
        // Total records equal the union coverage of each site.
        for site in 0..2 {
            let expected = vt.coverage_union(&idx, site).count_ones();
            let got = records.iter().filter(|r| r.site == site).count();
            assert_eq!(got, expected, "site {site}");
        }
    }

    #[test]
    fn settlement_conserves_credits() {
        let vt = table();
        let idx: Vec<usize> = (0..6).collect();
        let records = service_records(&vt, &idx);
        let (sat_owner, site_consumer) = owners();
        let counts = visible_count_matrix(&vt, &idx);
        for pricing in
            [PricingModel::Fixed { rate: 1.5 }, PricingModel::Dynamic { base: 1.0, surge: 3.0 }]
        {
            let s = settle(&records, &sat_owner, &site_consumer, pricing, &counts);
            let net: f64 = s.balances.values().sum();
            assert!(net.abs() < 1e-9, "credits not conserved: {net}");
            assert!(s.volume >= 0.0);
        }
    }

    #[test]
    fn self_service_transfers_nothing() {
        let vt = table();
        // Alpha owns everything and consumes everything: no transfers.
        let sat_owner: HashMap<usize, PartyId> =
            (0..6).map(|s| (s, PartyId::new("alpha"))).collect();
        let site_consumer: HashMap<usize, PartyId> =
            (0..2).map(|s| (s, PartyId::new("alpha"))).collect();
        let idx: Vec<usize> = (0..6).collect();
        let records = service_records(&vt, &idx);
        let counts = visible_count_matrix(&vt, &idx);
        let s = settle(
            &records,
            &sat_owner,
            &site_consumer,
            PricingModel::Fixed { rate: 1.0 },
            &counts,
        );
        assert_eq!(s.volume, 0.0);
    }

    #[test]
    fn provider_earns_consumer_pays() {
        let vt = table();
        let idx: Vec<usize> = (0..6).collect();
        let records = service_records(&vt, &idx);
        let (sat_owner, site_consumer) = owners();
        let counts = visible_count_matrix(&vt, &idx);
        let s = settle(
            &records,
            &sat_owner,
            &site_consumer,
            PricingModel::Fixed { rate: 1.0 },
            &counts,
        );
        // Gamma only consumes (owns no satellites): non-positive balance.
        assert!(s.balance(&PartyId::new("gamma")) <= 0.0);
        // Beta only provides (consumes nothing): non-negative balance.
        assert!(s.balance(&PartyId::new("beta")) >= 0.0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn visible_count_matrix_consistent() {
        let vt = table();
        let idx: Vec<usize> = (0..6).collect();
        let counts = visible_count_matrix(&vt, &idx);
        for site in 0..2 {
            for step in 0..vt.grid.steps {
                let manual = idx.iter().filter(|&&s| vt.bitset(s, site).get(step)).count();
                assert_eq!(counts[site][step], manual);
            }
        }
    }

    #[test]
    fn poc_rewards_split() {
        let vt = table();
        let idx: Vec<usize> = (0..6).collect();
        let (sat_owner, _) = owners();
        let verifier_owner: HashMap<usize, PartyId> =
            [(0usize, PartyId::new("v1")), (1usize, PartyId::new("v2"))].into();
        let r = poc_rewards(&vt, &idx, &sat_owner, &verifier_owner, 0.1, 0.2);
        assert!(r.beacons > 0);
        let provider_total: f64 = r.provider_rewards.values().sum();
        let verifier_total: f64 = r.verifier_rewards.values().sum();
        let total = provider_total + verifier_total;
        assert!((total - 0.1 * r.beacons as f64).abs() < 1e-9);
        assert!((verifier_total / total - 0.2).abs() < 1e-9);
    }

    #[test]
    fn more_stake_more_rewards() {
        // A party owning more satellites earns more PoC rewards — the
        // paper's "participants with more satellites ... earn more money".
        let vt = table();
        let mut sat_owner = HashMap::new();
        for s in 0..6 {
            sat_owner.insert(s, PartyId::new(if s < 5 { "big" } else { "small" }));
        }
        let verifier_owner: HashMap<usize, PartyId> = [(0usize, PartyId::new("v"))].into();
        let idx: Vec<usize> = (0..6).collect();
        let r = poc_rewards(&vt, &idx, &sat_owner, &verifier_owner, 1.0, 0.0);
        let big = r.provider_rewards.get(&PartyId::new("big")).copied().unwrap_or(0.0);
        let small = r.provider_rewards.get(&PartyId::new("small")).copied().unwrap_or(0.0);
        assert!(big > small, "big {big} vs small {small}");
    }
}
