//! Ground-station downlink scheduling.
//!
//! The paper's lineage (Vasisht et al., HotNets '20; L2D2, SIGCOMM '21)
//! treats satellite-to-ground scheduling as a first-class problem: many
//! satellites accumulate data continuously, few ground stations exist, and
//! each station can track one satellite at a time. In MP-LEO the problem is
//! sharper still — the ground stations belong to *different parties* — so
//! the scheduler is also the arbiter of whose bits land first. This module
//! simulates backlog-driven downlink over a visibility table with pluggable
//! arbitration policies and reports drain volume and data age.

use leosim::visibility::VisibilityTable;
use serde::{Deserialize, Serialize};

/// Scheduling policy: which visible satellite does each station serve at a
/// step?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DownlinkPolicy {
    /// Serve the satellite with the largest backlog (throughput-greedy).
    MaxBacklog,
    /// Serve the satellite whose oldest bit is oldest (latency-greedy,
    /// L2D2-flavored).
    OldestData,
    /// Fixed priority by subset order (the naive baseline).
    FixedPriority,
}

/// Configuration of the downlink simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DownlinkConfig {
    /// Data generated per satellite per step, bits.
    pub arrival_bits_per_step: f64,
    /// Drain rate per served (satellite, station) contact-step, bits.
    pub drain_bits_per_step: f64,
    /// Arbitration policy.
    pub policy: DownlinkPolicy,
}

/// Result of the downlink simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DownlinkReport {
    /// Bits drained per satellite.
    pub drained_bits: Vec<f64>,
    /// Final backlog per satellite, bits.
    pub final_backlog_bits: Vec<f64>,
    /// Peak total backlog across the run, bits.
    pub peak_backlog_bits: f64,
    /// Mean age of drained data, steps (age = steps between generation and
    /// drain, FIFO within a satellite).
    pub mean_drain_age_steps: f64,
    /// Station busy fraction (served steps / station steps).
    pub station_utilization: f64,
}

/// Simulate downlink over the table's grid. Sites in `vt` are the ground
/// stations; `sat_indices` selects the satellites.
pub fn simulate_downlink(
    vt: &VisibilityTable,
    sat_indices: &[usize],
    config: &DownlinkConfig,
) -> DownlinkReport {
    let steps = vt.grid.steps;
    let n = sat_indices.len();
    let stations = vt.site_count();
    // FIFO backlog per satellite: queue of (generation_step, bits).
    let mut queues: Vec<std::collections::VecDeque<(usize, f64)>> =
        vec![std::collections::VecDeque::new(); n];
    let mut drained = vec![0.0f64; n];
    let mut peak = 0.0f64;
    let mut age_weighted = 0.0f64;
    let mut age_bits = 0.0f64;
    let mut served_station_steps = 0usize;

    for k in 0..steps {
        // Arrivals.
        for q in queues.iter_mut() {
            q.push_back((k, config.arrival_bits_per_step));
        }
        // Each station independently picks one visible satellite. A
        // satellite may be served by several stations at once (multiple
        // antennas on the ground segment; the satellite broadcasts).
        for station in 0..stations {
            let visible: Vec<usize> =
                (0..n).filter(|&i| vt.bitset(sat_indices[i], station).get(k)).collect();
            if visible.is_empty() {
                continue;
            }
            let backlog = |i: usize| -> f64 { queues[i].iter().map(|(_, b)| b).sum() };
            let pick = match config.policy {
                DownlinkPolicy::MaxBacklog => visible
                    .iter()
                    .cloned()
                    .max_by(|&a, &b| backlog(a).partial_cmp(&backlog(b)).unwrap())
                    .unwrap(),
                DownlinkPolicy::OldestData => visible
                    .iter()
                    .cloned()
                    .min_by_key(|&i| queues[i].front().map(|(g, _)| *g).unwrap_or(usize::MAX))
                    .unwrap(),
                DownlinkPolicy::FixedPriority => visible[0],
            };
            served_station_steps += 1;
            // Drain FIFO.
            let mut budget = config.drain_bits_per_step;
            while budget > 0.0 {
                let Some((gen, bits)) = queues[pick].front_mut() else { break };
                let take = bits.min(budget);
                *bits -= take;
                budget -= take;
                drained[pick] += take;
                age_weighted += take * (k - *gen) as f64;
                age_bits += take;
                if *bits <= 0.0 {
                    queues[pick].pop_front();
                }
            }
        }
        let total: f64 = queues.iter().flat_map(|q| q.iter().map(|(_, b)| b)).sum();
        peak = peak.max(total);
    }
    DownlinkReport {
        final_backlog_bits: queues.iter().map(|q| q.iter().map(|(_, b)| b).sum()).collect(),
        drained_bits: drained,
        peak_backlog_bits: peak,
        mean_drain_age_steps: if age_bits > 0.0 { age_weighted / age_bits } else { 0.0 },
        station_utilization: if stations * steps > 0 {
            served_station_steps as f64 / (stations * steps) as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leosim::visibility::SimConfig;
    use leosim::TimeGrid;
    use orbital::constellation::single_plane;
    use orbital::ground::GroundSite;
    use orbital::time::Epoch;

    fn table(n_sats: u32, n_gs: usize) -> VisibilityTable {
        let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
        let sats = single_plane(n_sats, 550.0, 53.0, epoch);
        let gs: Vec<GroundSite> = (0..n_gs)
            .map(|k| {
                GroundSite::from_degrees(
                    format!("GS{k}"),
                    25.0 + 10.0 * k as f64,
                    121.0 - 30.0 * k as f64,
                )
            })
            .collect();
        let grid = TimeGrid::new(epoch, 86_400.0, 60.0);
        VisibilityTable::compute(&sats, &gs, &grid, &SimConfig::default().with_mask_deg(10.0))
    }

    fn cfg(policy: DownlinkPolicy) -> DownlinkConfig {
        DownlinkConfig { arrival_bits_per_step: 1.0e6, drain_bits_per_step: 40.0e6, policy }
    }

    #[test]
    fn conservation_of_bits() {
        let vt = table(6, 2);
        let idx: Vec<usize> = (0..6).collect();
        let r = simulate_downlink(&vt, &idx, &cfg(DownlinkPolicy::MaxBacklog));
        let generated = 6.0 * vt.grid.steps as f64 * 1.0e6;
        let accounted: f64 =
            r.drained_bits.iter().sum::<f64>() + r.final_backlog_bits.iter().sum::<f64>();
        assert!((generated - accounted).abs() / generated < 1e-9, "{generated} vs {accounted}");
    }

    #[test]
    fn drains_happen_only_during_contacts() {
        // With zero ground stations nothing drains.
        let vt = table(4, 2);
        let idx: Vec<usize> = (0..4).collect();
        // Trick: a config with zero drain shows pure accumulation.
        let r = simulate_downlink(
            &vt,
            &idx,
            &DownlinkConfig {
                arrival_bits_per_step: 1.0,
                drain_bits_per_step: 0.0,
                policy: DownlinkPolicy::MaxBacklog,
            },
        );
        assert!(r.drained_bits.iter().all(|&d| d == 0.0));
        assert!((r.peak_backlog_bits - 4.0 * vt.grid.steps as f64).abs() < 1e-9);
    }

    #[test]
    fn oldest_data_policy_minimizes_age() {
        let vt = table(8, 2);
        let idx: Vec<usize> = (0..8).collect();
        let old = simulate_downlink(&vt, &idx, &cfg(DownlinkPolicy::OldestData));
        let fixed = simulate_downlink(&vt, &idx, &cfg(DownlinkPolicy::FixedPriority));
        assert!(
            old.mean_drain_age_steps <= fixed.mean_drain_age_steps + 1e-9,
            "oldest-first {} vs fixed {}",
            old.mean_drain_age_steps,
            fixed.mean_drain_age_steps
        );
    }

    #[test]
    fn fixed_priority_starves_late_satellites() {
        let vt = table(8, 1);
        let idx: Vec<usize> = (0..8).collect();
        let r = simulate_downlink(&vt, &idx, &cfg(DownlinkPolicy::FixedPriority));
        // The first satellites drain far more than the last under a single
        // contended station.
        let first = r.drained_bits[0];
        let last = r.drained_bits[7];
        assert!(first > 0.0);
        // Starvation shows as backlog imbalance or drain imbalance.
        let max_backlog = r.final_backlog_bits.iter().cloned().fold(0.0f64, f64::max);
        let min_backlog = r.final_backlog_bits.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            first > last || max_backlog > 2.0 * min_backlog.max(1.0),
            "no starvation signature: first {first} last {last}"
        );
    }

    #[test]
    fn utilization_bounded() {
        let vt = table(6, 2);
        let idx: Vec<usize> = (0..6).collect();
        let r = simulate_downlink(&vt, &idx, &cfg(DownlinkPolicy::MaxBacklog));
        assert!((0.0..=1.0).contains(&r.station_utilization));
        assert!(r.station_utilization > 0.0, "stations see satellites sometimes");
    }

    #[test]
    fn more_stations_drain_more() {
        let vt1 = table(8, 1);
        let vt3 = table(8, 3);
        let idx: Vec<usize> = (0..8).collect();
        let r1 = simulate_downlink(&vt1, &idx, &cfg(DownlinkPolicy::MaxBacklog));
        let r3 = simulate_downlink(&vt3, &idx, &cfg(DownlinkPolicy::MaxBacklog));
        assert!(
            r3.drained_bits.iter().sum::<f64>() >= r1.drained_bits.iter().sum::<f64>(),
            "adding stations cannot reduce drain"
        );
    }
}
