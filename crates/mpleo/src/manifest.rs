//! The constellation manifest: MP-LEO's interchange file.
//!
//! Parties need one canonical document that says who is in the
//! constellation, which satellites each contributed (with published
//! elements), where the verifier ground stations are, and what policies
//! (quorum, rewards) the network runs. This module defines that document,
//! its JSON serialization, and its validation rules — the file an operator
//! would commit to a public repository and every node would load at boot.

use crate::party::PartyKind;
use orbital::kepler::ClassicalElements;
use orbital::time::Epoch;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One party in the manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestParty {
    /// Party id (also its signing identity in `dcp`).
    pub id: String,
    /// Country or company.
    pub kind: PartyKind,
}

/// One satellite entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestSatellite {
    /// Stable satellite id.
    pub sat_id: u32,
    /// Display name.
    pub name: String,
    /// Owning party id.
    pub owner: String,
    /// Published orbital elements at the manifest epoch.
    pub elements: ClassicalElements,
}

/// One verifier ground station.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestGroundStation {
    /// Operating party id.
    pub party: String,
    /// Station name.
    pub name: String,
    /// Latitude, degrees.
    pub lat_deg: f64,
    /// Longitude, degrees.
    pub lon_deg: f64,
}

/// Network policy constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ManifestPolicies {
    /// Attestation quorum for proof-of-coverage confirmation.
    pub poc_quorum: usize,
    /// Approval quorum for sensitive satellite commands.
    pub control_quorum: usize,
    /// Elevation mask for valid coverage, degrees.
    pub min_elevation_deg: f64,
}

/// The manifest document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstellationManifest {
    /// Constellation name.
    pub name: String,
    /// Manifest epoch: `(year, month, day, hour, minute, second)` UTC.
    pub epoch_utc: (i32, u32, u32, u32, u32, f64),
    /// Participating parties.
    pub parties: Vec<ManifestParty>,
    /// Satellites with published elements.
    pub satellites: Vec<ManifestSatellite>,
    /// Verifier ground stations.
    pub ground_stations: Vec<ManifestGroundStation>,
    /// Policy constants.
    pub policies: ManifestPolicies,
}

/// Validation failures (all of them, not just the first).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestErrors(pub Vec<String>);

impl std::fmt::Display for ManifestErrors {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid manifest: {}", self.0.join("; "))
    }
}

impl std::error::Error for ManifestErrors {}

impl ConstellationManifest {
    /// The manifest epoch as an [`Epoch`].
    pub fn epoch(&self) -> Epoch {
        let (y, mo, d, h, mi, s) = self.epoch_utc;
        Epoch::from_ymdhms(y, mo, d, h, mi, s)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serializes")
    }

    /// Parse from JSON and validate.
    pub fn from_json(text: &str) -> Result<ConstellationManifest, Box<dyn std::error::Error>> {
        let m: ConstellationManifest = serde_json::from_str(text)?;
        m.validate()?;
        Ok(m)
    }

    /// Structural validation: unique ids, resolvable owners, physical
    /// orbits, achievable quorums.
    pub fn validate(&self) -> Result<(), ManifestErrors> {
        let mut errors = Vec::new();
        let party_ids: BTreeSet<&str> = self.parties.iter().map(|p| p.id.as_str()).collect();
        if party_ids.len() != self.parties.len() {
            errors.push("duplicate party ids".into());
        }
        let mut sat_ids = BTreeSet::new();
        for s in &self.satellites {
            if !sat_ids.insert(s.sat_id) {
                errors.push(format!("duplicate satellite id {}", s.sat_id));
            }
            if !party_ids.contains(s.owner.as_str()) {
                errors.push(format!("satellite {} owned by unknown party '{}'", s.sat_id, s.owner));
            }
            if s.elements.perigee_altitude_km() < 120.0 {
                errors.push(format!(
                    "satellite {} perigee {:.0} km is not an orbit",
                    s.sat_id,
                    s.elements.perigee_altitude_km()
                ));
            }
            if !(0.0..1.0).contains(&s.elements.eccentricity) {
                errors.push(format!("satellite {} eccentricity out of range", s.sat_id));
            }
        }
        for g in &self.ground_stations {
            if !party_ids.contains(g.party.as_str()) {
                errors.push(format!("ground station '{}' has unknown party '{}'", g.name, g.party));
            }
            if g.lat_deg.abs() > 90.0 || g.lon_deg.abs() > 180.0 {
                errors.push(format!("ground station '{}' has invalid coordinates", g.name));
            }
        }
        if self.policies.poc_quorum < 1 || self.policies.poc_quorum > self.parties.len() {
            errors.push("poc_quorum unachievable".into());
        }
        if self.policies.control_quorum < 2 || self.policies.control_quorum > self.parties.len() {
            errors.push("control_quorum must be 2..=parties".into());
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(ManifestErrors(errors))
        }
    }

    /// Satellite indices owned by a party.
    pub fn satellites_of(&self, party: &str) -> Vec<&ManifestSatellite> {
        self.satellites.iter().filter(|s| s.owner == party).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbital::math::deg_to_rad;

    fn manifest() -> ConstellationManifest {
        let mk = |sat_id: u32, owner: &str, phase: f64| ManifestSatellite {
            sat_id,
            name: format!("SAT-{sat_id}"),
            owner: owner.into(),
            elements: ClassicalElements::circular(550.0, deg_to_rad(53.0), 0.0, deg_to_rad(phase)),
        };
        ConstellationManifest {
            name: "demo".into(),
            epoch_utc: (2024, 6, 1, 0, 0, 0.0),
            parties: vec![
                ManifestParty { id: "taiwan".into(), kind: PartyKind::Country },
                ManifestParty { id: "acme-isp".into(), kind: PartyKind::Company },
                ManifestParty { id: "korea".into(), kind: PartyKind::Country },
            ],
            satellites: vec![mk(1, "taiwan", 0.0), mk(2, "acme-isp", 120.0), mk(3, "korea", 240.0)],
            ground_stations: vec![ManifestGroundStation {
                party: "taiwan".into(),
                name: "gs-taipei".into(),
                lat_deg: 25.03,
                lon_deg: 121.56,
            }],
            policies: ManifestPolicies {
                poc_quorum: 2,
                control_quorum: 2,
                min_elevation_deg: 25.0,
            },
        }
    }

    #[test]
    fn json_roundtrip() {
        let m = manifest();
        let text = m.to_json();
        let back = ConstellationManifest::from_json(&text).expect("roundtrip");
        assert_eq!(back, m);
        assert!(text.contains("gs-taipei"));
    }

    #[test]
    fn epoch_resolves() {
        let e = manifest().epoch();
        assert_eq!(e.ymd(), (2024, 6, 1));
    }

    #[test]
    fn validation_catches_everything_at_once() {
        let mut m = manifest();
        m.satellites[0].owner = "ghost".into();
        m.satellites.push(m.satellites[1].clone()); // duplicate sat id
        m.ground_stations[0].lat_deg = 200.0;
        m.policies.control_quorum = 1;
        let errs = m.validate().unwrap_err();
        assert!(errs.0.len() >= 4, "{errs}");
        let msg = errs.to_string();
        assert!(msg.contains("ghost"));
        assert!(msg.contains("duplicate satellite"));
        assert!(msg.contains("control_quorum"));
    }

    #[test]
    fn suborbital_elements_rejected() {
        let mut m = manifest();
        m.satellites[0].elements.semi_major_axis_km = orbital::EARTH_RADIUS_KM + 50.0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn from_json_validates() {
        let mut m = manifest();
        m.policies.poc_quorum = 99;
        let text = m.to_json();
        assert!(ConstellationManifest::from_json(&text).is_err());
    }

    #[test]
    fn ownership_query() {
        let m = manifest();
        assert_eq!(m.satellites_of("taiwan").len(), 1);
        assert_eq!(m.satellites_of("nobody").len(), 0);
    }
}
