//! Shared ground-site fixtures for unit tests.
//!
//! Several modules' tests stand a handful of the paper's 21 metro sites
//! in for the full city set to keep unit tests fast. The coordinates
//! live here once so every module draws the same sites; the full set is
//! exercised by the figure binaries and integration tests.

use orbital::ground::GroundSite;

pub(crate) fn tokyo() -> GroundSite {
    GroundSite::from_degrees("Tokyo", 35.69, 139.69)
}

pub(crate) fn taipei() -> GroundSite {
    GroundSite::from_degrees("Taipei", 25.03, 121.56)
}

pub(crate) fn sao_paulo() -> GroundSite {
    GroundSite::from_degrees("SaoPaulo", -23.55, -46.63)
}

pub(crate) fn lagos() -> GroundSite {
    GroundSite::from_degrees("Lagos", 6.52, 3.38)
}

pub(crate) fn delhi() -> GroundSite {
    GroundSite::from_degrees("Delhi", 28.61, 77.21)
}

pub(crate) fn new_york() -> GroundSite {
    GroundSite::from_degrees("NewYork", 40.71, -74.01)
}
