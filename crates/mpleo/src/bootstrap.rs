//! Bootstrapping a decentralized constellation (the paper's §4 lead open
//! question).
//!
//! "Early participants contribute a small number of satellites, which do
//! not provide continuous coverage and, hence, find few customers. Such
//! questions have been tackled by terrestrial decentralized networks by
//! issuing tokens to early adopters with future financial value."
//!
//! This module simulates that growth process: parties join in rounds, each
//! contributing satellites placed by the gap-filling rule; every round the
//! network mints a fixed token emission split by *coverage contribution*
//! (the marginal population-weighted coverage a party's satellites provide)
//! with an early-adopter multiplier that decays over rounds — the
//! Helium-style schedule the paper points to. The output is the token
//! ledger and the coverage trajectory, letting incentive designers ask "did
//! joining early pay?".

use crate::placement::{greedy_select, weighted_coverage_s};
use leosim::visibility::VisibilityTable;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Emission schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmissionSchedule {
    /// Tokens minted per round.
    pub tokens_per_round: f64,
    /// Multiplier applied in round 0, decaying geometrically to 1.
    pub early_multiplier: f64,
    /// Geometric decay of the multiplier per round (0..1).
    pub decay: f64,
}

impl Default for EmissionSchedule {
    fn default() -> Self {
        EmissionSchedule { tokens_per_round: 1000.0, early_multiplier: 3.0, decay: 0.5 }
    }
}

impl EmissionSchedule {
    /// The bonus multiplier in a given round (>= 1).
    pub fn multiplier(&self, round: usize) -> f64 {
        1.0 + (self.early_multiplier - 1.0) * self.decay.powi(round as i32)
    }
}

/// One round of the growth simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrowthRound {
    /// Round index (0-based).
    pub round: usize,
    /// Party that joined this round.
    pub party: String,
    /// Pool indices of the satellites the party contributed.
    pub satellites: Vec<usize>,
    /// Population-weighted coverage seconds after this round.
    pub coverage_s: f64,
    /// Tokens minted to each party this round.
    pub minted: BTreeMap<String, f64>,
}

/// Result of a full bootstrap simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BootstrapOutcome {
    /// Per-round records.
    pub rounds: Vec<GrowthRound>,
    /// Final token balances.
    pub balances: BTreeMap<String, f64>,
    /// Final constellation (pool indices).
    pub constellation: Vec<usize>,
}

/// Simulate `parties.len()` rounds of growth over a candidate pool.
///
/// Each round, the next party contributes `sats_per_party` satellites
/// chosen by [`greedy_select`] from the unused pool (the coverage-optimal,
/// incentive-compatible placement of §3.3); the round's emission is split
/// among *all* participants in proportion to the marginal coverage their
/// satellites contribute (evaluated against the others'), scaled by the
/// early-adopter multiplier of the round each party *joined*.
pub fn simulate_bootstrap(
    vt_pool: &VisibilityTable,
    weights: &[f64],
    parties: &[&str],
    sats_per_party: usize,
    schedule: &EmissionSchedule,
) -> BootstrapOutcome {
    let mut constellation: Vec<usize> = Vec::new();
    let mut ownership: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut join_round: BTreeMap<String, usize> = BTreeMap::new();
    let mut balances: BTreeMap<String, f64> = BTreeMap::new();
    let mut used = vec![false; vt_pool.sat_count()];
    let mut rounds = Vec::new();

    for (round, &party) in parties.iter().enumerate() {
        // The joining party places its satellites to fill current gaps.
        let candidates: Vec<usize> = (0..vt_pool.sat_count()).filter(|&i| !used[i]).collect();
        let chosen = greedy_select(vt_pool, &constellation, &candidates, sats_per_party, weights);
        for &c in &chosen {
            used[c] = true;
        }
        constellation.extend(&chosen);
        ownership.insert(party.to_string(), chosen.clone());
        join_round.insert(party.to_string(), round);

        // Emission split by marginal coverage contribution.
        let total_cov = weighted_coverage_s(vt_pool, &constellation, weights);
        let mut contributions: BTreeMap<String, f64> = BTreeMap::new();
        for (p, sats) in &ownership {
            let without: Vec<usize> =
                constellation.iter().cloned().filter(|i| !sats.contains(i)).collect();
            let marginal = total_cov - weighted_coverage_s(vt_pool, &without, weights);
            contributions.insert(p.clone(), marginal.max(0.0));
        }
        // Weight contributions by each party's join-round multiplier.
        let weighted: BTreeMap<String, f64> = contributions
            .iter()
            .map(|(p, c)| (p.clone(), c * schedule.multiplier(join_round[p])))
            .collect();
        let denom: f64 = weighted.values().sum();
        let mut minted = BTreeMap::new();
        if denom > 0.0 {
            for (p, w) in &weighted {
                let share = schedule.tokens_per_round * w / denom;
                *balances.entry(p.clone()).or_default() += share;
                minted.insert(p.clone(), share);
            }
        }
        rounds.push(GrowthRound {
            round,
            party: party.to_string(),
            satellites: chosen,
            coverage_s: total_cov,
            minted,
        });
    }
    BootstrapOutcome { rounds, balances, constellation }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use leosim::visibility::SimConfig;
    use leosim::TimeGrid;
    use orbital::constellation::{walker_delta, ShellSpec};
    use orbital::time::Epoch;

    fn pool() -> (VisibilityTable, Vec<f64>) {
        let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
        let spec = ShellSpec { planes: 8, sats_per_plane: 6, ..ShellSpec::starlink_like() };
        let sats = walker_delta(&spec, epoch);
        let sites = vec![fixtures::tokyo(), fixtures::sao_paulo(), fixtures::lagos()];
        let weights = vec![0.5, 0.3, 0.2];
        let grid = TimeGrid::new(epoch, 86_400.0, 120.0);
        (VisibilityTable::compute(&sats, &sites, &grid, &SimConfig::default()), weights)
    }

    #[test]
    fn coverage_grows_each_round() {
        let (vt, w) = pool();
        let out =
            simulate_bootstrap(&vt, &w, &["p0", "p1", "p2", "p3"], 4, &EmissionSchedule::default());
        assert_eq!(out.rounds.len(), 4);
        for pair in out.rounds.windows(2) {
            assert!(pair[1].coverage_s >= pair[0].coverage_s, "coverage must not shrink");
        }
        assert_eq!(out.constellation.len(), 16);
    }

    #[test]
    fn emissions_conserved_per_round() {
        let (vt, w) = pool();
        let sched = EmissionSchedule::default();
        let out = simulate_bootstrap(&vt, &w, &["p0", "p1", "p2"], 3, &sched);
        for r in &out.rounds {
            let total: f64 = r.minted.values().sum();
            assert!((total - sched.tokens_per_round).abs() < 1e-6, "round {}: {total}", r.round);
        }
        let grand: f64 = out.balances.values().sum();
        assert!((grand - 3.0 * sched.tokens_per_round).abs() < 1e-6);
    }

    #[test]
    fn early_adopters_end_richer_under_equal_contribution() {
        let (vt, w) = pool();
        let out =
            simulate_bootstrap(&vt, &w, &["early", "mid", "late"], 4, &EmissionSchedule::default());
        let b = &out.balances;
        assert!(
            b["early"] > b["mid"] && b["mid"] > b["late"],
            "early-adopter ordering violated: {b:?}"
        );
    }

    #[test]
    fn no_bonus_flattens_advantage() {
        let (vt, w) = pool();
        let flat = EmissionSchedule { early_multiplier: 1.0, ..Default::default() };
        let out = simulate_bootstrap(&vt, &w, &["early", "late"], 4, &flat);
        let bonus =
            simulate_bootstrap(&vt, &w, &["early", "late"], 4, &EmissionSchedule::default());
        let adv_flat = out.balances["early"] / out.balances["late"].max(1e-9);
        let adv_bonus = bonus.balances["early"] / bonus.balances["late"].max(1e-9);
        assert!(adv_bonus > adv_flat, "bonus {adv_bonus} vs flat {adv_flat}");
    }

    #[test]
    fn multiplier_decays_to_one() {
        let s = EmissionSchedule::default();
        assert!((s.multiplier(0) - 3.0).abs() < 1e-12);
        assert!(s.multiplier(1) < s.multiplier(0));
        assert!((s.multiplier(30) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn satellites_never_reused() {
        let (vt, w) = pool();
        let out = simulate_bootstrap(
            &vt,
            &w,
            &["a", "b", "c", "d", "e"],
            3,
            &EmissionSchedule::default(),
        );
        let mut all: Vec<usize> = out.constellation.clone();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), out.constellation.len(), "duplicate satellite ownership");
    }
}
