//! Multi-party satellite control: m-of-n threshold command approval.
//!
//! The paper's §4 "Multi-party control" open question: space-based trusted
//! execution environments "can potentially be utilized to provide
//! cryptographic guarantees on what runs on the satellite and how they are
//! controlled (e.g., by consensus from multiple parties)". This module is
//! the control-plane state machine such a TEE would enforce: sensitive
//! commands (deorbit, safe-mode, beam shutdown over a region) execute only
//! after a quorum of parties approves; routine commands need only the
//! owner. The machine is deterministic and replayable, so every party can
//! audit the command history.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Commands a party can issue to a satellite.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Command {
    /// Routine station-keeping / telemetry adjustments (owner-only).
    Routine {
        /// Opaque description of the adjustment.
        description: String,
    },
    /// Enter safe mode (quorum: it silences the satellite for everyone).
    SafeMode,
    /// Stop serving a geographic region (quorum: this is exactly the
    /// "operator shuts down connectivity over a region" abuse the paper is
    /// designed to prevent).
    RegionShutdown {
        /// Region name being denied service.
        region: String,
    },
    /// Deorbit the satellite (quorum; irreversible).
    Deorbit,
}

impl Command {
    /// Whether this command requires a multi-party quorum.
    pub fn requires_quorum(&self) -> bool {
        !matches!(self, Command::Routine { .. })
    }
}

/// Lifecycle of a proposed command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProposalState {
    /// Collecting approvals.
    Pending,
    /// Approved by quorum and executed.
    Executed,
    /// Rejected by enough parties to make quorum impossible.
    Rejected,
}

/// A command proposal with its votes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Proposal {
    /// Proposal id (caller-assigned, unique).
    pub id: u64,
    /// Target satellite.
    pub sat_id: u32,
    /// The proposing party.
    pub proposer: String,
    /// The command.
    pub command: Command,
    /// Approvals (party -> true) and rejections (party -> false).
    pub votes: BTreeMap<String, bool>,
    /// Current state.
    pub state: ProposalState,
}

/// Errors from the control state machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlError {
    /// Proposal id already used.
    DuplicateProposal(u64),
    /// Unknown proposal id.
    UnknownProposal(u64),
    /// The voting party is not a member of the control group.
    UnknownParty(String),
    /// The proposal is no longer pending.
    Closed(u64),
    /// Only the satellite owner may issue routine commands.
    NotOwner {
        /// The party that tried.
        party: String,
        /// The actual owner.
        owner: String,
    },
}

/// The control group for one constellation: member parties, satellite
/// ownership, and the quorum threshold enforced on sensitive commands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlGroup {
    members: BTreeSet<String>,
    /// Satellite id -> owning party.
    owners: BTreeMap<u32, String>,
    /// Approvals required for quorum commands (m of n).
    pub quorum: usize,
    proposals: BTreeMap<u64, Proposal>,
    /// Executed commands, in execution order (the auditable log).
    pub executed: Vec<u64>,
}

impl ControlGroup {
    /// Create a group. `quorum` must be achievable (`<= members`) and
    /// non-trivial (`>= 2`) so no single party controls shared satellites.
    pub fn new(members: impl IntoIterator<Item = String>, quorum: usize) -> Self {
        let members: BTreeSet<String> = members.into_iter().collect();
        assert!(quorum >= 2, "quorum below 2 defeats multi-party control");
        assert!(quorum <= members.len(), "quorum unachievable");
        ControlGroup {
            members,
            owners: BTreeMap::new(),
            quorum,
            proposals: BTreeMap::new(),
            executed: Vec::new(),
        }
    }

    /// Register a satellite's owner.
    pub fn register_satellite(&mut self, sat_id: u32, owner: impl Into<String>) {
        let owner = owner.into();
        assert!(self.members.contains(&owner), "owner must be a member");
        self.owners.insert(sat_id, owner);
    }

    /// Propose a command. Routine commands from the owner execute
    /// immediately; quorum commands enter the pending state with the
    /// proposer's implicit approval.
    pub fn propose(
        &mut self,
        id: u64,
        sat_id: u32,
        proposer: &str,
        command: Command,
    ) -> Result<ProposalState, ControlError> {
        if self.proposals.contains_key(&id) {
            return Err(ControlError::DuplicateProposal(id));
        }
        if !self.members.contains(proposer) {
            return Err(ControlError::UnknownParty(proposer.to_string()));
        }
        let mut proposal = Proposal {
            id,
            sat_id,
            proposer: proposer.to_string(),
            command,
            votes: BTreeMap::new(),
            state: ProposalState::Pending,
        };
        if !proposal.command.requires_quorum() {
            let owner = self.owners.get(&sat_id).cloned().unwrap_or_default();
            if owner != proposer {
                return Err(ControlError::NotOwner { party: proposer.to_string(), owner });
            }
            proposal.state = ProposalState::Executed;
            self.executed.push(id);
            self.proposals.insert(id, proposal);
            return Ok(ProposalState::Executed);
        }
        proposal.votes.insert(proposer.to_string(), true);
        let state = self.evaluate(&mut proposal);
        self.proposals.insert(id, proposal);
        Ok(state)
    }

    /// Cast a vote on a pending proposal. Idempotent per party (first vote
    /// wins). Returns the proposal's state after the vote.
    pub fn vote(
        &mut self,
        id: u64,
        party: &str,
        approve: bool,
    ) -> Result<ProposalState, ControlError> {
        if !self.members.contains(party) {
            return Err(ControlError::UnknownParty(party.to_string()));
        }
        let members = self.members.len();
        let quorum = self.quorum;
        let executed = &mut self.executed;
        let proposal = self.proposals.get_mut(&id).ok_or(ControlError::UnknownProposal(id))?;
        if proposal.state != ProposalState::Pending {
            return Err(ControlError::Closed(id));
        }
        proposal.votes.entry(party.to_string()).or_insert(approve);
        let approvals = proposal.votes.values().filter(|&&v| v).count();
        let rejections = proposal.votes.values().filter(|&&v| !v).count();
        if approvals >= quorum {
            proposal.state = ProposalState::Executed;
            executed.push(id);
        } else if members - rejections < quorum {
            proposal.state = ProposalState::Rejected;
        }
        Ok(proposal.state)
    }

    fn evaluate(&mut self, proposal: &mut Proposal) -> ProposalState {
        let approvals = proposal.votes.values().filter(|&&v| v).count();
        if approvals >= self.quorum {
            proposal.state = ProposalState::Executed;
            self.executed.push(proposal.id);
        }
        proposal.state
    }

    /// Look up a proposal.
    pub fn proposal(&self, id: u64) -> Option<&Proposal> {
        self.proposals.get(&id)
    }

    /// Number of member parties.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Digest of the executed-command log (for cross-replica comparison).
    pub fn log_digest(&self) -> u64 {
        // FNV-1a over the executed ids: cheap and deterministic.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for id in &self.executed {
            for b in id.to_be_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group() -> ControlGroup {
        let mut g = ControlGroup::new(["a", "b", "c", "d", "e"].map(String::from), 3);
        g.register_satellite(1, "a");
        g.register_satellite(2, "b");
        g
    }

    #[test]
    fn routine_owner_executes_immediately() {
        let mut g = group();
        let st =
            g.propose(1, 1, "a", Command::Routine { description: "trim attitude".into() }).unwrap();
        assert_eq!(st, ProposalState::Executed);
        assert_eq!(g.executed, vec![1]);
    }

    #[test]
    fn routine_non_owner_rejected() {
        let mut g = group();
        let err =
            g.propose(1, 1, "b", Command::Routine { description: "hijack".into() }).unwrap_err();
        assert_eq!(err, ControlError::NotOwner { party: "b".into(), owner: "a".into() });
        assert!(g.executed.is_empty());
    }

    #[test]
    fn quorum_command_needs_m_approvals() {
        let mut g = group();
        // Even the owner cannot unilaterally shut down a region — the
        // paper's core trust property.
        let st = g.propose(1, 1, "a", Command::RegionShutdown { region: "Taiwan".into() }).unwrap();
        assert_eq!(st, ProposalState::Pending);
        assert_eq!(g.vote(1, "b", true).unwrap(), ProposalState::Pending);
        assert_eq!(g.vote(1, "c", true).unwrap(), ProposalState::Executed);
        assert_eq!(g.executed, vec![1]);
    }

    #[test]
    fn rejection_closes_when_quorum_impossible() {
        let mut g = group();
        g.propose(1, 1, "a", Command::Deorbit).unwrap();
        // 3 of 5 must approve; after 3 rejections only 2 possible approvers
        // remain (incl. proposer's yes) -> impossible.
        g.vote(1, "b", false).unwrap();
        g.vote(1, "c", false).unwrap();
        let st = g.vote(1, "d", false).unwrap();
        assert_eq!(st, ProposalState::Rejected);
        // Further votes are refused.
        assert_eq!(g.vote(1, "e", true).unwrap_err(), ControlError::Closed(1));
        assert!(g.executed.is_empty());
    }

    #[test]
    fn duplicate_votes_dont_stack() {
        let mut g = group();
        g.propose(1, 1, "a", Command::SafeMode).unwrap();
        g.vote(1, "b", true).unwrap();
        // b votes again (and even flips): first vote stands, still pending.
        let st = g.vote(1, "b", false).unwrap();
        assert_eq!(st, ProposalState::Pending);
        assert!(g.proposal(1).unwrap().votes["b"]);
    }

    #[test]
    fn duplicate_proposal_id_rejected() {
        let mut g = group();
        g.propose(1, 1, "a", Command::SafeMode).unwrap();
        assert_eq!(
            g.propose(1, 2, "b", Command::SafeMode).unwrap_err(),
            ControlError::DuplicateProposal(1)
        );
    }

    #[test]
    fn outsiders_cannot_propose_or_vote() {
        let mut g = group();
        assert_eq!(
            g.propose(1, 1, "mallory", Command::Deorbit).unwrap_err(),
            ControlError::UnknownParty("mallory".into())
        );
        g.propose(2, 1, "a", Command::Deorbit).unwrap();
        assert_eq!(
            g.vote(2, "mallory", true).unwrap_err(),
            ControlError::UnknownParty("mallory".into())
        );
    }

    #[test]
    fn replicas_replaying_same_events_agree() {
        let events = |g: &mut ControlGroup| {
            g.propose(1, 1, "a", Command::SafeMode).unwrap();
            g.vote(1, "b", true).unwrap();
            g.vote(1, "c", true).unwrap();
            g.propose(2, 2, "b", Command::Routine { description: "x".into() }).unwrap();
        };
        let mut g1 = group();
        let mut g2 = group();
        events(&mut g1);
        events(&mut g2);
        assert_eq!(g1.log_digest(), g2.log_digest());
        assert_eq!(g1.executed, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "quorum below 2")]
    fn single_party_quorum_forbidden() {
        ControlGroup::new(["a", "b"].map(String::from), 1);
    }
}
