//! # mpleo — multi-party LEO constellations
//!
//! The paper's core contribution: a model of *shared* constellations where
//! multiple parties each contribute a small number of satellites, trade
//! spare capacity, and retain robustness when participants withdraw.
//!
//! Modules:
//!
//! * [`party`] — parties, stakes, and stake-ratio satellite allocation
//!   (the 1:1:…:1 through 10:1:…:1 splits of Fig. 6).
//! * [`registry`] — the multi-party constellation registry: who owns which
//!   satellite, withdrawal bookkeeping.
//! * [`placement`] — coverage-gap-filling placement: marginal
//!   population-weighted coverage of a candidate satellite, the Fig. 4b
//!   phase sweep, the Fig. 4c inclination/altitude/phase category study, and
//!   a greedy multi-satellite planner with an exhaustive-search comparator.
//! * [`robustness`] — withdrawal experiments: random half-constellation
//!   withdrawal (Fig. 5) and largest-party withdrawal under skewed stakes
//!   (Fig. 6).
//! * [`incentives`] — proof-of-coverage accounting, pricing models, and
//!   epoch settlement between consumer and provider parties.
//! * [`capacity`] — per-satellite capacity, terminal-to-satellite
//!   assignment, and spare-capacity (utilization) accounting.
//!
//! ## Quick example
//!
//! ```
//! use mpleo::party::{skewed_ratios, PartyKind};
//! use mpleo::registry::ConstellationRegistry;
//!
//! // The paper's Fig. 6 stake pattern: 10:1:...:1 across 11 parties.
//! let reg = ConstellationRegistry::from_ratios(
//!     1000,
//!     &skewed_ratios(10.0, 10),
//!     PartyKind::Country,
//!     None,
//! );
//! reg.validate().unwrap();
//! let largest = reg.largest_party();
//! assert_eq!(largest.stake(), 500);
//! assert_eq!(reg.remaining_after_withdrawal(&largest.id.clone()).len(), 500);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bootstrap;
pub mod capacity;
pub mod control;
pub mod downlink;
pub mod economics;
pub mod failures;
#[cfg(test)]
pub(crate) mod fixtures;
pub mod handover;
pub mod incentives;
pub mod manifest;
pub mod party;
pub mod placement;
pub mod registry;
pub mod robustness;
pub mod sla;
pub mod spectrum;

pub use party::{allocate_by_ratio, Party, PartyId, PartyKind};
pub use registry::ConstellationRegistry;
