//! Satellite handover analysis for terminals.
//!
//! LEO terminals switch satellites every few minutes; each switch is a
//! service blip and a scheduling event, so handover *rate* and *gap
//! exposure* are the QoS quantities behind the paper's §4 market-design
//! question ("What kinds of quality-of-service can they provide?"). This
//! module replays a terminal's serving-satellite sequence under a
//! configurable selection policy and reports the handover statistics.

use leosim::visibility::VisibilityTable;
use serde::{Deserialize, Serialize};

/// How the terminal picks among visible satellites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HandoverPolicy {
    /// Stay on the current satellite until it sets, then pick the
    /// lowest-index visible one (minimizes handovers).
    StickyMaxDwell,
    /// Always use the lowest-index visible satellite (a proxy for
    /// "best satellite now" policies that churn more).
    AlwaysBest,
}

/// The serving timeline of one terminal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HandoverTrace {
    /// Serving satellite per step (`None` = outage).
    pub serving: Vec<Option<usize>>,
    /// Number of satellite-to-satellite handovers (outage transitions not
    /// counted).
    pub handovers: usize,
    /// Number of outage periods entered.
    pub outages: usize,
    /// Steps spent connected.
    pub connected_steps: usize,
}

impl HandoverTrace {
    /// Handovers per connected hour.
    pub fn handover_rate_per_hour(&self, step_s: f64) -> f64 {
        let hours = self.connected_steps as f64 * step_s / 3600.0;
        if hours == 0.0 {
            0.0
        } else {
            self.handovers as f64 / hours
        }
    }

    /// Mean dwell time on a satellite between switches, seconds.
    pub fn mean_dwell_s(&self, step_s: f64) -> f64 {
        // Dwell segments = connected runs split at handovers.
        let segments = self.handovers + self.outages.max(1);
        self.connected_steps as f64 * step_s / segments as f64
    }
}

/// Replay the serving sequence of `site` under `policy` over the subset
/// `sat_indices`.
pub fn simulate_handover(
    vt: &VisibilityTable,
    site: usize,
    sat_indices: &[usize],
    policy: HandoverPolicy,
) -> HandoverTrace {
    let steps = vt.grid.steps;
    let mut serving: Vec<Option<usize>> = Vec::with_capacity(steps);
    let mut current: Option<usize> = None;
    let mut handovers = 0;
    let mut outages = 0;
    let mut connected_steps = 0;
    for k in 0..steps {
        let visible = |s: usize| vt.bitset(s, site).get(k);
        let next = match policy {
            HandoverPolicy::StickyMaxDwell => match current {
                Some(c) if visible(c) => Some(c),
                _ => sat_indices.iter().cloned().find(|&s| visible(s)),
            },
            HandoverPolicy::AlwaysBest => sat_indices.iter().cloned().find(|&s| visible(s)),
        };
        match (current, next) {
            (Some(a), Some(b)) if a != b => handovers += 1,
            (Some(_), None) => outages += 1,
            _ => {}
        }
        if next.is_some() {
            connected_steps += 1;
        }
        serving.push(next);
        current = next;
    }
    HandoverTrace { serving, handovers, outages, connected_steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use leosim::visibility::SimConfig;
    use leosim::TimeGrid;
    use orbital::constellation::{walker_delta, ShellSpec};
    use orbital::time::Epoch;

    fn table() -> VisibilityTable {
        let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
        let spec = ShellSpec { planes: 12, sats_per_plane: 8, ..ShellSpec::starlink_like() };
        let sats = walker_delta(&spec, epoch);
        let sites = [fixtures::taipei()];
        let grid = TimeGrid::new(epoch, 86_400.0, 60.0);
        VisibilityTable::compute(&sats, &sites, &grid, &SimConfig::default())
    }

    #[test]
    fn serving_respects_visibility() {
        let vt = table();
        let idx: Vec<usize> = (0..vt.sat_count()).collect();
        let trace = simulate_handover(&vt, 0, &idx, HandoverPolicy::StickyMaxDwell);
        for (k, s) in trace.serving.iter().enumerate() {
            if let Some(s) = s {
                assert!(vt.bitset(*s, 0).get(k), "serving an invisible satellite at {k}");
            }
        }
        assert_eq!(trace.connected_steps, trace.serving.iter().filter(|s| s.is_some()).count());
    }

    #[test]
    fn sticky_never_switches_while_visible() {
        let vt = table();
        let idx: Vec<usize> = (0..vt.sat_count()).collect();
        let trace = simulate_handover(&vt, 0, &idx, HandoverPolicy::StickyMaxDwell);
        for k in 1..trace.serving.len() {
            if let (Some(a), Some(b)) = (trace.serving[k - 1], trace.serving[k]) {
                if a != b {
                    assert!(
                        !vt.bitset(a, 0).get(k),
                        "sticky policy switched away from a visible satellite at step {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn sticky_hands_over_no_more_than_always_best() {
        let vt = table();
        let idx: Vec<usize> = (0..vt.sat_count()).collect();
        let sticky = simulate_handover(&vt, 0, &idx, HandoverPolicy::StickyMaxDwell);
        let churny = simulate_handover(&vt, 0, &idx, HandoverPolicy::AlwaysBest);
        assert!(
            sticky.handovers <= churny.handovers,
            "{} vs {}",
            sticky.handovers,
            churny.handovers
        );
        // Same connectivity either way — policy only affects who serves.
        assert_eq!(sticky.connected_steps, churny.connected_steps);
    }

    #[test]
    fn dwell_times_minutes_scale() {
        let vt = table();
        let idx: Vec<usize> = (0..vt.sat_count()).collect();
        let trace = simulate_handover(&vt, 0, &idx, HandoverPolicy::StickyMaxDwell);
        if trace.connected_steps > 0 && trace.handovers > 0 {
            let dwell = trace.mean_dwell_s(60.0);
            assert!(dwell > 60.0 && dwell < 30.0 * 60.0, "dwell {dwell} s");
            let rate = trace.handover_rate_per_hour(60.0);
            assert!(rate > 0.1 && rate < 60.0, "rate {rate}/h");
        }
    }

    #[test]
    fn empty_subset_never_serves() {
        let vt = table();
        let trace = simulate_handover(&vt, 0, &[], HandoverPolicy::AlwaysBest);
        assert_eq!(trace.connected_steps, 0);
        assert_eq!(trace.handovers, 0);
        assert_eq!(trace.handover_rate_per_hour(60.0), 0.0);
    }
}
