//! Parties and stake-based satellite allocation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a participating party.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PartyId(pub String);

impl PartyId {
    /// Construct from anything string-like.
    pub fn new(id: impl Into<String>) -> Self {
        PartyId(id.into())
    }
}

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for PartyId {
    fn from(s: &str) -> Self {
        PartyId(s.to_string())
    }
}

/// What kind of participant a party is (the paper envisions both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartyKind {
    /// A nation state securing sovereign access.
    Country,
    /// A private company (e.g. a terrestrial ISP entering the market).
    Company,
}

/// A participant in an MP-LEO constellation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Party {
    /// Identifier.
    pub id: PartyId,
    /// Kind of participant.
    pub kind: PartyKind,
    /// Indices (into the constellation satellite list) this party
    /// contributed.
    pub satellites: Vec<usize>,
}

impl Party {
    /// Number of satellites contributed.
    pub fn stake(&self) -> usize {
        self.satellites.len()
    }
}

/// Allocate `total` satellites across parties in proportion to `ratios`,
/// assigning any remainder (from rounding) one satellite at a time to the
/// parties with the largest fractional parts (largest-remainder method).
///
/// Returns per-party contiguous *counts*; pair with
/// [`crate::registry::ConstellationRegistry::from_counts`] to materialize
/// parties. The Fig. 6 experiment uses ratios `[r, 1, 1, ..., 1]` with 11
/// parties over 1000 satellites.
pub fn allocate_by_ratio(total: usize, ratios: &[f64]) -> Vec<usize> {
    assert!(!ratios.is_empty(), "need at least one party");
    assert!(ratios.iter().all(|&r| r > 0.0), "ratios must be positive");
    let sum: f64 = ratios.iter().sum();
    let exact: Vec<f64> = ratios.iter().map(|r| r / sum * total as f64).collect();
    let mut counts: Vec<usize> = exact.iter().map(|&e| e.floor() as usize).collect();
    let mut assigned: usize = counts.iter().sum();
    // Largest remainders get the leftovers.
    let mut order: Vec<usize> = (0..ratios.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = exact[a] - exact[a].floor();
        let fb = exact[b] - exact[b].floor();
        fb.partial_cmp(&fa).unwrap()
    });
    let mut k = 0;
    while assigned < total {
        counts[order[k % order.len()]] += 1;
        assigned += 1;
        k += 1;
    }
    counts
}

/// The Fig. 6 stake pattern: one party with ratio `r`, `others` parties with
/// ratio 1.
pub fn skewed_ratios(r: f64, others: usize) -> Vec<f64> {
    let mut v = vec![r];
    v.extend(std::iter::repeat_n(1.0, others));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_allocation() {
        // 1000 sats, 11 equal parties: paper says "91 satellites each"
        // (10 * 91 + 90 = 1000 with largest-remainder).
        let counts = allocate_by_ratio(1000, &skewed_ratios(1.0, 10));
        assert_eq!(counts.len(), 11);
        assert_eq!(counts.iter().sum::<usize>(), 1000);
        for &c in &counts {
            assert!(c == 90 || c == 91, "count {c}");
        }
        assert_eq!(counts.iter().filter(|&&c| c == 91).count(), 10);
    }

    #[test]
    fn skewed_allocation() {
        // 10:1:...:1 over 1000 with 11 parties: largest gets 500, others 50.
        let counts = allocate_by_ratio(1000, &skewed_ratios(10.0, 10));
        assert_eq!(counts[0], 500);
        for &c in &counts[1..] {
            assert_eq!(c, 50);
        }
    }

    #[test]
    fn conservation_for_awkward_ratios() {
        for total in [7usize, 99, 1000, 1001] {
            for ratios in [vec![1.0, 2.0, 3.0], vec![3.3, 1.7], skewed_ratios(7.5, 10)] {
                let counts = allocate_by_ratio(total, &ratios);
                assert_eq!(counts.iter().sum::<usize>(), total, "total {total} ratios {ratios:?}");
            }
        }
    }

    #[test]
    fn allocation_monotone_in_ratio() {
        let counts = allocate_by_ratio(1000, &[5.0, 3.0, 1.0]);
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
    }

    #[test]
    #[should_panic]
    fn zero_ratio_panics() {
        allocate_by_ratio(10, &[1.0, 0.0]);
    }

    #[test]
    fn party_stake() {
        let p = Party { id: "taiwan".into(), kind: PartyKind::Country, satellites: vec![0, 5, 9] };
        assert_eq!(p.stake(), 3);
        assert_eq!(p.id.to_string(), "taiwan");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn allocation_always_conserves(
            total in 1usize..5000,
            ratios in proptest::collection::vec(0.01f64..100.0, 1..20),
        ) {
            let counts = allocate_by_ratio(total, &ratios);
            prop_assert_eq!(counts.len(), ratios.len());
            prop_assert_eq!(counts.iter().sum::<usize>(), total);
        }

        #[test]
        fn allocation_tracks_ratios(
            total in 100usize..5000,
            r in 1.0f64..20.0,
        ) {
            let counts = allocate_by_ratio(total, &skewed_ratios(r, 4));
            // The big party's share is within one satellite of exact.
            let exact = r / (r + 4.0) * total as f64;
            prop_assert!((counts[0] as f64 - exact).abs() <= 1.0);
        }
    }
}
