//! Coverage-gap-filling satellite placement (the paper's §3.3).
//!
//! The paper's central incentive observation: a new participant maximizes
//! both its own revenue and the global coverage by placing satellites *far*
//! (in orbital parameters) from existing ones. This module provides the
//! marginal-coverage evaluator that quantifies that, the Fig. 4a/4b/4c
//! experiment bodies, and a greedy multi-satellite planner with an
//! exhaustive comparator used to validate it.

use leosim::coverage::Aggregate;
use leosim::montecarlo::{pick_one, run_experiment, sample_indices};
use leosim::visibility::{SimConfig, VisibilityTable};
use leosim::{TimeBitset, TimeGrid};
use orbital::constellation::{satellite_at, single_plane, Satellite};
use orbital::ground::GroundSite;
use orbital::time::Epoch;
use serde::{Deserialize, Serialize};

/// Population-weighted coverage time (seconds) achieved by the satellite
/// subset `indices` over all sites of the table, with `weights` summing
/// to 1 in the site order of `vt`.
pub fn weighted_coverage_s(vt: &VisibilityTable, indices: &[usize], weights: &[f64]) -> f64 {
    assert_eq!(weights.len(), vt.site_count(), "weights/site mismatch");
    let mut total = 0.0;
    for (site, &w) in weights.iter().enumerate() {
        let covered = vt.coverage_union(indices, site);
        total += w * vt.grid.steps_to_seconds(covered.count_ones());
    }
    total
}

/// Marginal population-weighted coverage (seconds) gained by adding
/// `candidate` to `base`. Computed without materializing the union twice.
pub fn marginal_gain_s(
    vt: &VisibilityTable,
    base: &[usize],
    candidate: usize,
    weights: &[f64],
) -> f64 {
    assert_eq!(weights.len(), vt.site_count(), "weights/site mismatch");
    let mut total = 0.0;
    for (site, &w) in weights.iter().enumerate() {
        let covered = vt.coverage_union(base, site);
        let gain_steps = covered.marginal_gain(vt.bitset(candidate, site));
        total += w * vt.grid.steps_to_seconds(gain_steps);
    }
    total
}

/// Fig. 4a experiment: the average and maximum coverage gain of adding one
/// random pool satellite to a random base of `base_size` pool satellites.
///
/// `vt` must be computed over the *entire pool*; each run samples
/// `base_size + 1` distinct satellites, uses the last as the addition, and
/// measures the population-weighted gain. Runs execute in parallel on the
/// shared `simrt` pool with deterministic per-run RNG streams.
pub fn random_addition_experiment(
    vt: &VisibilityTable,
    base_size: usize,
    weights: &[f64],
    runs: usize,
    seed: u64,
) -> Aggregate {
    let n = vt.sat_count();
    assert!(base_size < n, "pool too small for base {base_size}");
    run_experiment(seed, runs, |rng, _| {
        let mut chosen = sample_indices(rng, n, base_size + 1);
        // The sample is sorted; pick a uniformly random element as the
        // addition so the "new" satellite is unbiased.
        let extra_pos = pick_one(rng, chosen.len());
        let candidate = chosen.remove(extra_pos);
        marginal_gain_s(vt, &chosen, candidate, weights)
    })
}

/// One point of the Fig. 4b phase sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSweepPoint {
    /// Phase offset of the added satellite from the first base satellite,
    /// degrees.
    pub offset_deg: f64,
    /// Population-weighted coverage gain, seconds.
    pub gain_s: f64,
}

/// Fig. 4b: a 12-satellite single plane (30-degree spacing, 53 degrees,
/// 546 km); add one satellite at each of the 29 offsets (1..=29 degrees)
/// between two original satellites and measure the coverage improvement.
pub fn phase_sweep(
    sites: &[GroundSite],
    weights: &[f64],
    grid: &TimeGrid,
    config: &SimConfig,
    epoch: Epoch,
) -> Vec<PhaseSweepPoint> {
    let base = single_plane(12, 546.0, 53.0, epoch);
    let offsets: Vec<f64> = (1..=29).map(|d| d as f64).collect();
    let candidates: Vec<Satellite> = offsets
        .iter()
        .enumerate()
        .map(|(k, &deg)| {
            satellite_at(&format!("CAND-{deg:02.0}"), 1000 + k as u32, 546.0, 53.0, 0.0, deg, epoch)
        })
        .collect();
    let mut all = base.clone();
    all.extend(candidates);
    let vt = VisibilityTable::compute(&all, sites, grid, config);
    let base_idx: Vec<usize> = (0..12).collect();
    offsets
        .iter()
        .enumerate()
        .map(|(k, &offset_deg)| PhaseSweepPoint {
            offset_deg,
            gain_s: marginal_gain_s(&vt, &base_idx, 12 + k, weights),
        })
        .collect()
}

/// The three candidate categories of Fig. 4c.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Category {
    /// Same altitude and phase, different inclination (43 degrees).
    DifferentInclination,
    /// Same orbital plane and phase, different altitude.
    DifferentAltitude,
    /// Same orbital plane, different phase.
    DifferentPhase,
}

impl Category {
    /// All categories in the paper's presentation order.
    pub fn all() -> [Category; 3] {
        [Category::DifferentInclination, Category::DifferentAltitude, Category::DifferentPhase]
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Category::DifferentInclination => "different inclination (43 deg)",
            Category::DifferentAltitude => "different altitude",
            Category::DifferentPhase => "different phase",
        }
    }
}

/// One row of the Fig. 4c category study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryResult {
    /// Candidate category.
    pub category: Category,
    /// Population-weighted coverage gain, seconds.
    pub gain_s: f64,
}

/// Fig. 4c: add one satellite from each of three categories to a base of
/// four satellites (53 degrees, 546 km, 90 degrees apart in one plane) and
/// measure the coverage improvement of each.
pub fn category_study(
    sites: &[GroundSite],
    weights: &[f64],
    grid: &TimeGrid,
    config: &SimConfig,
    epoch: Epoch,
) -> Vec<CategoryResult> {
    let base = single_plane(4, 546.0, 53.0, epoch);
    let candidates = [
        (Category::DifferentInclination, satellite_at("C-INC", 2000, 546.0, 43.0, 0.0, 0.0, epoch)),
        (Category::DifferentAltitude, satellite_at("C-ALT", 2001, 600.0, 53.0, 0.0, 0.0, epoch)),
        (Category::DifferentPhase, satellite_at("C-PHA", 2002, 546.0, 53.0, 0.0, 45.0, epoch)),
    ];
    let mut all = base.clone();
    all.extend(candidates.iter().map(|(_, s)| s.clone()));
    let vt = VisibilityTable::compute(&all, sites, grid, config);
    let base_idx: Vec<usize> = (0..4).collect();
    candidates
        .iter()
        .enumerate()
        .map(|(k, (cat, _))| CategoryResult {
            category: *cat,
            gain_s: marginal_gain_s(&vt, &base_idx, 4 + k, weights),
        })
        .collect()
}

/// Greedily select `k` satellites from `candidates` (indices into `vt`)
/// that maximize population-weighted coverage on top of `base`.
///
/// Returns the chosen candidate indices in selection order. This is the
/// constructive version of the paper's incentive claim: each party, filling
/// the currently largest weighted gap, builds a near-optimal constellation.
pub fn greedy_select(
    vt: &VisibilityTable,
    base: &[usize],
    candidates: &[usize],
    k: usize,
    weights: &[f64],
) -> Vec<usize> {
    assert!(k <= candidates.len(), "cannot select {k} from {}", candidates.len());
    assert_eq!(weights.len(), vt.site_count(), "weights/site mismatch");
    // Maintain per-site union coverage incrementally.
    let mut covered: Vec<TimeBitset> =
        (0..vt.site_count()).map(|site| vt.coverage_union(base, site)).collect();
    let mut remaining: Vec<usize> = candidates.to_vec();
    let mut chosen = Vec::with_capacity(k);
    for _ in 0..k {
        let mut best_pos = 0;
        let mut best_gain = f64::NEG_INFINITY;
        for (pos, &c) in remaining.iter().enumerate() {
            let gain: f64 = covered
                .iter()
                .enumerate()
                .zip(weights)
                .map(|((site, cov), &w)| w * cov.marginal_gain(vt.bitset(c, site)) as f64)
                .sum();
            if gain > best_gain {
                best_gain = gain;
                best_pos = pos;
            }
        }
        let picked = remaining.swap_remove(best_pos);
        for (site, cov) in covered.iter_mut().enumerate() {
            cov.union_assign(vt.bitset(picked, site));
        }
        chosen.push(picked);
    }
    chosen
}

/// Exhaustively find the size-`k` candidate subset maximizing weighted
/// coverage on top of `base`. Exponential — test/validation use only.
pub fn exhaustive_select(
    vt: &VisibilityTable,
    base: &[usize],
    candidates: &[usize],
    k: usize,
    weights: &[f64],
) -> Vec<usize> {
    assert!(k <= candidates.len());
    assert!(candidates.len() <= 20, "exhaustive search limited to 20 candidates");
    let mut best: (f64, Vec<usize>) = (f64::NEG_INFINITY, Vec::new());
    let mut subset = Vec::with_capacity(k);
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        vt: &VisibilityTable,
        base: &[usize],
        candidates: &[usize],
        k: usize,
        weights: &[f64],
        start: usize,
        subset: &mut Vec<usize>,
        best: &mut (f64, Vec<usize>),
    ) {
        if subset.len() == k {
            let mut all: Vec<usize> = base.to_vec();
            all.extend_from_slice(subset);
            let cov = weighted_coverage_s(vt, &all, weights);
            if cov > best.0 {
                *best = (cov, subset.clone());
            }
            return;
        }
        for pos in start..candidates.len() {
            subset.push(candidates[pos]);
            recurse(vt, base, candidates, k, weights, pos + 1, subset, best);
            subset.pop();
        }
    }
    recurse(vt, base, candidates, k, weights, 0, &mut subset, &mut best);
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use leosim::visibility::SimConfig;

    fn epoch() -> Epoch {
        Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
    }

    /// Five mid-latitude sites with uneven weights standing in for the
    /// 21-city set (keeps unit tests fast; the full set is exercised by the
    /// figure binaries and integration tests).
    fn sites_and_weights() -> (Vec<GroundSite>, Vec<f64>) {
        let sites = vec![
            fixtures::tokyo(),
            fixtures::delhi(),
            fixtures::sao_paulo(),
            fixtures::new_york(),
            fixtures::lagos(),
        ];
        let weights = vec![0.3, 0.3, 0.2, 0.1, 0.1];
        (sites, weights)
    }

    fn small_table() -> (VisibilityTable, Vec<f64>) {
        let (sites, weights) = sites_and_weights();
        let sats = single_plane(8, 550.0, 53.0, epoch());
        let grid = TimeGrid::new(epoch(), 86_400.0, 60.0);
        (VisibilityTable::compute(&sats, &sites, &grid, &SimConfig::default()), weights)
    }

    #[test]
    fn weighted_coverage_monotone_in_subset() {
        let (vt, w) = small_table();
        let c2 = weighted_coverage_s(&vt, &[0, 1], &w);
        let c4 = weighted_coverage_s(&vt, &[0, 1, 2, 3], &w);
        let c8 = weighted_coverage_s(&vt, &(0..8).collect::<Vec<_>>(), &w);
        assert!(c2 <= c4 && c4 <= c8, "{c2} {c4} {c8}");
        assert!(c8 > 0.0);
    }

    #[test]
    fn marginal_gain_matches_difference() {
        let (vt, w) = small_table();
        let base = vec![0, 2, 4];
        for cand in [1usize, 3, 5, 7] {
            let direct = marginal_gain_s(&vt, &base, cand, &w);
            let mut with: Vec<usize> = base.clone();
            with.push(cand);
            let diff = weighted_coverage_s(&vt, &with, &w) - weighted_coverage_s(&vt, &base, &w);
            assert!((direct - diff).abs() < 1e-6, "cand {cand}: {direct} vs {diff}");
        }
    }

    #[test]
    fn marginal_gain_of_member_is_zero() {
        let (vt, w) = small_table();
        let base = vec![0, 1, 2];
        assert_eq!(marginal_gain_s(&vt, &base, 1, &w), 0.0);
    }

    #[test]
    fn random_addition_diminishing_returns() {
        // Fig. 4a shape: the marginal value of one satellite shrinks as the
        // base grows.
        let (sites, w) = sites_and_weights();
        let sats = single_plane(40, 550.0, 53.0, epoch());
        let grid = TimeGrid::new(epoch(), 86_400.0, 120.0);
        let vt = VisibilityTable::compute(&sats, &sites, &grid, &SimConfig::default());
        let g1 = random_addition_experiment(&vt, 1, &w, 20, 11);
        let g20 = random_addition_experiment(&vt, 20, &w, 20, 11);
        assert!(g1.mean > g20.mean, "base 1 gain {} vs base 20 gain {}", g1.mean, g20.mean);
        assert!(g1.max >= g1.mean);
    }

    #[test]
    fn phase_sweep_peak_near_midpoint() {
        let (sites, w) = sites_and_weights();
        let grid = TimeGrid::new(epoch(), 2.0 * 86_400.0, 60.0);
        let points = phase_sweep(&sites, &w, &grid, &SimConfig::default(), epoch());
        assert_eq!(points.len(), 29);
        let best = points.iter().max_by(|a, b| a.gain_s.partial_cmp(&b.gain_s).unwrap()).unwrap();
        // Paper: maximum at the midpoint (15 deg). Allow a modest band for
        // the shortened horizon used in unit tests.
        assert!(
            (best.offset_deg - 15.0).abs() <= 5.0,
            "peak at {} deg (gain {})",
            best.offset_deg,
            best.gain_s
        );
        // Gains at the extremes are the smallest (closest to existing sats).
        let edge = points[0].gain_s.min(points[28].gain_s);
        assert!(best.gain_s > edge, "peak {} vs edge {}", best.gain_s, edge);
    }

    #[test]
    fn category_study_inclination_wins() {
        let (sites, w) = sites_and_weights();
        let grid = TimeGrid::new(epoch(), 2.0 * 86_400.0, 60.0);
        let results = category_study(&sites, &w, &grid, &SimConfig::default(), epoch());
        assert_eq!(results.len(), 3);
        let gain = |c: Category| results.iter().find(|r| r.category == c).unwrap().gain_s;
        // Paper Fig. 4c: different inclination provides the highest gain.
        assert!(
            gain(Category::DifferentInclination) >= gain(Category::DifferentAltitude),
            "inclination {} vs altitude {}",
            gain(Category::DifferentInclination),
            gain(Category::DifferentAltitude)
        );
        assert!(
            gain(Category::DifferentInclination) >= gain(Category::DifferentPhase),
            "inclination {} vs phase {}",
            gain(Category::DifferentInclination),
            gain(Category::DifferentPhase)
        );
        for r in &results {
            assert!(r.gain_s > 0.0, "{:?} gained nothing", r.category);
        }
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_instance() {
        let (vt, w) = small_table();
        let candidates: Vec<usize> = (2..8).collect();
        let greedy = greedy_select(&vt, &[0, 1], &candidates, 2, &w);
        let exact = exhaustive_select(&vt, &[0, 1], &candidates, 2, &w);
        let cov = |sel: &[usize]| {
            let mut all = vec![0, 1];
            all.extend_from_slice(sel);
            weighted_coverage_s(&vt, &all, &w)
        };
        // Greedy is within the classic (1 - 1/e) bound of optimal for
        // submodular coverage; on instances this small it is usually exact.
        assert!(
            cov(&greedy) >= 0.63 * cov(&exact),
            "greedy {} exact {}",
            cov(&greedy),
            cov(&exact)
        );
    }

    #[test]
    fn greedy_selection_order_is_diminishing() {
        let (vt, w) = small_table();
        let candidates: Vec<usize> = (1..8).collect();
        let chosen = greedy_select(&vt, &[0], &candidates, 4, &w);
        assert_eq!(chosen.len(), 4);
        // Recompute the gain sequence; it must be non-increasing.
        let mut base = vec![0usize];
        let mut last = f64::INFINITY;
        for &c in &chosen {
            let g = marginal_gain_s(&vt, &base, c, &w);
            assert!(g <= last + 1e-9, "gain sequence increased: {g} after {last}");
            last = g;
            base.push(c);
        }
    }

    #[test]
    fn category_labels_stable() {
        assert_eq!(Category::all().len(), 3);
        assert!(Category::DifferentInclination.label().contains("43"));
    }
}
