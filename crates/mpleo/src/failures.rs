//! Satellite failure injection and replenishment policy.
//!
//! The paper's robustness questions (§1): "How do we deal with satellite
//! failures?" — withdrawals are adversarial and instantaneous; failures are
//! stochastic and continuous. This module simulates an exponential-lifetime
//! failure process over the simulation horizon, optional periodic
//! replenishment launches, and reports the coverage trajectory — the
//! steady-state a constellation operator actually lives in.

use leosim::montecarlo::run_rng;
use leosim::visibility::VisibilityTable;
use leosim::TimeBitset;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Failure / replenishment model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Mean time between failures per satellite, seconds (exponential).
    pub mtbf_s: f64,
    /// Replenishment cadence: every `launch_interval_s`, up to
    /// `batch_size` failed satellites are replaced (0 = no replenishment).
    pub launch_interval_s: f64,
    /// Satellites replaced per launch.
    pub batch_size: usize,
}

impl FailureModel {
    /// A harsh test model: ~2-year MTBF, quarterly launches of 10.
    pub fn harsh() -> FailureModel {
        FailureModel {
            mtbf_s: 2.0 * 365.25 * 86_400.0,
            launch_interval_s: 91.0 * 86_400.0,
            batch_size: 10,
        }
    }
}

/// The alive-set trajectory of one simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailureRun {
    /// Per-step count of alive satellites.
    pub alive_count: Vec<usize>,
    /// Per-step coverage fraction at the measured site.
    pub coverage: Vec<f64>,
    /// Total failures that occurred.
    pub failures: usize,
    /// Total replacements launched.
    pub replacements: usize,
}

impl FailureRun {
    /// Mean coverage over the horizon.
    pub fn mean_coverage(&self) -> f64 {
        if self.coverage.is_empty() {
            return 0.0;
        }
        self.coverage.iter().sum::<f64>() / self.coverage.len() as f64
    }

    /// Minimum alive count over the horizon.
    pub fn min_alive(&self) -> usize {
        self.alive_count.iter().cloned().min().unwrap_or(0)
    }
}

/// Simulate failures over the table's grid for the subset `sat_indices`,
/// measuring coverage at `site` in sliding windows of `window_steps`.
///
/// Failures strike alive satellites as a Poisson process (rate =
/// alive / MTBF); replacements revive the longest-dead satellites at each
/// launch epoch (modeling a like-for-like spare into the same slot).
pub fn simulate_failures(
    vt: &VisibilityTable,
    sat_indices: &[usize],
    site: usize,
    model: &FailureModel,
    window_steps: usize,
    seed: u64,
) -> FailureRun {
    assert!(window_steps >= 1);
    let steps = vt.grid.steps;
    let step_s = vt.grid.step_s;
    let mut rng = run_rng(seed, 0);
    let mut alive: Vec<bool> = vec![true; sat_indices.len()];
    let mut died_at: Vec<Option<usize>> = vec![None; sat_indices.len()];
    let mut failures = 0;
    let mut replacements = 0;
    let mut alive_count = Vec::with_capacity(steps);
    let mut coverage = Vec::with_capacity(steps);
    let mut next_launch = model.launch_interval_s;

    for k in 0..steps {
        // Failure draws: each alive satellite fails this step w.p.
        // step/MTBF (exponential hazard, first-order).
        let p_fail = (step_s / model.mtbf_s).min(1.0);
        for (i, a) in alive.iter_mut().enumerate() {
            if *a && rng.gen::<f64>() < p_fail {
                *a = false;
                died_at[i] = Some(k);
                failures += 1;
            }
        }
        // Replenishment.
        let t = k as f64 * step_s;
        if model.launch_interval_s > 0.0 && t >= next_launch {
            next_launch += model.launch_interval_s;
            // Revive the longest-dead first (their slots have gaped
            // longest).
            let mut dead: Vec<(usize, usize)> = died_at
                .iter()
                .enumerate()
                .filter_map(|(i, d)| d.map(|when| (when, i)))
                .filter(|&(_, i)| !alive[i])
                .collect();
            dead.sort_unstable();
            for &(_, i) in dead.iter().take(model.batch_size) {
                alive[i] = true;
                died_at[i] = None;
                replacements += 1;
            }
        }
        let n_alive = alive.iter().filter(|&&a| a).count();
        alive_count.push(n_alive);
        // Windowed coverage: fraction of the trailing window covered by
        // currently-alive satellites.
        let w_start = k.saturating_sub(window_steps - 1);
        let mut covered = TimeBitset::zeros(steps);
        for (i, &sat) in sat_indices.iter().enumerate() {
            if alive[i] {
                covered.union_assign(vt.bitset(sat, site));
            }
        }
        let win: usize = (w_start..=k).filter(|&s| covered.get(s)).count();
        coverage.push(win as f64 / (k - w_start + 1) as f64);
    }
    FailureRun { alive_count, coverage, failures, replacements }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use leosim::visibility::SimConfig;
    use leosim::TimeGrid;
    use orbital::constellation::{walker_delta, ShellSpec};
    use orbital::time::Epoch;

    fn table() -> VisibilityTable {
        let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
        let spec = ShellSpec { planes: 10, sats_per_plane: 8, ..ShellSpec::starlink_like() };
        let sats = walker_delta(&spec, epoch);
        let sites = [fixtures::taipei()];
        let grid = TimeGrid::new(epoch, 2.0 * 86_400.0, 300.0);
        VisibilityTable::compute(&sats, &sites, &grid, &SimConfig::default().with_mask_deg(10.0))
    }

    #[test]
    fn no_failures_with_infinite_mtbf() {
        let vt = table();
        let idx: Vec<usize> = (0..vt.sat_count()).collect();
        let model = FailureModel { mtbf_s: f64::INFINITY, launch_interval_s: 0.0, batch_size: 0 };
        let run = simulate_failures(&vt, &idx, 0, &model, 12, 1);
        assert_eq!(run.failures, 0);
        assert_eq!(run.min_alive(), idx.len());
    }

    #[test]
    fn aggressive_failures_thin_the_fleet() {
        let vt = table();
        let idx: Vec<usize> = (0..vt.sat_count()).collect();
        // MTBF of 10 days: over 2 days ~18% of the fleet dies.
        let model = FailureModel { mtbf_s: 10.0 * 86_400.0, launch_interval_s: 0.0, batch_size: 0 };
        let run = simulate_failures(&vt, &idx, 0, &model, 12, 2);
        assert!(run.failures > 0, "failures expected");
        assert!(run.min_alive() < idx.len());
        // Alive count is non-increasing without replenishment.
        for w in run.alive_count.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn replenishment_restores_fleet() {
        let vt = table();
        let idx: Vec<usize> = (0..vt.sat_count()).collect();
        let no_fix = FailureModel { mtbf_s: 5.0 * 86_400.0, launch_interval_s: 0.0, batch_size: 0 };
        let with_fix = FailureModel {
            mtbf_s: 5.0 * 86_400.0,
            launch_interval_s: 0.5 * 86_400.0,
            batch_size: 20,
        };
        let bare = simulate_failures(&vt, &idx, 0, &no_fix, 12, 3);
        let fixed = simulate_failures(&vt, &idx, 0, &with_fix, 12, 3);
        assert!(fixed.replacements > 0);
        assert!(
            fixed.alive_count.last().unwrap() > bare.alive_count.last().unwrap(),
            "replenished fleet ends larger"
        );
        assert!(fixed.mean_coverage() >= bare.mean_coverage());
    }

    #[test]
    fn coverage_degrades_with_failures() {
        let vt = table();
        let idx: Vec<usize> = (0..vt.sat_count()).collect();
        let healthy = FailureModel { mtbf_s: f64::INFINITY, launch_interval_s: 0.0, batch_size: 0 };
        let dying = FailureModel { mtbf_s: 2.0 * 86_400.0, launch_interval_s: 0.0, batch_size: 0 };
        let h = simulate_failures(&vt, &idx, 0, &healthy, 12, 4);
        let d = simulate_failures(&vt, &idx, 0, &dying, 12, 4);
        assert!(
            d.mean_coverage() < h.mean_coverage(),
            "{} vs {}",
            d.mean_coverage(),
            h.mean_coverage()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let vt = table();
        let idx: Vec<usize> = (0..vt.sat_count()).collect();
        let model = FailureModel::harsh();
        let a = simulate_failures(&vt, &idx, 0, &model, 12, 5);
        let b = simulate_failures(&vt, &idx, 0, &model, 12, 5);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.alive_count, b.alive_count);
        let c = simulate_failures(&vt, &idx, 0, &model, 12, 6);
        // Different seed, almost surely different trajectory (tiny chance
        // of equality tolerated by comparing only when failures differ).
        if a.failures != c.failures {
            assert_ne!(a.alive_count, c.alive_count);
        }
    }
}
