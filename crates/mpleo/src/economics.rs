//! Constellation economics: the capital argument of the paper's §1–2.
//!
//! "Amazon and Starlink have projected that building fully operational LEO
//! networks requires investments between 10-30 billion dollars." This
//! module prices constellations with a simple, auditable cost model
//! (satellite capex + launch + annual operations, with replacement over a
//! design life) and compares the *cost of a coverage target* for
//! go-it-alone vs MP-LEO participation — turning Fig. 2's coverage curve
//! into dollars.

use serde::{Deserialize, Serialize};

/// Cost model parameters (2024-ish public figures, millions of USD).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Satellite build cost, $M each.
    pub sat_capex_musd: f64,
    /// Launch cost per satellite (rideshare amortized), $M.
    pub launch_per_sat_musd: f64,
    /// Annual operations per satellite (ground segment share, staff,
    /// spectrum), $M.
    pub annual_ops_per_sat_musd: f64,
    /// Satellite design life, years (drives replacement cadence).
    pub design_life_years: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Starlink-class economics: ~$0.5M satellite, ~$1M launch share,
        // 5-year life.
        CostModel {
            sat_capex_musd: 0.5,
            launch_per_sat_musd: 1.0,
            annual_ops_per_sat_musd: 0.1,
            design_life_years: 5.0,
        }
    }
}

impl CostModel {
    /// Total cost of owning `sats` satellites for `years`, $M
    /// (initial deployment + replacements + operations).
    pub fn total_cost_musd(&self, sats: usize, years: f64) -> f64 {
        assert!(years >= 0.0);
        let deploy = (self.sat_capex_musd + self.launch_per_sat_musd) * sats as f64;
        // Replacements: each satellite is rebuilt every design life.
        let generations = (years / self.design_life_years).max(0.0);
        let replacement = deploy * generations;
        let ops = self.annual_ops_per_sat_musd * sats as f64 * years;
        deploy + replacement + ops
    }

    /// Annualized cost per satellite, $M/yr.
    pub fn annual_per_sat_musd(&self) -> f64 {
        (self.sat_capex_musd + self.launch_per_sat_musd) / self.design_life_years
            + self.annual_ops_per_sat_musd
    }
}

/// One row of a cost-of-coverage comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageCost {
    /// Satellites the party must own.
    pub own_sats: usize,
    /// Satellites whose coverage the party enjoys.
    pub effective_sats: usize,
    /// 10-year total cost to the party, $M.
    pub cost_10yr_musd: f64,
    /// Availability achieved at the party's target site, fraction.
    pub availability: f64,
}

/// Cost for a party to reach `availability` going it alone, given the
/// empirical size→availability curve `curve` (pairs of `(sats,
/// availability)`, ascending in sats — e.g. from the Fig. 2 experiment).
/// Returns `None` when the curve never reaches the target.
pub fn go_it_alone(
    curve: &[(usize, f64)],
    target_availability: f64,
    model: &CostModel,
) -> Option<CoverageCost> {
    let (sats, availability) = curve.iter().find(|(_, a)| *a >= target_availability).copied()?;
    Some(CoverageCost {
        own_sats: sats,
        effective_sats: sats,
        cost_10yr_musd: model.total_cost_musd(sats, 10.0),
        availability,
    })
}

/// Cost for a party to reach the same target inside an MP-LEO constellation
/// of `shared_total` satellites, contributing its proportional share
/// (`shared_total / parties`, rounded up). The availability enjoyed is the
/// whole constellation's.
pub fn mp_leo_share(
    curve: &[(usize, f64)],
    target_availability: f64,
    parties: usize,
    model: &CostModel,
) -> Option<CoverageCost> {
    assert!(parties >= 1);
    let (shared_total, availability) =
        curve.iter().find(|(_, a)| *a >= target_availability).copied()?;
    let own = shared_total.div_ceil(parties);
    Some(CoverageCost {
        own_sats: own,
        effective_sats: shared_total,
        cost_10yr_musd: model.total_cost_musd(own, 10.0),
        availability,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Fig.-2-shaped curve (availability at Taipei by constellation
    /// size, 25-degree mask).
    fn curve() -> Vec<(usize, f64)> {
        vec![
            (10, 0.048),
            (50, 0.219),
            (100, 0.392),
            (200, 0.633),
            (500, 0.923),
            (1000, 0.995),
            (2000, 1.0),
        ]
    }

    #[test]
    fn cost_model_scales_linearly_in_sats() {
        let m = CostModel::default();
        let c1 = m.total_cost_musd(100, 10.0);
        let c2 = m.total_cost_musd(200, 10.0);
        assert!((c2 / c1 - 2.0).abs() < 1e-9);
        assert_eq!(m.total_cost_musd(0, 10.0), 0.0);
    }

    #[test]
    fn ten_year_cost_includes_replacement() {
        let m = CostModel::default();
        // 10 years / 5-year life = deploy + 2 generations of replacement.
        let one = m.total_cost_musd(1, 10.0);
        let deploy = 1.5;
        let expected = deploy + 2.0 * deploy + 0.1 * 10.0;
        assert!((one - expected).abs() < 1e-9, "{one} vs {expected}");
    }

    #[test]
    fn paper_scale_headline() {
        // The paper: full networks need $10-30B. Our default model at
        // Starlink Gen1 scale (4400 sats) over 10 years lands inside that
        // band.
        let m = CostModel::default();
        let total = m.total_cost_musd(4400, 10.0) / 1000.0; // $B
        assert!((10.0..30.0).contains(&total), "10-year cost {total} $B");
    }

    #[test]
    fn alone_vs_shared_headline() {
        // The §2 claim: contributing ~50-100 satellites into a shared 1000
        // buys coverage that going alone prices at 1000 satellites.
        let m = CostModel::default();
        let alone = go_it_alone(&curve(), 0.995, &m).unwrap();
        let shared = mp_leo_share(&curve(), 0.995, 11, &m).unwrap();
        assert_eq!(alone.own_sats, 1000);
        assert_eq!(shared.own_sats, 91);
        assert_eq!(shared.effective_sats, 1000);
        assert!((alone.availability - shared.availability).abs() < 1e-12);
        let saving = alone.cost_10yr_musd / shared.cost_10yr_musd;
        assert!(saving > 10.0 && saving < 12.0, "cost ratio {saving}");
    }

    #[test]
    fn unreachable_target_is_none() {
        let m = CostModel::default();
        assert!(go_it_alone(&curve()[..3], 0.99, &m).is_none());
        assert!(mp_leo_share(&curve()[..3], 0.99, 5, &m).is_none());
    }

    #[test]
    fn more_parties_cheaper_share() {
        let m = CostModel::default();
        let few = mp_leo_share(&curve(), 0.99, 5, &m).unwrap();
        let many = mp_leo_share(&curve(), 0.99, 20, &m).unwrap();
        assert!(many.cost_10yr_musd < few.cost_10yr_musd);
        assert_eq!(many.effective_sats, few.effective_sats);
    }

    #[test]
    fn annualized_cost_sane() {
        let m = CostModel::default();
        // (0.5 + 1.0)/5 + 0.1 = 0.4 $M/yr per satellite.
        assert!((m.annual_per_sat_musd() - 0.4).abs() < 1e-12);
    }
}
