//! Spectrum coordination among MP-LEO parties.
//!
//! The paper's §4 "Spectrum access": the transparent bent pipe delegates
//! spectrum management to ground stations and terminals, so co-located
//! deployments of *different parties* must not transmit on the same channel
//! at the same place. This module models that as interference-graph
//! coloring: ground deployments within an interference radius conflict and
//! must receive distinct channels; the allocator greedily colors the graph
//! (largest-degree first) and reports whether the channel budget (the
//! licensed sub-bands of the Ku/Ka allocation) suffices.

use orbital::ground::GroundSite;
use serde::{Deserialize, Serialize};

/// A ground deployment requesting spectrum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    /// Owning party.
    pub party: String,
    /// Site of the deployment (ground station or terminal cluster).
    pub site: GroundSite,
}

/// A spectrum plan: channel index per deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectrumPlan {
    /// Channel assigned to each deployment (input order).
    pub channels: Vec<u32>,
    /// Number of distinct channels used.
    pub channels_used: u32,
}

/// Allocation failure: the conflict graph needs more channels than the
/// budget allows. Carries the minimum the greedy coloring required.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpectrumExhausted {
    /// Channels the greedy coloring needed.
    pub needed: u32,
    /// Channels available.
    pub budget: u32,
}

impl std::fmt::Display for SpectrumExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spectrum exhausted: need {} channels, budget {}", self.needed, self.budget)
    }
}

impl std::error::Error for SpectrumExhausted {}

/// Whether two deployments interfere: within `radius_km` of each other and
/// owned by different parties (a party coordinates internally).
pub fn interferes(a: &Deployment, b: &Deployment, radius_km: f64) -> bool {
    a.party != b.party && a.site.geodetic.haversine_km(&b.site.geodetic) < radius_km
}

/// Assign channels so no two interfering deployments share one.
///
/// Greedy Welsh–Powell coloring (highest conflict degree first): optimal on
/// the sparse geographic conflict graphs real deployments produce, and
/// never worse than `max_degree + 1` channels.
pub fn allocate(
    deployments: &[Deployment],
    radius_km: f64,
    budget: u32,
) -> Result<SpectrumPlan, SpectrumExhausted> {
    let n = deployments.len();
    let mut adj = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if interferes(&deployments[i], &deployments[j], radius_km) {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    // Welsh–Powell order: descending degree, index as tiebreak.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(adj[i].len()), i));
    let mut channels = vec![u32::MAX; n];
    let mut used = 0u32;
    for &i in &order {
        let taken: std::collections::BTreeSet<u32> =
            adj[i].iter().map(|&j| channels[j]).filter(|&c| c != u32::MAX).collect();
        let mut c = 0u32;
        while taken.contains(&c) {
            c += 1;
        }
        channels[i] = c;
        used = used.max(c + 1);
    }
    if used > budget {
        return Err(SpectrumExhausted { needed: used, budget });
    }
    Ok(SpectrumPlan { channels, channels_used: used })
}

/// Validate a plan (any plan, not just greedy output) against the
/// interference constraints. Returns conflicting index pairs.
pub fn validate(
    deployments: &[Deployment],
    plan: &SpectrumPlan,
    radius_km: f64,
) -> Vec<(usize, usize)> {
    let mut conflicts = Vec::new();
    for i in 0..deployments.len() {
        for j in (i + 1)..deployments.len() {
            if plan.channels[i] == plan.channels[j]
                && interferes(&deployments[i], &deployments[j], radius_km)
            {
                conflicts.push((i, j));
            }
        }
    }
    conflicts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dep(party: &str, lat: f64, lon: f64) -> Deployment {
        Deployment {
            party: party.to_string(),
            site: GroundSite::from_degrees(format!("{party}-{lat}-{lon}"), lat, lon),
        }
    }

    #[test]
    fn far_apart_share_channel() {
        let deps = [dep("a", 25.0, 121.0), dep("b", 40.0, -74.0)];
        let plan = allocate(&deps, 100.0, 4).unwrap();
        assert_eq!(plan.channels_used, 1);
        assert!(validate(&deps, &plan, 100.0).is_empty());
    }

    #[test]
    fn colocated_different_parties_split() {
        let deps = [dep("a", 25.0, 121.0), dep("b", 25.1, 121.1), dep("c", 25.05, 121.05)];
        let plan = allocate(&deps, 100.0, 4).unwrap();
        assert_eq!(plan.channels_used, 3, "all three mutually conflict");
        assert!(validate(&deps, &plan, 100.0).is_empty());
    }

    #[test]
    fn same_party_coordinates_internally() {
        let deps = [dep("a", 25.0, 121.0), dep("a", 25.01, 121.0)];
        let plan = allocate(&deps, 100.0, 1).unwrap();
        assert_eq!(plan.channels_used, 1);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let deps: Vec<Deployment> =
            (0..5).map(|k| dep(&format!("p{k}"), 25.0 + 0.01 * k as f64, 121.0)).collect();
        let err = allocate(&deps, 100.0, 3).unwrap_err();
        assert_eq!(err.needed, 5);
        assert_eq!(err.budget, 3);
        assert!(err.to_string().contains("need 5"));
    }

    #[test]
    fn chain_needs_two_channels() {
        // a-b conflict, b-c conflict, a-c do not: 2 channels suffice.
        let deps = [dep("a", 25.0, 121.0), dep("b", 25.0, 121.8), dep("c", 25.0, 122.6)];
        let radius = 100.0;
        assert!(interferes(&deps[0], &deps[1], radius));
        assert!(interferes(&deps[1], &deps[2], radius));
        assert!(!interferes(&deps[0], &deps[2], radius));
        let plan = allocate(&deps, radius, 8).unwrap();
        assert_eq!(plan.channels_used, 2);
        assert!(validate(&deps, &plan, radius).is_empty());
    }

    #[test]
    fn validate_catches_bad_plans() {
        let deps = [dep("a", 25.0, 121.0), dep("b", 25.01, 121.0)];
        let bad = SpectrumPlan { channels: vec![0, 0], channels_used: 1 };
        assert_eq!(validate(&deps, &bad, 100.0), vec![(0, 1)]);
    }

    #[test]
    fn deterministic_allocation() {
        let deps: Vec<Deployment> =
            (0..10).map(|k| dep(&format!("p{}", k % 4), 25.0 + 0.02 * k as f64, 121.0)).collect();
        let a = allocate(&deps, 150.0, 16).unwrap();
        let b = allocate(&deps, 150.0, 16).unwrap();
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_deployments() -> impl Strategy<Value = Vec<Deployment>> {
        proptest::collection::vec((0u8..6, -60.0f64..60.0, -179.0f64..179.0), 1..20).prop_map(|v| {
            v.into_iter()
                .map(|(p, lat, lon)| Deployment {
                    party: format!("p{p}"),
                    site: GroundSite::from_degrees("s", lat, lon),
                })
                .collect()
        })
    }

    proptest! {
        #[test]
        fn greedy_plans_are_always_valid(deps in arb_deployments()) {
            if let Ok(plan) = allocate(&deps, 500.0, 64) {
                prop_assert!(validate(&deps, &plan, 500.0).is_empty());
                prop_assert!(plan.channels.iter().all(|&c| c < plan.channels_used.max(1)));
            }
        }

        #[test]
        fn channel_count_bounded_by_degree_plus_one(deps in arb_deployments()) {
            let radius = 500.0;
            let max_degree = (0..deps.len())
                .map(|i| (0..deps.len()).filter(|&j| j != i && interferes(&deps[i], &deps[j], radius)).count())
                .max()
                .unwrap_or(0);
            if let Ok(plan) = allocate(&deps, radius, 64) {
                prop_assert!(plan.channels_used as usize <= max_degree + 1);
            }
        }
    }
}
