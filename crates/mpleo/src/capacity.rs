//! Capacity sharing: terminal-to-satellite assignment and spare-capacity
//! accounting.
//!
//! The MP-LEO pitch (paper §1–2) is that a satellite idle over someone
//! else's region should carry that region's traffic. This module models
//! per-satellite capacity (number of simultaneously served terminals) and a
//! least-loaded assignment scheduler, then reports per-party utilization and
//! spare capacity — the quantities the incentive layer prices.

use crate::party::PartyId;
use leosim::visibility::VisibilityTable;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Capacity model: each satellite serves at most `terminals_per_sat`
/// terminals simultaneously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapacityConfig {
    /// Maximum concurrently served terminals per satellite.
    pub terminals_per_sat: usize,
}

impl Default for CapacityConfig {
    fn default() -> Self {
        CapacityConfig { terminals_per_sat: 4 }
    }
}

/// Result of scheduling terminals onto satellites over the grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Assignment {
    /// `served[site]` — steps where the terminal was actually served.
    pub served: Vec<leosim::TimeBitset>,
    /// `load[sat]` — total terminal-steps carried by each satellite (keyed
    /// by position in the scheduled subset).
    pub load: Vec<usize>,
    /// Capacity config used.
    pub config: CapacityConfig,
    /// The satellite subset that was scheduled (indices into the table).
    pub sat_indices: Vec<usize>,
    /// Total terminal-steps that wanted service (terminal visible to >= 1
    /// satellite of the subset).
    pub demand_steps: usize,
    /// Total terminal-steps actually served.
    pub served_steps: usize,
}

impl Assignment {
    /// Fraction of demand served, `[0, 1]` (1.0 when demand is zero).
    pub fn service_ratio(&self) -> f64 {
        if self.demand_steps == 0 {
            1.0
        } else {
            self.served_steps as f64 / self.demand_steps as f64
        }
    }

    /// Utilization of satellite `pos` (position in `sat_indices`):
    /// fraction of its total capacity-steps actually used.
    pub fn utilization(&self, pos: usize, steps: usize) -> f64 {
        let cap = self.config.terminals_per_sat * steps;
        if cap == 0 {
            0.0
        } else {
            self.load[pos] as f64 / cap as f64
        }
    }

    /// Spare capacity of the whole subset in terminal-steps. Saturates at
    /// zero when the recorded load exceeds the nominal capacity (e.g. an
    /// assignment replayed against a shorter grid).
    pub fn spare_capacity_steps(&self, steps: usize) -> usize {
        let total = self.config.terminals_per_sat * self.sat_indices.len() * steps;
        total.saturating_sub(self.load.iter().sum::<usize>())
    }
}

/// Assign each terminal, at every step, to the least-loaded visible
/// satellite with spare capacity (ties broken by subset order).
///
/// Terminals are considered in site order each step; this simple greedy
/// scheduler is the reference policy — fancier policies plug in by
/// producing their own [`Assignment`].
pub fn assign_least_loaded(
    vt: &VisibilityTable,
    sat_indices: &[usize],
    config: CapacityConfig,
) -> Assignment {
    let steps = vt.grid.steps;
    let mut served: Vec<leosim::TimeBitset> =
        (0..vt.site_count()).map(|_| leosim::TimeBitset::zeros(steps)).collect();
    let mut load = vec![0usize; sat_indices.len()];
    let mut demand_steps = 0usize;
    let mut served_steps = 0usize;
    let mut step_load = vec![0usize; sat_indices.len()];
    #[allow(clippy::needless_range_loop)]
    for step in 0..steps {
        step_load.iter_mut().for_each(|l| *l = 0);
        for site in 0..vt.site_count() {
            // Candidate satellites: visible at this step.
            let mut best: Option<usize> = None; // position in sat_indices
            let mut any_visible = false;
            for (pos, &s) in sat_indices.iter().enumerate() {
                if vt.bitset(s, site).get(step) {
                    any_visible = true;
                    if step_load[pos] < config.terminals_per_sat
                        && best.is_none_or(|b| step_load[pos] < step_load[b])
                    {
                        best = Some(pos);
                    }
                }
            }
            if any_visible {
                demand_steps += 1;
            }
            if let Some(pos) = best {
                step_load[pos] += 1;
                load[pos] += 1;
                served[site].set(step);
                served_steps += 1;
            }
        }
    }
    Assignment {
        served,
        load,
        config,
        sat_indices: sat_indices.to_vec(),
        demand_steps,
        served_steps,
    }
}

/// Per-party utilization report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartyUtilization {
    /// Party.
    pub party: PartyId,
    /// Terminal-steps carried by this party's satellites.
    pub carried_steps: usize,
    /// Mean utilization of this party's satellites, `[0, 1]`.
    pub mean_utilization: f64,
}

/// Aggregate an assignment by satellite ownership.
pub fn utilization_by_party(
    assignment: &Assignment,
    steps: usize,
    sat_owner: &HashMap<usize, PartyId>,
) -> Vec<PartyUtilization> {
    let mut carried: HashMap<PartyId, usize> = HashMap::new();
    let mut utils: HashMap<PartyId, Vec<f64>> = HashMap::new();
    for (pos, &sat) in assignment.sat_indices.iter().enumerate() {
        let owner = sat_owner.get(&sat).expect("satellite has an owner").clone();
        *carried.entry(owner.clone()).or_default() += assignment.load[pos];
        utils.entry(owner).or_default().push(assignment.utilization(pos, steps));
    }
    let mut out: Vec<PartyUtilization> = carried
        .into_iter()
        .map(|(party, carried_steps)| {
            let u = &utils[&party];
            PartyUtilization {
                carried_steps,
                mean_utilization: u.iter().sum::<f64>() / u.len() as f64,
                party,
            }
        })
        .collect();
    out.sort_by(|a, b| a.party.cmp(&b.party));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use leosim::visibility::SimConfig;
    use leosim::TimeGrid;
    use orbital::constellation::single_plane;
    use orbital::ground::GroundSite;
    use orbital::time::Epoch;

    fn epoch() -> Epoch {
        Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
    }

    fn table(n_terminals: usize) -> VisibilityTable {
        let sats = single_plane(8, 550.0, 53.0, epoch());
        // Terminals clustered around Taipei so they compete for the same
        // satellites.
        let sites: Vec<GroundSite> = (0..n_terminals)
            .map(|k| GroundSite::from_degrees(format!("T{k}"), 25.0 + 0.1 * k as f64, 121.5))
            .collect();
        let grid = TimeGrid::new(epoch(), 86_400.0, 120.0);
        VisibilityTable::compute(&sats, &sites, &grid, &SimConfig::default())
    }

    #[test]
    fn unconstrained_capacity_serves_all_demand() {
        let vt = table(3);
        let idx: Vec<usize> = (0..8).collect();
        let a = assign_least_loaded(&vt, &idx, CapacityConfig { terminals_per_sat: 100 });
        assert_eq!(a.service_ratio(), 1.0);
        // Served equals union visibility per terminal.
        for site in 0..3 {
            assert_eq!(a.served[site], vt.coverage_union(&idx, site), "site {site}");
        }
    }

    #[test]
    fn capacity_one_limits_colocated_terminals() {
        let vt = table(5);
        let idx: Vec<usize> = (0..8).collect();
        let a = assign_least_loaded(&vt, &idx, CapacityConfig { terminals_per_sat: 1 });
        // Five colocated terminals share passes; with capacity 1 per sat
        // not all demand can be met whenever fewer than 5 sats are up.
        assert!(a.service_ratio() < 1.0, "ratio {}", a.service_ratio());
        assert!(a.service_ratio() > 0.0);
        assert_eq!(a.served_steps, a.load.iter().sum::<usize>());
    }

    #[test]
    fn service_monotone_in_capacity() {
        let vt = table(5);
        let idx: Vec<usize> = (0..8).collect();
        let r1 =
            assign_least_loaded(&vt, &idx, CapacityConfig { terminals_per_sat: 1 }).served_steps;
        let r2 =
            assign_least_loaded(&vt, &idx, CapacityConfig { terminals_per_sat: 2 }).served_steps;
        let r4 =
            assign_least_loaded(&vt, &idx, CapacityConfig { terminals_per_sat: 4 }).served_steps;
        assert!(r1 <= r2 && r2 <= r4, "{r1} {r2} {r4}");
    }

    #[test]
    fn spare_capacity_accounting() {
        let vt = table(2);
        let idx: Vec<usize> = (0..8).collect();
        let cfg = CapacityConfig { terminals_per_sat: 3 };
        let a = assign_least_loaded(&vt, &idx, cfg);
        let steps = vt.grid.steps;
        let spare = a.spare_capacity_steps(steps);
        let total = 3 * 8 * steps;
        assert_eq!(spare + a.load.iter().sum::<usize>(), total);
        // LEO sats over 2 terminals are mostly idle: spare dominates.
        assert!(spare as f64 / total as f64 > 0.9);
    }

    #[test]
    fn utilization_bounds() {
        let vt = table(4);
        let idx: Vec<usize> = (0..8).collect();
        let a = assign_least_loaded(&vt, &idx, CapacityConfig::default());
        let steps = vt.grid.steps;
        for pos in 0..idx.len() {
            let u = a.utilization(pos, steps);
            assert!((0.0..=1.0).contains(&u), "utilization {u}");
        }
    }

    /// A hand-built assignment for edge cases no scheduler run produces.
    fn manual_assignment(load: Vec<usize>, demand: usize, served: usize) -> Assignment {
        let sat_indices: Vec<usize> = (0..load.len()).collect();
        Assignment {
            served: Vec::new(),
            load,
            config: CapacityConfig { terminals_per_sat: 2 },
            sat_indices,
            demand_steps: demand,
            served_steps: served,
        }
    }

    #[test]
    fn service_ratio_with_no_demand_is_one() {
        let a = manual_assignment(vec![0, 0], 0, 0);
        assert_eq!(a.service_ratio(), 1.0, "no demand means nothing went unserved");
    }

    #[test]
    fn spare_capacity_saturates_when_load_exceeds_capacity() {
        // 2 sats x 2 terminals x 3 steps = 12 capacity-steps, load 20:
        // the subtraction must saturate at zero, not wrap.
        let a = manual_assignment(vec![12, 8], 20, 20);
        assert_eq!(a.spare_capacity_steps(3), 0);
        // And with zero steps, any recorded load still yields zero spare.
        assert_eq!(a.spare_capacity_steps(0), 0);
    }

    #[test]
    fn utilization_on_zero_step_grid_is_zero() {
        let a = manual_assignment(vec![4, 0], 0, 0);
        assert_eq!(a.utilization(0, 0), 0.0, "zero-step grids have no capacity to use");
        assert_eq!(a.utilization(1, 0), 0.0);
    }

    #[test]
    fn party_report_on_zero_step_grid() {
        let a = manual_assignment(vec![3, 5], 0, 0);
        let owner: HashMap<usize, PartyId> =
            [(0, PartyId::new("p0")), (1, PartyId::new("p1"))].into_iter().collect();
        let report = utilization_by_party(&a, 0, &owner);
        assert_eq!(report.len(), 2);
        for r in &report {
            assert_eq!(r.mean_utilization, 0.0, "{}: no steps, no utilization", r.party);
        }
        // Carried steps still aggregate the recorded load.
        let total: usize = report.iter().map(|r| r.carried_steps).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn party_report_partitions_load() {
        let vt = table(4);
        let idx: Vec<usize> = (0..8).collect();
        let a = assign_least_loaded(&vt, &idx, CapacityConfig::default());
        let owner: HashMap<usize, PartyId> =
            (0..8).map(|s| (s, PartyId::new(if s % 2 == 0 { "even" } else { "odd" }))).collect();
        let report = utilization_by_party(&a, vt.grid.steps, &owner);
        assert_eq!(report.len(), 2);
        let total: usize = report.iter().map(|r| r.carried_steps).sum();
        assert_eq!(total, a.load.iter().sum::<usize>());
    }
}
