//! Service-level tiers: what quality-of-service a constellation can sell.
//!
//! The paper's §4 market questions include "What kinds of quality-of-service
//! can they provide?". A constellation's sellable SLA is set by its
//! coverage distribution: availability, worst continuous outage, and outage
//! frequency. This module classifies a coverage bitset into industry-shaped
//! tiers (real-time, interactive, best-effort, delay-tolerant) and prices
//! the achievable tier under a simple premium schedule.

use leosim::coverage::CoverageStats;
use serde::Serialize;

/// A service tier with its admission requirements.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SlaTier {
    /// Tier name.
    pub name: &'static str,
    /// Minimum availability fraction.
    pub min_availability: f64,
    /// Maximum tolerated continuous outage, seconds.
    pub max_outage_s: f64,
    /// Price multiplier relative to best-effort.
    pub price_multiplier: f64,
}

/// The built-in tier ladder, strictest first.
pub fn standard_tiers() -> Vec<SlaTier> {
    vec![
        SlaTier {
            name: "real-time",
            min_availability: 0.999,
            max_outage_s: 10.0 * 60.0,
            price_multiplier: 4.0,
        },
        SlaTier {
            name: "interactive",
            min_availability: 0.99,
            max_outage_s: 30.0 * 60.0,
            price_multiplier: 2.5,
        },
        SlaTier {
            name: "best-effort",
            min_availability: 0.9,
            max_outage_s: 2.0 * 3600.0,
            price_multiplier: 1.0,
        },
        SlaTier {
            name: "delay-tolerant",
            min_availability: 0.0,
            max_outage_s: f64::INFINITY,
            price_multiplier: 0.25,
        },
    ]
}

/// Pick the strictest tier the measured coverage satisfies.
pub fn classify(stats: &CoverageStats, tiers: &[SlaTier]) -> SlaTier {
    tiers
        .iter()
        .find(|t| stats.covered_fraction >= t.min_availability && stats.max_gap_s <= t.max_outage_s)
        .cloned()
        .unwrap_or_else(|| tiers.last().expect("tier ladder non-empty").clone())
}

/// An SLA quote: the achievable tier plus headroom diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SlaQuote {
    /// The tier granted.
    pub tier: SlaTier,
    /// Measured availability.
    pub availability: f64,
    /// Measured worst outage, seconds.
    pub worst_outage_s: f64,
    /// Availability shortfall to the next stricter tier (None at the top).
    pub next_tier_gap: Option<f64>,
}

/// Quote the SLA for a coverage measurement.
pub fn quote(stats: &CoverageStats) -> SlaQuote {
    let tiers = standard_tiers();
    let tier = classify(stats, &tiers);
    let pos = tiers.iter().position(|t| t.name == tier.name).expect("tier from ladder");
    let next_tier_gap = if pos == 0 {
        None
    } else {
        Some((tiers[pos - 1].min_availability - stats.covered_fraction).max(0.0))
    };
    SlaQuote {
        tier,
        availability: stats.covered_fraction,
        worst_outage_s: stats.max_gap_s,
        next_tier_gap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leosim::{TimeBitset, TimeGrid};
    use orbital::time::Epoch;

    fn grid(steps: usize) -> TimeGrid {
        TimeGrid::new(Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0), (steps - 1) as f64 * 60.0, 60.0)
    }

    fn stats_for(covered: &TimeBitset, g: &TimeGrid) -> CoverageStats {
        CoverageStats::from_bitset(covered, g)
    }

    #[test]
    fn full_coverage_is_realtime() {
        let g = grid(1000);
        let s = stats_for(&TimeBitset::ones(1000), &g);
        let q = quote(&s);
        assert_eq!(q.tier.name, "real-time");
        assert!(q.next_tier_gap.is_none());
        assert_eq!(q.worst_outage_s, 0.0);
    }

    #[test]
    fn high_availability_but_long_gap_demoted() {
        // 99.95% availability but one 3-hour gap: not even best-effort's
        // 2 h outage bound -> delay-tolerant.
        let g = grid(400_000);
        let mut b = TimeBitset::ones(400_000);
        for k in 1000..1180 {
            b.clear(k); // 180 min gap
        }
        let s = stats_for(&b, &g);
        assert!(s.covered_fraction > 0.999);
        let q = quote(&s);
        assert_eq!(q.tier.name, "delay-tolerant", "long outage dominates availability");
    }

    #[test]
    fn tier_ladder_monotone() {
        let tiers = standard_tiers();
        for w in tiers.windows(2) {
            assert!(w[0].min_availability >= w[1].min_availability);
            assert!(w[0].max_outage_s <= w[1].max_outage_s);
            assert!(w[0].price_multiplier >= w[1].price_multiplier);
        }
    }

    #[test]
    fn sparse_coverage_is_delay_tolerant() {
        let g = grid(1000);
        let mut b = TimeBitset::zeros(1000);
        for k in (0..1000).step_by(50) {
            b.set(k);
        }
        let q = quote(&stats_for(&b, &g));
        assert_eq!(q.tier.name, "delay-tolerant");
        assert_eq!(q.tier.price_multiplier, 0.25);
    }

    #[test]
    fn interactive_band() {
        // 99.2% availability with 20-minute worst gaps -> interactive.
        let g = grid(10_000);
        let mut b = TimeBitset::ones(10_000);
        for gap_start in [1000usize, 4000, 7000] {
            for k in gap_start..gap_start + 20 {
                b.clear(k);
            }
        }
        let s = stats_for(&b, &g);
        assert!(s.covered_fraction > 0.99 && s.covered_fraction < 0.999);
        let q = quote(&s);
        assert_eq!(q.tier.name, "interactive");
        let gap = q.next_tier_gap.unwrap();
        assert!(gap > 0.0, "needs more availability for real-time");
    }

    #[test]
    fn classify_against_custom_ladder() {
        let custom = vec![SlaTier {
            name: "only",
            min_availability: 0.0,
            max_outage_s: f64::INFINITY,
            price_multiplier: 1.0,
        }];
        let g = grid(100);
        let t = classify(&stats_for(&TimeBitset::zeros(100), &g), &custom);
        assert_eq!(t.name, "only");
    }
}
