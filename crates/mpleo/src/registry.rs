//! The multi-party constellation registry.
//!
//! Tracks which party contributed which satellite and supports the
//! operations the robustness experiments need: withdrawal of a party,
//! stake queries, and shuffled (interleaved) assignment — the paper's §3.3
//! observation that coverage-optimal constellations naturally intersperse
//! satellites of different parties rather than clustering them.

use crate::party::{allocate_by_ratio, Party, PartyId, PartyKind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Ownership map over a constellation of `sat_count` satellites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstellationRegistry {
    /// Number of satellites under management.
    pub sat_count: usize,
    /// The participating parties (with their satellite indices).
    pub parties: Vec<Party>,
}

impl ConstellationRegistry {
    /// Build a registry by allocating `sat_count` satellites across parties
    /// with the given stake ratios.
    ///
    /// If `shuffle` is provided, satellite indices are randomly interleaved
    /// across parties (the coverage-optimal "interspersed" arrangement);
    /// otherwise parties receive contiguous index blocks (the clustered
    /// arrangement, useful as a worst-case comparator).
    pub fn from_ratios(
        sat_count: usize,
        ratios: &[f64],
        kind: PartyKind,
        shuffle: Option<&mut StdRng>,
    ) -> Self {
        let counts = allocate_by_ratio(sat_count, ratios);
        Self::from_counts(sat_count, &counts, kind, shuffle)
    }

    /// Build a registry from explicit per-party satellite counts.
    ///
    /// Each party's index list is sorted here, once, at build time —
    /// [`Self::remaining_after_withdrawal`] relies on that precomputed
    /// ordering on its hot path.
    pub fn from_counts(
        sat_count: usize,
        counts: &[usize],
        kind: PartyKind,
        shuffle: Option<&mut StdRng>,
    ) -> Self {
        assert_eq!(counts.iter().sum::<usize>(), sat_count, "counts must cover all satellites");
        let mut indices: Vec<usize> = (0..sat_count).collect();
        if let Some(rng) = shuffle {
            indices.shuffle(rng);
        }
        let mut parties = Vec::with_capacity(counts.len());
        let mut cursor = 0;
        for (pi, &c) in counts.iter().enumerate() {
            let mut sats: Vec<usize> = indices[cursor..cursor + c].to_vec();
            sats.sort_unstable();
            parties.push(Party {
                id: PartyId::new(format!("party-{pi:02}")),
                kind,
                satellites: sats,
            });
            cursor += c;
        }
        ConstellationRegistry { sat_count, parties }
    }

    /// The party with the largest stake (first on ties).
    pub fn largest_party(&self) -> &Party {
        self.parties.iter().max_by_key(|p| p.stake()).expect("registry has at least one party")
    }

    /// Find a party by id.
    pub fn party(&self, id: &PartyId) -> Option<&Party> {
        self.parties.iter().find(|p| &p.id == id)
    }

    /// Stake fraction of a party, `[0, 1]`.
    pub fn stake_fraction(&self, id: &PartyId) -> f64 {
        self.party(id).map(|p| p.stake() as f64 / self.sat_count as f64).unwrap_or(0.0)
    }

    /// Satellite indices remaining if `id` withdraws.
    ///
    /// Hot path for the robustness and churn experiments, which withdraw
    /// repeatedly over many runs. [`Self::from_counts`] sorts each party's
    /// index list at build time, so the withdrawn set is already a sorted
    /// index set and one merge sweep over `0..sat_count` suffices — no
    /// per-call hash set.
    pub fn remaining_after_withdrawal(&self, id: &PartyId) -> Vec<usize> {
        let withdrawn: &[usize] = self.party(id).map(|p| p.satellites.as_slice()).unwrap_or(&[]);
        debug_assert!(
            withdrawn.windows(2).all(|w| w[0] < w[1]),
            "party index lists are sorted at build time"
        );
        let mut remaining = Vec::with_capacity(self.sat_count.saturating_sub(withdrawn.len()));
        let mut w = 0;
        for i in 0..self.sat_count {
            while w < withdrawn.len() && withdrawn[w] < i {
                w += 1;
            }
            if w < withdrawn.len() && withdrawn[w] == i {
                continue;
            }
            remaining.push(i);
        }
        remaining
    }

    /// All satellite indices.
    pub fn all_indices(&self) -> Vec<usize> {
        (0..self.sat_count).collect()
    }

    /// Check internal consistency: every satellite owned exactly once.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = vec![false; self.sat_count];
        for p in &self.parties {
            for &s in &p.satellites {
                if s >= self.sat_count {
                    return Err(format!("{}: satellite {s} out of range", p.id));
                }
                if seen[s] {
                    return Err(format!("satellite {s} owned twice"));
                }
                seen[s] = true;
            }
        }
        if let Some(orphan) = seen.iter().position(|&v| !v) {
            return Err(format!("satellite {orphan} unowned"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::party::skewed_ratios;
    use rand::SeedableRng;

    #[test]
    fn contiguous_assignment() {
        let reg = ConstellationRegistry::from_counts(10, &[4, 6], PartyKind::Country, None);
        assert_eq!(reg.parties[0].satellites, vec![0, 1, 2, 3]);
        assert_eq!(reg.parties[1].satellites, vec![4, 5, 6, 7, 8, 9]);
        reg.validate().unwrap();
    }

    #[test]
    fn shuffled_assignment_valid_and_interleaved() {
        let mut rng = StdRng::seed_from_u64(7);
        let reg = ConstellationRegistry::from_ratios(
            100,
            &skewed_ratios(1.0, 9),
            PartyKind::Company,
            Some(&mut rng),
        );
        reg.validate().unwrap();
        // With shuffling, party 0's satellites should not be the contiguous
        // prefix (probability of that is astronomically small).
        assert_ne!(reg.parties[0].satellites, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn largest_party_and_stake() {
        let reg = ConstellationRegistry::from_ratios(
            1000,
            &skewed_ratios(10.0, 10),
            PartyKind::Country,
            None,
        );
        let big = reg.largest_party();
        assert_eq!(big.stake(), 500);
        assert!((reg.stake_fraction(&big.id) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn withdrawal_removes_only_that_party() {
        let mut rng = StdRng::seed_from_u64(1);
        let reg = ConstellationRegistry::from_ratios(
            100,
            &skewed_ratios(3.0, 4),
            PartyKind::Country,
            Some(&mut rng),
        );
        let id = reg.largest_party().id.clone();
        let remaining = reg.remaining_after_withdrawal(&id);
        assert_eq!(remaining.len(), 100 - reg.largest_party().stake());
        let withdrawn: std::collections::HashSet<usize> =
            reg.largest_party().satellites.iter().cloned().collect();
        assert!(remaining.iter().all(|i| !withdrawn.contains(i)));
    }

    #[test]
    fn repeated_withdrawal_is_idempotent_and_matches_set_filter() {
        // Regression for the sorted-sweep rewrite: repeated calls must
        // return identical results, and every shuffled registry must agree
        // with the straightforward set-based reference.
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let reg = ConstellationRegistry::from_ratios(
                97,
                &skewed_ratios(2.0, 5),
                PartyKind::Company,
                Some(&mut rng),
            );
            for party in &reg.parties {
                let first = reg.remaining_after_withdrawal(&party.id);
                let second = reg.remaining_after_withdrawal(&party.id);
                assert_eq!(first, second, "repeated withdrawal must be idempotent");
                let withdrawn: std::collections::HashSet<usize> =
                    party.satellites.iter().cloned().collect();
                let reference: Vec<usize> =
                    (0..reg.sat_count).filter(|i| !withdrawn.contains(i)).collect();
                assert_eq!(first, reference, "sweep must match the set filter");
                assert!(first.windows(2).all(|w| w[0] < w[1]), "output stays sorted");
            }
        }
    }

    #[test]
    fn withdrawal_of_whole_registry_leaves_nothing() {
        let reg = ConstellationRegistry::from_counts(6, &[6], PartyKind::Country, None);
        assert!(reg.remaining_after_withdrawal(&reg.parties[0].id).is_empty());
    }

    #[test]
    fn withdrawal_of_unknown_party_is_noop() {
        let reg = ConstellationRegistry::from_counts(5, &[5], PartyKind::Country, None);
        let remaining = reg.remaining_after_withdrawal(&PartyId::new("ghost"));
        assert_eq!(remaining.len(), 5);
    }

    #[test]
    fn validate_detects_double_ownership() {
        let mut reg = ConstellationRegistry::from_counts(4, &[2, 2], PartyKind::Country, None);
        reg.parties[1].satellites[0] = 0; // now 0 owned twice, 2 orphaned
        assert!(reg.validate().is_err());
    }

    #[test]
    #[should_panic]
    fn counts_must_cover() {
        ConstellationRegistry::from_counts(10, &[4, 4], PartyKind::Country, None);
    }
}
