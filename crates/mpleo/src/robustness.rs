//! Withdrawal robustness experiments (the paper's §3.4, Figs. 5 and 6).
//!
//! * [`withdrawal_loss`] — the coverage lost when a set of satellites denies
//!   service, in population-weighted seconds and percent.
//! * [`half_withdrawal_experiment`] — Fig. 5: withdraw a random half of an
//!   L-satellite constellation, for L in {200, 500, 1000, 2000}.
//! * [`skewed_withdrawal_experiment`] — Fig. 6: 1000 satellites split across
//!   11 parties with stake ratio r:1:…:1; the largest party withdraws.

use crate::party::skewed_ratios;
use crate::placement::weighted_coverage_s;
use crate::registry::ConstellationRegistry;
use leosim::coverage::Aggregate;
use leosim::montecarlo::{run_experiment, run_rng, sample_indices, sample_split};
use leosim::visibility::VisibilityTable;
use serde::{Deserialize, Serialize};

/// Outcome of one withdrawal evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WithdrawalLoss {
    /// Population-weighted coverage before withdrawal, seconds.
    pub before_s: f64,
    /// Population-weighted coverage after withdrawal, seconds.
    pub after_s: f64,
    /// Absolute loss, seconds.
    pub loss_s: f64,
    /// Loss as a percentage of the simulated horizon (the paper's Fig. 5/6
    /// y-axis: "reduction in coverage").
    pub loss_pct_of_horizon: f64,
}

/// Coverage loss when `withdrawn` satellites (indices into `vt`) stop
/// serving, starting from the constellation `all`.
pub fn withdrawal_loss(
    vt: &VisibilityTable,
    all: &[usize],
    withdrawn: &[usize],
    weights: &[f64],
) -> WithdrawalLoss {
    let withdrawn_set: std::collections::HashSet<usize> = withdrawn.iter().cloned().collect();
    let remaining: Vec<usize> =
        all.iter().cloned().filter(|i| !withdrawn_set.contains(i)).collect();
    let before_s = weighted_coverage_s(vt, all, weights);
    let after_s = weighted_coverage_s(vt, &remaining, weights);
    let horizon = vt.grid.duration_s().max(vt.grid.step_s);
    let loss_s = before_s - after_s;
    WithdrawalLoss { before_s, after_s, loss_s, loss_pct_of_horizon: 100.0 * loss_s / horizon }
}

/// Fig. 5 body: build a base constellation of `l` satellites sampled from
/// the pool, withdraw a random half, and report the loss percentage.
/// Repeated `runs` times with deterministic seeding; the runs execute in
/// parallel on the shared `simrt` pool with per-run RNG streams, so the
/// aggregate is bit-identical at any thread count.
pub fn half_withdrawal_experiment(
    vt_pool: &VisibilityTable,
    l: usize,
    weights: &[f64],
    runs: usize,
    seed: u64,
) -> Aggregate {
    let n = vt_pool.sat_count();
    assert!(l <= n, "constellation {l} larger than pool {n}");
    run_experiment(seed, runs, |rng, _| {
        let base = sample_indices(rng, n, l);
        let (withdrawn_pos, _) = sample_split(rng, l, l / 2);
        let withdrawn: Vec<usize> = withdrawn_pos.iter().map(|&p| base[p]).collect();
        withdrawal_loss(vt_pool, &base, &withdrawn, weights).loss_pct_of_horizon
    })
}

/// Fig. 6 body: `total` satellites sampled from the pool are split across
/// `1 + others` parties with stake ratio `r:1:…:1` (satellites interleaved
/// randomly, the coverage-optimal arrangement); the largest party withdraws.
/// Runs execute in parallel on the shared `simrt` pool; every RNG stream is
/// derived from `(seed, run)`, so results do not depend on thread count.
pub fn skewed_withdrawal_experiment(
    vt_pool: &VisibilityTable,
    total: usize,
    r: f64,
    others: usize,
    weights: &[f64],
    runs: usize,
    seed: u64,
) -> Aggregate {
    let n = vt_pool.sat_count();
    assert!(total <= n, "constellation {total} larger than pool {n}");
    run_experiment(seed, runs, |rng, run| {
        let base = sample_indices(rng, n, total);
        let mut reg_rng = run_rng(seed ^ 0xA5A5, run as u64);
        let reg = ConstellationRegistry::from_ratios(
            total,
            &skewed_ratios(r, others),
            crate::party::PartyKind::Country,
            Some(&mut reg_rng),
        );
        let largest = reg.largest_party();
        let withdrawn: Vec<usize> = largest.satellites.iter().map(|&p| base[p]).collect();
        withdrawal_loss(vt_pool, &base, &withdrawn, weights).loss_pct_of_horizon
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use leosim::visibility::SimConfig;
    use leosim::TimeGrid;
    use orbital::constellation::{walker_delta, ShellSpec};
    use orbital::time::Epoch;

    fn epoch() -> Epoch {
        Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
    }

    fn pool_table(planes: u32, per_plane: u32, mask_deg: f64) -> (VisibilityTable, Vec<f64>) {
        let spec = ShellSpec { planes, sats_per_plane: per_plane, ..ShellSpec::starlink_like() };
        let sats = walker_delta(&spec, epoch());
        let sites = vec![fixtures::tokyo(), fixtures::sao_paulo(), fixtures::new_york()];
        let weights = vec![0.5, 0.25, 0.25];
        let grid = TimeGrid::new(epoch(), 86_400.0, 120.0);
        let cfg = SimConfig::default().with_mask_deg(mask_deg);
        (VisibilityTable::compute(&sats, &sites, &grid, &cfg), weights)
    }

    #[test]
    fn loss_fields_consistent() {
        let (vt, w) = pool_table(8, 8, 25.0);
        let all: Vec<usize> = (0..64).collect();
        let withdrawn: Vec<usize> = (0..32).collect();
        let loss = withdrawal_loss(&vt, &all, &withdrawn, &w);
        assert!(loss.before_s >= loss.after_s);
        assert!((loss.loss_s - (loss.before_s - loss.after_s)).abs() < 1e-9);
        assert!(loss.loss_pct_of_horizon >= 0.0);
    }

    #[test]
    fn withdrawing_nothing_loses_nothing() {
        let (vt, w) = pool_table(4, 4, 25.0);
        let all: Vec<usize> = (0..16).collect();
        let loss = withdrawal_loss(&vt, &all, &[], &w);
        assert_eq!(loss.loss_s, 0.0);
    }

    #[test]
    fn withdrawing_everything_loses_everything() {
        let (vt, w) = pool_table(4, 4, 25.0);
        let all: Vec<usize> = (0..16).collect();
        let loss = withdrawal_loss(&vt, &all, &all, &w);
        assert!((loss.after_s - 0.0).abs() < 1e-9);
        assert!((loss.loss_s - loss.before_s).abs() < 1e-9);
    }

    #[test]
    fn bigger_constellations_lose_less_fig5_shape() {
        // Fig. 5: percentage loss from withdrawing half shrinks as the
        // constellation grows.
        let (vt, w) = pool_table(16, 10, 5.0); // pool of 160, low mask -> saturating coverage
        let small = half_withdrawal_experiment(&vt, 20, &w, 10, 42);
        let large = half_withdrawal_experiment(&vt, 140, &w, 10, 42);
        assert!(small.mean > large.mean, "L=20 loss {}% vs L=140 loss {}%", small.mean, large.mean);
    }

    #[test]
    fn skew_increases_loss_fig6_shape() {
        // Fig. 6: the more skewed the stakes, the larger the loss when the
        // largest party leaves.
        let (vt, w) = pool_table(16, 10, 5.0);
        let equal = skewed_withdrawal_experiment(&vt, 110, 1.0, 10, &w, 10, 7);
        let skewed = skewed_withdrawal_experiment(&vt, 110, 10.0, 10, &w, 10, 7);
        assert!(skewed.mean > equal.mean, "equal {}% vs 10:1 {}%", equal.mean, skewed.mean);
    }

    #[test]
    fn experiments_reproducible() {
        let (vt, w) = pool_table(8, 8, 25.0);
        let a = half_withdrawal_experiment(&vt, 30, &w, 5, 99);
        let b = half_withdrawal_experiment(&vt, 30, &w, 5, 99);
        assert_eq!(a.mean, b.mean);
    }
}
