//! Demand-driven market order flow.
//!
//! The paper's capacity market (§3.2) trades spare terminal capacity
//! between parties. Earlier experiments fed the order book synthetic
//! orders; this module derives them from the traffic engine instead: the
//! horizon is cut into epochs, each party's traffic is summarized per
//! epoch, and a deficit (unserved demand of its cities) becomes a bid
//! while a surplus (unused capacity of its engaged satellites) becomes an
//! ask. Ask prices rise with the seller's utilization and always sit
//! below the bid price, so books with both sides present clear — at the
//! resting order's price, like every other `dcp::market` participant.

use crate::engine::TrafficReport;
use dcp::crypto::KeyDirectory;
use dcp::market::{make_order, OrderBook};
use dcp::messages::MarketOrder;
use mpleo::party::PartyId;
use serde::{Deserialize, Serialize};

/// One party's traffic position over an epoch (epoch means, Mbps).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartyEpoch {
    /// The party.
    pub party: PartyId,
    /// Mean offered load of the party's cities.
    pub offered_mbps: f64,
    /// Mean served load of the party's cities.
    pub served_mbps: f64,
    /// Mean traffic carried by the party's satellites.
    pub carried_mbps: f64,
    /// Mean unused capacity of the party's engaged satellites.
    pub spare_mbps: f64,
}

impl PartyEpoch {
    /// Unserved demand (the party's buying interest), Mbps.
    pub fn deficit_mbps(&self) -> f64 {
        (self.offered_mbps - self.served_mbps).max(0.0)
    }

    /// Utilization of the party's engaged capacity, `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let engaged = self.carried_mbps + self.spare_mbps;
        if engaged <= 0.0 {
            0.0
        } else {
            self.carried_mbps / engaged
        }
    }
}

/// Per-epoch market inputs for every party.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochSummary {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// First grid step of the epoch.
    pub start_step: usize,
    /// Steps covered (the last epoch may be short).
    pub steps: usize,
    /// Per-party positions, report party order.
    pub per_party: Vec<PartyEpoch>,
}

/// Cut the report's horizon into epochs of `epoch_steps` grid steps and
/// average each party's series within each epoch.
pub fn summarize_epochs(report: &TrafficReport, epoch_steps: usize) -> Vec<EpochSummary> {
    assert!(epoch_steps >= 1, "epochs need at least one step");
    let mut out = Vec::new();
    let mut start = 0;
    while start < report.steps {
        let len = epoch_steps.min(report.steps - start);
        let per_party = report
            .parties
            .iter()
            .enumerate()
            .map(|(p, party)| {
                let mean = |series: &[f64]| {
                    series[p * report.steps + start..p * report.steps + start + len]
                        .iter()
                        .sum::<f64>()
                        / len as f64
                };
                PartyEpoch {
                    party: party.clone(),
                    offered_mbps: mean(&report.party_offered),
                    served_mbps: mean(&report.party_served),
                    carried_mbps: mean(&report.party_carried),
                    spare_mbps: mean(&report.party_spare),
                }
            })
            .collect();
        out.push(EpochSummary { epoch: out.len(), start_step: start, steps: len, per_party });
        start += len;
    }
    out
}

/// Convert epoch summaries into signed orders: one bid per (epoch, party)
/// with a deficit of at least 1 Mbps, one ask per (epoch, party) with at
/// least 1 Mbps of spare. Quantities are Mbps rounded to integers; prices
/// are credits per Mbps-epoch. Sequence numbers encode (epoch, party,
/// side) so replays are idempotent and ordering is deterministic.
pub fn epoch_orders(
    summaries: &[EpochSummary],
    keys: &KeyDirectory,
    base_price: f64,
) -> Vec<MarketOrder> {
    assert!(base_price > 0.0, "price must be positive");
    let mut orders = Vec::new();
    for summary in summaries {
        let parties = summary.per_party.len() as u64;
        for (p, pe) in summary.per_party.iter().enumerate() {
            let seq_base = (summary.epoch as u64 * parties + p as u64) * 2;
            let deficit = pe.deficit_mbps();
            if deficit >= 1.0 {
                // Buyers pay a premium over any ask the book can hold.
                let price = round2(base_price * 1.5);
                if let Some(o) =
                    make_order(keys, &pe.party.0, true, price, deficit.round() as u64, seq_base)
                {
                    orders.push(o);
                }
            }
            if pe.spare_mbps >= 1.0 {
                // Busier sellers ask more; the range [0.6, 1.0] × base
                // stays strictly below the 1.5 × base bids.
                let price = round2(base_price * (0.6 + 0.4 * pe.utilization()));
                if let Some(o) = make_order(
                    keys,
                    &pe.party.0,
                    false,
                    price,
                    pe.spare_mbps.round() as u64,
                    seq_base + 1,
                ) {
                    orders.push(o);
                }
            }
        }
    }
    orders
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Run the orders through a fresh deterministic book, in submission order.
pub fn clear_market(orders: &[MarketOrder]) -> OrderBook {
    let mut book = OrderBook::new();
    for o in orders {
        book.submit(o.clone());
    }
    book
}

/// Register every party's derived signing key in a fresh directory
/// (deterministic: party name + the shared seed material).
pub fn party_keys(parties: &[PartyId], seed: &[u8]) -> KeyDirectory {
    let mut keys = KeyDirectory::new();
    for p in parties {
        keys.register_derived(&p.0, seed);
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_two_parties() -> TrafficReport {
        // Hand-built report: party 0 is short (offered 100, served 40),
        // party 1 is long (spare 500, carries 60).
        let steps = 4;
        TrafficReport {
            cities: vec!["A".into(), "B".into()],
            parties: vec![PartyId::new("short"), PartyId::new("long")],
            steps,
            step_s: 600.0,
            offered_mean_mbps: vec![100.0, 10.0],
            served_mean_mbps: vec![40.0, 10.0],
            latency: vec![],
            total_offered_steps: vec![110.0; steps],
            total_served_steps: vec![50.0; steps],
            party_offered: [vec![100.0; steps], vec![10.0; steps]].concat(),
            party_served: [vec![40.0; steps], vec![10.0; steps]].concat(),
            party_carried: [vec![0.0; steps], vec![60.0; steps]].concat(),
            party_spare: [vec![0.0; steps], vec![500.0; steps]].concat(),
        }
    }

    #[test]
    fn epochs_cover_the_horizon() {
        let r = report_two_parties();
        let s = summarize_epochs(&r, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].steps, 3);
        assert_eq!(s[1].steps, 1, "tail epoch is short");
        assert_eq!(s[0].per_party[0].deficit_mbps(), 60.0);
        assert_eq!(s[0].per_party[1].spare_mbps, 500.0);
    }

    #[test]
    fn deficit_becomes_bid_and_spare_becomes_ask() {
        let r = report_two_parties();
        let parties = r.parties.clone();
        let keys = party_keys(&parties, b"traffic-test");
        let orders = epoch_orders(&summarize_epochs(&r, 4), &keys, 1.0);
        let bids: Vec<_> = orders.iter().filter(|o| o.is_bid).collect();
        let asks: Vec<_> = orders.iter().filter(|o| !o.is_bid).collect();
        assert_eq!(bids.len(), 1);
        assert_eq!(bids[0].party, "short");
        assert_eq!(bids[0].quantity, 60);
        assert_eq!(asks.len(), 1);
        assert_eq!(asks[0].party, "long");
        assert_eq!(asks[0].quantity, 500);
        assert!(asks[0].price < bids[0].price, "books must cross");
        // Signatures verify against the directory.
        for o in &orders {
            assert!(dcp::market::verify_order(&keys, o));
        }
    }

    #[test]
    fn market_clears_zero_sum() {
        let r = report_two_parties();
        let keys = party_keys(&r.parties, b"traffic-test");
        let orders = epoch_orders(&summarize_epochs(&r, 2), &keys, 1.0);
        let book = clear_market(&orders);
        assert!(!book.trades().is_empty(), "crossed orders must trade");
        let net: f64 = book.settlement().values().sum();
        assert!(net.abs() < 1e-9, "settlement must be zero-sum: {net}");
        // The short party buys, the long party sells.
        let s = book.settlement();
        assert!(s["short"] < 0.0);
        assert!(s["long"] > 0.0);
    }

    #[test]
    fn balanced_party_stays_out_of_the_market() {
        let mut r = report_two_parties();
        // Make party 0 perfectly served and without satellites.
        r.party_served = r.party_offered.clone();
        let keys = party_keys(&r.parties, b"traffic-test");
        let orders = epoch_orders(&summarize_epochs(&r, 4), &keys, 1.0);
        assert!(orders.iter().all(|o| o.party != "short"));
    }

    #[test]
    fn order_flow_is_deterministic() {
        let r = report_two_parties();
        let keys = party_keys(&r.parties, b"traffic-test");
        let a = epoch_orders(&summarize_epochs(&r, 2), &keys, 1.0);
        let b = epoch_orders(&summarize_epochs(&r, 2), &keys, 1.0);
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_summaries() -> impl Strategy<Value = Vec<EpochSummary>> {
        (1usize..5, 1usize..4).prop_flat_map(|(n_parties, n_epochs)| {
            prop::collection::vec(
                (0.0f64..5000.0, 0.0f64..=1.0, 0.0f64..5000.0, 0.0f64..5000.0),
                n_parties * n_epochs,
            )
            .prop_map(move |cells| {
                (0..n_epochs)
                    .map(|e| EpochSummary {
                        epoch: e,
                        start_step: e * 6,
                        steps: 6,
                        per_party: (0..n_parties)
                            .map(|p| {
                                let (offered, served_frac, carried, spare) =
                                    cells[e * n_parties + p];
                                PartyEpoch {
                                    party: PartyId::new(format!("p{p}")),
                                    offered_mbps: offered,
                                    served_mbps: offered * served_frac,
                                    carried_mbps: carried,
                                    spare_mbps: spare,
                                }
                            })
                            .collect(),
                    })
                    .collect()
            })
        })
    }

    fn keys_for(summaries: &[EpochSummary]) -> KeyDirectory {
        let parties: Vec<PartyId> =
            summaries[0].per_party.iter().map(|pe| pe.party.clone()).collect();
        party_keys(&parties, b"market-proptest")
    }

    proptest! {
        /// However the epochs look, the cleared book settles zero-sum and
        /// every order verifies against the key directory.
        #[test]
        fn settlement_is_always_zero_sum(summaries in arb_summaries()) {
            let keys = keys_for(&summaries);
            let orders = epoch_orders(&summaries, &keys, 1.0);
            for o in &orders {
                prop_assert!(dcp::market::verify_order(&keys, o));
            }
            // (party, sequence) identifies an order: replays stay idempotent.
            let mut ids: Vec<(&str, u64)> =
                orders.iter().map(|o| (o.party.as_str(), o.sequence)).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), orders.len(), "duplicate order identity");
            let book = clear_market(&orders);
            let net: f64 = book.settlement().values().sum();
            prop_assert!(net.abs() < 1e-9, "settlement must be zero-sum: {}", net);
        }

        /// All-surplus epochs (every party fully served, spare on offer)
        /// produce asks only — nothing crosses, nothing settles.
        #[test]
        fn all_surplus_epochs_never_trade(mut summaries in arb_summaries()) {
            for s in &mut summaries {
                for pe in &mut s.per_party {
                    pe.served_mbps = pe.offered_mbps;
                    pe.spare_mbps = pe.spare_mbps.max(1.0);
                }
            }
            let keys = keys_for(&summaries);
            let orders = epoch_orders(&summaries, &keys, 1.0);
            prop_assert!(!orders.is_empty());
            prop_assert!(orders.iter().all(|o| !o.is_bid), "surplus must only ask");
            let book = clear_market(&orders);
            prop_assert!(book.trades().is_empty());
            prop_assert!(book.settlement().is_empty());
        }

        /// All-deficit epochs (every party starved, no spare) produce bids
        /// only — again no trades, and the settlement stays empty.
        #[test]
        fn all_deficit_epochs_never_trade(mut summaries in arb_summaries()) {
            for s in &mut summaries {
                for pe in &mut s.per_party {
                    pe.offered_mbps = pe.offered_mbps.max(2.0);
                    pe.served_mbps = 0.0;
                    pe.spare_mbps = 0.0;
                }
            }
            let keys = keys_for(&summaries);
            let orders = epoch_orders(&summaries, &keys, 1.0);
            prop_assert!(!orders.is_empty());
            prop_assert!(orders.iter().all(|o| o.is_bid), "deficit must only bid");
            let book = clear_market(&orders);
            prop_assert!(book.trades().is_empty());
            prop_assert!(book.settlement().is_empty());
        }

        /// Degenerate single-party epochs: with both a deficit and spare
        /// the party can only trade with itself, which nets to zero — the
        /// market never mints or burns credits for a lone participant.
        #[test]
        fn single_party_epochs_net_to_zero(
            offered in 10.0f64..5000.0,
            served_frac in 0.0f64..0.5,
            spare in 1.0f64..5000.0,
        ) {
            let pe = PartyEpoch {
                party: PartyId::new("lone"),
                offered_mbps: offered,
                served_mbps: offered * served_frac,
                carried_mbps: 10.0,
                spare_mbps: spare,
            };
            let summaries =
                vec![EpochSummary { epoch: 0, start_step: 0, steps: 6, per_party: vec![pe] }];
            let keys = keys_for(&summaries);
            let orders = epoch_orders(&summaries, &keys, 1.0);
            prop_assert!(!orders.is_empty());
            let book = clear_market(&orders);
            for (party, net) in book.settlement() {
                prop_assert!(net.abs() < 1e-9, "{} nets {}", party, net);
            }
        }
    }
}
