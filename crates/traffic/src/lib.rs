//! # traffic — the demand-driven traffic engine
//!
//! The paper's economic claim (parties trade *spare capacity* and the
//! constellation stays useful as participants churn, §1–2) is only as
//! credible as the load model behind it. This crate supplies that model:
//!
//! 1. [`demand`] — diurnal per-city offered load (Mbps) derived from the
//!    `geodata` populations: millions of users per metro, a local-solar-time
//!    diurnal shape, and seeded per-city jitter;
//! 2. [`graph`] — a per-step routing snapshot over a prebuilt
//!    [`leosim::ephemeris::EphemerisStore`]: terminal → satellite uplink,
//!    optional ISL hops, satellite → ground-station downlink, with link
//!    capacities from [`leosim::linkbudget`]; the production per-step
//!    computation is the grid-pruned [`pipeline`] step kernel;
//! 3. [`allocate`] — a max-min-fair (progressive-filling) flow allocator
//!    producing per-city served throughput under shared satellite and
//!    gateway capacity;
//! 4. [`engine`] — the driver tying the three together into a
//!    [`engine::TrafficReport`] (served/offered, drop rate, latency under
//!    load, per-party accounting);
//! 5. [`market`] — the epoch summarizer converting each party's
//!    surplus/deficit into signed [`dcp`] market orders, so the capacity
//!    market runs on demand-driven order flow;
//! 6. [`churn`] — time-scheduled campaigns of membership events (satellite
//!    fail/recover, party withdrawal, gateway outages, regional
//!    degradation) applied between engine steps, with per-step
//!    graceful-degradation metrics against the undisturbed baseline.
//!
//! Everything is deterministic: demand jitter comes from per-city seeded
//! streams, routing and allocation are pure functions of the ephemeris, and
//! the per-step fan-out runs on `simrt` with order-preserving collection —
//! results are byte-identical at any thread count.

pub mod allocate;
pub mod churn;
pub mod demand;
pub mod engine;
pub mod graph;
pub mod market;
pub mod pipeline;

pub use allocate::{AllocScratch, StepAllocation};
pub use churn::{
    run_campaign, run_campaign_with_routes, sample_failures, CampaignConfig, CampaignReport,
    ChurnEvent, ChurnSchedule, ChurnState,
};
pub use demand::{DemandConfig, DemandMatrix};
pub use engine::{
    run_traffic, run_traffic_with_routes, PartyTraffic, TrafficConfig, TrafficReport,
};
pub use graph::{gateways_every_nth, GraphConfig, Route, RouteTable, StepMask};
pub use pipeline::{StepKernel, StepScratch};
pub use market::{
    clear_market, epoch_orders, party_keys, summarize_epochs, EpochSummary, PartyEpoch,
};
