//! Max-min-fair flow allocation (progressive filling).
//!
//! At each step every routed city wants its offered load; the flows share
//! the access satellite's throughput and the landing gateway's backhaul.
//! The allocator implements the textbook progressive-filling algorithm:
//! all active flows grow at the same rate until either a flow reaches its
//! own cap (offered load or access-link capacity) or a shared resource
//! saturates, freezing every flow crossing it. The result is the unique
//! max-min-fair allocation for this resource model.
//!
//! The per-step computation is strictly sequential (city order, then
//! sorted resource order), so a step's output is a pure function of its
//! inputs; the engine fans steps out over `simrt` and collects them in
//! step order — byte-identical at any thread count.

use crate::graph::StepRoutes;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Allocation result for one step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StepAllocation {
    /// Served rate per city, Mbps (0 when unrouted).
    pub served_mbps: Vec<f64>,
    /// Traffic carried per access satellite, Mbps (store row → rate).
    pub sat_carried: BTreeMap<usize, f64>,
    /// Traffic landed per gateway, Mbps.
    pub gateway_carried: Vec<f64>,
}

impl StepAllocation {
    /// Total served rate, Mbps.
    pub fn total_served(&self) -> f64 {
        self.served_mbps.iter().sum()
    }
}

/// Reusable buffers for [`allocate_step_with`]: the engine's allocation
/// fan-out keeps one per `simrt` participant so the progressive-filling
/// rounds run with no per-step heap allocation in steady state (only the
/// returned [`StepAllocation`] is freshly allocated).
#[derive(Debug, Default)]
pub struct AllocScratch {
    caps: Vec<f64>,
    active: Vec<bool>,
    /// Engaged access satellites, sorted ascending (the dense stand-in for
    /// the old `BTreeMap` keyed by satellite: ascending iteration keeps
    /// every float reduction in the exact same order).
    engaged: Vec<usize>,
    sat_left: Vec<f64>,
    sat_members: Vec<Vec<usize>>,
    gw_left: Vec<f64>,
    gw_members: Vec<Vec<usize>>,
    live: Vec<usize>,
}

/// Clear the first `len` inner vectors, growing the pool as needed; inner
/// allocations persist across steps.
fn reset_member_pool(pool: &mut Vec<Vec<usize>>, len: usize) {
    if pool.len() < len {
        pool.resize_with(len, Vec::new);
    }
    for members in &mut pool[..len] {
        members.clear();
    }
}

/// Progressive-filling allocation of `offered` (Mbps per city) over the
/// step's routes, subject to per-satellite and per-gateway capacity.
pub fn allocate_step(
    offered: &[f64],
    routes: &StepRoutes,
    sat_capacity_mbps: f64,
    gateway_capacity_mbps: f64,
    n_gateways: usize,
) -> StepAllocation {
    allocate_step_with(
        &mut AllocScratch::default(),
        offered,
        routes,
        sat_capacity_mbps,
        gateway_capacity_mbps,
        n_gateways,
    )
}

/// [`allocate_step`] with caller-provided scratch. The shared-resource
/// state lives in dense arrays indexed by the sorted `engaged` satellite
/// list; every reduction iterates in the same ascending order as the old
/// `BTreeMap`-based implementation, so results are bit-identical.
pub fn allocate_step_with(
    scratch: &mut AllocScratch,
    offered: &[f64],
    routes: &StepRoutes,
    sat_capacity_mbps: f64,
    gateway_capacity_mbps: f64,
    n_gateways: usize,
) -> StepAllocation {
    assert_eq!(offered.len(), routes.routes.len(), "city sets differ");
    const EPS: f64 = 1e-9;

    let n = offered.len();
    let mut rate = vec![0.0f64; n];
    let AllocScratch { caps, active, engaged, sat_left, sat_members, gw_left, gw_members, live } =
        scratch;
    // Individual cap: offered load and the city's own access-link bound.
    caps.clear();
    caps.extend((0..n).map(|c| match &routes.routes[c] {
        Some(r) => offered[c].min(r.access_mbps).max(0.0),
        None => 0.0,
    }));
    active.clear();
    active.extend((0..n).map(|c| caps[c] > EPS));

    // Shared resources: remaining capacity + member cities. `engaged` is
    // sorted so slot order is satellite order; members are collected in a
    // second pass so each list is in ascending city order — both match the
    // old sorted-map iteration exactly.
    engaged.clear();
    engaged.extend(
        active
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(c, _)| routes.routes[c].as_ref().expect("active implies routed").sat),
    );
    engaged.sort_unstable();
    engaged.dedup();
    let slot_of = |engaged: &[usize], sat: usize| {
        engaged.binary_search(&sat).expect("engaged access satellite")
    };
    sat_left.clear();
    sat_left.resize(engaged.len(), sat_capacity_mbps);
    reset_member_pool(sat_members, engaged.len());
    gw_left.clear();
    gw_left.resize(n_gateways, gateway_capacity_mbps);
    reset_member_pool(gw_members, n_gateways);
    for (c, &is_active) in active.iter().enumerate() {
        if !is_active {
            continue;
        }
        let r = routes.routes[c].as_ref().expect("active implies routed");
        sat_members[slot_of(engaged, r.sat)].push(c);
        gw_members[r.gateway].push(c);
    }

    // Progressive filling: at most one flow or one resource freezes per
    // round, so the loop is bounded by cities + resources.
    for _round in 0..(n + engaged.len() + n_gateways + 1) {
        live.clear();
        live.extend((0..n).filter(|&c| active[c]));
        if live.is_empty() {
            break;
        }
        // Largest uniform increment every live flow can take.
        let mut delta = f64::INFINITY;
        for &c in live.iter() {
            delta = delta.min(caps[c] - rate[c]);
        }
        for (slot, &left) in sat_left.iter().enumerate() {
            let users = sat_members[slot].iter().filter(|&&c| active[c]).count();
            if users > 0 {
                delta = delta.min(left / users as f64);
            }
        }
        for (g, &left) in gw_left.iter().enumerate() {
            let users = gw_members[g].iter().filter(|&&c| active[c]).count();
            if users > 0 {
                delta = delta.min(left / users as f64);
            }
        }
        if !delta.is_finite() || delta < 0.0 {
            break;
        }
        // Apply the increment and charge the shared resources.
        for &c in live.iter() {
            rate[c] += delta;
            let r = routes.routes[c].as_ref().expect("live implies routed");
            sat_left[slot_of(engaged, r.sat)] -= delta;
            gw_left[r.gateway] -= delta;
        }
        // Freeze flows at their individual cap, then flows on a saturated
        // resource.
        for &c in live.iter() {
            if caps[c] - rate[c] <= EPS {
                active[c] = false;
            }
        }
        for (slot, &left) in sat_left.iter().enumerate() {
            if left <= EPS {
                for &c in &sat_members[slot] {
                    active[c] = false;
                }
            }
        }
        for (g, &left) in gw_left.iter().enumerate() {
            if left <= EPS {
                for &c in &gw_members[g] {
                    active[c] = false;
                }
            }
        }
        if delta <= EPS {
            break;
        }
    }

    let mut sat_carried: BTreeMap<usize, f64> = BTreeMap::new();
    let mut gateway_carried = vec![0.0f64; n_gateways];
    for (c, &r_mbps) in rate.iter().enumerate() {
        if r_mbps > 0.0 {
            let r = routes.routes[c].as_ref().expect("rate implies routed");
            *sat_carried.entry(r.sat).or_insert(0.0) += r_mbps;
            gateway_carried[r.gateway] += r_mbps;
        }
    }
    StepAllocation { served_mbps: rate, sat_carried, gateway_carried }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Route;

    fn route(sat: usize, gateway: usize, access_mbps: f64) -> Option<Route> {
        Some(Route { sat, gateway, hops: 0, path_km: 1000.0, latency_ms: 5.0, access_mbps })
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh() {
        // One scratch across dissimilar steps (different city counts,
        // engaged satellites, gateways) must not leak state between calls.
        let steps = [
            StepRoutes { routes: vec![route(5, 2, 1e9), route(1, 0, 40.0), None] },
            StepRoutes { routes: vec![route(0, 0, 1e9)] },
            StepRoutes {
                routes: vec![route(3, 1, 120.0), route(3, 1, 1e9), route(4, 2, 1e9), None],
            },
        ];
        let offers: [&[f64]; 3] = [&[100.0, 90.0, 10.0], &[500.0], &[80.0, 80.0, 80.0, 5.0]];
        let mut scratch = AllocScratch::default();
        for (routes, offered) in steps.iter().zip(offers) {
            let reused = allocate_step_with(&mut scratch, offered, routes, 150.0, 200.0, 3);
            let fresh = allocate_step(offered, routes, 150.0, 200.0, 3);
            for (a, b) in reused.served_mbps.iter().zip(&fresh.served_mbps) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(reused.sat_carried, fresh.sat_carried);
            assert_eq!(reused.gateway_carried, fresh.gateway_carried);
        }
    }

    #[test]
    fn unconstrained_serves_everything() {
        let routes = StepRoutes { routes: vec![route(0, 0, 1e9), route(1, 0, 1e9)] };
        let a = allocate_step(&[100.0, 50.0], &routes, 1e9, 1e9, 1);
        assert!((a.served_mbps[0] - 100.0).abs() < 1e-6);
        assert!((a.served_mbps[1] - 50.0).abs() < 1e-6);
        assert!((a.gateway_carried[0] - 150.0).abs() < 1e-6);
    }

    #[test]
    fn shared_satellite_splits_fairly() {
        // Two equal flows on one satellite of capacity 100: 50 each.
        let routes = StepRoutes { routes: vec![route(7, 0, 1e9), route(7, 0, 1e9)] };
        let a = allocate_step(&[500.0, 500.0], &routes, 100.0, 1e9, 1);
        assert!((a.served_mbps[0] - 50.0).abs() < 1e-6, "{:?}", a.served_mbps);
        assert!((a.served_mbps[1] - 50.0).abs() < 1e-6);
        assert!((a.sat_carried[&7] - 100.0).abs() < 1e-6);
    }

    #[test]
    fn max_min_redistributes_slack() {
        // A small flow (10) and a big one share a 100-capacity satellite:
        // max-min gives the big flow the leftover 90, not just 50.
        let routes = StepRoutes { routes: vec![route(0, 0, 1e9), route(0, 0, 1e9)] };
        let a = allocate_step(&[10.0, 500.0], &routes, 100.0, 1e9, 1);
        assert!((a.served_mbps[0] - 10.0).abs() < 1e-6);
        assert!((a.served_mbps[1] - 90.0).abs() < 1e-6, "{:?}", a.served_mbps);
    }

    #[test]
    fn gateway_bottleneck_caps_the_sum() {
        // Three flows on distinct satellites land on one 60-Mbps gateway.
        let routes =
            StepRoutes { routes: vec![route(0, 0, 1e9), route(1, 0, 1e9), route(2, 0, 1e9)] };
        let a = allocate_step(&[100.0, 100.0, 100.0], &routes, 1e9, 60.0, 1);
        for r in &a.served_mbps {
            assert!((r - 20.0).abs() < 1e-6, "{:?}", a.served_mbps);
        }
        assert!((a.gateway_carried[0] - 60.0).abs() < 1e-6);
    }

    #[test]
    fn access_link_bounds_a_single_flow() {
        let routes = StepRoutes { routes: vec![route(0, 0, 30.0)] };
        let a = allocate_step(&[100.0], &routes, 1e9, 1e9, 1);
        assert!((a.served_mbps[0] - 30.0).abs() < 1e-6);
    }

    #[test]
    fn unrouted_cities_get_nothing() {
        let routes = StepRoutes { routes: vec![None, route(0, 0, 1e9)] };
        let a = allocate_step(&[100.0, 100.0], &routes, 1e9, 1e9, 1);
        assert_eq!(a.served_mbps[0], 0.0);
        assert!(a.served_mbps[1] > 0.0);
    }

    #[test]
    fn served_never_exceeds_offered_or_capacity() {
        // A mixed scenario; spot-check global invariants.
        let routes = StepRoutes {
            routes: vec![
                route(0, 0, 200.0),
                route(0, 1, 1e9),
                route(1, 0, 1e9),
                None,
                route(1, 1, 50.0),
            ],
        };
        let offered = [120.0, 300.0, 80.0, 10.0, 500.0];
        let a = allocate_step(&offered, &routes, 250.0, 260.0, 2);
        for (c, r) in a.served_mbps.iter().enumerate() {
            assert!(*r <= offered[c] + 1e-6, "city {c} over-served");
        }
        for (&s, &carried) in &a.sat_carried {
            assert!(carried <= 250.0 + 1e-6, "sat {s} over capacity: {carried}");
        }
        for (g, &carried) in a.gateway_carried.iter().enumerate() {
            assert!(carried <= 260.0 + 1e-6, "gateway {g} over capacity: {carried}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::graph::{Route, StepRoutes};
    use proptest::prelude::*;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    const N_GATEWAYS: usize = 3;
    /// Saturation/fairness slack: the allocator freezes at `EPS = 1e-9`
    /// residuals, so with magnitudes up to a few thousand Mbps any real
    /// violation dwarfs this.
    const TOL: f64 = 1e-5;

    fn arb_route() -> impl Strategy<Value = Option<Route>> {
        prop_oneof![
            1 => Just(None),
            4 => (0usize..6, 0usize..N_GATEWAYS, 1.0f64..2000.0).prop_map(
                |(sat, gateway, access_mbps)| Some(Route {
                    sat,
                    gateway,
                    hops: 0,
                    path_km: 1500.0,
                    latency_ms: 7.0,
                    access_mbps,
                })
            ),
        ]
    }

    /// (offered, routes, sat capacity, gateway capacity) scenarios small
    /// enough to shrink well but rich enough to saturate either resource.
    fn arb_scenario() -> impl Strategy<Value = (Vec<f64>, Vec<Option<Route>>, f64, f64)> {
        (1usize..10).prop_flat_map(|n| {
            (
                prop::collection::vec(0.0f64..1000.0, n),
                prop::collection::vec(arb_route(), n),
                50.0f64..4000.0,
                50.0f64..4000.0,
            )
        })
    }

    proptest! {
        /// Served rates never exceed the offered load, the access link,
        /// any satellite's throughput, or any gateway's backhaul; cities
        /// without a route get nothing.
        #[test]
        fn never_exceeds_any_capacity((offered, routes, sat_cap, gw_cap) in arb_scenario()) {
            let step = StepRoutes { routes: routes.clone() };
            let a = allocate_step(&offered, &step, sat_cap, gw_cap, N_GATEWAYS);
            for (c, &served) in a.served_mbps.iter().enumerate() {
                prop_assert!(served >= 0.0);
                match &routes[c] {
                    Some(r) => prop_assert!(served <= offered[c].min(r.access_mbps) + TOL),
                    None => prop_assert_eq!(served, 0.0),
                }
            }
            for (&s, &carried) in &a.sat_carried {
                prop_assert!(carried <= sat_cap + TOL, "sat {} over capacity: {}", s, carried);
            }
            for (g, &carried) in a.gateway_carried.iter().enumerate() {
                prop_assert!(carried <= gw_cap + TOL, "gateway {} over capacity: {}", g, carried);
            }
        }

        /// The allocation is invariant under permutation of the demand
        /// order: progressive filling grows every active flow by the same
        /// increment, so city order only changes the order of identical
        /// float operations.
        #[test]
        fn invariant_under_demand_permutation(
            (offered, routes, sat_cap, gw_cap) in arb_scenario(),
            seed in 0u64..1_000,
        ) {
            let n = offered.len();
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
            let p_offered: Vec<f64> = perm.iter().map(|&c| offered[c]).collect();
            let p_routes: Vec<Option<Route>> = perm.iter().map(|&c| routes[c]).collect();
            let direct = allocate_step(
                &offered,
                &StepRoutes { routes: routes.clone() },
                sat_cap,
                gw_cap,
                N_GATEWAYS,
            );
            let permuted = allocate_step(
                &p_offered,
                &StepRoutes { routes: p_routes },
                sat_cap,
                gw_cap,
                N_GATEWAYS,
            );
            for (i, &c) in perm.iter().enumerate() {
                let x = direct.served_mbps[c];
                let y = permuted.served_mbps[i];
                prop_assert!((x - y).abs() <= 1e-9, "city {}: {} vs {}", c, x, y);
            }
        }

        /// Max-min fairness (bottleneck characterization): a flow below
        /// its individual cap must cross a saturated resource on which no
        /// co-member receives more — so no flow can gain without taking
        /// from a flow that is no better off.
        #[test]
        fn max_min_bottleneck_condition((offered, routes, sat_cap, gw_cap) in arb_scenario()) {
            let step = StepRoutes { routes: routes.clone() };
            let a = allocate_step(&offered, &step, sat_cap, gw_cap, N_GATEWAYS);
            for (c, &served) in a.served_mbps.iter().enumerate() {
                let Some(r) = &routes[c] else { continue };
                let cap = offered[c].min(r.access_mbps);
                if cap <= TOL || served >= cap - TOL {
                    continue; // individually capped: nothing to redistribute
                }
                let sat_carried = a.sat_carried.get(&r.sat).copied().unwrap_or(0.0);
                let sat_saturated = sat_carried >= sat_cap - TOL;
                let gw_saturated = a.gateway_carried[r.gateway] >= gw_cap - TOL;
                prop_assert!(
                    sat_saturated || gw_saturated,
                    "flow {} sits at {} below its cap {} with slack everywhere",
                    c,
                    served,
                    cap
                );
                let max_rate = |on: &dyn Fn(&Route) -> bool| {
                    (0..routes.len())
                        .filter(|&d| routes[d].as_ref().is_some_and(|rd| on(rd)))
                        .map(|d| a.served_mbps[d])
                        .fold(0.0, f64::max)
                };
                let mut bottlenecked = false;
                if sat_saturated {
                    bottlenecked |= served >= max_rate(&|rd: &Route| rd.sat == r.sat) - TOL;
                }
                if gw_saturated {
                    bottlenecked |=
                        served >= max_rate(&|rd: &Route| rd.gateway == r.gateway) - TOL;
                }
                prop_assert!(
                    bottlenecked,
                    "flow {} is not maximal on any of its saturated resources",
                    c
                );
            }
        }
    }
}
