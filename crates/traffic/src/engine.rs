//! The traffic engine driver: demand → routes → allocation → report.
//!
//! [`run_traffic`] generates the demand matrix, builds the per-step route
//! table over a prebuilt ephemeris, fans the max-min-fair allocation out
//! over `simrt` (one independent job per step, collected in step order),
//! and aggregates the results into a [`TrafficReport`]: per-city and
//! per-party served/offered load, drop rate, and latency under load.
//!
//! Party accounting follows the paper's roles: a party *owns* satellites
//! (supply) and *sponsors* cities (demand). `carried` is the traffic a
//! party's satellites relayed for anyone; `spare` is the unused capacity of
//! its engaged satellites — the two quantities the capacity market prices.

use crate::allocate::{allocate_step_with, AllocScratch, StepAllocation};
use crate::demand::{DemandConfig, DemandMatrix};
use crate::graph::{GraphConfig, RouteTable};
use geodata::City;
use leosim::ephemeris::EphemerisStore;
use leosim::latency::LatencySeries;
use leosim::visibility::SimConfig;
use mpleo::party::PartyId;
use orbital::ground::GroundSite;
use serde::{Deserialize, Serialize};

/// Engine parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Demand model parameters.
    pub demand: DemandConfig,
    /// Routing parameters (ISL range/hops, channels per access link).
    pub graph: GraphConfig,
    /// Per-satellite throughput cap, Mbps.
    pub sat_capacity_mbps: f64,
    /// Per-gateway backhaul cap, Mbps.
    pub gateway_capacity_mbps: f64,
    /// Multiplier on every city's offered load (ablation knob).
    pub demand_scale: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            demand: DemandConfig::default(),
            graph: GraphConfig::default(),
            sat_capacity_mbps: 17_000.0,
            gateway_capacity_mbps: 40_000.0,
            demand_scale: 1.0,
        }
    }
}

/// Per-party traffic summary (horizon means, Mbps).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartyTraffic {
    /// The party.
    pub party: PartyId,
    /// Mean offered load of the party's cities.
    pub offered_mbps: f64,
    /// Mean served load of the party's cities.
    pub served_mbps: f64,
    /// Mean traffic carried by the party's satellites (for anyone).
    pub carried_mbps: f64,
    /// Mean unused capacity of the party's engaged satellites.
    pub spare_mbps: f64,
}

/// The engine's aggregate output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficReport {
    /// City names (report row order).
    pub cities: Vec<String>,
    /// Parties (index order used by the columnar party series).
    pub parties: Vec<PartyId>,
    /// Grid steps.
    pub steps: usize,
    /// Step size, seconds.
    pub step_s: f64,
    /// Mean offered load per city, Mbps.
    pub offered_mean_mbps: Vec<f64>,
    /// Mean served load per city, Mbps.
    pub served_mean_mbps: Vec<f64>,
    /// Latency under load per city: delay of the carrying route at steps
    /// where the city was actually served, `None` elsewhere.
    pub latency: Vec<LatencySeries>,
    /// Total offered load per step, Mbps.
    pub total_offered_steps: Vec<f64>,
    /// Total served load per step, Mbps.
    pub total_served_steps: Vec<f64>,
    /// Offered load per party per step, Mbps, `[party * steps + k]`.
    pub party_offered: Vec<f64>,
    /// Served load per party per step, Mbps, `[party * steps + k]`.
    pub party_served: Vec<f64>,
    /// Carried load per party per step, Mbps, `[party * steps + k]`.
    pub party_carried: Vec<f64>,
    /// Spare engaged capacity per party per step, Mbps,
    /// `[party * steps + k]`.
    pub party_spare: Vec<f64>,
}

impl TrafficReport {
    /// Fraction of offered traffic served over the horizon, `[0, 1]`
    /// (1.0 when nothing was offered).
    pub fn served_ratio(&self) -> f64 {
        let offered: f64 = self.total_offered_steps.iter().sum();
        let served: f64 = self.total_served_steps.iter().sum();
        if offered <= 0.0 {
            1.0
        } else {
            served / offered
        }
    }

    /// Dropped fraction of offered traffic, percent.
    pub fn drop_pct(&self) -> f64 {
        (1.0 - self.served_ratio()) * 100.0
    }

    /// Latency percentile pooled over every served (city, step) sample
    /// (`None` if nothing was ever served or `q` is out of range).
    pub fn pooled_latency_ms(&self, q: f64) -> Option<f64> {
        let pooled: Vec<Option<f64>> =
            self.latency.iter().flat_map(|s| s.delay_ms.iter().copied()).collect();
        LatencySeries { delay_ms: pooled, step_s: self.step_s }.percentile_ms(q)
    }

    /// Peak-to-trough ratio of the total offered load.
    pub fn offered_peak_trough(&self) -> f64 {
        peak_trough(&self.total_offered_steps)
    }

    /// Peak-to-trough ratio of the total served load.
    pub fn served_peak_trough(&self) -> f64 {
        peak_trough(&self.total_served_steps)
    }

    /// Per-party horizon means.
    pub fn party_summary(&self) -> Vec<PartyTraffic> {
        let n = self.steps.max(1) as f64;
        self.parties
            .iter()
            .enumerate()
            .map(|(p, party)| {
                let mean = |series: &[f64]| {
                    series[p * self.steps..(p + 1) * self.steps].iter().sum::<f64>() / n
                };
                PartyTraffic {
                    party: party.clone(),
                    offered_mbps: mean(&self.party_offered),
                    served_mbps: mean(&self.party_served),
                    carried_mbps: mean(&self.party_carried),
                    spare_mbps: mean(&self.party_spare),
                }
            })
            .collect()
    }
}

fn peak_trough(series: &[f64]) -> f64 {
    let mut peak = f64::NEG_INFINITY;
    let mut trough = f64::INFINITY;
    for &v in series {
        peak = peak.max(v);
        trough = trough.min(v);
    }
    if trough > 0.0 {
        peak / trough
    } else {
        f64::INFINITY
    }
}

/// Run the full engine. `sat_party[s]` is the owner (index into `parties`)
/// of store row `s`; `city_party[c]` the sponsor of city `c`. Both must
/// cover their domains.
#[allow(clippy::too_many_arguments)] // scene + config + the three party maps
pub fn run_traffic(
    store: &EphemerisStore,
    cities: &[City],
    gateways: &[GroundSite],
    sim: &SimConfig,
    cfg: &TrafficConfig,
    sat_party: &[usize],
    city_party: &[usize],
    parties: &[PartyId],
) -> TrafficReport {
    assert_eq!(sat_party.len(), store.sat_count(), "one owner per satellite");
    assert_eq!(city_party.len(), cities.len(), "one sponsor per city");
    assert!(sat_party.iter().chain(city_party.iter()).all(|&p| p < parties.len()));
    assert!(cfg.demand_scale >= 0.0, "demand scale must be non-negative");

    let sites: Vec<GroundSite> = cities.iter().map(|c| c.site()).collect();
    let mut demand = DemandMatrix::generate(cities, &store.grid, &cfg.demand);
    if cfg.demand_scale != 1.0 {
        for v in &mut demand.offered_mbps {
            *v *= cfg.demand_scale;
        }
    }
    let routes = RouteTable::build(store, &sites, gateways, sim, &cfg.graph);
    run_traffic_with_routes(&demand, &routes, cfg, sat_party, city_party, parties)
}

/// [`run_traffic`] over a precomputed demand matrix and route table, so
/// sweeps (e.g. demand scaling) can reuse the expensive routing pass.
pub fn run_traffic_with_routes(
    demand: &DemandMatrix,
    routes: &RouteTable,
    cfg: &TrafficConfig,
    sat_party: &[usize],
    city_party: &[usize],
    parties: &[PartyId],
) -> TrafficReport {
    let steps = demand.steps;
    let n_cities = demand.cities.len();
    let n_gateways = routes.gateways.len();
    assert_eq!(routes.steps.len(), steps, "route table covers the demand grid");
    assert_eq!(routes.terminals.len(), n_cities, "route table covers the cities");

    // Independent per-step allocation; results land in step order. Each
    // `simrt` participant carries one scratch (offered-column buffer plus
    // the allocator's round state) across every step it claims.
    #[derive(Default)]
    struct EngineScratch {
        offered: Vec<f64>,
        alloc: AllocScratch,
    }
    let allocations: Vec<StepAllocation> =
        simrt::par_map_indexed_with(steps, 0, EngineScratch::default, |scratch, k| {
            let EngineScratch { offered, alloc } = scratch;
            demand.step_offered_into(k, offered);
            allocate_step_with(
                alloc,
                offered,
                &routes.steps[k],
                cfg.sat_capacity_mbps,
                cfg.gateway_capacity_mbps,
                n_gateways,
            )
        });

    // Sequential aggregation in fixed (step, city) order.
    let n_parties = parties.len();
    let mut offered_mean = vec![0.0; n_cities];
    let mut served_mean = vec![0.0; n_cities];
    let mut latency: Vec<Vec<Option<f64>>> = vec![Vec::with_capacity(steps); n_cities];
    let mut total_offered = Vec::with_capacity(steps);
    let mut total_served = Vec::with_capacity(steps);
    let mut party_offered = vec![0.0; n_parties * steps];
    let mut party_served = vec![0.0; n_parties * steps];
    let mut party_carried = vec![0.0; n_parties * steps];
    let mut party_spare = vec![0.0; n_parties * steps];

    for (k, alloc) in allocations.iter().enumerate() {
        let mut step_offered_total = 0.0;
        for c in 0..n_cities {
            let offered = demand.offered(c, k);
            let served = alloc.served_mbps[c];
            offered_mean[c] += offered;
            served_mean[c] += served;
            step_offered_total += offered;
            party_offered[city_party[c] * steps + k] += offered;
            party_served[city_party[c] * steps + k] += served;
            latency[c].push(if served > 0.0 {
                routes.steps[k].routes[c].as_ref().map(|r| r.latency_ms)
            } else {
                None
            });
        }
        total_offered.push(step_offered_total);
        total_served.push(alloc.total_served());
        // Engaged satellites: best-route access sats this step. Their
        // unused headroom is the party's sellable spare.
        let mut engaged: Vec<usize> =
            routes.steps[k].routes.iter().flatten().map(|r| r.sat).collect();
        engaged.sort_unstable();
        engaged.dedup();
        for s in engaged {
            let carried = alloc.sat_carried.get(&s).copied().unwrap_or(0.0);
            let p = sat_party[s];
            party_carried[p * steps + k] += carried;
            party_spare[p * steps + k] += (cfg.sat_capacity_mbps - carried).max(0.0);
        }
    }
    let n = steps.max(1) as f64;
    for c in 0..n_cities {
        offered_mean[c] /= n;
        served_mean[c] /= n;
    }

    TrafficReport {
        cities: demand.cities.clone(),
        parties: parties.to_vec(),
        steps,
        step_s: demand.step_s,
        offered_mean_mbps: offered_mean,
        served_mean_mbps: served_mean,
        latency: latency
            .into_iter()
            .map(|delay_ms| LatencySeries { delay_ms, step_s: demand.step_s })
            .collect(),
        total_offered_steps: total_offered,
        total_served_steps: total_served,
        party_offered,
        party_served,
        party_carried,
        party_spare,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::gateways_every_nth;
    use geodata::paper_cities;
    use leosim::TimeGrid;
    use orbital::constellation::{walker_delta, ShellSpec};
    use orbital::time::Epoch;

    fn epoch() -> Epoch {
        Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
    }

    fn scenario() -> (EphemerisStore, Vec<City>, Vec<GroundSite>) {
        let spec = ShellSpec { planes: 8, sats_per_plane: 10, ..ShellSpec::starlink_like() };
        let sats = walker_delta(&spec, epoch());
        let grid = TimeGrid::new(epoch(), 6.0 * 3600.0, 600.0);
        let store = EphemerisStore::build(&sats, &grid, &SimConfig::default());
        let cities = paper_cities();
        let gateways = gateways_every_nth(&cities, 3);
        (store, cities, gateways)
    }

    fn owners(n_sats: usize, n_cities: usize, n_parties: usize) -> (Vec<usize>, Vec<usize>) {
        (
            (0..n_sats).map(|s| s % n_parties).collect(),
            (0..n_cities).map(|c| c % n_parties).collect(),
        )
    }

    #[test]
    fn engine_end_to_end_invariants() {
        let (store, cities, gateways) = scenario();
        let parties: Vec<PartyId> = ["alpha", "beta", "gamma"].map(PartyId::new).into();
        let (sat_party, city_party) = owners(store.sat_count(), cities.len(), 3);
        let cfg = TrafficConfig::default();
        let report = run_traffic(
            &store,
            &cities,
            &gateways,
            &SimConfig::default(),
            &cfg,
            &sat_party,
            &city_party,
            &parties,
        );
        assert_eq!(report.cities.len(), 21);
        let ratio = report.served_ratio();
        assert!((0.0..=1.0).contains(&ratio), "served ratio {ratio}");
        assert!(ratio > 0.0, "an 80-sat shell must serve some demand");
        // Served <= offered pointwise.
        for (o, s) in report.total_offered_steps.iter().zip(&report.total_served_steps) {
            assert!(s <= &(o + 1e-6), "served {s} > offered {o}");
        }
        // Party accounting closes: sums of party series match the totals.
        for k in 0..report.steps {
            let po: f64 = (0..3).map(|p| report.party_offered[p * report.steps + k]).sum();
            let ps: f64 = (0..3).map(|p| report.party_served[p * report.steps + k]).sum();
            let pc: f64 = (0..3).map(|p| report.party_carried[p * report.steps + k]).sum();
            assert!((po - report.total_offered_steps[k]).abs() < 1e-6);
            assert!((ps - report.total_served_steps[k]).abs() < 1e-6);
            assert!((pc - report.total_served_steps[k]).abs() < 1e-6, "carried = served");
        }
        // Latency under load is physical when present.
        if let Some(p99) = report.pooled_latency_ms(0.99) {
            let p50 = report.pooled_latency_ms(0.5).unwrap();
            assert!(p50 <= p99);
            assert!(p50 > 2.0 && p99 < 100.0, "p50 {p50} p99 {p99}");
        }
    }

    #[test]
    fn report_is_thread_count_invariant() {
        let (store, cities, gateways) = scenario();
        let parties: Vec<PartyId> = ["a", "b"].map(PartyId::new).into();
        let (sat_party, city_party) = owners(store.sat_count(), cities.len(), 2);
        let cfg = TrafficConfig::default();
        let run = || {
            run_traffic(
                &store,
                &cities,
                &gateways,
                &SimConfig::default(),
                &cfg,
                &sat_party,
                &city_party,
                &parties,
            )
        };
        let a = run();
        let b = simrt::with_thread_cap(1, run);
        let c = simrt::with_thread_cap(4, run);
        for r in [&b, &c] {
            assert_eq!(a.total_served_steps.len(), r.total_served_steps.len());
            for (x, y) in a.total_served_steps.iter().zip(&r.total_served_steps) {
                assert_eq!(x.to_bits(), y.to_bits(), "served series must be bit-identical");
            }
            for (x, y) in a.party_spare.iter().zip(&r.party_spare) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn more_demand_cannot_reduce_served_traffic() {
        let (store, cities, gateways) = scenario();
        let parties: Vec<PartyId> = ["solo"].map(PartyId::new).into();
        let (sat_party, city_party) = owners(store.sat_count(), cities.len(), 1);
        let served_at = |scale: f64| {
            let cfg = TrafficConfig { demand_scale: scale, ..TrafficConfig::default() };
            run_traffic(
                &store,
                &cities,
                &gateways,
                &SimConfig::default(),
                &cfg,
                &sat_party,
                &city_party,
                &parties,
            )
            .total_served_steps
            .iter()
            .sum::<f64>()
        };
        let low = served_at(0.5);
        let high = served_at(2.0);
        assert!(high >= low - 1e-6, "served must grow with offered: {low} vs {high}");
    }

    #[test]
    fn zero_scale_serves_nothing_with_ratio_one() {
        let (store, cities, gateways) = scenario();
        let parties: Vec<PartyId> = ["solo"].map(PartyId::new).into();
        let (sat_party, city_party) = owners(store.sat_count(), cities.len(), 1);
        let cfg = TrafficConfig { demand_scale: 0.0, ..TrafficConfig::default() };
        let report = run_traffic(
            &store,
            &cities,
            &gateways,
            &SimConfig::default(),
            &cfg,
            &sat_party,
            &city_party,
            &parties,
        );
        assert_eq!(report.served_ratio(), 1.0, "no demand means nothing to drop");
        assert!(report.total_served_steps.iter().all(|&s| s == 0.0));
        assert!(report.pooled_latency_ms(0.5).is_none());
    }
}
