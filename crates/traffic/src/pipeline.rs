//! The shared per-step routing kernel: one code path under the traffic
//! engine, the churn campaign engine, and every routing experiment.
//!
//! [`StepKernel`] owns everything that is constant across steps (scene
//! references, the elevation mask's sine, per-site pruning constants);
//! [`StepScratch`] owns everything that varies per step (the positions
//! column, the cell-grid index, the BFS chain and frontier queues) and is
//! reused from step to step — each `simrt` participant carries one scratch
//! through [`simrt::par_map_indexed_with`], so the hot loop performs no
//! per-step heap allocation in steady state.
//!
//! ## Grid-pruned candidate search
//!
//! The kernel replaces the reference implementation's all-satellite scans
//! (`O(sats)` per terminal, `O(sats²)` per ISL hop) with ball queries over
//! a uniform [`CellGrid`] rebuilt per step:
//!
//! - **ISL neighbours** are searched within exactly `isl_range_km` of the
//!   joining satellite.
//! - **Site access** (gateway downlink and terminal uplink) is pruned by a
//!   conservative slant-range bound: a site at geocentric radius `R` can
//!   only see a satellite at radius `≤ r_max` above elevation `e` if their
//!   distance is at most `sqrt(r_max² − R²·cos²e′) − R·sin e′`, where
//!   `e′ = e − 0.25°` pads for the deflection between the site's geodetic
//!   zenith (what [`orbital::frames::sin_elevation`] measures against) and
//!   the geocentric radial (what the bound is derived from; the deflection
//!   is at most ~0.192° on WGS84). A non-positive discriminant proves no
//!   satellite can be visible at all.
//!
//! ## Determinism argument
//!
//! The reference kernel resolves every choice by a first-wins
//! strict-less-than scan in ascending index order, which selects the
//! lexicographic minimum of `(value, index)`. The grid visits candidates
//! in bucket order instead, so every selection here compares
//! `(value, index)` lexicographically and explicitly — same winner, any
//! visitation order. The pruning radii are conservative supersets and
//! every candidate is re-checked with the exact reference predicates
//! (visibility, range) before competing, so the surviving candidate set is
//! identical. Winner fields are computed with the reference expressions in
//! the reference order. The result is byte-identical to
//! [`crate::graph::step_routes_reference`] — property-tested below over
//! random constellations, ranges, and masks — and therefore byte-identical
//! at any thread count, since each step is a pure function of `(step,
//! mask)` fanned out index-deterministically.

use crate::graph::{Downlink, GraphConfig, Route, StepMask, StepRoutes};
use leosim::ephemeris::EphemerisStore;
use leosim::latency::C_KM_S;
use leosim::linkbudget::{end_to_end_capacity_bps, PayloadArchitecture, RfLeg};
use leosim::visibility::SimConfig;
use orbital::ground::GroundSite;
use orbital::Vec3;

/// Padding subtracted from the elevation mask before deriving the
/// slant-range bound, degrees: covers the geodetic-vs-geocentric zenith
/// deflection (max ~0.192° on WGS84) with margin.
const ZENITH_PAD_DEG: f64 = 0.25;

/// Slack added to ball-query radii when mapping them to grid cells, km.
/// Absorbs floating-point rounding in the AABB arithmetic; candidacy is
/// decided by exact predicates, so this only needs to be conservative.
const AABB_SLACK_KM: f64 = 1e-6;

/// Soft cap on grid cells per rebuild; the cell edge is doubled until the
/// grid fits. Purely a memory/speed trade — any cell size yields the same
/// routes because candidates are re-checked exactly.
const MAX_CELLS: usize = 65_536;

/// A uniform 3-D cell grid over one step's satellite positions, rebuilt in
/// place each step (CSR buckets: `starts` offsets into `order`).
#[derive(Debug, Default)]
pub struct CellGrid {
    origin: Vec3,
    cell_km: f64,
    /// `1 / cell_km`: cell coordinates are computed by multiplication,
    /// which is much cheaper than division in the per-satellite loops.
    /// Rebuild and query use the *same* expression, and multiplication by
    /// a positive constant is monotone, so the query AABB always covers
    /// every cell a ball member was sorted into.
    inv_cell: f64,
    nx: usize,
    ny: usize,
    nz: usize,
    /// Bucket offsets, length `nx·ny·nz + 1`.
    starts: Vec<usize>,
    /// Satellite rows grouped by bucket, length `positions.len()`.
    order: Vec<u32>,
    /// Fill cursors, reused across rebuilds.
    cursor: Vec<usize>,
    /// Per-satellite cell ids computed once per rebuild.
    cell_ids: Vec<u32>,
}

impl CellGrid {
    #[inline]
    fn cell_of(&self, p: Vec3) -> usize {
        // Positions are inside the bounding box the grid was built from,
        // so the products are non-negative and truncation is floor.
        let ix = (((p.x - self.origin.x) * self.inv_cell) as usize).min(self.nx - 1);
        let iy = (((p.y - self.origin.y) * self.inv_cell) as usize).min(self.ny - 1);
        let iz = (((p.z - self.origin.z) * self.inv_cell) as usize).min(self.nz - 1);
        (iz * self.ny + iy) * self.nx + ix
    }

    /// Rebuild the grid over `positions` with cells of roughly `cell_km`
    /// (doubled until the grid fits `MAX_CELLS`).
    pub fn rebuild(&mut self, positions: &[Vec3], cell_km: f64) {
        assert!(cell_km > 0.0 && cell_km.is_finite(), "bad cell size {cell_km}");
        let n = positions.len();
        if n == 0 {
            self.nx = 0;
            self.ny = 0;
            self.nz = 0;
            self.starts.clear();
            self.order.clear();
            return;
        }
        let mut min = positions[0];
        let mut max = positions[0];
        for p in positions {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            min.z = min.z.min(p.z);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
            max.z = max.z.max(p.z);
        }
        self.origin = min;
        self.cell_km = cell_km;
        loop {
            self.nx = ((max.x - min.x) / self.cell_km) as usize + 1;
            self.ny = ((max.y - min.y) / self.cell_km) as usize + 1;
            self.nz = ((max.z - min.z) / self.cell_km) as usize + 1;
            if self.nx * self.ny * self.nz <= MAX_CELLS {
                break;
            }
            self.cell_km *= 2.0;
        }
        self.inv_cell = 1.0 / self.cell_km;
        let cells = self.nx * self.ny * self.nz;
        self.starts.clear();
        self.starts.resize(cells + 1, 0);
        let mut cell_ids = std::mem::take(&mut self.cell_ids);
        cell_ids.clear();
        cell_ids.extend(positions.iter().map(|p| self.cell_of(*p) as u32));
        self.cell_ids = cell_ids;
        for &c in &self.cell_ids {
            self.starts[c as usize + 1] += 1;
        }
        for c in 0..cells {
            self.starts[c + 1] += self.starts[c];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.starts[..cells]);
        self.order.clear();
        self.order.resize(n, 0);
        for (s, &c) in self.cell_ids.iter().enumerate() {
            self.order[self.cursor[c as usize]] = s as u32;
            self.cursor[c as usize] += 1;
        }
    }

    /// Visit every satellite whose cell overlaps the ball of radius
    /// `radius_km` around `q` — a superset of the satellites within the
    /// ball; the caller re-checks exact predicates.
    #[inline]
    pub fn query_ball(&self, q: Vec3, radius_km: f64, mut visit: impl FnMut(u32)) {
        if self.nx == 0 {
            return;
        }
        let r = radius_km + AABB_SLACK_KM;
        let lo = |v: f64, o: f64, n: usize| -> Option<usize> {
            let c = (v - r - o) * self.inv_cell;
            if c >= n as f64 {
                return None;
            }
            Some(if c < 0.0 { 0 } else { c as usize })
        };
        let hi = |v: f64, o: f64, n: usize| -> Option<usize> {
            let c = (v + r - o) * self.inv_cell;
            if c < 0.0 {
                return None;
            }
            Some((c as usize).min(n - 1))
        };
        let (Some(x0), Some(x1)) = (lo(q.x, self.origin.x, self.nx), hi(q.x, self.origin.x, self.nx))
        else {
            return;
        };
        let (Some(y0), Some(y1)) = (lo(q.y, self.origin.y, self.ny), hi(q.y, self.origin.y, self.ny))
        else {
            return;
        };
        let (Some(z0), Some(z1)) = (lo(q.z, self.origin.z, self.nz), hi(q.z, self.origin.z, self.nz))
        else {
            return;
        };
        for iz in z0..=z1 {
            for iy in y0..=y1 {
                let row = (iz * self.ny + iy) * self.nx;
                let (a, b) = (self.starts[row + x0], self.starts[row + x1 + 1]);
                for &s in &self.order[a..b] {
                    visit(s);
                }
            }
        }
    }
}

/// Per-participant scratch for the step kernel: everything the per-step
/// computation writes, reused across the steps a `simrt` participant
/// claims. `Default` is the empty scratch; buffers size themselves on
/// first use and then stay allocated.
#[derive(Debug, Default)]
pub struct StepScratch {
    positions: Vec<Vec3>,
    grid: CellGrid,
    chain: Vec<Option<Downlink>>,
    frontier: Vec<u32>,
    next_frontier: Vec<u32>,
    /// `frontier_mark[s] == mark` iff `s` is in the current BFS frontier.
    frontier_mark: Vec<u64>,
    mark: u64,
    /// Best pending (chain length, frontier member) per unreached
    /// satellite during a frontier-outer BFS hop; valid iff
    /// `best_mark[s] == mark`.
    best_d: Vec<f64>,
    best_f: Vec<u32>,
    best_mark: Vec<u64>,
    term_dmax: Vec<f64>,
    gw_dmax: Vec<f64>,
}

/// The per-step routing kernel shared by [`crate::graph::RouteTable::build`],
/// the traffic engine, and the churn campaign engine. Construct once per
/// table build; call [`Self::routes`] per step with a per-participant
/// [`StepScratch`].
pub struct StepKernel<'a> {
    store: &'a EphemerisStore,
    terminals: &'a [GroundSite],
    gateways: &'a [GroundSite],
    graph: &'a GraphConfig,
    sin_mask: f64,
    /// Per-terminal `R·sin e′` and `R²·cos²e′` for the slant-range bound.
    term_k1: Vec<f64>,
    term_k2: Vec<f64>,
    gw_k1: Vec<f64>,
    gw_k2: Vec<f64>,
}

impl<'a> StepKernel<'a> {
    /// Precompute the step-invariant state: the mask sine and the per-site
    /// constants of the slant-range pruning bound.
    pub fn new(
        store: &'a EphemerisStore,
        terminals: &'a [GroundSite],
        gateways: &'a [GroundSite],
        sim: &SimConfig,
        graph: &'a GraphConfig,
    ) -> StepKernel<'a> {
        let e_pad = (sim.min_elevation_deg - ZENITH_PAD_DEG).max(-90.0).to_radians();
        let (sin_e, cos_e) = (e_pad.sin(), e_pad.cos());
        let k1 = |s: &GroundSite| s.ecef.norm() * sin_e;
        let k2 = |s: &GroundSite| {
            let rc = s.ecef.norm() * cos_e;
            rc * rc
        };
        StepKernel {
            store,
            terminals,
            gateways,
            graph,
            sin_mask: sim.sin_mask(),
            term_k1: terminals.iter().map(k1).collect(),
            term_k2: terminals.iter().map(k2).collect(),
            gw_k1: gateways.iter().map(k1).collect(),
            gw_k2: gateways.iter().map(k2).collect(),
        }
    }

    /// Compute every terminal's best route at step `k`, optionally under an
    /// availability/degradation mask (`None` = nominal). Byte-identical to
    /// [`crate::graph::step_routes_reference`] with the same arguments.
    pub fn routes(&self, scratch: &mut StepScratch, k: usize, mask: Option<&StepMask>) -> StepRoutes {
        let n = self.store.sat_count();
        if let Some(m) = mask {
            assert_eq!(m.sat_ok.len(), n, "one flag per satellite");
            assert_eq!(m.gateway_ok.len(), self.gateways.len(), "one flag per gateway");
            assert_eq!(m.terminal_factor.len(), self.terminals.len(), "one factor per terminal");
        }
        let StepScratch {
            positions,
            grid,
            chain,
            frontier,
            next_frontier,
            frontier_mark,
            mark,
            best_d,
            best_f,
            best_mark,
            term_dmax,
            gw_dmax,
        } = scratch;
        let sat_ok = |s: usize| mask.is_none_or(|m| m.sat_ok[s]);

        self.store.positions_at_step_into(k, positions);
        let r_max_sq = positions.iter().fold(0.0f64, |acc, p| acc.max(p.norm_sq()));

        // Access bound per site at this step's shell radius: visible ⇒
        // range ≤ sqrt(r_max² − R²cos²e′) − R·sin e′; negative discriminant
        // ⇒ nothing can be visible.
        // Conservative squared-radius for the cheap norm² precheck that
        // runs before each exact predicate: the slack absorbs the rounding
        // difference between `norm_sq` and the reference's `distance`.
        let pad_sq = |r: f64| {
            let r = r + AABB_SLACK_KM;
            r * r
        };
        let dmax = |k1: f64, k2: f64| {
            let disc = r_max_sq - k2;
            if disc <= 0.0 {
                0.0
            } else {
                disc.sqrt() - k1
            }
        };
        term_dmax.clear();
        term_dmax.extend(self.term_k1.iter().zip(&self.term_k2).map(|(&k1, &k2)| dmax(k1, k2)));
        gw_dmax.clear();
        gw_dmax.extend(self.gw_k1.iter().zip(&self.gw_k2).map(|(&k1, &k2)| dmax(k1, k2)));

        let max_radius = gw_dmax
            .iter()
            .chain(term_dmax.iter())
            .fold(self.graph.isl_range_km, |acc, &d| acc.max(d))
            .max(1.0);
        grid.rebuild(positions, max_radius);

        // Layer 0, inverted: each gateway ball-queries its reachable shell
        // slice. Ascending gateway order plus strict `<` preserves the
        // reference tie-break (nearest gateway, lowest index on ties).
        chain.clear();
        chain.resize(n, None);
        for (g, gw) in self.gateways.iter().enumerate() {
            if !mask.is_none_or(|m| m.gateway_ok[g]) || gw_dmax[g] <= 0.0 {
                continue;
            }
            let prune_sq = pad_sq(gw_dmax[g]);
            grid.query_ball(gw.ecef, gw_dmax[g], |s| {
                let s = s as usize;
                // `rel.norm_sq()` is bitwise symmetric in operand order, and
                // its sqrt reproduces both `sin_elevation`'s norm and
                // `Vec3::distance` exactly, so one computation serves the
                // precheck, the visibility test, and the range.
                let rel = positions[s] - gw.ecef;
                let d_sq = rel.norm_sq();
                if d_sq > prune_sq || !sat_ok(s) {
                    return;
                }
                let r = d_sq.sqrt();
                if r != 0.0 && rel.dot(gw.zenith) / r < self.sin_mask {
                    return;
                }
                if chain[s].as_ref().is_none_or(|b| r < b.dist_km) {
                    chain[s] =
                        Some(Downlink { gateway: g, dist_km: r, hops: 0, down_range_km: r });
                }
            });
        }

        // BFS layers: an unreached satellite joins the chain of the
        // frontier member minimizing (chain length, member index). Each hop
        // runs in whichever direction scans fewer ball queries — both
        // directions compute the same lexicographic minimum, so the choice
        // affects speed only, never bits.
        frontier.clear();
        frontier.extend((0..n as u32).filter(|&s| chain[s as usize].is_some()));
        if frontier_mark.len() != n {
            frontier_mark.clear();
            frontier_mark.resize(n, 0);
            best_d.clear();
            best_d.resize(n, 0.0);
            best_f.clear();
            best_f.resize(n, 0);
            best_mark.clear();
            best_mark.resize(n, 0);
        }
        let mut unchained = (0..n).filter(|&s| chain[s].is_none() && sat_ok(s)).count();
        for _hop in 0..self.graph.max_hops {
            if frontier.is_empty() || unchained == 0 {
                break;
            }
            *mark += 1;
            next_frontier.clear();
            if frontier.len() <= unchained {
                // Frontier-outer: ball-query around each frontier member
                // (ascending index) and keep each candidate's best
                // (chain length, member) — strict `<` suffices because the
                // member index ascends across the sweep.
                let prune_sq = pad_sq(self.graph.isl_range_km);
                for &f in frontier.iter() {
                    let prev = chain[f as usize].as_ref().expect("frontier is reached");
                    grid.query_ball(positions[f as usize], self.graph.isl_range_km, |s| {
                        let su = s as usize;
                        let d_sq = (positions[f as usize] - positions[su]).norm_sq();
                        if chain[su].is_some() || d_sq > prune_sq || !sat_ok(su) {
                            return;
                        }
                        let d = d_sq.sqrt();
                        if d > self.graph.isl_range_km {
                            return;
                        }
                        let dist = prev.dist_km + d;
                        if best_mark[su] != *mark || dist < best_d[su] {
                            best_mark[su] = *mark;
                            best_d[su] = dist;
                            best_f[su] = f;
                        }
                    });
                }
                for s in 0..n {
                    if best_mark[s] != *mark {
                        continue;
                    }
                    let prev = chain[best_f[s] as usize].as_ref().expect("frontier is reached");
                    chain[s] = Some(Downlink {
                        gateway: prev.gateway,
                        dist_km: best_d[s],
                        hops: prev.hops + 1,
                        down_range_km: prev.down_range_km,
                    });
                    next_frontier.push(s as u32);
                }
            } else {
                // Sat-outer: ball-query around each unreached satellite and
                // minimize over the frontier members it finds.
                for &f in frontier.iter() {
                    frontier_mark[f as usize] = *mark;
                }
                for s in 0..n {
                    if chain[s].is_some() || !sat_ok(s) {
                        continue;
                    }
                    let mut best: Option<(f64, u32)> = None;
                    let prune_sq = pad_sq(self.graph.isl_range_km);
                    grid.query_ball(positions[s], self.graph.isl_range_km, |f| {
                        let d_sq = (positions[f as usize] - positions[s]).norm_sq();
                        if frontier_mark[f as usize] != *mark || d_sq > prune_sq {
                            return;
                        }
                        let d = d_sq.sqrt();
                        if d > self.graph.isl_range_km {
                            return;
                        }
                        let prev = chain[f as usize].as_ref().expect("frontier is reached");
                        let dist = prev.dist_km + d;
                        if best.is_none_or(|(bd, bf)| dist < bd || (dist == bd && f < bf)) {
                            best = Some((dist, f));
                        }
                    });
                    if let Some((dist, f)) = best {
                        let prev = chain[f as usize].as_ref().expect("frontier is reached");
                        chain[s] = Some(Downlink {
                            gateway: prev.gateway,
                            dist_km: dist,
                            hops: prev.hops + 1,
                            down_range_km: prev.down_range_km,
                        });
                        next_frontier.push(s as u32);
                    }
                }
            }
            unchained -= next_frontier.len();
            std::mem::swap(frontier, next_frontier);
        }

        // Terminal access: ball query, then the exact reference selection —
        // lexicographic minimum of (path length, satellite row).
        let up = RfLeg::ku_user_uplink();
        let down = RfLeg::ku_gateway_downlink();
        let routes = self
            .terminals
            .iter()
            .enumerate()
            .map(|(ti, t)| {
                let factor = mask.map_or(1.0, |m| m.terminal_factor[ti]).clamp(0.0, 1.0);
                if term_dmax[ti] <= 0.0 {
                    return None;
                }
                let mut best: Option<(f64, u32, f64)> = None;
                let prune_sq = pad_sq(term_dmax[ti]);
                grid.query_ball(t.ecef, term_dmax[ti], |s| {
                    let rel = positions[s as usize] - t.ecef;
                    let d_sq = rel.norm_sq();
                    if chain[s as usize].is_none() || d_sq > prune_sq {
                        return;
                    }
                    let up_range = d_sq.sqrt();
                    if up_range != 0.0 && rel.dot(t.zenith) / up_range < self.sin_mask {
                        return;
                    }
                    let path_km = up_range + chain[s as usize].as_ref().unwrap().dist_km;
                    if best.is_none_or(|(bp, bs, _)| path_km < bp || (path_km == bp && s < bs)) {
                        best = Some((path_km, s, up_range));
                    }
                });
                best.map(|(path_km, s, up_range)| {
                    let c = chain[s as usize].as_ref().expect("winner is chained");
                    let arch = if c.hops == 0 {
                        PayloadArchitecture::Transparent
                    } else {
                        PayloadArchitecture::Regenerative
                    };
                    let per_channel =
                        end_to_end_capacity_bps(arch, &up, up_range, &down, c.down_range_km);
                    Route {
                        sat: s as usize,
                        gateway: c.gateway,
                        hops: c.hops,
                        path_km,
                        latency_ms: path_km / C_KM_S * 1000.0,
                        access_mbps: factor * per_channel * self.graph.channels_per_link as f64
                            / 1e6,
                    }
                })
            })
            .collect();
        StepRoutes { routes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::step_routes_reference;
    use leosim::TimeGrid;
    use orbital::constellation::{single_plane, walker_delta, ShellSpec};
    use orbital::time::Epoch;

    fn epoch() -> Epoch {
        Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
    }

    fn assert_steps_bit_identical(a: &StepRoutes, b: &StepRoutes, ctx: &str) {
        assert_eq!(a.routes.len(), b.routes.len(), "{ctx}: terminal counts differ");
        for (t, (x, y)) in a.routes.iter().zip(&b.routes).enumerate() {
            match (x, y) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.sat, y.sat, "{ctx}: terminal {t} sat");
                    assert_eq!(x.gateway, y.gateway, "{ctx}: terminal {t} gateway");
                    assert_eq!(x.hops, y.hops, "{ctx}: terminal {t} hops");
                    assert_eq!(
                        x.path_km.to_bits(),
                        y.path_km.to_bits(),
                        "{ctx}: terminal {t} path_km {} vs {}",
                        x.path_km,
                        y.path_km
                    );
                    assert_eq!(
                        x.latency_ms.to_bits(),
                        y.latency_ms.to_bits(),
                        "{ctx}: terminal {t} latency"
                    );
                    assert_eq!(
                        x.access_mbps.to_bits(),
                        y.access_mbps.to_bits(),
                        "{ctx}: terminal {t} access_mbps {} vs {}",
                        x.access_mbps,
                        y.access_mbps
                    );
                }
                _ => panic!("{ctx}: terminal {t} presence differs ({x:?} vs {y:?})"),
            }
        }
    }

    fn check_store_matches_reference(
        store: &EphemerisStore,
        terminals: &[GroundSite],
        gateways: &[GroundSite],
        sim: &SimConfig,
        graph: &GraphConfig,
        mask: Option<&StepMask>,
    ) {
        let kernel = StepKernel::new(store, terminals, gateways, sim, graph);
        // ONE scratch across every step: reuse must not leak state.
        let mut scratch = StepScratch::default();
        for k in 0..store.steps() {
            let fast = kernel.routes(&mut scratch, k, mask);
            let slow = step_routes_reference(store, terminals, gateways, sim, graph, k, mask);
            assert_steps_bit_identical(&fast, &slow, &format!("step {k}"));
        }
    }

    #[test]
    fn kernel_matches_reference_on_walker_shell() {
        let spec = ShellSpec { planes: 6, sats_per_plane: 8, ..ShellSpec::starlink_like() };
        let sats = walker_delta(&spec, epoch());
        let grid = TimeGrid::new(epoch(), 3.0 * 3600.0, 600.0);
        let store = EphemerisStore::build(&sats, &grid, &SimConfig::default());
        let cities = geodata::paper_cities();
        let terminals: Vec<GroundSite> = cities.iter().take(8).map(|c| c.site()).collect();
        let gateways = crate::graph::gateways_every_nth(&cities[..8], 3);
        for graph in [
            GraphConfig::default(),
            GraphConfig { max_hops: 0, ..GraphConfig::default() },
            GraphConfig { max_hops: 4, isl_range_km: 4500.0, ..GraphConfig::default() },
        ] {
            check_store_matches_reference(
                &store,
                &terminals,
                &gateways,
                &SimConfig::default(),
                &graph,
                None,
            );
        }
    }

    #[test]
    fn kernel_matches_reference_under_masks() {
        let spec = ShellSpec { planes: 5, sats_per_plane: 6, ..ShellSpec::starlink_like() };
        let sats = walker_delta(&spec, epoch());
        let grid = TimeGrid::new(epoch(), 2.0 * 3600.0, 600.0);
        let store = EphemerisStore::build(&sats, &grid, &SimConfig::default());
        let cities = geodata::paper_cities();
        let terminals: Vec<GroundSite> = cities.iter().take(6).map(|c| c.site()).collect();
        let gateways = crate::graph::gateways_every_nth(&cities[..6], 2);
        let n = store.sat_count();
        let mut mask = StepMask::nominal(n, gateways.len(), terminals.len());
        for s in (0..n).step_by(3) {
            mask.sat_ok[s] = false;
        }
        mask.gateway_ok[0] = false;
        mask.terminal_factor[1] = 0.25;
        mask.terminal_factor[3] = 0.0;
        check_store_matches_reference(
            &store,
            &terminals,
            &gateways,
            &SimConfig::default(),
            &GraphConfig::default(),
            Some(&mask),
        );
    }

    #[test]
    fn empty_scenes_produce_empty_routes() {
        let sats = single_plane(4, 550.0, 53.0, epoch());
        let grid = TimeGrid::new(epoch(), 3600.0, 600.0);
        let store = EphemerisStore::build(&sats, &grid, &SimConfig::default());
        let term = [GroundSite::from_degrees("T", 25.0, 121.5)];
        let sim = SimConfig::default();
        let graph = GraphConfig::default();
        // No gateways: every terminal is unroutable.
        let kernel = StepKernel::new(&store, &term, &[], &sim, &graph);
        let mut scratch = StepScratch::default();
        for k in 0..store.steps() {
            let r = kernel.routes(&mut scratch, k, None);
            assert!(r.routes.iter().all(|r| r.is_none()));
        }
        // No terminals: empty route rows.
        let kernel = StepKernel::new(&store, &[], &term, &sim, &graph);
        for k in 0..store.steps() {
            assert!(kernel.routes(&mut scratch, k, None).routes.is_empty());
        }
    }

    #[test]
    fn grid_ball_query_is_a_superset_of_the_ball() {
        let spec = ShellSpec { planes: 7, sats_per_plane: 7, ..ShellSpec::starlink_like() };
        let sats = walker_delta(&spec, epoch());
        let grid_t = TimeGrid::new(epoch(), 3600.0, 600.0);
        let store = EphemerisStore::build(&sats, &grid_t, &SimConfig::default());
        let mut positions = Vec::new();
        for k in 0..store.steps() {
            store.positions_at_step_into(k, &mut positions);
            let mut grid = CellGrid::default();
            for cell_km in [400.0, 1500.0, 9000.0] {
                grid.rebuild(&positions, cell_km);
                for (q, radius) in
                    [(positions[0], 3000.0), (Vec3::new(6371.0, 0.0, 0.0), 2500.0)]
                {
                    let mut hit = vec![false; positions.len()];
                    grid.query_ball(q, radius, |s| hit[s as usize] = true);
                    for (s, p) in positions.iter().enumerate() {
                        if p.distance(q) <= radius {
                            assert!(hit[s], "cell {cell_km}: sat {s} within {radius} missed");
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::graph::step_routes_reference;
    use leosim::TimeGrid;
    use orbital::constellation::{single_plane, walker_delta, ShellSpec};
    use orbital::time::Epoch;
    use proptest::prelude::*;

    fn epoch() -> Epoch {
        Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
    }

    /// A small random scene: constellation shape, ISL range/hops, mask.
    #[derive(Debug, Clone)]
    struct Scene {
        planes: u32,
        per_plane: u32,
        single: bool,
        alt_km: f64,
        incl_deg: f64,
        isl_range_km: f64,
        max_hops: usize,
        mask_deg: f64,
        n_terms: usize,
        n_gws: usize,
        fail_stride: usize,
    }

    fn arb_scene() -> impl Strategy<Value = Scene> {
        (
            1u32..6,
            2u32..8,
            any::<bool>(),
            400.0f64..1400.0,
            20.0f64..98.0,
            500.0f64..6000.0,
            0usize..4,
            0.0f64..60.0,
            1usize..6,
            1usize..4,
            0usize..4,
        )
            .prop_map(
                |(
                    planes,
                    per_plane,
                    single,
                    alt_km,
                    incl_deg,
                    isl_range_km,
                    max_hops,
                    mask_deg,
                    n_terms,
                    n_gws,
                    fail_stride,
                )| Scene {
                    planes,
                    per_plane,
                    single,
                    alt_km,
                    incl_deg,
                    isl_range_km,
                    max_hops,
                    mask_deg,
                    n_terms,
                    n_gws,
                    fail_stride,
                },
            )
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

        /// The grid-pruned kernel returns exactly the brute-force scan's
        /// routes — same satellites, same tie-breaks, same bits — over
        /// random constellations, ISL ranges, hop budgets, and elevation
        /// masks, with and without masks, while reusing one scratch.
        #[test]
        fn grid_kernel_equals_brute_force(scene in arb_scene()) {
            let sats = if scene.single {
                single_plane(scene.planes * scene.per_plane, scene.alt_km, scene.incl_deg, epoch())
            } else {
                let spec = ShellSpec {
                    planes: scene.planes,
                    sats_per_plane: scene.per_plane,
                    altitude_km: scene.alt_km,
                    inclination_deg: scene.incl_deg,
                    ..ShellSpec::starlink_like()
                };
                walker_delta(&spec, epoch())
            };
            let grid = TimeGrid::new(epoch(), 6.0 * 600.0, 600.0);
            let sim = SimConfig::default().with_mask_deg(scene.mask_deg);
            let store = EphemerisStore::build(&sats, &grid, &sim);
            let cities = geodata::paper_cities();
            let terminals: Vec<_> = cities.iter().take(scene.n_terms).map(|c| c.site()).collect();
            let gateways =
                crate::graph::gateways_every_nth(&cities, cities.len() / scene.n_gws);
            let graph = GraphConfig {
                isl_range_km: scene.isl_range_km,
                max_hops: scene.max_hops,
                ..GraphConfig::default()
            };
            let mask = if scene.fail_stride == 0 { None } else {
                let mut m = StepMask::nominal(store.sat_count(), gateways.len(), terminals.len());
                for s in (0..store.sat_count()).step_by(scene.fail_stride + 1) {
                    m.sat_ok[s] = false;
                }
                if scene.fail_stride == 1 && !m.gateway_ok.is_empty() {
                    m.gateway_ok[0] = false;
                }
                m.terminal_factor[0] = 0.5;
                Some(m)
            };
            let kernel = StepKernel::new(&store, &terminals, &gateways, &sim, &graph);
            let mut scratch = StepScratch::default();
            for k in 0..store.steps() {
                let fast = kernel.routes(&mut scratch, k, mask.as_ref());
                let slow = step_routes_reference(
                    &store, &terminals, &gateways, &sim, &graph, k, mask.as_ref(),
                );
                prop_assert_eq!(fast.routes.len(), slow.routes.len());
                for (t, (x, y)) in fast.routes.iter().zip(&slow.routes).enumerate() {
                    match (x, y) {
                        (None, None) => {}
                        (Some(x), Some(y)) => {
                            prop_assert_eq!(x.sat, y.sat, "step {} terminal {}", k, t);
                            prop_assert_eq!(x.gateway, y.gateway, "step {} terminal {}", k, t);
                            prop_assert_eq!(x.hops, y.hops, "step {} terminal {}", k, t);
                            prop_assert_eq!(x.path_km.to_bits(), y.path_km.to_bits(),
                                "step {} terminal {}: {} vs {}", k, t, x.path_km, y.path_km);
                            prop_assert_eq!(x.latency_ms.to_bits(), y.latency_ms.to_bits());
                            prop_assert_eq!(x.access_mbps.to_bits(), y.access_mbps.to_bits(),
                                "step {} terminal {}: {} vs {}", k, t, x.access_mbps, y.access_mbps);
                        }
                        _ => prop_assert!(false, "step {} terminal {} presence differs", k, t),
                    }
                }
            }
        }
    }
}
