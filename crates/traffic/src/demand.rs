//! The demand model: diurnal per-city offered load.
//!
//! Each metro contributes `population_m × take_rate` million subscribers,
//! each offering `mbps_per_user` Mbps at the local busy hour. Load follows
//! a sinusoidal diurnal shape in *local solar time* (UTC + longitude/15°),
//! peaking at `peak_local_hour` and bottoming out at `diurnal_floor` of the
//! peak twelve hours away. Per-city seeded jitter perturbs the amplitude
//! and the peak hour so the 21 cities never move in lockstep; city `c`
//! draws only from `run_rng(seed, c)`, so adding cities never perturbs
//! existing ones and the matrix is reproducible bit-for-bit.
//!
//! ```
//! use geodata::paper_cities;
//! use leosim::TimeGrid;
//! use orbital::time::Epoch;
//! use traffic::demand::{DemandConfig, DemandMatrix};
//!
//! let cities = paper_cities();
//! let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
//! let grid = TimeGrid::new(epoch, 24.0 * 3600.0, 3600.0);
//!
//! let demand = DemandMatrix::generate(&cities, &grid, &DemandConfig::default());
//! assert_eq!(demand.steps, grid.steps);
//! assert_eq!(demand.cities.len(), cities.len());
//! // Offered load is strictly positive (the diurnal floor is > 0) ...
//! assert!(demand.offered_mbps.iter().all(|&v| v > 0.0));
//! // ... and genuinely diurnal: the busiest hour of the day carries more
//! // total load than the quietest one.
//! let totals: Vec<f64> = (0..demand.steps).map(|k| demand.total_at(k)).collect();
//! let peak = totals.iter().cloned().fold(f64::MIN, f64::max);
//! let trough = totals.iter().cloned().fold(f64::MAX, f64::min);
//! assert!(peak > trough);
//! // Regenerating is bit-identical — the matrix is a pure function of
//! // (cities, grid, config).
//! let again = DemandMatrix::generate(&cities, &grid, &DemandConfig::default());
//! assert_eq!(again.offered_mbps, demand.offered_mbps);
//! ```

use geodata::City;
use leosim::montecarlo::run_rng;
use leosim::TimeGrid;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the demand model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandConfig {
    /// Fraction of the metro population subscribed to the constellation.
    pub take_rate: f64,
    /// Busy-hour offered load per subscriber, Mbps.
    pub mbps_per_user: f64,
    /// Trough load as a fraction of the peak, `(0, 1]`.
    pub diurnal_floor: f64,
    /// Local solar hour of the demand peak.
    pub peak_local_hour: f64,
    /// Relative amplitude jitter per city (0.1 = ±10%).
    pub jitter: f64,
    /// Base RNG seed for the per-city jitter streams.
    pub seed: u64,
}

impl Default for DemandConfig {
    fn default() -> Self {
        DemandConfig {
            take_rate: 0.0015,
            mbps_per_user: 0.25,
            diurnal_floor: 0.25,
            peak_local_hour: 20.0,
            jitter: 0.1,
            seed: 0x7AF1C,
        }
    }
}

impl DemandConfig {
    /// Subscribers in `city`, in users (not millions).
    pub fn subscribers(&self, city: &City) -> f64 {
        city.population_m * 1e6 * self.take_rate
    }

    /// Peak offered load of `city`, Mbps, before jitter.
    pub fn peak_mbps(&self, city: &City) -> f64 {
        self.subscribers(city) * self.mbps_per_user
    }
}

/// Local solar hour (`[0, 24)`) at `lon_deg` for a UTC epoch.
pub fn local_solar_hour(epoch: &orbital::time::Epoch, lon_deg: f64) -> f64 {
    let (_, seconds_of_day) = epoch.jd_parts();
    (seconds_of_day / 3600.0 + lon_deg / 15.0).rem_euclid(24.0)
}

/// The diurnal shape: 1.0 at `peak_hour`, `floor` twelve hours away,
/// cosine in between.
///
/// ```
/// use traffic::demand::diurnal_shape;
/// assert!((diurnal_shape(20.0, 20.0, 0.25) - 1.0).abs() < 1e-12); // peak
/// assert!((diurnal_shape(8.0, 20.0, 0.25) - 0.25).abs() < 1e-12); // trough
/// ```
pub fn diurnal_shape(local_hour: f64, peak_hour: f64, floor: f64) -> f64 {
    let phase = (local_hour - peak_hour) / 24.0 * std::f64::consts::TAU;
    floor + (1.0 - floor) * 0.5 * (1.0 + phase.cos())
}

/// Columnar offered-load matrix: `offered_mbps[city * steps + k]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DemandMatrix {
    /// City names, matrix row order.
    pub cities: Vec<String>,
    /// Steps per city row.
    pub steps: usize,
    /// Step size, seconds.
    pub step_s: f64,
    /// Offered load, Mbps, `[city * steps + k]`.
    pub offered_mbps: Vec<f64>,
}

impl DemandMatrix {
    /// Generate the matrix over `grid` for `cities`. Each city is an
    /// independent `simrt` job (work by index, results by index), so the
    /// output is identical at any thread count.
    pub fn generate(cities: &[City], grid: &TimeGrid, config: &DemandConfig) -> DemandMatrix {
        let steps = grid.steps;
        // Epochs are shared by every city; precompute once.
        let hours_utc: Vec<f64> = (0..steps)
            .map(|k| {
                let (_, sod) = grid.epoch_at(k).jd_parts();
                sod / 3600.0
            })
            .collect();
        let rows: Vec<Vec<f64>> = simrt::par_map_indexed(cities.len(), 0, |c| {
            let city = &cities[c];
            let mut rng = run_rng(config.seed, c as u64);
            let amp_jitter: f64 = 1.0 + config.jitter * (2.0 * rng.gen::<f64>() - 1.0);
            let phase_jitter: f64 = 1.5 * (2.0 * rng.gen::<f64>() - 1.0);
            let peak = config.peak_mbps(city) * amp_jitter;
            let peak_hour = config.peak_local_hour + phase_jitter;
            hours_utc
                .iter()
                .map(|h| {
                    let local = (h + city.lon_deg / 15.0).rem_euclid(24.0);
                    peak * diurnal_shape(local, peak_hour, config.diurnal_floor)
                })
                .collect()
        });
        DemandMatrix {
            cities: cities.iter().map(|c| c.name.to_string()).collect(),
            steps,
            step_s: grid.step_s,
            offered_mbps: rows.concat(),
        }
    }

    /// Offered load of city `c` at step `k`, Mbps.
    #[inline]
    pub fn offered(&self, c: usize, k: usize) -> f64 {
        self.offered_mbps[c * self.steps + k]
    }

    /// Offered load of every city at step `k`, Mbps.
    pub fn step_offered(&self, k: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.step_offered_into(k, &mut out);
        out
    }

    /// [`Self::step_offered`] into a reusable buffer — the step-kernel
    /// shape: the engine's allocation fan-out gathers each step's column
    /// into per-worker scratch instead of allocating a fresh `Vec`.
    pub fn step_offered_into(&self, k: usize, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.cities.len());
        out.extend((0..self.cities.len()).map(|c| self.offered(c, k)));
    }

    /// Total offered load at step `k`, Mbps.
    pub fn total_at(&self, k: usize) -> f64 {
        (0..self.cities.len()).map(|c| self.offered(c, k)).sum()
    }

    /// Mean offered load of city `c`, Mbps.
    pub fn city_mean(&self, c: usize) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        (0..self.steps).map(|k| self.offered(c, k)).sum::<f64>() / self.steps as f64
    }

    /// Peak-to-trough ratio of city `c`'s offered load.
    pub fn city_peak_trough(&self, c: usize) -> f64 {
        let mut peak = f64::NEG_INFINITY;
        let mut trough = f64::INFINITY;
        for k in 0..self.steps {
            let v = self.offered(c, k);
            peak = peak.max(v);
            trough = trough.min(v);
        }
        if trough > 0.0 {
            peak / trough
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodata::paper_cities;
    use orbital::time::Epoch;

    fn epoch() -> Epoch {
        Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
    }

    #[test]
    fn shape_peaks_and_floors() {
        let s_peak = diurnal_shape(20.0, 20.0, 0.25);
        let s_trough = diurnal_shape(8.0, 20.0, 0.25);
        assert!((s_peak - 1.0).abs() < 1e-12);
        assert!((s_trough - 0.25).abs() < 1e-12);
        // Midway between peak and trough.
        let s_mid = diurnal_shape(14.0, 20.0, 0.25);
        assert!((s_mid - 0.625).abs() < 1e-12);
    }

    #[test]
    fn local_solar_time_tracks_longitude() {
        let e = epoch(); // 00:00 UTC
        assert!((local_solar_hour(&e, 0.0) - 0.0).abs() < 1e-9);
        // Tokyo (+139.7°E) is ~9.3 hours ahead of UTC solar time.
        let tokyo = local_solar_hour(&e, 139.6917);
        assert!((tokyo - 139.6917 / 15.0).abs() < 1e-9);
        // Wraps correctly westwards.
        let lima = local_solar_hour(&e, -77.0428);
        assert!((0.0..24.0).contains(&lima));
    }

    #[test]
    fn matrix_deterministic_and_diurnal() {
        let cities = paper_cities();
        let grid = TimeGrid::new(epoch(), 86_400.0, 600.0);
        let cfg = DemandConfig::default();
        let a = DemandMatrix::generate(&cities, &grid, &cfg);
        let b = DemandMatrix::generate(&cities, &grid, &cfg);
        assert_eq!(a.offered_mbps, b.offered_mbps, "generation must be deterministic");
        // Thread-count independence.
        let c = simrt::with_thread_cap(1, || DemandMatrix::generate(&cities, &grid, &cfg));
        for (x, y) in a.offered_mbps.iter().zip(&c.offered_mbps) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Every city shows a clear diurnal swing over a full day.
        for (ci, city) in cities.iter().enumerate() {
            let ratio = a.city_peak_trough(ci);
            assert!(ratio > 2.0 && ratio < 6.0, "{}: peak/trough {ratio}", city.name);
        }
    }

    #[test]
    fn bigger_cities_offer_more() {
        let cities = paper_cities();
        let grid = TimeGrid::new(epoch(), 86_400.0, 3600.0);
        let cfg = DemandConfig { jitter: 0.0, ..DemandConfig::default() };
        let m = DemandMatrix::generate(&cities, &grid, &cfg);
        // Tokyo (37.1M) must out-offer Melbourne (5.2M) on average.
        assert!(m.city_mean(0) > 5.0 * m.city_mean(20));
        // Sanity scale: Tokyo ~14 Gbps at the busy hour at defaults.
        let tokyo_peak = cfg.peak_mbps(&cities[0]);
        assert!(tokyo_peak > 10_000.0 && tokyo_peak < 20_000.0, "{tokyo_peak}");
    }

    #[test]
    fn jitter_stays_bounded() {
        let cities = paper_cities();
        let grid = TimeGrid::new(epoch(), 43_200.0, 1800.0);
        let cfg = DemandConfig::default();
        let m = DemandMatrix::generate(&cities, &grid, &cfg);
        for (c, city) in cities.iter().enumerate() {
            let peak_no_jitter = cfg.peak_mbps(city);
            for k in 0..m.steps {
                let v = m.offered(c, k);
                assert!(v >= 0.0);
                assert!(v <= peak_no_jitter * (1.0 + cfg.jitter) + 1e-9, "{}: {v}", city.name);
            }
        }
    }
}
