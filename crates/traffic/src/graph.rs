//! Per-step routing snapshots over the ephemeris.
//!
//! At each grid step the engine needs, for every city terminal, the best
//! end-to-end path to a gateway: terminal → access satellite (uplink),
//! optionally a few ISL hops between satellites, then satellite → gateway
//! (downlink). This module builds that snapshot straight from a prebuilt
//! [`EphemerisStore`] — no re-propagation — using the same range-limited
//! ISL proximity rule as [`leosim::bentpipe::isl_connectivity_from_store`],
//! but tracking actual path length, hop count, and link-budget capacity
//! instead of a connectivity bit.
//!
//! Route selection is deterministic: the minimum-path-length reachable
//! access satellite wins, ties broken by the lowest satellite row. Steps
//! are independent `simrt` jobs collected in step order, so the table is
//! byte-identical at any thread count.
//!
//! The production per-step computation lives in [`crate::pipeline`]: a
//! grid-pruned, scratch-reusing [`crate::pipeline::StepKernel`] shared by
//! [`RouteTable::build`], the traffic engine, and the churn campaign
//! engine. This module keeps the route/mask types and the brute-force
//! [`step_routes_reference`] the kernel is property-tested against.

use crate::pipeline::{StepKernel, StepScratch};
use leosim::ephemeris::EphemerisStore;
use leosim::latency::C_KM_S;
use leosim::linkbudget::{end_to_end_capacity_bps, PayloadArchitecture, RfLeg};
use leosim::visibility::SimConfig;
use orbital::ground::GroundSite;
use orbital::Vec3;
use serde::{Deserialize, Serialize};

/// One end-to-end route for a city at a step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Route {
    /// Access satellite (row in the store the table was built from).
    pub sat: usize,
    /// Gateway index the flow lands on.
    pub gateway: usize,
    /// ISL hops between the access and the downlink satellite (0 = pure
    /// bent pipe: the access satellite sees the gateway itself).
    pub hops: usize,
    /// Total path length, km (uplink + ISL segments + downlink).
    pub path_km: f64,
    /// One-way propagation latency over the path, ms.
    pub latency_ms: f64,
    /// Link-budget capacity of this city's access path, Mbps (Shannon
    /// bound over `channels_per_link` channels; transparent composition
    /// for 0-hop routes, regenerative once a relay decodes in between).
    pub access_mbps: f64,
}

/// The routes of every city at one step (`None` = no reachable gateway).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StepRoutes {
    /// Per-city route, city order of the table's terminal list.
    pub routes: Vec<Option<Route>>,
}

/// Routing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphConfig {
    /// Maximum ISL edge length, km.
    pub isl_range_km: f64,
    /// Maximum ISL hops between access and downlink satellite
    /// (0 = bent pipe only).
    pub max_hops: usize,
    /// Ku-band channels aggregated per city access link.
    pub channels_per_link: usize,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig { isl_range_km: 3000.0, max_hops: 1, channels_per_link: 24 }
    }
}

/// The per-step routing table over a grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouteTable {
    /// One entry per grid step.
    pub steps: Vec<StepRoutes>,
    /// Terminal (city) names, route order.
    pub terminals: Vec<String>,
    /// Gateway names, `Route::gateway` order.
    pub gateways: Vec<String>,
}

impl RouteTable {
    /// Build the table: one independent job per step over the shared
    /// `simrt` pool, collected in step order.
    pub fn build(
        store: &EphemerisStore,
        terminals: &[GroundSite],
        gateways: &[GroundSite],
        sim: &SimConfig,
        graph: &GraphConfig,
    ) -> RouteTable {
        let kernel = StepKernel::new(store, terminals, gateways, sim, graph);
        let steps = simrt::par_map_indexed_with(store.steps(), 0, StepScratch::default, |scratch, k| {
            kernel.routes(scratch, k, None)
        });
        RouteTable {
            steps,
            terminals: terminals.iter().map(|t| t.name.clone()).collect(),
            gateways: gateways.iter().map(|g| g.name.clone()).collect(),
        }
    }

    /// Fraction of (city, step) pairs with a route.
    pub fn routability(&self) -> f64 {
        let total = self.steps.len() * self.terminals.len();
        if total == 0 {
            return 0.0;
        }
        let routed: usize = self.steps.iter().map(|s| s.routes.iter().flatten().count()).sum();
        routed as f64 / total as f64
    }
}

/// Availability and degradation overlay for one step of masked routing.
///
/// The churn engine (see [`crate::churn`]) fails satellites, takes
/// gateways offline, and degrades regional link budgets mid-campaign;
/// routing reacts by recomputing the step under this mask. An all-up mask
/// reproduces the unmasked snapshot bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct StepMask {
    /// Per-satellite availability (store row order); a down satellite can
    /// neither serve terminals nor relay ISL traffic.
    pub sat_ok: Vec<bool>,
    /// Per-gateway availability.
    pub gateway_ok: Vec<bool>,
    /// Per-terminal multiplier on access-link capacity, `[0, 1]` (regional
    /// link-budget degradation; 0 = total outage, the route stays for
    /// latency accounting but carries nothing).
    pub terminal_factor: Vec<f64>,
}

impl StepMask {
    /// Everything up, nothing degraded.
    pub fn nominal(n_sats: usize, n_gateways: usize, n_terminals: usize) -> StepMask {
        StepMask {
            sat_ok: vec![true; n_sats],
            gateway_ok: vec![true; n_gateways],
            terminal_factor: vec![1.0; n_terminals],
        }
    }

    /// Whether the mask changes nothing.
    pub fn is_nominal(&self) -> bool {
        self.sat_ok.iter().all(|&v| v)
            && self.gateway_ok.iter().all(|&v| v)
            && self.terminal_factor.iter().all(|&f| f == 1.0)
    }
}

/// Per-satellite downlink chain state built by the routing BFS (shared
/// with [`crate::pipeline`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Downlink {
    /// Gateway the chain lands on.
    pub(crate) gateway: usize,
    /// Distance from this satellite to the gateway along the chain, km.
    pub(crate) dist_km: f64,
    /// ISL hops used by the chain.
    pub(crate) hops: usize,
    /// Slant range of the chain's final downlink leg, km.
    pub(crate) down_range_km: f64,
}

/// Routing at step `k` under an availability mask: down satellites vanish
/// from both the access and relay roles, down gateways from the downlink
/// candidates, and each terminal's access capacity is scaled by its
/// degradation factor. Pure per step, so churn campaigns stay
/// thread-count invariant. Thin wrapper over [`crate::pipeline::StepKernel`]
/// for one-off calls; loops over many steps should hold a kernel and a
/// scratch themselves.
pub fn step_routes_masked(
    store: &EphemerisStore,
    terminals: &[GroundSite],
    gateways: &[GroundSite],
    sim: &SimConfig,
    graph: &GraphConfig,
    k: usize,
    mask: &StepMask,
) -> StepRoutes {
    assert_eq!(mask.sat_ok.len(), store.sat_count(), "one flag per satellite");
    assert_eq!(mask.gateway_ok.len(), gateways.len(), "one flag per gateway");
    assert_eq!(mask.terminal_factor.len(), terminals.len(), "one factor per terminal");
    let kernel = StepKernel::new(store, terminals, gateways, sim, graph);
    kernel.routes(&mut StepScratch::default(), k, Some(mask))
}

/// The brute-force reference kernel: all-satellite scans, first-wins
/// strict-less-than selection in ascending index order. The grid-pruned
/// [`crate::pipeline::StepKernel`] is required to reproduce this function
/// bit for bit (property-tested in `pipeline::proptests`); keep the two in
/// lockstep when touching route semantics. Benchmarks also use it as the
/// speedup baseline.
pub fn step_routes_reference(
    store: &EphemerisStore,
    terminals: &[GroundSite],
    gateways: &[GroundSite],
    sim: &SimConfig,
    graph: &GraphConfig,
    k: usize,
    mask: Option<&StepMask>,
) -> StepRoutes {
    let n = store.sat_count();
    let sin_mask = sim.min_elevation_deg.to_radians().sin();
    let positions: Vec<Vec3> = (0..n).map(|s| store.position(s, k)).collect();
    let sat_ok = |s: usize| mask.is_none_or(|m| m.sat_ok[s]);
    let gateway_ok = |g: usize| mask.is_none_or(|m| m.gateway_ok[g]);

    // Layer 0: satellites that see a gateway directly (best = nearest).
    let mut chain: Vec<Option<Downlink>> = positions
        .iter()
        .enumerate()
        .map(|(s, &p)| {
            if !sat_ok(s) {
                return None;
            }
            let mut best: Option<(usize, f64)> = None;
            for (g, gw) in gateways.iter().enumerate() {
                if gateway_ok(g) && gw.sees_ecef_sin(p, sin_mask) {
                    let r = gw.ecef.distance(p);
                    if best.is_none_or(|(_, br)| r < br) {
                        best = Some((g, r));
                    }
                }
            }
            best.map(|(gateway, r)| Downlink { gateway, dist_km: r, hops: 0, down_range_km: r })
        })
        .collect();

    // BFS layers: each hop lets an unreached satellite join the chain of
    // the nearest already-reached neighbour within ISL range.
    let mut frontier: Vec<usize> =
        chain.iter().enumerate().filter_map(|(s, c)| c.is_some().then_some(s)).collect();
    for _hop in 0..graph.max_hops {
        if frontier.is_empty() {
            break;
        }
        let mut joined = Vec::new();
        for s in 0..n {
            if chain[s].is_some() || !sat_ok(s) {
                continue;
            }
            let mut best: Option<Downlink> = None;
            for &f in &frontier {
                let d = positions[f].distance(positions[s]);
                if d <= graph.isl_range_km {
                    let prev = chain[f].as_ref().expect("frontier is reached");
                    let cand = Downlink {
                        gateway: prev.gateway,
                        dist_km: prev.dist_km + d,
                        hops: prev.hops + 1,
                        down_range_km: prev.down_range_km,
                    };
                    if best.as_ref().is_none_or(|b| cand.dist_km < b.dist_km) {
                        best = Some(cand);
                    }
                }
            }
            if best.is_some() {
                joined.push((s, best));
            }
        }
        frontier = joined.iter().map(|(s, _)| *s).collect();
        for (s, d) in joined {
            chain[s] = d;
        }
    }

    let up = RfLeg::ku_user_uplink();
    let down = RfLeg::ku_gateway_downlink();
    let routes = terminals
        .iter()
        .enumerate()
        .map(|(ti, t)| {
            let factor = mask.map_or(1.0, |m| m.terminal_factor[ti]).clamp(0.0, 1.0);
            let mut best: Option<Route> = None;
            for (s, c) in chain.iter().enumerate() {
                let Some(c) = c else { continue };
                if !t.sees_ecef_sin(positions[s], sin_mask) {
                    continue;
                }
                let up_range = t.ecef.distance(positions[s]);
                let path_km = up_range + c.dist_km;
                if best.as_ref().is_none_or(|b| path_km < b.path_km) {
                    let arch = if c.hops == 0 {
                        PayloadArchitecture::Transparent
                    } else {
                        PayloadArchitecture::Regenerative
                    };
                    let per_channel =
                        end_to_end_capacity_bps(arch, &up, up_range, &down, c.down_range_km);
                    best = Some(Route {
                        sat: s,
                        gateway: c.gateway,
                        hops: c.hops,
                        path_km,
                        latency_ms: path_km / C_KM_S * 1000.0,
                        access_mbps: factor * per_channel * graph.channels_per_link as f64 / 1e6,
                    });
                }
            }
            best
        })
        .collect();
    StepRoutes { routes }
}

/// Gateways colocated with every `n`-th city of `cities` (a party that
/// serves a metro typically lands traffic near it). Names get a `-GS`
/// suffix so tables stay readable.
pub fn gateways_every_nth(cities: &[geodata::City], n: usize) -> Vec<GroundSite> {
    assert!(n >= 1, "need a positive stride");
    cities
        .iter()
        .step_by(n)
        .map(|c| GroundSite::from_degrees(format!("{}-GS", c.name), c.lat_deg, c.lon_deg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodata::paper_cities;
    use leosim::TimeGrid;
    use orbital::constellation::{single_plane, walker_delta, ShellSpec};
    use orbital::time::Epoch;

    fn epoch() -> Epoch {
        Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
    }

    fn store(planes: u32, per_plane: u32, hours: f64) -> EphemerisStore {
        let spec = ShellSpec { planes, sats_per_plane: per_plane, ..ShellSpec::starlink_like() };
        let sats = walker_delta(&spec, epoch());
        let grid = TimeGrid::new(epoch(), hours * 3600.0, 300.0);
        EphemerisStore::build(&sats, &grid, &SimConfig::default())
    }

    #[test]
    fn colocated_gateway_gives_bentpipe_routes() {
        let sats = single_plane(12, 550.0, 53.0, epoch());
        let grid = TimeGrid::new(epoch(), 6.0 * 3600.0, 300.0);
        let st = EphemerisStore::build(&sats, &grid, &SimConfig::default());
        let term = [GroundSite::from_degrees("T", 25.0, 121.5)];
        let gw = [GroundSite::from_degrees("T-GS", 25.0, 121.5)];
        let table =
            RouteTable::build(&st, &term, &gw, &SimConfig::default(), &GraphConfig::default());
        assert!(table.routability() > 0.0, "a 12-sat plane overhead must route sometimes");
        for s in &table.steps {
            if let Some(r) = &s.routes[0] {
                assert_eq!(r.hops, 0, "colocated gateway never needs ISL hops");
                assert!(r.latency_ms > 3.0 && r.latency_ms < 30.0, "latency {}", r.latency_ms);
                assert!(r.access_mbps > 100.0, "capacity {}", r.access_mbps);
            }
        }
    }

    #[test]
    fn isl_hops_extend_reach() {
        let st = store(6, 8, 6.0);
        let term = [GroundSite::from_degrees("T", 25.0, 121.5)];
        let gw = [GroundSite::from_degrees("G", 40.7, -74.0)]; // other side of the world
        let sim = SimConfig::default();
        let bent = GraphConfig { max_hops: 0, ..GraphConfig::default() };
        let isl = GraphConfig { max_hops: 6, isl_range_km: 5000.0, ..GraphConfig::default() };
        let t_bent = RouteTable::build(&st, &term, &gw, &sim, &bent);
        let t_isl = RouteTable::build(&st, &term, &gw, &sim, &isl);
        assert!(
            t_isl.routability() >= t_bent.routability(),
            "ISL routes {} must not lose to bent pipe {}",
            t_isl.routability(),
            t_bent.routability()
        );
        // Relay routes must actually report hops and longer paths.
        let hops: usize =
            t_isl.steps.iter().flat_map(|s| s.routes.iter().flatten()).map(|r| r.hops).sum();
        assert!(hops > 0, "a trans-Pacific gateway requires relaying");
    }

    #[test]
    fn routes_are_thread_count_invariant() {
        let st = store(4, 6, 3.0);
        let cities = paper_cities();
        let terms: Vec<GroundSite> = cities.iter().take(5).map(|c| c.site()).collect();
        let gw = gateways_every_nth(&cities[..5], 2);
        let sim = SimConfig::default();
        let cfg = GraphConfig::default();
        let a = RouteTable::build(&st, &terms, &gw, &sim, &cfg);
        let b = simrt::with_thread_cap(1, || RouteTable::build(&st, &terms, &gw, &sim, &cfg));
        for (sa, sb) in a.steps.iter().zip(&b.steps) {
            for (ra, rb) in sa.routes.iter().zip(&sb.routes) {
                match (ra, rb) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        assert_eq!(x.sat, y.sat);
                        assert_eq!(x.path_km.to_bits(), y.path_km.to_bits());
                        assert_eq!(x.access_mbps.to_bits(), y.access_mbps.to_bits());
                    }
                    _ => panic!("route presence differs between thread counts"),
                }
            }
        }
    }

    #[test]
    fn nominal_mask_reproduces_unmasked_routes() {
        let st = store(4, 6, 3.0);
        let cities = paper_cities();
        let terms: Vec<GroundSite> = cities.iter().take(5).map(|c| c.site()).collect();
        let gw = gateways_every_nth(&cities[..5], 2);
        let sim = SimConfig::default();
        let cfg = GraphConfig::default();
        let table = RouteTable::build(&st, &terms, &gw, &sim, &cfg);
        let mask = StepMask::nominal(st.sat_count(), gw.len(), terms.len());
        assert!(mask.is_nominal());
        for (k, unmasked) in table.steps.iter().enumerate() {
            let masked = step_routes_masked(&st, &terms, &gw, &sim, &cfg, k, &mask);
            for (a, b) in masked.routes.iter().zip(&unmasked.routes) {
                match (a, b) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        assert_eq!(x.sat, y.sat);
                        assert_eq!(x.gateway, y.gateway);
                        assert_eq!(x.path_km.to_bits(), y.path_km.to_bits());
                        assert_eq!(x.access_mbps.to_bits(), y.access_mbps.to_bits());
                    }
                    _ => panic!("nominal mask changed route presence at step {k}"),
                }
            }
        }
    }

    #[test]
    fn downed_satellites_and_gateways_kill_routes() {
        let st = store(4, 6, 3.0);
        let cities = paper_cities();
        let terms: Vec<GroundSite> = cities.iter().take(4).map(|c| c.site()).collect();
        let gw = gateways_every_nth(&cities[..4], 2);
        let sim = SimConfig::default();
        let cfg = GraphConfig::default();
        let mut all_sats_down = StepMask::nominal(st.sat_count(), gw.len(), terms.len());
        all_sats_down.sat_ok.fill(false);
        let mut all_gws_down = StepMask::nominal(st.sat_count(), gw.len(), terms.len());
        all_gws_down.gateway_ok.fill(false);
        for k in 0..st.steps() {
            for mask in [&all_sats_down, &all_gws_down] {
                let routes = step_routes_masked(&st, &terms, &gw, &sim, &cfg, k, mask);
                assert!(routes.routes.iter().all(|r| r.is_none()), "step {k} still routed");
            }
        }
    }

    #[test]
    fn failed_access_satellite_is_rerouted_or_dropped() {
        let st = store(4, 6, 3.0);
        let cities = paper_cities();
        let terms: Vec<GroundSite> = cities.iter().take(3).map(|c| c.site()).collect();
        let gw = gateways_every_nth(&cities[..3], 1);
        let sim = SimConfig::default();
        let cfg = GraphConfig::default();
        let table = RouteTable::build(&st, &terms, &gw, &sim, &cfg);
        let mut exercised = false;
        for (k, step) in table.steps.iter().enumerate() {
            let Some(r) = &step.routes[0] else { continue };
            let mut mask = StepMask::nominal(st.sat_count(), gw.len(), terms.len());
            mask.sat_ok[r.sat] = false;
            let masked = step_routes_masked(&st, &terms, &gw, &sim, &cfg, k, &mask);
            if let Some(m) = &masked.routes[0] {
                assert_ne!(m.sat, r.sat, "step {k} kept its failed access satellite");
            }
            exercised = true;
        }
        assert!(exercised, "scenario never routed terminal 0");
    }

    #[test]
    fn terminal_factor_scales_access_capacity() {
        let st = store(4, 6, 3.0);
        let cities = paper_cities();
        let terms: Vec<GroundSite> = cities.iter().take(2).map(|c| c.site()).collect();
        let gw = gateways_every_nth(&cities[..2], 1);
        let sim = SimConfig::default();
        let cfg = GraphConfig::default();
        let table = RouteTable::build(&st, &terms, &gw, &sim, &cfg);
        let mut mask = StepMask::nominal(st.sat_count(), gw.len(), terms.len());
        mask.terminal_factor[0] = 0.5;
        for (k, step) in table.steps.iter().enumerate() {
            let masked = step_routes_masked(&st, &terms, &gw, &sim, &cfg, k, &mask);
            if let (Some(m), Some(u)) = (&masked.routes[0], &step.routes[0]) {
                // Path selection ignores capacity, so the route is the same
                // and its capacity is exactly halved.
                assert_eq!(m.sat, u.sat);
                assert_eq!(m.access_mbps.to_bits(), (0.5 * u.access_mbps).to_bits());
            }
            if let (Some(m), Some(u)) = (&masked.routes[1], &step.routes[1]) {
                assert_eq!(m.access_mbps.to_bits(), u.access_mbps.to_bits());
            }
        }
    }

    #[test]
    fn gateway_stride_selects_every_nth() {
        let cities = paper_cities();
        let gs = gateways_every_nth(&cities, 3);
        assert_eq!(gs.len(), cities.len().div_ceil(3));
        assert_eq!(gs[0].name, format!("{}-GS", cities[0].name));
        assert_eq!(gs[1].name, format!("{}-GS", cities[3].name));
    }
}
