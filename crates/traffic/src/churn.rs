//! Time-scheduled churn campaigns over the traffic engine.
//!
//! The paper argues a shared MP-LEO constellation degrades gracefully when
//! members leave or satellites fail; the static before/after snapshots in
//! `mpleo::failures` cannot show that because nothing fails *while* demand
//! is being allocated. A [`ChurnSchedule`] is a declarative list of timed
//! events — satellite hard-fail/recover, party withdrawal/rejoin, gateway
//! outage windows, regional link-budget degradation — applied between the
//! engine's steps: [`run_campaign`] rolls the schedule into a per-step
//! membership state, recomputes routing under the resulting
//! [`StepMask`]s, reruns the max-min allocation, and compares against the
//! undisturbed baseline to produce per-step graceful-degradation metrics
//! (served fraction vs. offered, per-party delta, reroute count,
//! time-to-recover). Withdrawals also flow to the settlement side: a
//! signed [`dcp::messages::WithdrawalNotice`] per event, and the withdrawn
//! party sits out the market for every epoch its absence touches, so the
//! cleared book stays zero-sum over the shrinking membership.
//!
//! Determinism contract: the schedule is rolled sequentially into
//! per-step states *before* any parallel work; each step's masked routing
//! and allocation is then a pure function of that precomputed state,
//! fanned out over `simrt` and collected in step order. Campaign reports
//! are therefore byte-identical at any thread count, like the engine
//! underneath (enforced by `tests/determinism_threads.rs`).

use crate::demand::DemandMatrix;
use crate::engine::{run_traffic_with_routes, TrafficConfig, TrafficReport};
use crate::graph::{RouteTable, StepMask, StepRoutes};
use crate::pipeline::{StepKernel, StepScratch};
use crate::market::{clear_market, epoch_orders, party_keys, summarize_epochs};
use dcp::crypto::KeyDirectory;
use dcp::messages::{MarketOrder, WithdrawalNotice};
use geodata::City;
use leosim::ephemeris::EphemerisStore;
use leosim::montecarlo::run_rng;
use leosim::visibility::SimConfig;
use mpleo::party::PartyId;
use orbital::ground::GroundSite;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A deficit at or below this (as a fraction of offered load) counts as
/// fully recovered. After a complete heal the masked steps clone the
/// baseline routes, so the deficit is exactly zero and this tolerance
/// only guards float noise in partially healed campaigns.
pub const RECOVERY_EPS: f64 = 1e-9;

/// One timed membership/topology event. Indices refer to the scenario the
/// campaign runs over: satellites are store rows, gateways and parties are
/// positions in the respective input slices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// Hard failure: the satellite can neither serve nor relay.
    SatFail {
        /// Store row of the failed satellite.
        sat: usize,
    },
    /// The satellite comes back (no-op if it never failed).
    SatRecover {
        /// Store row of the recovering satellite.
        sat: usize,
    },
    /// The party withdraws: its satellites leave the constellation and its
    /// sponsored cities stop offering demand.
    PartyWithdraw {
        /// Index into the campaign's party list.
        party: usize,
    },
    /// The party rejoins with its satellites and demand.
    PartyRejoin {
        /// Index into the campaign's party list.
        party: usize,
    },
    /// The gateway goes dark (backhaul cut, power loss, …).
    GatewayOutage {
        /// Index into the campaign's gateway list.
        gateway: usize,
    },
    /// The gateway comes back.
    GatewayRestore {
        /// Index into the campaign's gateway list.
        gateway: usize,
    },
    /// Regional link-budget degradation: every city inside the lat/lon box
    /// has its access capacity scaled by `factor` (weather, interference).
    RegionDegrade {
        /// Southern box edge, degrees.
        lat_min_deg: f64,
        /// Northern box edge, degrees.
        lat_max_deg: f64,
        /// Western box edge, degrees.
        lon_min_deg: f64,
        /// Eastern box edge, degrees.
        lon_max_deg: f64,
        /// Multiplier on access capacity, `[0, 1]` (0 = total outage).
        factor: f64,
    },
    /// Clears the degradation factor (back to 1.0) inside the box.
    RegionRestore {
        /// Southern box edge, degrees.
        lat_min_deg: f64,
        /// Northern box edge, degrees.
        lat_max_deg: f64,
        /// Western box edge, degrees.
        lon_min_deg: f64,
        /// Eastern box edge, degrees.
        lon_max_deg: f64,
    },
}

/// A declarative campaign: `(step, event)` pairs. Events fire at the
/// *start* of their step, in list order within a step, so a schedule is a
/// complete, reproducible description of the campaign — there is no
/// hidden randomness at run time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChurnSchedule {
    /// The timed events.
    pub events: Vec<(usize, ChurnEvent)>,
}

/// Deterministic failure set: the first `round(fraction * n)` entries of a
/// seeded permutation of `0..n_sats`, sorted. Sets drawn at increasing
/// fractions of the same seed are nested, which keeps churn-rate sweeps
/// monotone by construction.
pub fn sample_failures(seed: u64, n_sats: usize, fraction: f64) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
    let mut order: Vec<usize> = (0..n_sats).collect();
    order.shuffle(&mut run_rng(seed, 0));
    let k = ((fraction * n_sats as f64).round() as usize).min(n_sats);
    let mut chosen = order[..k].to_vec();
    chosen.sort_unstable();
    chosen
}

impl ChurnSchedule {
    /// An empty schedule (a campaign over it reproduces the baseline).
    pub fn new() -> ChurnSchedule {
        ChurnSchedule::default()
    }

    /// Builder: append one event at `step`.
    pub fn at(mut self, step: usize, event: ChurnEvent) -> ChurnSchedule {
        self.events.push((step, event));
        self
    }

    /// Builder: hard-fail a seeded `fraction` of `n_sats` at `fail_step`,
    /// recovering them all at `recover_step` if given (see
    /// [`sample_failures`] for the nesting guarantee).
    pub fn fail_random_sats(
        mut self,
        seed: u64,
        n_sats: usize,
        fraction: f64,
        fail_step: usize,
        recover_step: Option<usize>,
    ) -> ChurnSchedule {
        for sat in sample_failures(seed, n_sats, fraction) {
            self.events.push((fail_step, ChurnEvent::SatFail { sat }));
            if let Some(r) = recover_step {
                self.events.push((r, ChurnEvent::SatRecover { sat }));
            }
        }
        self
    }

    /// The step of the last scheduled event (`None` when empty).
    pub fn last_event_step(&self) -> Option<usize> {
        self.events.iter().map(|(k, _)| *k).max()
    }

    /// Check every event against the scenario's dimensions.
    pub fn validate(
        &self,
        steps: usize,
        n_sats: usize,
        n_gateways: usize,
        n_parties: usize,
    ) -> Result<(), String> {
        for (step, event) in &self.events {
            if *step >= steps {
                return Err(format!("event at step {step} beyond horizon of {steps} steps"));
            }
            match event {
                ChurnEvent::SatFail { sat } | ChurnEvent::SatRecover { sat } => {
                    if *sat >= n_sats {
                        return Err(format!("satellite {sat} out of range ({n_sats})"));
                    }
                }
                ChurnEvent::PartyWithdraw { party } | ChurnEvent::PartyRejoin { party } => {
                    if *party >= n_parties {
                        return Err(format!("party {party} out of range ({n_parties})"));
                    }
                }
                ChurnEvent::GatewayOutage { gateway } | ChurnEvent::GatewayRestore { gateway } => {
                    if *gateway >= n_gateways {
                        return Err(format!("gateway {gateway} out of range ({n_gateways})"));
                    }
                }
                ChurnEvent::RegionDegrade { factor, .. } => {
                    if !(0.0..=1.0).contains(factor) {
                        return Err(format!("degradation factor {factor} outside [0, 1]"));
                    }
                }
                ChurnEvent::RegionRestore { .. } => {}
            }
        }
        Ok(())
    }
}

/// The membership/availability state in force during one step.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnState {
    /// Hard-failed satellites (store row order).
    pub sat_failed: Vec<bool>,
    /// Gateways currently dark.
    pub gateway_down: Vec<bool>,
    /// Parties currently withdrawn.
    pub party_withdrawn: Vec<bool>,
    /// Per-city access-capacity factor from regional degradation.
    pub city_factor: Vec<f64>,
}

impl ChurnState {
    fn nominal(n_sats: usize, n_gateways: usize, n_parties: usize, n_cities: usize) -> ChurnState {
        ChurnState {
            sat_failed: vec![false; n_sats],
            gateway_down: vec![false; n_gateways],
            party_withdrawn: vec![false; n_parties],
            city_factor: vec![1.0; n_cities],
        }
    }

    /// Whether this state changes nothing relative to the baseline.
    pub fn is_nominal(&self) -> bool {
        !self.sat_failed.iter().any(|&v| v)
            && !self.gateway_down.iter().any(|&v| v)
            && !self.party_withdrawn.iter().any(|&v| v)
            && self.city_factor.iter().all(|&f| f == 1.0)
    }

    /// Satellites out of service: hard-failed or owned by a withdrawn
    /// party.
    pub fn down_sats(&self, sat_party: &[usize]) -> usize {
        (0..self.sat_failed.len())
            .filter(|&s| self.sat_failed[s] || self.party_withdrawn[sat_party[s]])
            .count()
    }

    fn apply(&mut self, event: &ChurnEvent, cities: &[City]) {
        let in_box = |c: &City, lat0: f64, lat1: f64, lon0: f64, lon1: f64| {
            c.lat_deg >= lat0 && c.lat_deg <= lat1 && c.lon_deg >= lon0 && c.lon_deg <= lon1
        };
        match event {
            ChurnEvent::SatFail { sat } => self.sat_failed[*sat] = true,
            ChurnEvent::SatRecover { sat } => self.sat_failed[*sat] = false,
            ChurnEvent::PartyWithdraw { party } => self.party_withdrawn[*party] = true,
            ChurnEvent::PartyRejoin { party } => self.party_withdrawn[*party] = false,
            ChurnEvent::GatewayOutage { gateway } => self.gateway_down[*gateway] = true,
            ChurnEvent::GatewayRestore { gateway } => self.gateway_down[*gateway] = false,
            ChurnEvent::RegionDegrade {
                lat_min_deg,
                lat_max_deg,
                lon_min_deg,
                lon_max_deg,
                factor,
            } => {
                for (c, city) in cities.iter().enumerate() {
                    if in_box(city, *lat_min_deg, *lat_max_deg, *lon_min_deg, *lon_max_deg) {
                        self.city_factor[c] = factor.clamp(0.0, 1.0);
                    }
                }
            }
            ChurnEvent::RegionRestore { lat_min_deg, lat_max_deg, lon_min_deg, lon_max_deg } => {
                for (c, city) in cities.iter().enumerate() {
                    if in_box(city, *lat_min_deg, *lat_max_deg, *lon_min_deg, *lon_max_deg) {
                        self.city_factor[c] = 1.0;
                    }
                }
            }
        }
    }
}

/// Roll the schedule into one state snapshot per step (strictly
/// sequential; this is the only stateful part of a campaign and it runs
/// before any parallel work).
pub fn roll_states(
    schedule: &ChurnSchedule,
    steps: usize,
    n_sats: usize,
    n_gateways: usize,
    n_parties: usize,
    cities: &[City],
) -> Vec<ChurnState> {
    let mut state = ChurnState::nominal(n_sats, n_gateways, n_parties, cities.len());
    let mut out = Vec::with_capacity(steps);
    for k in 0..steps {
        for (step, event) in &schedule.events {
            if *step == k {
                state.apply(event, cities);
            }
        }
        out.push(state.clone());
    }
    out
}

/// Campaign parameters: the traffic engine's own configuration plus the
/// schedule and the settlement knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Demand/routing/capacity parameters shared with the plain engine.
    pub traffic: TrafficConfig,
    /// The timed events.
    pub schedule: ChurnSchedule,
    /// Market epoch length, grid steps.
    pub epoch_steps: usize,
    /// Base capacity price, credits per Mbps-epoch.
    pub base_price: f64,
    /// Seed material for the parties' derived signing keys.
    pub key_seed: Vec<u8>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            traffic: TrafficConfig::default(),
            schedule: ChurnSchedule::default(),
            epoch_steps: 36,
            base_price: 1.0,
            key_seed: b"churn-campaign".to_vec(),
        }
    }
}

/// What a campaign produced: the disturbed and undisturbed engine runs,
/// the per-step graceful-degradation series derived from them, and the
/// settlement artifacts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The engine run under churn.
    pub churn: TrafficReport,
    /// The undisturbed run over the same scenario.
    pub baseline: TrafficReport,
    /// Served / offered per step under churn (1.0 when nothing offered).
    pub served_fraction: Vec<f64>,
    /// Served / offered per step in the baseline.
    pub baseline_fraction: Vec<f64>,
    /// `max(baseline_fraction - served_fraction, 0)` per step.
    pub deficit_fraction: Vec<f64>,
    /// Cities whose (satellite, gateway) differs from the baseline route
    /// while still offering demand, per step.
    pub reroutes: Vec<usize>,
    /// Satellites out of service (failed or withdrawn) per step.
    pub down_sats: Vec<usize>,
    /// Gateways dark per step.
    pub down_gateways: Vec<usize>,
    /// Parties withdrawn per step.
    pub withdrawn_parties: Vec<usize>,
    /// Served delta (churn − baseline) per party per step, Mbps,
    /// `[party * steps + k]`.
    pub party_served_delta: Vec<f64>,
    /// One signed notice per `PartyWithdraw` event, schedule order.
    pub notices: Vec<WithdrawalNotice>,
    /// The signed order flow of the churn run's market epochs.
    pub orders: Vec<MarketOrder>,
    /// Net credit transfer per party after clearing (sums to zero).
    pub settlement: BTreeMap<String, f64>,
    /// Trades executed by the book.
    pub trades: usize,
    /// Step of the last scheduled event.
    pub last_event_step: Option<usize>,
    /// Steps from the last event until the deficit first drops to
    /// [`RECOVERY_EPS`] (`None`: never recovered within the horizon).
    pub time_to_recover_steps: Option<usize>,
}

impl CampaignReport {
    /// Worst per-step deficit fraction over the campaign.
    pub fn worst_deficit(&self) -> f64 {
        self.deficit_fraction.iter().fold(0.0, |a, &d| a.max(d))
    }

    /// Mean per-step deficit fraction.
    pub fn mean_deficit(&self) -> f64 {
        if self.deficit_fraction.is_empty() {
            return 0.0;
        }
        self.deficit_fraction.iter().sum::<f64>() / self.deficit_fraction.len() as f64
    }

    /// Total reroutes over the campaign.
    pub fn reroutes_total(&self) -> usize {
        self.reroutes.iter().sum()
    }

    /// Net settlement over every party (zero for a sound market).
    pub fn settlement_net(&self) -> f64 {
        self.settlement.values().sum()
    }

    /// Whether the campaign returned to baseline service (trivially true
    /// for an empty schedule).
    pub fn recovered(&self) -> bool {
        self.last_event_step.is_none() || self.time_to_recover_steps.is_some()
    }

    /// Mean served delta (churn − baseline) of party `p`, Mbps.
    pub fn party_delta_mean(&self, p: usize) -> f64 {
        let steps = self.churn.steps.max(1);
        self.party_served_delta[p * self.churn.steps..(p + 1) * self.churn.steps]
            .iter()
            .sum::<f64>()
            / steps as f64
    }
}

/// Run a churn campaign end to end: generate demand, build the baseline
/// route table, and hand off to [`run_campaign_with_routes`]. Party maps
/// follow [`run_traffic`](crate::engine::run_traffic): `sat_party[s]`
/// owns store row `s`, `city_party[c]` sponsors city `c`.
#[allow(clippy::too_many_arguments)] // scene + config + the three party maps
pub fn run_campaign(
    store: &EphemerisStore,
    cities: &[City],
    gateways: &[GroundSite],
    sim: &SimConfig,
    cfg: &CampaignConfig,
    sat_party: &[usize],
    city_party: &[usize],
    parties: &[PartyId],
) -> CampaignReport {
    assert!(cfg.traffic.demand_scale >= 0.0, "demand scale must be non-negative");
    let sites: Vec<GroundSite> = cities.iter().map(|c| c.site()).collect();
    let mut demand = DemandMatrix::generate(cities, &store.grid, &cfg.traffic.demand);
    if cfg.traffic.demand_scale != 1.0 {
        for v in &mut demand.offered_mbps {
            *v *= cfg.traffic.demand_scale;
        }
    }
    let routes = RouteTable::build(store, &sites, gateways, sim, &cfg.traffic.graph);
    run_campaign_with_routes(
        store, cities, gateways, sim, &demand, &routes, cfg, sat_party, city_party, parties,
    )
}

/// [`run_campaign`] over a precomputed (already scaled) demand matrix and
/// baseline route table, so sweeps reuse the expensive routing pass. The
/// baseline table must have been built over the same store, sites,
/// gateways, `sim`, and `cfg.traffic.graph` — nominal steps reuse its
/// snapshots verbatim.
#[allow(clippy::too_many_arguments)] // scene + config + the three party maps
pub fn run_campaign_with_routes(
    store: &EphemerisStore,
    cities: &[City],
    gateways: &[GroundSite],
    sim: &SimConfig,
    demand: &DemandMatrix,
    baseline_routes: &RouteTable,
    cfg: &CampaignConfig,
    sat_party: &[usize],
    city_party: &[usize],
    parties: &[PartyId],
) -> CampaignReport {
    let steps = demand.steps;
    let n_cities = cities.len();
    let n_sats = store.sat_count();
    assert_eq!(sat_party.len(), n_sats, "one owner per satellite");
    assert_eq!(city_party.len(), n_cities, "one sponsor per city");
    assert!(sat_party.iter().chain(city_party.iter()).all(|&p| p < parties.len()));
    assert_eq!(baseline_routes.steps.len(), steps, "route table covers the demand grid");
    if let Err(e) = cfg.schedule.validate(steps, n_sats, gateways.len(), parties.len()) {
        panic!("invalid churn schedule: {e}");
    }

    // Sequential prologue: roll the schedule into per-step states and
    // derive the routing masks (None = nominal, reuse the baseline step).
    let states = roll_states(&cfg.schedule, steps, n_sats, gateways.len(), parties.len(), cities);
    let masks: Vec<Option<StepMask>> = states
        .iter()
        .map(|st| {
            if st.is_nominal() {
                return None;
            }
            Some(StepMask {
                sat_ok: (0..n_sats)
                    .map(|s| !st.sat_failed[s] && !st.party_withdrawn[sat_party[s]])
                    .collect(),
                gateway_ok: st.gateway_down.iter().map(|&d| !d).collect(),
                terminal_factor: st.city_factor.clone(),
            })
        })
        .collect();

    // Withdrawn sponsors stop offering demand from their step on.
    let mut churn_demand = demand.clone();
    for (c, &party) in city_party.iter().enumerate().take(n_cities) {
        for (k, st) in states.iter().enumerate() {
            if st.party_withdrawn[party] {
                churn_demand.offered_mbps[c * steps + k] = 0.0;
            }
        }
    }

    // Parallel: recompute only the disturbed steps' routes, through the
    // same step kernel as the baseline build — each participant reuses one
    // scratch across the disturbed steps it claims.
    let sites: Vec<GroundSite> = cities.iter().map(|c| c.site()).collect();
    let kernel = StepKernel::new(store, &sites, gateways, sim, &cfg.traffic.graph);
    let churn_steps: Vec<StepRoutes> =
        simrt::par_map_indexed_with(steps, 0, StepScratch::default, |scratch, k| {
            match &masks[k] {
                None => baseline_routes.steps[k].clone(),
                Some(m) => kernel.routes(scratch, k, Some(m)),
            }
        });
    let churn_routes = RouteTable {
        steps: churn_steps,
        terminals: baseline_routes.terminals.clone(),
        gateways: baseline_routes.gateways.clone(),
    };

    let churn = run_traffic_with_routes(
        &churn_demand,
        &churn_routes,
        &cfg.traffic,
        sat_party,
        city_party,
        parties,
    );
    let baseline = run_traffic_with_routes(
        demand,
        baseline_routes,
        &cfg.traffic,
        sat_party,
        city_party,
        parties,
    );

    // Graceful-degradation series (sequential, fixed step order).
    let fraction = |offered: f64, served: f64| if offered > 0.0 { served / offered } else { 1.0 };
    let served_fraction: Vec<f64> = (0..steps)
        .map(|k| fraction(churn.total_offered_steps[k], churn.total_served_steps[k]))
        .collect();
    let baseline_fraction: Vec<f64> = (0..steps)
        .map(|k| fraction(baseline.total_offered_steps[k], baseline.total_served_steps[k]))
        .collect();
    let deficit_fraction: Vec<f64> =
        (0..steps).map(|k| (baseline_fraction[k] - served_fraction[k]).max(0.0)).collect();
    let reroutes: Vec<usize> = (0..steps)
        .map(|k| {
            (0..n_cities)
                .filter(|&c| {
                    let pair =
                        |r: &Option<crate::graph::Route>| r.as_ref().map(|r| (r.sat, r.gateway));
                    churn_demand.offered(c, k) > 0.0
                        && pair(&churn_routes.steps[k].routes[c])
                            != pair(&baseline_routes.steps[k].routes[c])
                })
                .count()
        })
        .collect();
    let down_sats: Vec<usize> = states.iter().map(|st| st.down_sats(sat_party)).collect();
    let down_gateways: Vec<usize> =
        states.iter().map(|st| st.gateway_down.iter().filter(|&&d| d).count()).collect();
    let withdrawn_parties: Vec<usize> =
        states.iter().map(|st| st.party_withdrawn.iter().filter(|&&w| w).count()).collect();
    let party_served_delta: Vec<f64> =
        churn.party_served.iter().zip(&baseline.party_served).map(|(c, b)| c - b).collect();

    // Settlement side: a signed notice per withdrawal, and the market run
    // over the churn report with withdrawn parties censored out of every
    // epoch their absence touches.
    let keys = party_keys(parties, &cfg.key_seed);
    let notices = withdrawal_notices(&cfg.schedule, demand.step_s, sat_party, parties, &keys);
    let mut summaries = summarize_epochs(&churn, cfg.epoch_steps);
    for summary in &mut summaries {
        for (p, pe) in summary.per_party.iter_mut().enumerate() {
            let mut span = summary.start_step..summary.start_step + summary.steps;
            if span.any(|k| states[k].party_withdrawn[p]) {
                pe.offered_mbps = 0.0;
                pe.served_mbps = 0.0;
                pe.carried_mbps = 0.0;
                pe.spare_mbps = 0.0;
            }
        }
    }
    let orders = epoch_orders(&summaries, &keys, cfg.base_price);
    let book = clear_market(&orders);
    let settlement = book.settlement();
    let trades = book.trades().len();

    let last_event_step = cfg.schedule.last_event_step();
    let time_to_recover_steps = last_event_step
        .and_then(|t| (t..steps).find(|&k| deficit_fraction[k] <= RECOVERY_EPS).map(|k| k - t));

    CampaignReport {
        churn,
        baseline,
        served_fraction,
        baseline_fraction,
        deficit_fraction,
        reroutes,
        down_sats,
        down_gateways,
        withdrawn_parties,
        party_served_delta,
        notices,
        orders,
        settlement,
        trades,
        last_event_step,
        time_to_recover_steps,
    }
}

/// One signed [`WithdrawalNotice`] per `PartyWithdraw` event, in schedule
/// order: the party announces which store rows leave and when.
fn withdrawal_notices(
    schedule: &ChurnSchedule,
    step_s: f64,
    sat_party: &[usize],
    parties: &[PartyId],
    keys: &KeyDirectory,
) -> Vec<WithdrawalNotice> {
    let mut notices = Vec::new();
    for (step, event) in &schedule.events {
        let ChurnEvent::PartyWithdraw { party } = event else {
            continue;
        };
        let sat_ids: Vec<u32> = sat_party
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == *party)
            .map(|(s, _)| s as u32)
            .collect();
        let effective_s = *step as f64 * step_s;
        let name = &parties[*party].0;
        let bytes = WithdrawalNotice::signing_bytes(name, &sat_ids, effective_s);
        let signature = keys.sign(name, &bytes).expect("campaign parties are registered");
        notices.push(WithdrawalNotice { party: name.clone(), sat_ids, effective_s, signature });
    }
    notices
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::gateways_every_nth;
    use geodata::paper_cities;
    use leosim::TimeGrid;
    use orbital::constellation::{walker_delta, ShellSpec};
    use orbital::time::Epoch;

    fn epoch() -> Epoch {
        Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
    }

    fn scenario() -> (EphemerisStore, Vec<City>, Vec<GroundSite>) {
        let spec = ShellSpec { planes: 6, sats_per_plane: 8, ..ShellSpec::starlink_like() };
        let sats = walker_delta(&spec, epoch());
        let grid = TimeGrid::new(epoch(), 4.0 * 3600.0, 600.0);
        let store = EphemerisStore::build(&sats, &grid, &SimConfig::default());
        let cities = paper_cities();
        let gateways = gateways_every_nth(&cities, 3);
        (store, cities, gateways)
    }

    fn owners(n_sats: usize, n_cities: usize, n_parties: usize) -> (Vec<usize>, Vec<usize>) {
        (
            (0..n_sats).map(|s| s % n_parties).collect(),
            (0..n_cities).map(|c| c % n_parties).collect(),
        )
    }

    fn run(cfg: &CampaignConfig) -> CampaignReport {
        let (store, cities, gateways) = scenario();
        let parties: Vec<PartyId> = ["alpha", "beta", "gamma"].map(PartyId::new).into();
        let (sat_party, city_party) = owners(store.sat_count(), cities.len(), 3);
        run_campaign(
            &store,
            &cities,
            &gateways,
            &SimConfig::default(),
            cfg,
            &sat_party,
            &city_party,
            &parties,
        )
    }

    #[test]
    fn empty_schedule_reproduces_the_baseline() {
        let report = run(&CampaignConfig::default());
        for (c, b) in
            report.churn.total_served_steps.iter().zip(&report.baseline.total_served_steps)
        {
            assert_eq!(c.to_bits(), b.to_bits(), "empty campaign must match baseline");
        }
        assert!(report.deficit_fraction.iter().all(|&d| d == 0.0));
        assert_eq!(report.reroutes_total(), 0);
        assert!(report.recovered());
        assert!(report.notices.is_empty());
    }

    #[test]
    fn total_blackout_serves_nothing_then_recovers() {
        let (store, cities, gateways) = scenario();
        let n = store.sat_count();
        let steps = store.steps();
        let mut schedule = ChurnSchedule::new();
        for sat in 0..n {
            schedule = schedule
                .at(steps / 4, ChurnEvent::SatFail { sat })
                .at(steps / 2, ChurnEvent::SatRecover { sat });
        }
        let cfg = CampaignConfig { schedule, ..CampaignConfig::default() };
        let parties: Vec<PartyId> = ["alpha", "beta", "gamma"].map(PartyId::new).into();
        let (sat_party, city_party) = owners(n, cities.len(), 3);
        let report = run_campaign(
            &store,
            &cities,
            &gateways,
            &SimConfig::default(),
            &cfg,
            &sat_party,
            &city_party,
            &parties,
        );
        for k in steps / 4..steps / 2 {
            assert_eq!(report.churn.total_served_steps[k], 0.0, "blackout step {k} served");
            assert_eq!(report.down_sats[k], n);
        }
        for k in steps / 2..steps {
            assert_eq!(report.deficit_fraction[k], 0.0, "post-heal step {k} off baseline");
        }
        assert_eq!(report.time_to_recover_steps, Some(0), "heal was the last event");
        assert!(report.worst_deficit() > 0.0, "a blackout must show a deficit");
    }

    #[test]
    fn withdrawal_zeroes_demand_and_emits_a_signed_notice() {
        let (store, cities, gateways) = scenario();
        let steps = store.steps();
        let schedule = ChurnSchedule::new().at(steps / 3, ChurnEvent::PartyWithdraw { party: 1 });
        let cfg = CampaignConfig { schedule, ..CampaignConfig::default() };
        let parties: Vec<PartyId> = ["alpha", "beta", "gamma"].map(PartyId::new).into();
        let (sat_party, city_party) = owners(store.sat_count(), cities.len(), 3);
        let report = run_campaign(
            &store,
            &cities,
            &gateways,
            &SimConfig::default(),
            &cfg,
            &sat_party,
            &city_party,
            &parties,
        );
        for k in steps / 3..steps {
            assert_eq!(report.churn.party_offered[store.steps() + k], 0.0, "beta offered at {k}");
            assert_eq!(report.withdrawn_parties[k], 1);
        }
        assert_eq!(report.notices.len(), 1);
        let n = &report.notices[0];
        assert_eq!(n.party, "beta");
        assert_eq!(n.sat_ids.len(), sat_party.iter().filter(|&&p| p == 1).count());
        let keys = party_keys(&parties, &cfg.key_seed);
        let bytes = WithdrawalNotice::signing_bytes(&n.party, &n.sat_ids, n.effective_s);
        assert!(keys.verify(&n.party, &bytes, &n.signature), "notice signature");
        // A withdrawn party places no orders after its exit epoch starts.
        let exit_epoch = (steps / 3) / cfg.epoch_steps;
        for o in &report.orders {
            if o.party == "beta" {
                assert!(
                    (o.sequence / 2 / parties.len() as u64) < exit_epoch as u64,
                    "withdrawn party ordered in epoch {}",
                    o.sequence / 2 / parties.len() as u64
                );
            }
        }
        assert!(report.settlement_net().abs() < 1e-9, "settlement must stay zero-sum");
    }

    #[test]
    fn campaign_is_thread_count_invariant() {
        let (store, cities, gateways) = scenario();
        let n = store.sat_count();
        let steps = store.steps();
        let schedule = ChurnSchedule::new()
            .fail_random_sats(0xC0FE, n, 0.25, steps / 4, Some(3 * steps / 4))
            .at(steps / 3, ChurnEvent::PartyWithdraw { party: 2 })
            .at(2 * steps / 3, ChurnEvent::PartyRejoin { party: 2 });
        let cfg = CampaignConfig { schedule, ..CampaignConfig::default() };
        let parties: Vec<PartyId> = ["alpha", "beta", "gamma"].map(PartyId::new).into();
        let (sat_party, city_party) = owners(n, cities.len(), 3);
        let run = || {
            run_campaign(
                &store,
                &cities,
                &gateways,
                &SimConfig::default(),
                &cfg,
                &sat_party,
                &city_party,
                &parties,
            )
        };
        let a = run();
        let b = simrt::with_thread_cap(1, run);
        let c = simrt::with_thread_cap(4, run);
        for r in [&b, &c] {
            for (x, y) in a.served_fraction.iter().zip(&r.served_fraction) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(a.reroutes, r.reroutes);
            assert_eq!(a.orders, r.orders);
            assert_eq!(a.notices, r.notices);
        }
    }

    #[test]
    fn gateway_outage_and_region_degradation_bite_and_heal() {
        let (store, cities, _) = scenario();
        let steps = store.steps();
        // A single colocated gateway so the outage is total.
        let gateways = gateways_every_nth(&cities, cities.len());
        let schedule = ChurnSchedule::new()
            .at(2, ChurnEvent::GatewayOutage { gateway: 0 })
            .at(5, ChurnEvent::GatewayRestore { gateway: 0 })
            .at(
                8,
                ChurnEvent::RegionDegrade {
                    lat_min_deg: -90.0,
                    lat_max_deg: 90.0,
                    lon_min_deg: -180.0,
                    lon_max_deg: 180.0,
                    factor: 0.0,
                },
            )
            .at(
                11,
                ChurnEvent::RegionRestore {
                    lat_min_deg: -90.0,
                    lat_max_deg: 90.0,
                    lon_min_deg: -180.0,
                    lon_max_deg: 180.0,
                },
            );
        let cfg = CampaignConfig { schedule, ..CampaignConfig::default() };
        let parties: Vec<PartyId> = ["solo"].map(PartyId::new).into();
        let (sat_party, city_party) = owners(store.sat_count(), cities.len(), 1);
        let report = run_campaign(
            &store,
            &cities,
            &gateways,
            &SimConfig::default(),
            &cfg,
            &sat_party,
            &city_party,
            &parties,
        );
        for k in 2..5 {
            assert_eq!(report.churn.total_served_steps[k], 0.0, "gateway outage step {k}");
        }
        for k in 8..11 {
            assert_eq!(report.churn.total_served_steps[k], 0.0, "degraded-to-zero step {k}");
        }
        for k in 11..steps {
            assert_eq!(report.deficit_fraction[k], 0.0, "post-restore step {k}");
        }
        assert!(report.recovered());
    }

    #[test]
    fn failure_samples_are_nested_across_fractions() {
        let small = sample_failures(7, 100, 0.1);
        let large = sample_failures(7, 100, 0.4);
        assert_eq!(small.len(), 10);
        assert_eq!(large.len(), 40);
        assert!(small.iter().all(|s| large.contains(s)), "sets must be nested");
        // Different seeds draw different sets.
        assert_ne!(sample_failures(8, 100, 0.1), small);
    }

    #[test]
    fn schedule_validation_rejects_out_of_range_events() {
        let steps = 10;
        let bad_step = ChurnSchedule::new().at(10, ChurnEvent::SatFail { sat: 0 });
        assert!(bad_step.validate(steps, 5, 2, 2).is_err());
        let bad_sat = ChurnSchedule::new().at(0, ChurnEvent::SatFail { sat: 5 });
        assert!(bad_sat.validate(steps, 5, 2, 2).is_err());
        let bad_party = ChurnSchedule::new().at(0, ChurnEvent::PartyWithdraw { party: 2 });
        assert!(bad_party.validate(steps, 5, 2, 2).is_err());
        let bad_gw = ChurnSchedule::new().at(0, ChurnEvent::GatewayOutage { gateway: 2 });
        assert!(bad_gw.validate(steps, 5, 2, 2).is_err());
        let bad_factor = ChurnSchedule::new().at(
            0,
            ChurnEvent::RegionDegrade {
                lat_min_deg: 0.0,
                lat_max_deg: 1.0,
                lon_min_deg: 0.0,
                lon_max_deg: 1.0,
                factor: 1.5,
            },
        );
        assert!(bad_factor.validate(steps, 5, 2, 2).is_err());
        let ok = ChurnSchedule::new().at(9, ChurnEvent::SatRecover { sat: 4 });
        assert!(ok.validate(steps, 5, 2, 2).is_ok());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// One satellite fail/recover event for the rolled-state model:
    /// `(step, sat, is_fail)`.
    fn arb_sat_events(
        steps: usize,
        n_sats: usize,
    ) -> impl Strategy<Value = Vec<(usize, usize, bool)>> {
        prop::collection::vec((0..steps, 0..n_sats, any::<bool>()), 0..24)
    }

    fn schedule_of(events: &[(usize, usize, bool)]) -> ChurnSchedule {
        let mut schedule = ChurnSchedule::new();
        for &(step, sat, is_fail) in events {
            let event =
                if is_fail { ChurnEvent::SatFail { sat } } else { ChurnEvent::SatRecover { sat } };
            schedule = schedule.at(step, event);
        }
        schedule
    }

    /// The mask a campaign derives from one rolled state (mirrors
    /// `run_campaign_with_routes`): `None` on nominal steps, else per-item
    /// availability.
    fn mask_of(state: &ChurnState, sat_party: &[usize]) -> Option<StepMask> {
        if state.is_nominal() {
            return None;
        }
        Some(StepMask {
            sat_ok: (0..state.sat_failed.len())
                .map(|s| !state.sat_failed[s] && !state.party_withdrawn[sat_party[s]])
                .collect(),
            gateway_ok: state.gateway_down.iter().map(|&d| !d).collect(),
            terminal_factor: state.city_factor.clone(),
        })
    }

    proptest! {
        /// A zero-length outage window — fail and recover at the same
        /// step, fail listed first — is invisible: events fire in list
        /// order at the start of the step, so every rolled state stays
        /// nominal and no step ever gets a mask.
        #[test]
        fn zero_length_window_is_invisible(
            steps in 1usize..40,
            step_frac in 0.0f64..1.0,
            sat in 0usize..12,
        ) {
            let k = ((steps - 1) as f64 * step_frac) as usize;
            let schedule = ChurnSchedule::new()
                .at(k, ChurnEvent::SatFail { sat })
                .at(k, ChurnEvent::SatRecover { sat });
            let states = roll_states(&schedule, steps, 12, 1, 1, &[]);
            let sat_party = vec![0usize; 12];
            for (j, state) in states.iter().enumerate() {
                prop_assert!(state.is_nominal(), "step {j} disturbed by a zero-length window");
                prop_assert!(mask_of(state, &sat_party).is_none());
            }
        }

        /// Recover listed *before* fail at the same step leaves the
        /// satellite down from that step to the horizon — within-step list
        /// order is semantic, not cosmetic.
        #[test]
        fn recover_before_fail_leaves_the_sat_down(
            steps in 1usize..40,
            step_frac in 0.0f64..1.0,
            sat in 0usize..12,
        ) {
            let k = ((steps - 1) as f64 * step_frac) as usize;
            let schedule = ChurnSchedule::new()
                .at(k, ChurnEvent::SatRecover { sat })
                .at(k, ChurnEvent::SatFail { sat });
            let states = roll_states(&schedule, steps, 12, 1, 1, &[]);
            let sat_party = vec![0usize; 12];
            for (j, state) in states.iter().enumerate() {
                prop_assert_eq!(state.sat_failed[sat], j >= k, "step {}", j);
                match mask_of(state, &sat_party) {
                    Some(mask) => {
                        prop_assert!(j >= k);
                        prop_assert!(!mask.sat_ok[sat]);
                        prop_assert!(mask.sat_ok.iter().filter(|&&ok| !ok).count() == 1);
                    }
                    None => prop_assert!(j < k),
                }
            }
        }

        /// Arbitrary overlapping fail/recover windows reduce to
        /// last-event-wins per satellite: at step `k` the satellite is down
        /// iff the latest event at or before `k` — ordered by (step, list
        /// position) — touching it is a `SatFail`. Pins the boolean-flag
        /// semantics (a recover inside an overlapping window clears the
        /// flag for *all* windows).
        #[test]
        fn overlapping_windows_follow_last_event_wins(
            (steps, events) in (2usize..30).prop_flat_map(|steps| {
                (Just(steps), arb_sat_events(steps, 6))
            }),
        ) {
            let schedule = schedule_of(&events);
            let states = roll_states(&schedule, steps, 6, 1, 1, &[]);
            for k in 0..steps {
                for sat in 0..6 {
                    let expected = events
                        .iter()
                        .enumerate()
                        .filter(|&(_, &(step, s, _))| step <= k && s == sat)
                        .max_by_key(|&(idx, &(step, _, _))| (step, idx))
                        .is_some_and(|(_, &(_, _, is_fail))| is_fail);
                    prop_assert_eq!(
                        states[k].sat_failed[sat],
                        expected,
                        "step {} sat {}",
                        k,
                        sat
                    );
                }
            }
        }

        /// The mask derivation is exact: a step gets `None` iff its rolled
        /// state is nominal, and a present mask marks a satellite usable
        /// iff it is neither failed nor owned by a withdrawn party.
        #[test]
        fn masks_match_rolled_states_exactly(
            (steps, events) in (2usize..24).prop_flat_map(|steps| {
                (Just(steps), arb_sat_events(steps, 6))
            }),
            withdraw_step_frac in 0.0f64..1.0,
            with_withdrawal in any::<bool>(),
        ) {
            let mut schedule = schedule_of(&events);
            if with_withdrawal {
                let k = ((steps - 1) as f64 * withdraw_step_frac) as usize;
                schedule = schedule.at(k, ChurnEvent::PartyWithdraw { party: 1 });
            }
            let sat_party: Vec<usize> = (0..6).map(|s| s % 2).collect();
            let states = roll_states(&schedule, steps, 6, 2, 2, &[]);
            for state in &states {
                match mask_of(state, &sat_party) {
                    None => prop_assert!(state.is_nominal()),
                    Some(mask) => {
                        prop_assert!(!state.is_nominal());
                        prop_assert!(!mask.is_nominal());
                        for s in 0..6 {
                            let usable = !state.sat_failed[s]
                                && !state.party_withdrawn[sat_party[s]];
                            prop_assert_eq!(mask.sat_ok[s], usable);
                        }
                    }
                }
            }
        }
    }
}
