//! # scenario — the seeded whole-stack fuzzer
//!
//! The paper's decentralized-constellation argument rests on the system
//! behaving correctly under *arbitrary* combinations of ownership, demand,
//! churn, and market settlement — a state space hand-written tests cannot
//! enumerate. This crate generates that space instead: a [`gen::Scenario`]
//! is a seeded, self-describing sample of the whole configuration surface
//! (constellation shell, time grid, city demand mix, multi-party ownership
//! split, churn schedule, fidelity and capacity knobs), and
//! [`oracle::check_scenario`] drives it through the entire stack —
//! `EphemerisStore` → `StepKernel` routing → max-min allocation → churn
//! campaign → market settlement — checking the cross-layer invariants the
//! layers promise each other (feasibility, flow conservation, max-min
//! fairness, kernel ≡ brute-force reference, baseline-reuse identity,
//! monotone recovery, zero-sum settlement, signature validity, and
//! bit-identity across thread counts).
//!
//! Failures shrink ([`shrink::shrink`]) to a minimal scenario and ship as
//! a one-line JSON [`shrink::Repro`] that replays without the generator.
//! The [`fuzz::run_fuzz`] driver backs the `mpleo fuzz` CLI subcommand and
//! the CI smoke tier, which re-checks the pinned [`corpus`] plus a window
//! of fresh seeds starting at the date-independent
//! [`seeds::FUZZ_SMOKE_START`].
//!
//! Determinism contract: every random draw flows through
//! `leosim::montecarlo::run_rng(seed, stream)` with a per-dimension stream
//! constant from [`seeds`], and every downstream layer is already
//! byte-identical at any thread count (enforced here by the
//! thread-identity oracle) — so a seed, or a shrunk scenario struct, is a
//! complete reproduction recipe.

pub mod corpus;
pub mod fuzz;
pub mod gen;
pub mod oracle;
pub mod seeds;
pub mod shrink;

pub use corpus::{load_corpus, CorpusEntry};
pub use fuzz::{run_fuzz, FuzzReport};
pub use gen::{Built, Ownership, Scenario};
pub use oracle::{check_scenario, check_step_allocation, ScenarioOutcome, Violation};
pub use shrink::{shrink, Repro};
