//! The seeded scenario generator.
//!
//! A [`Scenario`] is a complete, self-describing, JSON-serializable
//! description of one end-to-end run of the stack: the constellation shell,
//! the time grid, the city/gateway/party scene, the demand and routing
//! knobs, the capacity limits, and the churn schedule. Everything downstream
//! ([`Scenario::build`], the oracles, the engines) is a pure function of
//! this struct, so a scenario reproduces bit-for-bit from its JSON — the
//! shrinker mutates the struct directly and never needs the generator
//! again.
//!
//! Generation draws every dimension from an independent
//! [`leosim::montecarlo::run_rng`] stream of the scenario seed (see
//! [`crate::seeds`]), so tweaking the distribution of one dimension never
//! perturbs the samples of another.

use crate::seeds;
use geodata::{paper_cities, City};
use leosim::ephemeris::EphemerisStore;
use leosim::montecarlo::run_rng;
use leosim::visibility::{PropagatorKind, SimConfig};
use leosim::TimeGrid;
use mpleo::party::PartyId;
use orbital::constellation::{walker_delta, ShellSpec};
use orbital::ground::GroundSite;
use orbital::time::Epoch;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use traffic::{
    gateways_every_nth, CampaignConfig, ChurnEvent, ChurnSchedule, DemandConfig, GraphConfig,
    TrafficConfig,
};

/// How satellites and cities are split between the parties (derived
/// deterministically in [`Scenario::build`], so shrinking the party count
/// keeps the map well-formed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Ownership {
    /// `index % parties` — maximally interleaved.
    RoundRobin,
    /// Contiguous blocks of roughly equal size.
    Blocks,
    /// A seeded shuffle of the round-robin map (stream
    /// [`seeds::STREAM_OWNERSHIP`] of the scenario seed).
    Shuffled,
}

/// A complete scenario: every knob the stack exposes, in one
/// JSON-serializable struct. See the module docs for the design contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The generating seed (kept for repro labelling; the fields below are
    /// authoritative).
    pub seed: u64,
    /// Walker shell: orbital planes.
    pub planes: u32,
    /// Walker shell: satellites per plane.
    pub sats_per_plane: u32,
    /// Shell altitude, km.
    pub altitude_km: f64,
    /// Shell inclination, degrees.
    pub inclination_deg: f64,
    /// Propagate with full SGP4 instead of Kepler+J2.
    pub sgp4: bool,
    /// Elevation mask, degrees.
    pub mask_deg: f64,
    /// Horizon, seconds.
    pub horizon_s: f64,
    /// Grid step, seconds.
    pub step_s: f64,
    /// Indices into [`geodata::paper_cities`] (sorted, distinct).
    pub cities: Vec<usize>,
    /// Gateways colocated with every `n`-th selected city.
    pub gateway_stride: usize,
    /// Number of parties.
    pub n_parties: usize,
    /// Ownership split of satellites and cities.
    pub ownership: Ownership,
    /// Multiplier on every city's offered load.
    pub demand_scale: f64,
    /// Per-city demand amplitude jitter.
    pub jitter: f64,
    /// Maximum ISL edge length, km.
    pub isl_range_km: f64,
    /// Maximum ISL hops (0 = bent pipe only).
    pub max_hops: usize,
    /// Ku channels aggregated per city access link.
    pub channels_per_link: usize,
    /// Per-satellite throughput cap, Mbps.
    pub sat_capacity_mbps: f64,
    /// Per-gateway backhaul cap, Mbps.
    pub gateway_capacity_mbps: f64,
    /// Market epoch length, grid steps.
    pub epoch_steps: usize,
    /// Base capacity price, credits per Mbps-epoch.
    pub base_price: f64,
    /// The timed churn events.
    pub schedule: ChurnSchedule,
}

/// The materialized scene a scenario runs over.
pub struct Built {
    /// Propagated ephemerides of the shell.
    pub store: EphemerisStore,
    /// The simulation grid.
    pub grid: TimeGrid,
    /// Elevation mask / propagator configuration.
    pub sim: SimConfig,
    /// The selected cities.
    pub cities: Vec<City>,
    /// Gateways (every `gateway_stride`-th city).
    pub gateways: Vec<GroundSite>,
    /// Party identities (`party-0` …).
    pub parties: Vec<PartyId>,
    /// Satellite owner map (store row → party index).
    pub sat_party: Vec<usize>,
    /// City sponsor map (city → party index).
    pub city_party: Vec<usize>,
    /// The campaign configuration (traffic knobs + schedule + market).
    pub cfg: CampaignConfig,
}

/// The shared scenario epoch (same instant every other layer uses).
pub fn scenario_epoch() -> Epoch {
    Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
}

impl Scenario {
    /// Satellites in the shell.
    pub fn n_sats(&self) -> usize {
        (self.planes * self.sats_per_plane) as usize
    }

    /// Grid steps over the horizon (matches [`TimeGrid::new`]).
    pub fn steps(&self) -> usize {
        (self.horizon_s / self.step_s).floor() as usize + 1
    }

    /// Gateways the scene will have.
    pub fn n_gateways(&self) -> usize {
        self.cities.len().div_ceil(self.gateway_stride)
    }

    /// Generate the scenario for `seed`. Deterministic: the same seed
    /// always yields the same scenario, and each dimension draws from its
    /// own `run_rng(seed, stream)` stream.
    pub fn generate(seed: u64) -> Scenario {
        let mut shell = run_rng(seed, seeds::STREAM_SHELL);
        let planes = shell.gen_range(2usize..7) as u32;
        let sats_per_plane = shell.gen_range(3usize..11) as u32;
        let altitude_km = shell.gen_range(450.0..1200.0);
        let inclination_deg = shell.gen_range(45.0..97.5);
        let sgp4 = shell.gen_bool(0.15);
        let mask_deg = shell.gen_range(10.0..40.0);

        let mut grid = run_rng(seed, seeds::STREAM_GRID);
        let step_s = [300.0, 600.0, 900.0][grid.gen_range(0usize..3)];
        let horizon_s = grid.gen_range(2.0..8.0) * 3600.0;

        let mut scene = run_rng(seed, seeds::STREAM_SCENE);
        let pool = paper_cities().len();
        let n_cities = scene.gen_range(2usize..11);
        let mut all: Vec<usize> = (0..pool).collect();
        all.shuffle(&mut scene);
        let mut cities = all[..n_cities].to_vec();
        cities.sort_unstable();
        let gateway_stride = scene.gen_range(1usize..4.min(n_cities) + 1);
        let n_parties = scene.gen_range(1usize..5);
        let ownership = [Ownership::RoundRobin, Ownership::Blocks, Ownership::Shuffled]
            [scene.gen_range(0usize..3)];

        let mut knobs = run_rng(seed, seeds::STREAM_KNOBS);
        // Occasionally zero demand (everything downstream must degrade to
        // the trivial fixed point); otherwise a wide scale range so both
        // slack and saturated allocations appear.
        let demand_scale = if knobs.gen_bool(0.05) { 0.0 } else { knobs.gen_range(0.2..3.0) };
        let jitter = knobs.gen_range(0.0..0.3);
        let isl_range_km = knobs.gen_range(1500.0..5000.0);
        let max_hops = knobs.gen_range(0usize..4);
        let channels_per_link = knobs.gen_range(8usize..33);
        // Log-uniform-ish capacity draws reach both starved and unconstrained
        // regimes (10^2 .. 10^4.5 Mbps).
        let sat_capacity_mbps = 10f64.powf(knobs.gen_range(2.0..4.5));
        let gateway_capacity_mbps = 10f64.powf(knobs.gen_range(2.0..4.5));
        let base_price = knobs.gen_range(0.5..2.0);

        let mut sc = Scenario {
            seed,
            planes,
            sats_per_plane,
            altitude_km,
            inclination_deg,
            sgp4,
            mask_deg,
            horizon_s,
            step_s,
            cities,
            gateway_stride,
            n_parties,
            ownership,
            demand_scale,
            jitter,
            isl_range_km,
            max_hops,
            channels_per_link,
            sat_capacity_mbps,
            gateway_capacity_mbps,
            epoch_steps: 0, // filled below, needs steps()
            base_price,
            schedule: ChurnSchedule::new(),
        };
        let steps = sc.steps();
        sc.epoch_steps = knobs.gen_range(1usize..steps + 3);
        sc.schedule = generate_schedule(seed, steps, sc.n_sats(), sc.n_gateways(), n_parties);
        sc.sanitize();
        sc
    }

    /// Clamp every field into its valid range and drop schedule events the
    /// dimensions cannot carry. Idempotent; called after generation and
    /// after every shrink mutation so mutated scenarios always validate.
    pub fn sanitize(&mut self) {
        self.planes = self.planes.clamp(1, 12);
        self.sats_per_plane = self.sats_per_plane.clamp(1, 16);
        self.altitude_km = self.altitude_km.clamp(350.0, 2000.0);
        self.inclination_deg = self.inclination_deg.clamp(10.0, 120.0);
        self.mask_deg = self.mask_deg.clamp(5.0, 60.0);
        self.step_s = self.step_s.clamp(60.0, 3600.0);
        self.horizon_s = self.horizon_s.clamp(self.step_s, 48.0 * 3600.0);
        let pool = paper_cities().len();
        self.cities.retain(|&c| c < pool);
        self.cities.sort_unstable();
        self.cities.dedup();
        if self.cities.is_empty() {
            self.cities.push(0);
        }
        self.gateway_stride = self.gateway_stride.clamp(1, self.cities.len());
        self.n_parties = self.n_parties.clamp(1, 8);
        self.demand_scale = self.demand_scale.clamp(0.0, 10.0);
        self.jitter = self.jitter.clamp(0.0, 1.0);
        self.isl_range_km = self.isl_range_km.clamp(100.0, 10_000.0);
        self.max_hops = self.max_hops.min(6);
        self.channels_per_link = self.channels_per_link.clamp(1, 64);
        self.sat_capacity_mbps = self.sat_capacity_mbps.clamp(1.0, 1e6);
        self.gateway_capacity_mbps = self.gateway_capacity_mbps.clamp(1.0, 1e6);
        self.epoch_steps = self.epoch_steps.clamp(1, self.steps() + 2);
        self.base_price = self.base_price.clamp(0.01, 100.0);
        let (steps, n_sats, n_gateways, n_parties) =
            (self.steps(), self.n_sats(), self.n_gateways(), self.n_parties);
        self.schedule.events.retain(|(step, event)| {
            *step < steps
                && match event {
                    ChurnEvent::SatFail { sat } | ChurnEvent::SatRecover { sat } => *sat < n_sats,
                    ChurnEvent::PartyWithdraw { party } | ChurnEvent::PartyRejoin { party } => {
                        *party < n_parties
                    }
                    ChurnEvent::GatewayOutage { gateway }
                    | ChurnEvent::GatewayRestore { gateway } => *gateway < n_gateways,
                    ChurnEvent::RegionDegrade { factor, .. } => (0.0..=1.0).contains(factor),
                    ChurnEvent::RegionRestore { .. } => true,
                }
        });
    }

    /// Whether the schedule's final state is nominal — every failure healed,
    /// every withdrawal rejoined, every outage restored, every degradation
    /// lifted. Derived by rolling the schedule, so it stays correct under
    /// arbitrary shrinker edits.
    pub fn fully_heals(&self) -> bool {
        let cities: Vec<City> = self.cities.iter().map(|&c| paper_cities()[c].clone()).collect();
        let states = traffic::churn::roll_states(
            &self.schedule,
            self.steps(),
            self.n_sats(),
            self.n_gateways(),
            self.n_parties,
            &cities,
        );
        states.last().is_none_or(|st| st.is_nominal())
    }

    /// Materialize the scene: propagate the shell, select the cities, place
    /// the gateways, derive the ownership maps, and assemble the campaign
    /// configuration. Pure function of `self`.
    pub fn build(&self) -> Built {
        let epoch = scenario_epoch();
        let spec = ShellSpec {
            altitude_km: self.altitude_km,
            inclination_deg: self.inclination_deg,
            planes: self.planes,
            sats_per_plane: self.sats_per_plane,
            ..ShellSpec::starlink_like()
        };
        let sats = walker_delta(&spec, epoch);
        let grid = TimeGrid::new(epoch, self.horizon_s, self.step_s);
        let sim = SimConfig {
            min_elevation_deg: self.mask_deg,
            propagator: if self.sgp4 { PropagatorKind::Sgp4 } else { PropagatorKind::KeplerJ2 },
            ..SimConfig::default()
        };
        let store = EphemerisStore::build(&sats, &grid, &sim);
        let pool = paper_cities();
        let cities: Vec<City> = self.cities.iter().map(|&c| pool[c].clone()).collect();
        let gateways = gateways_every_nth(&cities, self.gateway_stride);
        let parties: Vec<PartyId> =
            (0..self.n_parties).map(|p| PartyId::new(format!("party-{p}"))).collect();
        let sat_party = self.owner_map(store.sat_count());
        let city_party = self.owner_map(cities.len());
        let cfg = CampaignConfig {
            traffic: TrafficConfig {
                demand: DemandConfig {
                    jitter: self.jitter,
                    seed: self.seed,
                    ..DemandConfig::default()
                },
                graph: GraphConfig {
                    isl_range_km: self.isl_range_km,
                    max_hops: self.max_hops,
                    channels_per_link: self.channels_per_link,
                },
                sat_capacity_mbps: self.sat_capacity_mbps,
                gateway_capacity_mbps: self.gateway_capacity_mbps,
                demand_scale: self.demand_scale,
            },
            schedule: self.schedule.clone(),
            epoch_steps: self.epoch_steps,
            base_price: self.base_price,
            key_seed: format!("scenario-{}", self.seed).into_bytes(),
        };
        Built { store, grid, sim, cities, gateways, parties, sat_party, city_party, cfg }
    }

    /// The ownership map over `n` items for the configured split.
    fn owner_map(&self, n: usize) -> Vec<usize> {
        let p = self.n_parties;
        match self.ownership {
            Ownership::RoundRobin => (0..n).map(|i| i % p).collect(),
            Ownership::Blocks => (0..n).map(|i| (i * p / n.max(1)).min(p - 1)).collect(),
            Ownership::Shuffled => {
                let mut map: Vec<usize> = (0..n).map(|i| i % p).collect();
                map.shuffle(&mut run_rng(self.seed, seeds::STREAM_OWNERSHIP));
                map
            }
        }
    }
}

/// Sample a churn schedule: a handful of disturbance windows (satellite
/// failure, party withdrawal, gateway outage, regional degradation), each
/// healing within the horizon with high probability, plus occasional
/// orphan heal events (which must be no-ops) and same-step fail/heal pairs
/// (zero-length windows) to stress event ordering.
fn generate_schedule(
    seed: u64,
    steps: usize,
    n_sats: usize,
    n_gateways: usize,
    n_parties: usize,
) -> ChurnSchedule {
    let mut rng = run_rng(seed, seeds::STREAM_SCHEDULE);
    let mut schedule = ChurnSchedule::new();
    // With probability ~0.4 force a fully-healing campaign: every window
    // closes strictly before the horizon so the recovery oracle has teeth.
    let heal_all = rng.gen_bool(0.4);
    let n_windows = rng.gen_range(0usize..9);
    for _ in 0..n_windows {
        let t0 = rng.gen_range(0..steps);
        // Zero-length windows (heal in the same step) are deliberately
        // reachable: t1 == t0.
        let t1 = if heal_all || rng.gen_bool(0.7) { Some(rng.gen_range(t0..steps)) } else { None };
        match rng.gen_range(0u64..4) {
            0 => {
                let sat = rng.gen_range(0..n_sats);
                schedule = schedule.at(t0, ChurnEvent::SatFail { sat });
                if let Some(t1) = t1 {
                    schedule = schedule.at(t1, ChurnEvent::SatRecover { sat });
                }
            }
            1 if n_parties > 0 => {
                let party = rng.gen_range(0..n_parties);
                schedule = schedule.at(t0, ChurnEvent::PartyWithdraw { party });
                if let Some(t1) = t1 {
                    schedule = schedule.at(t1, ChurnEvent::PartyRejoin { party });
                }
            }
            2 if n_gateways > 0 => {
                let gateway = rng.gen_range(0..n_gateways);
                schedule = schedule.at(t0, ChurnEvent::GatewayOutage { gateway });
                if let Some(t1) = t1 {
                    schedule = schedule.at(t1, ChurnEvent::GatewayRestore { gateway });
                }
            }
            _ => {
                let lat0 = rng.gen_range(-60.0..50.0);
                let lon0 = rng.gen_range(-180.0..120.0);
                let (lat1, lon1) =
                    (lat0 + rng.gen_range(5.0..40.0), lon0 + rng.gen_range(5.0..60.0));
                let factor = if rng.gen_bool(0.3) { 0.0 } else { rng.gen_range(0.0..1.0) };
                schedule = schedule.at(
                    t0,
                    ChurnEvent::RegionDegrade {
                        lat_min_deg: lat0,
                        lat_max_deg: lat1,
                        lon_min_deg: lon0,
                        lon_max_deg: lon1,
                        factor,
                    },
                );
                if let Some(t1) = t1 {
                    schedule = schedule.at(
                        t1,
                        ChurnEvent::RegionRestore {
                            lat_min_deg: lat0,
                            lat_max_deg: lat1,
                            lon_min_deg: lon0,
                            lon_max_deg: lon1,
                        },
                    );
                }
            }
        }
    }
    // Orphan heals: recovering something that never failed must be a no-op
    // everywhere downstream.
    if !heal_all && rng.gen_bool(0.3) {
        let t = rng.gen_range(0..steps);
        schedule = schedule.at(t, ChurnEvent::SatRecover { sat: rng.gen_range(0..n_sats) });
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 7, 0xF022, u64::MAX] {
            let a = Scenario::generate(seed);
            let b = Scenario::generate(seed);
            assert_eq!(a, b, "seed {seed} generated two different scenarios");
        }
    }

    #[test]
    fn generated_scenarios_validate_and_roundtrip_json() {
        for seed in 0..50u64 {
            let sc = Scenario::generate(seed);
            assert!(sc.n_sats() >= 6 && sc.n_sats() <= 60, "seed {seed}: {} sats", sc.n_sats());
            assert!(sc.steps() >= 8, "seed {seed}: {} steps", sc.steps());
            sc.schedule
                .validate(sc.steps(), sc.n_sats(), sc.n_gateways(), sc.n_parties)
                .unwrap_or_else(|e| panic!("seed {seed}: invalid schedule: {e}"));
            let json = serde_json::to_string(&sc).unwrap();
            let back: Scenario = serde_json::from_str(&json).unwrap();
            assert_eq!(back, sc, "seed {seed} JSON round-trip");
        }
    }

    #[test]
    fn seeds_vary_the_scenario() {
        let a = Scenario::generate(1);
        let b = Scenario::generate(2);
        assert_ne!(a, b, "distinct seeds should not collide");
    }

    #[test]
    fn sanitize_drops_out_of_range_events_and_is_idempotent() {
        let mut sc = Scenario::generate(3);
        let steps = sc.steps();
        sc.schedule = sc
            .schedule
            .clone()
            .at(steps - 1, ChurnEvent::SatFail { sat: usize::MAX })
            .at(steps - 1, ChurnEvent::GatewayOutage { gateway: usize::MAX })
            .at(steps - 1, ChurnEvent::PartyWithdraw { party: usize::MAX });
        sc.sanitize();
        sc.schedule.validate(sc.steps(), sc.n_sats(), sc.n_gateways(), sc.n_parties).unwrap();
        let once = sc.clone();
        sc.sanitize();
        assert_eq!(sc, once, "sanitize must be idempotent");
    }

    #[test]
    fn build_matches_declared_dimensions() {
        let sc = Scenario::generate(11);
        let b = sc.build();
        assert_eq!(b.store.sat_count(), sc.n_sats());
        assert_eq!(b.store.steps(), sc.steps());
        assert_eq!(b.cities.len(), sc.cities.len());
        assert_eq!(b.gateways.len(), sc.n_gateways());
        assert_eq!(b.parties.len(), sc.n_parties);
        assert_eq!(b.sat_party.len(), sc.n_sats());
        assert_eq!(b.city_party.len(), sc.cities.len());
        assert!(b.sat_party.iter().chain(&b.city_party).all(|&p| p < sc.n_parties));
    }

    #[test]
    fn ownership_modes_cover_every_party_when_items_allow() {
        for ownership in [Ownership::RoundRobin, Ownership::Blocks, Ownership::Shuffled] {
            let mut sc = Scenario::generate(5);
            sc.ownership = ownership;
            sc.n_parties = 3;
            sc.sanitize();
            let map = sc.owner_map(12);
            for p in 0..3 {
                assert!(map.contains(&p), "{ownership:?} missed party {p}: {map:?}");
            }
        }
    }

    #[test]
    fn fully_heals_tracks_the_rolled_final_state() {
        let mut sc = Scenario::generate(9);
        sc.schedule = ChurnSchedule::new();
        assert!(sc.fully_heals(), "empty schedule is trivially healed");
        sc.schedule = ChurnSchedule::new().at(0, ChurnEvent::SatFail { sat: 0 });
        assert!(!sc.fully_heals());
        sc.schedule = ChurnSchedule::new()
            .at(0, ChurnEvent::SatFail { sat: 0 })
            .at(1, ChurnEvent::SatRecover { sat: 0 });
        assert!(sc.fully_heals());
        // Recover listed *before* fail at the same step: the sat stays down.
        sc.schedule = ChurnSchedule::new()
            .at(2, ChurnEvent::SatRecover { sat: 0 })
            .at(2, ChurnEvent::SatFail { sat: 0 });
        assert!(!sc.fully_heals(), "recover-before-fail leaves the sat failed");
    }
}
