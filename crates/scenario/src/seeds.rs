//! Seed registry for the scenario fuzzer.
//!
//! Every random draw in the crate goes through
//! [`leosim::montecarlo::run_rng`]`(seed, stream)` with a stream constant
//! from this module, so each generator dimension has its own independent
//! stream of the scenario seed: widening the distribution of one dimension
//! never perturbs the samples of another, and a shrunk scenario replays
//! identically from its struct alone. The CI smoke tier starts its fresh
//! seeds at [`FUZZ_SMOKE_START`] — a fixed constant, not the run date — so
//! two CI runs of the same commit check the same seeds.

/// Stream: constellation shell (planes, altitude, inclination, mask).
pub const STREAM_SHELL: u64 = 0x5C01;
/// Stream: time grid (horizon, step).
pub const STREAM_GRID: u64 = 0x5C02;
/// Stream: ground scene (cities, gateway stride, parties, ownership).
pub const STREAM_SCENE: u64 = 0x5C03;
/// Stream: fidelity/capacity knobs (demand scale, ISL range, caps, market).
pub const STREAM_KNOBS: u64 = 0x5C04;
/// Stream: churn schedule (windows, event kinds, orphan heals).
pub const STREAM_SCHEDULE: u64 = 0x5C05;
/// Stream: shuffled-ownership permutation.
pub const STREAM_OWNERSHIP: u64 = 0x5C06;
/// Stream: which steps the oracle spot-checks against the brute-force
/// reference kernel.
pub const STREAM_ORACLE_SAMPLE: u64 = 0x5C07;

/// Every stream constant, for the distinctness test.
pub const ALL_STREAMS: [u64; 7] = [
    STREAM_SHELL,
    STREAM_GRID,
    STREAM_SCENE,
    STREAM_KNOBS,
    STREAM_SCHEDULE,
    STREAM_OWNERSHIP,
    STREAM_ORACLE_SAMPLE,
];

/// First fresh seed of the CI fuzz smoke tier. Date-independent by design:
/// bump it deliberately (in a PR) to rotate the smoke coverage.
pub const FUZZ_SMOKE_START: u64 = 0x5EED_0001;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_distinct() {
        let mut streams = ALL_STREAMS.to_vec();
        streams.sort_unstable();
        streams.dedup();
        assert_eq!(streams.len(), ALL_STREAMS.len(), "duplicate stream constant");
    }
}
