//! Cross-layer invariant oracles over one scenario run.
//!
//! [`check_scenario`] drives a generated [`Scenario`] through the whole
//! stack — ephemeris build, step-kernel routing, max-min allocation, churn
//! campaign, market settlement — and checks every invariant the layers
//! promise each other:
//!
//! 1. **allocation-feasible** — no flow exceeds its offered load or access
//!    link; no satellite or gateway exceeds its capacity; unrouted cities
//!    get nothing.
//! 2. **flow-conservation** — per step, the served rates sum to the
//!    satellite-carried and gateway-carried totals, and each resource's
//!    recorded load equals the sum of its member flows.
//! 3. **max-min** — the bottleneck characterization of max-min fairness: a
//!    flow below its individual cap must cross a saturated resource on
//!    which no co-member receives more.
//! 4. **kernel-reference** — on sampled steps the grid-pruned
//!    [`StepKernel`] reproduces the brute-force
//!    [`step_routes_reference`] bit for bit, mask included.
//! 5. **nominal-reuse** — an explicit all-up [`StepMask`] reproduces the
//!    baseline (unmasked) snapshot bit for bit, so the campaign's
//!    baseline-reuse of undisturbed steps is sound.
//! 6. **report-consistency** — the campaign's per-step served totals are
//!    bit-identical to an independent sequential re-allocation, and the
//!    per-party series sum back to the totals.
//! 7. **recovery** — steps whose rolled churn state is nominal show a
//!    deficit of exactly zero, and a fully-healing schedule reports
//!    recovery.
//! 8. **settlement-zero-sum** / **order-signature** / **notice-signature**
//!    — the cleared market transfers sum to zero and every order and
//!    withdrawal notice carries a valid signature.
//! 9. **thread-identity** — the whole campaign report serializes to the
//!    same JSON under `MPLEO_THREADS=1` and `=4`.
//!
//! The per-step checks are pure functions of plain data
//! ([`check_step_allocation`]), so the unit tests can feed them
//! deliberately broken allocations (mutation testing) and the shrinker can
//! replay them cheaply.

use crate::gen::{Built, Scenario};
use crate::seeds;
use leosim::montecarlo::{run_rng, sample_indices};
use orbital::ground::GroundSite;
use traffic::allocate::allocate_step;
use traffic::churn::{roll_states, run_campaign_with_routes, CampaignReport};
use traffic::demand::DemandMatrix;
use traffic::graph::{step_routes_reference, RouteTable, StepMask, StepRoutes};
use traffic::market::party_keys;
use traffic::pipeline::{StepKernel, StepScratch};
use traffic::StepAllocation;

/// Saturation/fairness slack shared with the allocator's property tests:
/// the allocator freezes at `1e-9` residuals, so with magnitudes up to a
/// few thousand Mbps any real violation dwarfs this.
pub const TOL: f64 = 1e-5;

/// Steps spot-checked against the brute-force reference kernel per
/// scenario (the full check would be quadratic in satellites × steps).
const REFERENCE_SAMPLES: usize = 6;

/// One oracle violation: which invariant broke and how.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Violation {
    /// Stable oracle name (see the module docs).
    pub oracle: String,
    /// Human-readable description with the offending values.
    pub detail: String,
}

impl Violation {
    fn new(oracle: &str, detail: String) -> Violation {
        Violation { oracle: oracle.to_string(), detail }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// Summary of a clean run (for fuzz-loop logging).
#[derive(Debug, Clone, serde::Serialize)]
pub struct ScenarioOutcome {
    /// Satellites in the shell.
    pub n_sats: usize,
    /// Grid steps checked.
    pub steps: usize,
    /// Served / offered over the churn run.
    pub served_ratio: f64,
    /// Worst per-step deficit fraction.
    pub worst_deficit: f64,
    /// Trades the market cleared.
    pub trades: usize,
    /// Steps compared against the brute-force reference.
    pub reference_steps: usize,
}

/// An allocator the harness can be parameterized with — the production
/// [`allocate_step`] by default, or a deliberately broken one in mutation
/// tests proving the oracles have teeth.
pub type AllocatorFn<'a> = &'a dyn Fn(&[f64], &StepRoutes, f64, f64, usize) -> StepAllocation;

/// Feasibility + flow conservation + the max-min bottleneck condition for
/// one step's allocation. Pure function of its arguments so mutation tests
/// can feed it arbitrary (broken) allocations.
pub fn check_step_allocation(
    step: usize,
    offered: &[f64],
    routes: &StepRoutes,
    alloc: &StepAllocation,
    sat_cap: f64,
    gw_cap: f64,
    n_gateways: usize,
) -> Result<(), Violation> {
    let n = offered.len();
    if alloc.served_mbps.len() != n || routes.routes.len() != n {
        return Err(Violation::new(
            "allocation-feasible",
            format!(
                "step {step}: city-count mismatch ({n} offered, {} served)",
                alloc.served_mbps.len()
            ),
        ));
    }

    // 1. Feasibility per flow and per shared resource.
    for (c, &served) in alloc.served_mbps.iter().enumerate() {
        match &routes.routes[c] {
            Some(r) => {
                let cap = offered[c].min(r.access_mbps);
                if !(0.0..=cap + TOL).contains(&served) {
                    return Err(Violation::new(
                        "allocation-feasible",
                        format!("step {step} city {c}: served {served} outside [0, {cap}]"),
                    ));
                }
            }
            None => {
                if served != 0.0 {
                    return Err(Violation::new(
                        "allocation-feasible",
                        format!("step {step} city {c}: served {served} without a route"),
                    ));
                }
            }
        }
    }
    for (&s, &carried) in &alloc.sat_carried {
        if carried > sat_cap + TOL {
            return Err(Violation::new(
                "allocation-feasible",
                format!("step {step} sat {s}: carried {carried} > capacity {sat_cap}"),
            ));
        }
    }
    for (g, &carried) in alloc.gateway_carried.iter().enumerate() {
        if carried > gw_cap + TOL {
            return Err(Violation::new(
                "allocation-feasible",
                format!("step {step} gateway {g}: carried {carried} > capacity {gw_cap}"),
            ));
        }
    }

    // 2. Flow conservation: each resource's recorded load is the sum of
    //    its member flows, and the three totals agree.
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 + 1e-9 * a.abs().max(b.abs());
    for (&s, &carried) in &alloc.sat_carried {
        let members: f64 = (0..n)
            .filter(|&c| routes.routes[c].as_ref().is_some_and(|r| r.sat == s))
            .map(|c| alloc.served_mbps[c])
            .sum();
        if !close(carried, members) {
            return Err(Violation::new(
                "flow-conservation",
                format!("step {step} sat {s}: carried {carried} != member sum {members}"),
            ));
        }
    }
    if alloc.gateway_carried.len() != n_gateways {
        return Err(Violation::new(
            "flow-conservation",
            format!(
                "step {step}: {} gateway rows, expected {n_gateways}",
                alloc.gateway_carried.len()
            ),
        ));
    }
    for (g, &carried) in alloc.gateway_carried.iter().enumerate() {
        let members: f64 = (0..n)
            .filter(|&c| routes.routes[c].as_ref().is_some_and(|r| r.gateway == g))
            .map(|c| alloc.served_mbps[c])
            .sum();
        if !close(carried, members) {
            return Err(Violation::new(
                "flow-conservation",
                format!("step {step} gateway {g}: carried {carried} != member sum {members}"),
            ));
        }
    }
    let served_total: f64 = alloc.served_mbps.iter().sum();
    let sat_total: f64 = alloc.sat_carried.values().sum();
    let gw_total: f64 = alloc.gateway_carried.iter().sum();
    if !close(served_total, sat_total) || !close(served_total, gw_total) {
        return Err(Violation::new(
            "flow-conservation",
            format!("step {step}: served {served_total} vs sat {sat_total} vs gateway {gw_total}"),
        ));
    }

    // 3. Max-min bottleneck condition: a flow below its individual cap
    //    must cross a saturated resource on which it is maximal.
    for (c, &served) in alloc.served_mbps.iter().enumerate() {
        let Some(r) = &routes.routes[c] else { continue };
        let cap = offered[c].min(r.access_mbps);
        if cap <= TOL || served >= cap - TOL {
            continue; // individually capped: nothing to redistribute
        }
        let sat_carried = alloc.sat_carried.get(&r.sat).copied().unwrap_or(0.0);
        let sat_saturated = sat_carried >= sat_cap - TOL;
        let gw_saturated = alloc.gateway_carried[r.gateway] >= gw_cap - TOL;
        if !sat_saturated && !gw_saturated {
            return Err(Violation::new(
                "max-min",
                format!(
                    "step {step} city {c}: served {served} below cap {cap} with slack everywhere"
                ),
            ));
        }
        let max_rate = |on: &dyn Fn(&traffic::graph::Route) -> bool| {
            (0..n)
                .filter(|&d| routes.routes[d].as_ref().is_some_and(on))
                .map(|d| alloc.served_mbps[d])
                .fold(0.0, f64::max)
        };
        let mut bottlenecked = false;
        if sat_saturated {
            bottlenecked |= served >= max_rate(&|rd| rd.sat == r.sat) - TOL;
        }
        if gw_saturated {
            bottlenecked |= served >= max_rate(&|rd| rd.gateway == r.gateway) - TOL;
        }
        if !bottlenecked {
            return Err(Violation::new(
                "max-min",
                format!(
                    "step {step} city {c}: served {served} not maximal on any saturated resource"
                ),
            ));
        }
    }
    Ok(())
}

/// Exact bit equality of two step snapshots (f64 fields compared by bits,
/// so `-0.0` vs `0.0` or NaN payload drift is caught too).
pub fn routes_bits_equal(a: &StepRoutes, b: &StepRoutes) -> bool {
    a.routes.len() == b.routes.len()
        && a.routes.iter().zip(&b.routes).all(|(ra, rb)| match (ra, rb) {
            (None, None) => true,
            (Some(x), Some(y)) => {
                x.sat == y.sat
                    && x.gateway == y.gateway
                    && x.hops == y.hops
                    && x.path_km.to_bits() == y.path_km.to_bits()
                    && x.latency_ms.to_bits() == y.latency_ms.to_bits()
                    && x.access_mbps.to_bits() == y.access_mbps.to_bits()
            }
            _ => false,
        })
}

/// Run every oracle over the scenario with the production allocator.
pub fn check_scenario(sc: &Scenario) -> Result<ScenarioOutcome, Violation> {
    check_scenario_with(sc, &|offered, routes, sat_cap, gw_cap, n_gw| {
        allocate_step(offered, routes, sat_cap, gw_cap, n_gw)
    })
}

/// [`check_scenario`] with a caller-supplied allocator for the independent
/// re-allocation pass — the hook the mutation tests use to prove a broken
/// max-min allocator is caught.
pub fn check_scenario_with(
    sc: &Scenario,
    allocator: AllocatorFn<'_>,
) -> Result<ScenarioOutcome, Violation> {
    let built = sc.build();
    let Built { store, sim, cities, gateways, parties, sat_party, city_party, cfg, .. } = &built;
    let steps = store.steps();
    let n_sats = store.sat_count();
    let n_gateways = gateways.len();
    let sites: Vec<GroundSite> = cities.iter().map(|c| c.site()).collect();

    // Stage 1: demand, exactly as `run_campaign` scales it.
    let mut demand = DemandMatrix::generate(cities, &store.grid, &cfg.traffic.demand);
    if cfg.traffic.demand_scale != 1.0 {
        for v in &mut demand.offered_mbps {
            *v *= cfg.traffic.demand_scale;
        }
    }

    // Stage 2: baseline routing and the rolled churn states/masks.
    let baseline = RouteTable::build(store, &sites, gateways, sim, &cfg.traffic.graph);
    let states = roll_states(&cfg.schedule, steps, n_sats, n_gateways, parties.len(), cities);
    let masks: Vec<Option<StepMask>> = states
        .iter()
        .map(|st| {
            if st.is_nominal() {
                return None;
            }
            Some(StepMask {
                sat_ok: (0..n_sats)
                    .map(|s| !st.sat_failed[s] && !st.party_withdrawn[sat_party[s]])
                    .collect(),
                gateway_ok: st.gateway_down.iter().map(|&d| !d).collect(),
                terminal_factor: st.city_factor.clone(),
            })
        })
        .collect();
    let kernel = StepKernel::new(store, &sites, gateways, sim, &cfg.traffic.graph);
    let mut scratch = StepScratch::default();
    let churn_routes: Vec<StepRoutes> = (0..steps)
        .map(|k| match &masks[k] {
            None => baseline.steps[k].clone(),
            Some(m) => kernel.routes(&mut scratch, k, Some(m)),
        })
        .collect();

    // Oracle: grid kernel ≡ brute-force reference on sampled steps (mask
    // included), and nominal-mask identity with the baseline snapshot.
    let mut sampler = run_rng(sc.seed, seeds::STREAM_ORACLE_SAMPLE);
    let sampled = sample_indices(&mut sampler, steps, REFERENCE_SAMPLES.min(steps));
    for &k in &sampled {
        let reference = step_routes_reference(
            store,
            &sites,
            gateways,
            sim,
            &cfg.traffic.graph,
            k,
            masks[k].as_ref(),
        );
        if !routes_bits_equal(&churn_routes[k], &reference) {
            return Err(Violation::new(
                "kernel-reference",
                format!("step {k}: grid kernel diverges from the brute-force reference"),
            ));
        }
        if masks[k].is_none() {
            let nominal = StepMask::nominal(n_sats, n_gateways, cities.len());
            let masked = kernel.routes(&mut scratch, k, Some(&nominal));
            if !routes_bits_equal(&masked, &baseline.steps[k]) {
                return Err(Violation::new(
                    "nominal-reuse",
                    format!("step {k}: all-up mask diverges from the unmasked snapshot"),
                ));
            }
        }
    }

    // Stage 3: independent sequential re-allocation over the churn routes
    // with the (possibly mutated) allocator, checked per step.
    let mut churn_demand = demand.clone();
    for (c, &party) in city_party.iter().enumerate() {
        for (k, st) in states.iter().enumerate() {
            if st.party_withdrawn[party] {
                churn_demand.offered_mbps[c * steps + k] = 0.0;
            }
        }
    }
    let mut offered = Vec::new();
    let mut served_totals = Vec::with_capacity(steps);
    for (k, step_routes) in churn_routes.iter().enumerate() {
        churn_demand.step_offered_into(k, &mut offered);
        let alloc = allocator(
            &offered,
            step_routes,
            cfg.traffic.sat_capacity_mbps,
            cfg.traffic.gateway_capacity_mbps,
            n_gateways,
        );
        check_step_allocation(
            k,
            &offered,
            step_routes,
            &alloc,
            cfg.traffic.sat_capacity_mbps,
            cfg.traffic.gateway_capacity_mbps,
            n_gateways,
        )?;
        served_totals.push(alloc.total_served());
    }

    // Stage 4: the campaign engine over the same scenario.
    let run = || {
        run_campaign_with_routes(
            store, cities, gateways, sim, &demand, &baseline, cfg, sat_party, city_party, parties,
        )
    };
    let report = run();
    check_report(sc, &built, &states, &served_totals, &report)?;

    // Oracle: thread bit-identity — the full report serializes identically
    // at 1 worker and 4.
    let json_1 = simrt::with_thread_cap(1, || serde_json::to_string(&run()).expect("report JSON"));
    let json_n = simrt::with_thread_cap(4, || serde_json::to_string(&run()).expect("report JSON"));
    if json_1 != json_n {
        let at = json_1.bytes().zip(json_n.bytes()).position(|(a, b)| a != b);
        return Err(Violation::new(
            "thread-identity",
            format!("campaign JSON differs between 1 and 4 threads (first byte {at:?})"),
        ));
    }

    Ok(ScenarioOutcome {
        n_sats,
        steps,
        served_ratio: report.churn.served_ratio(),
        worst_deficit: report.worst_deficit(),
        trades: report.trades,
        reference_steps: sampled.len(),
    })
}

/// The report-level oracles: consistency with the independent
/// re-allocation, party accounting, recovery, settlement, signatures.
fn check_report(
    sc: &Scenario,
    built: &Built,
    states: &[traffic::ChurnState],
    served_totals: &[f64],
    report: &CampaignReport,
) -> Result<(), Violation> {
    let steps = report.churn.steps;

    // Consistency: the engine's served totals match the sequential
    // re-allocation bit for bit (when the production allocator is used).
    for (k, (&ours, &engines)) in
        served_totals.iter().zip(&report.churn.total_served_steps).enumerate()
    {
        if ours.to_bits() != engines.to_bits() {
            return Err(Violation::new(
                "report-consistency",
                format!("step {k}: engine served {engines}, re-allocation served {ours}"),
            ));
        }
    }
    // Party accounting closes: per-step party sums reproduce the totals,
    // and served never exceeds offered.
    let n_parties = report.churn.parties.len();
    for k in 0..steps {
        let po: f64 = (0..n_parties).map(|p| report.churn.party_offered[p * steps + k]).sum();
        let ps: f64 = (0..n_parties).map(|p| report.churn.party_served[p * steps + k]).sum();
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 + 1e-9 * a.abs().max(b.abs());
        if !close(po, report.churn.total_offered_steps[k])
            || !close(ps, report.churn.total_served_steps[k])
        {
            return Err(Violation::new(
                "report-consistency",
                format!("step {k}: party sums ({po}, {ps}) diverge from totals"),
            ));
        }
        if report.churn.total_served_steps[k] > report.churn.total_offered_steps[k] + 1e-6 {
            return Err(Violation::new(
                "report-consistency",
                format!(
                    "step {k}: served {} exceeds offered {}",
                    report.churn.total_served_steps[k], report.churn.total_offered_steps[k]
                ),
            ));
        }
    }

    // Recovery: nominal steps reuse the baseline bit for bit, so their
    // deficit is exactly zero; fully-healing schedules must report
    // recovery.
    for (k, st) in states.iter().enumerate() {
        if st.is_nominal() && report.deficit_fraction[k] != 0.0 {
            return Err(Violation::new(
                "recovery",
                format!("nominal step {k} shows deficit {}", report.deficit_fraction[k]),
            ));
        }
    }
    if !sc.schedule.events.is_empty() && sc.fully_heals() && !report.recovered() {
        return Err(Violation::new(
            "recovery",
            "schedule fully heals but the campaign never recovered".to_string(),
        ));
    }

    // Settlement: zero-sum transfers, verifiable orders and notices.
    let net = report.settlement_net();
    if net.abs() > 1e-6 {
        return Err(Violation::new(
            "settlement-zero-sum",
            format!("settlement transfers sum to {net}"),
        ));
    }
    let keys = party_keys(&built.parties, &built.cfg.key_seed);
    for o in &report.orders {
        if !dcp::market::verify_order(&keys, o) {
            return Err(Violation::new(
                "order-signature",
                format!("order seq {} by {} fails verification", o.sequence, o.party),
            ));
        }
    }
    for n in &report.notices {
        let bytes =
            dcp::messages::WithdrawalNotice::signing_bytes(&n.party, &n.sat_ids, n.effective_s);
        if !keys.verify(&n.party, &bytes, &n.signature) {
            return Err(Violation::new(
                "notice-signature",
                format!("withdrawal notice by {} fails verification", n.party),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shrink::{shrink, Repro};
    use traffic::graph::Route;

    fn route(sat: usize, gateway: usize, access_mbps: f64) -> Option<Route> {
        Some(Route { sat, gateway, hops: 0, path_km: 1000.0, latency_ms: 5.0, access_mbps })
    }

    #[test]
    fn clean_scenarios_pass_every_oracle() {
        for seed in [0u64, 1, 2] {
            let sc = Scenario::generate(seed);
            let outcome = check_scenario(&sc)
                .unwrap_or_else(|v| panic!("seed {seed} violated an invariant: {v}"));
            assert_eq!(outcome.steps, sc.steps());
            assert!(outcome.reference_steps > 0, "reference oracle must sample steps");
        }
    }

    #[test]
    fn step_oracle_accepts_the_production_allocator() {
        let routes = StepRoutes {
            routes: vec![route(0, 0, 200.0), route(0, 1, 1e9), route(1, 0, 1e9), None],
        };
        let offered = [120.0, 300.0, 80.0, 10.0];
        let alloc = allocate_step(&offered, &routes, 250.0, 260.0, 2);
        check_step_allocation(0, &offered, &routes, &alloc, 250.0, 260.0, 2).unwrap();
    }

    #[test]
    fn over_capacity_allocation_is_caught() {
        let routes = StepRoutes { routes: vec![route(3, 0, 1e9)] };
        let mut alloc = allocate_step(&[50.0], &routes, 1e9, 1e9, 1);
        alloc.served_mbps[0] = 80.0; // above the offered load
        let v = check_step_allocation(4, &[50.0], &routes, &alloc, 1e9, 1e9, 1).unwrap_err();
        assert_eq!(v.oracle, "allocation-feasible", "{v}");
    }

    #[test]
    fn leaky_accounting_is_caught() {
        let routes = StepRoutes { routes: vec![route(2, 0, 1e9), route(2, 0, 1e9)] };
        let offered = [40.0, 40.0];
        let mut alloc = allocate_step(&offered, &routes, 1e9, 1e9, 1);
        *alloc.sat_carried.get_mut(&2).unwrap() += 25.0; // phantom carried load
        let v = check_step_allocation(0, &offered, &routes, &alloc, 1e9, 1e9, 1).unwrap_err();
        assert_eq!(v.oracle, "flow-conservation", "{v}");
    }

    #[test]
    fn unfair_but_feasible_allocation_is_caught() {
        // Two equal flows share a saturated satellite; giving one flow the
        // lion's share stays feasible and conserving but breaks max-min.
        let routes = StepRoutes { routes: vec![route(0, 0, 1e9), route(0, 0, 1e9)] };
        let offered = [500.0, 500.0];
        let alloc = StepAllocation {
            served_mbps: vec![90.0, 10.0],
            sat_carried: [(0, 100.0)].into(),
            gateway_carried: vec![100.0],
        };
        let v = check_step_allocation(0, &offered, &routes, &alloc, 100.0, 1e9, 1).unwrap_err();
        assert_eq!(v.oracle, "max-min", "{v}");
    }

    /// The acceptance-criteria mutation test: a broken max-min allocator
    /// (uniformly halving every served rate keeps the allocation feasible
    /// and flow-conserving but leaves slack everywhere) must be caught by
    /// the whole-scenario harness and shrunk to a one-line JSON repro.
    #[test]
    fn broken_max_min_is_caught_and_shrinks_to_a_tiny_repro() {
        let halved: AllocatorFn<'_> = &|offered, routes, sat_cap, gw_cap, n_gw| {
            let mut alloc = allocate_step(offered, routes, sat_cap, gw_cap, n_gw);
            for r in &mut alloc.served_mbps {
                *r *= 0.5;
            }
            for v in alloc.sat_carried.values_mut() {
                *v *= 0.5;
            }
            for v in &mut alloc.gateway_carried {
                *v *= 0.5;
            }
            alloc
        };
        // Find a seed the mutation bites on (any scenario that serves
        // traffic); the generator makes these overwhelmingly common.
        let (sc, violation) = (0u64..20)
            .find_map(|seed| {
                let sc = Scenario::generate(seed);
                check_scenario_with(&sc, halved).err().map(|v| (sc, v))
            })
            .expect("a halved allocator must violate max-min on some seed");
        assert_eq!(violation.oracle, "max-min", "{violation}");

        let fails = |candidate: &Scenario| check_scenario_with(candidate, halved).err();
        let small = shrink(&sc, &violation.oracle, 200, fails);
        let final_violation =
            check_scenario_with(&small, halved).expect_err("shrunk scenario still fails");
        assert_eq!(final_violation.oracle, "max-min");
        assert!(
            small.schedule.events.len() <= sc.schedule.events.len()
                && small.n_sats() <= sc.n_sats()
                && small.cities.len() <= sc.cities.len(),
            "shrinking must not grow the scenario"
        );
        let repro = Repro::new(&small, &final_violation);
        let json = repro.to_json();
        assert!(
            json.lines().count() <= 5,
            "repro must be at most 5 lines, got {}:\n{json}",
            json.lines().count()
        );
        // And the repro replays: parsing it back reproduces the violation.
        let replayed = Repro::from_json(&json).expect("repro parses");
        let v = check_scenario_with(&replayed.scenario, halved).unwrap_err();
        assert_eq!(v.oracle, "max-min");
    }
}
