//! The checked-in seed corpus.
//!
//! `tests/corpus/*.json` pins the scenarios every CI run re-checks: one
//! JSON object per file, either a seed to regenerate (`{"seed": N,
//! "note": "..."}`) or a full shrunk scenario (the [`Repro`] format with
//! `"scenario"` inline) for failures that were fixed and must stay fixed.
//! Files are loaded in filename order so corpus runs are reproducible.

use crate::gen::Scenario;
use crate::oracle::{check_scenario, ScenarioOutcome, Violation};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// One corpus entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// The generating seed (used when no explicit scenario is pinned).
    pub seed: u64,
    /// Why this entry exists (shown on failure).
    #[serde(default)]
    pub note: String,
    /// An explicit scenario (e.g. a shrunk former failure); takes
    /// precedence over regenerating from `seed`.
    #[serde(default)]
    pub scenario: Option<Scenario>,
}

impl CorpusEntry {
    /// The scenario this entry pins: the inline one, else
    /// [`Scenario::generate`]`(seed)`.
    pub fn scenario(&self) -> Scenario {
        self.scenario.clone().unwrap_or_else(|| Scenario::generate(self.seed))
    }

    /// Run every oracle over the pinned scenario.
    pub fn check(&self) -> Result<ScenarioOutcome, Violation> {
        check_scenario(&self.scenario())
    }
}

/// Load every `*.json` entry under `dir`, sorted by filename. A missing
/// directory is an error (the corpus is checked in; losing it should fail
/// loudly, not skip silently).
pub fn load_corpus(dir: &Path) -> Result<Vec<(PathBuf, CorpusEntry)>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("corpus dir {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let entry: CorpusEntry =
            serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push((path, entry));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_without_scenario_regenerates_from_seed() {
        let entry: CorpusEntry = serde_json::from_str(r#"{"seed": 17, "note": "smoke"}"#).unwrap();
        assert_eq!(entry.scenario(), Scenario::generate(17));
    }

    #[test]
    fn inline_scenario_takes_precedence() {
        let sc = Scenario::generate(4);
        let entry = CorpusEntry { seed: 999, note: String::new(), scenario: Some(sc.clone()) };
        assert_eq!(entry.scenario(), sc);
        let json = serde_json::to_string(&entry).unwrap();
        let back: CorpusEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(back.scenario(), sc);
    }

    #[test]
    fn missing_corpus_dir_is_a_loud_error() {
        let err = load_corpus(Path::new("/nonexistent/corpus")).unwrap_err();
        assert!(err.contains("corpus dir"), "{err}");
    }
}
